// Ablation: DNS-over-QUIC (RFC 9250) vs DoH/DoT — the protocol the
// encrypted-DNS ecosystem is moving toward, and a natural extension of the
// paper's measurement matrix. QUIC folds transport and crypto setup into one
// flight, so:
//   cold:      DoQ = 2 RTT   vs  DoH/DoT = 3 RTT
//   0-RTT:     DoQ = 1 RTT   (query rides the first packet)
//   keepalive: all equal     (1 RTT; setup amortized away)
#include "common.h"

#include "client/doh.h"
#include "client/doq.h"
#include "client/dot.h"
#include "stats/quantile.h"

using namespace ednsm;

namespace {

struct Cell {
  const char* label;
  client::Protocol protocol;
  transport::ReusePolicy policy;
  bool early_data;
};

double run_cell(const Cell& cell, int queries) {
  core::SimWorld world(bench::kDefaultSeed);
  auto& vantage = world.vantage("ec2-ohio");
  const auto server = world.fleet().address_for("dns.google", vantage.info.location);
  const netsim::Endpoint doq_remote{*server, netsim::kPortDoq};

  client::QueryOptions options;
  options.reuse = cell.policy;
  options.offer_early_data = cell.early_data;
  options.use_http2 = !cell.early_data;  // DoH 0-RTT path rides HTTP/1.1

  client::DotClient dot(world.net(), *vantage.pool, options);
  client::DohClient doh(world.net(), *vantage.pool, options);
  client::DoqClient doq(world.net(), vantage.addr, options);
  const dns::Name name = dns::Name::parse("google.com").value();

  std::vector<double> times;
  auto record = [&](client::QueryOutcome o) {
    if (o.ok) times.push_back(netsim::to_ms(o.timing.total));
  };
  for (int i = 0; i < queries; ++i) {
    switch (cell.protocol) {
      case client::Protocol::DoT:
        dot.query(*server, "dns.google", name, dns::RecordType::A, record);
        break;
      case client::Protocol::DoH:
        doh.query(*server, "dns.google", name, dns::RecordType::A, record);
        break;
      case client::Protocol::DoQ:
        doq.query(*server, "dns.google", name, dns::RecordType::A, record);
        break;
      default:
        break;
    }
    world.run();
    if (cell.early_data) {
      // Force a fresh (resumed) connection so each query exercises 0-RTT.
      vantage.pool->invalidate({*server, netsim::kPortHttps}, "dns.google");
      doq.invalidate(doq_remote, "dns.google");
    }
  }
  if (cell.policy != transport::ReusePolicy::None && times.size() > 1) {
    times.erase(times.begin());  // drop the unavoidable cold start
  }
  return stats::median(times);
}

}  // namespace

int main() {
  const Cell cells[] = {
      {"DoT  cold", client::Protocol::DoT, transport::ReusePolicy::None, false},
      {"DoH  cold", client::Protocol::DoH, transport::ReusePolicy::None, false},
      {"DoQ  cold", client::Protocol::DoQ, transport::ReusePolicy::None, false},
      {"DoT  keepalive", client::Protocol::DoT, transport::ReusePolicy::Keepalive, false},
      {"DoH  keepalive", client::Protocol::DoH, transport::ReusePolicy::Keepalive, false},
      {"DoQ  keepalive", client::Protocol::DoQ, transport::ReusePolicy::Keepalive, false},
      {"DoH  0-RTT", client::Protocol::DoH, transport::ReusePolicy::TicketResumption, true},
      {"DoQ  0-RTT", client::Protocol::DoQ, transport::ReusePolicy::TicketResumption, true},
  };

  std::printf("Encrypted transport ladder to dns.google from EC2 Ohio (median ms)\n\n");
  std::printf("%-16s %12s\n", "cell", "median (ms)");
  std::printf("------------------------------\n");
  for (const Cell& cell : cells) {
    std::printf("%-16s %12.2f\n", cell.label, run_cell(cell, 40));
  }
  std::printf("\nExpected shape: cold DoQ saves one RTT over DoH/DoT; 0-RTT DoQ\n"
              "approaches the keepalive floor; keepalive equalizes everything.\n");
  return 0;
}
