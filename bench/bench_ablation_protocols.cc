// Ablation: the protocol ladder Do53 -> DoT -> DoH, cold and with reuse.
// §2 cites Lu et al.: with connection re-use, DoT/DoH were ~9/6 ms slower
// than conventional DNS in the median; cold-start costs are much larger.
// This bench reproduces the ladder in our substrate.
#include <cstdio>

#include "common.h"

#include "client/do53.h"
#include "client/doh.h"
#include "client/dot.h"
#include "core/world.h"
#include "stats/quantile.h"

using namespace ednsm;

namespace {

std::vector<double> run_queries(core::SimWorld& world, client::Protocol protocol,
                                transport::ReusePolicy policy, int queries) {
  auto& vantage = world.vantage("ec2-ohio");
  const auto server = world.fleet().address_for("dns.google", vantage.info.location);

  client::QueryOptions options;
  options.reuse = policy;
  std::vector<double> times;
  auto record = [&](client::QueryOutcome o) {
    if (o.ok) times.push_back(netsim::to_ms(o.timing.total));
  };

  client::Do53Client do53(world.net(), vantage.addr, options);
  client::DotClient dot(world.net(), *vantage.pool, options);
  client::DohClient doh(world.net(), *vantage.pool, options);
  const dns::Name name = dns::Name::parse("google.com").value();

  for (int i = 0; i < queries; ++i) {
    switch (protocol) {
      case client::Protocol::Do53: do53.query(*server, name, dns::RecordType::A, record); break;
      case client::Protocol::DoT:
        dot.query(*server, "dns.google", name, dns::RecordType::A, record);
        break;
      case client::Protocol::DoH:
        doh.query(*server, "dns.google", name, dns::RecordType::A, record);
        break;
      default:
        break;  // DoQ has its own bench (bench_ablation_doq)
    }
    world.run();
  }
  return times;
}

}  // namespace

int main() {
  std::printf("Protocol ladder: query latency to dns.google from EC2 Ohio\n\n");
  std::printf("%-8s %-12s %12s %10s %10s\n", "proto", "regime", "median (ms)", "p10", "p90");
  std::printf("------------------------------------------------------------\n");

  for (const auto policy : {transport::ReusePolicy::None, transport::ReusePolicy::Keepalive}) {
    for (const auto protocol :
         {client::Protocol::Do53, client::Protocol::DoT, client::Protocol::DoH}) {
      core::SimWorld world(bench::kDefaultSeed);
      auto times = run_queries(world, protocol, policy, 60);
      if (policy != transport::ReusePolicy::None && times.size() > 1) {
        times.erase(times.begin());  // drop the unavoidable cold start
      }
      std::printf("%-8s %-12s %12.2f %10.2f %10.2f\n",
                  std::string(client::to_string(protocol)).c_str(),
                  std::string(transport::to_string(policy)).c_str(), stats::median(times),
                  stats::quantile(times, 0.1), stats::quantile(times, 0.9));
    }
  }
  std::printf("\nExpected shape (Lu et al. / Böttger et al.): cold DoT/DoH ~= 3x Do53;\n"
              "with keepalive the encrypted protocols approach Do53 within a few ms.\n");
  return 0;
}
