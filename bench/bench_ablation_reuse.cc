// Ablation: connection re-use amortization. §2 of the paper cites Zhu et al.
// and Böttger et al.: "much of the performance cost for DoT and DoH can be
// amortized by re-using TCP connections and TLS sessions." This bench
// quantifies that in our substrate across the four reuse regimes:
//   cold          (policy None: every query pays TCP + full TLS)
//   keepalive     (live session reused: no setup after the first query)
//   resumption    (session died; PSK ticket cuts crypto on the new one)
//   0-RTT         (resumption + early data: the query rides the handshake)
#include <cstdio>

#include "common.h"

#include "client/doh.h"
#include "core/world.h"
#include "stats/quantile.h"

using namespace ednsm;

namespace {

struct Scenario {
  const char* name;
  transport::ReusePolicy policy;
  bool early_data;
  bool invalidate_between;  // kill the session between queries
};

double median_doh_ms(core::SimWorld& world, const Scenario& scenario, int queries) {
  auto& vantage = world.vantage("ec2-ohio");
  const auto server = world.fleet().address_for("dns.google", vantage.info.location);
  const netsim::Endpoint remote{*server, netsim::kPortHttps};

  client::QueryOptions options;
  options.reuse = scenario.policy;
  options.offer_early_data = scenario.early_data;
  options.use_http2 = !scenario.early_data;  // 0-RTT path uses HTTP/1.1
  client::DohClient doh(world.net(), *vantage.pool, options);

  std::vector<double> times;
  for (int i = 0; i < queries; ++i) {
    doh.query(*server, "dns.google", dns::Name::parse("google.com").value(),
              dns::RecordType::A, [&](client::QueryOutcome o) {
                if (o.ok) times.push_back(netsim::to_ms(o.timing.total));
              });
    world.run();
    if (scenario.invalidate_between) vantage.pool->invalidate(remote, "dns.google");
  }
  // Skip the first (always-cold) query for warm scenarios.
  if (!times.empty() && scenario.policy != transport::ReusePolicy::None) {
    times.erase(times.begin());
  }
  return stats::median(times);
}

}  // namespace

int main() {
  const Scenario scenarios[] = {
      {"cold (no reuse)", transport::ReusePolicy::None, false, false},
      {"keepalive reuse", transport::ReusePolicy::Keepalive, false, false},
      {"ticket resumption", transport::ReusePolicy::TicketResumption, false, true},
      {"0-RTT early data", transport::ReusePolicy::TicketResumption, true, true},
  };

  std::printf("DoH query latency to dns.google from EC2 Ohio, by connection regime\n");
  std::printf("(paper context: Zhu/Böttger — reuse amortizes the encryption cost)\n\n");
  std::printf("%-20s %12s %10s\n", "regime", "median (ms)", "vs cold");
  std::printf("--------------------------------------------------\n");
  double cold = 0;
  for (const Scenario& s : scenarios) {
    core::SimWorld world(bench::kDefaultSeed);
    const double med = median_doh_ms(world, s, 60);
    if (cold == 0) cold = med;
    std::printf("%-20s %12.2f %9.0f%%\n", s.name, med, 100.0 * med / cold);
  }
  std::printf("\nExpected shape: keepalive ~= 1/3 of cold (3 RTT -> 1 RTT);\n"
              "resumption ~= cold minus crypto; 0-RTT between keepalive and resumption.\n");
  return 0;
}
