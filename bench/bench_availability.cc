// Reproduces §4's availability analysis: "we received 5,098,281 successful
// responses and 311,351 errors [5.75% error rate]. The most common errors we
// received ... were related to a failure to establish a connection. We did
// not identify a consistent pattern of not receiving responses from a
// certain subset of resolvers."
//
// The reproduction runs a scaled-down version of the full campaign (every
// resolver, every vantage class) and prints the same summary. The absolute
// query count is smaller (the paper measured for months); the error *rate*,
// dominant error class, and the absence of consistently-dead resolvers are
// the reproduced shape.
#include "common.h"

int main() {
  using namespace ednsm;
  auto result = bench::run_paper_campaign(
      {"home-chicago-1", "home-chicago-2", "home-chicago-3", "home-chicago-4", "ec2-ohio",
       "ec2-frankfurt", "ec2-seoul"},
      25);

  std::printf("%s\n", report::availability_report(result).c_str());
  std::printf("paper reference: 5,098,281 ok / 311,351 errors = 5.75%% error rate;\n"
              "dominant error: failure to establish a connection;\n"
              "no consistent unresponsive subset across runs.\n\n");

  // Error-rate split by operator tier (diagnostic beyond the paper).
  std::printf("error rate by operator tier:\n");
  for (const auto tier : {resolver::OperatorTier::Hyperscale, resolver::OperatorTier::Managed,
                          resolver::OperatorTier::Hobbyist}) {
    std::uint64_t ok = 0, err = 0;
    for (const auto& s : resolver::paper_resolver_list()) {
      if (s.tier != tier) continue;
      const auto counts = result.availability.per_resolver(s.hostname);
      ok += counts.successes;
      err += counts.errors;
    }
    const char* name = tier == resolver::OperatorTier::Hyperscale ? "hyperscale"
                       : tier == resolver::OperatorTier::Managed  ? "managed"
                                                                  : "hobbyist";
    std::printf("  %-10s: %6.2f%%  (%llu ok / %llu err)\n", name,
                ok + err == 0 ? 0.0
                              : 100.0 * static_cast<double>(err) /
                                    static_cast<double>(ok + err),
                static_cast<unsigned long long>(ok), static_cast<unsigned long long>(err));
  }
  return 0;
}
