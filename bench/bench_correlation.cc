// Reproduces §3.1's latency analysis: "each time we issued a set of DoH
// queries to a resolver, we also issued a ICMP ping message and noted the
// round-trip time. This enabled us to explore whether there was a consistent
// relationship between high query response times and network latency."
//
// Per vantage, correlate each resolver's median DoH response time against its
// median ping RTT across the population, and fit response ≈ slope × ping.
// Expected shape: strong positive correlation with slope ≈ 3 (TCP + TLS +
// HTTP round trips), with the residual above the fit explained by server-side
// behaviour (recursion misses, load spikes, the ODoH relay detour).
#include "common.h"

#include <cmath>

#include "stats/correlation.h"
#include "stats/quantile.h"

using namespace ednsm;

int main() {
  auto result = bench::run_paper_campaign(
      {"home-chicago-1", "ec2-ohio", "ec2-frankfurt", "ec2-seoul"}, 25);

  std::printf("Response-time vs ping correlation across the resolver population\n\n");
  std::printf("%-16s %6s %9s %9s %8s %8s %6s\n", "vantage", "n", "pearson", "spearman",
              "slope", "icept", "R^2");
  std::printf("------------------------------------------------------------------\n");

  for (const std::string& vantage : result.spec.vantage_ids) {
    std::vector<double> ping_medians, response_medians;
    for (const std::string& host : result.spec.resolvers) {
      const double p = stats::median(result.ping_times(vantage, host));
      const double r = stats::median(result.response_times(vantage, host));
      if (std::isnan(p) || std::isnan(r)) continue;  // ICMP-filtered resolvers drop out
      ping_medians.push_back(p);
      response_medians.push_back(r);
    }
    const auto fit = stats::linear_fit(ping_medians, response_medians);
    std::printf("%-16s %6zu %9.3f %9.3f %8.2f %8.1f %6.2f\n", vantage.c_str(),
                ping_medians.size(), stats::pearson(ping_medians, response_medians),
                stats::spearman(ping_medians, response_medians), fit.slope, fit.intercept,
                fit.r_squared);
  }

  // The resolvers far above the fit line: server-side slowness, not the path.
  std::printf("\nBiggest positive residuals from the Ohio fit (server-side slowness):\n");
  {
    std::vector<double> pings, responses;
    std::vector<std::string> hosts;
    for (const std::string& host : result.spec.resolvers) {
      const double p = stats::median(result.ping_times("ec2-ohio", host));
      const double r = stats::median(result.response_times("ec2-ohio", host));
      if (std::isnan(p) || std::isnan(r)) continue;
      pings.push_back(p);
      responses.push_back(r);
      hosts.push_back(host);
    }
    const auto fit = stats::linear_fit(pings, responses);
    std::vector<std::pair<double, std::string>> residuals;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      residuals.emplace_back(responses[i] - (fit.slope * pings[i] + fit.intercept),
                             hosts[i]);
    }
    std::sort(residuals.rbegin(), residuals.rend());
    for (std::size_t i = 0; i < std::min<std::size_t>(5, residuals.size()); ++i) {
      std::printf("  %+8.1f ms  %s\n", residuals[i].first, residuals[i].second.c_str());
    }
  }

  std::printf("\nExpected shape: Pearson/Spearman >= ~0.9 everywhere; slope ~= 3\n"
              "(the DoH handshake round trips); ODoH targets and hobbyist\n"
              "recursion-heavy resolvers dominate the positive residuals.\n");
  return 0;
}
