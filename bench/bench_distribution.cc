// Extension bench: the privacy/performance tradeoff of distributing queries
// across multiple encrypted resolvers — the K-resolver / Hounsel-et-al. line
// of work the paper's related-work section says "must be informed about how
// the choice of resolver affects performance."
//
// A Zipf browsing workload is resolved from Frankfurt under five strategies;
// for each we report median latency (performance) and the query share /
// domain coverage of the most-observing resolver plus entropy (privacy).
#include "common.h"

#include "core/distribution.h"
#include "stats/quantile.h"

using namespace ednsm;

int main() {
  const std::vector<std::string> resolvers = {
      "dns.google", "security.cloudflare-dns.com", "dns.quad9.net",
      "dns0.eu", "dns.brahma.world", "dns.switch.ch", "doh.ffmuc.net", "dns.njal.la",
  };
  const auto workload = core::zipf_workload(200, 600, 0.95, bench::kDefaultSeed);

  std::printf("Query distribution strategies from EC2 Frankfurt\n");
  std::printf("(8 resolvers: 3 global anycast + 5 EU; 600 Zipf queries over 200 domains)\n\n");
  std::printf("%-16s %11s %9s %10s %9s %9s\n", "strategy", "median(ms)", "p90(ms)",
              "max-share", "max-cov", "entropy");
  std::printf("----------------------------------------------------------------------\n");

  const core::DistributionStrategy strategies[] = {
      core::DistributionStrategy::SingleFastest, core::DistributionStrategy::RoundRobin,
      core::DistributionStrategy::UniformRandom, core::DistributionStrategy::HashSharded,
      core::DistributionStrategy::FastestK,
  };

  for (const auto strategy : strategies) {
    core::SimWorld world(bench::kDefaultSeed);
    core::DistributorConfig config;
    config.strategy = strategy;
    config.k = 3;
    config.seed = bench::kDefaultSeed;
    core::QueryDistributor dist(world, "ec2-frankfurt", resolvers, config);
    dist.calibrate(3);

    std::vector<double> latencies;
    for (const std::string& domain : workload) {
      dist.resolve(domain, [&](const std::string&, client::QueryOutcome o) {
        if (o.ok) latencies.push_back(netsim::to_ms(o.timing.total));
      });
      world.run();
    }
    std::printf("%-16s %11.1f %9.1f %9.0f%% %8.0f%% %8.2fb\n",
                std::string(core::to_string(strategy)).c_str(), stats::median(latencies),
                stats::quantile(latencies, 0.9), 100.0 * dist.privacy().max_share(),
                100.0 * dist.privacy().max_domain_coverage(),
                dist.privacy().entropy_bits());
  }

  std::printf("\nExpected shape: single-fastest wins latency but one operator sees\n"
              "100%% of queries; fastest-k recovers most of the latency while cutting\n"
              "the per-operator view; hash-sharding bounds what any operator can\n"
              "learn about the *namespace* at the cost of using slow resolvers for\n"
              "their shard.\n");
  return 0;
}
