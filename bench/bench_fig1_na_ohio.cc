// Reproduces Figure 1: DNS response time and ICMP ping distributions for
// encrypted DNS resolvers located in North America, measured from an EC2
// instance in Ohio. Mainstream resolvers are marked *bold*.
//
// Expected shape (paper §4): mainstream resolvers and well-peered
// non-mainstream ones (ordns.he.net, freedns.controld.com) at the top;
// ODoH targets far right of their pings; ping boxes well left of response
// boxes (handshake round trips).
#include "common.h"

int main() {
  using namespace ednsm;
  auto result = bench::run_paper_campaign({"ec2-ohio"}, 30);
  bench::print_figure(result, "ec2-ohio", geo::Continent::NorthAmerica,
                      "Figure 1: NA-located resolvers from EC2 Ohio");

  std::printf("\nPaper reference: max per-resolver median from Ohio was 270 ms.\n");
  const report::Table t = report::max_median_table(result);
  std::printf("%s\n", t.to_text().c_str());
  return 0;
}
