// Reproduces Figure 2 (a-d): NA-located resolvers measured from the four
// vantage classes — U.S. home networks (local), Ohio EC2 (local),
// Frankfurt EC2, Seoul EC2.
//
// Expected shape: from home, ordns.he.net tops the chart; the farther the
// vantage, the wider the spread for unicast resolvers while anycast
// mainstream stays tight.
#include "common.h"

int main() {
  using namespace ednsm;
  auto result = bench::run_paper_campaign(
      {"home-chicago-1", "ec2-ohio", "ec2-frankfurt", "ec2-seoul"}, 30);

  bench::print_figure(result, "home-chicago-1", geo::Continent::NorthAmerica,
                      "Figure 2a: NA resolvers from U.S. home networks (local)");
  bench::print_figure(result, "ec2-ohio", geo::Continent::NorthAmerica,
                      "Figure 2b: NA resolvers from Ohio EC2 (local)");
  bench::print_figure(result, "ec2-frankfurt", geo::Continent::NorthAmerica,
                      "Figure 2c: NA resolvers from Frankfurt EC2");
  bench::print_figure(result, "ec2-seoul", geo::Continent::NorthAmerica,
                      "Figure 2d: NA resolvers from Seoul EC2");

  std::printf("\nNon-mainstream resolvers beating every mainstream one, per vantage:\n");
  for (const char* vantage : {"home-chicago-1", "ec2-ohio", "ec2-frankfurt", "ec2-seoul"}) {
    std::printf("  %-16s:", vantage);
    for (const std::string& host : report::nonmainstream_winners(result, vantage)) {
      std::printf(" %s", host.c_str());
    }
    std::printf("\n");
  }
  std::printf("(paper: ordns.he.net from home; freedns.controld.com from Ohio)\n");
  return 0;
}
