// Reproduces Figure 3 (a-d): Europe-located resolvers measured from the four
// vantage classes. Expected shape: tight, fast distributions from Frankfurt
// (local); heavy right-shift from Seoul; dns.brahma.world competitive with
// mainstream from Frankfurt.
#include "common.h"

int main() {
  using namespace ednsm;
  auto result = bench::run_paper_campaign(
      {"home-chicago-1", "ec2-ohio", "ec2-frankfurt", "ec2-seoul"}, 30);

  bench::print_figure(result, "home-chicago-1", geo::Continent::Europe,
                      "Figure 3a: EU resolvers from U.S. home networks");
  bench::print_figure(result, "ec2-ohio", geo::Continent::Europe,
                      "Figure 3b: EU resolvers from Ohio EC2");
  bench::print_figure(result, "ec2-frankfurt", geo::Continent::Europe,
                      "Figure 3c: EU resolvers from Frankfurt EC2 (local)");
  bench::print_figure(result, "ec2-seoul", geo::Continent::Europe,
                      "Figure 3d: EU resolvers from Seoul EC2");

  std::printf("\nNon-mainstream winners from Frankfurt (paper: dns.brahma.world beats "
              "Cloudflare):\n ");
  for (const std::string& host : report::nonmainstream_winners(result, "ec2-frankfurt")) {
    std::printf(" %s", host.c_str());
  }
  std::printf("\n");
  return 0;
}
