// Reproduces Figure 4 (a-d): Asia-located resolvers measured from the four
// vantage classes. Expected shape: dns.alidns.com at the top from Seoul
// (beating all mainstream resolvers); dns.twnic.tw slow from the home
// devices but fine from EC2.
#include "common.h"

int main() {
  using namespace ednsm;
  auto result = bench::run_paper_campaign(
      {"home-chicago-1", "ec2-ohio", "ec2-frankfurt", "ec2-seoul"}, 30);

  bench::print_figure(result, "home-chicago-1", geo::Continent::Asia,
                      "Figure 4a: Asia resolvers from U.S. home networks");
  bench::print_figure(result, "ec2-ohio", geo::Continent::Asia,
                      "Figure 4b: Asia resolvers from Ohio EC2");
  bench::print_figure(result, "ec2-frankfurt", geo::Continent::Asia,
                      "Figure 4c: Asia resolvers from Frankfurt EC2");
  bench::print_figure(result, "ec2-seoul", geo::Continent::Asia,
                      "Figure 4d: Asia resolvers from Seoul EC2 (local)");

  std::printf("\nNon-mainstream winners from Seoul (paper: dns.alidns.com beats Quad9, "
              "Google, and Cloudflare):\n ");
  for (const std::string& host : report::nonmainstream_winners(result, "ec2-seoul")) {
    std::printf(" %s", host.c_str());
  }
  std::printf("\n");
  return 0;
}
