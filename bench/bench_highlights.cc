// Reproduces §4's headline numbers:
//   - per-vantage maximum of per-resolver median response times
//     (paper: home 399 ms, Ohio 270 ms, Seoul 569 ms, Frankfurt 380 ms), and
//   - the named local non-mainstream winners (ordns.he.net from home,
//     freedns.controld.com from Ohio, dns.brahma.world from Frankfurt,
//     dns.alidns.com from Seoul).
#include "common.h"

#include "stats/quantile.h"

int main() {
  using namespace ednsm;
  auto result = bench::run_paper_campaign(
      {"home-chicago-1", "ec2-ohio", "ec2-frankfurt", "ec2-seoul"}, 30);

  std::printf("Max per-resolver median response time per vantage\n");
  std::printf("(paper: home 399 ms / Ohio 270 ms / Frankfurt 380 ms / Seoul 569 ms)\n\n");
  std::printf("%s\n", report::max_median_table(result).to_text().c_str());

  std::printf("Local non-mainstream winners (median below every mainstream median):\n");
  struct Expectation {
    const char* vantage;
    const char* paper_winner;
  };
  const Expectation expectations[] = {
      {"home-chicago-1", "ordns.he.net"},
      {"ec2-ohio", "freedns.controld.com"},
      {"ec2-frankfurt", "dns.brahma.world"},
      {"ec2-seoul", "dns.alidns.com"},
  };
  for (const Expectation& e : expectations) {
    const auto winners = report::nonmainstream_winners(result, e.vantage);
    bool reproduced = false;
    std::printf("  %-16s:", e.vantage);
    for (const std::string& w : winners) {
      std::printf(" %s", w.c_str());
      if (w == e.paper_winner) reproduced = true;
    }
    std::printf("   [paper: %s -> %s]\n", e.paper_winner,
                reproduced ? "REPRODUCED" : "not in winner set");
  }
  return 0;
}
