// Reproduces the paper's longitudinal design (§3.2): after the main
// September-October 2023 EC2 span, the authors re-measured for 1-3 days in
// February, March, and April 2024 "to ensure that resolver performance did
// not change drastically since October 2023."
//
// This bench runs the main span plus three follow-up spans in one simulated
// world (time advances continuously), reports per-span medians and the
// maximum drift for a representative resolver set, and — beyond the paper —
// injects a hard outage for one resolver during the March span to show the
// availability ledger catching it.
#include "common.h"

#include <cmath>

#include "stats/quantile.h"

using namespace ednsm;

int main() {
  const std::vector<std::string> watchlist = {
      "dns.google", "security.cloudflare-dns.com", "dns.quad9.net", "ordns.he.net",
      "freedns.controld.com", "doh.ffmuc.net", "dns.alidns.com",
      "kronos.plan9-dns.com",
  };
  const char* kSpans[] = {"2023-09 main", "2024-02", "2024-03", "2024-04"};
  const int kRounds[] = {30, 9, 9, 9};  // month-long span, then 3-day spans

  core::SimWorld world(bench::kDefaultSeed);
  std::vector<core::CampaignResult> spans;

  for (int s = 0; s < 4; ++s) {
    core::MeasurementSpec spec;
    spec.resolvers = watchlist;
    spec.vantage_ids = {"ec2-ohio"};
    spec.rounds = kRounds[s];
    spec.seed = bench::kDefaultSeed + static_cast<std::uint64_t>(s);

    // Outage injection: kronos.plan9-dns.com goes dark for the March span.
    if (s == 2) world.fleet().set_offline("kronos.plan9-dns.com", true);
    if (s == 3) world.fleet().set_offline("kronos.plan9-dns.com", false);

    spans.push_back(core::CampaignRunner(world, spec).run());
  }

  std::printf("Per-span median DoH response times from EC2 Ohio (ms)\n\n");
  std::printf("%-28s", "resolver");
  for (const char* name : kSpans) std::printf(" %12s", name);
  std::printf(" %9s\n", "drift");
  std::printf("--------------------------------------------------------------------"
              "--------------------\n");

  for (const std::string& host : watchlist) {
    std::printf("%-28s", host.c_str());
    double lo = 1e18, hi = -1e18;
    bool gap = false;
    for (const auto& span : spans) {
      const double med = stats::median(span.response_times("ec2-ohio", host));
      if (std::isnan(med)) {
        std::printf(" %12s", "DOWN");
        gap = true;
        continue;
      }
      std::printf(" %10.1f  ", med);
      lo = std::min(lo, med);
      hi = std::max(hi, med);
    }
    if (gap) {
      std::printf(" %8s\n", "outage");
    } else {
      std::printf(" %7.0f%%\n", 100.0 * (hi - lo) / lo);
    }
  }

  std::printf("\nAvailability check (the paper's unresponsiveness predicate):\n");
  for (int s = 0; s < 4; ++s) {
    const bool down =
        spans[static_cast<std::size_t>(s)].availability.unresponsive_from(
            "ec2-ohio", "kronos.plan9-dns.com");
    std::printf("  %s: kronos.plan9-dns.com %s\n", kSpans[s],
                down ? "UNRESPONSIVE" : "responsive");
  }
  std::printf("\nExpected shape: stable medians across spans (the paper found no\n"
              "drastic changes); the injected March outage is flagged and clears.\n");
  return 0;
}
