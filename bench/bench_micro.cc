// Microbenchmarks (google-benchmark) for the hot paths under the measurement
// tool: DNS wire codec, name compression, base64url, HPACK, HTTP/2 framing,
// HTTP/1.1 codec, the resolver cache, JSON serialization, and the simulator's
// RNG/path sampling. These guard against performance regressions that would
// make large campaigns slow.
#include <benchmark/benchmark.h>

#include "client/session.h"
#include "core/campaign.h"
#include "util/json.h"
#include "dns/base64url.h"
#include "dns/message.h"
#include "geo/geodb.h"
#include "http/doh_media.h"
#include "http/h1.h"
#include "http/h2.h"
#include "http/hpack.h"
#include "netsim/path.h"
#include "netsim/rng.h"
#include "obs/runtime.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "lint/lint.h"
#include "resolver/cache.h"
#include "util/ring_stats.h"
#include "util/spsc_ring.h"
#include "resolver/server.h"
#include "resolver/upstream.h"

namespace {

using namespace ednsm;

dns::Message sample_query() {
  return dns::make_query(0x1234, dns::Name::parse("www.example.com").value(),
                         dns::RecordType::A);
}

dns::Message sample_response() {
  const dns::Message q = sample_query();
  return dns::make_response(
      q, dns::Rcode::NoError,
      resolver::synthesize_answers(q.questions.front().qname, dns::RecordType::A));
}

void BM_DnsEncodeQuery(benchmark::State& state) {
  const dns::Message q = sample_query();
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.encode());
  }
}
BENCHMARK(BM_DnsEncodeQuery);

void BM_DnsEncodeQueryPadded(benchmark::State& state) {
  const dns::Message q = sample_query();
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.encode(128));
  }
}
BENCHMARK(BM_DnsEncodeQueryPadded);

void BM_DnsDecodeResponse(benchmark::State& state) {
  const util::Bytes wire = sample_response().encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::Message::decode(wire));
  }
}
BENCHMARK(BM_DnsDecodeResponse);

void BM_Base64UrlEncode(benchmark::State& state) {
  util::Bytes data(static_cast<std::size_t>(state.range(0)));
  netsim::Rng rng(1);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::base64url_encode(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Base64UrlEncode)->Arg(64)->Arg(512)->Arg(4096);

void BM_Base64UrlDecode(benchmark::State& state) {
  util::Bytes data(static_cast<std::size_t>(state.range(0)));
  netsim::Rng rng(1);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  const std::string encoded = dns::base64url_encode(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::base64url_decode(encoded));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Base64UrlDecode)->Arg(64)->Arg(512)->Arg(4096);

void BM_HpackEncodeRequestHeaders(benchmark::State& state) {
  const std::vector<http::hpack::Header> headers = {
      {":method", "POST"},
      {":scheme", "https"},
      {":authority", "dns.example"},
      {":path", "/dns-query"},
      {"accept", "application/dns-message"},
      {"content-type", "application/dns-message"},
  };
  http::hpack::Encoder encoder;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(headers));
  }
}
BENCHMARK(BM_HpackEncodeRequestHeaders);

void BM_H2SerializeRequest(benchmark::State& state) {
  const util::Bytes dns_wire = sample_query().encode();
  const http::Request req =
      http::make_doh_request("dns.example", "/dns-query", dns_wire, true);
  http::H2ClientSession session;
  std::uint32_t sid = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.serialize_request(req, sid));
  }
}
BENCHMARK(BM_H2SerializeRequest);

void BM_H1EncodeDecode(benchmark::State& state) {
  const util::Bytes dns_wire = sample_query().encode();
  const http::Request req =
      http::make_doh_request("dns.example", "/dns-query", dns_wire, true);
  for (auto _ : state) {
    const util::Bytes wire = req.encode();
    benchmark::DoNotOptimize(http::Request::decode(wire));
  }
}
BENCHMARK(BM_H1EncodeDecode);

void BM_CacheHit(benchmark::State& state) {
  resolver::Cache cache;
  const resolver::CacheKey key{dns::Name::parse("www.example.com").value(),
                               dns::RecordType::A, dns::RecordClass::IN};
  cache.insert(key, dns::Rcode::NoError,
               resolver::synthesize_answers(key.qname, dns::RecordType::A),
               netsim::SimTime(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(key, netsim::SimTime(std::chrono::seconds(1))));
  }
}
BENCHMARK(BM_CacheHit);

void BM_CacheInsertEvict(benchmark::State& state) {
  resolver::Cache cache(1024);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const resolver::CacheKey key{
        dns::Name::parse("h" + std::to_string(i++) + ".example.com").value(),
        dns::RecordType::A, dns::RecordClass::IN};
    cache.insert(key, dns::Rcode::NoError, {}, netsim::SimTime(0));
  }
}
BENCHMARK(BM_CacheInsertEvict);

void BM_JsonDumpRecord(benchmark::State& state) {
  core::JsonObject o;
  o["vantage"] = core::Json("ec2-ohio");
  o["resolver"] = core::Json("dns.google");
  o["response_ms"] = core::Json(31.25);
  o["ok"] = core::Json(true);
  const core::Json j(std::move(o));
  for (auto _ : state) {
    benchmark::DoNotOptimize(j.dump());
  }
}
BENCHMARK(BM_JsonDumpRecord);

void BM_JsonParseRecord(benchmark::State& state) {
  const std::string text =
      R"({"ok":true,"resolver":"dns.google","response_ms":31.25,"vantage":"ec2-ohio"})";
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Json::parse(text));
  }
}
BENCHMARK(BM_JsonParseRecord);

void BM_RngLognormal(benchmark::State& state) {
  netsim::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.lognormal(-1.2, 0.45));
  }
}
BENCHMARK(BM_RngLognormal);

void BM_PathSample(benchmark::State& state) {
  const netsim::PathModel path = netsim::PathModel::between(
      geo::city::kChicago, geo::city::kFrankfurt, netsim::AccessLinkModel::residential(),
      netsim::AccessLinkModel::datacenter());
  netsim::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(path.sample_one_way_ms(rng));
  }
}
BENCHMARK(BM_PathSample);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  // Schedule-then-drain with a sprinkle of cancellations: the simulator's
  // innermost loop (heap push/pop + callback dispatch, no allocation for
  // small captures).
  const auto n = static_cast<std::size_t>(state.range(0));
  netsim::Rng rng(42);
  for (auto _ : state) {
    netsim::EventQueue q;
    std::uint64_t sink = 0;
    netsim::EventQueue::EventId last = 0;
    for (std::size_t i = 0; i < n; ++i) {
      last = q.schedule(netsim::SimDuration(rng.uniform_u64(1'000'000)), [&sink] { ++sink; });
      if ((i & 7u) == 7u) (void)q.cancel(last);
    }
    benchmark::DoNotOptimize(q.run_until_idle());
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

void BM_CampaignRound(benchmark::State& state) {
  // One measurement round over the full Appendix A.2 registry from one EC2
  // vantage: the unit of work the paper benches repeat thousands of times.
  core::MeasurementSpec spec;
  for (const auto& s : resolver::paper_resolver_list()) spec.resolvers.push_back(s.hostname);
  spec.vantage_ids = {"ec2-ohio"};
  spec.rounds = 1;
  spec.seed = 7;
  for (auto _ : state) {
    core::SimWorld world(spec.seed);
    core::CampaignResult result = core::CampaignRunner(world, spec).run();
    benchmark::DoNotOptimize(result.records.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(spec.resolvers.size()));
}
BENCHMARK(BM_CampaignRound);

void BM_TraceOverheadOnOff(benchmark::State& state) {
  // Same round as BM_CampaignRound, with the observability tracer disabled
  // (Arg(0)) or enabled (Arg(1)). The Arg(0) lane should match
  // BM_CampaignRound within noise — that is the "no measurable overhead when
  // off" budget — and the Arg(0)/Arg(1) gap is the cost of recording spans.
  const bool traced = state.range(0) == 1;
  core::MeasurementSpec spec;
  for (const auto& s : resolver::paper_resolver_list()) spec.resolvers.push_back(s.hostname);
  spec.vantage_ids = {"ec2-ohio"};
  spec.rounds = 1;
  spec.seed = 7;
  std::uint64_t events = 0;
  for (auto _ : state) {
    core::SimWorld world(spec.seed);
    if (traced) world.tracer().enable();
    core::CampaignResult result = core::CampaignRunner(world, spec).run();
    benchmark::DoNotOptimize(result.records.size());
    if (traced) events += world.tracer().emitted();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(spec.resolvers.size()));
  if (traced && state.iterations() > 0) {
    state.counters["trace_events"] =
        static_cast<double>(events) / static_cast<double>(state.iterations());
  }
}
BENCHMARK(BM_TraceOverheadOnOff)->Arg(0)->Arg(1);

void BM_DohQueryColdVsWarm(benchmark::State& state) {
  // One simulated DoH query end-to-end through the session layer. Arg(0):
  // every iteration pays a fresh TCP+TLS handshake (ReusePolicy::None);
  // Arg(1): a keepalive session is primed once, so iterations measure the
  // warm exchange path alone. The gap is the per-query cost of connection
  // setup that the decomposition table reports in simulated time.
  const bool warm = state.range(0) == 1;
  netsim::EventQueue queue;
  netsim::Network net(queue, netsim::Rng(11));
  const netsim::IpAddr client_ip = net.attach("client", geo::city::kColumbusOhio,
                                              netsim::AccessLinkModel::datacenter());
  resolver::ServerBehavior behavior;
  behavior.warm_cache_probability = 1.0;
  resolver::ResolverServer server(
      net, "dns.example", resolver::AnycastSite{"Chicago", geo::city::kChicago}, behavior);
  transport::ConnectionPool pool(net, client_ip);
  client::QueryOptions options;
  options.reuse = warm ? transport::ReusePolicy::Keepalive : transport::ReusePolicy::None;
  client::SessionTarget target;
  target.server = server.address();
  target.hostname = "dns.example";
  const client::SessionFactory factory(net, client_ip, pool);
  const auto session = factory.create(client::Protocol::DoH, std::move(target), options);
  const dns::Name qname = dns::Name::parse("www.example.com").value();
  auto ask = [&] {
    bool ok = false;
    session->query(qname, dns::RecordType::A,
                   [&ok](client::QueryOutcome o) { ok = o.ok; });
    queue.run_until_idle();
    return ok;
  };
  if (warm && !ask()) state.SkipWithError("priming query failed");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ask());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DohQueryColdVsWarm)->Arg(0)->Arg(1);

void BM_NameCompressionEncode(benchmark::State& state) {
  const dns::Name names[] = {
      dns::Name::parse("www.example.com").value(),
      dns::Name::parse("mail.example.com").value(),
      dns::Name::parse("example.com").value(),
  };
  for (auto _ : state) {
    dns::WireWriter w;
    dns::NameCompressor comp;
    for (const auto& n : names) comp.write(w, n);
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_NameCompressionEncode);

// TimeSeries fold: the monitor's per-record hot path (intern + map upsert +
// histogram add). 4 resolvers x 2 vantages cycling over 30 epoch buckets.
void BM_TimeSeriesFold(benchmark::State& state) {
  const char* resolvers[] = {"dns.google", "dns.quad9.net", "ordns.he.net", "doh.ffmuc.net"};
  const char* vantages[] = {"ec2-ohio", "ec2-frankfurt"};
  std::int64_t i = 0;
  obs::TimeSeries ts(1);
  for (auto _ : state) {
    const char* r = resolvers[i % 4];
    const char* v = vantages[i % 2];
    const std::int64_t epoch = i % 30;
    ts.add_counter("monitor.queries", v, r, "DoH", epoch);
    ts.observe("monitor.response_ms", v, r, "DoH", epoch,
               static_cast<double>(20 + i % 400));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TimeSeriesFold);

void BM_TimeSeriesBinaryRoundTrip(benchmark::State& state) {
  obs::TimeSeries ts(1);
  for (std::int64_t i = 0; i < 2000; ++i) {
    ts.add_counter("monitor.queries", i % 2 ? "v-a" : "v-b", "dns.google", "DoH", i % 30);
    ts.observe("monitor.response_ms", i % 2 ? "v-a" : "v-b", "dns.google", "DoH", i % 30,
               static_cast<double>(i % 500));
  }
  for (auto _ : state) {
    const util::Bytes blob = ts.to_binary();
    auto back = obs::TimeSeries::from_binary(blob);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ts.to_binary().size()));
}
BENCHMARK(BM_TimeSeriesBinaryRoundTrip);

// Full-tree static analysis: the three analyzer passes (symbol index, call
// graph, rules incl. determinism taint) over the committed src/tools/bench
// tree — the cost every CI push pays at the lint gate. Files are loaded once
// outside the timed loop so the lane measures analysis, not disk.
void BM_LintFullTree(benchmark::State& state) {
  const std::vector<lint::SourceFile> files =
      lint::load_tree({std::string(EDNSM_SOURCE_DIR) + "/src",
                       std::string(EDNSM_SOURCE_DIR) + "/tools",
                       std::string(EDNSM_SOURCE_DIR) + "/bench"});
  if (files.empty()) {
    state.SkipWithError("source tree not found at EDNSM_SOURCE_DIR");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lint::run_lint(files));
  }
  state.counters["files"] = static_cast<double>(files.size());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(files.size()));
}
BENCHMARK(BM_LintFullTree);

// Runtime telemetry overhead on the pipeline's hot handoff path: the same
// uncontended SpscRing push/pop loop with stats detached (arg 0 — the
// telemetry-off null-check cost every run pays) and attached with the real
// monotonic clock (arg 1 — the --progress-file cost). The delta between the
// two lanes is the number the ednsm_bench micro suite reports as
// telemetry_overhead_pct.
void BM_RuntimeTelemetryOverhead(benchmark::State& state) {
  util::SpscRing<std::uint64_t> ring(1024);
  util::RingStatSink sink;
  sink.now_ns = &obs::runtime_now_ns;
  if (state.range(0) != 0) ring.attach_stats(&sink);
  std::uint64_t sum = 0;
  std::uint64_t v = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    ring.push(i++);
    if (ring.try_pop(v)) sum += v;
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RuntimeTelemetryOverhead)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
