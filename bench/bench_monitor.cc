// Monitor-mode artifact: the longitudinal SLO board the paper's months-long
// collection implies but never renders. Runs the monitor over a watchlist of
// operators across all four tiers for a month of daily epochs, injects one
// mid-span outage (the same scenario bench_longitudinal scripts by hand
// against the raw fleet), and prints the rolling SLO states plus the detected
// event list. Also reports the wall cost of the epoch loop and the size of
// the two series encodings, so store regressions show up in bench output.
#include "common.h"

#include "monitor/monitor.h"
#include "monitor/prom.h"

using namespace ednsm;

int main() {
  monitor::MonitorSpec spec;
  spec.base.resolvers = {
      "dns.google", "security.cloudflare-dns.com", "dns.quad9.net", "ordns.he.net",
      "freedns.controld.com", "doh.ffmuc.net", "kronos.plan9-dns.com",
  };
  spec.base.vantage_ids = {"ec2-ohio"};
  spec.base.rounds = 3;
  spec.base.seed = bench::kDefaultSeed;
  spec.epochs = 30;  // one simulated month of daily epochs
  spec.outages.push_back(monitor::OutageScript{"kronos.plan9-dns.com", 12, 15});

  // ednsm-lint: allow(determinism-wallclock) — harness-side wall timing of
  // the simulation; never feeds simulated results.
  const auto wall_start = std::chrono::steady_clock::now();
  auto result = monitor::run_monitor(spec, 4);
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           // ednsm-lint: allow(determinism-wallclock) — harness wall timing
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  if (!result) {
    std::printf("monitor failed: %s\n", result.error().c_str());
    return 1;
  }
  const monitor::MonitorResult& mon = result.value();

  std::printf("# monitor: %zu resolvers x %d epochs x %d rounds -> %zu series points, "
              "%zu slo samples (wall %lld ms)\n",
              spec.base.resolvers.size(), spec.epochs, spec.base.rounds, mon.series.size(),
              mon.slos.size(), static_cast<long long>(wall_ms));
  std::printf("# store: %zu bytes binary, %zu bytes jsonl, %zu bytes prom\n\n",
              mon.series.to_binary().size(), mon.series.jsonl().size(),
              monitor::to_prometheus(mon.series).size());

  // Per-resolver state strip: one character per epoch (. healthy, d degraded,
  // X outage) — the availability heatmap in terminal form.
  std::printf("%-28s %s\n", "resolver", "epochs 0..29");
  for (const std::string& host : spec.base.resolvers) {
    std::string strip;
    for (const monitor::SloSample& s : mon.slos) {
      if (s.resolver != host) continue;
      strip += s.state == "outage" ? 'X' : (s.state == "degraded" ? 'd' : '.');
    }
    std::printf("%-28s %s\n", host.c_str(), strip.c_str());
  }

  std::printf("\nDetected events:\n");
  for (const monitor::MonitorEvent& e : mon.events) {
    std::printf("  %-12s %-28s epochs %2d..%-2d", e.type.c_str(), e.resolver.c_str(),
                e.start_epoch, e.end_epoch);
    if (e.transitions > 0) std::printf("  (%d transitions)", e.transitions);
    std::printf("\n");
  }
  std::printf("\nExpected shape: the scripted epoch 12-14 outage appears as exactly one\n"
              "outage event with those bounds, plus the degradation smear while the\n"
              "rolling window still contains the failed epochs.\n");
  return 0;
}
