// Extension bench: effect of encrypted-resolver choice on page load time —
// the follow-up the paper's limitations section calls for ("an assessment of
// the effects of encrypted DNS performance on application performance,
// including web page load time, across the full set of encrypted DNS
// resolvers"). Grounded in WProf's critical-path model and Otto et al.'s
// CDN-mapping effect.
#include "common.h"

#include "stats/quantile.h"
#include "web/page_load.h"

using namespace ednsm;

int main() {
  const std::vector<std::string> resolvers = {
      "dns.google",            // mainstream global anycast
      "ordns.he.net",          // ISP backbone, on-net from home
      "freedns.controld.com",  // regional anycast
      "doh.ffmuc.net",         // EU unicast (distant from the home vantage)
      "dns.alidns.com",        // Asia anycast (distant; CDN mapping suffers)
  };

  std::printf("Page load time by resolver, Chicago home vantage\n");
  std::printf("(20 cold page loads each: 30 objects, 8 domains, depth 3)\n\n");
  std::printf("%-22s %10s %10s %10s %10s\n", "resolver", "PLT med", "DNS med", "fetch med",
              "DNS share");
  std::printf("------------------------------------------------------------------\n");

  for (const std::string& host : resolvers) {
    core::SimWorld world(bench::kDefaultSeed);
    web::PageLoadSimulator sim(world, "home-chicago-1", host);
    std::vector<double> plt, dns, fetch;
    for (int visit = 0; visit < 20; ++visit) {
      const web::PageSpec page = web::make_page(
          "site" + std::to_string(visit) + ".example.com", 30, 8, 3,
          bench::kDefaultSeed + static_cast<std::uint64_t>(visit));
      sim.clear_browser_cache();  // cold visit
      const web::PageLoadResult r = sim.load(page);
      plt.push_back(r.plt_ms);
      dns.push_back(r.dns_ms);
      fetch.push_back(r.fetch_ms);
    }
    const double plt_med = stats::median(plt);
    const double dns_med = stats::median(dns);
    std::printf("%-22s %8.0fms %8.0fms %8.0fms %9.0f%%\n", host.c_str(), plt_med, dns_med,
                stats::median(fetch), 100.0 * dns_med / plt_med);
  }

  std::printf("\nExpected shape (WProf/Otto/Sundaresan): local+anycast resolvers keep\n"
              "DNS near ~10%% of PLT; distant resolvers inflate both the DNS share\n"
              "and — through CDN mapping — the fetch share.\n");
  return 0;
}
