// §3.1: "Our tool enables researchers to issue traditional DNS, DoT, and DoH
// queries." This bench drives the campaign engine itself over every protocol
// it speaks (plus the DoQ extension) against a representative resolver set
// from Ohio, printing per-protocol medians and error rates — the tool-level
// view of the protocol ladder (the client-level view is
// bench_ablation_protocols).
#include "common.h"

#include "stats/quantile.h"

using namespace ednsm;

int main() {
  const std::vector<std::string> resolvers = {
      "dns.google", "dns.quad9.net", "ordns.he.net", "freedns.controld.com",
      "kronos.plan9-dns.com", "doh.la.ahadns.net",
  };
  const client::Protocol protocols[] = {client::Protocol::Do53, client::Protocol::DoT,
                                        client::Protocol::DoH, client::Protocol::DoQ};

  std::printf("Campaign-level protocol matrix from EC2 Ohio (20 rounds x 3 domains)\n\n");
  std::printf("%-22s", "resolver");
  for (const auto p : protocols) std::printf(" %10s", std::string(client::to_string(p)).c_str());
  std::printf("\n");
  std::printf("--------------------------------------------------------------------\n");

  std::map<std::string, std::map<client::Protocol, double>> medians;
  std::map<client::Protocol, double> error_rates;

  for (const auto protocol : protocols) {
    core::SimWorld world(bench::kDefaultSeed);
    core::MeasurementSpec spec;
    spec.resolvers = resolvers;
    spec.vantage_ids = {"ec2-ohio"};
    spec.protocol = protocol;
    spec.rounds = 20;
    spec.seed = bench::kDefaultSeed;
    const core::CampaignResult result = core::CampaignRunner(world, spec).run();
    for (const std::string& host : resolvers) {
      medians[host][protocol] = stats::median(result.response_times("ec2-ohio", host));
    }
    error_rates[protocol] = result.availability.overall().error_rate();
  }

  for (const std::string& host : resolvers) {
    std::printf("%-22s", host.c_str());
    for (const auto p : protocols) std::printf(" %8.1f  ", medians[host][p]);
    std::printf("\n");
  }
  std::printf("%-22s", "(error rate)");
  for (const auto p : protocols) std::printf(" %8.2f%% ", 100.0 * error_rates[p]);
  std::printf("\n");

  std::printf("\nExpected shape per row: Do53 ~= 1 RTT; DoT ~= DoH ~= 3 RTT;\n"
              "DoQ ~= 2 RTT (combined handshake). Encryption does not change the\n"
              "resolver ranking — the paper's cross-resolver comparisons carry over.\n");
  return 0;
}
