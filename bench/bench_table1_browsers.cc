// Reproduces Table 1: "Modern browsers provide only a few choices for
// encrypted DNS resolver, which we define as mainstream resolvers."
// This is registry data, not a measurement — the bench prints the matrix and
// cross-checks it against the resolver registry's mainstream flags.
#include <cstdio>

#include "report/figures.h"
#include "resolver/registry.h"

int main() {
  using namespace ednsm;
  std::printf("Table 1: browser x provider DoH support matrix (as of May 9, 2024)\n\n");
  std::printf("%s\n", report::browser_matrix().to_text().c_str());

  std::printf("Mainstream resolvers in the measured population (%zu of %zu):\n",
              resolver::mainstream_hostnames().size(),
              resolver::paper_resolver_list().size());
  for (const std::string& host : resolver::mainstream_hostnames()) {
    std::printf("  %s\n", host.c_str());
  }
  std::printf("\n(CleanBrowsing and OpenDNS appear in Table 1 but not in the\n"
              "Appendix A.2 measurement population.)\n");
  return 0;
}
