// Reproduces Table 2: "Median DNS response times for non-mainstream
// resolvers (Asia)" — the five Asia-located non-mainstream resolvers with the
// largest gap between the Seoul (near) and Frankfurt (far) vantages.
//
// Paper values for reference:
//   antivirus.bebasid.com   99 ms Seoul   380 ms Frankfurt
//   dns.twnic.tw            59 ms Seoul   290 ms Frankfurt
//   dnslow.me               29 ms Seoul   240 ms Frankfurt
//   jp-tiar.app             39 ms Seoul   250 ms Frankfurt
//   public.dns.iij.jp       39.5 ms Seoul 250 ms Frankfurt
// The reproduction matches the *shape*: every row's Seoul median is far
// below its Frankfurt median.
#include "common.h"

int main() {
  using namespace ednsm;
  auto result = bench::run_paper_campaign({"ec2-seoul", "ec2-frankfurt"}, 30);
  std::printf("Table 2: median response times, Asia non-mainstream resolvers\n\n%s\n",
              report::remote_median_table(result, geo::Continent::Asia, "ec2-seoul",
                                          "ec2-frankfurt")
                  .to_text()
                  .c_str());
  return 0;
}
