// Reproduces Table 3: "Median DNS response times for non-mainstream
// resolvers (Europe)" — the five EU-located non-mainstream resolvers with the
// largest gap between the Frankfurt (near) and Seoul (far) vantages.
//
// Paper values for reference:
//   doh.ffmuc.net   70 ms Frankfurt   569 ms Seoul
//   dns0.eu         20 ms Frankfurt   399 ms Seoul
//   open.dns0.eu    10 ms Frankfurt   324 ms Seoul
//   kids.dns0.eu    10 ms Frankfurt   309 ms Seoul
//   dns.njal.la     20 ms Frankfurt   289 ms Seoul
#include "common.h"

int main() {
  using namespace ednsm;
  auto result = bench::run_paper_campaign({"ec2-frankfurt", "ec2-seoul"}, 30);
  std::printf("Table 3: median response times, Europe non-mainstream resolvers\n\n%s\n",
              report::remote_median_table(result, geo::Continent::Europe, "ec2-frankfurt",
                                          "ec2-seoul")
                  .to_text()
                  .c_str());
  return 0;
}
