// Shared harness for the reproduction benches: runs the paper's measurement
// campaign over the full Appendix A.2 registry and prints figures/tables in
// the paper's format. Each bench binary regenerates exactly one paper
// artifact (see DESIGN.md's experiment index).
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/parallel_campaign.h"
#include "report/figures.h"
#include "resolver/registry.h"

namespace ednsm::bench {

inline constexpr std::uint64_t kDefaultSeed = 20250704;

// Campaign over every registry resolver from the given vantages.
//
// threads == 0 (the default) runs the legacy single-world engine, preserving
// the exact record streams of earlier releases. threads >= 1 runs the
// shard-per-vantage engine of core/parallel_campaign.h on that many workers;
// its output is identical for every threads value, but is a different (also
// deterministic) decomposition than the legacy engine's.
inline core::CampaignResult run_paper_campaign(const std::vector<std::string>& vantage_ids,
                                               int rounds,
                                               std::uint64_t seed = kDefaultSeed,
                                               int threads = 0) {
  core::MeasurementSpec spec;
  for (const auto& s : resolver::paper_resolver_list()) spec.resolvers.push_back(s.hostname);
  spec.vantage_ids = vantage_ids;
  spec.rounds = rounds;
  spec.seed = seed;

  // ednsm-lint: allow(determinism-wallclock) — harness-side wall timing of
  // the simulation; never feeds simulated results.
  const auto wall_start = std::chrono::steady_clock::now();
  core::CampaignResult result;
  if (threads <= 0) {
    core::SimWorld world(seed);
    result = core::CampaignRunner(world, spec).run();
  } else {
    result = core::run_parallel_campaign(spec, threads);
  }
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           // ednsm-lint: allow(determinism-wallclock) — harness wall timing
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  // One expression in day units; the old form truncated microseconds->seconds
  // before multiplying, collapsing sub-second intervals to zero days.
  const double simulated_days =
      std::chrono::duration<double, std::ratio<86400>>(spec.round_interval * rounds).count();
  std::printf("# campaign: %zu resolvers x %zu vantages x %d rounds -> %zu queries, "
              "%zu pings (simulated %.1f days; wall %lld ms)\n\n",
              spec.resolvers.size(), vantage_ids.size(), rounds, result.records.size(),
              result.pings.size(), simulated_days, static_cast<long long>(wall_ms));
  return result;
}

inline void print_figure(const core::CampaignResult& result, const std::string& vantage_id,
                         geo::Continent continent, const std::string& title) {
  std::printf("%s\n", report::render_figure(result, vantage_id, continent, title).c_str());
}

}  // namespace ednsm::bench
