// Reruns the paper's core experiment at example scale: measure a set of
// mainstream and non-mainstream DoH resolvers from the three EC2 vantage
// points, print a per-vantage ranking, and write the raw results to a JSON
// file (the tool's output format).
//
//   $ ./global_vantage_study [rounds] [output.json]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/campaign.h"
#include "report/figures.h"
#include "stats/quantile.h"

int main(int argc, char** argv) {
  using namespace ednsm;

  const int rounds = argc > 1 ? std::atoi(argv[1]) : 15;
  const char* out_path = argc > 2 ? argv[2] : "global_vantage_results.json";

  core::SimWorld world(7);
  core::MeasurementSpec spec;
  spec.resolvers = {
      "dns.google", "security.cloudflare-dns.com", "dns.quad9.net",  // mainstream
      "ordns.he.net", "freedns.controld.com",                        // NA alternatives
      "dns0.eu", "dns.brahma.world", "doh.ffmuc.net",                // EU
      "dns.alidns.com", "public.dns.iij.jp", "dns.twnic.tw",         // Asia
  };
  spec.vantage_ids = {"ec2-ohio", "ec2-frankfurt", "ec2-seoul"};
  spec.rounds = rounds;
  spec.seed = 7;

  const core::CampaignResult result = core::CampaignRunner(world, spec).run();

  for (const std::string& vantage : spec.vantage_ids) {
    std::printf("=== ranking from %s ===\n", vantage.c_str());
    // Sort resolvers by median response time at this vantage.
    std::vector<std::pair<double, std::string>> ranked;
    for (const std::string& host : spec.resolvers) {
      ranked.emplace_back(stats::median(result.response_times(vantage, host)), host);
    }
    std::sort(ranked.begin(), ranked.end());
    for (const auto& [med, host] : ranked) {
      const resolver::ResolverSpec* rs = resolver::find_resolver(host);
      std::printf("  %7.1f ms  %-28s %s\n", med, host.c_str(),
                  (rs != nullptr && rs->mainstream) ? "[mainstream]" : "");
    }
    std::printf("\n");
  }

  std::ofstream out(out_path);
  result.write_json(out);
  std::printf("raw results written to %s (%zu records)\n", out_path, result.records.size());
  return 0;
}
