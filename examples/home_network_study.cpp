// The paper's home-network angle: measure from all four Raspberry Pi-class
// home devices and the Ohio EC2 instance, then compare medians and
// variability (IQR) between the home and datacenter vantage classes —
// including the §4 cases where the two disagree (doh.la.ahadns.net,
// dns.twnic.tw).
//
//   $ ./home_network_study [rounds]
#include <cstdio>
#include <cstdlib>

#include "core/campaign.h"
#include "report/table.h"
#include "stats/quantile.h"

int main(int argc, char** argv) {
  using namespace ednsm;

  const int rounds = argc > 1 ? std::atoi(argv[1]) : 20;
  core::SimWorld world(11);
  core::MeasurementSpec spec;
  spec.resolvers = {"dns.google", "dns.quad9.net", "ordns.he.net",
                    "doh.la.ahadns.net", "dns.twnic.tw", "kronos.plan9-dns.com"};
  spec.vantage_ids = {"home-chicago-1", "home-chicago-2", "home-chicago-3",
                      "home-chicago-4", "ec2-ohio"};
  spec.rounds = rounds;
  spec.seed = 11;

  const core::CampaignResult result = core::CampaignRunner(world, spec).run();

  // Pool the four home devices into one sample per resolver.
  auto home_samples = [&](const std::string& host) {
    std::vector<double> all;
    for (int unit = 1; unit <= 4; ++unit) {
      const auto v = result.response_times("home-chicago-" + std::to_string(unit), host);
      all.insert(all.end(), v.begin(), v.end());
    }
    return all;
  };

  report::Table table({"Resolver", "home med (ms)", "home IQR", "EC2 med (ms)", "EC2 IQR"});
  for (const std::string& host : spec.resolvers) {
    const auto home = stats::box_summary(home_samples(host));
    const auto ec2 = stats::box_summary(result.response_times("ec2-ohio", host));
    table.add_row({host, report::fmt(home.median), report::fmt(home.iqr()),
                   report::fmt(ec2.median), report::fmt(ec2.iqr())});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("Expected (paper §4): home medians a few ms above EC2 for nearby\n"
              "resolvers; doh.la.ahadns.net and dns.twnic.tw markedly worse from\n"
              "home; ordns.he.net the fastest resolver from the home devices.\n");
  return 0;
}
