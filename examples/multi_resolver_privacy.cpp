// Split your DNS profile across resolvers: drive the query-distribution API
// directly (the K-resolver idea the paper's related work motivates) and watch
// the privacy/performance tradeoff move as the strategy changes.
//
//   $ ./multi_resolver_privacy [queries] [strategy]
//   strategy: single|round-robin|random|sharded|fastest-k (default: compare all)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/distribution.h"
#include "report/table.h"
#include "stats/quantile.h"

using namespace ednsm;

namespace {

struct NamedStrategy {
  const char* name;
  core::DistributionStrategy strategy;
};

constexpr NamedStrategy kStrategies[] = {
    {"single", core::DistributionStrategy::SingleFastest},
    {"round-robin", core::DistributionStrategy::RoundRobin},
    {"random", core::DistributionStrategy::UniformRandom},
    {"sharded", core::DistributionStrategy::HashSharded},
    {"fastest-k", core::DistributionStrategy::FastestK},
};

}  // namespace

int main(int argc, char** argv) {
  const int queries = argc > 1 ? std::atoi(argv[1]) : 300;
  const char* only = argc > 2 ? argv[2] : nullptr;

  const std::vector<std::string> resolvers = {
      "dns.google", "dns.quad9.net", "ordns.he.net", "freedns.controld.com",
      "dns0.eu",
  };
  const auto workload =
      core::zipf_workload(/*unique_domains=*/120, static_cast<std::size_t>(queries),
                          /*alpha=*/0.95, /*seed=*/23);

  report::Table table(
      {"Strategy", "median (ms)", "p90 (ms)", "max op. share", "entropy (bits)"});

  for (const NamedStrategy& named : kStrategies) {
    if (only != nullptr && std::strcmp(only, named.name) != 0) continue;

    core::SimWorld world(23);
    core::DistributorConfig config;
    config.strategy = named.strategy;
    config.k = 2;
    config.seed = 23;
    core::QueryDistributor dist(world, "home-chicago-1", resolvers, config);
    dist.calibrate();

    std::vector<double> latencies;
    for (const std::string& domain : workload) {
      dist.resolve(domain, [&](const std::string&, client::QueryOutcome o) {
        if (o.ok) latencies.push_back(netsim::to_ms(o.timing.total));
      });
      world.run();
    }
    table.add_row({named.name, report::fmt(stats::median(latencies)),
                   report::fmt(stats::quantile(latencies, 0.9)),
                   report::fmt(dist.privacy().max_share() * 100.0, 0) + "%",
                   report::fmt(dist.privacy().entropy_bits(), 2)});
  }

  std::printf("Distributing %d DoH queries over %zu resolvers from a Chicago home\n\n%s\n",
              queries, resolvers.size(), table.to_text().c_str());
  std::printf("Reading the table: lower max-operator-share / higher entropy means no\n"
              "single resolver can reconstruct your browsing profile; the paper's\n"
              "measurements tell you which resolvers are fast enough to be in the mix.\n");
  return 0;
}
