// Compare Do53 / DoT / DoH latency from a home network, with and without
// connection reuse — the client-API-level view of the ablation benches.
// Demonstrates driving the protocol clients directly (without the campaign
// machinery) for custom experiments.
//
//   $ ./protocol_comparison [queries]
#include <cstdio>
#include <cstdlib>

#include "client/do53.h"
#include "client/doh.h"
#include "client/dot.h"
#include "core/world.h"
#include "report/table.h"
#include "stats/quantile.h"

using namespace ednsm;

namespace {

std::vector<double> measure(core::SimWorld& world, client::Protocol protocol,
                            transport::ReusePolicy policy, int queries) {
  auto& vantage = world.vantage("home-chicago-1");
  const auto server = world.fleet().address_for("dns.quad9.net", vantage.info.location);

  client::QueryOptions options;
  options.reuse = policy;
  client::Do53Client do53(world.net(), vantage.addr, options);
  client::DotClient dot(world.net(), *vantage.pool, options);
  client::DohClient doh(world.net(), *vantage.pool, options);

  const dns::Name name = dns::Name::parse("wikipedia.com").value();
  std::vector<double> times;
  auto record = [&](client::QueryOutcome o) {
    if (o.ok) times.push_back(netsim::to_ms(o.timing.total));
  };
  for (int i = 0; i < queries; ++i) {
    switch (protocol) {
      case client::Protocol::Do53: do53.query(*server, name, dns::RecordType::A, record); break;
      case client::Protocol::DoT:
        dot.query(*server, "dns.quad9.net", name, dns::RecordType::A, record);
        break;
      case client::Protocol::DoH:
        doh.query(*server, "dns.quad9.net", name, dns::RecordType::A, record);
        break;
      default:
        break;  // DoQ is exercised by bench_ablation_doq
    }
    world.run();
  }
  if (policy != transport::ReusePolicy::None && times.size() > 1) {
    times.erase(times.begin());  // drop the unavoidable cold start
  }
  return times;
}

}  // namespace

int main(int argc, char** argv) {
  const int queries = argc > 1 ? std::atoi(argv[1]) : 40;

  report::Table table({"Protocol", "Reuse", "median (ms)", "p90 (ms)"});
  for (const auto policy : {transport::ReusePolicy::None, transport::ReusePolicy::Keepalive}) {
    for (const auto protocol :
         {client::Protocol::Do53, client::Protocol::DoT, client::Protocol::DoH}) {
      core::SimWorld world(17);
      const auto times = measure(world, protocol, policy, queries);
      table.add_row({std::string(client::to_string(protocol)),
                     std::string(transport::to_string(policy)),
                     report::fmt(stats::median(times)),
                     report::fmt(stats::quantile(times, 0.9))});
    }
  }
  std::printf("dns.quad9.net from a Chicago home network, %d queries per cell\n\n%s\n",
              queries, table.to_text().c_str());
  std::printf("Encrypted DNS costs ~2 extra round trips cold; reuse closes the gap\n"
              "(Zhu et al. / Böttger et al., as cited in the paper's related work).\n");
  return 0;
}
