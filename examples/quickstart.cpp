// Quickstart: measure a handful of DoH resolvers from one vantage point and
// print per-resolver medians — the smallest useful use of the toolkit.
//
//   $ ./quickstart [seed]
//
// Walkthrough:
//   1. Build a SimWorld (simulated internet + the paper's resolver fleet).
//   2. Describe the measurement in a MeasurementSpec.
//   3. Run the campaign; get records back.
//   4. Summarize.
#include <cstdio>
#include <cstdlib>

#include "core/campaign.h"
#include "report/table.h"
#include "stats/quantile.h"

int main(int argc, char** argv) {
  using namespace ednsm;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  core::SimWorld world(seed);

  core::MeasurementSpec spec;
  spec.resolvers = {"dns.google", "security.cloudflare-dns.com", "dns.quad9.net",
                    "ordns.he.net", "freedns.controld.com", "doh.ffmuc.net",
                    "dns.alidns.com"};
  spec.vantage_ids = {"ec2-ohio"};
  spec.rounds = 25;
  spec.seed = seed;

  core::CampaignRunner runner(world, spec);
  const core::CampaignResult result = runner.run();

  report::Table table({"Resolver", "median (ms)", "p90 (ms)", "ping (ms)", "ok", "err"});
  for (const std::string& host : spec.resolvers) {
    const auto responses = result.response_times("ec2-ohio", host);
    const auto pings = result.ping_times("ec2-ohio", host);
    const auto counts = result.availability.per_resolver(host);
    table.add_row({host, report::fmt(stats::median(responses)),
                   report::fmt(stats::quantile(responses, 0.9)),
                   report::fmt(stats::median(pings)), std::to_string(counts.successes),
                   std::to_string(counts.errors)});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("%zu queries, %zu pings, %.2f%% error rate\n", result.records.size(),
              result.pings.size(), result.availability.overall().error_rate() * 100.0);
  return 0;
}
