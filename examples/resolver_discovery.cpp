// The use case the paper motivates: a client looking beyond the browser's
// built-in resolver list. Scan the full public-resolver registry from one
// vantage point, drop anything unavailable or slow, and print the viable
// alternatives with their geolocation — i.e., "which encrypted DNS resolvers
// could I actually use from here?"
//
//   $ ./resolver_discovery [vantage-id] [rounds]
//   vantage-id: ec2-ohio | ec2-frankfurt | ec2-seoul | home-chicago-1..4
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/campaign.h"
#include "report/table.h"
#include "resolver/registry.h"
#include "stats/quantile.h"

int main(int argc, char** argv) {
  using namespace ednsm;

  const std::string vantage = argc > 1 ? argv[1] : "ec2-frankfurt";
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 8;

  core::SimWorld world(13);
  core::MeasurementSpec spec;
  for (const auto& s : resolver::paper_resolver_list()) spec.resolvers.push_back(s.hostname);
  spec.vantage_ids = {vantage};
  spec.rounds = rounds;
  spec.seed = 13;

  std::printf("scanning %zu public DoH resolvers from %s (%d rounds)...\n\n",
              spec.resolvers.size(), vantage.c_str(), rounds);
  const core::CampaignResult result = core::CampaignRunner(world, spec).run();
  const geo::GeoDb geodb = resolver::build_geodb();

  struct Candidate {
    double median;
    double error_rate;
    std::string host;
  };
  std::vector<Candidate> viable;
  int unavailable = 0, slow = 0;
  for (const std::string& host : spec.resolvers) {
    const auto counts = result.availability.per_pair(vantage, host);
    if (counts.successes == 0) {
      ++unavailable;
      continue;
    }
    const double med = stats::median(result.response_times(vantage, host));
    if (std::isnan(med) || med > 100.0) {  // too slow to be a daily driver
      ++slow;
      continue;
    }
    viable.push_back({med, counts.error_rate(), host});
  }
  std::sort(viable.begin(), viable.end(),
            [](const Candidate& a, const Candidate& b) { return a.median < b.median; });

  report::Table table({"Resolver", "median (ms)", "err %", "located", "mainstream?"});
  for (const Candidate& c : viable) {
    const auto geo_rec = geodb.lookup(c.host);
    const resolver::ResolverSpec* rs = resolver::find_resolver(c.host);
    table.add_row({c.host, report::fmt(c.median), report::fmt(c.error_rate * 100.0),
                   geo_rec.has_value() ? geo_rec->city : "(no location)",
                   (rs != nullptr && rs->mainstream) ? "yes" : ""});
  }
  std::printf("%s\n", table.to_text().c_str());

  int non_mainstream = 0;
  for (const Candidate& c : viable) {
    const resolver::ResolverSpec* rs = resolver::find_resolver(c.host);
    if (rs != nullptr && !rs->mainstream) ++non_mainstream;
  }
  std::printf("%zu viable (<100 ms median), of which %d non-mainstream;"
              " %d unavailable, %d too slow.\n",
              viable.size(), non_mainstream, unavailable, slow);
  std::printf("\nThe paper's takeaway: users in most regions have more choices than\n"
              "the handful of browser defaults — but only among resolvers local to\n"
              "(or anycast near) their region.\n");
  return 0;
}
