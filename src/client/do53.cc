#include "client/do53.h"

#include "obs/trace.h"

namespace ednsm::client {

namespace {
constexpr netsim::SimDuration kRetransmitAfter = std::chrono::seconds(2);
}

Do53Client::Do53Client(netsim::Network& net, netsim::IpAddr local_ip, QueryOptions options)
    : net_(net), local_ip_(local_ip), options_(options) {}

Do53Client::Do53Client(netsim::Network& net, netsim::IpAddr local_ip, SessionTarget target,
                       QueryOptions options)
    : net_(net), local_ip_(local_ip), target_(std::move(target)), options_(options) {}

void Do53Client::query(const dns::Name& qname, dns::RecordType qtype, QueryCallback cb) {
  query(target_.server, qname, qtype, std::move(cb));
}

void Do53Client::query(netsim::IpAddr server, const dns::Name& qname, dns::RecordType qtype,
                       QueryCallback cb) {
  struct State {
    std::unique_ptr<transport::UdpSocket> socket;
    std::unique_ptr<SingleFire> guard;
    std::optional<netsim::EventQueue::EventId> retransmit_timer;
    netsim::SimTime started{0};
    std::uint16_t id = 0;
    Do53Client* owner = nullptr;
  };
  auto state = std::make_shared<State>();
  state->owner = this;
  ++inflight_;

  const netsim::Endpoint local{local_ip_, net_.ephemeral_port(local_ip_)};
  const netsim::Endpoint remote{server, netsim::kPortDns};
  state->socket = std::make_unique<transport::UdpSocket>(net_, local);
  state->started = net_.queue().now();
  state->id = static_cast<std::uint16_t>(net_.rng().next_u64() & 0xffff);

  const dns::Message query_msg = dns::make_query(state->id, qname, qtype);
  const util::Bytes wire = query_msg.encode(options_.pad_block);

  auto finish = [this, state, cb](QueryOutcome outcome) {
    outcome.protocol = Protocol::Do53;
    outcome.timing.total = net_.queue().now() - state->started;
    if (state->retransmit_timer.has_value()) {
      net_.queue().cancel(*state->retransmit_timer);
      state->retransmit_timer.reset();
    }
    --inflight_;
    // Break the ownership cycle (socket handler and guard capture `state`).
    // The socket's receive handler may be the code calling us right now, so
    // its destruction is deferred to a fresh event — destroying an executing
    // std::function is undefined behaviour.
    net_.queue().schedule(
        netsim::kZeroDuration,
        [doomed = std::shared_ptr<transport::UdpSocket>(std::move(state->socket))] {});
    state->guard.reset();
    cb(std::move(outcome));
  };

  state->guard = std::make_unique<SingleFire>(net_.queue(), options_.timeout, [finish] {
    QueryOutcome timeout;
    timeout.error = QueryError{QueryErrorClass::Timeout, "do53: no response"};
    finish(std::move(timeout));
  });

  state->socket->on_receive([state, finish](const netsim::Datagram& d) {
    if (state->guard == nullptr || state->guard->fired()) return;  // late duplicate
    auto response = dns::Message::decode(d.payload);
    QueryOutcome outcome;
    if (!response) {
      outcome.error = QueryError{QueryErrorClass::Malformed, response.error()};
    } else if (response.value().header.id != state->id || !response.value().header.qr) {
      return;  // stray datagram: keep waiting
    } else {
      outcome.ok = true;
      outcome.rcode = response.value().header.rcode;
      outcome.answers = std::move(response.value().answers);
    }
    if (!state->guard->fire()) return;
    // No connection phases on UDP: the whole query is one exchange.
    outcome.timing.exchange = state->owner->net_.queue().now() - state->started;
    OBS_COMPLETE(state->owner->net_.queue(), "client", "do53-exchange", state->started,
                 outcome.timing.exchange);
    finish(std::move(outcome));
  });

  state->socket->send_to(remote, wire);

  // dig-style retransmission once the initial wait elapses.
  if (options_.timeout > kRetransmitAfter) {
    state->retransmit_timer =
        net_.queue().schedule(kRetransmitAfter, [this, state, remote, wire] {
          state->retransmit_timer.reset();
          if (!state->guard->fired() && state->socket) {
            state->socket->send_to(remote, wire);
          }
        });
  }
}

}  // namespace ednsm::client
