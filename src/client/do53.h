// Do53 client: plain DNS over UDP with dig-like retransmission (retry after
// 2 s, overall deadline from QueryOptions). The baseline protocol in the
// ablation benches.
#pragma once

#include <memory>

#include "client/query.h"
#include "client/session.h"
#include "netsim/network.h"
#include "transport/udp.h"

namespace ednsm::client {

class Do53Client : public ResolverSession {
 public:
  Do53Client(netsim::Network& net, netsim::IpAddr local_ip, QueryOptions options = {});
  // Session-bound form: ResolverSession::query goes to `target.server`.
  Do53Client(netsim::Network& net, netsim::IpAddr local_ip, SessionTarget target,
             QueryOptions options = {});

  // Resolve (qname, qtype) against `server` (port 53). Callback fires once.
  void query(netsim::IpAddr server, const dns::Name& qname, dns::RecordType qtype,
             QueryCallback cb);

  // ResolverSession:
  void query(const dns::Name& qname, dns::RecordType qtype, QueryCallback cb) override;
  [[nodiscard]] Protocol protocol() const noexcept override { return Protocol::Do53; }
  [[nodiscard]] const SessionTarget& target() const noexcept override { return target_; }

  [[nodiscard]] const QueryOptions& options() const noexcept { return options_; }

 private:
  netsim::Network& net_;
  netsim::IpAddr local_ip_;
  SessionTarget target_;
  QueryOptions options_;
  std::uint64_t inflight_ = 0;  // live query states (for leak checks in tests)

 public:
  [[nodiscard]] std::uint64_t inflight() const noexcept { return inflight_; }
};

}  // namespace ednsm::client
