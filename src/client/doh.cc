#include "client/doh.h"

#include "http/doh_media.h"
#include "obs/trace.h"

namespace ednsm::client {

DohClient::DohClient(netsim::Network& net, transport::ConnectionPool& pool,
                     QueryOptions options)
    : net_(net), pool_(pool), options_(options) {}

DohClient::DohClient(netsim::Network& net, transport::ConnectionPool& pool, SessionTarget target,
                     QueryOptions options)
    : net_(net), pool_(pool), target_(std::move(target)), options_(options) {}

void DohClient::query(const dns::Name& qname, dns::RecordType qtype, QueryCallback cb) {
  query(target_.server, target_.hostname, qname, qtype, std::move(cb));
}

void DohClient::query(netsim::IpAddr server, const std::string& sni, const dns::Name& qname,
                      dns::RecordType qtype, QueryCallback cb) {
  struct State {
    std::unique_ptr<SingleFire> guard;
    netsim::SimTime started{0};
    std::uint16_t id = 0;
    bool connected = false;  // lease acquired; deadline hits are then "timeout"
  };
  auto state = std::make_shared<State>();
  state->started = net_.queue().now();
  state->id = static_cast<std::uint16_t>(net_.rng().next_u64() & 0xffff);

  const netsim::Endpoint remote{server, netsim::kPortHttps};
  const transport::SessionKey session_key{remote, sni};

  auto finish = [this, state, cb](QueryOutcome outcome) {
    outcome.protocol = Protocol::DoH;
    outcome.timing.total = net_.queue().now() - state->started;
    state->guard.reset();
    cb(std::move(outcome));
  };

  state->guard = std::make_unique<SingleFire>(
      net_.queue(), options_.timeout, [this, state, remote, sni, session_key, finish] {
        pool_.invalidate(remote, sni);
        h2_sessions_.erase(session_key);
        QueryOutcome timeout;
        // A deadline that fires before the connection was ever established is
        // a connection-establishment failure, like dig's "connection timed
        // out" — the paper's dominant error class.
        timeout.error = state->connected
                            ? QueryError{QueryErrorClass::Timeout, "doh: no response"}
                            : QueryError{QueryErrorClass::ConnectTimeout,
                                         "doh: could not establish connection"};
        finish(std::move(timeout));
      });

  const dns::Message query_msg = dns::make_query(state->id, qname, qtype);
  const util::Bytes dns_wire = query_msg.encode(options_.pad_block);
  const http::Request request =
      http::make_doh_request(sni, http::kDohDefaultPath, dns_wire, options_.use_post);

  // Completion shared by the H1 and H2 paths.
  auto complete = [state, finish](QueryTiming timing, Result<http::Response> response) {
    if (!state->guard || !state->guard->fire()) return;
    QueryOutcome outcome;
    outcome.timing = timing;
    if (!response) {
      outcome.error = QueryError{QueryErrorClass::Malformed, response.error()};
      finish(std::move(outcome));
      return;
    }
    const http::Response& resp = response.value();
    outcome.http_status = resp.status;
    if (resp.status != 200) {
      outcome.error = QueryError{QueryErrorClass::HttpError,
                                 "doh: HTTP " + std::to_string(resp.status)};
      finish(std::move(outcome));
      return;
    }
    auto message = dns::Message::decode(resp.body);
    if (!message) {
      outcome.error = QueryError{QueryErrorClass::Malformed, message.error()};
      finish(std::move(outcome));
      return;
    }
    outcome.ok = true;
    outcome.rcode = message.value().header.rcode;
    outcome.answers = std::move(message.value().answers);
    finish(std::move(outcome));
  };

  // With 0-RTT the serialized request must be ready before the handshake.
  // We only offer early data for HTTP/1.1 requests (an H2 first flight would
  // need the preface inside early data; real deployments do this, but the
  // session bookkeeping would be identical, so we keep 0-RTT on the simpler
  // codec).
  util::Bytes early_data;
  const bool early_eligible = options_.offer_early_data && !options_.use_http2 &&
                              options_.reuse == transport::ReusePolicy::TicketResumption &&
                              pool_.has_ticket(remote, sni);
  if (early_eligible) early_data = request.encode();

  pool_.acquire(
      remote, sni, options_.reuse, std::move(early_data),
      [this, state, remote, sni, session_key, request, complete,
       finish](Result<transport::ConnectionPool::Lease> lease) {
        if (state->guard == nullptr || state->guard->fired()) return;
        if (!lease) {
          if (!state->guard->fire()) return;
          h2_sessions_.erase(session_key);
          QueryOutcome fail;
          fail.error = QueryError{classify_transport_error(lease.error()), lease.error()};
          fail.timing.connect = net_.queue().now() - state->started;
          finish(std::move(fail));
          return;
        }
        const auto& l = lease.value();
        state->connected = true;
        QueryTiming timing;
        timing.connect = l.fresh ? net_.queue().now() - state->started
                                 : netsim::kZeroDuration;
        timing.connection_reused = !l.fresh;
        timing.tls_mode = l.mode;
        timing.tcp_handshake = l.tcp_handshake;
        timing.tls_handshake = l.tls_handshake;
        timing.wait_in_pool = l.wait_in_pool;

        if (!options_.use_http2) {
          http::ExchangeTiming ex;
          ex.request_sent = net_.queue().now();
          l.tls->on_data([this, ex, timing, complete](util::Bytes data) mutable {
            ex.response_received = net_.queue().now();
            QueryTiming t = timing;
            t.exchange = ex.elapsed();
            OBS_COMPLETE(net_.queue(), "http", "h1-exchange", ex.request_sent, t.exchange);
            complete(t, http::Response::decode(data));
          });
          if (!l.early_data_accepted) l.tls->send(request.encode());
          return;
        }

        // HTTP/2 path: (re)create session state on a fresh connection.
        auto h2_it = h2_sessions_.find(session_key);
        if (l.fresh || h2_it == h2_sessions_.end()) {
          h2_sessions_[session_key] = std::make_shared<H2State>();
          h2_it = h2_sessions_.find(session_key);
        }
        std::shared_ptr<H2State> h2 = h2_it->second;

        std::uint32_t stream_id = 0;
        const util::Bytes frames = h2->session.serialize_request(request, stream_id);
        h2->session.stamp_request(stream_id, net_.queue().now());

        l.tls->on_data([this, h2, stream_id, timing, complete](util::Bytes data) {
          h2->session.feed(data, [&](std::uint32_t sid, Result<http::Response> resp) {
            if (sid != stream_id) return;  // a stale stream's frames
            QueryTiming t = timing;
            t.exchange = h2->session.finish_exchange(sid, net_.queue().now());
            OBS_COMPLETE(net_.queue(), "http", "h2-exchange",
                         net_.queue().now() - t.exchange, t.exchange);
            complete(t, std::move(resp));
          });
        });
        l.tls->send(frames);
      });
}

}  // namespace ednsm::client
