// DoH client (RFC 8484): DNS over HTTPS on port 443, via HTTP/2 (default)
// or HTTP/1.1, GET or POST, with connection reuse and optional 0-RTT early
// data through the shared pool. This is the protocol the paper measures.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "client/query.h"
#include "client/session.h"
#include "http/h2.h"
#include "netsim/network.h"
#include "transport/pool.h"

namespace ednsm::client {

class DohClient : public ResolverSession {
 public:
  DohClient(netsim::Network& net, transport::ConnectionPool& pool, QueryOptions options = {});
  // Session-bound form: ResolverSession::query goes to (target.server,
  // target.hostname).
  DohClient(netsim::Network& net, transport::ConnectionPool& pool, SessionTarget target,
            QueryOptions options = {});

  // Resolve (qname, qtype) against https://<sni>/dns-query at `server`.
  // Callback fires exactly once.
  void query(netsim::IpAddr server, const std::string& sni, const dns::Name& qname,
             dns::RecordType qtype, QueryCallback cb);

  // ResolverSession:
  void query(const dns::Name& qname, dns::RecordType qtype, QueryCallback cb) override;
  [[nodiscard]] Protocol protocol() const noexcept override { return Protocol::DoH; }
  [[nodiscard]] const SessionTarget& target() const noexcept override { return target_; }

  [[nodiscard]] const QueryOptions& options() const noexcept { return options_; }

 private:
  // HTTP/2 session state must live as long as the underlying TLS session
  // (stream ids and HPACK tables are per-connection).
  struct H2State {
    http::H2ClientSession session;
  };

  netsim::Network& net_;
  transport::ConnectionPool& pool_;
  SessionTarget target_;
  QueryOptions options_;
  // Point access only (never iterated) — hashed, keyed like the pool's
  // session cache.
  std::unordered_map<transport::SessionKey, std::shared_ptr<H2State>, transport::SessionKeyHash>
      h2_sessions_;
};

}  // namespace ednsm::client
