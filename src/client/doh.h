// DoH client (RFC 8484): DNS over HTTPS on port 443, via HTTP/2 (default)
// or HTTP/1.1, GET or POST, with connection reuse and optional 0-RTT early
// data through the shared pool. This is the protocol the paper measures.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "client/query.h"
#include "http/h2.h"
#include "netsim/network.h"
#include "transport/pool.h"

namespace ednsm::client {

class DohClient {
 public:
  DohClient(netsim::Network& net, transport::ConnectionPool& pool, QueryOptions options = {});

  // Resolve (qname, qtype) against https://<sni>/dns-query at `server`.
  // Callback fires exactly once.
  void query(netsim::IpAddr server, const std::string& sni, const dns::Name& qname,
             dns::RecordType qtype, QueryCallback cb);

  [[nodiscard]] const QueryOptions& options() const noexcept { return options_; }

 private:
  // HTTP/2 session state must live as long as the underlying TLS session
  // (stream ids and HPACK tables are per-connection).
  struct H2State {
    http::H2ClientSession session;
  };

  netsim::Network& net_;
  transport::ConnectionPool& pool_;
  QueryOptions options_;
  std::map<std::pair<netsim::Endpoint, std::string>, std::shared_ptr<H2State>> h2_sessions_;
};

}  // namespace ednsm::client
