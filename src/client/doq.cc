#include "client/doq.h"

#include "obs/trace.h"
#include "resolver/server.h"  // dot_frame / dot_unframe (shared with RFC 9250)

namespace ednsm::client {

DoqClient::DoqClient(netsim::Network& net, netsim::IpAddr local_ip, QueryOptions options)
    : net_(net), local_ip_(local_ip), options_(options) {}

DoqClient::DoqClient(netsim::Network& net, netsim::IpAddr local_ip, SessionTarget target,
                     QueryOptions options)
    : net_(net), local_ip_(local_ip), target_(std::move(target)), options_(options) {}

void DoqClient::query(const dns::Name& qname, dns::RecordType qtype, QueryCallback cb) {
  query(target_.server, target_.hostname, qname, qtype, std::move(cb));
}

void DoqClient::invalidate(const netsim::Endpoint& remote, const std::string& sni) {
  sessions_.erase({remote, sni});
}

void DoqClient::query(netsim::IpAddr server, const std::string& sni, const dns::Name& qname,
                      dns::RecordType qtype, QueryCallback cb) {
  struct State {
    std::unique_ptr<SingleFire> guard;
    netsim::SimTime started{0};
    std::uint16_t id = 0;
    bool connected = false;
  };
  auto state = std::make_shared<State>();
  state->started = net_.queue().now();
  state->id = static_cast<std::uint16_t>(net_.rng().next_u64() & 0xffff);

  const netsim::Endpoint remote{server, netsim::kPortDoq};
  const Key key{remote, sni};

  auto finish = [this, state, cb](QueryOutcome outcome) {
    outcome.protocol = Protocol::DoQ;
    outcome.timing.total = net_.queue().now() - state->started;
    state->guard.reset();
    cb(std::move(outcome));
  };

  state->guard = std::make_unique<SingleFire>(
      net_.queue(), options_.timeout, [this, state, key, finish] {
        sessions_.erase(key);
        QueryOutcome timeout;
        timeout.error = state->connected
                            ? QueryError{QueryErrorClass::Timeout, "doq: no response"}
                            : QueryError{QueryErrorClass::ConnectTimeout,
                                         "doq: could not establish connection"};
        finish(std::move(timeout));
      });

  const dns::Message query_msg = dns::make_query(state->id, qname, qtype);
  const util::Bytes framed = resolver::dot_frame(query_msg.encode(options_.pad_block));

  // Response handler shared by every path; matches on stream id. `sent_at`
  // is when the query stream was handed to the transport (for accepted 0-RTT
  // the stream rode the handshake flight, so the exchange clock starts once
  // the connection is ready).
  auto install_handler = [this, state, finish](transport::QuicConnection& conn,
                                               std::uint64_t expected_stream, QueryTiming timing,
                                               netsim::SimTime sent_at) {
    conn.on_stream([this, state, expected_stream, timing, sent_at,
                    finish](std::uint64_t stream_id, util::Bytes data) {
      if (stream_id != expected_stream) return;  // an earlier query's answer
      if (!state->guard || state->guard->fired()) return;
      auto messages = resolver::dot_unframe(data);
      QueryOutcome outcome;
      outcome.timing = timing;
      outcome.timing.exchange = net_.queue().now() - sent_at;
      OBS_COMPLETE(net_.queue(), "client", "doq-exchange", sent_at,
                   outcome.timing.exchange);
      if (!messages || messages.value().empty()) {
        if (!state->guard->fire()) return;
        outcome.error = QueryError{QueryErrorClass::Malformed, "doq: bad framing"};
        finish(std::move(outcome));
        return;
      }
      auto response = dns::Message::decode(messages.value().front());
      if (!state->guard->fire()) return;
      if (!response) {
        outcome.error = QueryError{QueryErrorClass::Malformed, response.error()};
      } else {
        outcome.ok = true;
        outcome.rcode = response.value().header.rcode;
        outcome.answers = std::move(response.value().answers);
      }
      finish(std::move(outcome));
    });
  };

  // Re-use a live session when the policy allows.
  if (options_.reuse != transport::ReusePolicy::None) {
    const auto it = sessions_.find(key);
    if (it != sessions_.end() && it->second->established()) {
      state->connected = true;
      auto& conn = *it->second;
      QueryTiming timing;
      timing.connection_reused = true;
      const std::uint64_t sid = conn.send_stream(framed);
      install_handler(conn, sid, timing, net_.queue().now());
      return;
    }
  } else {
    sessions_.erase(key);
  }

  // Fresh connection.
  auto conn = std::make_shared<transport::QuicConnection>(
      net_, netsim::Endpoint{local_ip_, net_.ephemeral_port(local_ip_)}, remote, sni,
      next_conn_id_++);
  sessions_[key] = conn;

  std::optional<transport::SessionTicket> ticket;
  transport::TlsMode mode = transport::TlsMode::Full;
  util::Bytes early;
  if (options_.reuse == transport::ReusePolicy::TicketResumption) {
    const auto tk = tickets_.find(key);
    if (tk != tickets_.end()) {
      ticket = tk->second;
      mode = options_.offer_early_data ? transport::TlsMode::EarlyData
                                       : transport::TlsMode::Resume;
      if (mode == transport::TlsMode::EarlyData) early = framed;
    }
  }

  std::weak_ptr<transport::QuicConnection> weak = conn;
  conn->connect(
      mode, ticket, std::move(early),
      [this, state, key, mode, framed, weak, install_handler,
       finish](Result<transport::QuicHandshakeInfo> hs) {
        if (state->guard == nullptr || state->guard->fired()) return;
        auto live = weak.lock();
        if (!hs || !live) {
          if (!state->guard->fire()) return;
          sessions_.erase(key);
          QueryOutcome fail;
          const std::string detail = hs ? "doq: connection lost" : hs.error();
          fail.error = QueryError{classify_transport_error(detail), detail};
          fail.timing.connect = net_.queue().now() - state->started;
          finish(std::move(fail));
          return;
        }
        state->connected = true;
        if (hs.value().ticket.has_value()) tickets_[key] = *hs.value().ticket;

        QueryTiming timing;
        timing.connect = net_.queue().now() - state->started;
        timing.connection_reused = false;
        timing.tls_mode = mode;
        // QUIC folds transport + crypto setup into one phase.
        timing.quic_handshake = live->handshake_duration();

        // With accepted 0-RTT the query is already at the server on stream 0;
        // if it was rejected, QuicConnection replayed it on stream 0 itself.
        const std::uint64_t sid = (mode == transport::TlsMode::EarlyData)
                                      ? 0
                                      : live->send_stream(framed);
        install_handler(*live, sid, timing, net_.queue().now());
      });
}

}  // namespace ednsm::client
