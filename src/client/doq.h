// DoQ client (RFC 9250): DNS over dedicated QUIC connections. Each query
// rides its own stream (one round trip on a warm connection, two cold —
// one fewer than DoH/DoT because QUIC folds transport and crypto setup into
// a single flight), and 0-RTT resumption can push a query into the first
// packet.
//
// QUIC connections are not pooled with the TCP/TLS pool (different transport
// object); the client keeps its own per-(endpoint, sni) session cache and
// ticket store, honoring the same ReusePolicy semantics.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "client/query.h"
#include "client/session.h"
#include "netsim/network.h"
#include "transport/pool.h"  // SessionKey
#include "transport/quic.h"
#include "transport/udp.h"

namespace ednsm::client {

class DoqClient : public ResolverSession {
 public:
  DoqClient(netsim::Network& net, netsim::IpAddr local_ip, QueryOptions options = {});
  // Session-bound form: ResolverSession::query goes to (target.server,
  // target.hostname).
  DoqClient(netsim::Network& net, netsim::IpAddr local_ip, SessionTarget target,
            QueryOptions options = {});

  // Resolve (qname, qtype) against the DoQ endpoint of `server`. Callback
  // fires exactly once.
  void query(netsim::IpAddr server, const std::string& sni, const dns::Name& qname,
             dns::RecordType qtype, QueryCallback cb);

  // ResolverSession:
  void query(const dns::Name& qname, dns::RecordType qtype, QueryCallback cb) override;
  [[nodiscard]] Protocol protocol() const noexcept override { return Protocol::DoQ; }
  [[nodiscard]] const SessionTarget& target() const noexcept override { return target_; }

  [[nodiscard]] const QueryOptions& options() const noexcept { return options_; }
  [[nodiscard]] std::size_t live_sessions() const noexcept { return sessions_.size(); }
  [[nodiscard]] bool has_ticket(const netsim::Endpoint& remote, const std::string& sni) const {
    return tickets_.contains({remote, sni});
  }

  // Drop the cached session (transport errors / timeouts); ticket survives.
  void invalidate(const netsim::Endpoint& remote, const std::string& sni);

 private:
  using Key = transport::SessionKey;

  netsim::Network& net_;
  netsim::IpAddr local_ip_;
  SessionTarget target_;
  QueryOptions options_;
  std::uint64_t next_conn_id_ = 1;
  // Point access only (never iterated) — hashed, keyed like the pool's
  // session cache.
  std::unordered_map<Key, std::shared_ptr<transport::QuicConnection>, transport::SessionKeyHash>
      sessions_;
  std::unordered_map<Key, transport::SessionTicket, transport::SessionKeyHash> tickets_;
};

}  // namespace ednsm::client
