#include "client/dot.h"

#include "obs/trace.h"
#include "resolver/server.h"  // dot_frame / dot_unframe

namespace ednsm::client {

DotClient::DotClient(netsim::Network& net, transport::ConnectionPool& pool,
                     QueryOptions options)
    : net_(net), pool_(pool), options_(options) {}

DotClient::DotClient(netsim::Network& net, transport::ConnectionPool& pool, SessionTarget target,
                     QueryOptions options)
    : net_(net), pool_(pool), target_(std::move(target)), options_(options) {}

void DotClient::query(const dns::Name& qname, dns::RecordType qtype, QueryCallback cb) {
  query(target_.server, target_.hostname, qname, qtype, std::move(cb));
}

void DotClient::query(netsim::IpAddr server, const std::string& sni, const dns::Name& qname,
                      dns::RecordType qtype, QueryCallback cb) {
  struct State {
    std::unique_ptr<SingleFire> guard;
    netsim::SimTime started{0};
    std::uint16_t id = 0;
    bool connected = false;  // lease acquired; deadline hits are then "timeout"
  };
  auto state = std::make_shared<State>();
  state->started = net_.queue().now();
  state->id = static_cast<std::uint16_t>(net_.rng().next_u64() & 0xffff);

  const netsim::Endpoint remote{server, netsim::kPortDot};

  auto finish = [this, state, cb](QueryOutcome outcome) {
    outcome.protocol = Protocol::DoT;
    outcome.timing.total = net_.queue().now() - state->started;
    state->guard.reset();
    cb(std::move(outcome));
  };

  state->guard = std::make_unique<SingleFire>(
      net_.queue(), options_.timeout, [this, state, remote, sni, finish] {
        pool_.invalidate(remote, sni);  // the session is in an unknown state
        QueryOutcome timeout;
        timeout.error = state->connected
                            ? QueryError{QueryErrorClass::Timeout, "dot: no response"}
                            : QueryError{QueryErrorClass::ConnectTimeout,
                                         "dot: could not establish connection"};
        finish(std::move(timeout));
      });

  const dns::Message query_msg = dns::make_query(state->id, qname, qtype);
  const util::Bytes wire = query_msg.encode(options_.pad_block);

  pool_.acquire(
      remote, sni, options_.reuse, {},
      [this, state, remote, sni, wire, finish](Result<transport::ConnectionPool::Lease> lease) {
        if (state->guard == nullptr || state->guard->fired()) return;  // already timed out
        if (!lease) {
          if (!state->guard->fire()) return;
          QueryOutcome fail;
          fail.error = QueryError{classify_transport_error(lease.error()), lease.error()};
          fail.timing.connect = net_.queue().now() - state->started;
          finish(std::move(fail));
          return;
        }
        const auto& l = lease.value();
        state->connected = true;
        QueryTiming timing;
        timing.connect = l.fresh ? net_.queue().now() - state->started
                                 : netsim::kZeroDuration;
        timing.connection_reused = !l.fresh;
        timing.tls_mode = l.mode;
        timing.tcp_handshake = l.tcp_handshake;
        timing.tls_handshake = l.tls_handshake;
        timing.wait_in_pool = l.wait_in_pool;
        const netsim::SimTime sent_at = net_.queue().now();

        l.tls->on_data([this, sent_at, state, timing, finish](util::Bytes data) {
          auto messages = resolver::dot_unframe(data);
          QueryOutcome outcome;
          outcome.timing = timing;
          outcome.timing.exchange = net_.queue().now() - sent_at;
          OBS_COMPLETE(net_.queue(), "client", "dot-exchange", sent_at,
                       outcome.timing.exchange);
          if (!messages) {
            if (!state->guard || !state->guard->fire()) return;
            outcome.error = QueryError{QueryErrorClass::Malformed, messages.error()};
            finish(std::move(outcome));
            return;
          }
          for (const util::Bytes& msg : messages.value()) {
            auto response = dns::Message::decode(msg);
            if (!response) {
              if (!state->guard || !state->guard->fire()) return;
              outcome.error = QueryError{QueryErrorClass::Malformed, response.error()};
              finish(std::move(outcome));
              return;
            }
            if (response.value().header.id != state->id || !response.value().header.qr) {
              continue;  // response to an earlier query on this session
            }
            if (!state->guard || !state->guard->fire()) return;
            outcome.ok = true;
            outcome.rcode = response.value().header.rcode;
            outcome.answers = std::move(response.value().answers);
            finish(std::move(outcome));
            return;
          }
        });
        l.tls->send(resolver::dot_frame(wire));
      });
}

}  // namespace ednsm::client
