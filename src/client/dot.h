// DoT client (RFC 7858): DNS over TLS on port 853, 2-byte length framing,
// connections acquired through the shared pool (so reuse policies apply).
#pragma once

#include <memory>

#include "client/query.h"
#include "client/session.h"
#include "netsim/network.h"
#include "transport/pool.h"

namespace ednsm::client {

class DotClient : public ResolverSession {
 public:
  // The pool is shared with other clients on the same vantage host.
  DotClient(netsim::Network& net, transport::ConnectionPool& pool, QueryOptions options = {});
  // Session-bound form: ResolverSession::query goes to (target.server,
  // target.hostname).
  DotClient(netsim::Network& net, transport::ConnectionPool& pool, SessionTarget target,
            QueryOptions options = {});

  // Resolve (qname, qtype) against the DoT endpoint of `server`, verifying
  // the TLS certificate against `sni`. Callback fires exactly once.
  void query(netsim::IpAddr server, const std::string& sni, const dns::Name& qname,
             dns::RecordType qtype, QueryCallback cb);

  // ResolverSession:
  void query(const dns::Name& qname, dns::RecordType qtype, QueryCallback cb) override;
  [[nodiscard]] Protocol protocol() const noexcept override { return Protocol::DoT; }
  [[nodiscard]] const SessionTarget& target() const noexcept override { return target_; }

  [[nodiscard]] const QueryOptions& options() const noexcept { return options_; }

 private:
  netsim::Network& net_;
  transport::ConnectionPool& pool_;
  SessionTarget target_;
  QueryOptions options_;
};

}  // namespace ednsm::client
