#include "client/odoh.h"

#include "resolver/odoh.h"

namespace ednsm::client {

OdohClient::OdohClient(netsim::Network& net, transport::ConnectionPool& pool,
                       QueryOptions options)
    : net_(net), pool_(pool), options_(options) {}

OdohClient::OdohClient(netsim::Network& net, transport::ConnectionPool& pool,
                       SessionTarget target, QueryOptions options)
    : net_(net), pool_(pool), target_(std::move(target)), options_(options) {}

void OdohClient::query(const dns::Name& qname, dns::RecordType qtype, QueryCallback cb) {
  query(target_.relay, target_.relay_sni, target_.hostname, qname, qtype, std::move(cb));
}

void OdohClient::query(netsim::IpAddr relay, const std::string& relay_sni,
                       const std::string& target_hostname, const dns::Name& qname,
                       dns::RecordType qtype, QueryCallback cb) {
  struct State {
    std::unique_ptr<SingleFire> guard;
    netsim::SimTime started{0};
    std::uint16_t id = 0;
    bool connected = false;
  };
  auto state = std::make_shared<State>();
  state->started = net_.queue().now();
  state->id = static_cast<std::uint16_t>(net_.rng().next_u64() & 0xffff);

  const netsim::Endpoint remote{relay, netsim::kPortHttps};

  auto finish = [this, state, cb](QueryOutcome outcome) {
    outcome.protocol = Protocol::ODoH;
    outcome.timing.total = net_.queue().now() - state->started;
    state->guard.reset();
    cb(std::move(outcome));
  };

  state->guard = std::make_unique<SingleFire>(
      net_.queue(), options_.timeout, [this, state, remote, relay_sni, finish] {
        pool_.invalidate(remote, relay_sni);
        QueryOutcome timeout;
        timeout.error = state->connected
                            ? QueryError{QueryErrorClass::Timeout, "odoh: no response"}
                            : QueryError{QueryErrorClass::ConnectTimeout,
                                         "odoh: could not reach relay"};
        finish(std::move(timeout));
      });

  // Seal the query for the target and wrap it for the relay.
  const dns::Message query_msg = dns::make_query(state->id, qname, qtype);
  resolver::ObliviousMessage sealed;
  sealed.target_hostname = target_hostname;
  sealed.payload = query_msg.encode(options_.pad_block);

  http::Request request;
  request.method = "POST";
  request.path = std::string(http::kDohDefaultPath);
  request.authority = relay_sni;
  request.headers.emplace_back("content-type", std::string(resolver::kObliviousMediaType));
  request.headers.emplace_back("accept", std::string(resolver::kObliviousMediaType));
  request.body = sealed.encode();

  pool_.acquire(
      remote, relay_sni, options_.reuse, {},
      [this, state, request, finish](Result<transport::ConnectionPool::Lease> lease) {
        if (state->guard == nullptr || state->guard->fired()) return;
        if (!lease) {
          if (!state->guard->fire()) return;
          QueryOutcome fail;
          fail.error = QueryError{classify_transport_error(lease.error()), lease.error()};
          fail.timing.connect = net_.queue().now() - state->started;
          finish(std::move(fail));
          return;
        }
        const auto& l = lease.value();
        state->connected = true;
        QueryTiming timing;
        timing.connect = l.fresh ? net_.queue().now() - state->started
                                 : netsim::kZeroDuration;
        timing.connection_reused = !l.fresh;
        timing.tls_mode = l.mode;
        timing.tcp_handshake = l.tcp_handshake;
        timing.tls_handshake = l.tls_handshake;
        timing.wait_in_pool = l.wait_in_pool;
        http::ExchangeTiming ex;
        ex.request_sent = net_.queue().now();

        l.tls->on_data([this, ex, state, timing, finish](util::Bytes data) mutable {
          if (!state->guard || state->guard->fired()) return;
          ex.response_received = net_.queue().now();
          QueryOutcome outcome;
          outcome.timing = timing;
          outcome.timing.exchange = ex.elapsed();
          auto response = http::Response::decode(data);
          if (!response) {
            if (!state->guard->fire()) return;
            outcome.error = QueryError{QueryErrorClass::Malformed, response.error()};
            finish(std::move(outcome));
            return;
          }
          outcome.http_status = response.value().status;
          if (response.value().status != 200) {
            if (!state->guard->fire()) return;
            outcome.error =
                QueryError{QueryErrorClass::HttpError,
                           "odoh: HTTP " + std::to_string(response.value().status)};
            finish(std::move(outcome));
            return;
          }
          auto sealed_answer = resolver::ObliviousMessage::decode(response.value().body);
          if (!sealed_answer) {
            if (!state->guard->fire()) return;
            outcome.error = QueryError{QueryErrorClass::Malformed, sealed_answer.error()};
            finish(std::move(outcome));
            return;
          }
          auto message = dns::Message::decode(sealed_answer.value().payload);
          if (!state->guard->fire()) return;
          if (!message) {
            outcome.error = QueryError{QueryErrorClass::Malformed, message.error()};
          } else if (message.value().header.id != state->id) {
            outcome.error = QueryError{QueryErrorClass::Malformed, "odoh: id mismatch"};
          } else {
            outcome.ok = true;
            outcome.rcode = message.value().header.rcode;
            outcome.answers = std::move(message.value().answers);
          }
          finish(std::move(outcome));
        });
        l.tls->send(request.encode());
      });
}

}  // namespace ednsm::client
