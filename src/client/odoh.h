// Oblivious DoH client (RFC 9230): resolves through a relay so the target
// resolver never sees the client's address. Costs the client<->relay path on
// top of the relay<->target path — the privacy/latency tradeoff quantified by
// bench_odoh.
#pragma once

#include <string>

#include "client/query.h"
#include "client/session.h"
#include "netsim/network.h"
#include "transport/pool.h"

namespace ednsm::client {

class OdohClient : public ResolverSession {
 public:
  OdohClient(netsim::Network& net, transport::ConnectionPool& pool, QueryOptions options = {});
  // Session-bound form: ResolverSession::query reaches target.hostname via
  // the relay at (target.relay, target.relay_sni).
  OdohClient(netsim::Network& net, transport::ConnectionPool& pool, SessionTarget target,
             QueryOptions options = {});

  // Resolve (qname, qtype) at `target_hostname` via the relay at
  // `relay`/`relay_sni`. Callback fires exactly once.
  void query(netsim::IpAddr relay, const std::string& relay_sni,
             const std::string& target_hostname, const dns::Name& qname,
             dns::RecordType qtype, QueryCallback cb);

  // ResolverSession:
  void query(const dns::Name& qname, dns::RecordType qtype, QueryCallback cb) override;
  [[nodiscard]] Protocol protocol() const noexcept override { return Protocol::ODoH; }
  [[nodiscard]] const SessionTarget& target() const noexcept override { return target_; }

  [[nodiscard]] const QueryOptions& options() const noexcept { return options_; }

 private:
  netsim::Network& net_;
  transport::ConnectionPool& pool_;
  SessionTarget target_;
  QueryOptions options_;
};

}  // namespace ednsm::client
