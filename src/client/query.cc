#include "client/query.h"

#include "util/strings.h"

namespace ednsm::client {

std::string_view to_string(Protocol p) noexcept {
  switch (p) {
    case Protocol::Do53: return "Do53";
    case Protocol::DoT: return "DoT";
    case Protocol::DoH: return "DoH";
    case Protocol::DoQ: return "DoQ";
    case Protocol::ODoH: return "ODoH";
  }
  return "?";
}

std::optional<Protocol> protocol_from_string(std::string_view name) noexcept {
  for (Protocol p : {Protocol::Do53, Protocol::DoT, Protocol::DoH, Protocol::DoQ,
                     Protocol::ODoH}) {
    if (name == to_string(p)) return p;
  }
  return std::nullopt;
}

std::string_view to_string(QueryErrorClass c) noexcept {
  switch (c) {
    case QueryErrorClass::ConnectRefused: return "connect-refused";
    case QueryErrorClass::ConnectTimeout: return "connect-timeout";
    case QueryErrorClass::TlsFailure: return "tls-failure";
    case QueryErrorClass::HttpError: return "http-error";
    case QueryErrorClass::Timeout: return "timeout";
    case QueryErrorClass::Malformed: return "malformed";
  }
  return "?";
}

SingleFire::SingleFire(netsim::EventQueue& queue, netsim::SimDuration timeout,
                       std::function<void()> on_timeout)
    : queue_(queue) {
  timer_ = queue_.schedule(timeout, [this, cb = std::move(on_timeout)] {
    timer_.reset();
    if (!fired_) {
      fired_ = true;
      cb();
    }
  });
}

SingleFire::~SingleFire() {
  if (timer_.has_value()) queue_.cancel(*timer_);
}

bool SingleFire::fire() {
  if (fired_) return false;
  fired_ = true;
  if (timer_.has_value()) {
    queue_.cancel(*timer_);
    timer_.reset();
  }
  return true;
}

QueryErrorClass classify_transport_error(std::string_view detail) noexcept {
  if (detail.find("refused") != std::string_view::npos) return QueryErrorClass::ConnectRefused;
  if (detail.find("SYN") != std::string_view::npos ||
      detail.find("timed out") != std::string_view::npos) {
    return QueryErrorClass::ConnectTimeout;
  }
  if (detail.find("tls") != std::string_view::npos) return QueryErrorClass::TlsFailure;
  return QueryErrorClass::Timeout;
}

}  // namespace ednsm::client
