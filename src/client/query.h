// Shared types for the three query clients (Do53 / DoT / DoH): options,
// timing breakdown, error taxonomy, and the query outcome delivered to the
// measurement layer.
//
// The error taxonomy mirrors what the paper's tool distinguishes: "the most
// common errors we received ... were related to a failure to establish a
// connection" — so connection-establishment failures are separated from
// in-band failures (TLS, HTTP status, DNS RCODE) and plain timeouts.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dns/message.h"
#include "netsim/time.h"
#include "transport/pool.h"

namespace ednsm::client {

enum class Protocol { Do53, DoT, DoH, DoQ, ODoH };

[[nodiscard]] std::string_view to_string(Protocol p) noexcept;

// Inverse of to_string (exact match); nullopt for unknown names. The single
// string->Protocol conversion shared by spec parsing and the CLI tools.
[[nodiscard]] std::optional<Protocol> protocol_from_string(std::string_view name) noexcept;

enum class QueryErrorClass {
  ConnectRefused,   // TCP RST during handshake
  ConnectTimeout,   // SYN retries exhausted
  TlsFailure,       // handshake alert / certificate mismatch
  HttpError,        // DoH: non-200 status
  Timeout,          // no response within the deadline
  Malformed,        // response failed to decode
};

[[nodiscard]] std::string_view to_string(QueryErrorClass c) noexcept;

struct QueryError {
  QueryErrorClass error_class = QueryErrorClass::Timeout;
  std::string detail;
};

struct QueryTiming {
  // ednsm-lint: allow(phase-sum) — aggregate: the bound the phases sum under
  netsim::SimDuration total{0};    // request issued -> outcome known
  // ednsm-lint: allow(phase-sum) — aggregate: tcp_handshake + tls_handshake
  netsim::SimDuration connect{0};  // TCP + TLS establishment (zero when reused)
  // Fine-grained phase breakdown, stamped by the transports and threaded
  // through the pool lease. All handshake phases are zero when the connection
  // is reused; `wait_in_pool` is acquire time not attributable to a handshake
  // (queueing/scheduling inside the pool).
  netsim::SimDuration tcp_handshake{0};
  netsim::SimDuration tls_handshake{0};
  netsim::SimDuration quic_handshake{0};
  netsim::SimDuration wait_in_pool{0};
  // Request -> response exchange on the established connection, stamped by
  // http/h1 and http/h2 for the HTTPS protocols and by the client for the
  // framed ones. When accepted 0-RTT carries the request inside the
  // handshake flight, the exchange clock starts once the connection is
  // ready, so the phase sum never double-counts the overlapped round trip.
  netsim::SimDuration exchange{0};
  bool connection_reused = false;
  transport::TlsMode tls_mode = transport::TlsMode::Full;

  // Sum of all stamped phases; invariant: phase_sum() <= total.
  [[nodiscard]] netsim::SimDuration phase_sum() const noexcept {
    return tcp_handshake + tls_handshake + quic_handshake + wait_in_pool + exchange;
  }
};

struct QueryOutcome {
  Protocol protocol = Protocol::DoH;
  bool ok = false;                       // got a well-formed DNS response
  dns::Rcode rcode = dns::Rcode::NoError;
  std::vector<dns::ResourceRecord> answers;
  std::optional<QueryError> error;       // set when !ok
  QueryTiming timing;
  int http_status = 0;                   // DoH only
};

using QueryCallback = std::function<void(QueryOutcome)>;

struct QueryOptions {
  netsim::SimDuration timeout = std::chrono::seconds(5);
  transport::ReusePolicy reuse = transport::ReusePolicy::None;
  // DoH shape:
  bool use_post = false;       // RFC 8484 GET by default
  bool use_http2 = true;       // false -> HTTP/1.1
  bool offer_early_data = false;  // 0-RTT with TicketResumption
  // EDNS padding block for queries (RFC 8467 recommends 128; 0 disables).
  std::size_t pad_block = 128;
};

// Shared single-fire guard: wraps a callback + deadline so exactly one of
// {response, error, timeout} reaches the caller.
class SingleFire {
 public:
  SingleFire(netsim::EventQueue& queue, netsim::SimDuration timeout,
             std::function<void()> on_timeout);
  ~SingleFire();

  // Returns true the first time, false afterwards (and cancels the timer).
  [[nodiscard]] bool fire();
  [[nodiscard]] bool fired() const noexcept { return fired_; }

 private:
  netsim::EventQueue& queue_;
  std::optional<netsim::EventQueue::EventId> timer_;
  bool fired_ = false;
};

// Classify a transport error string from the pool/TCP layer.
[[nodiscard]] QueryErrorClass classify_transport_error(std::string_view detail) noexcept;

}  // namespace ednsm::client
