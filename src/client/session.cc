#include "client/session.h"

#include "client/do53.h"
#include "client/doh.h"
#include "client/doq.h"
#include "client/dot.h"
#include "client/odoh.h"

namespace ednsm::client {

SessionFactory::SessionFactory(netsim::Network& net, netsim::IpAddr local_ip,
                               transport::ConnectionPool& pool)
    : net_(net), local_ip_(local_ip), pool_(pool) {}

std::unique_ptr<ResolverSession> SessionFactory::create(Protocol protocol, SessionTarget target,
                                                        QueryOptions options) const {
  switch (protocol) {
    case Protocol::Do53:
      return std::make_unique<Do53Client>(net_, local_ip_, std::move(target), options);
    case Protocol::DoT:
      return std::make_unique<DotClient>(net_, pool_, std::move(target), options);
    case Protocol::DoH:
      return std::make_unique<DohClient>(net_, pool_, std::move(target), options);
    case Protocol::DoQ:
      return std::make_unique<DoqClient>(net_, local_ip_, std::move(target), options);
    case Protocol::ODoH:
      return std::make_unique<OdohClient>(net_, pool_, std::move(target), options);
  }
  return nullptr;  // unreachable for valid enum values
}

}  // namespace ednsm::client
