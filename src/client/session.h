// Unified resolver-session layer: every protocol client presents the same
// polymorphic surface (`query(qname, qtype, cb)` against a bound target),
// and the SessionFactory is the single place a `Protocol` value is turned
// into a concrete client. The measurement layers (probe, campaign, CLI)
// depend only on this interface, so new protocols and scenarios (retry
// policies, fallback chains, new encrypted transports) plug in here without
// touching the callers.
#pragma once

#include <memory>
#include <string>

#include "client/query.h"
#include "netsim/network.h"
#include "transport/pool.h"

namespace ednsm::client {

// Where a session's queries go. Direct protocols use (server, hostname);
// ODoH reaches `hostname` (the target resolver) through the relay at
// (relay, relay_sni) and never contacts `server` directly.
struct SessionTarget {
  netsim::IpAddr server{};
  std::string hostname;       // TLS SNI / HTTP authority / ODoH target
  netsim::IpAddr relay{};     // ODoH only
  std::string relay_sni;      // ODoH only

  [[nodiscard]] bool via_relay() const noexcept { return !relay_sni.empty(); }
};

// One measurement session against one resolver target. Implementations share
// the SingleFire/timeout discipline from client/query.h: the callback fires
// exactly once with a response, an error, or a timeout.
class ResolverSession {
 public:
  virtual ~ResolverSession() = default;

  virtual void query(const dns::Name& qname, dns::RecordType qtype, QueryCallback cb) = 0;

  [[nodiscard]] virtual Protocol protocol() const noexcept = 0;
  [[nodiscard]] virtual const SessionTarget& target() const noexcept = 0;
};

// The single Protocol -> concrete client dispatch in the codebase.
class SessionFactory {
 public:
  // `local_ip` hosts the UDP protocols (Do53/DoQ); `pool` is the vantage
  // host's shared TCP/TLS connection pool (DoT/DoH/ODoH).
  SessionFactory(netsim::Network& net, netsim::IpAddr local_ip, transport::ConnectionPool& pool);

  [[nodiscard]] std::unique_ptr<ResolverSession> create(Protocol protocol, SessionTarget target,
                                                        QueryOptions options = {}) const;

 private:
  netsim::Network& net_;
  netsim::IpAddr local_ip_;
  transport::ConnectionPool& pool_;
};

}  // namespace ednsm::client
