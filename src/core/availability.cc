#include "core/availability.h"

namespace ednsm::core {

namespace {
void bump(AvailabilityCounts& c, const ResultRecord& r) {
  if (r.ok) {
    ++c.successes;
  } else {
    ++c.errors;
    ++c.errors_by_class[r.error_class.empty() ? "unknown" : r.error_class];
  }
}
}  // namespace

void AvailabilityLedger::record(const ResultRecord& r) {
  bump(overall_, r);
  bump(by_resolver_[r.resolver], r);
  bump(by_pair_[{r.vantage, r.resolver}], r);
}

AvailabilityCounts AvailabilityLedger::per_resolver(const std::string& hostname) const {
  const auto it = by_resolver_.find(hostname);
  return it == by_resolver_.end() ? AvailabilityCounts{} : it->second;
}

AvailabilityCounts AvailabilityLedger::per_pair(const std::string& vantage,
                                                const std::string& hostname) const {
  const auto it = by_pair_.find({vantage, hostname});
  return it == by_pair_.end() ? AvailabilityCounts{} : it->second;
}

bool AvailabilityLedger::unresponsive_from(const std::string& vantage,
                                           const std::string& hostname) const {
  const AvailabilityCounts c = per_pair(vantage, hostname);
  return c.total() > 0 && c.successes == 0;
}

std::vector<std::string> AvailabilityLedger::resolvers() const {
  std::vector<std::string> out;
  out.reserve(by_resolver_.size());
  for (const auto& [host, counts] : by_resolver_) out.push_back(host);
  return out;
}

std::string AvailabilityLedger::dominant_error_class() const {
  std::string best;
  std::uint64_t best_count = 0;
  for (const auto& [cls, count] : overall_.errors_by_class) {
    if (count > best_count) {
      best_count = count;
      best = cls;
    }
  }
  return best;
}

}  // namespace ednsm::core
