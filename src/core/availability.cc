#include "core/availability.h"

#include <algorithm>

namespace ednsm::core {

namespace {
void bump(AvailabilityCounts& c, const ResultRecord& r) {
  if (r.ok) {
    ++c.successes;
  } else {
    ++c.errors;
    ++c.errors_by_class[r.error_class.empty() ? "unknown" : r.error_class];
  }
}
}  // namespace

void AvailabilityLedger::record(const ResultRecord& r) {
  bump(overall_, r);
  const InternTable::Symbol host = hostnames_.intern(r.resolver);
  const InternTable::Symbol vantage = vantages_.intern(r.vantage);
  bump(by_resolver_[host], r);
  bump(by_pair_[InternTable::pair_key(vantage, host)], r);
}

AvailabilityCounts AvailabilityLedger::per_resolver(const std::string& hostname) const {
  const auto sym = hostnames_.find(hostname);
  if (!sym.has_value()) return {};
  const auto it = by_resolver_.find(*sym);
  return it == by_resolver_.end() ? AvailabilityCounts{} : it->second;
}

AvailabilityCounts AvailabilityLedger::per_pair(const std::string& vantage,
                                                const std::string& hostname) const {
  const auto v = vantages_.find(vantage);
  const auto h = hostnames_.find(hostname);
  if (!v.has_value() || !h.has_value()) return {};
  const auto it = by_pair_.find(InternTable::pair_key(*v, *h));
  return it == by_pair_.end() ? AvailabilityCounts{} : it->second;
}

bool AvailabilityLedger::unresponsive_from(const std::string& vantage,
                                           const std::string& hostname) const {
  const AvailabilityCounts c = per_pair(vantage, hostname);
  return c.total() > 0 && c.successes == 0;
}

std::vector<std::string> AvailabilityLedger::resolvers() const {
  std::vector<std::string> out;
  out.reserve(by_resolver_.size());
  // ednsm-lint: allow(determinism-unordered-iter) — keys are collected and
  // sorted before they escape, so the hash order never reaches the output.
  for (const auto& [sym, counts] : by_resolver_) out.push_back(hostnames_.name(sym));
  std::sort(out.begin(), out.end());
  return out;
}

std::string AvailabilityLedger::dominant_error_class() const {
  std::string best;
  std::uint64_t best_count = 0;
  for (const auto& [cls, count] : overall_.errors_by_class) {
    if (count > best_count) {
      best_count = count;
      best = cls;
    }
  }
  return best;
}

}  // namespace ednsm::core
