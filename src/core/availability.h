// AvailabilityLedger: the bookkeeping behind the paper's availability
// analysis — "we received 5,098,281 successful responses and 311,351 errors.
// The most common errors ... were related to a failure to establish a
// connection", and the per-vantage unresponsiveness definition: "a resolver
// is unresponsive from a given vantage point if we fail to receive any
// response to the queries issued from a particular server."
//
// record() sits on the campaign accumulation hot path (once per query
// record), so counters are keyed by interned symbols rather than strings:
// one hash of a packed u64 instead of pair<string,string> key construction
// and byte-wise compares per record.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/intern.h"
#include "core/spec.h"

namespace ednsm::core {

struct AvailabilityCounts {
  std::uint64_t successes = 0;
  std::uint64_t errors = 0;
  std::map<std::string, std::uint64_t> errors_by_class;

  [[nodiscard]] std::uint64_t total() const noexcept { return successes + errors; }
  [[nodiscard]] double error_rate() const noexcept {
    return total() == 0 ? 0.0 : static_cast<double>(errors) / static_cast<double>(total());
  }
};

class AvailabilityLedger {
 public:
  void record(const ResultRecord& r);

  [[nodiscard]] const AvailabilityCounts& overall() const noexcept { return overall_; }
  [[nodiscard]] AvailabilityCounts per_resolver(const std::string& hostname) const;
  [[nodiscard]] AvailabilityCounts per_pair(const std::string& vantage,
                                            const std::string& hostname) const;

  // The paper's unresponsiveness predicate.
  [[nodiscard]] bool unresponsive_from(const std::string& vantage,
                                       const std::string& hostname) const;

  // Hostnames with at least one recorded query, sorted.
  [[nodiscard]] std::vector<std::string> resolvers() const;

  // Most common error class overall ("" when there are no errors).
  [[nodiscard]] std::string dominant_error_class() const;

 private:
  InternTable vantages_;
  InternTable hostnames_;
  AvailabilityCounts overall_;
  std::unordered_map<InternTable::Symbol, AvailabilityCounts> by_resolver_;
  std::unordered_map<std::uint64_t, AvailabilityCounts> by_pair_;
};

}  // namespace ednsm::core
