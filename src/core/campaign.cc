#include "core/campaign.h"

#include <ostream>

#include "obs/trace.h"
#include <stdexcept>

namespace ednsm::core {

PairSampleIndex PairSampleIndex::build(const std::vector<ResultRecord>& records,
                                       const std::vector<PingRecord>& pings) {
  PairSampleIndex idx;
  for (const ResultRecord& r : records) {
    if (!r.ok) continue;
    const auto key =
        InternTable::pair_key(idx.vantages_.intern(r.vantage), idx.resolvers_.intern(r.resolver));
    idx.responses_[key].push_back(r.response_ms);
  }
  for (const PingRecord& p : pings) {
    if (!p.ok) continue;
    const auto key =
        InternTable::pair_key(idx.vantages_.intern(p.vantage), idx.resolvers_.intern(p.resolver));
    idx.pings_[key].push_back(p.rtt_ms);
  }
  idx.records_indexed_ = records.size();
  idx.pings_indexed_ = pings.size();
  return idx;
}

namespace {
const std::vector<double>* lookup_pair(
    const InternTable& vantages, const InternTable& resolvers,
    const std::unordered_map<std::uint64_t, std::vector<double>>& samples,
    std::string_view vantage, std::string_view resolver) {
  const auto v = vantages.find(vantage);
  const auto r = resolvers.find(resolver);
  if (!v.has_value() || !r.has_value()) return nullptr;
  const auto it = samples.find(InternTable::pair_key(*v, *r));
  return it == samples.end() ? nullptr : &it->second;
}
}  // namespace

const std::vector<double>* PairSampleIndex::response_times(std::string_view vantage,
                                                           std::string_view resolver) const {
  return lookup_pair(vantages_, resolvers_, responses_, vantage, resolver);
}

const std::vector<double>* PairSampleIndex::ping_times(std::string_view vantage,
                                                       std::string_view resolver) const {
  return lookup_pair(vantages_, resolvers_, pings_, vantage, resolver);
}

const PairSampleIndex& CampaignResult::index() const {
  if (sample_index_ == nullptr || sample_index_->records_indexed() != records.size() ||
      sample_index_->pings_indexed() != pings.size()) {
    sample_index_ = std::make_shared<const PairSampleIndex>(PairSampleIndex::build(records, pings));
  }
  return *sample_index_;
}

std::vector<double> CampaignResult::response_times(const std::string& vantage,
                                                   const std::string& resolver) const {
  const std::vector<double>* samples = index().response_times(vantage, resolver);
  return samples == nullptr ? std::vector<double>{} : *samples;
}

std::vector<double> CampaignResult::ping_times(const std::string& vantage,
                                               const std::string& resolver) const {
  const std::vector<double>* samples = index().ping_times(vantage, resolver);
  return samples == nullptr ? std::vector<double>{} : *samples;
}

Json CampaignResult::to_json() const {
  JsonObject o;
  o["spec"] = spec.to_json();
  JsonArray recs;
  recs.reserve(records.size());
  for (const ResultRecord& r : records) recs.push_back(r.to_json());
  o["records"] = Json(std::move(recs));
  JsonArray pngs;
  pngs.reserve(pings.size());
  for (const PingRecord& p : pings) pngs.push_back(p.to_json());
  o["pings"] = Json(std::move(pngs));
  return Json(std::move(o));
}

Result<CampaignResult> CampaignResult::from_json(const Json& j) {
  if (!j.is_object()) return Err{std::string("campaign: not an object")};
  CampaignResult out;
  auto spec = MeasurementSpec::from_json(j.at("spec"));
  if (!spec) return Err{spec.error()};
  out.spec = std::move(spec).value();

  if (!j.at("records").is_array()) return Err{std::string("campaign: missing records")};
  for (const Json& e : j.at("records").as_array()) {
    auto r = ResultRecord::from_json(e);
    if (!r) return Err{r.error()};
    out.availability.record(r.value());
    out.records.push_back(std::move(r).value());
  }
  if (j.at("pings").is_array()) {
    for (const Json& e : j.at("pings").as_array()) {
      auto p = PingRecord::from_json(e);
      if (!p) return Err{p.error()};
      out.pings.push_back(std::move(p).value());
    }
  }
  return out;
}

void CampaignResult::write_json(std::ostream& os, int indent) const {
  os << to_json().dump(indent) << '\n';
}

CampaignRunner::CampaignRunner(SimWorld& world, MeasurementSpec spec)
    : world_(world), spec_(std::move(spec)) {}

CampaignResult CampaignRunner::run() {
  if (auto v = spec_.validate(); !v) {
    throw std::invalid_argument("CampaignRunner: invalid spec: " + v.error());
  }

  CampaignResult result;
  result.spec = spec_;
  const ProbeScheduler scheduler(spec_);
  // Campaigns may run back-to-back in one world (the paper's monthly
  // follow-up spans); schedule relative to the current simulated time.
  const netsim::SimTime base = world_.queue().now();

  // Touch every vantage up front so host attachment order (and therefore the
  // RNG consumption order) is independent of round scheduling.
  for (const std::string& vid : spec_.vantage_ids) (void)world_.vantage(vid);

  // Scripted outages: take the resolver offline at the start of from_round
  // and restore it at the start of to_round. Scheduled before the round
  // probes so same-instant ties (the queue fires ties in schedule order)
  // apply the fault before any query of that round. set_behavior draws no
  // RNG, so an empty fault list leaves the run byte-identical.
  for (const FaultWindow& w : spec_.fault_windows) {
    world_.queue().schedule_at(base + scheduler.round_start(w.from_round, 0),
                               [this, hostname = w.resolver] {
                                 world_.fleet().set_offline(hostname, true);
                               });
    world_.queue().schedule_at(base + scheduler.round_start(w.to_round, 0),
                               [this, hostname = w.resolver] {
                                 world_.fleet().set_offline(hostname, false);
                               });
  }

  for (int round = 0; round < spec_.rounds; ++round) {
    for (std::size_t vi = 0; vi < spec_.vantage_ids.size(); ++vi) {
      const std::string vantage_id = spec_.vantage_ids[vi];
      const netsim::SimTime start = base + scheduler.round_start(round, vi);
      world_.queue().schedule_at(start, [this, &result, vantage_id, round] {
        OBS_SPAN(world_.queue(), "core", "round-dispatch");
        for (const std::string& hostname : spec_.resolvers) {
          PingProbe::run(world_, vantage_id, hostname, spec_.ping_timeout, round,
                         [&result](PingRecord rec) { result.pings.push_back(std::move(rec)); });
          DnsProbe::run(world_, vantage_id, hostname, spec_.domains, spec_.protocol,
                        spec_.query_options, round,
                        [&result](std::vector<ResultRecord> recs) {
                          for (ResultRecord& r : recs) {
                            result.availability.record(r);
                            result.records.push_back(std::move(r));
                          }
                        });
        }
      });
    }
  }

  world_.run();
  return result;
}

}  // namespace ednsm::core
