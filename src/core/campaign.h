// CampaignRunner: executes a MeasurementSpec end-to-end in a SimWorld.
//
// Per round and vantage, every resolver gets one PingProbe and one DnsProbe
// (three domains, sequential) — the §3.2 measurement procedure. Probes to
// different resolvers run concurrently, like the tool's per-resolver loop
// pipelined across a round. Results accumulate into CampaignResult, which
// can be serialized to the tool's JSON output format and re-loaded.
#pragma once

#include <iosfwd>
#include <memory>
#include <string_view>
#include <unordered_map>

#include "core/availability.h"
#include "util/intern.h"
#include "core/probe.h"
#include "core/scheduler.h"
#include "core/spec.h"
#include "core/world.h"

namespace ednsm::core {

// Per-(vantage, resolver) sample index over a result's records. Report code
// asks for every pair of a 75-resolver x N-vantage campaign, which used to
// rescan (and string-compare) the full record vector per pair — O(pairs x
// records). One build pass groups samples by interned-symbol key instead.
class PairSampleIndex {
 public:
  static PairSampleIndex build(const std::vector<ResultRecord>& records,
                               const std::vector<PingRecord>& pings);

  // Samples (in record order) for the pair; nullptr when the pair has none.
  [[nodiscard]] const std::vector<double>* response_times(std::string_view vantage,
                                                          std::string_view resolver) const;
  [[nodiscard]] const std::vector<double>* ping_times(std::string_view vantage,
                                                      std::string_view resolver) const;

  [[nodiscard]] std::size_t records_indexed() const noexcept { return records_indexed_; }
  [[nodiscard]] std::size_t pings_indexed() const noexcept { return pings_indexed_; }

 private:
  InternTable vantages_;
  InternTable resolvers_;
  std::unordered_map<std::uint64_t, std::vector<double>> responses_;
  std::unordered_map<std::uint64_t, std::vector<double>> pings_;
  std::size_t records_indexed_ = 0;
  std::size_t pings_indexed_ = 0;
};

struct CampaignResult {
  MeasurementSpec spec;
  std::vector<ResultRecord> records;
  std::vector<PingRecord> pings;
  // ednsm-lint: allow(codec-parity) — derived: from_json rebuilds the ledger
  // from the records array, so serializing it would duplicate state.
  AvailabilityLedger availability;

  // Response-time samples (ms) for successful queries of one (vantage,
  // resolver) pair; empty when none succeeded. Served from index().
  [[nodiscard]] std::vector<double> response_times(const std::string& vantage,
                                                   const std::string& resolver) const;
  [[nodiscard]] std::vector<double> ping_times(const std::string& vantage,
                                               const std::string& resolver) const;

  // The lazily built sample index. Rebuilt when records/pings have grown or
  // shrunk since the last build; in-place edits that keep the sizes constant
  // are not detected (append-only accumulation is the supported pattern).
  // Not thread-safe: concurrent first calls on the same object race.
  [[nodiscard]] const PairSampleIndex& index() const;

  // The tool's JSON output (object with "spec", "records", "pings").
  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static Result<CampaignResult> from_json(const Json& j);

  void write_json(std::ostream& os, int indent = 2) const;

 private:
  // shared_ptr keeps CampaignResult copyable (copies share the cache until
  // either side rebuilds its own).
  mutable std::shared_ptr<const PairSampleIndex> sample_index_;
};

class CampaignRunner {
 public:
  CampaignRunner(SimWorld& world, MeasurementSpec spec);

  // Schedules all rounds and drains the event queue. Deterministic for a
  // given (spec, world seed). Throws std::invalid_argument on a spec that
  // fails validation (programming error at this layer).
  [[nodiscard]] CampaignResult run();

 private:
  SimWorld& world_;
  MeasurementSpec spec_;
};

}  // namespace ednsm::core
