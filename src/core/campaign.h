// CampaignRunner: executes a MeasurementSpec end-to-end in a SimWorld.
//
// Per round and vantage, every resolver gets one PingProbe and one DnsProbe
// (three domains, sequential) — the §3.2 measurement procedure. Probes to
// different resolvers run concurrently, like the tool's per-resolver loop
// pipelined across a round. Results accumulate into CampaignResult, which
// can be serialized to the tool's JSON output format and re-loaded.
#pragma once

#include <iosfwd>

#include "core/availability.h"
#include "core/probe.h"
#include "core/scheduler.h"
#include "core/spec.h"
#include "core/world.h"

namespace ednsm::core {

struct CampaignResult {
  MeasurementSpec spec;
  std::vector<ResultRecord> records;
  std::vector<PingRecord> pings;
  AvailabilityLedger availability;

  // Response-time samples (ms) for successful queries of one (vantage,
  // resolver) pair; empty when none succeeded.
  [[nodiscard]] std::vector<double> response_times(const std::string& vantage,
                                                   const std::string& resolver) const;
  [[nodiscard]] std::vector<double> ping_times(const std::string& vantage,
                                               const std::string& resolver) const;

  // The tool's JSON output (object with "spec", "records", "pings").
  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static Result<CampaignResult> from_json(const Json& j);

  void write_json(std::ostream& os, int indent = 2) const;
};

class CampaignRunner {
 public:
  CampaignRunner(SimWorld& world, MeasurementSpec spec);

  // Schedules all rounds and drains the event queue. Deterministic for a
  // given (spec, world seed). Throws std::invalid_argument on a spec that
  // fails validation (programming error at this layer).
  [[nodiscard]] CampaignResult run();

 private:
  SimWorld& world_;
  MeasurementSpec spec_;
};

}  // namespace ednsm::core
