#include "core/distribution.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/quantile.h"
#include "util/bytes.h"

namespace ednsm::core {

std::string_view to_string(DistributionStrategy s) noexcept {
  switch (s) {
    case DistributionStrategy::SingleFastest: return "single-fastest";
    case DistributionStrategy::RoundRobin: return "round-robin";
    case DistributionStrategy::UniformRandom: return "uniform-random";
    case DistributionStrategy::HashSharded: return "hash-sharded";
    case DistributionStrategy::FastestK: return "fastest-k";
  }
  return "?";
}

// ---- privacy ledger ----------------------------------------------------------

void PrivacyLedger::record(const std::string& resolver, const std::string& domain) {
  ++queries_[resolver];
  domains_[resolver].insert(domain);
  all_domains_.insert(domain);
  ++total_;
}

std::uint64_t PrivacyLedger::queries_seen(const std::string& resolver) const {
  const auto it = queries_.find(resolver);
  return it == queries_.end() ? 0 : it->second;
}

std::size_t PrivacyLedger::domains_seen(const std::string& resolver) const {
  const auto it = domains_.find(resolver);
  return it == domains_.end() ? 0 : it->second.size();
}

double PrivacyLedger::max_share() const {
  if (total_ == 0) return 0.0;
  std::uint64_t max_count = 0;
  for (const auto& [r, n] : queries_) max_count = std::max(max_count, n);
  return static_cast<double>(max_count) / static_cast<double>(total_);
}

double PrivacyLedger::entropy_bits() const {
  if (total_ == 0) return 0.0;
  double h = 0.0;
  for (const auto& [r, n] : queries_) {
    if (n == 0) continue;
    const double p = static_cast<double>(n) / static_cast<double>(total_);
    h -= p * std::log2(p);
  }
  return h;
}

double PrivacyLedger::max_domain_coverage() const {
  if (all_domains_.empty()) return 0.0;
  std::size_t max_domains = 0;
  for (const auto& [r, d] : domains_) max_domains = std::max(max_domains, d.size());
  return static_cast<double>(max_domains) / static_cast<double>(all_domains_.size());
}

// ---- distributor ----------------------------------------------------------------

QueryDistributor::QueryDistributor(SimWorld& world, std::string vantage_id,
                                   std::vector<std::string> resolvers,
                                   DistributorConfig config)
    : world_(world),
      vantage_id_(std::move(vantage_id)),
      resolvers_(std::move(resolvers)),
      config_(config),
      rng_(config.seed) {
  if (resolvers_.empty()) {
    throw std::invalid_argument("QueryDistributor: empty resolver set");
  }
  auto& vantage = world_.vantage(vantage_id_);
  doh_ = std::make_unique<client::DohClient>(world_.net(), *vantage.pool,
                                             config_.query_options);
  ranking_ = resolvers_;  // unranked until calibrate()
}

void QueryDistributor::calibrate(int probes) {
  auto& vantage = world_.vantage(vantage_id_);
  std::map<std::string, std::vector<double>> samples;
  const dns::Name probe_name = dns::Name::parse("example.com").value();

  for (int round = 0; round < probes; ++round) {
    for (const std::string& host : resolvers_) {
      const auto server = world_.fleet().address_for(host, vantage.info.location);
      if (!server.has_value()) continue;
      doh_->query(*server, host, probe_name, dns::RecordType::A,
                  [&samples, host](client::QueryOutcome o) {
                    if (o.ok) samples[host].push_back(netsim::to_ms(o.timing.total));
                  });
      world_.run();  // sequential probing, like the tool's measurement loop
    }
  }

  std::vector<std::pair<double, std::string>> ranked;
  for (const std::string& host : resolvers_) {
    const auto it = samples.find(host);
    const double med = (it == samples.end() || it->second.empty())
                           ? std::numeric_limits<double>::max()
                           : stats::median(it->second);
    ranked.emplace_back(med, host);
  }
  std::sort(ranked.begin(), ranked.end());
  ranking_.clear();
  for (auto& [med, host] : ranked) ranking_.push_back(std::move(host));
}

const std::string& QueryDistributor::pick(const std::string& domain) {
  switch (config_.strategy) {
    case DistributionStrategy::SingleFastest:
      return ranking_.front();
    case DistributionStrategy::RoundRobin: {
      const std::string& chosen = resolvers_[round_robin_next_];
      round_robin_next_ = (round_robin_next_ + 1) % resolvers_.size();
      return chosen;
    }
    case DistributionStrategy::UniformRandom:
      return resolvers_[rng_.uniform_u64(resolvers_.size())];
    case DistributionStrategy::HashSharded:
      // Stable per domain: each operator learns a fixed slice of the
      // namespace, never the whole profile (the K-resolver idea).
      return resolvers_[util::fnv1a(domain) % resolvers_.size()];
    case DistributionStrategy::FastestK: {
      const std::size_t k =
          std::min<std::size_t>(static_cast<std::size_t>(std::max(config_.k, 1)),
                                ranking_.size());
      return ranking_[rng_.uniform_u64(k)];
    }
  }
  return resolvers_.front();
}

void QueryDistributor::resolve(const std::string& domain, ResolveCallback cb) {
  const std::string resolver = pick(domain);
  privacy_.record(resolver, domain);

  auto& vantage = world_.vantage(vantage_id_);
  const auto server = world_.fleet().address_for(resolver, vantage.info.location);
  auto name = dns::Name::parse(domain);
  if (!server.has_value() || !name.has_value()) {
    client::QueryOutcome fail;
    fail.error = client::QueryError{client::QueryErrorClass::Malformed,
                                    "distribution: bad domain or unknown resolver"};
    cb(resolver, std::move(fail));
    return;
  }
  doh_->query(*server, resolver, name.value(), dns::RecordType::A,
              [resolver, cb = std::move(cb)](client::QueryOutcome o) {
                cb(resolver, std::move(o));
              });
}

// ---- workload --------------------------------------------------------------------

std::vector<std::string> zipf_workload(std::size_t unique_domains, std::size_t queries,
                                       double alpha, std::uint64_t seed) {
  // Precompute the Zipf CDF over ranks 1..unique_domains.
  std::vector<double> cdf(unique_domains);
  double total = 0.0;
  for (std::size_t rank = 1; rank <= unique_domains; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank), alpha);
    cdf[rank - 1] = total;
  }
  for (double& c : cdf) c /= total;

  netsim::Rng rng(seed);
  std::vector<std::string> out;
  out.reserve(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    const double u = rng.next_double();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const std::size_t rank = static_cast<std::size_t>(it - cdf.begin());
    out.push_back("site" + std::to_string(rank) + ".example.com");
  }
  return out;
}

}  // namespace ednsm::core
