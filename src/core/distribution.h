// Query-distribution strategies across multiple encrypted resolvers.
//
// The paper's related-work section motivates this directly: K-resolver
// (Hoang et al.) and Hounsel et al.'s distribution study spread queries over
// several DoH resolvers so no single operator sees the full browsing
// profile — "but designing a system to take advantage of multiple recursive
// resolvers must be informed about how the choice of resolver affects
// performance." This module provides those strategies on top of the
// measurement substrate, plus the privacy accounting needed to compare them.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "client/doh.h"
#include "core/world.h"

namespace ednsm::core {

enum class DistributionStrategy {
  SingleFastest,  // classic behaviour: one resolver gets everything
  RoundRobin,     // rotate per query
  UniformRandom,  // independent uniform choice per query
  HashSharded,    // resolver = hash(domain): each operator sees a fixed slice
  FastestK,       // uniform among the k fastest (performance-aware privacy)
};

[[nodiscard]] std::string_view to_string(DistributionStrategy s) noexcept;

// How much of the query stream each resolver observed.
class PrivacyLedger {
 public:
  void record(const std::string& resolver, const std::string& domain);

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t queries_seen(const std::string& resolver) const;
  [[nodiscard]] std::size_t domains_seen(const std::string& resolver) const;

  // Fraction of all queries observed by the most-observing resolver
  // (1.0 = one operator profiles everything; 1/N = perfectly spread).
  [[nodiscard]] double max_share() const;

  // Shannon entropy (bits) of the per-resolver query distribution; log2(N)
  // is the maximum for N resolvers.
  [[nodiscard]] double entropy_bits() const;

  // Largest fraction of *distinct domains* any one resolver learned.
  [[nodiscard]] double max_domain_coverage() const;

 private:
  std::map<std::string, std::uint64_t> queries_;
  std::map<std::string, std::set<std::string>> domains_;
  std::set<std::string> all_domains_;
  std::uint64_t total_ = 0;
};

struct DistributorConfig {
  DistributionStrategy strategy = DistributionStrategy::RoundRobin;
  int k = 3;  // FastestK pool size
  std::uint64_t seed = 1;
  client::QueryOptions query_options;
};

// Distributes DoH queries from one vantage across a resolver set.
class QueryDistributor {
 public:
  QueryDistributor(SimWorld& world, std::string vantage_id,
                   std::vector<std::string> resolvers, DistributorConfig config);

  // Probe every resolver `probes` times (round-robin over `domains`) to rank
  // them by median response time; required before SingleFastest/FastestK.
  // Runs the event loop to completion.
  void calibrate(int probes = 3);

  // Pick the resolver for `domain` under the configured strategy (pure
  // selection; no query issued). Deterministic given (config.seed, history).
  [[nodiscard]] const std::string& pick(const std::string& domain);

  // Resolve `domain`: pick + DoH query + privacy accounting. The callback
  // also receives the resolver used. Drives no event loop; call world.run().
  using ResolveCallback =
      std::function<void(const std::string& resolver, client::QueryOutcome)>;
  void resolve(const std::string& domain, ResolveCallback cb);

  [[nodiscard]] const PrivacyLedger& privacy() const noexcept { return privacy_; }
  [[nodiscard]] const std::vector<std::string>& ranking() const noexcept { return ranking_; }
  [[nodiscard]] const std::vector<std::string>& resolvers() const noexcept {
    return resolvers_;
  }

 private:
  SimWorld& world_;
  std::string vantage_id_;
  std::vector<std::string> resolvers_;
  DistributorConfig config_;
  netsim::Rng rng_;
  std::unique_ptr<client::DohClient> doh_;
  PrivacyLedger privacy_;
  std::vector<std::string> ranking_;  // fastest-first after calibrate()
  std::size_t round_robin_next_ = 0;
};

// Zipf-distributed browsing workload: `unique_domains` ranked by popularity
// with exponent `alpha` (web traffic is roughly alpha ~ 0.9-1.0). Returns
// `queries` domain names sampled from that distribution.
[[nodiscard]] std::vector<std::string> zipf_workload(std::size_t unique_domains,
                                                     std::size_t queries, double alpha,
                                                     std::uint64_t seed);

}  // namespace ednsm::core
