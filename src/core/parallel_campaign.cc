#include "core/parallel_campaign.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "netsim/rng.h"

namespace ednsm::core {

namespace {

// Run work(0..n-1) on up to `threads` workers pulling indices from a shared
// counter. With one worker everything runs inline on the calling thread, so
// threads=1 has no pool overhead at all. The first exception thrown by any
// unit is rethrown on the caller after all workers join.
void for_each_shard(std::size_t n, int threads, const std::function<void(std::size_t)>& work) {
  const std::size_t workers =
      std::min<std::size_t>(n, static_cast<std::size_t>(std::max(threads, 1)));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) work(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        work(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) pool.emplace_back(drain);
  drain();
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

// Move `from`'s elements into per-round buckets, preserving relative order.
template <typename Record>
std::vector<std::vector<Record>> bucket_by_round(std::vector<Record> from, int rounds) {
  std::vector<std::vector<Record>> buckets(static_cast<std::size_t>(rounds));
  for (Record& r : from) {
    buckets.at(static_cast<std::size_t>(r.round)).push_back(std::move(r));
  }
  return buckets;
}

}  // namespace

std::vector<std::uint64_t> shard_seeds(std::uint64_t spec_seed, std::size_t n) {
  std::vector<std::uint64_t> seeds(n);
  std::uint64_t state = spec_seed;
  for (std::uint64_t& s : seeds) s = netsim::splitmix64(state);
  return seeds;
}

void collect_result_metrics(const CampaignResult& result, obs::Metrics& m) {
  const obs::Metrics::Key response_ms = m.distribution_key("campaign.response_ms");
  const obs::Metrics::Key exchange_ms = m.distribution_key("campaign.exchange_ms");
  const obs::Metrics::Key ping_rtt_ms = m.distribution_key("campaign.ping_rtt_ms");
  for (const ResultRecord& r : result.records) {
    m.add("campaign.records");
    if (r.ok) {
      m.add("campaign.records_ok");
      m.observe(response_ms, r.response_ms);
      m.observe(exchange_ms, r.exchange_ms);
      if (r.connection_reused) m.add("campaign.records_reused_connection");
    } else {
      m.add("campaign.records_failed");
      const std::string stage = r.failure_stage.empty()
                                    ? std::string(derive_failure_stage(r.error_class))
                                    : r.failure_stage;
      m.add("campaign.failure_stage." + (stage.empty() ? std::string("unknown") : stage));
      if (!r.error_class.empty()) m.add("campaign.error_class." + r.error_class);
    }
  }
  for (const PingRecord& p : result.pings) {
    m.add("campaign.pings");
    if (p.ok) {
      m.add("campaign.pings_ok");
      m.observe(ping_rtt_ms, p.rtt_ms);
    }
  }
}

CampaignResult run_parallel_campaign(const MeasurementSpec& spec, int threads) {
  return run_parallel_campaign(spec, threads, CampaignObsOptions{}, nullptr);
}

CampaignResult run_parallel_campaign(const MeasurementSpec& spec, int threads,
                                     const CampaignObsOptions& obs_options,
                                     CampaignObsData* obs_out) {
  if (auto v = spec.validate(); !v) {
    throw std::invalid_argument("run_parallel_campaign: invalid spec: " + v.error());
  }

  const std::size_t shards = spec.vantage_ids.size();
  const std::vector<std::uint64_t> seeds = shard_seeds(spec.seed, shards);
  std::vector<CampaignResult> shard_results(shards);
  const bool want_trace = obs_out != nullptr && obs_options.trace;
  const bool want_metrics = obs_out != nullptr && obs_options.metrics;
  std::vector<obs::TraceData> shard_traces(want_trace ? shards : 0);
  std::vector<obs::Metrics> shard_metrics(want_metrics ? shards : 0);

  for_each_shard(shards, threads, [&](std::size_t i) {
    MeasurementSpec shard_spec = spec;
    shard_spec.vantage_ids = {spec.vantage_ids[i]};
    shard_spec.seed = seeds[i];
    SimWorld world(shard_spec.seed);
    if (want_trace) world.tracer().enable(obs_options.trace_capacity);
    shard_results[i] = CampaignRunner(world, shard_spec).run();
    if (want_trace) shard_traces[i] = world.tracer().drain();
    if (want_metrics) world.collect_metrics(shard_metrics[i]);
  });

  // Shards merge in spec vantage order regardless of which worker ran them,
  // so the exported trace and metrics are thread-count independent.
  if (want_trace) {
    for (std::size_t i = 0; i < shards; ++i) {
      obs_out->trace.add_shard("vantage/" + spec.vantage_ids[i], std::move(shard_traces[i]));
    }
  }
  if (want_metrics) {
    for (const obs::Metrics& m : shard_metrics) obs_out->metrics.merge(m);
  }

  CampaignResult merged;
  merged.spec = spec;

  std::size_t total_records = 0;
  std::size_t total_pings = 0;
  std::vector<std::vector<std::vector<ResultRecord>>> records_by_shard(shards);
  std::vector<std::vector<std::vector<PingRecord>>> pings_by_shard(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    total_records += shard_results[i].records.size();
    total_pings += shard_results[i].pings.size();
    records_by_shard[i] = bucket_by_round(std::move(shard_results[i].records), spec.rounds);
    pings_by_shard[i] = bucket_by_round(std::move(shard_results[i].pings), spec.rounds);
  }

  // Canonical merge order: round-major, then vantage in spec order, records
  // within a (round, vantage) shard in their deterministic completion order
  // (which is resolver completion order within the round).
  merged.records.reserve(total_records);
  merged.pings.reserve(total_pings);
  for (int round = 0; round < spec.rounds; ++round) {
    for (std::size_t i = 0; i < shards; ++i) {
      auto& recs = records_by_shard[i][static_cast<std::size_t>(round)];
      for (ResultRecord& r : recs) {
        merged.availability.record(r);
        merged.records.push_back(std::move(r));
      }
      auto& pngs = pings_by_shard[i][static_cast<std::size_t>(round)];
      for (PingRecord& p : pngs) merged.pings.push_back(std::move(p));
    }
  }
  if (want_metrics) collect_result_metrics(merged, obs_out->metrics);
  return merged;
}

std::vector<CampaignResult> run_seed_sweep(const MeasurementSpec& spec, std::size_t sweeps,
                                           int threads) {
  if (auto v = spec.validate(); !v) {
    throw std::invalid_argument("run_seed_sweep: invalid spec: " + v.error());
  }
  const std::vector<std::uint64_t> seeds = shard_seeds(spec.seed, sweeps);
  std::vector<CampaignResult> results(sweeps);
  for_each_shard(sweeps, threads, [&](std::size_t i) {
    MeasurementSpec sweep_spec = spec;
    sweep_spec.seed = seeds[i];
    // Shards inside each sweep run serially; the sweep itself is the unit of
    // parallelism here.
    results[i] = run_parallel_campaign(sweep_spec, 1);
  });
  return results;
}

}  // namespace ednsm::core
