#include "core/parallel_campaign.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "util/spsc_ring.h"

namespace ednsm::core {

namespace {

// Ring capacities. Task rings are deep enough that expansion runs ahead of
// simulation without stalling; outcome rings are shallow because outcomes
// are large (a full single-vantage result) and the collector drains eagerly.
constexpr std::size_t kTaskRingCapacity = 64;
constexpr std::size_t kOutcomeRingCapacity = 8;

// Run work(0..n-1) on up to `threads` workers pulling indices from a shared
// counter. With one worker everything runs inline on the calling thread, so
// threads=1 has no pool overhead at all. The first exception thrown by any
// unit is rethrown on the caller after all workers join. Used by the
// seed-sweep workload, where the unit of parallelism is a whole campaign.
void for_each_shard(std::size_t n, int threads, const std::function<void(std::size_t)>& work) {
  const std::size_t workers =
      std::min<std::size_t>(n, static_cast<std::size_t>(std::max(threads, 1)));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) work(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        work(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 1; t < workers; ++t) pool.emplace_back(drain);
  drain();
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

void run_pipeline(const MeasurementSpec& spec, const std::vector<ShardPlan>& plans, int threads,
                  const CampaignObsOptions& obs_options,
                  const std::function<void(ShardOutcome&&)>& sink) {
  if (plans.empty()) return;
  const std::size_t workers =
      std::min<std::size_t>(plans.size(), static_cast<std::size_t>(std::max(threads, 1)));

  // Runtime telemetry is observation-only: every hook below is a null check
  // plus relaxed atomics, and nothing it records feeds back into plan order,
  // ring behavior, or outcomes — outputs stay byte-identical with it on/off.
  obs::RuntimeTelemetry* const rt = obs_options.runtime;
  obs::HeartbeatWriter* const hb = obs_options.heartbeat;

  if (workers <= 1) {
    // Degenerate pipeline: all stages run inline on the calling thread, in
    // plan order — no rings, no pool overhead, same outcomes. Ring counters
    // stay zero (there are no rings); plan/sink progress is still reported.
    for (const ShardPlan& plan : plans) {
      const std::uint64_t t0 = rt != nullptr ? rt->clock_now_ns() : 0;
      ShardOutcome outcome = run_shard(spec, plan, obs_options);
      const std::uint64_t t1 = rt != nullptr ? rt->clock_now_ns() : 0;
      if (rt != nullptr) rt->note_plan_done(t1 - t0);
      sink(std::move(outcome));
      if (rt != nullptr) rt->note_sink_items(1, rt->clock_now_ns() - t1);
      if (hb != nullptr) hb->write_update();
    }
    return;
  }

  // One task ring and one outcome ring per worker. Plans are striped
  // round-robin (plan i → ring i % workers) so every ring keeps exactly one
  // producer (the expansion thread) and one consumer (its worker); likewise
  // each outcome ring has one producer (its worker) and one consumer (the
  // collector loop below). Outcomes travel as unique_ptr so a ring slot is
  // pointer-sized and hand-off is a move.
  using OutcomePtr = std::unique_ptr<ShardOutcome>;
  std::vector<std::unique_ptr<util::SpscRing<ShardPlan>>> task_rings;
  std::vector<std::unique_ptr<util::SpscRing<OutcomePtr>>> outcome_rings;
  task_rings.reserve(workers);
  outcome_rings.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    task_rings.push_back(std::make_unique<util::SpscRing<ShardPlan>>(kTaskRingCapacity));
    outcome_rings.push_back(std::make_unique<util::SpscRing<OutcomePtr>>(kOutcomeRingCapacity));
  }
  if (rt != nullptr) {
    // One stat sink per ring, attached before any pipeline thread starts.
    rt->configure_workers(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      task_rings[w]->attach_stats(rt->task_ring_stats(w));
      outcome_rings[w]->attach_stats(rt->outcome_ring_stats(w));
    }
  }

  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto record_error = [&] {
    const std::lock_guard<std::mutex> lock(error_mutex);
    if (!first_error) first_error = std::current_exception();
  };

  // Stage 1: expansion. Streams plans into the task rings (blocking push =
  // backpressure against a deep backlog) and closes them to signal
  // end-of-stream.
  std::thread expansion([&] {
    for (std::size_t i = 0; i < plans.size(); ++i) {
      task_rings[i % workers]->push(plans[i]);
    }
    for (auto& ring : task_rings) ring->close();
  });

  // Stage 2: simulation workers. Each drains its task ring to exhaustion —
  // even after an error, so the expansion stage can never block forever on a
  // full ring — and closes its outcome ring when done.
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      ShardPlan plan;
      while (task_rings[w]->pop(plan)) {
        try {
          const std::uint64_t t0 = rt != nullptr ? rt->clock_now_ns() : 0;
          auto outcome = std::make_unique<ShardOutcome>(run_shard(spec, plan, obs_options));
          if (rt != nullptr) rt->note_plan_done(rt->clock_now_ns() - t0);
          outcome_rings[w]->push(std::move(outcome));
        } catch (...) {
          record_error();
        }
      }
      outcome_rings[w]->close();
    });
  }

  // Stage 3: collect/encode on the calling thread, overlapping the sink's
  // per-shard work with shards still simulating. Polls the outcome rings
  // round-robin until every one is closed and drained. A sink exception
  // stops sinking but keeps draining, so workers never block on a full
  // outcome ring.
  std::exception_ptr sink_error;
  std::size_t open_rings = workers;
  while (open_rings > 0) {
    bool progressed = false;
    open_rings = 0;
    for (auto& ring : outcome_rings) {
      OutcomePtr outcome;
      while (ring->try_pop(outcome)) {
        progressed = true;
        if (!sink_error) {
          try {
            const std::uint64_t t0 = rt != nullptr ? rt->clock_now_ns() : 0;
            sink(std::move(*outcome));
            if (rt != nullptr) rt->note_sink_items(1, rt->clock_now_ns() - t0);
          } catch (...) {
            sink_error = std::current_exception();
          }
        }
        outcome.reset();
      }
      if (!ring->closed() || !ring->empty()) ++open_rings;
    }
    // Heartbeats are pumped whether or not outcomes arrived this pass, so a
    // stalled pipeline still reports (stale progress + fresh timestamp is
    // exactly the wedged-worker signal ednsm_watch surfaces).
    if (hb != nullptr) hb->write_update();
    if (!progressed && open_rings > 0) {
      if (rt != nullptr) rt->note_collector_idle_spin();
      std::this_thread::yield();
    }
  }

  expansion.join();
  for (std::thread& t : pool) t.join();
  if (sink_error) std::rethrow_exception(sink_error);
  if (first_error) std::rethrow_exception(first_error);
}

CampaignResult run_parallel_campaign(const MeasurementSpec& spec, int threads) {
  return run_parallel_campaign(spec, threads, CampaignObsOptions{}, nullptr);
}

CampaignResult run_parallel_campaign(const MeasurementSpec& spec, int threads,
                                     const CampaignObsOptions& obs_options,
                                     CampaignObsData* obs_out) {
  if (auto v = spec.validate(); !v) {
    throw std::invalid_argument("run_parallel_campaign: invalid spec: " + v.error());
  }

  // Sim-domain observability (trace/metrics) is only collected when there is
  // somewhere to put it, so the plain overload keeps its exact legacy
  // behavior (and cost). Runtime telemetry is independent of that: it has its
  // own sink (the RuntimeTelemetry hub) and survives the reset.
  CampaignObsOptions obs = obs_options;
  if (obs_out == nullptr) {
    obs = CampaignObsOptions{};
    obs.runtime = obs_options.runtime;
    obs.heartbeat = obs_options.heartbeat;
  }

  const std::vector<ShardPlan> plans = expand_spec(spec);
  ShardCollector collector(spec, plans.size(), obs);
  run_pipeline(spec, plans, threads, obs, [&](ShardOutcome&& outcome) {
    // The pipeline delivers each plan index exactly once, so add() cannot
    // fail here; surface a logic error loudly if that invariant breaks.
    if (auto added = collector.add(std::move(outcome)); !added) {
      throw std::logic_error("run_parallel_campaign: " + added.error());
    }
  });
  return collector.finish(obs_out);
}

std::vector<CampaignResult> run_seed_sweep(const MeasurementSpec& spec, std::size_t sweeps,
                                           int threads) {
  if (auto v = spec.validate(); !v) {
    throw std::invalid_argument("run_seed_sweep: invalid spec: " + v.error());
  }
  const std::vector<std::uint64_t> seeds = shard_seeds(spec.seed, sweeps);
  std::vector<CampaignResult> results(sweeps);
  for_each_shard(sweeps, threads, [&](std::size_t i) {
    MeasurementSpec sweep_spec = spec;
    sweep_spec.seed = seeds[i];
    // Shards inside each sweep run serially; the sweep itself is the unit of
    // parallelism here.
    results[i] = run_parallel_campaign(sweep_spec, 1);
  });
  return results;
}

}  // namespace ednsm::core
