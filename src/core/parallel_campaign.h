// Shard-and-merge campaign engine.
//
// A multi-vantage campaign decomposes into independent shards — one SimWorld
// per vantage, seeded deterministically from the spec seed via splitmix64 —
// that run with zero shared mutable state and merge in canonical
// (round, vantage, resolver) order. The output is a pure function of the
// spec: byte-identical JSON for any `threads` value, including 1.
//
// Note the decomposition is *defined* this way rather than derived from the
// legacy single-world run: a single SimWorld threads one RNG stream through
// every vantage's traffic, so its exact output cannot be reproduced shard by
// shard. A sharded run is instead exactly "each vantage measured as its own
// single-vantage campaign", which is also the more faithful model of the
// paper's fleet of independent probing machines.
#pragma once

#include "core/campaign.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ednsm::core {

// What to observe during a sharded campaign. Everything defaults off, so the
// plain overloads keep their exact legacy behavior (and cost).
struct CampaignObsOptions {
  bool trace = false;  // enable each shard world's Tracer
  std::size_t trace_capacity = obs::Tracer::kDefaultCapacity;  // ring slots/shard
  bool metrics = false;  // collect sim + result counters/distributions
};

// Where the observations land. Shard traces are appended in spec vantage
// order (label "vantage/<id>"), shard metrics merge by name — both therefore
// independent of thread count and shard completion order.
struct CampaignObsData {
  obs::MergedTrace trace;
  obs::Metrics metrics;
};

// Fold the merged campaign outcome into `m`: record/ping counts, failure
// stage and error-class breakdowns, and response-time distributions. Operates
// on the merged (canonical-order) result, so the numbers are the same for any
// thread count.
void collect_result_metrics(const CampaignResult& result, obs::Metrics& m);

// Successive splitmix64 outputs seeded from `spec_seed`: shard i of n gets
// seeds[i]. Stable across thread counts and shard execution order.
[[nodiscard]] std::vector<std::uint64_t> shard_seeds(std::uint64_t spec_seed, std::size_t n);

// Run `spec` sharded per vantage across at most `threads` worker threads
// (clamped to [1, #shards]). Throws std::invalid_argument on an invalid
// spec, and propagates the first shard exception otherwise.
[[nodiscard]] CampaignResult run_parallel_campaign(const MeasurementSpec& spec, int threads);

// Same engine with observability: when `obs_options` enables tracing or
// metrics and `obs_out` is non-null, shard traces/metrics are merged into it
// deterministically. Tracing never perturbs the simulation — the returned
// CampaignResult is byte-identical to the plain overload's.
[[nodiscard]] CampaignResult run_parallel_campaign(const MeasurementSpec& spec, int threads,
                                                   const CampaignObsOptions& obs_options,
                                                   CampaignObsData* obs_out);

// Re-run `spec` under `sweeps` derived seeds (splitmix64 from spec.seed),
// sweeping whole campaigns across the worker pool — the "many more seeds
// than the paper's runs" workload. Results come back in seed order.
[[nodiscard]] std::vector<CampaignResult> run_seed_sweep(const MeasurementSpec& spec,
                                                         std::size_t sweeps, int threads);

}  // namespace ednsm::core
