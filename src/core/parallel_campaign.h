// Staged-pipeline campaign engine.
//
// A multi-vantage campaign decomposes into independent shards — one SimWorld
// per vantage, seeded deterministically from the spec seed via splitmix64
// (see core/pipeline.h for the plan/outcome vocabulary) — that run with zero
// shared mutable state and merge in canonical (round, vantage, resolver)
// order. The output is a pure function of the spec: byte-identical JSON for
// any `threads` value, including 1, and for any `--shard k/N` process split
// merged by ednsm_merge.
//
// Execution is a ZDNS-style staged pipeline connected by SPSC rings
// (util/spsc_ring.h):
//
//   expansion ──rings──▶ simulation workers ──rings──▶ collector/encoder
//
// The expansion stage streams ShardPlans into per-worker task rings (striped
// round-robin, so each ring keeps a single producer and single consumer);
// workers simulate and push ShardOutcomes into their own outcome ring; the
// calling thread drains outcome rings as results complete, doing the
// per-shard encode work (round bucketing) concurrently with shards still
// simulating, and finally assembles the canonical merge (the sink stage).
//
// Note the decomposition is *defined* this way rather than derived from the
// legacy single-world run: a single SimWorld threads one RNG stream through
// every vantage's traffic, so its exact output cannot be reproduced shard by
// shard. A sharded run is instead exactly "each vantage measured as its own
// single-vantage campaign", which is also the more faithful model of the
// paper's fleet of independent probing machines.
#pragma once

#include <functional>

#include "core/pipeline.h"

namespace ednsm::core {

// Run `plans` through the expansion → simulation stages with up to `threads`
// workers (clamped to [1, #plans]), invoking `sink` on the calling thread
// once per completed plan, in completion order. This is the engine under
// run_parallel_campaign (sink = ShardCollector) and under `--shard` workers
// (sink = shard-file accumulation). Worker exceptions are rethrown on the
// caller after all stages drain; the sink may then have seen only a subset
// of outcomes.
void run_pipeline(const MeasurementSpec& spec, const std::vector<ShardPlan>& plans, int threads,
                  const CampaignObsOptions& obs_options,
                  const std::function<void(ShardOutcome&&)>& sink);

// Run `spec` sharded per vantage across at most `threads` worker threads.
// Throws std::invalid_argument on an invalid spec, and propagates the first
// shard exception otherwise.
[[nodiscard]] CampaignResult run_parallel_campaign(const MeasurementSpec& spec, int threads);

// Same engine with observability: when `obs_options` enables tracing or
// metrics and `obs_out` is non-null, shard traces/metrics are merged into it
// deterministically. Tracing never perturbs the simulation — the returned
// CampaignResult is byte-identical to the plain overload's.
[[nodiscard]] CampaignResult run_parallel_campaign(const MeasurementSpec& spec, int threads,
                                                   const CampaignObsOptions& obs_options,
                                                   CampaignObsData* obs_out);

// Re-run `spec` under `sweeps` derived seeds (splitmix64 from spec.seed),
// sweeping whole campaigns across the worker pool — the "many more seeds
// than the paper's runs" workload. Results come back in seed order.
[[nodiscard]] std::vector<CampaignResult> run_seed_sweep(const MeasurementSpec& spec,
                                                         std::size_t sweeps, int threads);

}  // namespace ednsm::core
