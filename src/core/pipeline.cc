#include "core/pipeline.h"

#include <algorithm>
#include <cstdlib>

#include "netsim/rng.h"

namespace ednsm::core {

namespace {

// Move `from`'s elements into per-round buckets, preserving relative order.
template <typename Record>
std::vector<std::vector<Record>> bucket_by_round(std::vector<Record> from, int rounds) {
  std::vector<std::vector<Record>> buckets(static_cast<std::size_t>(rounds));
  for (Record& r : from) {
    buckets.at(static_cast<std::size_t>(r.round)).push_back(std::move(r));
  }
  return buckets;
}

}  // namespace

std::vector<std::uint64_t> shard_seeds(std::uint64_t spec_seed, std::size_t n) {
  std::vector<std::uint64_t> seeds(n);
  std::uint64_t state = spec_seed;
  for (std::uint64_t& s : seeds) s = netsim::splitmix64(state);
  return seeds;
}

void collect_result_metrics(const CampaignResult& result, obs::Metrics& m) {
  const obs::Metrics::Key response_ms = m.distribution_key("campaign.response_ms");
  const obs::Metrics::Key exchange_ms = m.distribution_key("campaign.exchange_ms");
  const obs::Metrics::Key ping_rtt_ms = m.distribution_key("campaign.ping_rtt_ms");
  for (const ResultRecord& r : result.records) {
    m.add("campaign.records");
    if (r.ok) {
      m.add("campaign.records_ok");
      m.observe(response_ms, r.response_ms);
      m.observe(exchange_ms, r.exchange_ms);
      if (r.connection_reused) m.add("campaign.records_reused_connection");
    } else {
      m.add("campaign.records_failed");
      const std::string stage = r.failure_stage.empty()
                                    ? std::string(derive_failure_stage(r.error_class))
                                    : r.failure_stage;
      m.add("campaign.failure_stage." + (stage.empty() ? std::string("unknown") : stage));
      if (!r.error_class.empty()) m.add("campaign.error_class." + r.error_class);
    }
  }
  for (const PingRecord& p : result.pings) {
    m.add("campaign.pings");
    if (p.ok) {
      m.add("campaign.pings_ok");
      m.observe(ping_rtt_ms, p.rtt_ms);
    }
  }
}

std::vector<ShardPlan> expand_spec(const MeasurementSpec& spec) {
  const std::size_t n = spec.vantage_ids.size();
  const std::vector<std::uint64_t> seeds = shard_seeds(spec.seed, n);
  std::vector<ShardPlan> plans;
  plans.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    plans.push_back(ShardPlan{i, spec.vantage_ids[i], seeds[i]});
  }
  return plans;
}

Result<ShardSlice> ShardSlice::parse(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size()) {
    return Err{"shard slice must be k/N, e.g. 0/4: " + text};
  }
  const std::string k_part = text.substr(0, slash);
  const std::string n_part = text.substr(slash + 1);
  for (const std::string& part : {k_part, n_part}) {
    if (part.find_first_not_of("0123456789") != std::string::npos) {
      return Err{"shard slice must be k/N with decimal k and N: " + text};
    }
  }
  ShardSlice slice;
  slice.k = static_cast<std::size_t>(std::strtoull(k_part.c_str(), nullptr, 10));
  slice.n = static_cast<std::size_t>(std::strtoull(n_part.c_str(), nullptr, 10));
  if (!slice.valid()) {
    return Err{"shard slice needs 0 <= k < N: " + text};
  }
  return slice;
}

SliceBounds slice_bounds(std::size_t total, const ShardSlice& slice) {
  const std::size_t base = total / slice.n;
  const std::size_t rem = total % slice.n;
  SliceBounds b;
  b.begin = slice.k * base + std::min(slice.k, rem);
  b.end = b.begin + base + (slice.k < rem ? 1 : 0);
  return b;
}

std::vector<ShardPlan> slice_plans(const std::vector<ShardPlan>& plans, const ShardSlice& slice) {
  const SliceBounds b = slice_bounds(plans.size(), slice);
  return std::vector<ShardPlan>(plans.begin() + static_cast<std::ptrdiff_t>(b.begin),
                                plans.begin() + static_cast<std::ptrdiff_t>(b.end));
}

std::uint64_t spec_fingerprint(const MeasurementSpec& spec) {
  const std::string canonical = spec.to_json().dump();
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (const char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV-1a prime
  }
  return h;
}

ShardOutcome run_shard(const MeasurementSpec& spec, const ShardPlan& plan,
                       const CampaignObsOptions& obs) {
  MeasurementSpec shard_spec = spec;
  shard_spec.vantage_ids = {plan.vantage};
  shard_spec.seed = plan.seed;

  ShardOutcome out;
  out.index = plan.index;
  out.vantage = plan.vantage;
  out.seed = plan.seed;

  SimWorld world(shard_spec.seed);
  if (obs.trace) world.tracer().enable(obs.trace_capacity);
  out.result = CampaignRunner(world, shard_spec).run();
  if (obs.trace) out.trace = world.tracer().drain();
  if (obs.metrics) world.collect_metrics(out.metrics);
  return out;
}

ShardCollector::ShardCollector(MeasurementSpec spec, std::size_t shard_count,
                               CampaignObsOptions obs_options)
    : spec_(std::move(spec)),
      obs_(obs_options),
      records_by_shard_(shard_count),
      pings_by_shard_(shard_count),
      traces_(obs_options.trace ? shard_count : 0),
      metrics_(obs_options.metrics ? shard_count : 0),
      seen_(shard_count, false) {}

Result<void> ShardCollector::add(ShardOutcome outcome) {
  const std::size_t i = outcome.index;
  if (i >= seen_.size()) {
    return Err{"shard index " + std::to_string(i) + " out of range (expected " +
               std::to_string(seen_.size()) + " shards)"};
  }
  if (seen_[i]) {
    return Err{"duplicate shard index " + std::to_string(i)};
  }
  seen_[i] = true;
  ++collected_;
  total_records_ += outcome.result.records.size();
  total_pings_ += outcome.result.pings.size();
  records_by_shard_[i] = bucket_by_round(std::move(outcome.result.records), spec_.rounds);
  pings_by_shard_[i] = bucket_by_round(std::move(outcome.result.pings), spec_.rounds);
  if (obs_.trace) traces_[i] = std::move(outcome.trace);
  if (obs_.metrics) metrics_[i] = std::move(outcome.metrics);
  return {};
}

CampaignResult ShardCollector::finish(CampaignObsData* obs_out) {
  const std::size_t shards = seen_.size();

  // Shards merge in spec vantage order regardless of which worker (or
  // process) ran them, so the exported trace and metrics are topology
  // independent.
  if (obs_out != nullptr && obs_.trace) {
    for (std::size_t i = 0; i < shards; ++i) {
      obs_out->trace.add_shard("vantage/" + spec_.vantage_ids[i], std::move(traces_[i]));
    }
  }
  if (obs_out != nullptr && obs_.metrics) {
    for (const obs::Metrics& m : metrics_) obs_out->metrics.merge(m);
  }

  CampaignResult merged;
  merged.spec = spec_;

  // Canonical merge order: round-major, then vantage in spec order, records
  // within a (round, vantage) shard in their deterministic completion order
  // (which is resolver completion order within the round).
  merged.records.reserve(total_records_);
  merged.pings.reserve(total_pings_);
  for (int round = 0; round < spec_.rounds; ++round) {
    for (std::size_t i = 0; i < shards; ++i) {
      auto& recs = records_by_shard_[i][static_cast<std::size_t>(round)];
      for (ResultRecord& r : recs) {
        merged.availability.record(r);
        merged.records.push_back(std::move(r));
      }
      auto& pngs = pings_by_shard_[i][static_cast<std::size_t>(round)];
      for (PingRecord& p : pngs) merged.pings.push_back(std::move(p));
    }
  }
  if (obs_out != nullptr && obs_.metrics) collect_result_metrics(merged, obs_out->metrics);
  return merged;
}

}  // namespace ednsm::core
