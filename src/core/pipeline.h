// Staged-pipeline building blocks for the campaign engine (ZDNS-style
// generator → worker → encoder decomposition).
//
// A campaign is decomposed into a deterministic plan list (expand_spec): one
// ShardPlan per vantage, carrying its splitmix64-derived seed and its global
// index. Plans are the unit of work everywhere — the in-process engine feeds
// them through SPSC rings to simulation workers (see parallel_campaign.cc),
// and `--shard k/N` slices the *same* list across processes (slice_plans), so
// a multi-process run simulates exactly the shards a single process would.
//
// ShardCollector is the single merge implementation: the in-process pipeline
// sinks outcomes into it incrementally (encode overlaps simulation), and
// ednsm_merge feeds it shard-file outcomes. Both paths therefore produce the
// canonical (round-major, vantage-in-spec-order) result byte-for-byte,
// extending the "byte-identical for any --threads" guarantee to any
// processes × threads split.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "obs/metrics.h"
#include "obs/runtime.h"
#include "obs/trace.h"

namespace ednsm::core {

// What to observe during a sharded campaign. Everything defaults off, so the
// plain overloads keep their exact legacy behavior (and cost).
struct CampaignObsOptions {
  bool trace = false;  // enable each shard world's Tracer
  std::size_t trace_capacity = obs::Tracer::kDefaultCapacity;  // ring slots/shard
  bool metrics = false;  // collect sim + result counters/distributions
  // Wall-clock runtime telemetry hub (progress heartbeats, run manifests);
  // nullptr = off. Unlike trace/metrics this lives in the *other* clock
  // domain — it observes the pipeline machinery, never the simulation — so
  // enabling it cannot change any deterministic output (see DESIGN.md
  // "Runtime telemetry and clock domains").
  obs::RuntimeTelemetry* runtime = nullptr;
  // Periodic progress-file writer, pumped from the collector stage (the
  // pipeline owns the only thread that sees steady forward progress, so the
  // tool cannot pump it itself). Rate-limited internally; nullptr = off.
  obs::HeartbeatWriter* heartbeat = nullptr;
};

// Where the observations land. Shard traces are appended in spec vantage
// order (label "vantage/<id>"), shard metrics merge by name — both therefore
// independent of thread count and shard completion order.
struct CampaignObsData {
  obs::MergedTrace trace;
  obs::Metrics metrics;
};

// Fold the merged campaign outcome into `m`: record/ping counts, failure
// stage and error-class breakdowns, and response-time distributions. Operates
// on the merged (canonical-order) result, so the numbers are the same for any
// thread count.
void collect_result_metrics(const CampaignResult& result, obs::Metrics& m);

// Successive splitmix64 outputs seeded from `spec_seed`: shard i of n gets
// seeds[i]. Stable across thread counts and shard execution order.
[[nodiscard]] std::vector<std::uint64_t> shard_seeds(std::uint64_t spec_seed, std::size_t n);

// One unit of simulation work: vantage `vantage` (at position `index` in
// spec.vantage_ids) measured as its own single-vantage campaign under `seed`.
struct ShardPlan {
  std::size_t index = 0;  // global shard index == position in spec.vantage_ids
  std::string vantage;
  std::uint64_t seed = 0;
};

// The full, canonically ordered plan list for `spec`: one plan per vantage in
// spec order, seeds from shard_seeds(spec.seed, n). Does not validate the
// spec — an empty vantage list expands to an empty plan list.
[[nodiscard]] std::vector<ShardPlan> expand_spec(const MeasurementSpec& spec);

// A `--shard k/N` slice: this process is shard k of n (0-based k < n).
struct ShardSlice {
  std::size_t k = 0;
  std::size_t n = 1;

  [[nodiscard]] bool valid() const noexcept { return n >= 1 && k < n; }

  // Parse "k/N" (e.g. "2/4"). Errors on malformed input or k >= N.
  [[nodiscard]] static Result<ShardSlice> parse(const std::string& text);
};

// Contiguous balanced partition of `total` plans: slice k of n covers
// [begin, end) with base = total/n plans plus one extra for the first
// total%n slices. Slices beyond the plan count are empty, so n > total is
// legal (those processes simply contribute empty shard files).
struct SliceBounds {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t count() const noexcept { return end - begin; }
};
[[nodiscard]] SliceBounds slice_bounds(std::size_t total, const ShardSlice& slice);

// The sub-list of plans this slice owns (global indices preserved).
[[nodiscard]] std::vector<ShardPlan> slice_plans(const std::vector<ShardPlan>& plans,
                                                 const ShardSlice& slice);

// FNV-1a fingerprint of the spec's canonical JSON — written into shard files
// and checked by the merge so shards from different specs cannot be combined.
[[nodiscard]] std::uint64_t spec_fingerprint(const MeasurementSpec& spec);

// One completed plan: the single-vantage result plus (optionally) that
// world's drained trace and collected sim metrics. This is what flows
// through the pipeline's outcome rings and what shard files persist.
struct ShardOutcome {
  std::size_t index = 0;
  std::string vantage;
  std::uint64_t seed = 0;
  CampaignResult result;
  obs::TraceData trace;   // populated only when obs.trace
  obs::Metrics metrics;   // populated only when obs.metrics
};

// Simulate one plan: a fresh SimWorld seeded with plan.seed runs the
// single-vantage spec. Pure function of (spec, plan, obs) — never touches
// shared state, so any worker on any process may run it.
[[nodiscard]] ShardOutcome run_shard(const MeasurementSpec& spec, const ShardPlan& plan,
                                     const CampaignObsOptions& obs);

// Accumulates outcomes (any arrival order, each global index exactly once)
// and assembles the canonical merged result. add() does the per-shard encode
// work (round bucketing) immediately, which is how the in-process pipeline
// overlaps encoding with simulation still in flight.
class ShardCollector {
 public:
  ShardCollector(MeasurementSpec spec, std::size_t shard_count,
                 CampaignObsOptions obs_options);

  // Errors on an out-of-range or duplicate index (merge-tool input
  // validation); the in-process pipeline cannot trigger either.
  [[nodiscard]] Result<void> add(ShardOutcome outcome);

  [[nodiscard]] std::size_t collected() const noexcept { return collected_; }
  [[nodiscard]] std::size_t expected() const noexcept { return seen_.size(); }
  [[nodiscard]] bool complete() const noexcept { return collected_ == seen_.size(); }

  // Canonical assembly: records/pings in (round, vantage-in-spec-order)
  // order, availability folded in that order, traces appended in spec
  // vantage order, metrics merged in shard-index order, result metrics
  // folded last. Call once, after every expected shard was added.
  [[nodiscard]] CampaignResult finish(CampaignObsData* obs_out);

 private:
  MeasurementSpec spec_;
  CampaignObsOptions obs_;
  std::vector<std::vector<std::vector<ResultRecord>>> records_by_shard_;
  std::vector<std::vector<std::vector<PingRecord>>> pings_by_shard_;
  std::vector<obs::TraceData> traces_;
  std::vector<obs::Metrics> metrics_;
  std::vector<bool> seen_;
  std::size_t total_records_ = 0;
  std::size_t total_pings_ = 0;
  std::size_t collected_ = 0;
};

}  // namespace ednsm::core
