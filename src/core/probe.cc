#include "core/probe.h"

#include "client/session.h"
#include "obs/trace.h"

namespace ednsm::core {

namespace {

ResultRecord base_record(const std::string& vantage, const std::string& resolver,
                         const std::string& domain, client::Protocol protocol, int round,
                         double issued_at_ms) {
  ResultRecord r;
  r.vantage = vantage;
  r.resolver = resolver;
  r.domain = domain;
  r.protocol = protocol;
  r.round = round;
  r.issued_at_ms = issued_at_ms;
  return r;
}

ResultRecord from_outcome(ResultRecord r, const client::QueryOutcome& outcome) {
  r.ok = outcome.ok;
  r.response_ms = netsim::to_ms(outcome.timing.total);
  r.connect_ms = netsim::to_ms(outcome.timing.connect);
  r.tcp_handshake_ms = netsim::to_ms(outcome.timing.tcp_handshake);
  r.tls_handshake_ms = netsim::to_ms(outcome.timing.tls_handshake);
  r.quic_handshake_ms = netsim::to_ms(outcome.timing.quic_handshake);
  r.pool_wait_ms = netsim::to_ms(outcome.timing.wait_in_pool);
  r.exchange_ms = netsim::to_ms(outcome.timing.exchange);
  r.connection_reused = outcome.timing.connection_reused;
  r.http_status = outcome.http_status;
  r.answer_count = static_cast<int>(outcome.answers.size());
  if (outcome.ok) {
    r.rcode = std::string(dns::to_string(outcome.rcode));
  } else if (outcome.error.has_value()) {
    r.error_class = std::string(client::to_string(outcome.error->error_class));
    r.error_detail = outcome.error->detail;
    r.failure_stage = std::string(derive_failure_stage(r.error_class));
  }
  return r;
}

// Sequential driver for one resolver's domain list. Owns the protocol
// session so connection state lives exactly as long as the probe; which
// concrete client backs it is the SessionFactory's business.
struct ProbeChain : std::enable_shared_from_this<ProbeChain> {
  SimWorld& world;
  std::string vantage_id;
  std::string hostname;
  std::vector<std::string> domains;
  client::Protocol protocol;
  int round;
  DnsProbe::Done done;

  std::unique_ptr<client::ResolverSession> session;
  std::vector<ResultRecord> records;

  ProbeChain(SimWorld& w) : world(w), protocol(client::Protocol::DoH), round(0) {}

  void next(std::size_t index) {
    if (index >= domains.size()) {
      done(std::move(records));
      return;
    }
    const std::string& domain = domains[index];
    auto name_r = dns::Name::parse(domain);
    ResultRecord rec = base_record(vantage_id, hostname, domain, protocol, round,
                                   netsim::to_ms(world.queue().now()));
    if (!name_r) {
      rec.ok = false;
      rec.error_class = "malformed";
      rec.error_detail = name_r.error();
      records.push_back(std::move(rec));
      next(index + 1);
      return;
    }
    auto self = shared_from_this();
    session->query(name_r.value(), dns::RecordType::A,
                   [self, rec = std::move(rec), index](client::QueryOutcome outcome) mutable {
                     netsim::EventQueue& q = self->world.queue();
                     OBS_COMPLETE(q, "core", "query", q.now() - outcome.timing.total,
                                  outcome.timing.total);
                     self->records.push_back(from_outcome(std::move(rec), outcome));
                     self->next(index + 1);
                   });
  }
};

}  // namespace

void DnsProbe::run(SimWorld& world, const std::string& vantage_id,
                   const std::string& resolver_hostname,
                   const std::vector<std::string>& domains, client::Protocol protocol,
                   const client::QueryOptions& options, int round, Done done) {
  auto chain = std::make_shared<ProbeChain>(world);
  chain->vantage_id = vantage_id;
  chain->hostname = resolver_hostname;
  chain->domains = domains;
  chain->protocol = protocol;
  chain->round = round;
  chain->done = std::move(done);

  SimWorld::Vantage& vantage = world.vantage(vantage_id);
  const auto server = world.fleet().address_for(resolver_hostname, vantage.info.location);
  if (!server.has_value()) {
    // Unknown hostname: every domain fails immediately with a resolution
    // error, analogous to a bootstrap DNS failure for the resolver itself.
    for (const std::string& domain : domains) {
      ResultRecord rec = base_record(vantage_id, resolver_hostname, domain, protocol, round,
                                     netsim::to_ms(world.queue().now()));
      rec.error_class = "bootstrap-failure";
      rec.error_detail = "resolver hostname not in registry";
      rec.failure_stage = std::string(derive_failure_stage(rec.error_class));
      OBS_EVENT(world.queue(), "core", "bootstrap-failure");
      chain->records.push_back(std::move(rec));
    }
    chain->done(std::move(chain->records));
    return;
  }

  client::SessionTarget target;
  target.server = *server;
  target.hostname = resolver_hostname;
  if (protocol == client::Protocol::ODoH) {
    // ODoH reaches the target through the world's shared relay; the target
    // address above is only used by ping probes (the paper's Figure 1 gap).
    resolver::OdohRelay& relay = world.odoh_relay();
    target.relay = relay.address();
    target.relay_sni = relay.hostname();
  }
  const client::SessionFactory factory(world.net(), vantage.addr, *vantage.pool);
  chain->session = factory.create(protocol, std::move(target), options);
  chain->next(0);
}

void PingProbe::run(SimWorld& world, const std::string& vantage_id,
                    const std::string& resolver_hostname, netsim::SimDuration timeout,
                    int round, Done done) {
  PingRecord rec;
  rec.vantage = vantage_id;
  rec.resolver = resolver_hostname;
  rec.round = round;

  SimWorld::Vantage& vantage = world.vantage(vantage_id);
  const auto server = world.fleet().address_for(resolver_hostname, vantage.info.location);
  if (!server.has_value()) {
    done(std::move(rec));  // unknown host: no reply
    return;
  }
  world.net().ping(vantage.addr, *server, timeout,
                   [rec = std::move(rec), done = std::move(done)](
                       std::optional<netsim::SimDuration> rtt) mutable {
                     if (rtt.has_value()) {
                       rec.ok = true;
                       rec.rtt_ms = netsim::to_ms(*rtt);
                     }
                     done(std::move(rec));
                   });
}

}  // namespace ednsm::core
