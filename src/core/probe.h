// Probes: the two measurement primitives from §3.2's procedure —
//   (1) "for each resolver, perform a dig query, measuring the query
//        response time for three domain names" (DnsProbe), and
//   (2) "for each resolver, issue a ICMP ping probe and collect the
//        round-trip latency" (PingProbe).
//
// A DnsProbe runs its domain queries *sequentially* (like the tool's dig
// loop), producing one ResultRecord per domain.
#pragma once

#include <functional>
#include <memory>

#include "core/spec.h"
#include "core/world.h"

namespace ednsm::core {

class DnsProbe {
 public:
  using Done = std::function<void(std::vector<ResultRecord>)>;

  // Measures `resolver_hostname` from `vantage_id` for every domain in
  // `domains`, using `protocol` and `options`. The callback receives one
  // record per domain (in order) once all queries resolve. `round` is
  // stamped into the records.
  static void run(SimWorld& world, const std::string& vantage_id,
                  const std::string& resolver_hostname, const std::vector<std::string>& domains,
                  client::Protocol protocol, const client::QueryOptions& options, int round,
                  Done done);
};

class PingProbe {
 public:
  using Done = std::function<void(PingRecord)>;

  static void run(SimWorld& world, const std::string& vantage_id,
                  const std::string& resolver_hostname, netsim::SimDuration timeout, int round,
                  Done done);
};

}  // namespace ednsm::core
