#include "core/recommend.h"

#include <algorithm>
#include <cmath>

#include "resolver/registry.h"
#include "stats/quantile.h"

namespace ednsm::core {

std::string_view to_string(RejectionReason r) noexcept {
  switch (r) {
    case RejectionReason::TooFewSamples: return "too-few-samples";
    case RejectionReason::MedianTooHigh: return "median-too-high";
    case RejectionReason::TailTooHigh: return "tail-too-high";
    case RejectionReason::TooUnreliable: return "too-unreliable";
    case RejectionReason::MainstreamExcluded: return "mainstream-excluded";
  }
  return "?";
}

std::optional<Recommendation> RecommendationReport::best_alternative() const {
  for (const Recommendation& r : ranked) {
    if (!r.mainstream) return r;
  }
  return std::nullopt;
}

RecommendationReport recommend_resolvers(const CampaignResult& result,
                                         const std::string& vantage_id,
                                         const RecommendCriteria& criteria) {
  RecommendationReport report;

  for (const std::string& host : result.spec.resolvers) {
    const resolver::ResolverSpec* spec = resolver::find_resolver(host);
    const bool mainstream = spec != nullptr && spec->mainstream;

    if (criteria.exclude_mainstream && mainstream) {
      report.rejected.push_back({host, RejectionReason::MainstreamExcluded});
      continue;
    }

    const std::vector<double> samples = result.response_times(vantage_id, host);
    const AvailabilityCounts counts = result.availability.per_pair(vantage_id, host);
    if (samples.size() < criteria.min_samples) {
      report.rejected.push_back({host, RejectionReason::TooFewSamples});
      continue;
    }

    Recommendation rec;
    rec.hostname = host;
    rec.mainstream = mainstream;
    rec.median_ms = stats::median(samples);
    rec.p90_ms = stats::quantile(samples, 0.9);
    rec.error_rate = counts.error_rate();
    rec.samples = samples.size();

    if (rec.median_ms > criteria.max_median_ms) {
      report.rejected.push_back({host, RejectionReason::MedianTooHigh});
      continue;
    }
    if (rec.p90_ms > criteria.max_p90_ms) {
      report.rejected.push_back({host, RejectionReason::TailTooHigh});
      continue;
    }
    if (rec.error_rate > criteria.max_error_rate) {
      report.rejected.push_back({host, RejectionReason::TooUnreliable});
      continue;
    }

    rec.score = criteria.weight_median * rec.median_ms + criteria.weight_p90 * rec.p90_ms +
                criteria.weight_error_rate * rec.error_rate * 100.0;
    report.ranked.push_back(std::move(rec));
  }

  std::sort(report.ranked.begin(), report.ranked.end(),
            [](const Recommendation& a, const Recommendation& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.hostname < b.hostname;
            });
  return report;
}

}  // namespace ednsm::core
