// Resolver recommendation: turn measurement results into a ranked shortlist.
//
// The paper's conclusion is an unsolved UX problem: "users need easy ways of
// finding and selecting these alternatives, whose availability and
// performance may be more variable over time than mainstream resolvers."
// This module is that selection logic as a library API — score every measured
// resolver from one vantage on median latency, tail, and reliability, filter
// by hard criteria, and return a ranked list with the reasons attached.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/campaign.h"

namespace ednsm::core {

struct RecommendCriteria {
  double max_median_ms = 100.0;     // daily-driver latency bar
  double max_p90_ms = 250.0;        // tail bar
  double max_error_rate = 0.05;     // reliability bar
  std::size_t min_samples = 3;      // below this we refuse to judge
  bool exclude_mainstream = false;  // "alternatives only" mode
  // Scoring weights (normalized internally): lower score = better.
  double weight_median = 1.0;
  double weight_p90 = 0.5;
  double weight_error_rate = 200.0;  // 1% error ~ 2 ms of median
};

struct Recommendation {
  std::string hostname;
  bool mainstream = false;
  double median_ms = 0;
  double p90_ms = 0;
  double error_rate = 0;
  std::size_t samples = 0;
  double score = 0;  // lower is better
};

enum class RejectionReason {
  TooFewSamples,
  MedianTooHigh,
  TailTooHigh,
  TooUnreliable,
  MainstreamExcluded,
};

[[nodiscard]] std::string_view to_string(RejectionReason r) noexcept;

struct Rejection {
  std::string hostname;
  RejectionReason reason = RejectionReason::TooFewSamples;
};

struct RecommendationReport {
  std::vector<Recommendation> ranked;  // best first
  std::vector<Rejection> rejected;

  // The best non-mainstream option, if any survived (the paper's question:
  // do viable alternatives exist from this vantage?).
  [[nodiscard]] std::optional<Recommendation> best_alternative() const;
};

// Evaluate every resolver in `result.spec.resolvers` as seen from
// `vantage_id`. Deterministic; pure function of the result.
[[nodiscard]] RecommendationReport recommend_resolvers(const CampaignResult& result,
                                                       const std::string& vantage_id,
                                                       const RecommendCriteria& criteria = {});

}  // namespace ednsm::core
