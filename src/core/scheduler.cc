#include "core/scheduler.h"

namespace ednsm::core {

netsim::SimTime ProbeScheduler::round_start(int round, std::size_t vantage_index) const {
  return spec_.round_interval * round + kVantageStagger * static_cast<int>(vantage_index);
}

std::vector<netsim::SimTime> ProbeScheduler::timeline(std::size_t vantage_index) const {
  std::vector<netsim::SimTime> out;
  out.reserve(static_cast<std::size_t>(spec_.rounds));
  for (int r = 0; r < spec_.rounds; ++r) out.push_back(round_start(r, vantage_index));
  return out;
}

netsim::SimDuration ProbeScheduler::span() const {
  return spec_.round_interval * spec_.rounds +
         kVantageStagger * static_cast<int>(spec_.vantage_ids.size());
}

}  // namespace ednsm::core
