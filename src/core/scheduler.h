// ProbeScheduler: turns a MeasurementSpec into the timeline of measurement
// rounds. The paper ran tests "every few hours" on the home devices and
// "three times a day" on EC2; rounds here are spaced by spec.round_interval
// with a small per-vantage stagger so devices do not probe in lockstep.
#pragma once

#include <vector>

#include "core/spec.h"

namespace ednsm::core {

class ProbeScheduler {
 public:
  explicit ProbeScheduler(const MeasurementSpec& spec) : spec_(spec) {}

  // Start time of `round` (0-based) for the vantage at `vantage_index`.
  [[nodiscard]] netsim::SimTime round_start(int round, std::size_t vantage_index) const;

  // All round start times for one vantage.
  [[nodiscard]] std::vector<netsim::SimTime> timeline(std::size_t vantage_index) const;

  // Total campaign duration (last round start + one interval).
  [[nodiscard]] netsim::SimDuration span() const;

 private:
  const MeasurementSpec& spec_;
  // Home devices and EC2 instances should not fire at the same instant;
  // 97 s of stagger per vantage keeps rounds disjoint without overlapping
  // the next round at realistic intervals.
  static constexpr netsim::SimDuration kVantageStagger = std::chrono::seconds(97);
};

}  // namespace ednsm::core
