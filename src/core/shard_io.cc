#include "core/shard_io.h"

#include <cstdio>

#include "util/fs.h"

namespace ednsm::core {

std::string u64_to_hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return std::string(buf);
}

Result<std::uint64_t> u64_from_hex(const std::string& s) {
  if (s.size() != 16 || s.find_first_not_of("0123456789abcdef") != std::string::npos) {
    return Err{"expected 16 lowercase hex digits: " + s};
  }
  std::uint64_t v = 0;
  for (const char c : s) {
    v = (v << 4) | static_cast<std::uint64_t>(c <= '9' ? c - '0' : c - 'a' + 10);
  }
  return v;
}

Json ShardFile::to_json() const {
  JsonObject o;
  o["magic"] = std::string(kMagic);
  o["version"] = kVersion;
  o["spec"] = spec.to_json();
  o["spec_fingerprint"] = u64_to_hex(spec_fingerprint(spec));
  JsonObject slice_o;
  slice_o["k"] = static_cast<std::uint64_t>(slice.k);
  slice_o["n"] = static_cast<std::uint64_t>(slice.n);
  o["slice"] = Json(std::move(slice_o));
  o["total_shards"] = static_cast<std::uint64_t>(total_shards);
  o["has_trace"] = has_trace;
  o["has_metrics"] = has_metrics;
  JsonArray outs;
  outs.reserve(outcomes.size());
  for (const ShardOutcome& out : outcomes) {
    JsonObject oo;
    oo["index"] = static_cast<std::uint64_t>(out.index);
    oo["vantage"] = out.vantage;
    oo["seed"] = u64_to_hex(out.seed);
    JsonArray records;
    records.reserve(out.result.records.size());
    for (const ResultRecord& r : out.result.records) records.push_back(r.to_json());
    oo["records"] = Json(std::move(records));
    JsonArray pings;
    pings.reserve(out.result.pings.size());
    for (const PingRecord& p : out.result.pings) pings.push_back(p.to_json());
    oo["pings"] = Json(std::move(pings));
    if (has_trace) oo["trace"] = out.trace.to_json();
    if (has_metrics) oo["metrics"] = out.metrics.to_json();
    outs.emplace_back(std::move(oo));
  }
  o["outcomes"] = Json(std::move(outs));
  return Json(std::move(o));
}

Result<ShardFile> ShardFile::from_json(const Json& j) {
  if (!j.is_object()) return Err{std::string("shard file: not a JSON object")};
  if (!j.at("magic").is_string() || j.at("magic").as_string() != kMagic) {
    return Err{std::string("shard file: bad magic (expected \"ednsm-shard\")")};
  }
  if (!j.at("version").is_number() ||
      static_cast<int>(j.at("version").as_number()) != kVersion) {
    return Err{std::string("shard file: unsupported version")};
  }
  ShardFile f;
  auto spec = MeasurementSpec::from_json(j.at("spec"));
  if (!spec) return Err{"shard file: bad spec: " + spec.error()};
  f.spec = std::move(spec).value();

  if (!j.at("spec_fingerprint").is_string()) {
    return Err{std::string("shard file: missing spec_fingerprint")};
  }
  auto fp = u64_from_hex(j.at("spec_fingerprint").as_string());
  if (!fp) return Err{"shard file: bad spec_fingerprint: " + fp.error()};
  if (fp.value() != spec_fingerprint(f.spec)) {
    return Err{std::string("shard file: spec_fingerprint does not match embedded spec")};
  }

  const Json& slice_j = j.at("slice");
  if (!slice_j.is_object() || !slice_j.at("k").is_number() || !slice_j.at("n").is_number()) {
    return Err{std::string("shard file: slice must be {k, n}")};
  }
  f.slice.k = static_cast<std::size_t>(slice_j.at("k").as_number());
  f.slice.n = static_cast<std::size_t>(slice_j.at("n").as_number());
  if (!j.at("total_shards").is_number()) {
    return Err{std::string("shard file: missing total_shards")};
  }
  f.total_shards = static_cast<std::size_t>(j.at("total_shards").as_number());
  if (!j.at("has_trace").is_bool() || !j.at("has_metrics").is_bool()) {
    return Err{std::string("shard file: missing has_trace/has_metrics")};
  }
  f.has_trace = j.at("has_trace").as_bool();
  f.has_metrics = j.at("has_metrics").as_bool();

  if (!j.at("outcomes").is_array()) return Err{std::string("shard file: missing outcomes")};
  for (const Json& oj : j.at("outcomes").as_array()) {
    if (!oj.is_object() || !oj.at("index").is_number() || !oj.at("vantage").is_string() ||
        !oj.at("seed").is_string() || !oj.at("records").is_array() ||
        !oj.at("pings").is_array()) {
      return Err{std::string("shard file: malformed outcome entry")};
    }
    ShardOutcome out;
    out.index = static_cast<std::size_t>(oj.at("index").as_number());
    out.vantage = oj.at("vantage").as_string();
    auto seed = u64_from_hex(oj.at("seed").as_string());
    if (!seed) return Err{"shard file: bad outcome seed: " + seed.error()};
    out.seed = seed.value();
    for (const Json& rj : oj.at("records").as_array()) {
      auto r = ResultRecord::from_json(rj);
      if (!r) return Err{"shard file: bad record: " + r.error()};
      out.result.records.push_back(std::move(r).value());
    }
    for (const Json& pj : oj.at("pings").as_array()) {
      auto p = PingRecord::from_json(pj);
      if (!p) return Err{"shard file: bad ping: " + p.error()};
      out.result.pings.push_back(std::move(p).value());
    }
    if (f.has_trace) {
      auto t = obs::TraceData::from_json(oj.at("trace"));
      if (!t) return Err{"shard file: bad trace: " + t.error()};
      out.trace = std::move(t).value();
    }
    if (f.has_metrics) {
      auto m = obs::Metrics::from_json(oj.at("metrics"));
      if (!m) return Err{"shard file: bad metrics: " + m.error()};
      out.metrics = std::move(m).value();
    }
    f.outcomes.push_back(std::move(out));
  }

  if (auto v = f.validate(); !v) return Err{v.error()};
  return f;
}

Result<void> ShardFile::validate() const {
  if (!slice.valid()) return Err{std::string("shard file: invalid slice (need 0 <= k < n)")};
  const std::vector<ShardPlan> plans = expand_spec(spec);
  if (plans.size() != total_shards) {
    return Err{"shard file: total_shards " + std::to_string(total_shards) +
               " does not match the spec's " + std::to_string(plans.size()) + " shards"};
  }
  const SliceBounds bounds = slice_bounds(plans.size(), slice);
  if (outcomes.size() != bounds.count()) {
    return Err{"shard file: slice " + std::to_string(slice.k) + "/" + std::to_string(slice.n) +
               " expects " + std::to_string(bounds.count()) + " outcomes, found " +
               std::to_string(outcomes.size())};
  }
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const ShardOutcome& out = outcomes[i];
    const std::size_t expected_index = bounds.begin + i;
    if (out.index != expected_index) {
      return Err{"shard file: outcome " + std::to_string(i) + " has index " +
                 std::to_string(out.index) + ", expected " + std::to_string(expected_index)};
    }
    const ShardPlan& plan = plans[out.index];
    if (out.vantage != plan.vantage) {
      return Err{"shard file: outcome " + std::to_string(out.index) + " vantage \"" +
                 out.vantage + "\" does not match spec vantage \"" + plan.vantage + "\""};
    }
    if (out.seed != plan.seed) {
      return Err{"shard file: outcome " + std::to_string(out.index) +
                 " seed does not match the spec-derived shard seed"};
    }
  }
  return {};
}

Result<void> ShardFile::write(const std::string& path) const {
  return util::write_file_atomic(path, to_json().dump(2) + "\n");
}

Result<ShardFile> ShardFile::load(const std::string& path) {
  auto text = util::read_file(path);
  if (!text) return Err{"shard file: " + text.error()};
  auto j = Json::parse(text.value());
  if (!j) return Err{"shard file " + path + ": " + j.error()};
  auto f = from_json(j.value());
  if (!f) return Err{path + ": " + f.error()};
  return f;
}

}  // namespace ednsm::core
