// Shard-file I/O: the on-disk handoff between `ednsm_measure --shard k/N`
// worker processes and the `ednsm_merge` tool.
//
// A shard file is a self-describing JSON document:
//
//   {
//     "magic": "ednsm-shard",
//     "version": 1,
//     "spec": { ...full campaign spec (not the slice)... },
//     "spec_fingerprint": "<16-hex-digit FNV-1a of the spec's canonical JSON>",
//     "slice": {"k": K, "n": N},
//     "total_shards": M,                  // expand_spec(spec).size()
//     "has_trace": bool, "has_metrics": bool,
//     "outcomes": [
//       {"index": I, "vantage": "...", "seed": "<16 hex>",
//        "records": [...], "pings": [...],
//        "trace": {...}?, "metrics": {...}?}, ...
//     ]
//   }
//
// Seeds and fingerprints are hex strings because the JSON layer stores
// numbers as doubles, which cannot hold a full 64-bit value exactly.
//
// load() rejects anything that could silently corrupt a merge: truncated or
// non-JSON input, a magic/version mismatch, a fingerprint that does not match
// the embedded spec, a slice inconsistent with the spec's plan list, and
// outcomes whose (index, vantage, seed) differ from what expand_spec derives
// — so a merge can only ever combine shards of the same campaign.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.h"

namespace ednsm::core {

struct ShardFile {
  static constexpr std::string_view kMagic = "ednsm-shard";
  static constexpr int kVersion = 1;

  MeasurementSpec spec;          // the full campaign spec
  ShardSlice slice;              // which k/N slice this file holds
  std::size_t total_shards = 0;  // plan count for the full spec
  bool has_trace = false;
  bool has_metrics = false;
  std::vector<ShardOutcome> outcomes;  // this slice's plans, in index order

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static Result<ShardFile> from_json(const Json& j);

  // Structural validation against the spec's derived plan list (see header
  // comment). from_json calls this; it is public so tests can probe it.
  [[nodiscard]] Result<void> validate() const;

  // Serialize and write crash-safely (util::write_file_atomic).
  [[nodiscard]] Result<void> write(const std::string& path) const;

  // Read + parse + validate.
  [[nodiscard]] static Result<ShardFile> load(const std::string& path);
};

// 64-bit value <-> fixed-width lowercase hex (16 digits), used for seeds and
// spec fingerprints inside shard files.
[[nodiscard]] std::string u64_to_hex(std::uint64_t v);
[[nodiscard]] Result<std::uint64_t> u64_from_hex(const std::string& s);

}  // namespace ednsm::core
