#include "core/spec.h"

namespace ednsm::core {

namespace {

Json string_array(const std::vector<std::string>& v) {
  JsonArray arr;
  arr.reserve(v.size());
  for (const std::string& s : v) arr.emplace_back(s);
  return Json(std::move(arr));
}

Result<std::vector<std::string>> parse_string_array(const Json& j, const char* what) {
  if (!j.is_array()) return Err{std::string("spec: ") + what + " must be an array"};
  std::vector<std::string> out;
  for (const Json& e : j.as_array()) {
    if (!e.is_string()) return Err{std::string("spec: ") + what + " entries must be strings"};
    out.push_back(e.as_string());
  }
  return out;
}

std::string_view protocol_name(client::Protocol p) { return client::to_string(p); }

Result<client::Protocol> parse_protocol(const std::string& s) {
  if (auto p = client::protocol_from_string(s); p.has_value()) return *p;
  return Err{std::string("spec: unknown protocol '") + s + "'"};
}

}  // namespace

Json FaultWindow::to_json() const {
  JsonObject o;
  o["resolver"] = resolver;
  o["from_round"] = from_round;
  o["to_round"] = to_round;
  return Json(std::move(o));
}

Result<FaultWindow> FaultWindow::from_json(const Json& j) {
  if (!j.is_object()) return Err{std::string("fault window: not an object")};
  FaultWindow w;
  if (!j.at("resolver").is_string() || !j.at("from_round").is_number() ||
      !j.at("to_round").is_number()) {
    return Err{std::string("fault window: missing required fields")};
  }
  w.resolver = j.at("resolver").as_string();
  w.from_round = static_cast<int>(j.at("from_round").as_number());
  w.to_round = static_cast<int>(j.at("to_round").as_number());
  return w;
}

Result<void> MeasurementSpec::validate() const {
  if (resolvers.empty()) return Err{std::string("spec: no resolvers")};
  if (domains.empty()) return Err{std::string("spec: no domains")};
  if (vantage_ids.empty()) return Err{std::string("spec: no vantage points")};
  if (rounds <= 0) return Err{std::string("spec: rounds must be positive")};
  if (round_interval <= netsim::kZeroDuration) {
    return Err{std::string("spec: round interval must be positive")};
  }
  if (ping_timeout <= netsim::kZeroDuration) {
    return Err{std::string("spec: ping timeout must be positive")};
  }
  if (query_options.timeout <= netsim::kZeroDuration) {
    return Err{std::string("spec: query timeout must be positive")};
  }
  for (const FaultWindow& w : fault_windows) {
    if (w.resolver.empty()) return Err{std::string("spec: fault window needs a resolver")};
    if (w.from_round < 0 || w.to_round <= w.from_round) {
      return Err{std::string("spec: fault window rounds must satisfy 0 <= from < to")};
    }
  }
  return {};
}

Json MeasurementSpec::to_json() const {
  JsonObject o;
  o["resolvers"] = string_array(resolvers);
  o["domains"] = string_array(domains);
  o["vantage_ids"] = string_array(vantage_ids);
  o["protocol"] = std::string(protocol_name(protocol));
  o["rounds"] = rounds;
  o["round_interval_s"] =
      static_cast<double>(std::chrono::duration_cast<std::chrono::seconds>(round_interval).count());
  o["ping_timeout_ms"] = netsim::to_ms(ping_timeout);
  o["timeout_ms"] = netsim::to_ms(query_options.timeout);
  o["reuse"] = std::string(transport::to_string(query_options.reuse));
  o["use_post"] = query_options.use_post;
  o["use_http2"] = query_options.use_http2;
  o["early_data"] = query_options.offer_early_data;
  o["pad_block"] = static_cast<std::uint64_t>(query_options.pad_block);
  o["seed"] = seed;
  if (!fault_windows.empty()) {
    JsonArray arr;
    arr.reserve(fault_windows.size());
    for (const FaultWindow& w : fault_windows) arr.push_back(w.to_json());
    o["fault_windows"] = Json(std::move(arr));
  }
  return Json(std::move(o));
}

Result<MeasurementSpec> MeasurementSpec::from_json(const Json& j) {
  MeasurementSpec spec;
  auto resolvers = parse_string_array(j.at("resolvers"), "resolvers");
  if (!resolvers) return Err{resolvers.error()};
  spec.resolvers = std::move(resolvers).value();
  auto domains = parse_string_array(j.at("domains"), "domains");
  if (!domains) return Err{domains.error()};
  spec.domains = std::move(domains).value();
  auto vantages = parse_string_array(j.at("vantage_ids"), "vantage_ids");
  if (!vantages) return Err{vantages.error()};
  spec.vantage_ids = std::move(vantages).value();

  if (!j.at("protocol").is_string()) return Err{std::string("spec: missing protocol")};
  auto proto = parse_protocol(j.at("protocol").as_string());
  if (!proto) return Err{proto.error()};
  spec.protocol = proto.value();

  if (j.at("rounds").is_number()) spec.rounds = static_cast<int>(j.at("rounds").as_number());
  if (j.at("round_interval_s").is_number()) {
    spec.round_interval =
        std::chrono::seconds(static_cast<std::int64_t>(j.at("round_interval_s").as_number()));
  }
  if (j.at("ping_timeout_ms").is_number()) {
    spec.ping_timeout = netsim::from_ms(j.at("ping_timeout_ms").as_number());
  }
  if (j.at("timeout_ms").is_number()) {
    spec.query_options.timeout = netsim::from_ms(j.at("timeout_ms").as_number());
  }
  if (j.at("use_post").is_bool()) spec.query_options.use_post = j.at("use_post").as_bool();
  if (j.at("use_http2").is_bool()) spec.query_options.use_http2 = j.at("use_http2").as_bool();
  if (j.at("early_data").is_bool()) {
    spec.query_options.offer_early_data = j.at("early_data").as_bool();
  }
  if (j.at("pad_block").is_number()) {
    spec.query_options.pad_block = static_cast<std::size_t>(j.at("pad_block").as_number());
  }
  if (j.at("reuse").is_string()) {
    const std::string& r = j.at("reuse").as_string();
    if (auto policy = transport::reuse_policy_from_string(r); policy.has_value()) {
      spec.query_options.reuse = *policy;
    } else {
      return Err{std::string("spec: unknown reuse policy '") + r + "'"};
    }
  }
  if (j.at("seed").is_number()) spec.seed = static_cast<std::uint64_t>(j.at("seed").as_number());
  if (j.at("fault_windows").is_array()) {
    for (const Json& e : j.at("fault_windows").as_array()) {
      auto w = FaultWindow::from_json(e);
      if (!w) return Err{w.error()};
      spec.fault_windows.push_back(std::move(w).value());
    }
  }

  if (auto v = spec.validate(); !v) return Err{v.error()};
  return spec;
}

std::string_view derive_failure_stage(std::string_view error_class) noexcept {
  // "bootstrap-failure" never reached the wire; the closest phase is connect.
  if (error_class == "connect-refused" || error_class == "connect-timeout" ||
      error_class == "bootstrap-failure") {
    return "connect";
  }
  if (error_class == "tls-failure") return "handshake";
  if (error_class == "http-error" || error_class == "malformed") return "query";
  if (error_class == "timeout") return "timeout";
  return {};
}

Json ResultRecord::to_json() const {
  JsonObject o;
  o["vantage"] = vantage;
  o["resolver"] = resolver;
  o["domain"] = domain;
  o["protocol"] = std::string(protocol_name(protocol));
  o["round"] = round;
  o["issued_at_ms"] = issued_at_ms;
  o["ok"] = ok;
  o["response_ms"] = response_ms;
  o["connect_ms"] = connect_ms;
  if (tcp_handshake_ms != 0) o["tcp_handshake_ms"] = tcp_handshake_ms;
  if (tls_handshake_ms != 0) o["tls_handshake_ms"] = tls_handshake_ms;
  if (quic_handshake_ms != 0) o["quic_handshake_ms"] = quic_handshake_ms;
  if (pool_wait_ms != 0) o["pool_wait_ms"] = pool_wait_ms;
  if (exchange_ms != 0) o["exchange_ms"] = exchange_ms;
  o["reused"] = connection_reused;
  if (ok) o["rcode"] = rcode;
  if (!ok) {
    o["error_class"] = error_class;
    o["error_detail"] = error_detail;
    if (!failure_stage.empty()) o["failure_stage"] = failure_stage;
  }
  if (http_status != 0) o["http_status"] = http_status;
  o["answers"] = answer_count;
  return Json(std::move(o));
}

Result<ResultRecord> ResultRecord::from_json(const Json& j) {
  if (!j.is_object()) return Err{std::string("record: not an object")};
  ResultRecord r;
  if (!j.at("vantage").is_string() || !j.at("resolver").is_string() ||
      !j.at("domain").is_string() || !j.at("ok").is_bool()) {
    return Err{std::string("record: missing required fields")};
  }
  r.vantage = j.at("vantage").as_string();
  r.resolver = j.at("resolver").as_string();
  r.domain = j.at("domain").as_string();
  if (j.at("protocol").is_string()) {
    auto p = parse_protocol(j.at("protocol").as_string());
    if (!p) return Err{p.error()};
    r.protocol = p.value();
  }
  r.ok = j.at("ok").as_bool();
  if (j.at("round").is_number()) r.round = static_cast<int>(j.at("round").as_number());
  if (j.at("issued_at_ms").is_number()) r.issued_at_ms = j.at("issued_at_ms").as_number();
  if (j.at("response_ms").is_number()) r.response_ms = j.at("response_ms").as_number();
  if (j.at("connect_ms").is_number()) r.connect_ms = j.at("connect_ms").as_number();
  if (j.at("tcp_handshake_ms").is_number()) {
    r.tcp_handshake_ms = j.at("tcp_handshake_ms").as_number();
  }
  if (j.at("tls_handshake_ms").is_number()) {
    r.tls_handshake_ms = j.at("tls_handshake_ms").as_number();
  }
  if (j.at("quic_handshake_ms").is_number()) {
    r.quic_handshake_ms = j.at("quic_handshake_ms").as_number();
  }
  if (j.at("pool_wait_ms").is_number()) r.pool_wait_ms = j.at("pool_wait_ms").as_number();
  if (j.at("exchange_ms").is_number()) r.exchange_ms = j.at("exchange_ms").as_number();
  if (j.at("reused").is_bool()) r.connection_reused = j.at("reused").as_bool();
  if (j.at("rcode").is_string()) r.rcode = j.at("rcode").as_string();
  if (j.at("error_class").is_string()) r.error_class = j.at("error_class").as_string();
  if (j.at("error_detail").is_string()) r.error_detail = j.at("error_detail").as_string();
  if (j.at("failure_stage").is_string()) {
    r.failure_stage = j.at("failure_stage").as_string();
  } else if (!r.ok && !r.error_class.empty()) {
    // Files written before the field existed: reconstruct from error_class.
    r.failure_stage = std::string(derive_failure_stage(r.error_class));
  }
  if (j.at("http_status").is_number()) {
    r.http_status = static_cast<int>(j.at("http_status").as_number());
  }
  if (j.at("answers").is_number()) r.answer_count = static_cast<int>(j.at("answers").as_number());
  return r;
}

Json PingRecord::to_json() const {
  JsonObject o;
  o["vantage"] = vantage;
  o["resolver"] = resolver;
  o["round"] = round;
  o["ok"] = ok;
  if (ok) o["rtt_ms"] = rtt_ms;
  return Json(std::move(o));
}

Result<PingRecord> PingRecord::from_json(const Json& j) {
  if (!j.is_object()) return Err{std::string("ping: not an object")};
  PingRecord p;
  if (!j.at("vantage").is_string() || !j.at("resolver").is_string() || !j.at("ok").is_bool()) {
    return Err{std::string("ping: missing required fields")};
  }
  p.vantage = j.at("vantage").as_string();
  p.resolver = j.at("resolver").as_string();
  p.ok = j.at("ok").as_bool();
  if (j.at("round").is_number()) p.round = static_cast<int>(j.at("round").as_number());
  if (j.at("rtt_ms").is_number()) p.rtt_ms = j.at("rtt_ms").as_number();
  return p;
}

}  // namespace ednsm::core
