// MeasurementSpec — what to measure — and the result records the tool emits.
//
// This mirrors the paper's tool: "clients provide a list of DoH resolvers
// they wish to perform measurements with. After a set of measurements
// complete with a list of DoH resolvers and domain names, the tool writes
// the results to a JSON file."
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "client/query.h"
#include "util/json.h"
#include "netsim/time.h"

namespace ednsm::core {

// A scripted resolver outage: every site of `resolver` is taken offline for
// rounds [from_round, to_round). Deterministic fault-schedule hook for the
// longitudinal monitor — tests inject an outage here and assert the detector
// recovers it exactly.
struct FaultWindow {
  std::string resolver;
  int from_round = 0;
  int to_round = 0;

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static Result<FaultWindow> from_json(const Json& j);
};

struct MeasurementSpec {
  std::vector<std::string> resolvers;  // hostnames from the registry
  std::vector<std::string> domains = {"google.com", "amazon.com", "wikipedia.com"};
  std::vector<std::string> vantage_ids;  // geo::paper_vantage_points() ids
  client::Protocol protocol = client::Protocol::DoH;
  client::QueryOptions query_options;
  int rounds = 10;
  netsim::SimDuration round_interval = std::chrono::hours(8);  // "three times a day"
  netsim::SimDuration ping_timeout = std::chrono::seconds(3);
  std::uint64_t seed = 1;
  // Scripted outages applied by CampaignRunner; empty (the default) leaves
  // campaign behavior byte-identical to specs written before the field.
  std::vector<FaultWindow> fault_windows;

  // Validate invariants (non-empty lists, positive rounds); returns an
  // explanation on failure.
  [[nodiscard]] Result<void> validate() const;

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static Result<MeasurementSpec> from_json(const Json& j);
};

// One DNS query result.
struct ResultRecord {
  std::string vantage;
  std::string resolver;
  std::string domain;
  client::Protocol protocol = client::Protocol::DoH;
  int round = 0;
  double issued_at_ms = 0;     // simulation time
  bool ok = false;
  double response_ms = 0;      // end-to-end query response time
  double connect_ms = 0;       // connection-establishment share
  // Per-phase decomposition of the response time (QueryTiming; all zero on a
  // reused connection except exchange_ms). Emitted to JSON only when nonzero
  // so the output stays additive relative to older readers.
  double tcp_handshake_ms = 0;
  double tls_handshake_ms = 0;
  double quic_handshake_ms = 0;
  double pool_wait_ms = 0;
  double exchange_ms = 0;      // request -> response on the live connection
  bool connection_reused = false;
  std::string rcode;           // "NOERROR", ... (when ok)
  std::string error_class;     // "connect-timeout", ... (when !ok)
  std::string error_detail;
  // Which phase the failure landed in: "connect", "handshake", "query", or
  // "timeout" (when !ok). Additive JSON field: emitted only when non-empty,
  // and derived from error_class when reading files written before it existed.
  std::string failure_stage;
  int http_status = 0;
  int answer_count = 0;

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static Result<ResultRecord> from_json(const Json& j);
};

// Maps an error_class string to the query phase it failed in. Returns "" for
// unknown classes so callers can tell "no mapping" from a real stage.
[[nodiscard]] std::string_view derive_failure_stage(std::string_view error_class) noexcept;

// One ICMP probe result.
struct PingRecord {
  std::string vantage;
  std::string resolver;
  int round = 0;
  bool ok = false;
  double rtt_ms = 0;  // valid when ok

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static Result<PingRecord> from_json(const Json& j);
};

}  // namespace ednsm::core
