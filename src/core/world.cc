#include "core/world.h"

namespace ednsm::core {

SimWorld::SimWorld(std::uint64_t seed) : SimWorld(seed, resolver::paper_resolver_list()) {}

SimWorld::SimWorld(std::uint64_t seed, const std::vector<resolver::ResolverSpec>& specs) {
  queue_.set_tracer(&tracer_);
  net_ = std::make_unique<netsim::Network>(queue_, netsim::Rng(seed));
  fleet_ = std::make_unique<resolver::ResolverFleet>(*net_, specs);
}

void SimWorld::collect_metrics(obs::Metrics& m) const {
  const netsim::NetworkStats& ns = net_->stats();
  m.add("netsim.datagrams_sent", ns.datagrams_sent);
  m.add("netsim.datagrams_dropped", ns.datagrams_dropped);
  m.add("netsim.datagrams_delivered", ns.datagrams_delivered);
  m.add("netsim.datagrams_unroutable", ns.datagrams_unroutable);
  m.add("netsim.pings_sent", ns.pings_sent);
  m.add("netsim.pings_answered", ns.pings_answered);
  m.add("netsim.events_executed", queue_.executed_total());

  resolver::ServerQueryStats fleet_total;
  for (const resolver::ResolverSpec& spec : fleet_->specs()) {
    const resolver::ServerQueryStats s = fleet_->stats_of(spec.hostname);
    fleet_total.queries += s.queries;
    fleet_total.cache_hits += s.cache_hits;
    fleet_total.warm_hits += s.warm_hits;
    fleet_total.cache_misses += s.cache_misses;
    fleet_total.servfails += s.servfails;
    fleet_total.formerrs += s.formerrs;
    fleet_total.http_errors += s.http_errors;
    fleet_total.doh_requests += s.doh_requests;
    fleet_total.dot_requests += s.dot_requests;
    fleet_total.do53_requests += s.do53_requests;
    fleet_total.doq_requests += s.doq_requests;
  }
  m.add("resolver.queries", fleet_total.queries);
  m.add("resolver.cache_hits", fleet_total.cache_hits);
  m.add("resolver.warm_hits", fleet_total.warm_hits);
  m.add("resolver.cache_misses", fleet_total.cache_misses);
  m.add("resolver.servfails", fleet_total.servfails);
  m.add("resolver.formerrs", fleet_total.formerrs);
  m.add("resolver.http_errors", fleet_total.http_errors);
  m.add("resolver.doh_requests", fleet_total.doh_requests);
  m.add("resolver.dot_requests", fleet_total.dot_requests);
  m.add("resolver.do53_requests", fleet_total.do53_requests);
  m.add("resolver.doq_requests", fleet_total.doq_requests);

  transport::PoolStats pool_total;
  for (const auto& entry : vantages_) {
    const transport::PoolStats& p = entry.second.pool->stats();
    pool_total.acquires += p.acquires;
    pool_total.reused += p.reused;
    pool_total.fresh += p.fresh;
    pool_total.handshake_failures += p.handshake_failures;
  }
  m.add("transport.pool_acquires", pool_total.acquires);
  m.add("transport.pool_reused", pool_total.reused);
  m.add("transport.pool_fresh", pool_total.fresh);
  m.add("transport.pool_handshake_failures", pool_total.handshake_failures);
}

SimWorld::Vantage& SimWorld::vantage(const std::string& id) {
  const auto it = vantages_.find(id);
  if (it != vantages_.end()) return it->second;

  const geo::VantagePoint& vp = geo::vantage_by_id(id);
  const netsim::AccessLinkModel access = vp.is_home()
                                             ? netsim::AccessLinkModel::residential()
                                             : netsim::AccessLinkModel::datacenter();
  Vantage v;
  v.info = vp;
  v.addr = net_->attach("vantage/" + id, vp.location, access);
  v.pool = std::make_unique<transport::ConnectionPool>(*net_, v.addr);
  fleet_->apply_quirks(v.addr, id);
  return vantages_.emplace(id, std::move(v)).first->second;
}

resolver::OdohRelay& SimWorld::odoh_relay() {
  if (!odoh_relay_) {
    // Colocated with the Appendix A.2 ODoH targets (New York): the relay hop
    // still adds a full client<->relay path on top of relay<->target.
    const geo::GeoPoint location = geo::city::kNewYork;
    odoh_relay_ = std::make_unique<resolver::OdohRelay>(
        *net_, "odohrelay.alekberg.net", location,
        [this, location](std::string_view host) { return fleet_->address_for(host, location); });
  }
  return *odoh_relay_;
}

}  // namespace ednsm::core
