#include "core/world.h"

namespace ednsm::core {

SimWorld::SimWorld(std::uint64_t seed) : SimWorld(seed, resolver::paper_resolver_list()) {}

SimWorld::SimWorld(std::uint64_t seed, const std::vector<resolver::ResolverSpec>& specs) {
  net_ = std::make_unique<netsim::Network>(queue_, netsim::Rng(seed));
  fleet_ = std::make_unique<resolver::ResolverFleet>(*net_, specs);
}

SimWorld::Vantage& SimWorld::vantage(const std::string& id) {
  const auto it = vantages_.find(id);
  if (it != vantages_.end()) return it->second;

  const geo::VantagePoint& vp = geo::vantage_by_id(id);
  const netsim::AccessLinkModel access = vp.is_home()
                                             ? netsim::AccessLinkModel::residential()
                                             : netsim::AccessLinkModel::datacenter();
  Vantage v;
  v.info = vp;
  v.addr = net_->attach("vantage/" + id, vp.location, access);
  v.pool = std::make_unique<transport::ConnectionPool>(*net_, v.addr);
  fleet_->apply_quirks(v.addr, id);
  return vantages_.emplace(id, std::move(v)).first->second;
}

resolver::OdohRelay& SimWorld::odoh_relay() {
  if (!odoh_relay_) {
    // Colocated with the Appendix A.2 ODoH targets (New York): the relay hop
    // still adds a full client<->relay path on top of relay<->target.
    const geo::GeoPoint location = geo::city::kNewYork;
    odoh_relay_ = std::make_unique<resolver::OdohRelay>(
        *net_, "odohrelay.alekberg.net", location,
        [this, location](std::string_view host) { return fleet_->address_for(host, location); });
  }
  return *odoh_relay_;
}

}  // namespace ednsm::core
