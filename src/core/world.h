// SimWorld: the fully assembled simulated internet — event queue, network,
// resolver fleet, and vantage hosts with their connection pools. Everything a
// campaign or example needs, built from a seed.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "geo/vantage.h"
#include "netsim/event_queue.h"
#include "netsim/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "resolver/odoh.h"
#include "resolver/registry.h"
#include "transport/pool.h"

namespace ednsm::core {

class SimWorld {
 public:
  // Builds the network and instantiates every resolver in `specs`
  // (default: the paper's full Appendix A.2 population).
  explicit SimWorld(std::uint64_t seed);
  SimWorld(std::uint64_t seed, const std::vector<resolver::ResolverSpec>& specs);

  SimWorld(const SimWorld&) = delete;
  SimWorld& operator=(const SimWorld&) = delete;

  [[nodiscard]] netsim::EventQueue& queue() noexcept { return queue_; }
  [[nodiscard]] netsim::Network& net() noexcept { return *net_; }
  [[nodiscard]] resolver::ResolverFleet& fleet() noexcept { return *fleet_; }

  // The world's trace sink, pre-wired into the event queue so any component
  // with queue access can emit. Off until Tracer::enable() is called.
  [[nodiscard]] obs::Tracer& tracer() noexcept { return tracer_; }

  // Snapshot simulation-side counters into `m`: network datagram totals,
  // events executed, fleet-wide resolver cache/query stats (summed over
  // specs() in declaration order), and pool stats summed over attached
  // vantages (ordered by id). Deterministic for a deterministic run.
  void collect_metrics(obs::Metrics& m) const;

  struct Vantage {
    geo::VantagePoint info;
    netsim::IpAddr addr;
    std::unique_ptr<transport::ConnectionPool> pool;
  };

  // Attach (on first use) and return the vantage host for `id`; applies the
  // registry's per-vantage path quirks. Throws std::out_of_range for ids not
  // in geo::paper_vantage_points().
  [[nodiscard]] Vantage& vantage(const std::string& id);

  // The shared oblivious relay for ODoH campaigns, created on first use so
  // worlds that never measure ODoH draw no extra RNG and stay byte-identical
  // with earlier builds. The relay resolves target hostnames through the
  // fleet from its own location.
  [[nodiscard]] resolver::OdohRelay& odoh_relay();

  // Run the simulation until no events remain; returns events executed.
  std::size_t run() { return queue_.run_until_idle(); }

 private:
  netsim::EventQueue queue_;
  obs::Tracer tracer_;
  std::unique_ptr<netsim::Network> net_;
  std::unique_ptr<resolver::ResolverFleet> fleet_;
  std::map<std::string, Vantage> vantages_;
  std::unique_ptr<resolver::OdohRelay> odoh_relay_;
};

}  // namespace ednsm::core
