#include "dns/base64url.h"

#include <array>

namespace ednsm::dns {

namespace {
constexpr char kAlphabet[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

constexpr std::array<std::int8_t, 256> make_decode_table() {
  std::array<std::int8_t, 256> t{};
  for (auto& v : t) v = -1;
  for (int i = 0; i < 64; ++i) t[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  return t;
}
constexpr auto kDecode = make_decode_table();
}  // namespace

std::string base64url_encode(std::span<const std::uint8_t> data) {
  // Unpadded length: 4 chars per full 3-byte group, 2 or 3 for the remainder.
  const std::size_t rem = data.size() % 3;
  const std::size_t full = data.size() - rem;
  std::string out(full / 3 * 4 + (rem == 0 ? 0 : rem + 1), '\0');
  char* o = out.data();
  std::size_t i = 0;
  while (i < full) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                            data[i + 2];
    *o++ = kAlphabet[(v >> 18) & 63];
    *o++ = kAlphabet[(v >> 12) & 63];
    *o++ = kAlphabet[(v >> 6) & 63];
    *o++ = kAlphabet[v & 63];
    i += 3;
  }
  if (rem == 1) {
    const std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16;
    *o++ = kAlphabet[(v >> 18) & 63];
    *o++ = kAlphabet[(v >> 12) & 63];
  } else if (rem == 2) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8);
    *o++ = kAlphabet[(v >> 18) & 63];
    *o++ = kAlphabet[(v >> 12) & 63];
    *o++ = kAlphabet[(v >> 6) & 63];
  }
  return out;
}

Result<util::Bytes> base64url_decode(std::string_view text) {
  // Lengths of 1 mod 4 cannot arise from any byte sequence.
  if (text.size() % 4 == 1) return Err{std::string("base64url: invalid length")};
  util::Bytes out(text.size() * 6 / 8);
  std::uint8_t* o = out.data();

  std::uint32_t acc = 0;
  int bits = 0;
  for (char c : text) {
    const std::int8_t v = kDecode[static_cast<unsigned char>(c)];
    if (v < 0) return Err{std::string("base64url: invalid character")};
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      *o++ = static_cast<std::uint8_t>((acc >> bits) & 0xff);
    }
  }
  // Leftover bits must be zero (canonical encoding).
  if (bits > 0 && (acc & ((1u << bits) - 1)) != 0) {
    return Err{std::string("base64url: non-canonical trailing bits")};
  }
  return out;
}

}  // namespace ednsm::dns
