#include "dns/base64url.h"

#include <array>

namespace ednsm::dns {

namespace {
constexpr char kAlphabet[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

constexpr std::array<std::int8_t, 256> make_decode_table() {
  std::array<std::int8_t, 256> t{};
  for (auto& v : t) v = -1;
  for (int i = 0; i < 64; ++i) t[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  return t;
}
constexpr auto kDecode = make_decode_table();
}  // namespace

std::string base64url_encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                            data[i + 2];
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
    out.push_back(kAlphabet[v & 63]);
    i += 3;
  }
  const std::size_t rem = data.size() - i;
  if (rem == 1) {
    const std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
  } else if (rem == 2) {
    const std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
  }
  return out;
}

Result<util::Bytes> base64url_decode(std::string_view text) {
  // Lengths of 1 mod 4 cannot arise from any byte sequence.
  if (text.size() % 4 == 1) return Err{std::string("base64url: invalid length")};
  util::Bytes out;
  out.reserve(text.size() / 4 * 3 + 2);

  std::uint32_t acc = 0;
  int bits = 0;
  for (char c : text) {
    const std::int8_t v = kDecode[static_cast<unsigned char>(c)];
    if (v < 0) return Err{std::string("base64url: invalid character")};
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xff));
    }
  }
  // Leftover bits must be zero (canonical encoding).
  if (bits > 0 && (acc & ((1u << bits) - 1)) != 0) {
    return Err{std::string("base64url: non-canonical trailing bits")};
  }
  return out;
}

}  // namespace ednsm::dns
