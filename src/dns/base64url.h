// base64url without padding (RFC 4648 §5), as required by the DoH GET
// wire format (RFC 8484 §4.1: the 'dns' query parameter).
#pragma once

#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/result.h"

namespace ednsm::dns {

[[nodiscard]] std::string base64url_encode(std::span<const std::uint8_t> data);

// Rejects padding characters, whitespace, and non-alphabet characters, per
// RFC 8484's "base64url with padding characters omitted".
[[nodiscard]] Result<util::Bytes> base64url_decode(std::string_view text);

}  // namespace ednsm::dns
