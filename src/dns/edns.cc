#include "dns/edns.h"

namespace ednsm::dns {

void EdnsInfo::pad_to_block(std::size_t current_size_without_padding, std::size_t block) {
  if (block == 0) return;
  // Size once this OPT (without a padding option) is appended.
  const std::size_t base = current_size_without_padding + wire_length();
  // A padding option itself costs 4 octets of option header.
  const std::size_t with_empty_pad = base + 4;
  const std::size_t target = ((with_empty_pad + block - 1) / block) * block;
  EdnsOption pad;
  pad.code = static_cast<std::uint16_t>(OptionCode::Padding);
  pad.data.assign(target - with_empty_pad, 0);
  options.push_back(std::move(pad));
}

std::size_t EdnsInfo::wire_length() const noexcept {
  // root(1) + TYPE(2) + CLASS(2) + TTL(4) + RDLENGTH(2) + options
  std::size_t len = 11;
  for (const EdnsOption& o : options) len += 4 + o.data.size();
  return len;
}

void write_opt_rr(WireWriter& w, const EdnsInfo& info) {
  w.u8(0);  // root owner name
  w.u16(41);  // TYPE = OPT
  w.u16(info.udp_payload_size);  // CLASS carries the UDP payload size
  const std::uint32_t ttl = (static_cast<std::uint32_t>(info.extended_rcode_high) << 24) |
                            (static_cast<std::uint32_t>(info.version) << 16) |
                            (info.dnssec_ok ? 0x8000u : 0u);
  w.u32(ttl);
  std::size_t rdlen = 0;
  for (const EdnsOption& o : info.options) rdlen += 4 + o.data.size();
  w.u16(static_cast<std::uint16_t>(rdlen));
  for (const EdnsOption& o : info.options) {
    w.u16(o.code);
    w.u16(static_cast<std::uint16_t>(o.data.size()));
    w.bytes(o.data);
  }
}

Result<EdnsInfo> parse_opt_rr(std::uint16_t rr_class, std::uint32_t ttl,
                              std::span<const std::uint8_t> rdata) {
  EdnsInfo info;
  info.udp_payload_size = rr_class;
  info.extended_rcode_high = static_cast<std::uint8_t>(ttl >> 24);
  info.version = static_cast<std::uint8_t>((ttl >> 16) & 0xff);
  if (info.version != 0) return Err{std::string("edns: unsupported version")};
  info.dnssec_ok = (ttl & 0x8000u) != 0;

  WireReader r(rdata);
  while (!r.at_end()) {
    auto code = r.u16();
    if (!code) return Err{code.error()};
    auto len = r.u16();
    if (!len) return Err{len.error()};
    auto data = r.bytes(len.value());
    if (!data) return Err{std::string("edns: truncated option")};
    info.options.push_back(EdnsOption{code.value(), std::move(data).value()});
  }
  return info;
}

}  // namespace ednsm::dns
