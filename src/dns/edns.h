// EDNS(0) OPT pseudo-RR (RFC 6891) and the options we use:
//   - Padding (RFC 7830), recommended for encrypted transports so message
//     sizes do not leak query identity (RFC 8467 gives the block sizes).
#pragma once

#include <cstdint>
#include <vector>

#include "dns/wire.h"
#include "util/result.h"

namespace ednsm::dns {

enum class OptionCode : std::uint16_t {
  Padding = 12,  // RFC 7830
};

struct EdnsOption {
  std::uint16_t code = 0;
  util::Bytes data;

  [[nodiscard]] bool operator==(const EdnsOption&) const = default;
};

struct EdnsInfo {
  std::uint16_t udp_payload_size = 1232;  // DNS-flag-day-2020 recommendation
  std::uint8_t extended_rcode_high = 0;
  std::uint8_t version = 0;
  bool dnssec_ok = false;
  std::vector<EdnsOption> options;

  [[nodiscard]] bool operator==(const EdnsInfo&) const = default;

  // Append padding so the whole message (current_size + this OPT) rounds up
  // to a multiple of `block` octets (RFC 8467 recommends 128 for queries).
  void pad_to_block(std::size_t current_size_without_padding, std::size_t block);

  // Wire length of the OPT RR this info encodes to.
  [[nodiscard]] std::size_t wire_length() const noexcept;
};

// Encode as a complete OPT RR (root owner name included).
void write_opt_rr(WireWriter& w, const EdnsInfo& info);

// Decode the RDATA + header fields of an OPT RR whose owner name and TYPE
// have already been consumed. `rr_class`/`ttl` are the raw header fields.
[[nodiscard]] Result<EdnsInfo> parse_opt_rr(std::uint16_t rr_class, std::uint32_t ttl,
                                            std::span<const std::uint8_t> rdata);

}  // namespace ednsm::dns
