#include "dns/message.h"

#include <sstream>

namespace ednsm::dns {

namespace {

// ---- header flag packing ----------------------------------------------------

std::uint16_t pack_flags(const Header& h) {
  std::uint16_t f = 0;
  if (h.qr) f |= 0x8000;
  f |= static_cast<std::uint16_t>((static_cast<std::uint16_t>(h.opcode) & 0x0f) << 11);
  if (h.aa) f |= 0x0400;
  if (h.tc) f |= 0x0200;
  if (h.rd) f |= 0x0100;
  if (h.ra) f |= 0x0080;
  if (h.ad) f |= 0x0020;
  if (h.cd) f |= 0x0010;
  f |= static_cast<std::uint16_t>(static_cast<std::uint16_t>(h.rcode) & 0x0f);
  return f;
}

Header unpack_flags(std::uint16_t id, std::uint16_t f) {
  Header h;
  h.id = id;
  h.qr = (f & 0x8000) != 0;
  h.opcode = static_cast<Opcode>((f >> 11) & 0x0f);
  h.aa = (f & 0x0400) != 0;
  h.tc = (f & 0x0200) != 0;
  h.rd = (f & 0x0100) != 0;
  h.ra = (f & 0x0080) != 0;
  h.ad = (f & 0x0020) != 0;
  h.cd = (f & 0x0010) != 0;
  h.rcode = static_cast<Rcode>(f & 0x0f);
  return h;
}

// ---- rdata encoding ---------------------------------------------------------
// CNAME/NS/PTR/MX/SOA/SRV targets are legal compression targets per RFC 1035
// (SRV per RFC 2782 discourages it; we never compress SRV targets).

void write_rdata(WireWriter& w, NameCompressor& comp, const Rdata& rdata) {
  const std::size_t rdlen_at = w.size();
  w.u16(0);  // backpatched
  const std::size_t body_at = w.size();

  std::visit(
      [&](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, ARecord>) {
          w.bytes(r.address);
        } else if constexpr (std::is_same_v<T, AaaaRecord>) {
          w.bytes(r.address);
        } else if constexpr (std::is_same_v<T, CnameRecord>) {
          comp.write(w, r.target);
        } else if constexpr (std::is_same_v<T, NsRecord>) {
          comp.write(w, r.nameserver);
        } else if constexpr (std::is_same_v<T, PtrRecord>) {
          comp.write(w, r.target);
        } else if constexpr (std::is_same_v<T, MxRecord>) {
          w.u16(r.preference);
          comp.write(w, r.exchange);
        } else if constexpr (std::is_same_v<T, TxtRecord>) {
          for (const std::string& s : r.strings) {
            w.u8(static_cast<std::uint8_t>(s.size()));
            w.bytes(std::span(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
          }
        } else if constexpr (std::is_same_v<T, SoaRecord>) {
          comp.write(w, r.mname);
          comp.write(w, r.rname);
          w.u32(r.serial);
          w.u32(r.refresh);
          w.u32(r.retry);
          w.u32(r.expire);
          w.u32(r.minimum);
        } else if constexpr (std::is_same_v<T, SrvRecord>) {
          w.u16(r.priority);
          w.u16(r.weight);
          w.u16(r.port);
          // RFC 2782: target must not be compressed.
          NameCompressor fresh;
          fresh.write(w, r.target);
        } else if constexpr (std::is_same_v<T, OpaqueRdata>) {
          w.bytes(r.data);
        }
      },
      rdata);

  w.patch_u16(rdlen_at, static_cast<std::uint16_t>(w.size() - body_at));
}

// ---- rdata decoding ---------------------------------------------------------

Result<Rdata> read_rdata(WireReader& r, RecordType type, std::uint16_t rdlen) {
  const std::size_t end = r.offset() + rdlen;
  if (end > r.whole().size()) return Err{std::string("message: RDATA overruns message")};

  auto finish = [&](Rdata rd) -> Result<Rdata> {
    if (r.offset() != end) return Err{std::string("message: RDATA length mismatch")};
    return rd;
  };

  switch (type) {
    case RecordType::A: {
      if (rdlen != 4) return Err{std::string("message: A RDATA must be 4 octets")};
      ARecord rec;
      for (auto& b : rec.address) {
        auto v = r.u8();
        if (!v) return Err{v.error()};
        b = v.value();
      }
      return finish(rec);
    }
    case RecordType::AAAA: {
      if (rdlen != 16) return Err{std::string("message: AAAA RDATA must be 16 octets")};
      AaaaRecord rec;
      for (auto& b : rec.address) {
        auto v = r.u8();
        if (!v) return Err{v.error()};
        b = v.value();
      }
      return finish(rec);
    }
    case RecordType::CNAME: {
      auto n = read_name(r);
      if (!n) return Err{n.error()};
      return finish(CnameRecord{std::move(n).value()});
    }
    case RecordType::NS: {
      auto n = read_name(r);
      if (!n) return Err{n.error()};
      return finish(NsRecord{std::move(n).value()});
    }
    case RecordType::PTR: {
      auto n = read_name(r);
      if (!n) return Err{n.error()};
      return finish(PtrRecord{std::move(n).value()});
    }
    case RecordType::MX: {
      MxRecord rec;
      auto pref = r.u16();
      if (!pref) return Err{pref.error()};
      rec.preference = pref.value();
      auto n = read_name(r);
      if (!n) return Err{n.error()};
      rec.exchange = std::move(n).value();
      return finish(std::move(rec));
    }
    case RecordType::TXT: {
      TxtRecord rec;
      while (r.offset() < end) {
        auto len = r.u8();
        if (!len) return Err{len.error()};
        auto data = r.view(len.value());
        if (!data) return Err{std::string("message: truncated TXT string")};
        rec.strings.emplace_back(reinterpret_cast<const char*>(data.value().data()),
                                 data.value().size());
      }
      return finish(std::move(rec));
    }
    case RecordType::SOA: {
      SoaRecord rec;
      auto mname = read_name(r);
      if (!mname) return Err{mname.error()};
      rec.mname = std::move(mname).value();
      auto rname = read_name(r);
      if (!rname) return Err{rname.error()};
      rec.rname = std::move(rname).value();
      for (std::uint32_t* field :
           {&rec.serial, &rec.refresh, &rec.retry, &rec.expire, &rec.minimum}) {
        auto v = r.u32();
        if (!v) return Err{v.error()};
        *field = v.value();
      }
      return finish(std::move(rec));
    }
    case RecordType::SRV: {
      SrvRecord rec;
      for (std::uint16_t* field : {&rec.priority, &rec.weight, &rec.port}) {
        auto v = r.u16();
        if (!v) return Err{v.error()};
        *field = v.value();
      }
      auto n = read_name(r);
      if (!n) return Err{n.error()};
      rec.target = std::move(n).value();
      return finish(std::move(rec));
    }
    default: {
      auto data = r.bytes(rdlen);
      if (!data) return Err{std::string("message: truncated RDATA")};
      return Rdata{OpaqueRdata{std::move(data).value()}};
    }
  }
}

Result<ResourceRecord> read_rr(WireReader& r, std::optional<EdnsInfo>& edns_out) {
  auto name = read_name(r);
  if (!name) return Err{name.error()};
  auto type = r.u16();
  if (!type) return Err{type.error()};
  auto rclass = r.u16();
  if (!rclass) return Err{rclass.error()};
  auto ttl = r.u32();
  if (!ttl) return Err{ttl.error()};
  auto rdlen = r.u16();
  if (!rdlen) return Err{rdlen.error()};

  if (static_cast<RecordType>(type.value()) == RecordType::OPT) {
    if (edns_out.has_value()) return Err{std::string("message: duplicate OPT RR")};
    if (!name.value().is_root()) return Err{std::string("message: OPT owner must be root")};
    auto rdata = r.view(rdlen.value());
    if (!rdata) return Err{std::string("message: truncated OPT RDATA")};
    auto info = parse_opt_rr(rclass.value(), ttl.value(), rdata.value());
    if (!info) return Err{info.error()};
    edns_out = std::move(info).value();
    // Signal "this was the OPT" with a sentinel record the caller drops.
    ResourceRecord sentinel;
    sentinel.type = RecordType::OPT;
    return sentinel;
  }

  ResourceRecord rr;
  rr.name = std::move(name).value();
  rr.type = static_cast<RecordType>(type.value());
  rr.rclass = static_cast<RecordClass>(rclass.value());
  rr.ttl = ttl.value();
  auto rdata = read_rdata(r, rr.type, rdlen.value());
  if (!rdata) return Err{rdata.error()};
  rr.rdata = std::move(rdata).value();
  return rr;
}

void write_rr(WireWriter& w, NameCompressor& comp, const ResourceRecord& rr) {
  comp.write(w, rr.name);
  w.u16(static_cast<std::uint16_t>(rr.type));
  w.u16(static_cast<std::uint16_t>(rr.rclass));
  w.u32(rr.ttl);
  write_rdata(w, comp, rr.rdata);
}

}  // namespace

// ---- address presentation -----------------------------------------------------

std::string ARecord::to_string() const {
  std::ostringstream os;
  os << int{address[0]} << '.' << int{address[1]} << '.' << int{address[2]} << '.'
     << int{address[3]};
  return os.str();
}

std::string AaaaRecord::to_string() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  for (std::size_t g = 0; g < 8; ++g) {
    if (g != 0) out.push_back(':');
    const std::uint16_t v =
        static_cast<std::uint16_t>((address[g * 2] << 8) | address[g * 2 + 1]);
    out.push_back(kHex[(v >> 12) & 0xf]);
    out.push_back(kHex[(v >> 8) & 0xf]);
    out.push_back(kHex[(v >> 4) & 0xf]);
    out.push_back(kHex[v & 0xf]);
  }
  return out;
}

// ---- message codec --------------------------------------------------------

util::Bytes Message::encode(std::size_t pad_block) const {
  WireWriter w;
  // Most messages (padded queries, few-record responses) fit 256 octets;
  // pre-sizing avoids the doubling reallocations of an empty buffer.
  w.reserve(256);
  NameCompressor comp;

  w.u16(header.id);
  w.u16(pack_flags(header));
  w.u16(static_cast<std::uint16_t>(questions.size()));
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authorities.size()));
  w.u16(static_cast<std::uint16_t>(additionals.size() + (edns.has_value() ? 1 : 0)));

  for (const Question& q : questions) {
    comp.write(w, q.qname);
    w.u16(static_cast<std::uint16_t>(q.qtype));
    w.u16(static_cast<std::uint16_t>(q.qclass));
  }
  for (const ResourceRecord& rr : answers) write_rr(w, comp, rr);
  for (const ResourceRecord& rr : authorities) write_rr(w, comp, rr);
  for (const ResourceRecord& rr : additionals) write_rr(w, comp, rr);

  if (edns.has_value()) {
    EdnsInfo info = *edns;
    if (pad_block > 0) info.pad_to_block(w.size(), pad_block);
    write_opt_rr(w, info);
  }
  return std::move(w).take();
}

Result<Message> Message::decode(std::span<const std::uint8_t> wire) {
  WireReader r(wire);
  Message m;

  auto id = r.u16();
  if (!id) return Err{std::string("message: truncated header")};
  auto flags = r.u16();
  if (!flags) return Err{std::string("message: truncated header")};
  m.header = unpack_flags(id.value(), flags.value());

  std::uint16_t counts[4];
  for (auto& c : counts) {
    auto v = r.u16();
    if (!v) return Err{std::string("message: truncated header")};
    c = v.value();
  }

  for (std::uint16_t i = 0; i < counts[0]; ++i) {
    Question q;
    auto name = read_name(r);
    if (!name) return Err{name.error()};
    q.qname = std::move(name).value();
    auto qtype = r.u16();
    if (!qtype) return Err{qtype.error()};
    q.qtype = static_cast<RecordType>(qtype.value());
    auto qclass = r.u16();
    if (!qclass) return Err{qclass.error()};
    q.qclass = static_cast<RecordClass>(qclass.value());
    m.questions.push_back(std::move(q));
  }

  auto read_section = [&](std::uint16_t count,
                          std::vector<ResourceRecord>& out) -> Result<void> {
    for (std::uint16_t i = 0; i < count; ++i) {
      auto rr = read_rr(r, m.edns);
      if (!rr) return Err{rr.error()};
      if (rr.value().type == RecordType::OPT && rr.value().name.is_root() &&
          std::holds_alternative<OpaqueRdata>(rr.value().rdata) &&
          std::get<OpaqueRdata>(rr.value().rdata).data.empty()) {
        continue;  // OPT sentinel: captured into m.edns
      }
      out.push_back(std::move(rr).value());
    }
    return {};
  };

  if (auto s = read_section(counts[1], m.answers); !s) return Err{s.error()};
  if (auto s = read_section(counts[2], m.authorities); !s) return Err{s.error()};
  if (auto s = read_section(counts[3], m.additionals); !s) return Err{s.error()};

  if (!r.at_end()) return Err{std::string("message: trailing bytes")};
  return m;
}

Message make_query(std::uint16_t id, const Name& qname, RecordType qtype, bool dnssec_ok) {
  Message m;
  m.header.id = id;
  m.header.rd = true;
  m.questions.push_back(Question{qname, qtype, RecordClass::IN});
  EdnsInfo edns;
  edns.dnssec_ok = dnssec_ok;
  m.edns = edns;
  return m;
}

Message make_response(const Message& query, Rcode rcode, std::vector<ResourceRecord> answers) {
  Message m;
  m.header = query.header;
  m.header.qr = true;
  m.header.ra = true;
  m.header.rcode = rcode;
  m.questions = query.questions;
  m.answers = std::move(answers);
  if (query.edns.has_value()) {
    EdnsInfo edns;
    edns.udp_payload_size = 1232;
    m.edns = edns;
  }
  return m;
}

std::string summarize(const Message& m) {
  std::ostringstream os;
  os << (m.header.qr ? "RESPONSE" : "QUERY");
  if (!m.questions.empty()) {
    os << ' ' << m.questions.front().qname.to_string() << ' '
       << to_string(m.questions.front().qtype);
  }
  if (m.header.qr) {
    os << " -> " << to_string(m.header.rcode) << ' ' << m.answers.size() << " ans";
  }
  return os.str();
}

}  // namespace ednsm::dns
