// DNS message model and codec (RFC 1035 §4) with typed RDATA.
//
// Message::encode() produces a compressed wire image; Message::decode()
// accepts arbitrary untrusted bytes and fails with a Result error on any
// malformation. Round-tripping a message through encode/decode is identity
// up to name case and compression layout.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "dns/edns.h"
#include "dns/name.h"
#include "dns/types.h"
#include "dns/wire.h"
#include "util/result.h"

namespace ednsm::dns {

// ---------------------------------------------------------------- header ---

struct Header {
  std::uint16_t id = 0;
  bool qr = false;   // response flag
  Opcode opcode = Opcode::Query;
  bool aa = false;   // authoritative answer
  bool tc = false;   // truncated
  bool rd = true;    // recursion desired
  bool ra = false;   // recursion available
  bool ad = false;   // authentic data (RFC 4035)
  bool cd = false;   // checking disabled
  Rcode rcode = Rcode::NoError;

  [[nodiscard]] bool operator==(const Header&) const = default;
};

// ----------------------------------------------------------------- rdata ---

struct ARecord {
  std::array<std::uint8_t, 4> address{};
  [[nodiscard]] std::string to_string() const;  // dotted quad
  [[nodiscard]] bool operator==(const ARecord&) const = default;
};

struct AaaaRecord {
  std::array<std::uint8_t, 16> address{};
  [[nodiscard]] std::string to_string() const;  // full (uncompressed) hex groups
  [[nodiscard]] bool operator==(const AaaaRecord&) const = default;
};

struct CnameRecord {
  Name target;
  [[nodiscard]] bool operator==(const CnameRecord&) const = default;
};

struct NsRecord {
  Name nameserver;
  [[nodiscard]] bool operator==(const NsRecord&) const = default;
};

struct PtrRecord {
  Name target;
  [[nodiscard]] bool operator==(const PtrRecord&) const = default;
};

struct MxRecord {
  std::uint16_t preference = 0;
  Name exchange;
  [[nodiscard]] bool operator==(const MxRecord&) const = default;
};

struct TxtRecord {
  std::vector<std::string> strings;  // each element <= 255 octets
  [[nodiscard]] bool operator==(const TxtRecord&) const = default;
};

struct SoaRecord {
  Name mname;
  Name rname;
  std::uint32_t serial = 0;
  std::uint32_t refresh = 0;
  std::uint32_t retry = 0;
  std::uint32_t expire = 0;
  std::uint32_t minimum = 0;
  [[nodiscard]] bool operator==(const SoaRecord&) const = default;
};

struct SrvRecord {
  std::uint16_t priority = 0;
  std::uint16_t weight = 0;
  std::uint16_t port = 0;
  Name target;
  [[nodiscard]] bool operator==(const SrvRecord&) const = default;
};

// Types we do not model structurally keep their raw RDATA.
struct OpaqueRdata {
  util::Bytes data;
  [[nodiscard]] bool operator==(const OpaqueRdata&) const = default;
};

using Rdata = std::variant<ARecord, AaaaRecord, CnameRecord, NsRecord, PtrRecord,
                           MxRecord, TxtRecord, SoaRecord, SrvRecord, OpaqueRdata>;

// -------------------------------------------------------------- sections ---

struct Question {
  Name qname;
  RecordType qtype = RecordType::A;
  RecordClass qclass = RecordClass::IN;
  [[nodiscard]] bool operator==(const Question&) const = default;
};

struct ResourceRecord {
  Name name;
  RecordType type = RecordType::A;
  RecordClass rclass = RecordClass::IN;
  std::uint32_t ttl = 0;
  Rdata rdata = OpaqueRdata{};
  [[nodiscard]] bool operator==(const ResourceRecord&) const = default;
};

// --------------------------------------------------------------- message ---

struct Message {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;  // excluding the OPT pseudo-RR
  std::optional<EdnsInfo> edns;

  [[nodiscard]] bool operator==(const Message&) const = default;

  // Encode with name compression. If `pad_block` > 0 and EDNS is present,
  // a Padding option is appended so the output size is a multiple of it.
  [[nodiscard]] util::Bytes encode(std::size_t pad_block = 0) const;

  [[nodiscard]] static Result<Message> decode(std::span<const std::uint8_t> wire);
};

// Convenience builders -------------------------------------------------------

// A standard recursive query for (name, type) with EDNS0 and a fresh id.
[[nodiscard]] Message make_query(std::uint16_t id, const Name& qname, RecordType qtype,
                                 bool dnssec_ok = false);

// A response echoing `query`'s id and question with the given rcode/answers.
[[nodiscard]] Message make_response(const Message& query, Rcode rcode,
                                    std::vector<ResourceRecord> answers);

// Human-oriented one-line summary ("QUERY google.com A -> NOERROR 1 ans").
[[nodiscard]] std::string summarize(const Message& m);

}  // namespace ednsm::dns
