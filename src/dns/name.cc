#include "dns/name.h"

#include <algorithm>
#include <cctype>

#include "util/strings.h"

namespace ednsm::dns {

namespace {

bool valid_label_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
         c == '-' || c == '_';
}

char ascii_lower(char c) noexcept {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

// Canonical lowercase suffix key: "labelN.labelN+1...." used by the compressor.
std::string suffix_key(const std::vector<std::string>& labels, std::size_t from) {
  std::string key;
  for (std::size_t i = from; i < labels.size(); ++i) {
    for (char c : labels[i]) key.push_back(ascii_lower(c));
    key.push_back('.');
  }
  return key;
}

}  // namespace

Result<Name> Name::parse(std::string_view text) {
  Name name;
  if (text.empty() || text == ".") return name;
  if (text.back() == '.') text.remove_suffix(1);
  if (text.empty()) return Err{std::string("name: empty label")};

  for (std::string_view label : util::split(text, '.')) {
    if (label.empty()) return Err{std::string("name: empty label")};
    if (label.size() > kMaxLabelLength) return Err{std::string("name: label exceeds 63 octets")};
    for (char c : label) {
      if (!valid_label_char(c)) {
        return Err{std::string("name: invalid character in label '") + std::string(label) + "'"};
      }
    }
    name.labels_.emplace_back(label);
  }
  if (name.wire_length() > kMaxNameWireLength) {
    return Err{std::string("name: exceeds 255 octets")};
  }
  return name;
}

std::size_t Name::wire_length() const noexcept {
  std::size_t len = 1;  // terminating root octet
  for (const std::string& l : labels_) len += 1 + l.size();
  return len;
}

std::string Name::to_string() const {
  if (labels_.empty()) return ".";
  return util::join(labels_, ".");
}

bool Name::operator==(const Name& other) const noexcept {
  if (labels_.size() != other.labels_.size()) return false;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (!util::iequals(labels_[i], other.labels_[i])) return false;
  }
  return true;
}

std::size_t Name::hash() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::string& l : labels_) {
    for (char c : l) {
      h ^= static_cast<std::uint8_t>(ascii_lower(c));
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;  // label separator
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(h);
}

bool Name::is_subdomain_of(const Name& zone) const noexcept {
  if (zone.labels_.size() > labels_.size()) return false;
  const std::size_t offset = labels_.size() - zone.labels_.size();
  for (std::size_t i = 0; i < zone.labels_.size(); ++i) {
    if (!util::iequals(labels_[offset + i], zone.labels_[i])) return false;
  }
  return true;
}

Name Name::parent() const {
  Name p;
  if (labels_.size() <= 1) return p;
  p.labels_.assign(labels_.begin() + 1, labels_.end());
  return p;
}

void NameCompressor::write(WireWriter& w, const Name& name) {
  const auto& labels = name.labels();
  // One lowercased key per name; each suffix key is a view into it (labels
  // never contain '.', Name::parse splits on it, so '.' is unambiguous).
  std::string full = suffix_key(labels, 0);
  std::size_t start = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::string_view key = std::string_view(full).substr(start);
    start += labels[i].size() + 1;
    const auto it = suffix_offsets_.find(key);
    if (it != suffix_offsets_.end()) {
      w.u16(static_cast<std::uint16_t>(0xC000 | it->second));
      return;
    }
    if (w.size() <= 0x3FFF) {
      suffix_offsets_.emplace(key, static_cast<std::uint16_t>(w.size()));
    }
    w.u8(static_cast<std::uint8_t>(labels[i].size()));
    w.bytes(std::span(reinterpret_cast<const std::uint8_t*>(labels[i].data()),
                      labels[i].size()));
  }
  w.u8(0);  // root
}

Result<Name> read_name(WireReader& r) {
  Name out;
  std::vector<std::string> labels;
  std::size_t decoded_len = 1;
  int hops = 0;
  // Cursor to restore after following pointers: the name "consumes" bytes only
  // up to (and including) the first pointer or the terminating root octet.
  std::size_t resume = 0;
  bool jumped = false;
  std::size_t min_target = r.offset();  // pointers must go strictly backwards

  while (true) {
    auto len_r = r.u8();
    if (!len_r) return Err{len_r.error()};
    const std::uint8_t len = len_r.value();

    if ((len & 0xC0) == 0xC0) {  // compression pointer
      auto lo_r = r.u8();
      if (!lo_r) return Err{lo_r.error()};
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3F) << 8) | lo_r.value();
      if (!jumped) {
        resume = r.offset();
        jumped = true;
      }
      if (++hops > kMaxPointerHops) return Err{std::string("name: pointer hop limit")};
      if (target >= min_target) return Err{std::string("name: forward/looping pointer")};
      min_target = target;
      if (auto s = r.seek(target); !s) return Err{s.error()};
      continue;
    }
    if ((len & 0xC0) != 0) return Err{std::string("name: reserved label type")};
    if (len == 0) break;  // root: name complete

    auto data_r = r.view(len);
    if (!data_r) return Err{data_r.error()};
    decoded_len += 1 + static_cast<std::size_t>(len);
    if (decoded_len > kMaxNameWireLength) return Err{std::string("name: exceeds 255 octets")};
    labels.emplace_back(reinterpret_cast<const char*>(data_r.value().data()),
                        data_r.value().size());
  }

  if (jumped) {
    if (auto s = r.seek(resume); !s) return Err{s.error()};
  }

  // Enforce the same charset rules as parse() directly on the decoded labels
  // (wire labels are already 1..63 octets and within the 255-octet bound, so
  // only the character check remains) rather than round-tripping through
  // presentation format, which re-split and re-allocated every label.
  for (const std::string& label : labels) {
    for (char c : label) {
      if (!valid_label_char(c)) {
        return Err{std::string("name: invalid character in label '") + label + "'"};
      }
    }
  }
  out.labels_ = std::move(labels);
  return out;
}

}  // namespace ednsm::dns
