// DNS domain names (RFC 1035 §3.1) with full message compression support.
//
// A Name is a validated sequence of labels. Construction from presentation
// format ("dns.google") enforces the RFC limits: labels 1..63 octets, total
// encoded length <= 255, LDH-ish charset (we additionally allow '_' for
// service labels). Comparison is case-insensitive per RFC 4343.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dns/wire.h"
#include "util/result.h"

namespace ednsm::dns {

class Name {
 public:
  // The root name (zero labels, encodes as a single 0x00 octet).
  Name() = default;

  // Parse presentation format. A single trailing dot is accepted
  // ("example.com." == "example.com"); empty string and "." mean the root.
  [[nodiscard]] static Result<Name> parse(std::string_view text);

  [[nodiscard]] const std::vector<std::string>& labels() const noexcept { return labels_; }
  [[nodiscard]] bool is_root() const noexcept { return labels_.empty(); }
  [[nodiscard]] std::size_t label_count() const noexcept { return labels_.size(); }

  // Encoded wire length in octets (sum of label lengths + length octets + root).
  [[nodiscard]] std::size_t wire_length() const noexcept;

  // Presentation format without trailing dot; "." for the root.
  [[nodiscard]] std::string to_string() const;

  // Case-insensitive equality and hashing (RFC 4343).
  [[nodiscard]] bool operator==(const Name& other) const noexcept;
  [[nodiscard]] std::size_t hash() const noexcept;

  // True if this name equals `zone` or is a subdomain of it.
  [[nodiscard]] bool is_subdomain_of(const Name& zone) const noexcept;

  // Parent name (drops the leftmost label); parent of root is root.
  [[nodiscard]] Name parent() const;

 private:
  std::vector<std::string> labels_;

  // read_name() builds names straight from decoded wire labels (validated
  // in place against the same rules as parse()) without a presentation-
  // format round trip.
  friend Result<Name> read_name(WireReader& r);
};

struct NameHash {
  std::size_t operator()(const Name& n) const noexcept { return n.hash(); }
};

// Tracks label-suffix offsets within one message so later names can emit
// compression pointers (RFC 1035 §4.1.4). One compressor per message.
class NameCompressor {
 public:
  // Append `name` to `w`, emitting a pointer to an earlier occurrence of the
  // longest matching suffix when one exists, and remembering the offsets of
  // newly written suffixes (only offsets < 0x3FFF are addressable).
  void write(WireWriter& w, const Name& name);

 private:
  // Transparent hashing so suffix lookups take string_views into one
  // per-name key buffer instead of allocating a std::string per suffix.
  struct SuffixHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct SuffixEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept { return a == b; }
  };
  std::unordered_map<std::string, std::uint16_t, SuffixHash, SuffixEq> suffix_offsets_;
};

// Decode a (possibly compressed) name starting at the reader's cursor.
// Enforces: pointers must target earlier offsets (no loops), at most
// kMaxPointerHops hops, decoded length within the 255-octet bound.
[[nodiscard]] Result<Name> read_name(WireReader& r);

inline constexpr int kMaxPointerHops = 32;
inline constexpr std::size_t kMaxNameWireLength = 255;
inline constexpr std::size_t kMaxLabelLength = 63;

}  // namespace ednsm::dns
