#include "dns/types.h"

#include "util/strings.h"

namespace ednsm::dns {

std::string_view to_string(RecordType t) noexcept {
  switch (t) {
    case RecordType::A: return "A";
    case RecordType::NS: return "NS";
    case RecordType::CNAME: return "CNAME";
    case RecordType::SOA: return "SOA";
    case RecordType::PTR: return "PTR";
    case RecordType::MX: return "MX";
    case RecordType::TXT: return "TXT";
    case RecordType::AAAA: return "AAAA";
    case RecordType::SRV: return "SRV";
    case RecordType::OPT: return "OPT";
    case RecordType::SVCB: return "SVCB";
    case RecordType::HTTPS: return "HTTPS";
    case RecordType::ANY: return "ANY";
  }
  return "TYPE?";
}

std::string_view to_string(RecordClass c) noexcept {
  switch (c) {
    case RecordClass::IN: return "IN";
    case RecordClass::CH: return "CH";
    case RecordClass::ANY: return "ANY";
  }
  return "CLASS?";
}

std::string_view to_string(Opcode o) noexcept {
  switch (o) {
    case Opcode::Query: return "QUERY";
    case Opcode::IQuery: return "IQUERY";
    case Opcode::Status: return "STATUS";
    case Opcode::Notify: return "NOTIFY";
    case Opcode::Update: return "UPDATE";
  }
  return "OPCODE?";
}

std::string_view to_string(Rcode r) noexcept {
  switch (r) {
    case Rcode::NoError: return "NOERROR";
    case Rcode::FormErr: return "FORMERR";
    case Rcode::ServFail: return "SERVFAIL";
    case Rcode::NxDomain: return "NXDOMAIN";
    case Rcode::NotImp: return "NOTIMP";
    case Rcode::Refused: return "REFUSED";
  }
  return "RCODE?";
}

bool parse_record_type(std::string_view name, RecordType& out) noexcept {
  struct Entry {
    std::string_view name;
    RecordType type;
  };
  static constexpr Entry kTable[] = {
      {"A", RecordType::A},       {"NS", RecordType::NS},
      {"CNAME", RecordType::CNAME}, {"SOA", RecordType::SOA},
      {"PTR", RecordType::PTR},   {"MX", RecordType::MX},
      {"TXT", RecordType::TXT},   {"AAAA", RecordType::AAAA},
      {"SRV", RecordType::SRV},   {"OPT", RecordType::OPT},
      {"SVCB", RecordType::SVCB}, {"HTTPS", RecordType::HTTPS},
      {"ANY", RecordType::ANY},
  };
  for (const Entry& e : kTable) {
    if (util::iequals(name, e.name)) {
      out = e.type;
      return true;
    }
  }
  return false;
}

bool is_query_type(RecordType t) noexcept {
  return t != RecordType::OPT;
}

}  // namespace ednsm::dns
