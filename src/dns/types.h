// DNS protocol enumerations (RFC 1035, RFC 6891, RFC 8484) and their string
// forms. Values are the on-the-wire code points.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ednsm::dns {

enum class RecordType : std::uint16_t {
  A = 1,
  NS = 2,
  CNAME = 5,
  SOA = 6,
  PTR = 12,
  MX = 15,
  TXT = 16,
  AAAA = 28,
  SRV = 33,
  OPT = 41,    // EDNS0 pseudo-RR (RFC 6891)
  SVCB = 64,
  HTTPS = 65,
  ANY = 255,
};

enum class RecordClass : std::uint16_t {
  IN = 1,
  CH = 3,
  ANY = 255,
};

enum class Opcode : std::uint8_t {
  Query = 0,
  IQuery = 1,
  Status = 2,
  Notify = 4,
  Update = 5,
};

enum class Rcode : std::uint8_t {
  NoError = 0,
  FormErr = 1,
  ServFail = 2,
  NxDomain = 3,
  NotImp = 4,
  Refused = 5,
};

[[nodiscard]] std::string_view to_string(RecordType t) noexcept;
[[nodiscard]] std::string_view to_string(RecordClass c) noexcept;
[[nodiscard]] std::string_view to_string(Opcode o) noexcept;
[[nodiscard]] std::string_view to_string(Rcode r) noexcept;

// Parse "A"/"AAAA"/... (case-insensitive). Returns false for unknown names.
[[nodiscard]] bool parse_record_type(std::string_view name, RecordType& out) noexcept;

// True for types that may appear in a question section in this toolkit.
[[nodiscard]] bool is_query_type(RecordType t) noexcept;

}  // namespace ednsm::dns
