#include "dns/wire.h"

namespace ednsm::dns {

void WireWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void WireWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  buf_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void WireWriter::bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void WireWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  buf_.at(offset) = static_cast<std::uint8_t>(v >> 8);
  buf_.at(offset + 1) = static_cast<std::uint8_t>(v & 0xff);
}

Result<std::uint8_t> WireReader::u8() {
  if (remaining() < 1) return Err{std::string("wire: truncated u8")};
  return data_[pos_++];
}

Result<std::uint16_t> WireReader::u16() {
  if (remaining() < 2) return Err{std::string("wire: truncated u16")};
  const auto hi = data_[pos_];
  const auto lo = data_[pos_ + 1];
  pos_ += 2;
  return static_cast<std::uint16_t>((hi << 8) | lo);
}

Result<std::uint32_t> WireReader::u32() {
  if (remaining() < 4) return Err{std::string("wire: truncated u32")};
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

Result<util::Bytes> WireReader::bytes(std::size_t n) {
  if (remaining() < n) return Err{std::string("wire: truncated bytes")};
  util::Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Result<void> WireReader::seek(std::size_t offset) {
  if (offset > data_.size()) return Err{std::string("wire: seek out of range")};
  pos_ = offset;
  return {};
}

}  // namespace ednsm::dns
