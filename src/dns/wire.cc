#include "dns/wire.h"

namespace ednsm::dns {

void WireWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  buf_.at(offset) = static_cast<std::uint8_t>(v >> 8);
  buf_.at(offset + 1) = static_cast<std::uint8_t>(v & 0xff);
}

Result<util::Bytes> WireReader::bytes(std::size_t n) {
  if (remaining() < n) return Err{std::string("wire: truncated bytes")};
  util::Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Result<void> WireReader::seek(std::size_t offset) {
  if (offset > data_.size()) return Err{std::string("wire: seek out of range")};
  pos_ = offset;
  return {};
}

}  // namespace ednsm::dns
