// Big-endian wire primitives shared by the DNS codec.
//
// WireWriter owns a growing buffer; WireReader is a bounds-checked cursor
// over a caller-owned span. Reader failures are reported through Result so
// malformed network input can never throw.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "util/bytes.h"
#include "util/result.h"

namespace ednsm::dns {

// The primitive writers/readers are defined inline: they run millions of
// times per simulated campaign and are too small to pay a cross-TU call for.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
  }
  void u32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
    buf_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
  }
  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  // Pre-size the buffer when the caller can estimate the encoded length.
  void reserve(std::size_t n) { buf_.reserve(n); }

  // Overwrite a previously written u16 (used to backpatch RDLENGTH).
  void patch_u16(std::size_t offset, std::uint16_t v);

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const util::Bytes& data() const noexcept { return buf_; }
  [[nodiscard]] util::Bytes take() && noexcept { return std::move(buf_); }

 private:
  util::Bytes buf_;
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  [[nodiscard]] Result<std::uint8_t> u8() {
    if (remaining() < 1) return Err{std::string("wire: truncated u8")};
    return data_[pos_++];
  }
  [[nodiscard]] Result<std::uint16_t> u16() {
    if (remaining() < 2) return Err{std::string("wire: truncated u16")};
    const auto hi = data_[pos_];
    const auto lo = data_[pos_ + 1];
    pos_ += 2;
    return static_cast<std::uint16_t>((hi << 8) | lo);
  }
  [[nodiscard]] Result<std::uint32_t> u32() {
    if (remaining() < 4) return Err{std::string("wire: truncated u32")};
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }
  [[nodiscard]] Result<util::Bytes> bytes(std::size_t n);

  // Borrow `n` bytes at the cursor without copying. The span aliases the
  // reader's underlying buffer, so it is valid only while that buffer lives;
  // prefer this over bytes() when the caller copies into its own storage.
  [[nodiscard]] Result<std::span<const std::uint8_t>> view(std::size_t n) {
    if (remaining() < n) return Err{std::string("wire: truncated bytes")};
    const std::span<const std::uint8_t> out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  // Random access (name decompression follows pointers backwards).
  [[nodiscard]] std::span<const std::uint8_t> whole() const noexcept { return data_; }
  [[nodiscard]] std::size_t offset() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }

  // Move the cursor; rejected if the target is outside the buffer.
  [[nodiscard]] Result<void> seek(std::size_t offset);

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ednsm::dns
