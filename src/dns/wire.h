// Big-endian wire primitives shared by the DNS codec.
//
// WireWriter owns a growing buffer; WireReader is a bounds-checked cursor
// over a caller-owned span. Reader failures are reported through Result so
// malformed network input can never throw.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "util/bytes.h"
#include "util/result.h"

namespace ednsm::dns {

class WireWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void bytes(std::span<const std::uint8_t> data);

  // Overwrite a previously written u16 (used to backpatch RDLENGTH).
  void patch_u16(std::size_t offset, std::uint16_t v);

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const util::Bytes& data() const noexcept { return buf_; }
  [[nodiscard]] util::Bytes take() && noexcept { return std::move(buf_); }

 private:
  util::Bytes buf_;
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  [[nodiscard]] Result<std::uint8_t> u8();
  [[nodiscard]] Result<std::uint16_t> u16();
  [[nodiscard]] Result<std::uint32_t> u32();
  [[nodiscard]] Result<util::Bytes> bytes(std::size_t n);

  // Random access (name decompression follows pointers backwards).
  [[nodiscard]] std::span<const std::uint8_t> whole() const noexcept { return data_; }
  [[nodiscard]] std::size_t offset() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }

  // Move the cursor; rejected if the target is outside the buffer.
  [[nodiscard]] Result<void> seek(std::size_t offset);

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ednsm::dns
