#include "geo/coords.h"

#include <cmath>

namespace ednsm::geo {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kPi = 3.14159265358979323846;
// Light in fiber travels at roughly 2/3 c -> ~200 km per millisecond.
constexpr double kFiberKmPerMs = 200.0;

double deg2rad(double d) noexcept { return d * kPi / 180.0; }
}  // namespace

double great_circle_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = deg2rad(a.lat_deg);
  const double lat2 = deg2rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg2rad(b.lon_deg - a.lon_deg);
  const double s = std::sin(dlat / 2.0);
  const double t = std::sin(dlon / 2.0);
  const double h = s * s + std::cos(lat1) * std::cos(lat2) * t * t;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double propagation_delay_ms(const GeoPoint& a, const GeoPoint& b, double stretch) noexcept {
  return great_circle_km(a, b) * stretch / kFiberKmPerMs;
}

std::string_view to_string(Continent c) noexcept {
  switch (c) {
    case Continent::NorthAmerica: return "North America";
    case Continent::SouthAmerica: return "South America";
    case Continent::Europe: return "Europe";
    case Continent::Asia: return "Asia";
    case Continent::Africa: return "Africa";
    case Continent::Oceania: return "Oceania";
    case Continent::Unknown: return "Unknown";
  }
  return "Unknown";
}

}  // namespace ednsm::geo
