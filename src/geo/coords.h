// Geographic coordinates and the distance → propagation-delay model.
//
// The simulator derives baseline path latency from great-circle distance, the
// dominant term in wide-area RTT. Fiber paths are neither straight nor at
// light speed, so we use the conventional effective propagation speed of
// ~2/3 c and a path-stretch factor for routing indirectness.
#pragma once

#include <string>

namespace ednsm::geo {

struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  [[nodiscard]] bool operator==(const GeoPoint&) const = default;
};

// Haversine great-circle distance in kilometres.
[[nodiscard]] double great_circle_km(const GeoPoint& a, const GeoPoint& b) noexcept;

// One-way propagation delay in milliseconds for a fiber path between the two
// points: distance * stretch / (c * 2/3). `stretch` models routing
// indirectness; 1.0 is a geodesic fiber run, real Internet paths average
// roughly 1.5-2.5 (see e.g. iGDB / Sprint latency studies).
[[nodiscard]] double propagation_delay_ms(const GeoPoint& a, const GeoPoint& b,
                                          double stretch = 1.8) noexcept;

enum class Continent {
  NorthAmerica,
  SouthAmerica,
  Europe,
  Asia,
  Africa,
  Oceania,
  Unknown,  // the paper: "6 resolvers were unable to return a location"
};

[[nodiscard]] std::string_view to_string(Continent c) noexcept;

}  // namespace ednsm::geo
