#include "geo/geodb.h"

#include <algorithm>

namespace ednsm::geo {

void GeoDb::add(std::string hostname, GeoRecord record) {
  records_[std::move(hostname)] = std::move(record);
}

std::optional<GeoRecord> GeoDb::lookup(std::string_view hostname) const {
  const auto it = records_.find(std::string(hostname));
  if (it == records_.end() || it->second.continent == Continent::Unknown) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<std::string> GeoDb::hostnames_in(Continent c) const {
  std::vector<std::string> out;
  // ednsm-lint: allow(determinism-unordered-iter) — hostnames are collected
  // and sorted before they escape, so the hash order never reaches callers.
  for (const auto& [host, rec] : records_) {
    if (rec.continent == c) out.push_back(host);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ednsm::geo
