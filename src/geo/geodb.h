// GeoDb: an offline stand-in for MaxMind GeoLite2.
//
// The paper geolocates each resolver with GeoLite2 and groups them by
// continent ("18 in North America, 13 in Asia, 33 in Europe; 6 resolvers were
// unable to return a location"). This database maps hostnames to records with
// city / country / continent / coordinates, and supports the "no location"
// outcome via lookup() returning nullopt.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geo/coords.h"

namespace ednsm::geo {

struct GeoRecord {
  std::string city;
  std::string country_code;  // ISO 3166-1 alpha-2
  Continent continent = Continent::Unknown;
  GeoPoint point;
};

class GeoDb {
 public:
  // Register or replace a record.
  void add(std::string hostname, GeoRecord record);

  // MaxMind-style lookup; nullopt models "unable to return a location".
  [[nodiscard]] std::optional<GeoRecord> lookup(std::string_view hostname) const;

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  // All hostnames on a given continent (sorted, deterministic).
  [[nodiscard]] std::vector<std::string> hostnames_in(Continent c) const;

 private:
  std::unordered_map<std::string, GeoRecord> records_;
};

// Well-known city coordinates used by the registry and the vantage catalog.
namespace city {
// North America
inline constexpr GeoPoint kChicago{41.88, -87.63};
inline constexpr GeoPoint kColumbusOhio{39.96, -83.00};
inline constexpr GeoPoint kAshburn{39.04, -77.49};
inline constexpr GeoPoint kNewYork{40.71, -74.01};
inline constexpr GeoPoint kDallas{32.78, -96.80};
inline constexpr GeoPoint kLosAngeles{34.05, -118.24};
inline constexpr GeoPoint kSanFrancisco{37.77, -122.42};
inline constexpr GeoPoint kSeattle{47.61, -122.33};
inline constexpr GeoPoint kToronto{43.65, -79.38};
inline constexpr GeoPoint kMiami{25.76, -80.19};
inline constexpr GeoPoint kFremont{37.55, -121.99};
// Europe
inline constexpr GeoPoint kFrankfurt{50.11, 8.68};
inline constexpr GeoPoint kAmsterdam{52.37, 4.90};
inline constexpr GeoPoint kLondon{51.51, -0.13};
inline constexpr GeoPoint kParis{48.86, 2.35};
inline constexpr GeoPoint kStockholm{59.33, 18.07};
inline constexpr GeoPoint kZurich{47.38, 8.54};
inline constexpr GeoPoint kMunich{48.14, 11.58};
inline constexpr GeoPoint kBerlin{52.52, 13.41};
inline constexpr GeoPoint kVienna{48.21, 16.37};
inline constexpr GeoPoint kHelsinki{60.17, 24.94};
inline constexpr GeoPoint kOslo{59.91, 10.75};
inline constexpr GeoPoint kCopenhagen{55.68, 12.57};
inline constexpr GeoPoint kLuxembourg{49.61, 6.13};
inline constexpr GeoPoint kAthens{37.98, 23.73};
inline constexpr GeoPoint kMadrid{40.42, -3.70};
inline constexpr GeoPoint kWarsaw{52.23, 21.01};
inline constexpr GeoPoint kReykjavik{64.15, -21.94};
// Asia
inline constexpr GeoPoint kSeoul{37.57, 126.98};
inline constexpr GeoPoint kTokyo{35.68, 139.69};
inline constexpr GeoPoint kSingapore{1.35, 103.82};
inline constexpr GeoPoint kHongKong{22.32, 114.17};
inline constexpr GeoPoint kTaipei{25.03, 121.57};
inline constexpr GeoPoint kBeijing{39.90, 116.41};
inline constexpr GeoPoint kHangzhou{30.27, 120.16};
inline constexpr GeoPoint kJakarta{-6.21, 106.85};
inline constexpr GeoPoint kMumbai{19.08, 72.88};
// Oceania
inline constexpr GeoPoint kSydney{-33.87, 151.21};
inline constexpr GeoPoint kPerth{-31.95, 115.86};
inline constexpr GeoPoint kAdelaide{-34.93, 138.60};
}  // namespace city

}  // namespace ednsm::geo
