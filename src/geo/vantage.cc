#include "geo/vantage.h"

#include <stdexcept>

#include "geo/geodb.h"

namespace ednsm::geo {

const std::vector<VantagePoint>& paper_vantage_points() {
  static const std::vector<VantagePoint> kPoints = [] {
    std::vector<VantagePoint> v;
    v.push_back({"ec2-ohio", "Amazon EC2 us-east-2 (Ohio), t2.xlarge", city::kColumbusOhio,
                 Continent::NorthAmerica, AccessProfile::Datacenter});
    v.push_back({"ec2-frankfurt", "Amazon EC2 eu-central-1 (Frankfurt), t2.xlarge",
                 city::kFrankfurt, Continent::Europe, AccessProfile::Datacenter});
    v.push_back({"ec2-seoul", "Amazon EC2 ap-northeast-2 (Seoul), t2.xlarge", city::kSeoul,
                 Continent::Asia, AccessProfile::Datacenter});
    for (int unit = 1; unit <= 4; ++unit) {
      v.push_back({"home-chicago-" + std::to_string(unit),
                   "Raspberry Pi, Chicagoland apartment complex unit " + std::to_string(unit),
                   city::kChicago, Continent::NorthAmerica, AccessProfile::Residential});
    }
    return v;
  }();
  return kPoints;
}

const VantagePoint& vantage_by_id(std::string_view id) {
  for (const VantagePoint& vp : paper_vantage_points()) {
    if (vp.id == id) return vp;
  }
  throw std::out_of_range("unknown vantage point id: " + std::string(id));
}

}  // namespace ednsm::geo
