// Vantage points: where measurements are issued from.
//
// The paper measures from four Raspberry Pi devices in one Chicago-area
// apartment complex (home networks, via residential broadband) and three
// Amazon EC2 regions (Ohio us-east-2, Frankfurt eu-central-1, Seoul
// ap-northeast-2). Access-network characteristics differ sharply between the
// two classes, which the paper leans on in §4; AccessProfile captures that.
#pragma once

#include <string>
#include <vector>

#include "geo/coords.h"

namespace ednsm::geo {

enum class AccessProfile {
  Datacenter,   // EC2: negligible last-mile latency, low jitter
  Residential,  // cable/DOCSIS: ~5-15 ms last mile, bursty cross-traffic jitter
};

struct VantagePoint {
  std::string id;          // "ec2-ohio", "home-chicago-1", ...
  std::string description;
  GeoPoint location;
  Continent continent = Continent::Unknown;
  AccessProfile access = AccessProfile::Datacenter;

  [[nodiscard]] bool is_home() const noexcept { return access == AccessProfile::Residential; }
};

// The paper's seven vantage points.
[[nodiscard]] const std::vector<VantagePoint>& paper_vantage_points();

// Lookup by id; throws std::out_of_range for unknown ids (caller bug).
[[nodiscard]] const VantagePoint& vantage_by_id(std::string_view id);

// Canonical ids used across benches and examples.
inline constexpr std::string_view kVantageOhio = "ec2-ohio";
inline constexpr std::string_view kVantageFrankfurt = "ec2-frankfurt";
inline constexpr std::string_view kVantageSeoul = "ec2-seoul";
inline constexpr std::string_view kVantageHome1 = "home-chicago-1";

}  // namespace ednsm::geo
