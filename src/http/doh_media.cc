#include "http/doh_media.h"

#include "dns/base64url.h"
#include "util/strings.h"

namespace ednsm::http {

std::string doh_get_path(std::string_view base_path,
                         std::span<const std::uint8_t> dns_message) {
  std::string path(base_path);
  path += "?dns=";
  path += dns::base64url_encode(dns_message);
  return path;
}

Request make_doh_request(std::string_view authority, std::string_view path,
                         std::span<const std::uint8_t> dns_message, bool use_post) {
  Request req;
  req.authority = std::string(authority);
  req.headers.reserve(2);
  req.headers.emplace_back("accept", std::string(kDnsMessageMediaType));
  if (use_post) {
    req.method = "POST";
    req.path = std::string(path);
    req.headers.emplace_back("content-type", std::string(kDnsMessageMediaType));
    req.body.assign(dns_message.begin(), dns_message.end());
  } else {
    req.method = "GET";
    req.path = doh_get_path(path, dns_message);
  }
  return req;
}

Result<util::Bytes> extract_dns_message(const Request& req) {
  if (req.method == "POST") {
    const std::string* ct = find_header(req.headers, "content-type");
    if (ct == nullptr || !util::iequals(*ct, kDnsMessageMediaType)) {
      return Err{std::string("doh: POST without application/dns-message content type")};
    }
    if (req.body.empty()) return Err{std::string("doh: empty POST body")};
    return req.body;
  }
  if (req.method == "GET") {
    const std::size_t q = req.path.find('?');
    if (q == std::string::npos) return Err{std::string("doh: GET without query string")};
    for (std::string_view param : util::split(std::string_view(req.path).substr(q + 1), '&')) {
      if (util::starts_with(param, "dns=")) {
        return dns::base64url_decode(param.substr(4));
      }
    }
    return Err{std::string("doh: GET without dns parameter")};
  }
  return Err{std::string("doh: unsupported method ") + req.method};
}

Response make_doh_response(util::Bytes dns_message, std::uint32_t min_ttl) {
  Response resp;
  resp.status = 200;
  resp.headers.emplace_back("content-type", std::string(kDnsMessageMediaType));
  resp.headers.emplace_back("cache-control", "max-age=" + std::to_string(min_ttl));
  resp.body = std::move(dns_message);
  return resp;
}

}  // namespace ednsm::http
