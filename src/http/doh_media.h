// DoH media helpers (RFC 8484): the application/dns-message content type,
// GET-with-?dns= path construction, and request parsing on the server side.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "http/h1.h"
#include "util/bytes.h"
#include "util/result.h"

namespace ednsm::http {

inline constexpr std::string_view kDnsMessageMediaType = "application/dns-message";
inline constexpr std::string_view kDohDefaultPath = "/dns-query";

// Build "/dns-query?dns=<base64url(message)>" (RFC 8484 §4.1).
[[nodiscard]] std::string doh_get_path(std::string_view base_path,
                                       std::span<const std::uint8_t> dns_message);

// Build a DoH request. GET carries the message in the path; POST in the body.
[[nodiscard]] Request make_doh_request(std::string_view authority, std::string_view path,
                                       std::span<const std::uint8_t> dns_message, bool use_post);

// Server side: pull the DNS message out of a DoH request. Validates method,
// media type (POST), and the dns= parameter (GET).
[[nodiscard]] Result<util::Bytes> extract_dns_message(const Request& req);

// Build a DoH response carrying a DNS message (sets content-type and
// cache-control per RFC 8484 §5.1 using the answer's min TTL).
[[nodiscard]] Response make_doh_response(util::Bytes dns_message, std::uint32_t min_ttl);

}  // namespace ednsm::http
