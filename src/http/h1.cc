#include "http/h1.h"

#include "util/strings.h"

namespace ednsm::http {

namespace {

void append(util::Bytes& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

struct Head {
  std::vector<std::string> lines;
  std::size_t body_offset = 0;
};

// Split the head (up to CRLFCRLF) into lines; returns error if no terminator.
Result<Head> split_head(std::span<const std::uint8_t> wire) {
  const std::string text = util::as_string(wire);
  const std::size_t end = text.find("\r\n\r\n");
  if (end == std::string::npos) return Err{std::string("h1: missing header terminator")};
  Head head;
  head.body_offset = end + 4;
  std::size_t start = 0;
  while (start < end) {
    std::size_t eol = text.find("\r\n", start);
    if (eol == std::string::npos || eol > end) eol = end;
    head.lines.push_back(text.substr(start, eol - start));
    start = eol + 2;
  }
  if (head.lines.empty()) return Err{std::string("h1: empty head")};
  return head;
}

Result<HeaderList> parse_headers(const std::vector<std::string>& lines) {
  HeaderList headers;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) return Err{std::string("h1: malformed header line")};
    headers.emplace_back(std::string(util::trim(line.substr(0, colon))),
                         std::string(util::trim(line.substr(colon + 1))));
  }
  return headers;
}

Result<util::Bytes> extract_body(std::span<const std::uint8_t> wire, std::size_t offset,
                                 const HeaderList& headers) {
  const std::string* cl = find_header(headers, "content-length");
  const std::size_t available = wire.size() - offset;
  std::size_t expected = available;
  if (cl != nullptr) {
    unsigned long long n = 0;
    if (!util::parse_u64(*cl, n)) return Err{std::string("h1: bad content-length")};
    expected = static_cast<std::size_t>(n);
    if (expected > available) return Err{std::string("h1: truncated body")};
    if (expected < available) return Err{std::string("h1: trailing bytes after body")};
  }
  return util::Bytes(wire.begin() + static_cast<std::ptrdiff_t>(offset),
                     wire.begin() + static_cast<std::ptrdiff_t>(offset + expected));
}

}  // namespace

const std::string* find_header(const HeaderList& headers, std::string_view name) {
  for (const auto& [k, v] : headers) {
    if (util::iequals(k, name)) return &v;
  }
  return nullptr;
}

util::Bytes Request::encode() const {
  util::Bytes out;
  append(out, method);
  append(out, " ");
  append(out, path);
  append(out, " HTTP/1.1\r\n");
  if (!authority.empty() && find_header(headers, "host") == nullptr) {
    append(out, "Host: ");
    append(out, authority);
    append(out, "\r\n");
  }
  for (const auto& [k, v] : headers) {
    append(out, k);
    append(out, ": ");
    append(out, v);
    append(out, "\r\n");
  }
  if (!body.empty() && find_header(headers, "content-length") == nullptr) {
    append(out, "Content-Length: " + std::to_string(body.size()) + "\r\n");
  }
  append(out, "\r\n");
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Result<Request> Request::decode(std::span<const std::uint8_t> wire) {
  auto head = split_head(wire);
  if (!head) return Err{head.error()};

  const auto parts = util::split(head.value().lines[0], ' ');
  if (parts.size() != 3) return Err{std::string("h1: malformed request line")};
  if (parts[2] != "HTTP/1.1") return Err{std::string("h1: unsupported version")};

  Request req;
  req.method = std::string(parts[0]);
  req.path = std::string(parts[1]);
  auto headers = parse_headers(head.value().lines);
  if (!headers) return Err{headers.error()};
  req.headers = std::move(headers).value();
  if (const std::string* host = find_header(req.headers, "host")) req.authority = *host;

  auto body = extract_body(wire, head.value().body_offset, req.headers);
  if (!body) return Err{body.error()};
  req.body = std::move(body).value();
  return req;
}

util::Bytes Response::encode() const {
  util::Bytes out;
  append(out, "HTTP/1.1 " + std::to_string(status) + " ");
  append(out, reason.empty() ? default_reason(status) : std::string_view(reason));
  append(out, "\r\n");
  for (const auto& [k, v] : headers) {
    append(out, k);
    append(out, ": ");
    append(out, v);
    append(out, "\r\n");
  }
  if (find_header(headers, "content-length") == nullptr) {
    append(out, "Content-Length: " + std::to_string(body.size()) + "\r\n");
  }
  append(out, "\r\n");
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Result<Response> Response::decode(std::span<const std::uint8_t> wire) {
  auto head = split_head(wire);
  if (!head) return Err{head.error()};

  const std::string& status_line = head.value().lines[0];
  const auto parts = util::split(status_line, ' ');
  if (parts.size() < 2) return Err{std::string("h1: malformed status line")};
  if (parts[0] != "HTTP/1.1") return Err{std::string("h1: unsupported version")};
  unsigned long long status = 0;
  if (!util::parse_u64(parts[1], status) || status < 100 || status > 599) {
    return Err{std::string("h1: bad status code")};
  }

  Response resp;
  resp.status = static_cast<int>(status);
  if (parts.size() >= 3) {
    const std::size_t reason_at = status_line.find(parts[2]);
    resp.reason = status_line.substr(reason_at);
  }
  auto headers = parse_headers(head.value().lines);
  if (!headers) return Err{headers.error()};
  resp.headers = std::move(headers).value();

  auto body = extract_body(wire, head.value().body_offset, resp.headers);
  if (!body) return Err{body.error()};
  resp.body = std::move(body).value();
  return resp;
}

std::string_view default_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 413: return "Payload Too Large";
    case 415: return "Unsupported Media Type";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

}  // namespace ednsm::http
