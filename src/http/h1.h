// HTTP/1.1 request/response codec — the simpler of the two DoH transports
// (RFC 8484 allows both; we implement both and the client picks).
//
// Supports exactly what DoH needs: GET/POST requests with arbitrary headers
// and an optional body, responses with status line + headers + body,
// Content-Length framing (no chunked encoding — DoH messages are small and
// the sizes are known up front).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "netsim/time.h"
#include "util/bytes.h"
#include "util/result.h"

namespace ednsm::http {

using HeaderList = std::vector<std::pair<std::string, std::string>>;

// One HTTP exchange's phase stamps: when the serialized request was handed to
// the transport and when the decoded response came back. The DoH clients
// populate QueryTiming::exchange from this.
struct ExchangeTiming {
  netsim::SimTime request_sent{0};
  netsim::SimTime response_received{0};

  [[nodiscard]] netsim::SimDuration elapsed() const noexcept {
    return response_received - request_sent;
  }
};

// Case-insensitive header lookup; returns nullptr if absent.
[[nodiscard]] const std::string* find_header(const HeaderList& headers, std::string_view name);

struct Request {
  std::string method = "GET";
  std::string path = "/";
  std::string authority;  // Host
  HeaderList headers;
  util::Bytes body;

  [[nodiscard]] util::Bytes encode() const;
  [[nodiscard]] static Result<Request> decode(std::span<const std::uint8_t> wire);
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  HeaderList headers;
  util::Bytes body;

  [[nodiscard]] util::Bytes encode() const;
  [[nodiscard]] static Result<Response> decode(std::span<const std::uint8_t> wire);
};

[[nodiscard]] std::string_view default_reason(int status) noexcept;

}  // namespace ednsm::http
