#include "http/h2.h"

#include <algorithm>

#include "dns/wire.h"
#include "util/strings.h"

namespace ednsm::http {

namespace {
constexpr char kPreface[] = "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n";
constexpr std::size_t kPrefaceLen = sizeof(kPreface) - 1;
}  // namespace

util::Bytes Frame::encode() const {
  dns::WireWriter w;
  w.reserve(9 + payload.size());  // frame header + payload
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  w.u8(static_cast<std::uint8_t>((len >> 16) & 0xff));
  w.u8(static_cast<std::uint8_t>((len >> 8) & 0xff));
  w.u8(static_cast<std::uint8_t>(len & 0xff));
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(flags);
  w.u32(stream_id & 0x7fffffffu);
  w.bytes(payload);
  return std::move(w).take();
}

Result<std::vector<Frame>> decode_frames(std::span<const std::uint8_t> wire) {
  std::vector<Frame> frames;
  dns::WireReader r(wire);
  while (!r.at_end()) {
    if (r.remaining() < 9) return Err{std::string("h2: truncated frame header")};
    std::uint32_t len = 0;
    for (int i = 0; i < 3; ++i) {
      auto b = r.u8();
      if (!b) return Err{b.error()};
      len = (len << 8) | b.value();
    }
    auto type = r.u8();
    if (!type) return Err{type.error()};
    auto flags = r.u8();
    if (!flags) return Err{flags.error()};
    auto sid = r.u32();
    if (!sid) return Err{sid.error()};
    auto payload = r.bytes(len);
    if (!payload) return Err{std::string("h2: truncated frame payload")};

    Frame f;
    f.type = static_cast<FrameType>(type.value());
    f.flags = flags.value();
    f.stream_id = sid.value() & 0x7fffffffu;
    f.payload = std::move(payload).value();
    frames.push_back(std::move(f));
  }
  return frames;
}

std::span<const std::uint8_t> client_preface() noexcept {
  return {reinterpret_cast<const std::uint8_t*>(kPreface), kPrefaceLen};
}

// ---- client ----------------------------------------------------------------

util::Bytes H2ClientSession::serialize_request(const Request& req,
                                               std::uint32_t& stream_id_out) {
  util::Bytes out;
  if (!preface_sent_) {
    preface_sent_ = true;
    const auto preface = client_preface();
    out.insert(out.end(), preface.begin(), preface.end());
    Frame settings;
    settings.type = FrameType::Settings;
    const util::Bytes enc = settings.encode();
    out.insert(out.end(), enc.begin(), enc.end());
  }

  const std::uint32_t sid = next_stream_id_;
  next_stream_id_ += 2;
  stream_id_out = sid;

  std::vector<hpack::Header> headers;
  headers.reserve(4 + req.headers.size());
  headers.emplace_back(":method", req.method);
  headers.emplace_back(":scheme", "https");
  headers.emplace_back(":authority", req.authority);
  headers.emplace_back(":path", req.path);
  for (const auto& [k, v] : req.headers) headers.emplace_back(util::to_lower(k), v);

  Frame hf;
  hf.type = FrameType::Headers;
  hf.flags = static_cast<std::uint8_t>(kFlagEndHeaders | (req.body.empty() ? kFlagEndStream : 0));
  hf.stream_id = sid;
  hf.payload = encoder_.encode(headers);
  const util::Bytes henc = hf.encode();
  out.insert(out.end(), henc.begin(), henc.end());

  if (!req.body.empty()) {
    Frame df;
    df.type = FrameType::Data;
    df.flags = kFlagEndStream;
    df.stream_id = sid;
    df.payload = req.body;
    const util::Bytes denc = df.encode();
    out.insert(out.end(), denc.begin(), denc.end());
  }
  streams_.emplace_back(sid, PendingStream{});
  return out;
}

void H2ClientSession::stamp_request(std::uint32_t stream_id, netsim::SimTime now) {
  request_stamps_.emplace_back(stream_id, now);
}

netsim::SimDuration H2ClientSession::finish_exchange(std::uint32_t stream_id,
                                                     netsim::SimTime now) {
  for (auto it = request_stamps_.begin(); it != request_stamps_.end(); ++it) {
    if (it->first == stream_id) {
      const netsim::SimDuration elapsed = now - it->second;
      request_stamps_.erase(it);
      return elapsed;
    }
  }
  return netsim::SimDuration{0};
}

void H2ClientSession::feed(std::span<const std::uint8_t> wire,
                           const ResponseHandler& on_response) {
  auto frames_r = decode_frames(wire);
  if (!frames_r) {
    // A malformed run is a connection error; every pending stream fails.
    for (auto& [sid, st] : streams_) on_response(sid, Err{frames_r.error()});
    streams_.clear();
    return;
  }

  for (Frame& f : frames_r.value()) {
    auto stream_it = std::find_if(streams_.begin(), streams_.end(),
                                  [&](const auto& s) { return s.first == f.stream_id; });
    switch (f.type) {
      case FrameType::Settings:
      case FrameType::Ping:
      case FrameType::WindowUpdate:
      case FrameType::GoAway:
        break;  // bookkeeping; nothing to surface for a DoH exchange
      case FrameType::RstStream: {
        if (stream_it != streams_.end()) {
          on_response(f.stream_id, Err{std::string("h2: stream reset by server")});
          streams_.erase(stream_it);
        }
        break;
      }
      case FrameType::Headers: {
        if (stream_it == streams_.end()) break;
        auto headers_r = decoder_.decode(f.payload);
        if (!headers_r) {
          on_response(f.stream_id, Err{headers_r.error()});
          streams_.erase(stream_it);
          break;
        }
        Response resp;
        for (auto& [k, v] : headers_r.value()) {
          if (k == ":status") {
            unsigned long long s = 0;
            if (util::parse_u64(v, s)) resp.status = static_cast<int>(s);
          } else if (!k.empty() && k[0] != ':') {
            resp.headers.emplace_back(k, v);
          }
        }
        stream_it->second.response = std::move(resp);
        stream_it->second.headers_done = true;
        if ((f.flags & kFlagEndStream) != 0) {
          Response done = std::move(*stream_it->second.response);
          done.body = std::move(stream_it->second.body);
          const std::uint32_t sid = f.stream_id;
          streams_.erase(stream_it);
          on_response(sid, std::move(done));
        }
        break;
      }
      case FrameType::Data: {
        if (stream_it == streams_.end()) break;
        PendingStream& st = stream_it->second;
        st.body.insert(st.body.end(), f.payload.begin(), f.payload.end());
        if ((f.flags & kFlagEndStream) != 0) {
          if (!st.headers_done) {
            on_response(f.stream_id, Err{std::string("h2: DATA before HEADERS")});
            streams_.erase(stream_it);
            break;
          }
          Response done = std::move(*st.response);
          done.body = std::move(st.body);
          const std::uint32_t sid = f.stream_id;
          streams_.erase(stream_it);
          on_response(sid, std::move(done));
        }
        break;
      }
    }
  }
}

// ---- server ----------------------------------------------------------------

void H2ServerSession::feed(std::span<const std::uint8_t> wire,
                           const RequestHandler& on_request) {
  std::span<const std::uint8_t> rest = wire;
  if (!preface_seen_) {
    const auto preface = client_preface();
    if (rest.size() < preface.size() ||
        !std::equal(preface.begin(), preface.end(), rest.begin())) {
      on_request(0, Err{std::string("h2: missing connection preface")});
      return;
    }
    preface_seen_ = true;
    rest = rest.subspan(preface.size());
  }

  auto frames_r = decode_frames(rest);
  if (!frames_r) {
    on_request(0, Err{frames_r.error()});
    return;
  }

  // Requests may arrive as HEADERS(+END_STREAM) or HEADERS + DATA in the same
  // run; track partial streams across feeds.
  for (Frame& f : frames_r.value()) {
    switch (f.type) {
      case FrameType::Settings:
        if ((f.flags & kFlagAck) == 0) settings_ack_due_ = true;
        break;
      case FrameType::Headers: {
        auto headers_r = decoder_.decode(f.payload);
        if (!headers_r) {
          on_request(f.stream_id, Err{headers_r.error()});
          break;
        }
        Request req;
        for (auto& [k, v] : headers_r.value()) {
          if (k == ":method") req.method = v;
          else if (k == ":path") req.path = v;
          else if (k == ":authority") req.authority = v;
          else if (!k.empty() && k[0] != ':') req.headers.emplace_back(k, v);
        }
        if ((f.flags & kFlagEndStream) != 0) {
          on_request(f.stream_id, std::move(req));
        } else {
          partial_.emplace_back(f.stream_id, std::move(req));
        }
        break;
      }
      case FrameType::Data: {
        auto it = std::find_if(partial_.begin(), partial_.end(),
                               [&](const auto& p) { return p.first == f.stream_id; });
        if (it == partial_.end()) break;
        it->second.body.insert(it->second.body.end(), f.payload.begin(), f.payload.end());
        if ((f.flags & kFlagEndStream) != 0) {
          Request done = std::move(it->second);
          partial_.erase(it);
          on_request(f.stream_id, std::move(done));
        }
        break;
      }
      default:
        break;
    }
  }
}

util::Bytes H2ServerSession::serialize_response(std::uint32_t stream_id, const Response& resp) {
  util::Bytes out;
  if (settings_ack_due_) {
    settings_ack_due_ = false;
    Frame own;
    own.type = FrameType::Settings;
    const util::Bytes oenc = own.encode();
    out.insert(out.end(), oenc.begin(), oenc.end());
    Frame ack;
    ack.type = FrameType::Settings;
    ack.flags = kFlagAck;
    const util::Bytes aenc = ack.encode();
    out.insert(out.end(), aenc.begin(), aenc.end());
  }

  std::vector<hpack::Header> headers;
  headers.reserve(1 + resp.headers.size());
  headers.emplace_back(":status", std::to_string(resp.status));
  for (const auto& [k, v] : resp.headers) headers.emplace_back(util::to_lower(k), v);

  Frame hf;
  hf.type = FrameType::Headers;
  hf.flags = static_cast<std::uint8_t>(kFlagEndHeaders | (resp.body.empty() ? kFlagEndStream : 0));
  hf.stream_id = stream_id;
  hf.payload = encoder_.encode(headers);
  const util::Bytes henc = hf.encode();
  out.insert(out.end(), henc.begin(), henc.end());

  if (!resp.body.empty()) {
    Frame df;
    df.type = FrameType::Data;
    df.flags = kFlagEndStream;
    df.stream_id = stream_id;
    df.payload = resp.body;
    const util::Bytes denc = df.encode();
    out.insert(out.end(), denc.begin(), denc.end());
  }
  return out;
}

}  // namespace ednsm::http
