// HTTP/2 framing (RFC 9113) — the subset a DoH exchange uses.
//
// Frame codec for DATA, HEADERS, RST_STREAM, SETTINGS, PING, GOAWAY and
// WINDOW_UPDATE, plus client/server connection state machines that multiplex
// requests over odd-numbered streams with HPACK header compression. CONTINUATION
// is unnecessary because our header blocks are far below the frame size limit;
// PUSH_PROMISE and priorities are not used by DoH.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "http/h1.h"  // shared Request/Response representation
#include "http/hpack.h"
#include "util/result.h"

namespace ednsm::http {

enum class FrameType : std::uint8_t {
  Data = 0x0,
  Headers = 0x1,
  RstStream = 0x3,
  Settings = 0x4,
  Ping = 0x6,
  GoAway = 0x7,
  WindowUpdate = 0x8,
};

inline constexpr std::uint8_t kFlagEndStream = 0x1;
inline constexpr std::uint8_t kFlagEndHeaders = 0x4;
inline constexpr std::uint8_t kFlagAck = 0x1;  // SETTINGS/PING

struct Frame {
  FrameType type = FrameType::Data;
  std::uint8_t flags = 0;
  std::uint32_t stream_id = 0;
  util::Bytes payload;

  [[nodiscard]] util::Bytes encode() const;
};

// Parse a byte run into consecutive frames (fails on a partial trailing frame:
// the simulated TCP layer delivers whole messages, so partials are bugs).
[[nodiscard]] Result<std::vector<Frame>> decode_frames(std::span<const std::uint8_t> wire);

// The connection preface a client must send first (RFC 9113 §3.4).
[[nodiscard]] std::span<const std::uint8_t> client_preface() noexcept;

// ---- client session ---------------------------------------------------------

// Serializes requests into frame runs and reassembles responses. One session
// per TLS connection; stream ids advance 1, 3, 5, ...
class H2ClientSession {
 public:
  using ResponseHandler = std::function<void(std::uint32_t stream_id, Result<Response>)>;

  // Frame run for one request. The first call prepends preface + SETTINGS.
  [[nodiscard]] util::Bytes serialize_request(const Request& req, std::uint32_t& stream_id_out);

  // Feed bytes from the server; fires the handler for each completed stream.
  void feed(std::span<const std::uint8_t> wire, const ResponseHandler& on_response);

  // Exchange stamping for QueryTiming::exchange: record when the frames for
  // `stream_id` were handed to the transport; `finish_exchange` returns the
  // request->response duration and forgets the stamp (zero if never stamped).
  void stamp_request(std::uint32_t stream_id, netsim::SimTime now);
  [[nodiscard]] netsim::SimDuration finish_exchange(std::uint32_t stream_id, netsim::SimTime now);

 private:
  struct PendingStream {
    std::optional<Response> response;
    util::Bytes body;
    bool headers_done = false;
  };

  hpack::Encoder encoder_;
  hpack::Decoder decoder_;
  std::uint32_t next_stream_id_ = 1;
  bool preface_sent_ = false;
  std::vector<std::pair<std::uint32_t, PendingStream>> streams_;
  std::vector<std::pair<std::uint32_t, netsim::SimTime>> request_stamps_;
};

// ---- server session ---------------------------------------------------------

class H2ServerSession {
 public:
  using RequestHandler = std::function<void(std::uint32_t stream_id, Result<Request>)>;

  // Feed bytes from the client; fires the handler per completed request.
  // Handles the preface and answers SETTINGS with an ack in `serialize` calls.
  void feed(std::span<const std::uint8_t> wire, const RequestHandler& on_request);

  // Frame run answering `stream_id`. Includes the pending SETTINGS ack if due.
  [[nodiscard]] util::Bytes serialize_response(std::uint32_t stream_id, const Response& resp);

 private:
  hpack::Encoder encoder_;
  hpack::Decoder decoder_;
  bool preface_seen_ = false;
  bool settings_ack_due_ = false;
  std::vector<std::pair<std::uint32_t, Request>> partial_;  // HEADERS seen, DATA pending
};

}  // namespace ednsm::http
