#include "http/hpack.h"

namespace ednsm::http::hpack {

const std::vector<Header>& static_table() {
  static const std::vector<Header> kTable = {
      {":authority", ""},
      {":method", "GET"},
      {":method", "POST"},
      {":path", "/"},
      {":path", "/index.html"},
      {":scheme", "http"},
      {":scheme", "https"},
      {":status", "200"},
      {":status", "204"},
      {":status", "206"},
      {":status", "304"},
      {":status", "400"},
      {":status", "404"},
      {":status", "500"},
      {"accept-charset", ""},
      {"accept-encoding", "gzip, deflate"},
      {"accept-language", ""},
      {"accept-ranges", ""},
      {"accept", ""},
      {"access-control-allow-origin", ""},
      {"age", ""},
      {"allow", ""},
      {"authorization", ""},
      {"cache-control", ""},
      {"content-disposition", ""},
      {"content-encoding", ""},
      {"content-language", ""},
      {"content-length", ""},
      {"content-location", ""},
      {"content-range", ""},
      {"content-type", ""},
      {"cookie", ""},
      {"date", ""},
      {"etag", ""},
      {"expect", ""},
      {"expires", ""},
      {"from", ""},
      {"host", ""},
      {"if-match", ""},
      {"if-modified-since", ""},
      {"if-none-match", ""},
      {"if-range", ""},
      {"if-unmodified-since", ""},
      {"last-modified", ""},
      {"link", ""},
      {"location", ""},
      {"max-forwards", ""},
      {"proxy-authenticate", ""},
      {"proxy-authorization", ""},
      {"range", ""},
      {"referer", ""},
      {"refresh", ""},
      {"retry-after", ""},
      {"server", ""},
      {"set-cookie", ""},
      {"strict-transport-security", ""},
      {"transfer-encoding", ""},
      {"user-agent", ""},
      {"vary", ""},
      {"via", ""},
      {"www-authenticate", ""},
  };
  return kTable;
}

void encode_integer(util::Bytes& out, std::uint8_t prefix_bits, std::uint8_t first_byte_flags,
                    std::uint64_t value) {
  const std::uint64_t max_prefix = (1ULL << prefix_bits) - 1;
  if (value < max_prefix) {
    out.push_back(static_cast<std::uint8_t>(first_byte_flags | value));
    return;
  }
  out.push_back(static_cast<std::uint8_t>(first_byte_flags | max_prefix));
  value -= max_prefix;
  while (value >= 128) {
    out.push_back(static_cast<std::uint8_t>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

Result<std::uint64_t> decode_integer(std::span<const std::uint8_t> in, std::size_t& pos,
                                     std::uint8_t prefix_bits) {
  if (pos >= in.size()) return Err{std::string("hpack: truncated integer")};
  const std::uint64_t max_prefix = (1ULL << prefix_bits) - 1;
  std::uint64_t value = in[pos++] & max_prefix;
  if (value < max_prefix) return value;

  std::uint32_t shift = 0;
  while (true) {
    if (pos >= in.size()) return Err{std::string("hpack: truncated integer")};
    if (shift > 56) return Err{std::string("hpack: integer overflow")};
    const std::uint8_t byte = in[pos++];
    value += static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

namespace {

constexpr std::size_t entry_size(const Header& h) {
  return h.first.size() + h.second.size() + 32;  // RFC 7541 §4.1
}

void encode_string(util::Bytes& out, std::string_view s) {
  encode_integer(out, 7, 0x00, s.size());  // H bit = 0 (no Huffman)
  out.insert(out.end(), s.begin(), s.end());
}

Result<std::string> decode_string(std::span<const std::uint8_t> in, std::size_t& pos) {
  if (pos >= in.size()) return Err{std::string("hpack: truncated string")};
  const bool huffman = (in[pos] & 0x80) != 0;
  auto len_r = decode_integer(in, pos, 7);
  if (!len_r) return Err{len_r.error()};
  if (huffman) return Err{std::string("hpack: Huffman coding not supported")};
  const std::size_t len = static_cast<std::size_t>(len_r.value());
  if (pos + len > in.size()) return Err{std::string("hpack: truncated string body")};
  std::string s(reinterpret_cast<const char*>(in.data() + pos), len);
  pos += len;
  return s;
}

}  // namespace

void DynamicTable::insert(Header h) {
  size_ += entry_size(h);
  entries_.push_front(std::move(h));
  evict();
}

void DynamicTable::evict() {
  while (size_ > max_size_ && !entries_.empty()) {
    size_ -= entry_size(entries_.back());
    entries_.pop_back();
  }
}

void DynamicTable::set_max_size(std::size_t max) {
  max_size_ = max;
  evict();
}

const Header* DynamicTable::at(std::size_t index) const {
  if (index >= entries_.size()) return nullptr;
  return &entries_[index];
}

std::size_t DynamicTable::find(const Header& h) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i] == h) return i;
  }
  return npos;
}

util::Bytes Encoder::encode(const std::vector<Header>& headers) {
  util::Bytes out;
  const auto& st = static_table();
  for (const Header& h : headers) {
    // 1) Exact match in the static table -> indexed field.
    std::size_t idx = 0;
    for (std::size_t i = 0; i < st.size(); ++i) {
      if (st[i] == h) {
        idx = i + 1;
        break;
      }
    }
    if (idx == 0) {
      // 2) Exact match in the dynamic table.
      const std::size_t d = table_.find(h);
      if (d != DynamicTable::npos) idx = st.size() + 1 + d;
    }
    if (idx != 0) {
      encode_integer(out, 7, 0x80, idx);
      continue;
    }
    // 3) Literal with incremental indexing; reference a static name if any.
    std::size_t name_idx = 0;
    for (std::size_t i = 0; i < st.size(); ++i) {
      if (st[i].first == h.first) {
        name_idx = i + 1;
        break;
      }
    }
    encode_integer(out, 6, 0x40, name_idx);
    if (name_idx == 0) encode_string(out, h.first);
    encode_string(out, h.second);
    table_.insert(h);
  }
  return out;
}

Result<std::vector<Header>> Decoder::decode(std::span<const std::uint8_t> block) {
  std::vector<Header> out;
  const auto& st = static_table();
  std::size_t pos = 0;

  auto lookup = [&](std::uint64_t index) -> Result<Header> {
    if (index == 0) return Err{std::string("hpack: zero index")};
    if (index <= st.size()) return st[static_cast<std::size_t>(index - 1)];
    const Header* h = table_.at(static_cast<std::size_t>(index - st.size() - 1));
    if (h == nullptr) return Err{std::string("hpack: index beyond tables")};
    return *h;
  };

  while (pos < block.size()) {
    const std::uint8_t b = block[pos];
    if ((b & 0x80) != 0) {  // indexed header field
      auto idx = decode_integer(block, pos, 7);
      if (!idx) return Err{idx.error()};
      auto h = lookup(idx.value());
      if (!h) return Err{h.error()};
      out.push_back(std::move(h).value());
      continue;
    }
    if ((b & 0xE0) == 0x20) {  // dynamic table size update
      auto size = decode_integer(block, pos, 5);
      if (!size) return Err{size.error()};
      table_.set_max_size(static_cast<std::size_t>(size.value()));
      continue;
    }
    // Literal forms: with incremental indexing (01), without (0000), never (0001).
    const bool incremental = (b & 0xC0) == 0x40;
    const std::uint8_t prefix = incremental ? 6 : 4;
    auto name_idx = decode_integer(block, pos, prefix);
    if (!name_idx) return Err{name_idx.error()};

    Header h;
    if (name_idx.value() != 0) {
      auto named = lookup(name_idx.value());
      if (!named) return Err{named.error()};
      h.first = named.value().first;
    } else {
      auto name = decode_string(block, pos);
      if (!name) return Err{name.error()};
      h.first = std::move(name).value();
    }
    auto value = decode_string(block, pos);
    if (!value) return Err{value.error()};
    h.second = std::move(value).value();

    if (incremental) table_.insert(h);
    out.push_back(std::move(h));
  }
  return out;
}

}  // namespace ednsm::http::hpack
