// HPACK header compression (RFC 7541) — the subset an HTTP/2 DoH exchange
// uses: the full static table, a size-bounded dynamic table with eviction,
// indexed header fields, literals with/without incremental indexing, and
// integer prefix coding. Huffman string coding is not implemented (the H bit
// is always 0, which is conformant; Huffman is an optional space
// optimization).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace ednsm::http::hpack {

using Header = std::pair<std::string, std::string>;

// RFC 7541 Appendix A. Index 1-based; index 0 is invalid on the wire.
[[nodiscard]] const std::vector<Header>& static_table();

// HPACK integer with an n-bit prefix (RFC 7541 §5.1).
void encode_integer(util::Bytes& out, std::uint8_t prefix_bits, std::uint8_t first_byte_flags,
                    std::uint64_t value);
[[nodiscard]] Result<std::uint64_t> decode_integer(std::span<const std::uint8_t> in,
                                                   std::size_t& pos, std::uint8_t prefix_bits);

class DynamicTable {
 public:
  explicit DynamicTable(std::size_t max_size = 4096) : max_size_(max_size) {}

  void insert(Header h);
  // 1-based index into the combined address space *after* the static table.
  [[nodiscard]] const Header* at(std::size_t index) const;  // 0-based into dynamic part
  [[nodiscard]] std::size_t count() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  void set_max_size(std::size_t max);

  // Find an entry equal to (name, value); returns 0-based index or npos.
  [[nodiscard]] std::size_t find(const Header& h) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  void evict();

  std::deque<Header> entries_;  // front = most recent (index 62 on the wire)
  std::size_t size_ = 0;
  std::size_t max_size_;
};

class Encoder {
 public:
  // Encode a header block. Headers found in either table are emitted as
  // indexed fields; everything else becomes a literal with incremental
  // indexing (so repeated DoH requests compress to a few bytes).
  [[nodiscard]] util::Bytes encode(const std::vector<Header>& headers);

 private:
  DynamicTable table_;
};

class Decoder {
 public:
  [[nodiscard]] Result<std::vector<Header>> decode(std::span<const std::uint8_t> block);

 private:
  DynamicTable table_;
};

}  // namespace ednsm::http::hpack
