#include "monitor/diagnose.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <tuple>

#include "geo/vantage.h"

namespace ednsm::monitor {

namespace {

constexpr double kAvailabilityDropAffected = 0.2;  // baseline -> window drop
constexpr double kLatencyRiseAffected = 1.5;       // window / baseline median
constexpr double kNoBaselineAffectedBelow = 0.8;   // absolute, epoch-0 events

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

std::string fmt(const char* spec, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return std::string(buf);
}

// Continent of a vantage id; "Unknown" instead of the registry's throwing
// lookup so hand-written specs with ad-hoc ids stay diagnosable.
std::string region_of_vantage(const std::string& id) {
  for (const geo::VantagePoint& v : geo::paper_vantage_points()) {
    if (v.id == id) return std::string(geo::to_string(v.continent));
  }
  return "Unknown";
}

DiagnosisScope classify_scope(const std::vector<obs::QueryEvidence>& all_rows,
                              int baseline_from, int baseline_to, int window_from,
                              int window_to) {
  // Deterministic per-vantage split: sorted map, evidence order irrelevant.
  std::map<std::string, std::vector<obs::QueryEvidence>> by_vantage;
  for (const obs::QueryEvidence& row : all_rows) by_vantage[row.vantage].push_back(row);

  DiagnosisScope scope;
  std::set<std::string> regions;
  std::uint64_t window_queries = 0;
  for (const auto& [vantage, rows] : by_vantage) {
    const obs::PhaseProfile window = obs::profile_phases(rows, window_from, window_to);
    if (window.queries == 0) continue;
    ++scope.vantages_observed;
    window_queries += window.queries;
    const obs::PhaseProfile base = obs::profile_phases(rows, baseline_from, baseline_to);
    bool affected = false;
    if (base.queries == 0) {
      affected = window.availability < kNoBaselineAffectedBelow;
    } else {
      if (window.availability < base.availability - kAvailabilityDropAffected) affected = true;
      if (base.response_ms > 0.0 && window.response_ms > kLatencyRiseAffected * base.response_ms) {
        affected = true;
      }
    }
    if (affected) {
      scope.affected_vantages.push_back(vantage);
      regions.insert(region_of_vantage(vantage));
    }
  }
  scope.affected_regions.assign(regions.begin(), regions.end());

  if (window_queries == 0) {
    scope.classification = "no-data";
  } else if (scope.affected_vantages.size() <= 1) {
    scope.classification = "single-vantage";
  } else if (static_cast<int>(scope.affected_vantages.size()) == scope.vantages_observed) {
    scope.classification = "global";
  } else {
    scope.classification = "regional";
  }
  return scope;
}

std::vector<CauseVerdict> rank_causes(const Diagnosis& d) {
  const obs::StageBreakdown& st = d.stages;
  const std::uint64_t failures = st.total();
  const std::uint64_t successes = d.window.queries - d.window.failures;
  const double fail_frac =
      d.window.queries > 0
          ? static_cast<double>(d.window.failures) / static_cast<double>(d.window.queries)
          : 0.0;
  const auto share = [&](std::uint64_t count) {
    return failures > 0 ? static_cast<double>(count) / static_cast<double>(failures) : 0.0;
  };
  const std::size_t observed = static_cast<std::size_t>(std::max(d.scope.vantages_observed, 1));
  const double scope_frac =
      static_cast<double>(std::max<std::size_t>(d.scope.affected_vantages.size(),
                                                d.scope.classification == "single-vantage" ? 1 : 0)) /
      static_cast<double>(observed);

  const double base_hs_ms = d.baseline.tcp_ms + d.baseline.tls_ms + d.baseline.quic_ms;
  const double hs_delta_ms = d.delta.tcp_ms + d.delta.tls_ms + d.delta.quic_ms;
  const double hs_rise =
      base_hs_ms > 0.0 ? clamp01(std::max(0.0, hs_delta_ms) / base_hs_ms) : 0.0;
  const double lat_rise = d.baseline.response_ms > 0.0
                              ? clamp01(std::max(0.0, d.delta.response_ms) / d.baseline.response_ms)
                              : 0.0;
  const double ex_rise = d.baseline.exchange_ms > 0.0
                             ? clamp01(std::max(0.0, d.delta.exchange_ms) / d.baseline.exchange_ms)
                             : 0.0;
  const double reuse_shift = clamp01(2.0 * std::fabs(d.delta.reused_fraction));

  std::vector<CauseVerdict> verdicts;
  {
    CauseVerdict v;
    v.cause = "resolver-outage";
    v.score = clamp01(fail_frac * (share(st.connect) + share(st.timeout)) * scope_frac);
    v.evidence = st.connect + st.timeout;
    v.rationale = fmt("%.0f", fail_frac * 100.0) + "% of " + std::to_string(d.window.queries) +
                  " window queries failed; connect+timeout stage share " +
                  fmt("%.0f", (share(st.connect) + share(st.timeout)) * 100.0) + "%; " +
                  std::to_string(d.scope.affected_vantages.size()) + "/" +
                  std::to_string(d.scope.vantages_observed) + " vantages affected";
    verdicts.push_back(std::move(v));
  }
  {
    CauseVerdict v;
    v.cause = "handshake-layer-failure";
    v.score = clamp01(fail_frac * share(st.handshake) + 0.5 * (1.0 - fail_frac) * hs_rise);
    v.evidence = st.handshake;
    v.rationale = "handshake-stage share " + fmt("%.0f", share(st.handshake) * 100.0) +
                  "% of failures; handshake median delta " + fmt("%+.1f", hs_delta_ms) + " ms";
    verdicts.push_back(std::move(v));
  }
  {
    CauseVerdict v;
    v.cause = "path-degradation";
    // A latency rise seen from every vantage at once points at the resolver,
    // not the paths to it; halve the path score when the scope is global.
    v.score = clamp01((1.0 - fail_frac) * lat_rise *
                      (d.scope.classification == "global" ? 0.5 : 1.0));
    v.evidence = successes;
    v.rationale = "median response " + fmt("%+.1f", d.delta.response_ms) + " ms vs baseline (" +
                  fmt("%.1f", d.baseline.response_ms) + " -> " + fmt("%.1f", d.window.response_ms) +
                  "); scope " + d.scope.classification;
    verdicts.push_back(std::move(v));
  }
  {
    CauseVerdict v;
    v.cause = "cache-behavior-shift";
    v.score = clamp01((1.0 - fail_frac) * 0.5 * (ex_rise + reuse_shift));
    v.evidence = successes;
    v.rationale = "exchange median delta " + fmt("%+.1f", d.delta.exchange_ms) +
                  " ms; reused-connection fraction delta " + fmt("%+.2f", d.delta.reused_fraction);
    verdicts.push_back(std::move(v));
  }
  std::sort(verdicts.begin(), verdicts.end(), [](const CauseVerdict& a, const CauseVerdict& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.cause < b.cause;
  });
  return verdicts;
}

}  // namespace

core::Json CauseVerdict::to_json() const {
  core::JsonObject o;
  o["cause"] = cause;
  o["score"] = score;
  o["evidence"] = evidence;
  o["rationale"] = rationale;
  return core::Json(std::move(o));
}

Result<CauseVerdict> CauseVerdict::from_json(const core::Json& j) {
  if (!j.is_object()) return Err{std::string("cause verdict: not an object")};
  CauseVerdict v;
  if (!j.at("cause").is_string()) return Err{std::string("cause verdict: missing cause")};
  v.cause = j.at("cause").as_string();
  if (j.at("score").is_number()) v.score = j.at("score").as_number();
  if (j.at("evidence").is_number()) {
    v.evidence = static_cast<std::uint64_t>(j.at("evidence").as_number());
  }
  if (j.at("rationale").is_string()) v.rationale = j.at("rationale").as_string();
  return v;
}

core::Json DiagnosisScope::to_json() const {
  core::JsonObject o;
  o["classification"] = classification;
  core::JsonArray vantages;
  vantages.reserve(affected_vantages.size());
  for (const std::string& v : affected_vantages) vantages.push_back(v);
  o["affected_vantages"] = core::Json(std::move(vantages));
  core::JsonArray region_arr;
  region_arr.reserve(affected_regions.size());
  for (const std::string& r : affected_regions) region_arr.push_back(r);
  o["affected_regions"] = core::Json(std::move(region_arr));
  o["vantages_observed"] = vantages_observed;
  return core::Json(std::move(o));
}

Result<DiagnosisScope> DiagnosisScope::from_json(const core::Json& j) {
  if (!j.is_object()) return Err{std::string("diagnosis scope: not an object")};
  DiagnosisScope s;
  if (!j.at("classification").is_string()) {
    return Err{std::string("diagnosis scope: missing classification")};
  }
  s.classification = j.at("classification").as_string();
  if (j.at("affected_vantages").is_array()) {
    for (const core::Json& v : j.at("affected_vantages").as_array()) {
      if (!v.is_string()) return Err{std::string("diagnosis scope: vantage must be a string")};
      s.affected_vantages.push_back(v.as_string());
    }
  }
  if (j.at("affected_regions").is_array()) {
    for (const core::Json& r : j.at("affected_regions").as_array()) {
      if (!r.is_string()) return Err{std::string("diagnosis scope: region must be a string")};
      s.affected_regions.push_back(r.as_string());
    }
  }
  if (j.at("vantages_observed").is_number()) {
    s.vantages_observed = static_cast<int>(j.at("vantages_observed").as_number());
  }
  return s;
}

core::Json Diagnosis::to_json() const {
  core::JsonObject o;
  o["version"] = version;
  o["event"] = event.to_json();
  o["baseline_from"] = baseline_from;
  o["baseline_to"] = baseline_to;
  o["dominant_stage"] = dominant_stage;
  o["stages"] = stages.to_json();
  o["baseline"] = baseline.to_json();
  o["window"] = window.to_json();
  o["delta"] = delta.to_json();
  o["scope"] = scope.to_json();
  core::JsonArray verdict_arr;
  verdict_arr.reserve(verdicts.size());
  for (const CauseVerdict& v : verdicts) verdict_arr.push_back(v.to_json());
  o["verdicts"] = core::Json(std::move(verdict_arr));
  core::JsonArray exemplar_arr;
  exemplar_arr.reserve(exemplars.size());
  for (const obs::Exemplar& e : exemplars) exemplar_arr.push_back(e.to_json());
  o["exemplars"] = core::Json(std::move(exemplar_arr));
  return core::Json(std::move(o));
}

Result<Diagnosis> Diagnosis::from_json(const core::Json& j) {
  if (!j.is_object()) return Err{std::string("diagnosis: not an object")};
  Diagnosis d;
  if (j.at("version").is_number()) d.version = static_cast<int>(j.at("version").as_number());
  if (d.version != kDiagnosisVersion) {
    return Err{std::string("diagnosis: unsupported version ") + std::to_string(d.version)};
  }
  auto event = MonitorEvent::from_json(j.at("event"));
  if (!event) return Err{event.error()};
  d.event = std::move(event).value();
  if (j.at("baseline_from").is_number()) {
    d.baseline_from = static_cast<int>(j.at("baseline_from").as_number());
  }
  if (j.at("baseline_to").is_number()) {
    d.baseline_to = static_cast<int>(j.at("baseline_to").as_number());
  }
  if (j.at("dominant_stage").is_string()) d.dominant_stage = j.at("dominant_stage").as_string();
  if (!j.at("stages").is_null()) {
    auto stages = obs::StageBreakdown::from_json(j.at("stages"));
    if (!stages) return Err{stages.error()};
    d.stages = stages.value();
  }
  if (!j.at("baseline").is_null()) {
    auto baseline = obs::PhaseProfile::from_json(j.at("baseline"));
    if (!baseline) return Err{baseline.error()};
    d.baseline = baseline.value();
  }
  if (!j.at("window").is_null()) {
    auto window = obs::PhaseProfile::from_json(j.at("window"));
    if (!window) return Err{window.error()};
    d.window = window.value();
  }
  if (!j.at("delta").is_null()) {
    auto delta = obs::PhaseDelta::from_json(j.at("delta"));
    if (!delta) return Err{delta.error()};
    d.delta = delta.value();
  }
  if (!j.at("scope").is_null()) {
    auto scope = DiagnosisScope::from_json(j.at("scope"));
    if (!scope) return Err{scope.error()};
    d.scope = std::move(scope).value();
  }
  if (j.at("verdicts").is_array()) {
    for (const core::Json& v : j.at("verdicts").as_array()) {
      auto verdict = CauseVerdict::from_json(v);
      if (!verdict) return Err{verdict.error()};
      d.verdicts.push_back(std::move(verdict).value());
    }
  }
  if (j.at("exemplars").is_array()) {
    for (const core::Json& e : j.at("exemplars").as_array()) {
      auto exemplar = obs::Exemplar::from_json(e);
      if (!exemplar) return Err{exemplar.error()};
      d.exemplars.push_back(std::move(exemplar).value());
    }
  }
  return d;
}

core::Json DiagnosisReport::to_json() const {
  core::JsonObject o;
  o["version"] = version;
  core::JsonArray arr;
  arr.reserve(diagnoses.size());
  for (const Diagnosis& d : diagnoses) arr.push_back(d.to_json());
  o["diagnoses"] = core::Json(std::move(arr));
  return core::Json(std::move(o));
}

Result<DiagnosisReport> DiagnosisReport::from_json(const core::Json& j) {
  if (!j.is_object()) return Err{std::string("diagnosis report: not an object")};
  DiagnosisReport report;
  if (j.at("version").is_number()) {
    report.version = static_cast<int>(j.at("version").as_number());
  }
  if (report.version != kDiagnosisVersion) {
    return Err{std::string("diagnosis report: unsupported version ") +
               std::to_string(report.version)};
  }
  if (j.at("diagnoses").is_array()) {
    for (const core::Json& d : j.at("diagnoses").as_array()) {
      auto diagnosis = Diagnosis::from_json(d);
      if (!diagnosis) return Err{diagnosis.error()};
      report.diagnoses.push_back(std::move(diagnosis).value());
    }
  }
  return report;
}

void DiagnosisReport::write_json(std::ostream& os, int indent) const {
  os << to_json().dump(indent) << '\n';
}

std::vector<obs::QueryEvidence> collect_evidence(const core::CampaignResult& result,
                                                 std::string_view resolver, int epoch) {
  std::vector<obs::QueryEvidence> rows;
  for (const core::ResultRecord& r : result.records) {
    if (r.resolver != resolver) continue;
    obs::QueryEvidence row;
    row.vantage = r.vantage;
    row.domain = r.domain;
    row.epoch = epoch;
    row.round = r.round;
    row.ok = r.ok;
    row.reused = r.connection_reused;
    row.response_ms = r.response_ms;
    row.tcp_ms = r.tcp_handshake_ms;
    row.tls_ms = r.tls_handshake_ms;
    row.quic_ms = r.quic_handshake_ms;
    row.wait_ms = r.pool_wait_ms;
    row.exchange_ms = r.exchange_ms;
    row.failure_stage = r.failure_stage;
    row.error_class = r.error_class;
    rows.push_back(std::move(row));
  }
  return rows;
}

Diagnosis diagnose_event(const MonitorEvent& event,
                         const std::vector<obs::QueryEvidence>& evidence,
                         const DiagnoseOptions& opts) {
  Diagnosis d;
  d.event = event;
  d.baseline_from = std::max(0, event.start_epoch - std::max(opts.baseline_epochs, 1));
  d.baseline_to = event.start_epoch - 1;  // < baseline_from when no pre-event epochs exist

  // The event's own (vantage, resolver) pair carries the stage/phase story;
  // the full evidence set (all vantages) feeds the scope classifier.
  std::vector<obs::QueryEvidence> pair_rows;
  for (const obs::QueryEvidence& row : evidence) {
    if (row.vantage == event.vantage) pair_rows.push_back(row);
  }

  d.stages = obs::count_stages(pair_rows, event.start_epoch, event.end_epoch);
  d.dominant_stage = std::string(d.stages.dominant());
  d.baseline = obs::profile_phases(pair_rows, d.baseline_from, d.baseline_to);
  if (d.baseline.queries == 0) d.baseline = obs::PhaseProfile{};  // canonical "no baseline"
  d.window = obs::profile_phases(pair_rows, event.start_epoch, event.end_epoch);
  d.delta = obs::phase_delta(d.baseline, d.window);
  d.scope = classify_scope(evidence, d.baseline_from, d.baseline_to, event.start_epoch,
                           event.end_epoch);
  d.verdicts = rank_causes(d);
  d.exemplars =
      obs::pick_exemplars(pair_rows, event.start_epoch, event.end_epoch, opts.max_exemplars);
  for (obs::Exemplar& e : d.exemplars) {
    e.flight_ref = "epoch" + std::to_string(e.epoch) + "/" + e.vantage + "/" + event.resolver +
                   "/r" + std::to_string(e.round) + "/" + e.domain;
  }
  return d;
}

Result<DiagnosisReport> diagnose_events(const MonitorResult& result, int threads,
                                        const DiagnoseOptions& opts) {
  if (auto v = result.spec.validate(); !v) return Err{v.error()};
  if (threads < 1) return Err{std::string("diagnose: threads must be >= 1")};
  if (opts.baseline_epochs < 1) {
    return Err{std::string("diagnose: baseline epochs must be >= 1")};
  }

  DiagnosisReport report;
  if (result.events.empty()) return report;

  // Union of epochs any event's evidence window touches; each is re-run once
  // and shared across events.
  std::set<int> needed;
  for (const MonitorEvent& ev : result.events) {
    const int from = std::max(0, ev.start_epoch - opts.baseline_epochs);
    const int to = std::min(ev.end_epoch, result.spec.epochs - 1);
    for (int e = from; e <= to; ++e) needed.insert(e);
  }
  const std::vector<std::uint64_t> seeds =
      core::shard_seeds(result.spec.base.seed, static_cast<std::size_t>(result.spec.epochs));
  std::map<int, core::CampaignResult> campaigns;
  for (const int e : needed) {
    campaigns.emplace(e, core::run_parallel_campaign(
                             epoch_campaign_spec(result.spec,
                                                 seeds[static_cast<std::size_t>(e)], e),
                             threads));
  }

  // Evidence rows per resolver (events on the same resolver share them).
  std::map<std::string, std::vector<obs::QueryEvidence>> by_resolver;
  for (const MonitorEvent& ev : result.events) {
    const auto [it, inserted] = by_resolver.try_emplace(ev.resolver);
    if (!inserted) continue;
    for (const auto& [e, campaign] : campaigns) {
      std::vector<obs::QueryEvidence> rows = collect_evidence(campaign, ev.resolver, e);
      it->second.insert(it->second.end(), std::make_move_iterator(rows.begin()),
                        std::make_move_iterator(rows.end()));
    }
  }

  report.diagnoses.reserve(result.events.size());
  for (const MonitorEvent& ev : result.events) {
    report.diagnoses.push_back(diagnose_event(ev, by_resolver.at(ev.resolver), opts));
  }
  return report;
}

std::string render_diagnosis(const Diagnosis& d) {
  std::ostringstream os;
  const MonitorEvent& ev = d.event;
  os << '[' << ev.type << "] " << ev.vantage << " / " << ev.resolver << " (" << ev.protocol
     << ") epochs " << ev.start_epoch << ".." << ev.end_epoch << '\n';
  if (!d.verdicts.empty()) {
    const CauseVerdict& top = d.verdicts.front();
    os << "  verdict: " << top.cause << " (score " << fmt("%.2f", top.score) << ", evidence "
       << top.evidence << ") — " << top.rationale << '\n';
  }
  os << "  dominant stage: " << (d.dominant_stage.empty() ? "none" : d.dominant_stage) << " ("
     << d.stages.connect << " connect / " << d.stages.handshake << " handshake / "
     << d.stages.query << " query / " << d.stages.timeout << " timeout / " << d.stages.other
     << " other)\n";
  os << "  scope: " << d.scope.classification << " (" << d.scope.affected_vantages.size() << '/'
     << d.scope.vantages_observed << " vantages";
  if (!d.scope.affected_regions.empty()) {
    os << "; regions";
    for (const std::string& r : d.scope.affected_regions) os << ' ' << r;
  }
  os << ")\n";
  const auto profile_line = [&os](const char* label, const obs::PhaseProfile& p, int from,
                                  int to) {
    os << "  " << label << " epochs " << from << ".." << to << ": avail "
       << fmt("%.1f", p.availability * 100.0) << "% of " << p.queries << ", median "
       << fmt("%.1f", p.response_ms) << " ms (tcp " << fmt("%.1f", p.tcp_ms) << " / tls "
       << fmt("%.1f", p.tls_ms) << " / quic " << fmt("%.1f", p.quic_ms) << " / wait "
       << fmt("%.1f", p.wait_ms) << " / exch " << fmt("%.1f", p.exchange_ms) << ", reuse "
       << fmt("%.0f", p.reused_fraction * 100.0) << "%)\n";
  };
  if (d.baseline_to >= d.baseline_from) {
    profile_line("baseline", d.baseline, d.baseline_from, d.baseline_to);
  } else {
    os << "  baseline: none (event starts at epoch " << ev.start_epoch << ")\n";
  }
  profile_line("window  ", d.window, ev.start_epoch, ev.end_epoch);
  os << "  delta: response " << fmt("%+.1f", d.delta.response_ms) << " ms, availability "
     << fmt("%+.1f", d.delta.availability * 100.0) << " pp\n";
  os << "  ranked causes:";
  for (const CauseVerdict& v : d.verdicts) os << ' ' << v.cause << '=' << fmt("%.2f", v.score);
  os << '\n';
  for (const obs::Exemplar& e : d.exemplars) {
    os << "  exemplar: " << (e.ok ? "SLOW" : "FAIL") << ' ' << e.flight_ref << ' '
       << fmt("%.1f", e.response_ms) << " ms";
    if (!e.ok) {
      os << ' ' << (e.failure_stage.empty() ? "unknown" : e.failure_stage) << " ("
         << e.error_class << ')';
    }
    os << '\n';
  }
  return std::move(os).str();
}

std::string render_diagnosis_report(const DiagnosisReport& report) {
  if (report.diagnoses.empty()) return "no events to diagnose\n";
  std::string out;
  for (const Diagnosis& d : report.diagnoses) {
    if (!out.empty()) out += '\n';
    out += render_diagnosis(d);
  }
  return out;
}

}  // namespace ednsm::monitor
