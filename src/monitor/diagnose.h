// Root-cause diagnosis for monitor events: given a MonitorResult, re-derive
// the per-query evidence behind each event and explain it.
//
// The persisted monitor output carries folded series, not per-query records,
// so the engine re-runs the relevant epochs' campaigns from the spec — epoch
// seeds come from core::shard_seeds exactly as run_monitor derived them, so
// the evidence is the same byte-for-byte record stream the event was detected
// from (for any thread count). Each event gets:
//
//   - a failure-stage breakdown over the event window and the dominant stage,
//   - per-phase latency profiles (tcp/tls/quic/wait/exchange medians) for the
//     event window and a rolling pre-event baseline, plus their delta,
//   - a scope classification (single-vantage / regional / global) from the
//     geo layer's vantage continents,
//   - a ranked cause verdict (resolver-outage, handshake-layer-failure,
//     path-degradation, cache-behavior-shift) with evidence counts and a
//     human-readable rationale,
//   - exemplar queries with flight-recorder-style refs.
//
// Scores are fixed arithmetic over the aggregates (DESIGN.md "Diagnosis and
// attribution" documents the formulas); the whole report is a pure function
// of (MonitorResult spec, options) and is serialized through a versioned
// codec gated by tests/golden/monitor_diagnosis.json.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "monitor/monitor.h"
#include "obs/attribution.h"

namespace ednsm::monitor {

inline constexpr int kDiagnosisVersion = 1;

// One candidate cause with its score in [0, 1] and supporting evidence count.
struct CauseVerdict {
  std::string cause;       // "resolver-outage" | "path-degradation" |
                           // "handshake-layer-failure" | "cache-behavior-shift"
  double score = 0.0;
  std::uint64_t evidence = 0;  // queries backing the verdict
  std::string rationale;

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static Result<CauseVerdict> from_json(const core::Json& j);
};

// How widely the event window's impact was observed across the spec's
// vantages (the event itself names one vantage; scope says who else saw it).
struct DiagnosisScope {
  std::string classification;  // "single-vantage" | "regional" | "global" | "no-data"
  std::vector<std::string> affected_vantages;  // sorted
  std::vector<std::string> affected_regions;   // continents, sorted, deduped
  int vantages_observed = 0;  // vantages with evidence in the window

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static Result<DiagnosisScope> from_json(const core::Json& j);
};

struct Diagnosis {
  int version = kDiagnosisVersion;
  MonitorEvent event;
  // Pre-event baseline epochs (inclusive); from > to when the event starts
  // at epoch 0 and no baseline exists.
  int baseline_from = 0;
  int baseline_to = -1;
  std::string dominant_stage;  // "" when the window has no failures
  obs::StageBreakdown stages;  // failures inside [event.start, event.end]
  obs::PhaseProfile baseline;
  obs::PhaseProfile window;
  obs::PhaseDelta delta;  // window minus baseline
  DiagnosisScope scope;
  std::vector<CauseVerdict> verdicts;  // ranked, best first
  std::vector<obs::Exemplar> exemplars;

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static Result<Diagnosis> from_json(const core::Json& j);
};

struct DiagnosisReport {
  int version = kDiagnosisVersion;
  std::vector<Diagnosis> diagnoses;  // one per MonitorResult event, same order

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static Result<DiagnosisReport> from_json(const core::Json& j);
  void write_json(std::ostream& os, int indent = 2) const;
};

struct DiagnoseOptions {
  int baseline_epochs = 3;      // pre-event baseline width (>= 1)
  std::size_t max_exemplars = 3;
};

// Flatten one epoch's campaign records for `resolver` into evidence rows
// (all vantages; the scope classifier needs the unaffected ones too).
[[nodiscard]] std::vector<obs::QueryEvidence> collect_evidence(const core::CampaignResult& result,
                                                               std::string_view resolver,
                                                               int epoch);

// Diagnose one event from pre-collected evidence covering at least
// [baseline start, event.end_epoch] for the event's resolver.
[[nodiscard]] Diagnosis diagnose_event(const MonitorEvent& event,
                                       const std::vector<obs::QueryEvidence>& evidence,
                                       const DiagnoseOptions& opts);

// Diagnose every event in the result: re-runs the needed epochs (each once,
// shared across events) with `threads` campaign workers, then attributes.
[[nodiscard]] Result<DiagnosisReport> diagnose_events(const MonitorResult& result, int threads,
                                                      const DiagnoseOptions& opts = {});

// Plain-text rendering for the CLI (one block per diagnosis).
[[nodiscard]] std::string render_diagnosis(const Diagnosis& d);
[[nodiscard]] std::string render_diagnosis_report(const DiagnosisReport& report);

}  // namespace ednsm::monitor
