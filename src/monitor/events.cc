#include "monitor/events.h"

#include <algorithm>
#include <tuple>

namespace ednsm::monitor {

namespace {

// Emit one event per maximal run of `state` epochs inside a group.
void emit_runs(const std::vector<const SloSample*>& group, std::string_view state,
               std::string_view type, std::vector<MonitorEvent>& out) {
  std::size_t i = 0;
  while (i < group.size()) {
    if (group[i]->state != state) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j + 1 < group.size() && group[j + 1]->state == state &&
           group[j + 1]->epoch == group[j]->epoch + 1) {
      ++j;
    }
    MonitorEvent ev;
    ev.type = std::string(type);
    ev.vantage = group[i]->vantage;
    ev.resolver = group[i]->resolver;
    ev.protocol = group[i]->protocol;
    ev.start_epoch = group[i]->epoch;
    ev.end_epoch = group[j]->epoch;
    out.push_back(std::move(ev));
    i = j + 1;
  }
}

}  // namespace

core::Json MonitorEvent::to_json() const {
  core::JsonObject o;
  o["type"] = type;
  o["vantage"] = vantage;
  o["resolver"] = resolver;
  o["protocol"] = protocol;
  o["start_epoch"] = start_epoch;
  o["end_epoch"] = end_epoch;
  if (transitions != 0) o["transitions"] = transitions;
  return core::Json(std::move(o));
}

Result<MonitorEvent> MonitorEvent::from_json(const core::Json& j) {
  if (!j.is_object()) return Err{std::string("monitor event: not an object")};
  MonitorEvent e;
  if (!j.at("type").is_string() || !j.at("vantage").is_string() ||
      !j.at("resolver").is_string() || !j.at("protocol").is_string() ||
      !j.at("start_epoch").is_number() || !j.at("end_epoch").is_number()) {
    return Err{std::string("monitor event: missing required fields")};
  }
  e.type = j.at("type").as_string();
  e.vantage = j.at("vantage").as_string();
  e.resolver = j.at("resolver").as_string();
  e.protocol = j.at("protocol").as_string();
  e.start_epoch = static_cast<int>(j.at("start_epoch").as_number());
  e.end_epoch = static_cast<int>(j.at("end_epoch").as_number());
  if (j.at("transitions").is_number()) {
    e.transitions = static_cast<int>(j.at("transitions").as_number());
  }
  return e;
}

std::vector<MonitorEvent> detect_events(const std::vector<SloSample>& samples,
                                        const SloConfig& config) {
  std::vector<MonitorEvent> out;

  // Walk maximal (vantage, resolver, protocol) groups; evaluate_slos emits
  // them contiguously with ascending epochs.
  std::size_t start = 0;
  while (start < samples.size()) {
    std::size_t end = start;
    while (end + 1 < samples.size() && samples[end + 1].vantage == samples[start].vantage &&
           samples[end + 1].resolver == samples[start].resolver &&
           samples[end + 1].protocol == samples[start].protocol) {
      ++end;
    }
    std::vector<const SloSample*> group;
    group.reserve(end - start + 1);
    for (std::size_t i = start; i <= end; ++i) group.push_back(&samples[i]);

    emit_runs(group, "outage", "outage", out);
    emit_runs(group, "degraded", "degradation", out);

    int transitions = 0;
    int first_transition = 0;
    int last_transition = 0;
    for (std::size_t i = 1; i < group.size(); ++i) {
      if (group[i]->state != group[i - 1]->state) {
        if (transitions == 0) first_transition = group[i]->epoch;
        last_transition = group[i]->epoch;
        ++transitions;
      }
    }
    if (transitions >= config.flap_transitions) {
      MonitorEvent ev;
      ev.type = "flap";
      ev.vantage = group.front()->vantage;
      ev.resolver = group.front()->resolver;
      ev.protocol = group.front()->protocol;
      ev.start_epoch = first_transition;
      ev.end_epoch = last_transition;
      ev.transitions = transitions;
      out.push_back(std::move(ev));
    }

    start = end + 1;
  }

  std::sort(out.begin(), out.end(), [](const MonitorEvent& a, const MonitorEvent& b) {
    return std::tie(a.vantage, a.resolver, a.protocol, a.start_epoch, a.type) <
           std::tie(b.vantage, b.resolver, b.protocol, b.start_epoch, b.type);
  });
  return out;
}

core::Json events_to_json(const std::vector<MonitorEvent>& events) {
  core::JsonArray arr;
  arr.reserve(events.size());
  for (const MonitorEvent& e : events) arr.push_back(e.to_json());
  return core::Json(std::move(arr));
}

}  // namespace ednsm::monitor
