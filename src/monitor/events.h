// Event detection over SLO samples: collapse per-epoch states into typed
// events with exact start/end epochs.
//
// Taxonomy (DESIGN.md "Longitudinal monitoring"):
//   outage      — a maximal run of consecutive "outage" epochs for one
//                 (vantage, resolver, protocol); start/end are the first and
//                 last epoch of the run (inclusive).
//   degradation — likewise for consecutive "degraded" epochs.
//   flap        — the pair's state changed at least `flap_transitions` times
//                 across the run; start/end bracket the first and last
//                 transition. Emitted in addition to the underlying events.
#pragma once

#include <string>
#include <vector>

#include "util/json.h"
#include "monitor/slo.h"

namespace ednsm::monitor {

struct MonitorEvent {
  std::string type;  // "outage" | "degradation" | "flap"
  std::string vantage;
  std::string resolver;
  std::string protocol;
  int start_epoch = 0;
  int end_epoch = 0;    // inclusive
  int transitions = 0;  // flap events: number of state changes observed

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static Result<MonitorEvent> from_json(const core::Json& j);
};

// Detect events from samples produced by evaluate_slos (grouped by
// (vantage, resolver, protocol) with ascending epochs inside each group).
// Output is sorted by (vantage, resolver, protocol, start_epoch, type).
[[nodiscard]] std::vector<MonitorEvent> detect_events(const std::vector<SloSample>& samples,
                                                      const SloConfig& config);

// Serialize a list of events as a JSON array (the `ednsm_monitor events`
// payload and the CI smoke job's golden format).
[[nodiscard]] core::Json events_to_json(const std::vector<MonitorEvent>& events);

}  // namespace ednsm::monitor
