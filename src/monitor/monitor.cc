#include "monitor/monitor.h"

#include <ostream>

namespace ednsm::monitor {

core::Json OutageScript::to_json() const {
  core::JsonObject o;
  o["resolver"] = resolver;
  o["from_epoch"] = from_epoch;
  o["to_epoch"] = to_epoch;
  return core::Json(std::move(o));
}

Result<OutageScript> OutageScript::from_json(const core::Json& j) {
  if (!j.is_object()) return Err{std::string("outage script: not an object")};
  OutageScript s;
  if (!j.at("resolver").is_string() || !j.at("from_epoch").is_number() ||
      !j.at("to_epoch").is_number()) {
    return Err{std::string("outage script: missing required fields")};
  }
  s.resolver = j.at("resolver").as_string();
  s.from_epoch = static_cast<int>(j.at("from_epoch").as_number());
  s.to_epoch = static_cast<int>(j.at("to_epoch").as_number());
  return s;
}

Result<void> MonitorSpec::validate() const {
  if (auto v = base.validate(); !v) return Err{v.error()};
  if (epochs < 1) return Err{std::string("monitor: epochs must be >= 1")};
  if (auto v = slo.validate(); !v) return Err{v.error()};
  for (const OutageScript& o : outages) {
    if (o.resolver.empty()) return Err{std::string("monitor: outage script needs a resolver")};
    if (o.from_epoch < 0 || o.to_epoch <= o.from_epoch) {
      return Err{std::string("monitor: outage epochs must satisfy 0 <= from < to")};
    }
  }
  return {};
}

core::Json MonitorSpec::to_json() const {
  core::JsonObject o;
  o["base"] = base.to_json();
  o["epochs"] = epochs;
  core::JsonArray arr;
  arr.reserve(outages.size());
  for (const OutageScript& s : outages) arr.push_back(s.to_json());
  o["outages"] = core::Json(std::move(arr));
  o["slo"] = slo.to_json();
  return core::Json(std::move(o));
}

Result<MonitorSpec> MonitorSpec::from_json(const core::Json& j) {
  if (!j.is_object()) return Err{std::string("monitor spec: not an object")};
  MonitorSpec spec;
  auto base = core::MeasurementSpec::from_json(j.at("base"));
  if (!base) return Err{base.error()};
  spec.base = std::move(base).value();
  if (j.at("epochs").is_number()) spec.epochs = static_cast<int>(j.at("epochs").as_number());
  if (j.at("outages").is_array()) {
    for (const core::Json& e : j.at("outages").as_array()) {
      auto s = OutageScript::from_json(e);
      if (!s) return Err{s.error()};
      spec.outages.push_back(std::move(s).value());
    }
  }
  if (!j.at("slo").is_null()) {
    auto slo = SloConfig::from_json(j.at("slo"));
    if (!slo) return Err{slo.error()};
    spec.slo = slo.value();
  }
  if (auto v = spec.validate(); !v) return Err{v.error()};
  return spec;
}

core::Json EpochSummary::to_json() const {
  core::JsonObject o;
  o["epoch"] = epoch;
  o["seed"] = seed;
  o["queries"] = queries;
  o["failures"] = failures;
  o["availability"] = availability;
  return core::Json(std::move(o));
}

Result<EpochSummary> EpochSummary::from_json(const core::Json& j) {
  if (!j.is_object()) return Err{std::string("epoch summary: not an object")};
  EpochSummary s;
  if (!j.at("epoch").is_number()) return Err{std::string("epoch summary: missing epoch")};
  s.epoch = static_cast<int>(j.at("epoch").as_number());
  if (j.at("seed").is_number()) s.seed = static_cast<std::uint64_t>(j.at("seed").as_number());
  if (j.at("queries").is_number()) s.queries = static_cast<std::uint64_t>(j.at("queries").as_number());
  if (j.at("failures").is_number()) {
    s.failures = static_cast<std::uint64_t>(j.at("failures").as_number());
  }
  if (j.at("availability").is_number()) s.availability = j.at("availability").as_number();
  return s;
}

core::Json MonitorResult::to_json() const {
  core::JsonObject o;
  o["spec"] = spec.to_json();
  core::JsonArray epoch_arr;
  epoch_arr.reserve(epochs.size());
  for (const EpochSummary& e : epochs) epoch_arr.push_back(e.to_json());
  o["epochs"] = core::Json(std::move(epoch_arr));
  core::JsonObject series_obj;
  series_obj["bucket_width"] = series.bucket_width();
  core::JsonArray points;
  for (const obs::SeriesPoint& p : series.snapshot()) points.push_back(p.to_json());
  series_obj["points"] = core::Json(std::move(points));
  o["series"] = core::Json(std::move(series_obj));
  core::JsonArray slo_arr;
  slo_arr.reserve(slos.size());
  for (const SloSample& s : slos) slo_arr.push_back(s.to_json());
  o["slos"] = core::Json(std::move(slo_arr));
  o["events"] = events_to_json(events);
  return core::Json(std::move(o));
}

Result<MonitorResult> MonitorResult::from_json(const core::Json& j) {
  if (!j.is_object()) return Err{std::string("monitor result: not an object")};
  MonitorResult out;
  auto spec = MonitorSpec::from_json(j.at("spec"));
  if (!spec) return Err{spec.error()};
  out.spec = std::move(spec).value();
  if (j.at("epochs").is_array()) {
    for (const core::Json& e : j.at("epochs").as_array()) {
      auto s = EpochSummary::from_json(e);
      if (!s) return Err{s.error()};
      out.epochs.push_back(std::move(s).value());
    }
  }
  if (j.at("series").is_object()) {
    if (j.at("series").at("bucket_width").is_number()) {
      out.series =
          obs::TimeSeries(static_cast<std::int64_t>(j.at("series").at("bucket_width").as_number()));
    }
    if (j.at("series").at("points").is_array()) {
      for (const core::Json& e : j.at("series").at("points").as_array()) {
        auto p = obs::SeriesPoint::from_json(e);
        if (!p) return Err{p.error()};
        if (auto ins = out.series.insert(p.value()); !ins) return Err{ins.error()};
      }
    }
  }
  if (j.at("slos").is_array()) {
    for (const core::Json& e : j.at("slos").as_array()) {
      auto s = SloSample::from_json(e);
      if (!s) return Err{s.error()};
      out.slos.push_back(std::move(s).value());
    }
  }
  if (j.at("events").is_array()) {
    for (const core::Json& e : j.at("events").as_array()) {
      auto ev = MonitorEvent::from_json(e);
      if (!ev) return Err{ev.error()};
      out.events.push_back(std::move(ev).value());
    }
  }
  return out;
}

void MonitorResult::write_json(std::ostream& os, int indent) const {
  os << to_json().dump(indent) << '\n';
}

void evaluate_result(MonitorResult& result) {
  result.slos = evaluate_slos(result.series, result.spec.slo, result.spec.base.vantage_ids,
                              result.spec.base.resolvers,
                              client::to_string(result.spec.base.protocol), result.spec.epochs);
  result.events = detect_events(result.slos, result.spec.slo);
}

core::MeasurementSpec epoch_campaign_spec(const MonitorSpec& spec, std::uint64_t epoch_seed,
                                          int epoch) {
  core::MeasurementSpec epoch_spec = spec.base;
  epoch_spec.seed = epoch_seed;
  for (const OutageScript& script : spec.outages) {
    if (script.from_epoch <= epoch && epoch < script.to_epoch) {
      // Whole-epoch outage: every round of this epoch's campaign.
      epoch_spec.fault_windows.push_back(core::FaultWindow{script.resolver, 0, epoch_spec.rounds});
    }
  }
  return epoch_spec;
}

Result<MonitorResult> run_monitor(const MonitorSpec& spec, int threads) {
  if (auto v = spec.validate(); !v) return Err{v.error()};
  if (threads < 1) return Err{std::string("monitor: threads must be >= 1")};

  MonitorResult out;
  out.spec = spec;

  // One seed per epoch, derived exactly like campaign shards: the whole run
  // is a pure function of (spec, epochs) for any thread count.
  const std::vector<std::uint64_t> seeds =
      core::shard_seeds(spec.base.seed, static_cast<std::size_t>(spec.epochs));

  for (int e = 0; e < spec.epochs; ++e) {
    const core::MeasurementSpec epoch_spec =
        epoch_campaign_spec(spec, seeds[static_cast<std::size_t>(e)], e);
    const core::CampaignResult result = core::run_parallel_campaign(epoch_spec, threads);

    EpochSummary summary;
    summary.epoch = e;
    summary.seed = epoch_spec.seed;
    for (const core::ResultRecord& r : result.records) {
      const std::string_view proto = client::to_string(r.protocol);
      out.series.add_counter(kMetricQueries, r.vantage, r.resolver, proto, e);
      ++summary.queries;
      if (r.ok) {
        out.series.observe(kMetricResponseMs, r.vantage, r.resolver, proto, e, r.response_ms);
      } else {
        out.series.add_counter(kMetricFailures, r.vantage, r.resolver, proto, e);
        ++summary.failures;
      }
    }
    summary.availability =
        summary.queries > 0
            ? 1.0 - static_cast<double>(summary.failures) / static_cast<double>(summary.queries)
            : 1.0;
    out.epochs.push_back(summary);
  }

  evaluate_result(out);
  return out;
}

}  // namespace ednsm::monitor
