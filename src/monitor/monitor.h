// Longitudinal monitor: run the same campaign spec over many epochs
// (simulated days), fold each epoch into an obs::TimeSeries keyed by
// (vantage, resolver, protocol) with the epoch index as the time bucket,
// evaluate rolling SLOs, and detect outage/degradation/flap events.
//
// Epoch e runs with seed splitmix64^e(base seed) (core::shard_seeds), so the
// whole run is a pure function of the spec: byte-identical series, SLO, and
// event output for any thread count. Scripted outages take a resolver fully
// offline for epochs [from_epoch, to_epoch) via the campaign fault-window
// hook, which is what the detection tests assert against.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/parallel_campaign.h"
#include "monitor/events.h"
#include "monitor/slo.h"
#include "obs/timeseries.h"

namespace ednsm::monitor {

// One scripted resolver outage at epoch granularity (end exclusive).
struct OutageScript {
  std::string resolver;
  int from_epoch = 0;
  int to_epoch = 0;

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static Result<OutageScript> from_json(const core::Json& j);
};

struct MonitorSpec {
  core::MeasurementSpec base;  // per-epoch campaign template
  int epochs = 8;
  std::vector<OutageScript> outages;
  SloConfig slo;

  [[nodiscard]] Result<void> validate() const;
  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static Result<MonitorSpec> from_json(const core::Json& j);
};

// Aggregate tallies for one epoch's campaign.
struct EpochSummary {
  int epoch = 0;
  std::uint64_t seed = 0;  // derived campaign seed for the epoch
  std::uint64_t queries = 0;
  std::uint64_t failures = 0;
  double availability = 1.0;

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static Result<EpochSummary> from_json(const core::Json& j);
};

struct MonitorResult {
  MonitorSpec spec;
  std::vector<EpochSummary> epochs;
  obs::TimeSeries series;
  std::vector<SloSample> slos;
  std::vector<MonitorEvent> events;

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static Result<MonitorResult> from_json(const core::Json& j);
  void write_json(std::ostream& os, int indent = 0) const;
};

// Campaign spec for epoch `epoch`: the base spec with the epoch's derived
// seed and any scripted outages active at that epoch lowered to whole-epoch
// fault windows. Shared by run_monitor and monitor/diagnose so re-derived
// per-query evidence matches the original run byte-for-byte.
[[nodiscard]] core::MeasurementSpec epoch_campaign_spec(const MonitorSpec& spec,
                                                        std::uint64_t epoch_seed, int epoch);

// Run the monitor: `threads` is the per-epoch ParallelCampaign worker count
// (epochs themselves run serially — each epoch's campaign is the parallel
// unit). Returns an error for an invalid spec.
[[nodiscard]] Result<MonitorResult> run_monitor(const MonitorSpec& spec, int threads);

// Re-derive SLO samples and events from an already-folded series (used by
// from_json and by tools that load a persisted series).
void evaluate_result(MonitorResult& result);

}  // namespace ednsm::monitor
