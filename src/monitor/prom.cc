#include "monitor/prom.h"

#include <cstdio>
#include <limits>
#include <map>
#include <sstream>
#include <tuple>

namespace ednsm::monitor {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return std::string(buf);
}

std::string sanitize(std::string_view name) {
  std::string out = "ednsm_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string label_escape(std::string_view s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string labels_of(const obs::SeriesPoint& p, std::string_view extra = {}) {
  std::string out = "{vantage=\"" + label_escape(p.vantage) + "\",resolver=\"" +
                    label_escape(p.resolver) + "\",protocol=\"" + label_escape(p.protocol) + "\"";
  if (!extra.empty()) {
    out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

// Collapsed-across-buckets accumulator for one (metric, labels) series.
struct Collapsed {
  double counter = 0.0;
  std::int64_t gauge_bucket = std::numeric_limits<std::int64_t>::min();
  double gauge = 0.0;
  stats::Welford welford;
  stats::Histogram histogram{obs::TimeSeries::kHistBinWidthMs, obs::TimeSeries::kHistBins};
};

}  // namespace

std::string to_prometheus(const obs::TimeSeries& series) {
  // snapshot() is sorted by (metric, vantage, resolver, protocol, kind,
  // bucket); a sorted map keyed the same way keeps emission deterministic.
  using SeriesKey = std::tuple<std::string, std::string, std::string, std::string, std::string>;
  std::map<SeriesKey, Collapsed> collapsed;
  std::map<SeriesKey, obs::SeriesPoint> label_points;  // representative labels

  for (const obs::SeriesPoint& p : series.snapshot()) {
    SeriesKey key{p.metric, p.kind, p.vantage, p.resolver, p.protocol};
    Collapsed& c = collapsed[key];
    if (p.kind == "counter") {
      c.counter += p.value;
    } else if (p.kind == "gauge") {
      if (p.bucket >= c.gauge_bucket) {
        c.gauge_bucket = p.bucket;
        c.gauge = p.value;
      }
    } else {
      c.welford.merge(stats::Welford::from_moments(p.count, p.mean, p.m2, p.min, p.max));
      for (const auto& [bin, n] : p.bins) (void)c.histogram.add_count(bin, n);
    }
    label_points.emplace(key, p);
  }

  std::ostringstream os;
  std::string last_header;  // one # TYPE block per (metric, kind)
  for (const auto& [key, c] : collapsed) {
    const auto& [metric, kind, vantage, resolver, protocol] = key;
    const obs::SeriesPoint& p = label_points.at(key);
    const std::string name = sanitize(metric);
    if (kind == "counter") {
      const std::string full = name + "_total";
      if (last_header != full) {
        os << "# TYPE " << full << " counter\n";
        last_header = full;
      }
      os << full << labels_of(p) << ' ' << fmt_double(c.counter) << '\n';
    } else if (kind == "gauge") {
      if (last_header != name) {
        os << "# TYPE " << name << " gauge\n";
        last_header = name;
      }
      os << name << labels_of(p) << ' ' << fmt_double(c.gauge) << '\n';
    } else {
      if (last_header != name) {
        os << "# TYPE " << name << " summary\n";
        last_header = name;
      }
      for (const double q : {0.5, 0.95, 0.99}) {
        const double value = c.welford.count() > 0 ? c.histogram.approx_quantile(q) : 0.0;
        os << name << labels_of(p, "quantile=\"" + fmt_double(q) + "\"") << ' '
           << fmt_double(value) << '\n';
      }
      os << name << "_sum" << labels_of(p) << ' '
         << fmt_double(c.welford.mean() * static_cast<double>(c.welford.count())) << '\n';
      os << name << "_count" << labels_of(p) << ' ' << c.welford.count() << '\n';
    }
  }
  return std::move(os).str();
}

}  // namespace ednsm::monitor
