#include "monitor/prom.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

namespace ednsm::monitor {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return std::string(buf);
}

std::string sanitize(std::string_view name) {
  std::string out = "ednsm_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string label_escape(std::string_view s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string labels_of(const obs::SeriesPoint& p, std::string_view extra = {}) {
  std::string out = "{vantage=\"" + label_escape(p.vantage) + "\",resolver=\"" +
                    label_escape(p.resolver) + "\",protocol=\"" + label_escape(p.protocol) + "\"";
  if (!extra.empty()) {
    out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

// Collapsed-across-buckets accumulator for one (metric, labels) series.
struct Collapsed {
  double counter = 0.0;
  std::int64_t gauge_bucket = std::numeric_limits<std::int64_t>::min();
  double gauge = 0.0;
  stats::Welford welford;
  stats::Histogram histogram{obs::TimeSeries::kHistBinWidthMs, obs::TimeSeries::kHistBins};
};

}  // namespace

std::string to_prometheus(const obs::TimeSeries& series) {
  // snapshot() is sorted by (metric, vantage, resolver, protocol, kind,
  // bucket); a sorted map keyed the same way keeps emission deterministic.
  using SeriesKey = std::tuple<std::string, std::string, std::string, std::string, std::string>;
  std::map<SeriesKey, Collapsed> collapsed;
  std::map<SeriesKey, obs::SeriesPoint> label_points;  // representative labels

  for (const obs::SeriesPoint& p : series.snapshot()) {
    SeriesKey key{p.metric, p.kind, p.vantage, p.resolver, p.protocol};
    Collapsed& c = collapsed[key];
    if (p.kind == "counter") {
      c.counter += p.value;
    } else if (p.kind == "gauge") {
      if (p.bucket >= c.gauge_bucket) {
        c.gauge_bucket = p.bucket;
        c.gauge = p.value;
      }
    } else {
      c.welford.merge(stats::Welford::from_moments(p.count, p.mean, p.m2, p.min, p.max));
      for (const auto& [bin, n] : p.bins) (void)c.histogram.add_count(bin, n);
    }
    label_points.emplace(key, p);
  }

  std::ostringstream os;
  std::string last_header;  // one # TYPE block per (metric, kind)
  for (const auto& [key, c] : collapsed) {
    const auto& [metric, kind, vantage, resolver, protocol] = key;
    const obs::SeriesPoint& p = label_points.at(key);
    const std::string name = sanitize(metric);
    if (kind == "counter") {
      const std::string full = name + "_total";
      if (last_header != full) {
        os << "# TYPE " << full << " counter\n";
        last_header = full;
      }
      os << full << labels_of(p) << ' ' << fmt_double(c.counter) << '\n';
    } else if (kind == "gauge") {
      if (last_header != name) {
        os << "# TYPE " << name << " gauge\n";
        last_header = name;
      }
      os << name << labels_of(p) << ' ' << fmt_double(c.gauge) << '\n';
    } else {
      if (last_header != name) {
        os << "# TYPE " << name << " summary\n";
        last_header = name;
      }
      for (const double q : {0.5, 0.95, 0.99}) {
        const double value = c.welford.count() > 0 ? c.histogram.approx_quantile(q) : 0.0;
        os << name << labels_of(p, "quantile=\"" + fmt_double(q) + "\"") << ' '
           << fmt_double(value) << '\n';
      }
      os << name << "_sum" << labels_of(p) << ' '
         << fmt_double(c.welford.mean() * static_cast<double>(c.welford.count())) << '\n';
      os << name << "_count" << labels_of(p) << ' ' << c.welford.count() << '\n';
    }
  }
  return std::move(os).str();
}

std::uint64_t fleet_latest_update_ms(const std::vector<obs::RuntimeHeartbeat>& fleet) noexcept {
  std::uint64_t latest = 0;
  for (const obs::RuntimeHeartbeat& h : fleet) latest = std::max(latest, h.updated_unix_ms);
  return latest;
}

bool heartbeat_is_stale(const obs::RuntimeHeartbeat& h, std::uint64_t fleet_latest_ms,
                        std::uint64_t stale_after_ms) noexcept {
  if (h.status == "done" || h.status == "failed") return false;
  return fleet_latest_ms > h.updated_unix_ms &&
         fleet_latest_ms - h.updated_unix_ms > stale_after_ms;
}

std::string to_prometheus(const std::vector<obs::RuntimeHeartbeat>& fleet,
                          std::uint64_t stale_after_ms) {
  // Shards emit in (k, n) order so output is deterministic regardless of the
  // order heartbeat files were read.
  std::vector<const obs::RuntimeHeartbeat*> ordered;
  ordered.reserve(fleet.size());
  for (const obs::RuntimeHeartbeat& h : fleet) ordered.push_back(&h);
  std::sort(ordered.begin(), ordered.end(),
            [](const obs::RuntimeHeartbeat* a, const obs::RuntimeHeartbeat* b) {
              return std::tie(a->shard_n, a->shard_k) < std::tie(b->shard_n, b->shard_k);
            });

  auto shard_label = [](const obs::RuntimeHeartbeat& h) {
    return "{shard=\"" + std::to_string(h.shard_k) + "/" + std::to_string(h.shard_n) + "\"}";
  };

  std::ostringstream os;
  struct GaugeRow {
    const char* name;
    double (*value)(const obs::RuntimeHeartbeat&);
  };
  const GaugeRow gauges[] = {
      {"runtime_completion", [](const obs::RuntimeHeartbeat& h) { return h.completion; }},
      {"runtime_plans_total",
       [](const obs::RuntimeHeartbeat& h) { return static_cast<double>(h.plans_total); }},
      {"runtime_plans_done",
       [](const obs::RuntimeHeartbeat& h) { return static_cast<double>(h.plans_done); }},
      {"runtime_plans_per_sec", [](const obs::RuntimeHeartbeat& h) { return h.plans_per_sec; }},
      {"runtime_eta_ms", [](const obs::RuntimeHeartbeat& h) { return h.eta_ms; }},
      {"runtime_elapsed_ms", [](const obs::RuntimeHeartbeat& h) { return h.elapsed_ms; }},
      {"runtime_collector_lag",
       [](const obs::RuntimeHeartbeat& h) { return static_cast<double>(h.collector_lag); }},
      {"runtime_records",
       [](const obs::RuntimeHeartbeat& h) { return static_cast<double>(h.records); }},
      {"runtime_bytes_encoded",
       [](const obs::RuntimeHeartbeat& h) { return static_cast<double>(h.bytes_encoded); }},
  };
  for (const GaugeRow& g : gauges) {
    const std::string name = sanitize(g.name);
    os << "# TYPE " << name << " gauge\n";
    for (const obs::RuntimeHeartbeat* h : ordered) {
      os << name << shard_label(*h) << ' ' << fmt_double(g.value(*h)) << '\n';
    }
  }

  if (stale_after_ms > 0) {
    const std::uint64_t latest = fleet_latest_update_ms(fleet);
    const std::string name = sanitize("runtime_stale");
    os << "# TYPE " << name << " gauge\n";
    for (const obs::RuntimeHeartbeat* h : ordered) {
      os << name << shard_label(*h) << ' '
         << (heartbeat_is_stale(*h, latest, stale_after_ms) ? 1 : 0) << '\n';
    }
  }

  const std::pair<const char*, std::uint64_t obs::RuntimeStageSnapshot::*> stage_fields[] = {
      {"runtime_stage_items_in", &obs::RuntimeStageSnapshot::items_in},
      {"runtime_stage_items_out", &obs::RuntimeStageSnapshot::items_out},
      {"runtime_stage_stall_spins", &obs::RuntimeStageSnapshot::stall_spins},
      {"runtime_stage_stall_ns", &obs::RuntimeStageSnapshot::stall_ns},
      {"runtime_stage_busy_ns", &obs::RuntimeStageSnapshot::busy_ns},
      {"runtime_stage_max_queue_depth", &obs::RuntimeStageSnapshot::max_queue_depth},
  };
  for (const auto& [raw_name, field] : stage_fields) {
    const std::string name = sanitize(raw_name);
    os << "# TYPE " << name << " gauge\n";
    for (const obs::RuntimeHeartbeat* h : ordered) {
      for (const obs::RuntimeStageSnapshot& s : h->stages) {
        os << name << "{shard=\"" << h->shard_k << "/" << h->shard_n << "\",stage=\""
           << label_escape(s.stage) << "\"} " << fmt_double(static_cast<double>(s.*field))
           << '\n';
      }
    }
  }
  return std::move(os).str();
}

}  // namespace ednsm::monitor
