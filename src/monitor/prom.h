// Prometheus text exposition (version 0.0.4) of a TimeSeries snapshot.
//
// The store keeps history per bucket; Prometheus wants a point-in-time
// scrape, so series collapse across buckets: counters sum (they are
// monotonic totals), gauges take the highest bucket's value (most recent),
// histograms merge and export summary-style quantiles plus _sum/_count.
// Metric names are prefixed "ednsm_" and sanitized ('.', '-', '/' -> '_');
// output order is deterministic (metric name, then label set).
#pragma once

#include <string>
#include <vector>

#include "obs/runtime.h"
#include "obs/timeseries.h"

namespace ednsm::monitor {

[[nodiscard]] std::string to_prometheus(const obs::TimeSeries& series);

// Runtime-telemetry exposition: per-shard progress/throughput gauges and
// per-stage pipeline counters from a fleet of heartbeat snapshots (one per
// `--progress-file`; `ednsm_watch --prom` serves this). Labels: shard="k/n"
// plus stage=... on the per-stage series. This is the sanctioned wall-clock
// -> exporter path; the obs-domain-separation lint rule allows to_prometheus
// as a telemetry sink precisely so runtime gauges can be scraped.
//
// When stale_after_ms > 0 an ednsm_runtime_stale gauge is added per shard:
// 1 when a still-running shard's updated_unix_ms lags the fleet's newest
// heartbeat by more than the threshold (a wedged or dead worker whose
// counters froze), else 0. Staleness is judged against the fleet maximum,
// not a wall clock read here, so the exposition stays a pure function of
// the heartbeat set. Terminal shards ("done"/"failed") are never stale.
[[nodiscard]] std::string to_prometheus(const std::vector<obs::RuntimeHeartbeat>& fleet,
                                        std::uint64_t stale_after_ms = 0);

// Newest updated_unix_ms across the fleet (0 for an empty fleet) and the
// staleness predicate behind ednsm_runtime_stale — shared with ednsm_watch
// so the table's STALE flag and the gauge can never disagree.
[[nodiscard]] std::uint64_t fleet_latest_update_ms(
    const std::vector<obs::RuntimeHeartbeat>& fleet) noexcept;
[[nodiscard]] bool heartbeat_is_stale(const obs::RuntimeHeartbeat& h,
                                      std::uint64_t fleet_latest_ms,
                                      std::uint64_t stale_after_ms) noexcept;

}  // namespace ednsm::monitor
