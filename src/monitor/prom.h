// Prometheus text exposition (version 0.0.4) of a TimeSeries snapshot.
//
// The store keeps history per bucket; Prometheus wants a point-in-time
// scrape, so series collapse across buckets: counters sum (they are
// monotonic totals), gauges take the highest bucket's value (most recent),
// histograms merge and export summary-style quantiles plus _sum/_count.
// Metric names are prefixed "ednsm_" and sanitized ('.', '-', '/' -> '_');
// output order is deterministic (metric name, then label set).
#pragma once

#include <string>
#include <vector>

#include "obs/runtime.h"
#include "obs/timeseries.h"

namespace ednsm::monitor {

[[nodiscard]] std::string to_prometheus(const obs::TimeSeries& series);

// Runtime-telemetry exposition: per-shard progress/throughput gauges and
// per-stage pipeline counters from a fleet of heartbeat snapshots (one per
// `--progress-file`; `ednsm_watch --prom` serves this). Labels: shard="k/n"
// plus stage=... on the per-stage series. This is the sanctioned wall-clock
// -> exporter path; the obs-domain-separation lint rule allows to_prometheus
// as a telemetry sink precisely so runtime gauges can be scraped.
[[nodiscard]] std::string to_prometheus(const std::vector<obs::RuntimeHeartbeat>& fleet);

}  // namespace ednsm::monitor
