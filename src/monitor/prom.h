// Prometheus text exposition (version 0.0.4) of a TimeSeries snapshot.
//
// The store keeps history per bucket; Prometheus wants a point-in-time
// scrape, so series collapse across buckets: counters sum (they are
// monotonic totals), gauges take the highest bucket's value (most recent),
// histograms merge and export summary-style quantiles plus _sum/_count.
// Metric names are prefixed "ednsm_" and sanitized ('.', '-', '/' -> '_');
// output order is deterministic (metric name, then label set).
#pragma once

#include <string>

#include "obs/timeseries.h"

namespace ednsm::monitor {

[[nodiscard]] std::string to_prometheus(const obs::TimeSeries& series);

}  // namespace ednsm::monitor
