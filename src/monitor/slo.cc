#include "monitor/slo.h"

#include <algorithm>
#include <cmath>

namespace ednsm::monitor {

namespace {

constexpr std::string_view kHealthy = "healthy";
constexpr std::string_view kDegraded = "degraded";
constexpr std::string_view kOutage = "outage";

// Window quantiles come back NaN when no successful query landed in the
// window; report 0 so the JSON stays finite (the availability signal already
// covers the all-failures case).
double finite_or_zero(double v) noexcept { return std::isnan(v) ? 0.0 : v; }

}  // namespace

core::Json SloThresholds::to_json() const {
  core::JsonObject o;
  o["min_availability"] = min_availability;
  o["max_p50_ms"] = max_p50_ms;
  o["max_p95_ms"] = max_p95_ms;
  o["max_p99_ms"] = max_p99_ms;
  return core::Json(std::move(o));
}

Result<SloThresholds> SloThresholds::from_json(const core::Json& j) {
  if (!j.is_object()) return Err{std::string("slo thresholds: not an object")};
  SloThresholds t;
  if (j.at("min_availability").is_number()) t.min_availability = j.at("min_availability").as_number();
  if (j.at("max_p50_ms").is_number()) t.max_p50_ms = j.at("max_p50_ms").as_number();
  if (j.at("max_p95_ms").is_number()) t.max_p95_ms = j.at("max_p95_ms").as_number();
  if (j.at("max_p99_ms").is_number()) t.max_p99_ms = j.at("max_p99_ms").as_number();
  return t;
}

const SloThresholds& SloConfig::for_tier(resolver::OperatorTier tier) const noexcept {
  switch (tier) {
    case resolver::OperatorTier::Hyperscale:
      return hyperscale;
    case resolver::OperatorTier::Managed:
      return managed;
    case resolver::OperatorTier::Hobbyist:
      return hobbyist;
  }
  return hobbyist;
}

const SloThresholds& SloConfig::for_resolver(std::string_view hostname) const noexcept {
  const resolver::ResolverSpec* spec = resolver::find_resolver(hostname);
  return for_tier(spec != nullptr ? spec->tier : resolver::OperatorTier::Hobbyist);
}

Result<void> SloConfig::validate() const {
  if (window_epochs < 1) return Err{std::string("slo: window_epochs must be >= 1")};
  if (outage_availability < 0.0 || outage_availability > 1.0) {
    return Err{std::string("slo: outage_availability must be in [0, 1]")};
  }
  if (flap_transitions < 2) return Err{std::string("slo: flap_transitions must be >= 2")};
  return {};
}

core::Json SloConfig::to_json() const {
  core::JsonObject o;
  o["window_epochs"] = window_epochs;
  o["outage_availability"] = outage_availability;
  o["flap_transitions"] = flap_transitions;
  o["hyperscale"] = hyperscale.to_json();
  o["managed"] = managed.to_json();
  o["hobbyist"] = hobbyist.to_json();
  return core::Json(std::move(o));
}

Result<SloConfig> SloConfig::from_json(const core::Json& j) {
  if (!j.is_object()) return Err{std::string("slo config: not an object")};
  SloConfig c;
  if (j.at("window_epochs").is_number()) {
    c.window_epochs = static_cast<int>(j.at("window_epochs").as_number());
  }
  if (j.at("outage_availability").is_number()) {
    c.outage_availability = j.at("outage_availability").as_number();
  }
  if (j.at("flap_transitions").is_number()) {
    c.flap_transitions = static_cast<int>(j.at("flap_transitions").as_number());
  }
  if (!j.at("hyperscale").is_null()) {
    auto t = SloThresholds::from_json(j.at("hyperscale"));
    if (!t) return Err{t.error()};
    c.hyperscale = t.value();
  }
  if (!j.at("managed").is_null()) {
    auto t = SloThresholds::from_json(j.at("managed"));
    if (!t) return Err{t.error()};
    c.managed = t.value();
  }
  if (!j.at("hobbyist").is_null()) {
    auto t = SloThresholds::from_json(j.at("hobbyist"));
    if (!t) return Err{t.error()};
    c.hobbyist = t.value();
  }
  if (auto v = c.validate(); !v) return Err{v.error()};
  return c;
}

core::Json SloSample::to_json() const {
  core::JsonObject o;
  o["vantage"] = vantage;
  o["resolver"] = resolver;
  o["protocol"] = protocol;
  o["epoch"] = epoch;
  o["queries"] = queries;
  o["failures"] = failures;
  o["availability"] = availability;
  o["window_queries"] = window_queries;
  o["window_failures"] = window_failures;
  o["window_availability"] = window_availability;
  o["p50_ms"] = p50_ms;
  o["p95_ms"] = p95_ms;
  o["p99_ms"] = p99_ms;
  o["state"] = state;
  return core::Json(std::move(o));
}

Result<SloSample> SloSample::from_json(const core::Json& j) {
  if (!j.is_object()) return Err{std::string("slo sample: not an object")};
  SloSample s;
  if (!j.at("vantage").is_string() || !j.at("resolver").is_string() ||
      !j.at("protocol").is_string() || !j.at("epoch").is_number() || !j.at("state").is_string()) {
    return Err{std::string("slo sample: missing required fields")};
  }
  s.vantage = j.at("vantage").as_string();
  s.resolver = j.at("resolver").as_string();
  s.protocol = j.at("protocol").as_string();
  s.epoch = static_cast<int>(j.at("epoch").as_number());
  s.state = j.at("state").as_string();
  if (j.at("queries").is_number()) s.queries = static_cast<std::uint64_t>(j.at("queries").as_number());
  if (j.at("failures").is_number()) {
    s.failures = static_cast<std::uint64_t>(j.at("failures").as_number());
  }
  if (j.at("availability").is_number()) s.availability = j.at("availability").as_number();
  if (j.at("window_queries").is_number()) {
    s.window_queries = static_cast<std::uint64_t>(j.at("window_queries").as_number());
  }
  if (j.at("window_failures").is_number()) {
    s.window_failures = static_cast<std::uint64_t>(j.at("window_failures").as_number());
  }
  if (j.at("window_availability").is_number()) {
    s.window_availability = j.at("window_availability").as_number();
  }
  if (j.at("p50_ms").is_number()) s.p50_ms = j.at("p50_ms").as_number();
  if (j.at("p95_ms").is_number()) s.p95_ms = j.at("p95_ms").as_number();
  if (j.at("p99_ms").is_number()) s.p99_ms = j.at("p99_ms").as_number();
  return s;
}

std::vector<SloSample> evaluate_slos(const obs::TimeSeries& series, const SloConfig& config,
                                     const std::vector<std::string>& vantage_ids,
                                     const std::vector<std::string>& resolvers,
                                     std::string_view protocol, int epochs) {
  std::vector<SloSample> out;
  out.reserve(vantage_ids.size() * resolvers.size() * static_cast<std::size_t>(epochs));
  for (const std::string& vantage : vantage_ids) {
    for (const std::string& resolver_host : resolvers) {
      const SloThresholds& limits = config.for_resolver(resolver_host);
      for (int e = 0; e < epochs; ++e) {
        SloSample s;
        s.vantage = vantage;
        s.resolver = resolver_host;
        s.protocol = std::string(protocol);
        s.epoch = e;
        s.queries = series.counter_at(kMetricQueries, vantage, resolver_host, protocol, e);
        s.failures = series.counter_at(kMetricFailures, vantage, resolver_host, protocol, e);
        s.availability =
            s.queries > 0
                ? 1.0 - static_cast<double>(s.failures) / static_cast<double>(s.queries)
                : 1.0;

        const int from = std::max(0, e - config.window_epochs + 1);
        for (int w = from; w <= e; ++w) {
          s.window_queries += series.counter_at(kMetricQueries, vantage, resolver_host, protocol, w);
          s.window_failures +=
              series.counter_at(kMetricFailures, vantage, resolver_host, protocol, w);
        }
        s.window_availability =
            s.window_queries > 0 ? 1.0 - static_cast<double>(s.window_failures) /
                                             static_cast<double>(s.window_queries)
                                 : 1.0;
        s.p50_ms = finite_or_zero(
            series.window_quantile(kMetricResponseMs, vantage, resolver_host, protocol, from, e, 0.50));
        s.p95_ms = finite_or_zero(
            series.window_quantile(kMetricResponseMs, vantage, resolver_host, protocol, from, e, 0.95));
        s.p99_ms = finite_or_zero(
            series.window_quantile(kMetricResponseMs, vantage, resolver_host, protocol, from, e, 0.99));

        if (s.queries > 0 && s.availability < config.outage_availability) {
          s.state = std::string(kOutage);
        } else if (s.window_queries > 0 &&
                   (s.window_availability < limits.min_availability ||
                    s.p50_ms > limits.max_p50_ms || s.p95_ms > limits.max_p95_ms ||
                    s.p99_ms > limits.max_p99_ms)) {
          s.state = std::string(kDegraded);
        } else {
          s.state = std::string(kHealthy);
        }
        out.push_back(std::move(s));
      }
    }
  }
  return out;
}

}  // namespace ednsm::monitor
