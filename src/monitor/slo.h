// Rolling SLO evaluation over an obs::TimeSeries of monitor metrics.
//
// Each epoch produces one SloSample per (vantage, resolver, protocol): the
// epoch's own availability (crisp outage signal) plus a rolling window of
// `window_epochs` epochs for availability and latency quantiles, judged
// against per-tier thresholds (the registry's OperatorTier — hyperscalers
// are held to tighter targets than hobbyist deployments, mirroring the
// paper's tiering of operators).
//
// State semantics (documented in DESIGN.md "Longitudinal monitoring"):
//   outage    — the *epoch's* availability fell below `outage_availability`;
//               epoch-level so injected outages recover with exact bounds.
//   degraded  — the rolling *window* misses the tier's availability or
//               latency targets (an outage inside the window also degrades
//               the epochs whose window still contains it).
//   healthy   — everything else (including windows with no data).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"
#include "obs/timeseries.h"
#include "resolver/registry.h"

namespace ednsm::monitor {

// Metric names the monitor folds into the TimeSeries (bucket = epoch).
inline constexpr std::string_view kMetricQueries = "monitor.queries";
inline constexpr std::string_view kMetricFailures = "monitor.failures";
inline constexpr std::string_view kMetricResponseMs = "monitor.response_ms";

// Targets for one operator tier: a window is healthy when availability stays
// at or above `min_availability` and every quantile stays at or below its cap.
struct SloThresholds {
  double min_availability = 0.90;
  double max_p50_ms = 400.0;
  double max_p95_ms = 1500.0;
  double max_p99_ms = 4000.0;

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static Result<SloThresholds> from_json(const core::Json& j);
};

struct SloConfig {
  int window_epochs = 3;             // rolling window length (>= 1)
  double outage_availability = 0.10; // epoch availability below this = outage
  int flap_transitions = 3;          // state changes at/above this = flap event
  SloThresholds hyperscale{0.99, 120.0, 500.0, 1200.0};
  SloThresholds managed{0.97, 250.0, 1000.0, 2500.0};
  SloThresholds hobbyist{0.90, 400.0, 1500.0, 4000.0};

  [[nodiscard]] const SloThresholds& for_tier(resolver::OperatorTier tier) const noexcept;
  // Thresholds for a hostname via the registry; unknown hostnames are judged
  // as hobbyist.
  [[nodiscard]] const SloThresholds& for_resolver(std::string_view hostname) const noexcept;

  [[nodiscard]] Result<void> validate() const;
  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static Result<SloConfig> from_json(const core::Json& j);
};

// One (vantage, resolver, protocol, epoch) evaluation.
struct SloSample {
  std::string vantage;
  std::string resolver;
  std::string protocol;
  int epoch = 0;
  std::uint64_t queries = 0;          // this epoch
  std::uint64_t failures = 0;         // this epoch
  double availability = 1.0;          // this epoch (1.0 when no data)
  std::uint64_t window_queries = 0;   // rolling window
  std::uint64_t window_failures = 0;
  double window_availability = 1.0;
  double p50_ms = 0.0;                // window quantiles; 0 when no successes
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  std::string state;                  // "healthy" | "degraded" | "outage"

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static Result<SloSample> from_json(const core::Json& j);
};

// Evaluate every (vantage, resolver) pair for epochs [0, epochs), in
// (vantage, resolver, epoch) order. `series` buckets must be epoch indices.
[[nodiscard]] std::vector<SloSample> evaluate_slos(const obs::TimeSeries& series,
                                                   const SloConfig& config,
                                                   const std::vector<std::string>& vantage_ids,
                                                   const std::vector<std::string>& resolvers,
                                                   std::string_view protocol, int epochs);

}  // namespace ednsm::monitor
