#include "netsim/access_link.h"

namespace ednsm::netsim {

double AccessLinkModel::sample_delay_ms(Rng& rng) const {
  double delay = base_ms + rng.lognormal(jitter_mu, jitter_sigma);
  if (burst_probability > 0.0 && rng.bernoulli(burst_probability)) {
    delay += rng.pareto(burst_scale_ms, burst_alpha);
  }
  return delay;
}

AccessLinkModel AccessLinkModel::datacenter() {
  AccessLinkModel m;
  m.base_ms = 0.2;
  m.jitter_mu = -2.5;   // median e^-2.5 ~ 0.08 ms
  m.jitter_sigma = 0.4;
  m.loss_probability = 0.0001;
  return m;
}

AccessLinkModel AccessLinkModel::residential() {
  AccessLinkModel m;
  m.base_ms = 6.0;
  m.jitter_mu = 0.0;    // median ~1 ms body jitter
  m.jitter_sigma = 0.7;
  m.burst_probability = 0.03;
  m.burst_scale_ms = 4.0;
  m.burst_alpha = 1.6;  // heavy-ish tail: occasional tens of ms
  m.loss_probability = 0.002;
  return m;
}

}  // namespace ednsm::netsim
