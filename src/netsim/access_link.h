// Access-link models: the "last mile" between a host and the wide-area path.
//
// EC2 instances sit effectively on the backbone: sub-millisecond, low-jitter
// access. Residential cable access adds several milliseconds of serialization
// and scheduling delay, and — critically for the paper's home-vs-EC2
// comparisons — occasional latency bursts from cross-traffic (buffer bloat),
// which we model as a two-state mixture on top of a lognormal body.
#pragma once

#include "netsim/rng.h"
#include "netsim/time.h"

namespace ednsm::netsim {

struct AccessLinkModel {
  double base_ms = 0.2;         // deterministic one-way access delay
  double jitter_mu = -2.0;      // lognormal body (underlying normal mu, in ln-ms)
  double jitter_sigma = 0.5;
  double burst_probability = 0.0;  // P(cross-traffic burst) per packet
  double burst_scale_ms = 0.0;     // Pareto scale of the burst
  double burst_alpha = 2.0;        // Pareto shape (smaller = heavier tail)
  double loss_probability = 0.0;   // per-packet loss on this link

  // Sample the one-way delay contribution of this link for one packet.
  [[nodiscard]] double sample_delay_ms(Rng& rng) const;

  // Datacenter access: ~0.2 ms, tight jitter, no loss.
  [[nodiscard]] static AccessLinkModel datacenter();

  // Residential cable: ~6 ms, visible jitter, occasional multi-ms bursts,
  // 0.2% loss. Parameters follow the shape of FCC MBA latency-under-load
  // observations for DOCSIS access.
  [[nodiscard]] static AccessLinkModel residential();
};

}  // namespace ednsm::netsim
