#include "netsim/address.h"

#include <sstream>

namespace ednsm::netsim {

std::string IpAddr::to_string() const {
  std::ostringstream os;
  os << ((value >> 24) & 0xff) << '.' << ((value >> 16) & 0xff) << '.'
     << ((value >> 8) & 0xff) << '.' << (value & 0xff);
  return os.str();
}

std::string Endpoint::to_string() const {
  return ip.to_string() + ":" + std::to_string(port);
}

IpAddr AddressAllocator::next() {
  // 10.0.0.0/8, skipping .0 and .255 in the last octet for realism.
  ++counter_;
  std::uint32_t host = counter_;
  std::uint32_t last = host % 254 + 1;       // 1..254
  std::uint32_t rest = host / 254;
  return IpAddr{(10u << 24) | ((rest & 0xffff) << 8) | last};
}

}  // namespace ednsm::netsim
