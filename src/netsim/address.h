// Synthetic addressing for simulated hosts. Addresses are IPv4-shaped for
// familiarity; the simulator assigns them from a private-range pool.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace ednsm::netsim {

struct IpAddr {
  std::uint32_t value = 0;  // host byte order

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool operator==(const IpAddr&) const = default;
  [[nodiscard]] auto operator<=>(const IpAddr&) const = default;
};

struct Endpoint {
  IpAddr ip;
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool operator==(const Endpoint&) const = default;
  [[nodiscard]] auto operator<=>(const Endpoint&) const = default;
};

struct IpAddrHash {
  std::size_t operator()(const IpAddr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value);
  }
};

struct EndpointHash {
  std::size_t operator()(const Endpoint& e) const noexcept {
    return std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(e.ip.value) << 16) | e.port);
  }
};

// Well-known simulated ports (mirroring the real protocol registrations).
// DoQ really shares port 853 with DoT (UDP vs TCP); the simulated address
// space has no transport-protocol dimension, so DoQ gets its own number.
inline constexpr std::uint16_t kPortDns = 53;
inline constexpr std::uint16_t kPortHttps = 443;  // DoH
inline constexpr std::uint16_t kPortDot = 853;
inline constexpr std::uint16_t kPortDoq = 8853;

// Hands out addresses 10.0.0.1, 10.0.0.2, ... deterministically.
class AddressAllocator {
 public:
  [[nodiscard]] IpAddr next();

 private:
  std::uint32_t counter_ = 0;
};

}  // namespace ednsm::netsim
