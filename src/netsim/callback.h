// UniqueCallback: a move-only, small-buffer-optimized `void()` callable.
//
// The event queue schedules one of these per simulated packet, timer, and
// probe step, so the common case must not touch the heap. std::function
// (a) requires copyability, forcing captured state to be copyable, and
// (b) heap-allocates for captures beyond ~16 bytes on common ABIs. This type
// stores any nothrow-move-constructible callable of up to kInlineSize bytes
// inline and falls back to the heap only for oversized captures.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ednsm::netsim {

class UniqueCallback {
 public:
  // Sized so a lambda capturing a Datagram (two endpoints + a byte vector)
  // or a std::function-based completion plus a few words stays inline.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  UniqueCallback() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, UniqueCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  UniqueCallback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<D>) {
      obj_ = ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      obj_ = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  UniqueCallback(UniqueCallback&& other) noexcept { steal(other); }

  UniqueCallback& operator=(UniqueCallback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  UniqueCallback(const UniqueCallback&) = delete;
  UniqueCallback& operator=(const UniqueCallback&) = delete;

  ~UniqueCallback() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(obj_); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(obj_);
      ops_ = nullptr;
      obj_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-construct into `to` and destroy the source; null for heap storage
    // (heap targets move by stealing the pointer instead).
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* from, void* to) noexcept {
        ::new (to) D(std::move(*static_cast<D*>(from)));
        static_cast<D*>(from)->~D();
      },
      [](void* p) noexcept { static_cast<D*>(p)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* p) { (*static_cast<D*>(p))(); },
      nullptr,
      [](void* p) noexcept { delete static_cast<D*>(p); },
  };

  void steal(UniqueCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ == nullptr) return;
    if (other.ops_->relocate != nullptr) {
      ops_->relocate(other.obj_, buf_);
      obj_ = buf_;
    } else {
      obj_ = other.obj_;
    }
    other.ops_ = nullptr;
    other.obj_ = nullptr;
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineSize];
  void* obj_ = nullptr;
  const Ops* ops_ = nullptr;
};

}  // namespace ednsm::netsim
