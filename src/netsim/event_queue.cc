#include "netsim/event_queue.h"

#include <algorithm>

#include "obs/trace.h"

namespace ednsm::netsim {

EventQueue::EventId EventQueue::schedule(SimDuration delay, Callback cb) {
  if (delay < kZeroDuration) delay = kZeroDuration;
  return schedule_at(now_ + delay, std::move(cb));
}

EventQueue::EventId EventQueue::schedule_at(SimTime when, Callback cb) {
  if (when < now_) when = now_;
  const EventId id = next_seq_++;
  heap_.push_back(Entry{when, id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  alive_.push_back(1);  // slot (id - base_) == alive_.size() - 1: ids are sequential
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (!is_live(id)) return false;
  alive_[static_cast<std::size_t>(id - base_)] = 0;
  --live_count_;
  return true;
}

void EventQueue::prune_top() {
  while (!heap_.empty() && !is_live(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
  if (heap_.empty()) {
    // All ids < next_seq_ have executed or been cancelled: restart the
    // liveness window so the flag vector does not grow with queue lifetime.
    alive_.clear();
    base_ = next_seq_;
  }
}

void EventQueue::pop_front(Entry& out) {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  out = std::move(heap_.back());
  heap_.pop_back();
  alive_[static_cast<std::size_t>(out.id - base_)] = 0;
  --live_count_;
}

std::size_t EventQueue::run_until_idle() {
  std::size_t executed = 0;
  Entry e;
  for (;;) {
    prune_top();
    if (heap_.empty()) break;
    pop_front(e);
    now_ = e.when;
    OBS_EVENT(*this, "netsim", "dispatch");
    e.cb();
    e.cb.reset();
    ++executed;
    ++executed_total_;
  }
  return executed;
}

std::size_t EventQueue::run_until(SimTime deadline) {
  std::size_t executed = 0;
  Entry e;
  for (;;) {
    prune_top();
    if (heap_.empty() || heap_.front().when > deadline) break;
    pop_front(e);
    now_ = e.when;
    OBS_EVENT(*this, "netsim", "dispatch");
    e.cb();
    e.cb.reset();
    ++executed;
    ++executed_total_;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

}  // namespace ednsm::netsim
