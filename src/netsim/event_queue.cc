#include "netsim/event_queue.h"

#include <cassert>

namespace ednsm::netsim {

EventQueue::EventId EventQueue::schedule(SimDuration delay, Callback cb) {
  assert(delay >= kZeroDuration && "events cannot be scheduled in the past");
  return schedule_at(now_ + delay, std::move(cb));
}

EventQueue::EventId EventQueue::schedule_at(SimTime when, Callback cb) {
  assert(when >= now_ && "events cannot be scheduled in the past");
  const EventId id = next_seq_++;
  const Key key{when, id};
  events_.emplace(key, std::move(cb));
  index_.emplace(id, key);
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  events_.erase(it->second);
  index_.erase(it);
  return true;
}

std::size_t EventQueue::run_until_idle() {
  std::size_t executed = 0;
  while (!events_.empty()) {
    auto it = events_.begin();
    now_ = it->first.first;
    Callback cb = std::move(it->second);
    index_.erase(it->first.second);
    events_.erase(it);
    cb();
    ++executed;
  }
  return executed;
}

std::size_t EventQueue::run_until(SimTime deadline) {
  std::size_t executed = 0;
  while (!events_.empty() && events_.begin()->first.first <= deadline) {
    auto it = events_.begin();
    now_ = it->first.first;
    Callback cb = std::move(it->second);
    index_.erase(it->first.second);
    events_.erase(it);
    cb();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

}  // namespace ednsm::netsim
