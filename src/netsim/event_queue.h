// The discrete-event core: a priority queue of (time, sequence, callback).
// Sequence numbers break ties so same-instant events fire in schedule order,
// which keeps runs bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "netsim/time.h"

namespace ednsm::netsim {

class EventQueue {
 public:
  using EventId = std::uint64_t;
  using Callback = std::function<void()>;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  // Schedule `cb` to run `delay` from now (delay may be zero, never negative).
  EventId schedule(SimDuration delay, Callback cb);

  // Schedule at an absolute time >= now().
  EventId schedule_at(SimTime when, Callback cb);

  // Cancel a pending event; returns false if it already ran or was cancelled.
  bool cancel(EventId id);

  // Run events until the queue drains. Returns the number of events executed.
  std::size_t run_until_idle();

  // Run events with time <= deadline; leaves later events pending and
  // advances now() to min(deadline, time of last executed event is exceeded).
  std::size_t run_until(SimTime deadline);

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return events_.size(); }

 private:
  using Key = std::pair<SimTime, std::uint64_t>;  // (when, seq)

  SimTime now_{0};
  std::uint64_t next_seq_ = 0;
  std::map<Key, Callback> events_;
  std::map<EventId, Key> index_;  // EventId == seq
};

}  // namespace ednsm::netsim
