// The discrete-event core: a priority queue of (time, sequence, callback).
// Sequence numbers break ties so same-instant events fire in schedule order,
// which keeps runs bit-for-bit reproducible.
//
// Storage is a binary min-heap ordered by (when, seq) with *lazy
// cancellation*: cancel(id) only clears `id`'s liveness flag, and the
// heap entry is discarded (tombstoned) when it reaches the top. Event ids
// are assigned sequentially, so liveness is a dense bit-vector indexed by
// (id - base_) rather than a hash set — cancel and the per-pop liveness
// check are array lookups. The vector is compacted (and base_ advanced)
// whenever the heap drains. Invariants:
//   - `alive_` flags exactly the ids that are scheduled and neither executed
//     nor cancelled; pending()/empty() reflect live events only.
//   - A cancelled event's callback is destroyed when its tombstone is popped
//     or when the queue drains/destructs — not at cancel() time — so captures
//     may outlive cancel() by simulated time. Captures must not rely on
//     destructor timing.
//   - Event ids are never reused, so a stale id can never cancel a newer
//     event.
// This replaces the previous std::map<Key, Callback> + std::map<EventId, Key>
// pair: push/pop are O(log n) with no rebalancing, no per-node allocation,
// and (with UniqueCallback) no per-event std::function heap allocation.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/callback.h"
#include "netsim/time.h"

namespace ednsm::obs {
class Tracer;
}  // namespace ednsm::obs

namespace ednsm::netsim {

class EventQueue {
 public:
  using EventId = std::uint64_t;
  using Callback = UniqueCallback;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  // Schedule `cb` to run `delay` from now. A negative delay (possible only
  // through arithmetic bugs upstream) is clamped to zero so release builds
  // never travel back in time; debug builds used to assert here, but the
  // clamp is now the contract in every build mode.
  EventId schedule(SimDuration delay, Callback cb);

  // Schedule at an absolute time; `when` earlier than now() is clamped to
  // now() (see schedule()).
  EventId schedule_at(SimTime when, Callback cb);

  // Cancel a pending event; returns false if it already ran or was cancelled.
  bool cancel(EventId id);

  // Run events until the queue drains. Returns the number of events executed.
  std::size_t run_until_idle();

  // Run events with time <= deadline; leaves later events pending. Advances
  // now() to exactly `deadline` (events never execute past it, and time
  // reaches the deadline even when the queue drains early).
  std::size_t run_until(SimTime deadline);

  [[nodiscard]] bool empty() const noexcept { return live_count_ == 0; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_count_; }

  // Events executed over the queue's whole lifetime (run_until* return only
  // per-call counts) — the "netsim.events_executed" metric.
  [[nodiscard]] std::uint64_t executed_total() const noexcept { return executed_total_; }

  // Optional tracer, owned by the enclosing world. The queue is the clock
  // every subsystem already holds a reference to, so it doubles as the trace
  // attachment point: anything with queue access can emit via the OBS_*
  // macros. Null (the default) means "tracing impossible", which the macros
  // check before the enabled flag.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

 private:
  struct Entry {
    SimTime when;
    EventId id;
    Callback cb;
  };

  // std::push_heap/pop_heap build a max-heap, so "greater" puts the earliest
  // (when, id) at the front. A functor (not a function pointer) so the
  // comparison inlines into the heap sift loops.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.when != b.when ? a.when > b.when : a.id > b.id;
    }
  };

  // Drop tombstoned entries off the top so heap_.front() (when non-empty) is
  // the next live event; compacts the liveness vector when the heap drains.
  void prune_top();

  // Pop the front entry into `out` (front must be live).
  void pop_front(Entry& out);

  [[nodiscard]] bool is_live(EventId id) const noexcept {
    return id >= base_ && id - base_ < alive_.size() &&
           alive_[static_cast<std::size_t>(id - base_)] != 0;
  }

  SimTime now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_total_ = 0;
  obs::Tracer* tracer_ = nullptr;
  std::vector<Entry> heap_;
  // Liveness flags for ids [base_, next_seq_); see the header comment.
  std::uint64_t base_ = 0;
  std::vector<std::uint8_t> alive_;
  std::size_t live_count_ = 0;
};

}  // namespace ednsm::netsim
