#include "netsim/network.h"

#include <cassert>
#include <stdexcept>

#include "obs/trace.h"

namespace ednsm::netsim {

IpAddr Network::attach(std::string label, geo::GeoPoint location, AccessLinkModel access) {
  const IpAddr addr = allocator_.next();
  hosts_.emplace(addr, Host{std::move(label), location, access, /*icmp=*/true});
  return addr;
}

void Network::set_icmp_responder(IpAddr host, bool responds) {
  const auto it = hosts_.find(host);
  if (it == hosts_.end()) throw std::invalid_argument("set_icmp_responder: unknown host");
  it->second.icmp_responder = responds;
}

void Network::set_quirk(IpAddr a, IpAddr b, const PathQuirk& quirk) {
  quirks_[pair_key(a, b)] = quirk;
  quirks_[pair_key(b, a)] = quirk;
  // Invalidate any already-built path so the quirk takes effect.
  paths_.erase(pair_key(a, b));
  paths_.erase(pair_key(b, a));
}

void Network::bind(const Endpoint& local, DatagramHandler handler) {
  bindings_[local] = std::move(handler);
}

void Network::unbind(const Endpoint& local) { bindings_.erase(local); }

std::uint16_t Network::ephemeral_port(IpAddr host) {
  std::uint16_t& counter = ephemeral_counters_[host];
  if (counter < 49152) counter = 49152;
  const std::uint16_t port = counter;
  counter = (counter == 65535) ? 49152 : static_cast<std::uint16_t>(counter + 1);
  return port;
}

const PathModel& Network::path(IpAddr src, IpAddr dst) {
  const std::uint64_t key = pair_key(src, dst);
  const auto it = paths_.find(key);
  if (it != paths_.end()) return it->second;

  const auto src_it = hosts_.find(src);
  const auto dst_it = hosts_.find(dst);
  if (src_it == hosts_.end() || dst_it == hosts_.end()) {
    throw std::invalid_argument("path: unknown host");
  }
  PathModel p = PathModel::between(src_it->second.location, dst_it->second.location,
                                   src_it->second.access, dst_it->second.access);
  const auto quirk_it = quirks_.find(key);
  if (quirk_it != quirks_.end()) p.quirk = quirk_it->second;
  return paths_.emplace(key, p).first->second;
}

std::optional<SimDuration> Network::sample_trip(IpAddr src, IpAddr dst) {
  const PathModel& p = path(src, dst);
  if (rng_.bernoulli(p.loss_probability())) return std::nullopt;
  return from_ms(p.sample_one_way_ms(rng_));
}

void Network::send(Datagram dgram) {
  ++stats_.datagrams_sent;
  const auto trip = sample_trip(dgram.src.ip, dgram.dst.ip);
  if (!trip.has_value()) {
    ++stats_.datagrams_dropped;
    OBS_EVENT(queue_, "netsim", "datagram-loss");
    return;
  }
  queue_.schedule(*trip, [this, d = std::move(dgram)]() {
    const auto it = bindings_.find(d.dst);
    if (it == bindings_.end()) {
      ++stats_.datagrams_unroutable;
      OBS_EVENT(queue_, "netsim", "datagram-unroutable");
      return;
    }
    ++stats_.datagrams_delivered;
    it->second(d);
  });
}

void Network::ping(IpAddr src, IpAddr dst, SimDuration timeout, PingCallback cb) {
  ++stats_.pings_sent;
  const auto dst_it = hosts_.find(dst);
  const bool answers = dst_it != hosts_.end() && dst_it->second.icmp_responder;

  std::optional<SimDuration> rtt;
  if (answers) {
    const auto out = sample_trip(src, dst);
    if (out.has_value()) {
      const auto back = sample_trip(dst, src);
      if (back.has_value()) rtt = *out + *back;
    }
  }

  if (rtt.has_value() && *rtt <= timeout) {
    ++stats_.pings_answered;
    queue_.schedule(*rtt, [cb = std::move(cb), rtt]() { cb(rtt); });
  } else {
    queue_.schedule(timeout, [cb = std::move(cb)]() { cb(std::nullopt); });
  }
}

std::optional<geo::GeoPoint> Network::location_of(IpAddr host) const {
  const auto it = hosts_.find(host);
  if (it == hosts_.end()) return std::nullopt;
  return it->second.location;
}

std::optional<std::string> Network::label_of(IpAddr host) const {
  const auto it = hosts_.find(host);
  if (it == hosts_.end()) return std::nullopt;
  return it->second.label;
}

}  // namespace ednsm::netsim
