// Network: hosts, datagram delivery, ICMP echo.
//
// Hosts attach with a location and an access-link model and receive a
// synthetic address. Paths are built lazily per (src, dst) from the geo model
// and cached; the resolver registry may install per-pair quirks before
// traffic flows. Datagram delivery samples the path (delay, loss) and
// schedules the receiver's handler on the event queue — there is no global
// routing table because the simulated topology is a full mesh of wide-area
// paths, which is the right abstraction for client <-> anycast-site traffic.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "geo/coords.h"
#include "netsim/address.h"
#include "netsim/event_queue.h"
#include "netsim/path.h"
#include "netsim/rng.h"
#include "util/bytes.h"

namespace ednsm::netsim {

struct Datagram {
  Endpoint src;
  Endpoint dst;
  util::Bytes payload;
};

struct NetworkStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_dropped = 0;
  std::uint64_t datagrams_delivered = 0;
  std::uint64_t datagrams_unroutable = 0;  // no handler bound at delivery time
  std::uint64_t pings_sent = 0;
  std::uint64_t pings_answered = 0;
};

class Network {
 public:
  using DatagramHandler = std::function<void(const Datagram&)>;
  // nullopt = no reply within the caller's timeout (filtered or lost).
  using PingCallback = std::function<void(std::optional<SimDuration>)>;

  Network(EventQueue& queue, Rng rng) : queue_(queue), rng_(std::move(rng)) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Register a host; returns its address.
  IpAddr attach(std::string label, geo::GeoPoint location, AccessLinkModel access);

  // Whether the host answers ICMP echo (default true). The paper notes some
  // resolvers never answered pings; the registry turns this off for them.
  void set_icmp_responder(IpAddr host, bool responds);

  // Install a quirk on both directions of the (a, b) path. Must be called
  // before the first packet flows between the pair (paths are cached).
  void set_quirk(IpAddr a, IpAddr b, const PathQuirk& quirk);

  // Port binding. Binding an already-bound endpoint replaces the handler.
  void bind(const Endpoint& local, DatagramHandler handler);
  void unbind(const Endpoint& local);

  // Allocate the next ephemeral port (49152..65535, wrapping) for `host`.
  // Centralized here so independent clients on one host can never collide —
  // per-client counters would all start at 49152 and steal each other's
  // bindings.
  [[nodiscard]] std::uint16_t ephemeral_port(IpAddr host);

  // Fire-and-forget datagram. Loss and delay are sampled per packet.
  void send(Datagram dgram);

  // ICMP echo with timeout. The callback always fires exactly once: with the
  // RTT if an answer arrived in time, nullopt otherwise.
  void ping(IpAddr src, IpAddr dst, SimDuration timeout, PingCallback cb);

  // The cached path model (built on first use).
  [[nodiscard]] const PathModel& path(IpAddr src, IpAddr dst);

  [[nodiscard]] EventQueue& queue() noexcept { return queue_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }
  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::optional<geo::GeoPoint> location_of(IpAddr host) const;
  [[nodiscard]] std::optional<std::string> label_of(IpAddr host) const;

  // Sample one one-way trip; returns nullopt if the packet is lost.
  [[nodiscard]] std::optional<SimDuration> sample_trip(IpAddr src, IpAddr dst);

 private:
  struct Host {
    std::string label;
    geo::GeoPoint location;
    AccessLinkModel access;
    bool icmp_responder = true;
  };

  // Paths are looked up once per packet, so the (src, dst) pair is packed
  // into one u64 hashed key instead of an ordered pair-keyed tree. Nothing
  // iterates these maps; only point lookups, so ordering is irrelevant.
  [[nodiscard]] static constexpr std::uint64_t pair_key(IpAddr src, IpAddr dst) noexcept {
    return (static_cast<std::uint64_t>(src.value) << 32) | dst.value;
  }

  EventQueue& queue_;
  Rng rng_;
  AddressAllocator allocator_;
  std::unordered_map<IpAddr, Host, IpAddrHash> hosts_;
  std::unordered_map<std::uint64_t, PathModel> paths_;
  std::unordered_map<std::uint64_t, PathQuirk> quirks_;
  std::unordered_map<Endpoint, DatagramHandler, EndpointHash> bindings_;
  std::unordered_map<IpAddr, std::uint16_t, IpAddrHash> ephemeral_counters_;
  NetworkStats stats_;
};

}  // namespace ednsm::netsim
