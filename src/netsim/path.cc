#include "netsim/path.h"

#include <algorithm>

namespace ednsm::netsim {

PathModel PathModel::between(const geo::GeoPoint& src, const geo::GeoPoint& dst,
                             const AccessLinkModel& src_access,
                             const AccessLinkModel& dst_access) {
  PathModel p;
  p.propagation_ms = geo::propagation_delay_ms(src, dst);
  p.src_access = src_access;
  p.dst_access = dst_access;
  return p;
}

double PathModel::sample_one_way_ms(Rng& rng) const {
  double delay = propagation_ms + quirk.extra_base_ms;
  delay += rng.lognormal(transit_jitter_mu, transit_jitter_sigma);
  delay += src_access.sample_delay_ms(rng);
  delay += dst_access.sample_delay_ms(rng);
  if (quirk.extra_jitter_probability > 0.0 && rng.bernoulli(quirk.extra_jitter_probability)) {
    delay += rng.pareto(quirk.extra_jitter_scale, quirk.extra_jitter_alpha);
  }
  // Quirks may encode a peering *advantage* (negative base); physics still
  // applies, so never go below a 50 µs floor.
  return std::max(delay, 0.05);
}

double PathModel::loss_probability() const noexcept {
  // Union of independent loss events.
  const double keep = (1.0 - transit_loss) * (1.0 - src_access.loss_probability) *
                      (1.0 - dst_access.loss_probability) * (1.0 - quirk.extra_loss);
  return std::clamp(1.0 - keep, 0.0, 1.0);
}

double PathModel::floor_ms() const noexcept {
  return propagation_ms + quirk.extra_base_ms + src_access.base_ms + dst_access.base_ms;
}

}  // namespace ednsm::netsim
