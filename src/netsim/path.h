// Wide-area path model between two attached hosts.
//
// One-way delay = propagation (great-circle distance at fiber speed with a
// path-stretch factor) + transit queueing jitter (lognormal) + both access
// links + any per-path quirk. Loss combines transit and access loss.
//
// The quirk hook exists because the paper observes idiosyncratic per-(vantage,
// resolver) behaviour — e.g. doh.la.ahadns.net is highly variable from home
// devices but stable from EC2 — that no distance-based model produces. The
// resolver registry installs quirks; the path model just applies them.
#pragma once

#include "geo/coords.h"
#include "netsim/access_link.h"
#include "netsim/rng.h"

namespace ednsm::netsim {

// Extra variability applied to one direction of one (src, dst) path.
struct PathQuirk {
  double extra_base_ms = 0.0;        // constant detour (e.g. ODoH relay hop)
  double extra_jitter_scale = 0.0;   // Pareto scale of added jitter; 0 = none
  double extra_jitter_alpha = 1.8;
  double extra_jitter_probability = 0.0;
  double extra_loss = 0.0;
};

struct PathModel {
  double propagation_ms = 0.0;   // one-way, already stretched
  double transit_jitter_mu = -1.2;
  double transit_jitter_sigma = 0.45;
  double transit_loss = 0.0005;
  AccessLinkModel src_access;
  AccessLinkModel dst_access;
  PathQuirk quirk;

  // Build from endpoint locations + access links (quirk defaults to none).
  [[nodiscard]] static PathModel between(const geo::GeoPoint& src, const geo::GeoPoint& dst,
                                         const AccessLinkModel& src_access,
                                         const AccessLinkModel& dst_access);

  // Sample one packet's one-way delay in milliseconds.
  [[nodiscard]] double sample_one_way_ms(Rng& rng) const;

  // Probability this packet is lost anywhere on the path.
  [[nodiscard]] double loss_probability() const noexcept;

  // Deterministic minimum (used by tests and for sanity bounds).
  [[nodiscard]] double floor_ms() const noexcept;
};

}  // namespace ednsm::netsim
