#include "netsim/rng.h"

#include <cmath>

namespace ednsm::netsim {

namespace {
constexpr double kPi = 3.14159265358979323846;

std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) noexcept {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - n) % n;
  while (true) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) noexcept {
  // -mean * ln(U), guarding U = 0.
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) noexcept {
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double x_m, double alpha) noexcept {
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return x_m / std::pow(u, 1.0 / alpha);
}

Rng Rng::fork(std::uint64_t key) const noexcept {
  // Mix the current state with the key through splitmix; does not advance *this.
  std::uint64_t sm = s_[0] ^ rotl(s_[2], 13) ^ (key * 0x9e3779b97f4a7c15ULL);
  return Rng(splitmix64(sm));
}

}  // namespace ednsm::netsim
