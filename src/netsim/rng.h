// Deterministic random number generation for the simulator.
//
// xoshiro256** seeded via splitmix64, plus the distributions the path and
// server models need. We do not use <random> engines/distributions because
// their outputs are not portable across standard library implementations,
// and campaign reproducibility from (spec, seed) is a design requirement.
#pragma once

#include <array>
#include <cstdint>

namespace ednsm::netsim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  // Uniform on [0, 2^64).
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  // Uniform on [0, 1).
  [[nodiscard]] double next_double() noexcept;

  // Uniform on [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  // Uniform integer on [0, n); n must be > 0.
  [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t n) noexcept;

  [[nodiscard]] bool bernoulli(double p) noexcept;

  // Exponential with the given mean (inverse-CDF method).
  [[nodiscard]] double exponential(double mean) noexcept;

  // Lognormal parameterized by the *underlying* normal's mu/sigma.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  // Standard normal via Box-Muller (one value per call; no caching so the
  // stream stays a pure function of call count).
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  // Pareto (heavy tail) with scale x_m > 0 and shape alpha > 0.
  [[nodiscard]] double pareto(double x_m, double alpha) noexcept;

  // Derive an independent stream for a named component: fork(k) streams are
  // decorrelated from this one and from each other.
  [[nodiscard]] Rng fork(std::uint64_t key) const noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

// splitmix64: used for seeding and for stateless hash-style derivation.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace ednsm::netsim
