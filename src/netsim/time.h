// Simulated time. The simulator never consults the wall clock: SimTime is a
// strong microsecond offset from campaign start, advanced only by the event
// queue.
#pragma once

#include <chrono>
#include <cstdint>

namespace ednsm::netsim {

using SimDuration = std::chrono::microseconds;
using SimTime = SimDuration;  // offset from simulation epoch

[[nodiscard]] constexpr SimDuration from_ms(double ms) noexcept {
  return SimDuration(static_cast<std::int64_t>(ms * 1000.0));
}

[[nodiscard]] constexpr double to_ms(SimDuration d) noexcept {
  return static_cast<double>(d.count()) / 1000.0;
}

inline constexpr SimDuration kZeroDuration{0};

}  // namespace ednsm::netsim
