#include "obs/attribution.h"

#include <algorithm>
#include <tuple>

#include "stats/quantile.h"

namespace ednsm::obs {

namespace {

bool in_window(const QueryEvidence& row, int from_epoch, int to_epoch) {
  return row.epoch >= from_epoch && row.epoch <= to_epoch;
}

}  // namespace

std::string_view StageBreakdown::dominant() const noexcept {
  if (total() == 0) return {};
  std::string_view name = "connect";
  std::uint64_t best = connect;
  const std::pair<std::string_view, std::uint64_t> rest[] = {
      {"handshake", handshake}, {"query", query}, {"timeout", timeout}, {"other", other}};
  for (const auto& [candidate, count] : rest) {
    if (count > best) {
      best = count;
      name = candidate;
    }
  }
  return name;
}

util::Json StageBreakdown::to_json() const {
  util::JsonObject o;
  o["connect"] = connect;
  o["handshake"] = handshake;
  o["query"] = query;
  o["timeout"] = timeout;
  o["other"] = other;
  return util::Json(std::move(o));
}

Result<StageBreakdown> StageBreakdown::from_json(const util::Json& j) {
  if (!j.is_object()) return Err{std::string("stage breakdown: not an object")};
  StageBreakdown b;
  const auto read = [&j](const char* key, std::uint64_t& out) {
    if (j.at(key).is_number()) out = static_cast<std::uint64_t>(j.at(key).as_number());
  };
  read("connect", b.connect);
  read("handshake", b.handshake);
  read("query", b.query);
  read("timeout", b.timeout);
  read("other", b.other);
  return b;
}

util::Json PhaseProfile::to_json() const {
  util::JsonObject o;
  o["queries"] = queries;
  o["failures"] = failures;
  o["availability"] = availability;
  o["reused_fraction"] = reused_fraction;
  o["response_ms"] = response_ms;
  o["tcp_ms"] = tcp_ms;
  o["tls_ms"] = tls_ms;
  o["quic_ms"] = quic_ms;
  o["wait_ms"] = wait_ms;
  o["exchange_ms"] = exchange_ms;
  return util::Json(std::move(o));
}

Result<PhaseProfile> PhaseProfile::from_json(const util::Json& j) {
  if (!j.is_object()) return Err{std::string("phase profile: not an object")};
  PhaseProfile p;
  if (j.at("queries").is_number()) p.queries = static_cast<std::uint64_t>(j.at("queries").as_number());
  if (j.at("failures").is_number()) {
    p.failures = static_cast<std::uint64_t>(j.at("failures").as_number());
  }
  const auto read = [&j](const char* key, double& out) {
    if (j.at(key).is_number()) out = j.at(key).as_number();
  };
  read("availability", p.availability);
  read("reused_fraction", p.reused_fraction);
  read("response_ms", p.response_ms);
  read("tcp_ms", p.tcp_ms);
  read("tls_ms", p.tls_ms);
  read("quic_ms", p.quic_ms);
  read("wait_ms", p.wait_ms);
  read("exchange_ms", p.exchange_ms);
  return p;
}

util::Json PhaseDelta::to_json() const {
  util::JsonObject o;
  o["availability"] = availability;
  o["reused_fraction"] = reused_fraction;
  o["response_ms"] = response_ms;
  o["tcp_ms"] = tcp_ms;
  o["tls_ms"] = tls_ms;
  o["quic_ms"] = quic_ms;
  o["wait_ms"] = wait_ms;
  o["exchange_ms"] = exchange_ms;
  return util::Json(std::move(o));
}

Result<PhaseDelta> PhaseDelta::from_json(const util::Json& j) {
  if (!j.is_object()) return Err{std::string("phase delta: not an object")};
  PhaseDelta d;
  const auto read = [&j](const char* key, double& out) {
    if (j.at(key).is_number()) out = j.at(key).as_number();
  };
  read("availability", d.availability);
  read("reused_fraction", d.reused_fraction);
  read("response_ms", d.response_ms);
  read("tcp_ms", d.tcp_ms);
  read("tls_ms", d.tls_ms);
  read("quic_ms", d.quic_ms);
  read("wait_ms", d.wait_ms);
  read("exchange_ms", d.exchange_ms);
  return d;
}

util::Json Exemplar::to_json() const {
  util::JsonObject o;
  o["vantage"] = vantage;
  o["domain"] = domain;
  o["epoch"] = epoch;
  o["round"] = round;
  o["ok"] = ok;
  o["response_ms"] = response_ms;
  o["failure_stage"] = failure_stage;
  o["error_class"] = error_class;
  o["flight_ref"] = flight_ref;
  return util::Json(std::move(o));
}

Result<Exemplar> Exemplar::from_json(const util::Json& j) {
  if (!j.is_object()) return Err{std::string("exemplar: not an object")};
  Exemplar e;
  if (j.at("vantage").is_string()) e.vantage = j.at("vantage").as_string();
  if (j.at("domain").is_string()) e.domain = j.at("domain").as_string();
  if (j.at("epoch").is_number()) e.epoch = static_cast<int>(j.at("epoch").as_number());
  if (j.at("round").is_number()) e.round = static_cast<int>(j.at("round").as_number());
  if (j.at("ok").is_bool()) e.ok = j.at("ok").as_bool();
  if (j.at("response_ms").is_number()) e.response_ms = j.at("response_ms").as_number();
  if (j.at("failure_stage").is_string()) e.failure_stage = j.at("failure_stage").as_string();
  if (j.at("error_class").is_string()) e.error_class = j.at("error_class").as_string();
  if (j.at("flight_ref").is_string()) e.flight_ref = j.at("flight_ref").as_string();
  return e;
}

StageBreakdown count_stages(const std::vector<QueryEvidence>& rows, int from_epoch,
                            int to_epoch) {
  StageBreakdown b;
  for (const QueryEvidence& row : rows) {
    if (row.ok || !in_window(row, from_epoch, to_epoch)) continue;
    if (row.failure_stage == "connect") {
      ++b.connect;
    } else if (row.failure_stage == "handshake") {
      ++b.handshake;
    } else if (row.failure_stage == "query") {
      ++b.query;
    } else if (row.failure_stage == "timeout") {
      ++b.timeout;
    } else {
      ++b.other;
    }
  }
  return b;
}

PhaseProfile profile_phases(const std::vector<QueryEvidence>& rows, int from_epoch,
                            int to_epoch) {
  PhaseProfile p;
  std::vector<double> response, tcp, tls, quic, wait, exchange;
  std::uint64_t reused = 0;
  for (const QueryEvidence& row : rows) {
    if (!in_window(row, from_epoch, to_epoch)) continue;
    ++p.queries;
    if (!row.ok) {
      ++p.failures;
      continue;
    }
    if (row.reused) ++reused;
    response.push_back(row.response_ms);
    tcp.push_back(row.tcp_ms);
    tls.push_back(row.tls_ms);
    quic.push_back(row.quic_ms);
    wait.push_back(row.wait_ms);
    exchange.push_back(row.exchange_ms);
  }
  if (p.queries > 0) {
    p.availability = 1.0 - static_cast<double>(p.failures) / static_cast<double>(p.queries);
  }
  if (!response.empty()) {
    p.reused_fraction = static_cast<double>(reused) / static_cast<double>(response.size());
    p.response_ms = stats::median(std::move(response));
    p.tcp_ms = stats::median(std::move(tcp));
    p.tls_ms = stats::median(std::move(tls));
    p.quic_ms = stats::median(std::move(quic));
    p.wait_ms = stats::median(std::move(wait));
    p.exchange_ms = stats::median(std::move(exchange));
  }
  return p;
}

PhaseDelta phase_delta(const PhaseProfile& baseline, const PhaseProfile& window) {
  PhaseDelta d;
  d.availability = window.availability - baseline.availability;
  d.reused_fraction = window.reused_fraction - baseline.reused_fraction;
  d.response_ms = window.response_ms - baseline.response_ms;
  d.tcp_ms = window.tcp_ms - baseline.tcp_ms;
  d.tls_ms = window.tls_ms - baseline.tls_ms;
  d.quic_ms = window.quic_ms - baseline.quic_ms;
  d.wait_ms = window.wait_ms - baseline.wait_ms;
  d.exchange_ms = window.exchange_ms - baseline.exchange_ms;
  return d;
}

std::vector<Exemplar> pick_exemplars(const std::vector<QueryEvidence>& rows, int from_epoch,
                                     int to_epoch, std::size_t limit) {
  std::vector<const QueryEvidence*> failures, successes;
  for (const QueryEvidence& row : rows) {
    if (!in_window(row, from_epoch, to_epoch)) continue;
    (row.ok ? successes : failures).push_back(&row);
  }
  const auto coords = [](const QueryEvidence* r) {
    return std::tie(r->epoch, r->vantage, r->round, r->domain);
  };
  std::sort(failures.begin(), failures.end(),
            [&](const QueryEvidence* a, const QueryEvidence* b) { return coords(a) < coords(b); });
  std::sort(successes.begin(), successes.end(),
            [&](const QueryEvidence* a, const QueryEvidence* b) {
              if (a->response_ms != b->response_ms) return a->response_ms > b->response_ms;
              return coords(a) < coords(b);
            });

  std::vector<Exemplar> out;
  const auto take = [&out](const QueryEvidence& row) {
    Exemplar e;
    e.vantage = row.vantage;
    e.domain = row.domain;
    e.epoch = row.epoch;
    e.round = row.round;
    e.ok = row.ok;
    e.response_ms = row.response_ms;
    e.failure_stage = row.failure_stage;
    e.error_class = row.error_class;
    out.push_back(std::move(e));
  };
  for (const QueryEvidence* row : failures) {
    if (out.size() >= limit) return out;
    take(*row);
  }
  for (const QueryEvidence* row : successes) {
    if (out.size() >= limit) return out;
    take(*row);
  }
  return out;
}

}  // namespace ednsm::obs
