// Root-cause attribution primitives: turn per-query evidence rows into the
// aggregates a diagnosis is argued from — failure-stage breakdowns, per-phase
// latency profiles (tcp/tls/quic/wait/exchange medians over successes),
// window-vs-baseline deltas, and exemplar queries for flight-recorder
// cross-links.
//
// The layer is deliberately generic: evidence rows carry plain strings and
// numbers (no core:: types), so obs stays below the engine tier in
// tools/lint/layers.conf. Everything here is a pure function of its inputs
// in the SimTime domain — no clocks, no I/O — so diagnoses built on top
// inherit the toolkit's byte-identical-output guarantee.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace ednsm::obs {

// One query's worth of evidence, flattened from a campaign result record.
// In-memory only: diagnoses serialize aggregates and exemplars, not the raw
// evidence set.
struct QueryEvidence {
  std::string vantage;
  std::string domain;
  int epoch = 0;
  int round = 0;
  bool ok = false;
  bool reused = false;        // connection was reused (warm)
  double response_ms = 0.0;
  double tcp_ms = 0.0;
  double tls_ms = 0.0;
  double quic_ms = 0.0;
  double wait_ms = 0.0;       // connection-pool wait
  double exchange_ms = 0.0;
  std::string failure_stage;  // "connect"|"handshake"|"query"|"timeout" ("" when ok)
  std::string error_class;    // "" when ok
};

// Failure counts by stage over a window. `other` catches stages outside the
// taxonomy (unknown error classes) so total() always equals the failure count.
struct StageBreakdown {
  std::uint64_t connect = 0;
  std::uint64_t handshake = 0;
  std::uint64_t query = 0;
  std::uint64_t timeout = 0;
  std::uint64_t other = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return connect + handshake + query + timeout + other;
  }
  // Stage with the most failures; ties break in taxonomy order (connect,
  // handshake, query, timeout, other). "" when there are no failures.
  [[nodiscard]] std::string_view dominant() const noexcept;

  [[nodiscard]] util::Json to_json() const;
  [[nodiscard]] static Result<StageBreakdown> from_json(const util::Json& j);
};

// Aggregate profile of a window of evidence: availability plus per-phase
// latency medians over the successful queries (0 when none succeeded).
struct PhaseProfile {
  std::uint64_t queries = 0;
  std::uint64_t failures = 0;
  double availability = 1.0;      // 1.0 when the window has no queries
  double reused_fraction = 0.0;   // successes served on a reused connection
  double response_ms = 0.0;       // medians over successes
  double tcp_ms = 0.0;
  double tls_ms = 0.0;
  double quic_ms = 0.0;
  double wait_ms = 0.0;
  double exchange_ms = 0.0;

  [[nodiscard]] util::Json to_json() const;
  [[nodiscard]] static Result<PhaseProfile> from_json(const util::Json& j);
};

// Field-wise window minus baseline. Counts are not differenced — windows of
// different widths make raw count deltas meaningless.
struct PhaseDelta {
  double availability = 0.0;
  double reused_fraction = 0.0;
  double response_ms = 0.0;
  double tcp_ms = 0.0;
  double tls_ms = 0.0;
  double quic_ms = 0.0;
  double wait_ms = 0.0;
  double exchange_ms = 0.0;

  [[nodiscard]] util::Json to_json() const;
  [[nodiscard]] static Result<PhaseDelta> from_json(const util::Json& j);
};

// One concrete query backing a diagnosis: enough coordinates to find the
// full record in the campaign output or the flight recorder. `flight_ref`
// is filled by the caller (it knows the resolver and ref convention).
struct Exemplar {
  std::string vantage;
  std::string domain;
  int epoch = 0;
  int round = 0;
  bool ok = false;
  double response_ms = 0.0;
  std::string failure_stage;  // "" for slow-success exemplars
  std::string error_class;
  std::string flight_ref;

  [[nodiscard]] util::Json to_json() const;
  [[nodiscard]] static Result<Exemplar> from_json(const util::Json& j);
};

// All three aggregations scan rows with from_epoch <= epoch <= to_epoch
// (inclusive, matching monitor event bounds); an empty or inverted range
// yields the default-constructed aggregate.
[[nodiscard]] StageBreakdown count_stages(const std::vector<QueryEvidence>& rows, int from_epoch,
                                          int to_epoch);
[[nodiscard]] PhaseProfile profile_phases(const std::vector<QueryEvidence>& rows, int from_epoch,
                                          int to_epoch);
[[nodiscard]] PhaseDelta phase_delta(const PhaseProfile& baseline, const PhaseProfile& window);

// Up to `limit` exemplars: failures first (ascending epoch, vantage, round,
// domain — earliest evidence of the problem), then the slowest successes
// (descending response_ms, same ascending tie-break).
[[nodiscard]] std::vector<Exemplar> pick_exemplars(const std::vector<QueryEvidence>& rows,
                                                   int from_epoch, int to_epoch,
                                                   std::size_t limit);

}  // namespace ednsm::obs
