#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace ednsm::obs {

namespace {

// Deterministic double formatting for the JSONL dump: %.12g is stable across
// runs (the values themselves are deterministic) and round enough to read.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return std::string(buf);
}

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

Metrics::Key Metrics::counter_key(std::string_view name) {
  const Key k = counter_names_.intern(name);
  if (k >= counters_.size()) counters_.resize(k + 1, 0);
  return k;
}

std::uint64_t Metrics::counter(std::string_view name) const {
  const auto k = counter_names_.find(name);
  return k.has_value() && *k < counters_.size() ? counters_[*k] : 0;
}

void Metrics::set_gauge(std::string_view name, double value) {
  const Key k = gauge_names_.intern(name);
  if (k >= gauges_.size()) gauges_.resize(k + 1, 0.0);
  gauges_[k] = value;
}

double Metrics::gauge(std::string_view name) const {
  const auto k = gauge_names_.find(name);
  return k.has_value() && *k < gauges_.size() ? gauges_[*k] : 0.0;
}

Metrics::Key Metrics::distribution_key(std::string_view name) {
  const Key k = dist_names_.intern(name);
  if (k >= dists_.size()) dists_.resize(k + 1);
  return k;
}

void Metrics::observe(Key distribution, double value) {
  Distribution& d = dists_[distribution];
  d.welford.add(value);
  d.histogram.add(value);
}

const stats::Welford* Metrics::distribution(std::string_view name) const {
  const auto k = dist_names_.find(name);
  return k.has_value() && *k < dists_.size() ? &dists_[*k].welford : nullptr;
}

void Metrics::merge(const Metrics& other) {
  for (Key k = 0; k < other.counters_.size(); ++k) {
    if (other.counters_[k] != 0) add(other.counter_names_.name(k), other.counters_[k]);
  }
  for (Key k = 0; k < other.gauges_.size(); ++k) {
    const std::string& name = other.gauge_names_.name(k);
    const Key mine = gauge_names_.intern(name);
    if (mine >= gauges_.size()) gauges_.resize(mine + 1, 0.0);
    gauges_[mine] += other.gauges_[k];
  }
  for (Key k = 0; k < other.dists_.size(); ++k) {
    const Key mine = distribution_key(other.dist_names_.name(k));
    dists_[mine].welford.merge(other.dists_[k].welford);
    dists_[mine].histogram.merge(other.dists_[k].histogram);
  }
}

void Metrics::write_jsonl(std::ostream& os) const {
  struct Line {
    std::string_view name;
    int kind;  // 0 counter, 1 distribution, 2 gauge — tiebreak for sorting
    Key key;
  };
  std::vector<Line> lines;
  lines.reserve(counters_.size() + gauges_.size() + dists_.size());
  for (Key k = 0; k < counters_.size(); ++k) lines.push_back({counter_names_.name(k), 0, k});
  for (Key k = 0; k < dists_.size(); ++k) lines.push_back({dist_names_.name(k), 1, k});
  for (Key k = 0; k < gauges_.size(); ++k) lines.push_back({gauge_names_.name(k), 2, k});
  std::sort(lines.begin(), lines.end(), [](const Line& a, const Line& b) {
    return a.name != b.name ? a.name < b.name : a.kind < b.kind;
  });

  for (const Line& line : lines) {
    switch (line.kind) {
      case 0:
        os << "{\"kind\":\"counter\",\"name\":";
        write_escaped(os, line.name);
        os << ",\"value\":" << counters_[line.key] << "}\n";
        break;
      case 1: {
        const Distribution& d = dists_[line.key];
        os << "{\"kind\":\"distribution\",\"name\":";
        write_escaped(os, line.name);
        os << ",\"count\":" << d.welford.count();
        if (d.welford.count() > 0) {
          os << ",\"mean\":" << fmt_double(d.welford.mean())
             << ",\"stddev\":" << fmt_double(d.welford.stddev())
             << ",\"min\":" << fmt_double(d.welford.min())
             << ",\"max\":" << fmt_double(d.welford.max())
             << ",\"p50\":" << fmt_double(d.histogram.approx_quantile(0.50))
             << ",\"p90\":" << fmt_double(d.histogram.approx_quantile(0.90))
             << ",\"p99\":" << fmt_double(d.histogram.approx_quantile(0.99));
        }
        os << "}\n";
        break;
      }
      default:
        os << "{\"kind\":\"gauge\",\"name\":";
        write_escaped(os, line.name);
        os << ",\"value\":" << fmt_double(gauges_[line.key]) << "}\n";
    }
  }
}

std::string Metrics::jsonl() const {
  std::ostringstream os;
  write_jsonl(os);
  return std::move(os).str();
}

util::Json Metrics::to_json() const {
  util::JsonObject o;
  util::JsonArray counters;
  counters.reserve(counters_.size());
  for (Key k = 0; k < counters_.size(); ++k) {
    util::JsonArray entry;
    entry.emplace_back(counter_names_.name(k));
    entry.emplace_back(counters_[k]);
    counters.emplace_back(std::move(entry));
  }
  o["counters"] = util::Json(std::move(counters));
  util::JsonArray gauges;
  gauges.reserve(gauges_.size());
  for (Key k = 0; k < gauges_.size(); ++k) {
    util::JsonArray entry;
    entry.emplace_back(gauge_names_.name(k));
    entry.emplace_back(gauges_[k]);
    gauges.emplace_back(std::move(entry));
  }
  o["gauges"] = util::Json(std::move(gauges));
  util::JsonArray dists;
  dists.reserve(dists_.size());
  for (Key k = 0; k < dists_.size(); ++k) {
    const Distribution& d = dists_[k];
    util::JsonObject entry;
    entry["name"] = dist_names_.name(k);
    entry["count"] = d.welford.count();
    entry["mean"] = d.welford.mean();
    entry["m2"] = d.welford.m2();
    entry["min"] = d.welford.min();
    entry["max"] = d.welford.max();
    // Sparse bins: [bin_index, count] pairs for nonzero bins only (the last
    // bin is the overflow bin, matching Histogram::add_count).
    util::JsonArray bins;
    const std::vector<std::uint64_t>& counts = d.histogram.bins();
    for (std::size_t b = 0; b < counts.size(); ++b) {
      if (counts[b] == 0) continue;
      util::JsonArray pair;
      pair.emplace_back(static_cast<std::uint64_t>(b));
      pair.emplace_back(counts[b]);
      bins.emplace_back(std::move(pair));
    }
    entry["bins"] = util::Json(std::move(bins));
    dists.emplace_back(std::move(entry));
  }
  o["dists"] = util::Json(std::move(dists));
  return util::Json(std::move(o));
}

Result<Metrics> Metrics::from_json(const util::Json& j) {
  if (!j.is_object()) return Err{std::string("metrics: not an object")};
  if (!j.at("counters").is_array() || !j.at("gauges").is_array() || !j.at("dists").is_array()) {
    return Err{std::string("metrics: missing counters/gauges/dists arrays")};
  }
  Metrics m;
  for (const util::Json& e : j.at("counters").as_array()) {
    if (!e.is_array() || e.as_array().size() != 2 || !e.as_array()[0].is_string() ||
        !e.as_array()[1].is_number()) {
      return Err{std::string("metrics: counter entries must be [name, value]")};
    }
    m.add(e.as_array()[0].as_string(),
          static_cast<std::uint64_t>(e.as_array()[1].as_number()));
  }
  for (const util::Json& e : j.at("gauges").as_array()) {
    if (!e.is_array() || e.as_array().size() != 2 || !e.as_array()[0].is_string() ||
        !e.as_array()[1].is_number()) {
      return Err{std::string("metrics: gauge entries must be [name, value]")};
    }
    m.set_gauge(e.as_array()[0].as_string(), e.as_array()[1].as_number());
  }
  for (const util::Json& e : j.at("dists").as_array()) {
    if (!e.is_object() || !e.at("name").is_string() || !e.at("count").is_number()) {
      return Err{std::string("metrics: distribution entries need name and count")};
    }
    const Key k = m.distribution_key(e.at("name").as_string());
    Distribution& d = m.dists_[k];
    d.welford = stats::Welford::from_moments(
        static_cast<std::uint64_t>(e.at("count").as_number()),
        e.at("mean").is_number() ? e.at("mean").as_number() : 0.0,
        e.at("m2").is_number() ? e.at("m2").as_number() : 0.0,
        e.at("min").is_number() ? e.at("min").as_number() : 0.0,
        e.at("max").is_number() ? e.at("max").as_number() : 0.0);
    if (!e.at("bins").is_array()) return Err{std::string("metrics: distribution missing bins")};
    for (const util::Json& pair : e.at("bins").as_array()) {
      if (!pair.is_array() || pair.as_array().size() != 2 || !pair.as_array()[0].is_number() ||
          !pair.as_array()[1].is_number()) {
        return Err{std::string("metrics: histogram bins must be [index, count]")};
      }
      if (!d.histogram.add_count(static_cast<std::size_t>(pair.as_array()[0].as_number()),
                                 static_cast<std::uint64_t>(pair.as_array()[1].as_number()))) {
        return Err{std::string("metrics: histogram bin index out of range")};
      }
    }
  }
  return m;
}

}  // namespace ednsm::obs
