#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace ednsm::obs {

namespace {

// Deterministic double formatting for the JSONL dump: %.12g is stable across
// runs (the values themselves are deterministic) and round enough to read.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return std::string(buf);
}

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

Metrics::Key Metrics::counter_key(std::string_view name) {
  const Key k = counter_names_.intern(name);
  if (k >= counters_.size()) counters_.resize(k + 1, 0);
  return k;
}

std::uint64_t Metrics::counter(std::string_view name) const {
  const auto k = counter_names_.find(name);
  return k.has_value() && *k < counters_.size() ? counters_[*k] : 0;
}

void Metrics::set_gauge(std::string_view name, double value) {
  const Key k = gauge_names_.intern(name);
  if (k >= gauges_.size()) gauges_.resize(k + 1, 0.0);
  gauges_[k] = value;
}

double Metrics::gauge(std::string_view name) const {
  const auto k = gauge_names_.find(name);
  return k.has_value() && *k < gauges_.size() ? gauges_[*k] : 0.0;
}

Metrics::Key Metrics::distribution_key(std::string_view name) {
  const Key k = dist_names_.intern(name);
  if (k >= dists_.size()) dists_.resize(k + 1);
  return k;
}

void Metrics::observe(Key distribution, double value) {
  Distribution& d = dists_[distribution];
  d.welford.add(value);
  d.histogram.add(value);
}

const stats::Welford* Metrics::distribution(std::string_view name) const {
  const auto k = dist_names_.find(name);
  return k.has_value() && *k < dists_.size() ? &dists_[*k].welford : nullptr;
}

void Metrics::merge(const Metrics& other) {
  for (Key k = 0; k < other.counters_.size(); ++k) {
    if (other.counters_[k] != 0) add(other.counter_names_.name(k), other.counters_[k]);
  }
  for (Key k = 0; k < other.gauges_.size(); ++k) {
    const std::string& name = other.gauge_names_.name(k);
    const Key mine = gauge_names_.intern(name);
    if (mine >= gauges_.size()) gauges_.resize(mine + 1, 0.0);
    gauges_[mine] += other.gauges_[k];
  }
  for (Key k = 0; k < other.dists_.size(); ++k) {
    const Key mine = distribution_key(other.dist_names_.name(k));
    dists_[mine].welford.merge(other.dists_[k].welford);
    dists_[mine].histogram.merge(other.dists_[k].histogram);
  }
}

void Metrics::write_jsonl(std::ostream& os) const {
  struct Line {
    std::string_view name;
    int kind;  // 0 counter, 1 distribution, 2 gauge — tiebreak for sorting
    Key key;
  };
  std::vector<Line> lines;
  lines.reserve(counters_.size() + gauges_.size() + dists_.size());
  for (Key k = 0; k < counters_.size(); ++k) lines.push_back({counter_names_.name(k), 0, k});
  for (Key k = 0; k < dists_.size(); ++k) lines.push_back({dist_names_.name(k), 1, k});
  for (Key k = 0; k < gauges_.size(); ++k) lines.push_back({gauge_names_.name(k), 2, k});
  std::sort(lines.begin(), lines.end(), [](const Line& a, const Line& b) {
    return a.name != b.name ? a.name < b.name : a.kind < b.kind;
  });

  for (const Line& line : lines) {
    switch (line.kind) {
      case 0:
        os << "{\"kind\":\"counter\",\"name\":";
        write_escaped(os, line.name);
        os << ",\"value\":" << counters_[line.key] << "}\n";
        break;
      case 1: {
        const Distribution& d = dists_[line.key];
        os << "{\"kind\":\"distribution\",\"name\":";
        write_escaped(os, line.name);
        os << ",\"count\":" << d.welford.count();
        if (d.welford.count() > 0) {
          os << ",\"mean\":" << fmt_double(d.welford.mean())
             << ",\"stddev\":" << fmt_double(d.welford.stddev())
             << ",\"min\":" << fmt_double(d.welford.min())
             << ",\"max\":" << fmt_double(d.welford.max())
             << ",\"p50\":" << fmt_double(d.histogram.approx_quantile(0.50))
             << ",\"p90\":" << fmt_double(d.histogram.approx_quantile(0.90))
             << ",\"p99\":" << fmt_double(d.histogram.approx_quantile(0.99));
        }
        os << "}\n";
        break;
      }
      default:
        os << "{\"kind\":\"gauge\",\"name\":";
        write_escaped(os, line.name);
        os << ",\"value\":" << fmt_double(gauges_[line.key]) << "}\n";
    }
  }
}

std::string Metrics::jsonl() const {
  std::ostringstream os;
  write_jsonl(os);
  return std::move(os).str();
}

}  // namespace ednsm::obs
