// Metrics registry: named counters, gauges, and distributions keyed by
// interned symbols (the core/availability convention — one dense u32 per
// name, assigned in first-registration order, so identical workloads produce
// identical tables).
//
// Names follow "subsystem.metric" (e.g. "netsim.datagrams_dropped",
// "transport.pool_reused"). Hot paths hold a Counter handle (a symbol) and
// bump by index; cold paths use the string-keyed convenience overloads.
// Distributions reuse stats/welford for moments and stats/histogram for
// quantiles. merge() combines shard registries by name, so the merged dump is
// independent of shard execution order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/intern.h"
#include "util/json.h"
#include "stats/histogram.h"
#include "stats/welford.h"

namespace ednsm::obs {

class Metrics {
 public:
  using Key = util::InternTable::Symbol;

  // Distribution bins: 1 ms resolution to 2 s, overflow above — sized for
  // per-query latencies under the paper's 5 s timeout.
  static constexpr double kBinWidthMs = 1.0;
  static constexpr std::size_t kBins = 2000;

  // -- counters ---------------------------------------------------------------
  [[nodiscard]] Key counter_key(std::string_view name);
  void add(Key counter, std::uint64_t delta = 1) { counters_[counter] += delta; }
  void add(std::string_view name, std::uint64_t delta = 1) { add(counter_key(name), delta); }
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;

  // -- gauges (last write wins; merge sums, for shard-additive gauges) --------
  void set_gauge(std::string_view name, double value);
  [[nodiscard]] double gauge(std::string_view name) const;

  // -- distributions ----------------------------------------------------------
  [[nodiscard]] Key distribution_key(std::string_view name);
  void observe(Key distribution, double value);
  void observe(std::string_view name, double value) { observe(distribution_key(name), value); }
  [[nodiscard]] const stats::Welford* distribution(std::string_view name) const;

  // Combine another registry into this one by metric name (not symbol):
  // counters and gauges sum, distributions merge moments and bins.
  void merge(const Metrics& other);

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && dists_.empty();
  }

  // JSONL dump: one JSON object per line, sorted by (name, kind) so the
  // stream is deterministic regardless of registration order. Counters:
  // {"kind":"counter","name":...,"value":N}. Gauges: {"kind":"gauge",...,
  // "value":X}. Distributions: {"kind":"distribution","name":...,"count":N,
  // "mean":...,"stddev":...,"min":...,"max":...,"p50":...,"p90":...,"p99":...}.
  void write_jsonl(std::ostream& os) const;
  [[nodiscard]] std::string jsonl() const;

  // Exact (mergeable) JSON round trip, unlike the summary-only JSONL dump:
  // counters and gauges by name, distributions with their full Welford
  // moments and sparse histogram bins. This is what shard files embed so a
  // cross-process merge combines distributions exactly as an in-process merge
  // does. Entries are persisted in intern order, which from_json replays, so
  // symbol assignment survives the round trip byte-for-byte.
  [[nodiscard]] util::Json to_json() const;
  [[nodiscard]] static Result<Metrics> from_json(const util::Json& j);

 private:
  struct Distribution {
    stats::Welford welford;
    stats::Histogram histogram{kBinWidthMs, kBins};
  };

  util::InternTable counter_names_;
  std::vector<std::uint64_t> counters_;
  util::InternTable gauge_names_;
  std::vector<double> gauges_;
  util::InternTable dist_names_;
  std::vector<Distribution> dists_;
};

}  // namespace ednsm::obs
