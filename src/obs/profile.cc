#include "obs/profile.h"

#include <algorithm>
#include <cstdio>

namespace ednsm::obs {

util::InternTable::Symbol WallProfiler::key(std::string_view stage) {
  const auto k = stages_.intern(stage);
  if (k >= totals_ms_.size()) totals_ms_.resize(k + 1, 0.0);
  return k;
}

void WallProfiler::add(util::InternTable::Symbol stage, double ms) {
  if (stage >= totals_ms_.size()) totals_ms_.resize(stage + 1, 0.0);
  totals_ms_[stage] += ms;
}

std::vector<std::pair<std::string, double>> WallProfiler::totals() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(totals_ms_.size());
  for (util::InternTable::Symbol k = 0; k < totals_ms_.size(); ++k) {
    out.emplace_back(stages_.name(k), totals_ms_[k]);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  return out;
}

std::string WallProfiler::report() const {
  const auto rows = totals();
  double sum = 0.0;
  for (const auto& [stage, ms] : rows) sum += ms;
  std::string out = "stage                         wall_ms      %\n";
  char buf[128];
  for (const auto& [stage, ms] : rows) {
    const double pct = sum > 0.0 ? 100.0 * ms / sum : 0.0;
    std::snprintf(buf, sizeof(buf), "%-28s %8.2f  %5.1f\n", stage.c_str(), ms, pct);
    out += buf;
  }
  return out;
}

}  // namespace ednsm::obs
