// Wall-clock self-profiler for the bench harness: accumulates real elapsed
// time per named stage so `ednsm_bench --profile` can report where wall time
// goes (world construction, campaign run, merge, serialization).
//
// This is the one deliberately non-deterministic corner of src/obs: it reads
// the host's steady clock (lint-suppressed below) and must therefore never
// feed simulated results — it is harness-side instrumentation only, exactly
// like the existing wall timing in ednsm_bench.
#pragma once

#include <chrono>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/intern.h"

namespace ednsm::obs {

class WallProfiler {
 public:
  // RAII stage timer: accumulates into the profiler at scope exit.
  class Scope {
   public:
    Scope(WallProfiler& profiler, std::string_view stage)
        : profiler_(profiler),
          key_(profiler.key(stage)),
          // ednsm-lint: allow(determinism-wallclock) — harness-side profiler;
          // never feeds simulated results (see header comment).
          start_(std::chrono::steady_clock::now()) {}
    ~Scope() {
      // ednsm-lint: allow(determinism-wallclock) — harness-side profiler
      const auto end = std::chrono::steady_clock::now();
      profiler_.add(key_, std::chrono::duration<double, std::milli>(end - start_).count());
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    WallProfiler& profiler_;
    util::InternTable::Symbol key_;
    std::chrono::steady_clock::time_point start_;
  };

  [[nodiscard]] Scope scope(std::string_view stage) { return Scope(*this, stage); }

  [[nodiscard]] util::InternTable::Symbol key(std::string_view stage);
  void add(util::InternTable::Symbol stage, double ms);
  void add(std::string_view stage, double ms) { add(key(stage), ms); }

  // (stage, total ms) pairs, largest total first (ties broken by name so the
  // report layout is stable run-to-run even if timings jitter).
  [[nodiscard]] std::vector<std::pair<std::string, double>> totals() const;

  // Plain-text table of totals with percentage of the profiled sum.
  [[nodiscard]] std::string report() const;

 private:
  util::InternTable stages_;
  std::vector<double> totals_ms_;
};

}  // namespace ednsm::obs
