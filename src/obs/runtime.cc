#include "obs/runtime.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "util/fs.h"

namespace ednsm::obs {

namespace {

// Telemetry-domain hex codec for 64-bit identity fields (fingerprint, seed):
// JSON numbers are doubles and cannot hold all 64 bits. Mirrors the shard
// file's convention without depending on core.
std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return std::string(buf);
}

Result<std::uint64_t> hex16_parse(const util::Json& j, const char* field) {
  if (!j.is_string()) return Err{std::string(field) + ": expected a hex string"};
  const std::string& s = j.as_string();
  if (s.size() != 16) return Err{std::string(field) + ": expected 16 hex digits"};
  std::uint64_t v = 0;
  for (const char c : s) {
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return Err{std::string(field) + ": invalid hex digit"};
    }
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  return v;
}

Result<std::uint64_t> u64_field(const util::Json& j, const char* field) {
  const util::Json& v = j.at(field);
  if (!v.is_number() || v.as_number() < 0) {
    return Err{std::string(field) + ": expected a non-negative number"};
  }
  return static_cast<std::uint64_t>(v.as_number());
}

Result<double> ms_field(const util::Json& j, const char* field) {
  const util::Json& v = j.at(field);
  if (!v.is_number() || v.as_number() < 0) {
    return Err{std::string(field) + ": expected a non-negative number"};
  }
  return v.as_number();
}

Result<void> expect_schema(const util::Json& j, std::string_view name, int version) {
  if (!j.is_object()) return Err{std::string("expected a JSON object")};
  if (!j.at("schema").is_string() || j.at("schema").as_string() != name) {
    return Err{"schema: expected \"" + std::string(name) + "\""};
  }
  if (!j.at("version").is_number() ||
      static_cast<int>(j.at("version").as_number()) != version) {
    return Err{"version: expected " + std::to_string(version)};
  }
  return Result<void>{};
}

std::uint64_t relaxed_sum(const std::deque<util::RingStatSink>& sinks,
                          std::atomic<std::uint64_t> util::RingStatSink::* member) {
  std::uint64_t total = 0;
  for (const util::RingStatSink& s : sinks) {
    total += (s.*member).load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t relaxed_max(const std::deque<util::RingStatSink>& sinks,
                          std::atomic<std::uint64_t> util::RingStatSink::* member) {
  std::uint64_t best = 0;
  for (const util::RingStatSink& s : sinks) {
    best = std::max(best, (s.*member).load(std::memory_order_relaxed));
  }
  return best;
}

}  // namespace

std::uint64_t runtime_now_ns() {
  // The telemetry domain is the sanctioned home of the host clock; the
  // obs-domain-separation lint rule polices every call path out of here.
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

std::uint64_t runtime_unix_ms() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::system_clock::now().time_since_epoch())
                                        .count());
}

// --------------------------------------------------------------------------
// RuntimeStageSnapshot
// --------------------------------------------------------------------------

util::Json RuntimeStageSnapshot::stage_json() const {
  util::JsonObject o;
  o["stage"] = util::Json(stage);
  o["items_in"] = util::Json(static_cast<double>(items_in));
  o["items_out"] = util::Json(static_cast<double>(items_out));
  o["stall_spins"] = util::Json(static_cast<double>(stall_spins));
  o["stall_ns"] = util::Json(static_cast<double>(stall_ns));
  o["busy_ns"] = util::Json(static_cast<double>(busy_ns));
  o["max_queue_depth"] = util::Json(static_cast<double>(max_queue_depth));
  return util::Json(std::move(o));
}

Result<RuntimeStageSnapshot> RuntimeStageSnapshot::stage_from_json(const util::Json& j) {
  if (!j.is_object()) return Err{std::string("stage entry: expected an object")};
  RuntimeStageSnapshot s;
  if (!j.at("stage").is_string() || j.at("stage").as_string().empty()) {
    return Err{std::string("stage entry: missing stage name")};
  }
  s.stage = j.at("stage").as_string();
  auto items_in = u64_field(j, "items_in");
  auto items_out = u64_field(j, "items_out");
  auto stall_spins = u64_field(j, "stall_spins");
  auto stall_ns = u64_field(j, "stall_ns");
  auto busy_ns = u64_field(j, "busy_ns");
  auto max_depth = u64_field(j, "max_queue_depth");
  for (const auto* r : {&items_in, &items_out, &stall_spins, &stall_ns, &busy_ns, &max_depth}) {
    if (!*r) return Err{"stage \"" + s.stage + "\": " + r->error()};
  }
  s.items_in = items_in.value();
  s.items_out = items_out.value();
  s.stall_spins = stall_spins.value();
  s.stall_ns = stall_ns.value();
  s.busy_ns = busy_ns.value();
  s.max_queue_depth = max_depth.value();
  return s;
}

// --------------------------------------------------------------------------
// RuntimeHeartbeat
// --------------------------------------------------------------------------

util::Json RuntimeHeartbeat::heartbeat_json() const {
  util::JsonObject o;
  o["schema"] = util::Json(std::string(kSchemaName));
  o["version"] = util::Json(kSchemaVersion);
  o["status"] = util::Json(status);
  o["spec_fingerprint"] = util::Json(hex16(spec_fingerprint));
  util::JsonObject shard;
  shard["k"] = util::Json(static_cast<double>(shard_k));
  shard["n"] = util::Json(static_cast<double>(shard_n));
  o["shard"] = util::Json(std::move(shard));
  o["threads"] = util::Json(threads);
  o["started_unix_ms"] = util::Json(static_cast<double>(started_unix_ms));
  o["updated_unix_ms"] = util::Json(static_cast<double>(updated_unix_ms));
  o["elapsed_ms"] = util::Json(elapsed_ms);
  o["plans_total"] = util::Json(static_cast<double>(plans_total));
  o["plans_done"] = util::Json(static_cast<double>(plans_done));
  o["collector_lag"] = util::Json(static_cast<double>(collector_lag));
  o["records"] = util::Json(static_cast<double>(records));
  o["bytes_encoded"] = util::Json(static_cast<double>(bytes_encoded));
  o["completion"] = util::Json(completion);
  o["plans_per_sec"] = util::Json(plans_per_sec);
  o["eta_ms"] = util::Json(eta_ms);
  util::JsonArray stage_rows;
  stage_rows.reserve(stages.size());
  for (const RuntimeStageSnapshot& s : stages) stage_rows.push_back(s.stage_json());
  o["stages"] = util::Json(std::move(stage_rows));
  return util::Json(std::move(o));
}

Result<RuntimeHeartbeat> RuntimeHeartbeat::heartbeat_from_json(const util::Json& j) {
  if (auto ok = expect_schema(j, kSchemaName, kSchemaVersion); !ok) return Err{ok.error()};
  RuntimeHeartbeat h;
  if (!j.at("status").is_string()) return Err{std::string("status: expected a string")};
  h.status = j.at("status").as_string();
  if (h.status != "starting" && h.status != "running" && h.status != "done" &&
      h.status != "failed") {
    return Err{"status: unknown value \"" + h.status + "\""};
  }
  auto fp = hex16_parse(j.at("spec_fingerprint"), "spec_fingerprint");
  if (!fp) return Err{fp.error()};
  h.spec_fingerprint = fp.value();
  const util::Json& shard = j.at("shard");
  auto k = u64_field(shard, "k");
  auto n = u64_field(shard, "n");
  if (!k || !n) return Err{std::string("shard: expected {k, n} numbers")};
  if (n.value() < 1 || k.value() >= n.value()) {
    return Err{std::string("shard: require 0 <= k < n")};
  }
  h.shard_k = static_cast<std::size_t>(k.value());
  h.shard_n = static_cast<std::size_t>(n.value());
  if (!j.at("threads").is_number() || j.at("threads").as_number() < 0) {
    return Err{std::string("threads: expected a non-negative number")};
  }
  h.threads = static_cast<int>(j.at("threads").as_number());
  auto started = u64_field(j, "started_unix_ms");
  auto updated = u64_field(j, "updated_unix_ms");
  if (!started) return Err{started.error()};
  if (!updated) return Err{updated.error()};
  if (updated.value() < started.value()) {
    return Err{std::string("updated_unix_ms earlier than started_unix_ms")};
  }
  h.started_unix_ms = started.value();
  h.updated_unix_ms = updated.value();
  auto elapsed = ms_field(j, "elapsed_ms");
  if (!elapsed) return Err{elapsed.error()};
  h.elapsed_ms = elapsed.value();
  auto plans_total = u64_field(j, "plans_total");
  auto plans_done = u64_field(j, "plans_done");
  auto lag = u64_field(j, "collector_lag");
  auto records = u64_field(j, "records");
  auto bytes = u64_field(j, "bytes_encoded");
  for (const auto* r : {&plans_total, &plans_done, &lag, &records, &bytes}) {
    if (!*r) return Err{r->error()};
  }
  if (plans_done.value() > plans_total.value()) {
    return Err{std::string("plans_done exceeds plans_total")};
  }
  h.plans_total = plans_total.value();
  h.plans_done = plans_done.value();
  h.collector_lag = lag.value();
  h.records = records.value();
  h.bytes_encoded = bytes.value();
  if (!j.at("completion").is_number() || j.at("completion").as_number() < 0 ||
      j.at("completion").as_number() > 1) {
    return Err{std::string("completion: expected a number in [0, 1]")};
  }
  h.completion = j.at("completion").as_number();
  auto rate = ms_field(j, "plans_per_sec");
  auto eta = ms_field(j, "eta_ms");
  if (!rate) return Err{rate.error()};
  if (!eta) return Err{eta.error()};
  h.plans_per_sec = rate.value();
  h.eta_ms = eta.value();
  if (!j.at("stages").is_array()) return Err{std::string("stages: expected an array")};
  for (const util::Json& row : j.at("stages").as_array()) {
    auto s = RuntimeStageSnapshot::stage_from_json(row);
    if (!s) return Err{s.error()};
    h.stages.push_back(std::move(s).value());
  }
  return h;
}

// --------------------------------------------------------------------------
// RunManifest
// --------------------------------------------------------------------------

util::Json RunManifest::manifest_json() const {
  util::JsonObject o;
  o["schema"] = util::Json(std::string(kSchemaName));
  o["version"] = util::Json(kSchemaVersion);
  o["spec_fingerprint"] = util::Json(hex16(spec_fingerprint));
  o["seed"] = util::Json(hex16(seed));
  util::JsonObject shard;
  shard["k"] = util::Json(static_cast<double>(shard_k));
  shard["n"] = util::Json(static_cast<double>(shard_n));
  o["shard"] = util::Json(std::move(shard));
  o["total_shards"] = util::Json(static_cast<double>(total_shards));
  o["plans"] = util::Json(static_cast<double>(plans));
  o["threads"] = util::Json(threads);
  o["status"] = util::Json(status);
  o["started_unix_ms"] = util::Json(static_cast<double>(started_unix_ms));
  o["finished_unix_ms"] = util::Json(static_cast<double>(finished_unix_ms));
  o["wall_ms"] = util::Json(wall_ms);
  o["records"] = util::Json(static_cast<double>(records));
  o["pings"] = util::Json(static_cast<double>(pings));
  o["bytes_encoded"] = util::Json(static_cast<double>(bytes_encoded));
  util::JsonArray stage_rows;
  stage_rows.reserve(stages.size());
  for (const RuntimeStageSnapshot& s : stages) stage_rows.push_back(s.stage_json());
  o["stages"] = util::Json(std::move(stage_rows));
  return util::Json(std::move(o));
}

Result<RunManifest> RunManifest::manifest_from_json(const util::Json& j) {
  if (auto ok = expect_schema(j, kSchemaName, kSchemaVersion); !ok) return Err{ok.error()};
  RunManifest m;
  auto fp = hex16_parse(j.at("spec_fingerprint"), "spec_fingerprint");
  auto seed = hex16_parse(j.at("seed"), "seed");
  if (!fp) return Err{fp.error()};
  if (!seed) return Err{seed.error()};
  m.spec_fingerprint = fp.value();
  m.seed = seed.value();
  const util::Json& shard = j.at("shard");
  auto k = u64_field(shard, "k");
  auto n = u64_field(shard, "n");
  if (!k || !n) return Err{std::string("shard: expected {k, n} numbers")};
  if (n.value() < 1 || k.value() >= n.value()) {
    return Err{std::string("shard: require 0 <= k < n")};
  }
  m.shard_k = static_cast<std::size_t>(k.value());
  m.shard_n = static_cast<std::size_t>(n.value());
  auto total_shards = u64_field(j, "total_shards");
  auto plans = u64_field(j, "plans");
  if (!total_shards) return Err{total_shards.error()};
  if (!plans) return Err{plans.error()};
  m.total_shards = static_cast<std::size_t>(total_shards.value());
  m.plans = static_cast<std::size_t>(plans.value());
  if (m.plans > m.total_shards) return Err{std::string("plans exceeds total_shards")};
  if (!j.at("threads").is_number() || j.at("threads").as_number() < 0) {
    return Err{std::string("threads: expected a non-negative number")};
  }
  m.threads = static_cast<int>(j.at("threads").as_number());
  if (!j.at("status").is_string()) return Err{std::string("status: expected a string")};
  m.status = j.at("status").as_string();
  if (m.status != "ok" && m.status != "failed") {
    return Err{"status: unknown value \"" + m.status + "\""};
  }
  auto started = u64_field(j, "started_unix_ms");
  auto finished = u64_field(j, "finished_unix_ms");
  if (!started) return Err{started.error()};
  if (!finished) return Err{finished.error()};
  if (finished.value() < started.value()) {
    return Err{std::string("finished_unix_ms earlier than started_unix_ms")};
  }
  m.started_unix_ms = started.value();
  m.finished_unix_ms = finished.value();
  auto wall = ms_field(j, "wall_ms");
  if (!wall) return Err{wall.error()};
  m.wall_ms = wall.value();
  auto records = u64_field(j, "records");
  auto pings = u64_field(j, "pings");
  auto bytes = u64_field(j, "bytes_encoded");
  for (const auto* r : {&records, &pings, &bytes}) {
    if (!*r) return Err{r->error()};
  }
  m.records = records.value();
  m.pings = pings.value();
  m.bytes_encoded = bytes.value();
  if (!j.at("stages").is_array()) return Err{std::string("stages: expected an array")};
  for (const util::Json& row : j.at("stages").as_array()) {
    auto s = RuntimeStageSnapshot::stage_from_json(row);
    if (!s) return Err{s.error()};
    m.stages.push_back(std::move(s).value());
  }
  return m;
}

Result<RunManifest> RunManifest::manifest_load(const std::string& path) {
  auto text = util::read_file(path);
  if (!text) return Err{text.error()};
  auto json = util::Json::parse(text.value());
  if (!json) return Err{path + ": not valid JSON: " + json.error()};
  auto parsed = manifest_from_json(json.value());
  if (!parsed) return Err{path + ": " + parsed.error()};
  return parsed;
}

// --------------------------------------------------------------------------
// Campaign-level fold
// --------------------------------------------------------------------------

std::vector<std::size_t> straggler_shards(const std::vector<RunManifest>& manifests) {
  std::vector<std::size_t> out;
  if (manifests.size() < 2) return out;
  std::vector<double> walls;
  walls.reserve(manifests.size());
  for (const RunManifest& m : manifests) walls.push_back(m.wall_ms);
  std::sort(walls.begin(), walls.end());
  const std::size_t mid = walls.size() / 2;
  const double median =
      walls.size() % 2 == 1 ? walls[mid] : (walls[mid - 1] + walls[mid]) / 2.0;
  for (std::size_t i = 0; i < manifests.size(); ++i) {
    if (median > 0 && manifests[i].wall_ms > 2.0 * median) out.push_back(i);
  }
  return out;
}

util::Json campaign_manifest_json(const std::vector<RunManifest>& manifests) {
  util::JsonObject o;
  o["schema"] = util::Json(std::string("ednsm-campaign-manifest"));
  o["version"] = util::Json(1);
  std::uint64_t records = 0;
  std::uint64_t pings = 0;
  std::uint64_t bytes = 0;
  std::size_t plans = 0;
  double max_wall = 0;
  double sum_wall = 0;
  // Emit shards sorted by slice index so the fold is independent of the
  // order the merge was handed the manifest files.
  std::vector<const RunManifest*> ordered;
  ordered.reserve(manifests.size());
  for (const RunManifest& m : manifests) ordered.push_back(&m);
  std::sort(ordered.begin(), ordered.end(),
            [](const RunManifest* a, const RunManifest* b) { return a->shard_k < b->shard_k; });
  const std::vector<std::size_t> stragglers = straggler_shards(manifests);
  util::JsonArray shard_rows;
  for (const RunManifest* m : ordered) {
    records += m->records;
    pings += m->pings;
    bytes += m->bytes_encoded;
    plans += m->plans;
    max_wall = std::max(max_wall, m->wall_ms);
    sum_wall += m->wall_ms;
    util::JsonObject row;
    row["k"] = util::Json(static_cast<double>(m->shard_k));
    row["status"] = util::Json(m->status);
    row["plans"] = util::Json(static_cast<double>(m->plans));
    row["threads"] = util::Json(m->threads);
    row["wall_ms"] = util::Json(m->wall_ms);
    row["records"] = util::Json(static_cast<double>(m->records));
    row["plans_per_sec"] = util::Json(
        m->wall_ms > 0 ? static_cast<double>(m->plans) / (m->wall_ms / 1000.0) : 0.0);
    bool straggler = false;
    for (const std::size_t idx : stragglers) {
      if (&manifests[idx] == m) straggler = true;
    }
    row["straggler"] = util::Json(straggler);
    shard_rows.push_back(util::Json(std::move(row)));
  }
  if (!manifests.empty()) {
    o["spec_fingerprint"] = util::Json(hex16(manifests.front().spec_fingerprint));
    o["shard_count"] = util::Json(static_cast<double>(manifests.size()));
    o["total_shards"] = util::Json(static_cast<double>(manifests.front().total_shards));
  }
  o["plans"] = util::Json(static_cast<double>(plans));
  o["records"] = util::Json(static_cast<double>(records));
  o["pings"] = util::Json(static_cast<double>(pings));
  o["bytes_encoded"] = util::Json(static_cast<double>(bytes));
  o["wall_ms_max"] = util::Json(max_wall);
  o["wall_ms_sum"] = util::Json(sum_wall);
  o["stragglers"] = util::Json(static_cast<double>(stragglers.size()));
  o["shards"] = util::Json(std::move(shard_rows));
  return util::Json(std::move(o));
}

std::string shard_stats_table(const std::vector<RunManifest>& manifests) {
  std::vector<const RunManifest*> ordered;
  ordered.reserve(manifests.size());
  for (const RunManifest& m : manifests) ordered.push_back(&m);
  std::sort(ordered.begin(), ordered.end(),
            [](const RunManifest* a, const RunManifest* b) { return a->shard_k < b->shard_k; });
  const std::vector<std::size_t> stragglers = straggler_shards(manifests);
  std::string out = "shard   status   plans  wall_ms    plans/s  threads\n";
  for (const RunManifest* m : ordered) {
    bool straggler = false;
    for (const std::size_t idx : stragglers) {
      if (&manifests[idx] == m) straggler = true;
    }
    char line[160];
    std::snprintf(line, sizeof(line), "%2zu/%-2zu  %-7s %6zu  %9.1f  %7.1f  %7d%s\n",
                  m->shard_k, m->shard_n, m->status.c_str(), m->plans, m->wall_ms,
                  m->wall_ms > 0 ? static_cast<double>(m->plans) / (m->wall_ms / 1000.0) : 0.0,
                  m->threads, straggler ? "  << straggler (>2x median wall)" : "");
    out += line;
  }
  return out;
}

// --------------------------------------------------------------------------
// RuntimeTelemetry
// --------------------------------------------------------------------------

RuntimeTelemetry::RuntimeTelemetry(ClockNs now_ns, ClockMs unix_ms)
    : now_ns_(now_ns), unix_ms_(unix_ms) {}

void RuntimeTelemetry::describe_run(std::uint64_t spec_fingerprint, std::size_t shard_k,
                                    std::size_t shard_n, int threads) {
  spec_fingerprint_ = spec_fingerprint;
  shard_k_ = shard_k;
  shard_n_ = shard_n;
  threads_ = threads;
}

void RuntimeTelemetry::begin_run(std::uint64_t plans_total) {
  plans_total_ = plans_total;
  started_unix_ms_ = unix_ms_();
  started_ns_ = now_ns_();
}

void RuntimeTelemetry::configure_workers(std::size_t workers) {
  while (task_sinks_.size() < workers) {
    task_sinks_.emplace_back().now_ns = now_ns_;
    outcome_sinks_.emplace_back().now_ns = now_ns_;
  }
}

util::RingStatSink* RuntimeTelemetry::task_ring_stats(std::size_t worker) {
  return worker < task_sinks_.size() ? &task_sinks_[worker] : nullptr;
}

util::RingStatSink* RuntimeTelemetry::outcome_ring_stats(std::size_t worker) {
  return worker < outcome_sinks_.size() ? &outcome_sinks_[worker] : nullptr;
}

void RuntimeTelemetry::note_plan_done(std::uint64_t busy_ns) {
  plans_done_.fetch_add(1, std::memory_order_relaxed);
  worker_busy_ns_.fetch_add(busy_ns, std::memory_order_relaxed);
}

void RuntimeTelemetry::note_sink_items(std::uint64_t items, std::uint64_t busy_ns) {
  sink_items_.fetch_add(items, std::memory_order_relaxed);
  collector_busy_ns_.fetch_add(busy_ns, std::memory_order_relaxed);
}

void RuntimeTelemetry::note_collector_idle_spin() {
  collector_idle_spins_.fetch_add(1, std::memory_order_relaxed);
}

void RuntimeTelemetry::note_records(std::uint64_t n) {
  records_.fetch_add(n, std::memory_order_relaxed);
}

void RuntimeTelemetry::note_bytes_encoded(std::uint64_t n) {
  bytes_encoded_.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t RuntimeTelemetry::plans_done_so_far() const {
  return plans_done_.load(std::memory_order_relaxed);
}

RuntimeHeartbeat RuntimeTelemetry::snapshot_runtime(std::string status) const {
  RuntimeHeartbeat h;
  h.status = std::move(status);
  h.spec_fingerprint = spec_fingerprint_;
  h.shard_k = shard_k_;
  h.shard_n = shard_n_;
  h.threads = threads_;
  h.started_unix_ms = started_unix_ms_;
  h.updated_unix_ms = std::max(unix_ms_(), started_unix_ms_);
  const std::uint64_t now = now_ns_();
  h.elapsed_ms =
      now > started_ns_ ? static_cast<double>(now - started_ns_) / 1e6 : 0.0;
  h.plans_total = plans_total_;
  h.plans_done = std::min(plans_done_.load(std::memory_order_relaxed), plans_total_);
  const std::uint64_t sunk = sink_items_.load(std::memory_order_relaxed);
  h.collector_lag = h.plans_done > sunk ? h.plans_done - sunk : 0;
  h.records = records_.load(std::memory_order_relaxed);
  h.bytes_encoded = bytes_encoded_.load(std::memory_order_relaxed);
  h.completion = plans_total_ > 0
                     ? static_cast<double>(h.plans_done) / static_cast<double>(plans_total_)
                     : 0.0;
  h.plans_per_sec =
      h.elapsed_ms > 0 ? static_cast<double>(h.plans_done) / (h.elapsed_ms / 1000.0) : 0.0;
  h.eta_ms = (h.completion > 0 && h.completion < 1.0)
                 ? h.elapsed_ms * (1.0 - h.completion) / h.completion
                 : 0.0;

  RuntimeStageSnapshot expand;
  expand.stage = "expand";
  expand.items_in = plans_total_;
  expand.items_out = relaxed_sum(task_sinks_, &util::RingStatSink::pushes);
  expand.stall_spins = relaxed_sum(task_sinks_, &util::RingStatSink::push_stall_spins);
  expand.stall_ns = relaxed_sum(task_sinks_, &util::RingStatSink::push_stall_ns);
  expand.max_queue_depth = relaxed_max(task_sinks_, &util::RingStatSink::max_occupancy);

  RuntimeStageSnapshot simulate;
  simulate.stage = "simulate";
  simulate.items_in = relaxed_sum(task_sinks_, &util::RingStatSink::pops);
  simulate.items_out = h.plans_done;
  simulate.busy_ns = worker_busy_ns_.load(std::memory_order_relaxed);
  simulate.stall_spins = relaxed_sum(outcome_sinks_, &util::RingStatSink::push_stall_spins);
  simulate.stall_ns = relaxed_sum(outcome_sinks_, &util::RingStatSink::push_stall_ns);
  simulate.max_queue_depth = relaxed_max(outcome_sinks_, &util::RingStatSink::max_occupancy);

  RuntimeStageSnapshot collect;
  collect.stage = "collect";
  collect.items_in = relaxed_sum(outcome_sinks_, &util::RingStatSink::pops);
  collect.items_out = sunk;
  collect.busy_ns = collector_busy_ns_.load(std::memory_order_relaxed);
  collect.stall_spins = collector_idle_spins_.load(std::memory_order_relaxed);

  h.stages = {std::move(expand), std::move(simulate), std::move(collect)};
  return h;
}

// --------------------------------------------------------------------------
// HeartbeatWriter
// --------------------------------------------------------------------------

HeartbeatWriter::HeartbeatWriter(std::string path, const RuntimeTelemetry& telemetry,
                                 std::uint64_t interval_ms)
    : path_(std::move(path)), telemetry_(telemetry), interval_ns_(interval_ms * 1000000ull) {}

Result<void> HeartbeatWriter::emit_heartbeat(std::string status) {
  const RuntimeHeartbeat h = telemetry_.snapshot_runtime(std::move(status));
  last_write_ns_ = telemetry_.clock_now_ns();
  return util::write_file_atomic(path_, h.heartbeat_json().dump(2) + "\n");
}

void HeartbeatWriter::write_update() {
  const std::uint64_t now = telemetry_.clock_now_ns();
  if (last_write_ns_ != 0 && now - last_write_ns_ < interval_ns_) return;
  // Telemetry must never fail the measurement: a transient heartbeat I/O
  // error is dropped, the next interval retries.
  (void)emit_heartbeat(last_write_ns_ == 0 ? "starting" : "running");
}

Result<void> HeartbeatWriter::write_final(std::string_view status) {
  return emit_heartbeat(std::string(status));
}

}  // namespace ednsm::obs
