// Wall-clock runtime telemetry for the measurement system itself: per-stage
// pipeline counters, live progress heartbeats, and end-of-run manifests for
// sharded campaigns (ZDNS-style scan status reporting; see DESIGN.md
// "Runtime telemetry and clock domains").
//
// This is the OTHER clock domain. The tracer and metrics in this module
// record *simulated* time and are part of the deterministic output contract
// (byte-identical across --threads and --shard splits). Everything in this
// header reads the *host* clock and describes how the run went — throughput,
// stalls, ETA — and must therefore never flow into results, traces, metrics,
// or shard files. That boundary is machine-checked: ednsm_lint's
// obs-domain-separation rule fails the build on any call path from a
// function defined here into a deterministic serialization sink. Telemetry
// artifacts (heartbeat files, run manifests) are separate files with their
// own schemas, validated by `ednsm_trace_check --heartbeat`.
//
// Collection follows the obs::Tracer zero-overhead pattern: the pipeline
// holds a nullable RuntimeTelemetry pointer, every hook is a null check plus
// relaxed atomics, and a run without --progress-file pays nothing but the
// null checks (measured by BM_RuntimeTelemetryOverhead in the micro bench).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"
#include "util/result.h"
#include "util/ring_stats.h"

namespace ednsm::obs {

// The sanctioned wall-clock readers (this file is exempt from the
// determinism-wallclock rule; everything outside the telemetry domain still
// is not). runtime_now_ns is monotonic (steady_clock), runtime_unix_ms is
// calendar time for heartbeat freshness stamps.
[[nodiscard]] std::uint64_t runtime_now_ns();
[[nodiscard]] std::uint64_t runtime_unix_ms();

// One pipeline stage's aggregated runtime counters, as serialized into
// heartbeats and manifests. (Deliberately not named to_json/from_json: those
// names are the deterministic codec surface; these artifacts live in the
// wall-clock domain and get their own verbs.)
struct RuntimeStageSnapshot {
  std::string stage;                   // "expand" | "simulate" | "collect"
  std::uint64_t items_in = 0;          // items entering the stage
  std::uint64_t items_out = 0;         // items the stage completed
  std::uint64_t stall_spins = 0;       // yield spins while blocked
  std::uint64_t stall_ns = 0;          // wall ns spent blocked
  std::uint64_t busy_ns = 0;           // wall ns spent doing stage work
  std::uint64_t max_queue_depth = 0;   // high-water ring occupancy

  [[nodiscard]] util::Json stage_json() const;
  [[nodiscard]] static Result<RuntimeStageSnapshot> stage_from_json(const util::Json& j);
};

// A point-in-time progress report, written crash-safely (atomic rename) to
// the --progress-file path so an orchestrator can poll it without ever
// seeing a torn write. Also the parsed form ednsm_watch renders.
struct RuntimeHeartbeat {
  static constexpr int kSchemaVersion = 1;
  static constexpr std::string_view kSchemaName = "ednsm-heartbeat";

  std::string status;                  // "starting" | "running" | "done" | "failed"
  std::uint64_t spec_fingerprint = 0;
  std::size_t shard_k = 0;
  std::size_t shard_n = 1;
  int threads = 0;
  std::uint64_t started_unix_ms = 0;
  std::uint64_t updated_unix_ms = 0;
  double elapsed_ms = 0;
  std::uint64_t plans_total = 0;
  std::uint64_t plans_done = 0;
  std::uint64_t collector_lag = 0;     // simulated but not yet collected
  std::uint64_t records = 0;
  std::uint64_t bytes_encoded = 0;
  double completion = 0;               // plans_done / plans_total in [0, 1]
  double plans_per_sec = 0;
  double eta_ms = 0;                   // 0 until the first plan completes
  std::vector<RuntimeStageSnapshot> stages;

  [[nodiscard]] util::Json heartbeat_json() const;
  [[nodiscard]] static Result<RuntimeHeartbeat> heartbeat_from_json(const util::Json& j);
};

// End-of-run provenance record: what was measured, how it was split, how
// long it took, and whether it finished — the signal a retry orchestrator
// and the merge cross-check consume. One per `ednsm_measure` process;
// ednsm_merge folds the shard set's manifests into a campaign manifest.
struct RunManifest {
  static constexpr int kSchemaVersion = 1;
  static constexpr std::string_view kSchemaName = "ednsm-run-manifest";

  std::uint64_t spec_fingerprint = 0;
  std::uint64_t seed = 0;
  std::size_t shard_k = 0;
  std::size_t shard_n = 1;
  std::size_t total_shards = 0;        // campaign-wide plan count
  std::size_t plans = 0;               // plans this process simulated
  int threads = 0;
  std::string status;                  // "ok" | "failed"
  std::uint64_t started_unix_ms = 0;
  std::uint64_t finished_unix_ms = 0;
  double wall_ms = 0;
  std::uint64_t records = 0;
  std::uint64_t pings = 0;
  std::uint64_t bytes_encoded = 0;
  std::vector<RuntimeStageSnapshot> stages;

  [[nodiscard]] util::Json manifest_json() const;
  [[nodiscard]] static Result<RunManifest> manifest_from_json(const util::Json& j);
  [[nodiscard]] static Result<RunManifest> manifest_load(const std::string& path);
};

// Campaign-level fold of a complete shard set's manifests (ednsm_merge):
// totals, wall-time spread, and the straggler list.
[[nodiscard]] util::Json campaign_manifest_json(const std::vector<RunManifest>& manifests);

// Indices (into `manifests`) of shards whose wall time exceeds 2x the median
// — the stragglers a multi-machine orchestrator should investigate.
[[nodiscard]] std::vector<std::size_t> straggler_shards(const std::vector<RunManifest>& manifests);

// Human-readable per-shard wall-time/throughput table (`ednsm_merge --stats`).
[[nodiscard]] std::string shard_stats_table(const std::vector<RunManifest>& manifests);

// The collection hub. One instance per measurement process, owned by the
// tool; the pipeline and rings hold plain pointers (nullptr = telemetry off,
// the obs::Tracer pattern). All counters are relaxed atomics — any thread
// may bump them, any thread may snapshot.
class RuntimeTelemetry {
 public:
  using ClockNs = std::uint64_t (*)();
  using ClockMs = std::uint64_t (*)();

  // Clocks are injectable so unit tests can drive deterministic snapshots;
  // production code uses the defaults.
  explicit RuntimeTelemetry(ClockNs now_ns = &runtime_now_ns,
                            ClockMs unix_ms = &runtime_unix_ms);

  // Identity stamps, set once by the tool before the run starts.
  void describe_run(std::uint64_t spec_fingerprint, std::size_t shard_k, std::size_t shard_n,
                    int threads);
  // Marks the start of the measured run and fixes the plan count.
  void begin_run(std::uint64_t plans_total);

  // Ring topology: one task-ring and one outcome-ring sink per worker.
  // Called by run_pipeline before any worker thread starts; the returned
  // sinks stay valid for the telemetry object's lifetime.
  void configure_workers(std::size_t workers);
  [[nodiscard]] util::RingStatSink* task_ring_stats(std::size_t worker);
  [[nodiscard]] util::RingStatSink* outcome_ring_stats(std::size_t worker);

  // Stage hooks (relaxed; called from pipeline threads).
  void note_plan_done(std::uint64_t busy_ns);                    // a worker finished one shard
  void note_sink_items(std::uint64_t items, std::uint64_t busy_ns);  // collector sank outcomes
  void note_collector_idle_spin();
  void note_records(std::uint64_t n);
  void note_bytes_encoded(std::uint64_t n);

  [[nodiscard]] std::uint64_t clock_now_ns() const { return now_ns_(); }
  [[nodiscard]] std::uint64_t clock_unix_ms() const { return unix_ms_(); }
  [[nodiscard]] std::uint64_t plans_done_so_far() const;

  // Assemble the current heartbeat view (status supplied by the caller).
  [[nodiscard]] RuntimeHeartbeat snapshot_runtime(std::string status) const;

 private:
  ClockNs now_ns_;
  ClockMs unix_ms_;
  std::uint64_t spec_fingerprint_ = 0;
  std::size_t shard_k_ = 0;
  std::size_t shard_n_ = 1;
  int threads_ = 0;
  std::uint64_t plans_total_ = 0;
  std::uint64_t started_unix_ms_ = 0;
  std::uint64_t started_ns_ = 0;
  // deque: RingStatSink holds atomics (immovable); deque growth never moves
  // existing elements, so handed-out pointers stay valid.
  std::deque<util::RingStatSink> task_sinks_;
  std::deque<util::RingStatSink> outcome_sinks_;
  std::atomic<std::uint64_t> plans_done_{0};
  std::atomic<std::uint64_t> worker_busy_ns_{0};
  std::atomic<std::uint64_t> sink_items_{0};
  std::atomic<std::uint64_t> collector_busy_ns_{0};
  std::atomic<std::uint64_t> collector_idle_spins_{0};
  std::atomic<std::uint64_t> records_{0};
  std::atomic<std::uint64_t> bytes_encoded_{0};
};

// Rate-limited crash-safe heartbeat emission: every write goes through
// util::write_file_atomic, so the file at `path` is always a complete JSON
// document. write_update() is cheap to call from the collector's sink hook —
// it no-ops until `interval_ms` has passed since the last write.
class HeartbeatWriter {
 public:
  HeartbeatWriter(std::string path, const RuntimeTelemetry& telemetry,
                  std::uint64_t interval_ms = 500);

  // Periodic "running" heartbeat (rate-limited; errors are swallowed —
  // telemetry must never fail the measurement).
  void write_update();
  // Forced terminal write ("done" / "failed"); surfaces I/O errors.
  [[nodiscard]] Result<void> write_final(std::string_view status);

 private:
  [[nodiscard]] Result<void> emit_heartbeat(std::string status);

  std::string path_;
  const RuntimeTelemetry& telemetry_;
  std::uint64_t interval_ns_;
  std::uint64_t last_write_ns_ = 0;
};

}  // namespace ednsm::obs
