#include "obs/timeseries.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>
#include <tuple>

namespace ednsm::obs {

namespace {

constexpr char kMagic[4] = {'E', 'D', 'T', 'S'};
constexpr std::string_view kSchema = "ednsm.timeseries.v1";

constexpr std::string_view kKindCounter = "counter";
constexpr std::string_view kKindGauge = "gauge";
constexpr std::string_view kKindHistogram = "histogram";

// Binary point tags (persisted; do not renumber).
constexpr std::uint8_t kTagCounter = 0;
constexpr std::uint8_t kTagGauge = 1;
constexpr std::uint8_t kTagHistogram = 2;

void put_u32(util::Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(util::Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_i64(util::Bytes& out, std::int64_t v) { put_u64(out, static_cast<std::uint64_t>(v)); }

void put_f64(util::Bytes& out, double v) { put_u64(out, std::bit_cast<std::uint64_t>(v)); }

void put_str(util::Bytes& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// Bounds-checked little-endian reader over the binary blob.
class ByteReader {
 public:
  explicit ByteReader(const util::Bytes& data) : data_(data) {}

  [[nodiscard]] bool read_u32(std::uint32_t& v) {
    if (pos_ + 4 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return true;
  }

  [[nodiscard]] bool read_u64(std::uint64_t& v) {
    if (pos_ + 8 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return true;
  }

  [[nodiscard]] bool read_i64(std::int64_t& v) {
    std::uint64_t u = 0;
    if (!read_u64(u)) return false;
    v = static_cast<std::int64_t>(u);
    return true;
  }

  [[nodiscard]] bool read_f64(double& v) {
    std::uint64_t u = 0;
    if (!read_u64(u)) return false;
    v = std::bit_cast<double>(u);
    return true;
  }

  [[nodiscard]] bool read_u8(std::uint8_t& v) {
    if (pos_ >= data_.size()) return false;
    v = data_[pos_++];
    return true;
  }

  [[nodiscard]] bool read_str(std::string& s) {
    std::uint32_t len = 0;
    if (!read_u32(len)) return false;
    if (pos_ + len > data_.size()) return false;
    s.assign(reinterpret_cast<const char*>(data_.data()) + pos_, len);
    pos_ += len;
    return true;
  }

  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }

 private:
  const util::Bytes& data_;
  std::size_t pos_ = 0;
};

}  // namespace

// -- SeriesPoint codec --------------------------------------------------------

util::Json SeriesPoint::to_json() const {
  util::JsonObject o;
  o["metric"] = metric;
  o["vantage"] = vantage;
  o["resolver"] = resolver;
  o["protocol"] = protocol;
  o["kind"] = kind;
  o["bucket"] = static_cast<std::int64_t>(bucket);
  o["value"] = value;
  if (kind == kKindHistogram) {
    o["count"] = count;
    o["mean"] = mean;
    o["m2"] = m2;
    o["min"] = min;
    o["max"] = max;
    util::JsonArray arr;
    arr.reserve(bins.size());
    for (const auto& [bin, n] : bins) {
      util::JsonArray pair;
      pair.emplace_back(static_cast<std::uint64_t>(bin));
      pair.emplace_back(n);
      arr.emplace_back(std::move(pair));
    }
    o["bins"] = util::Json(std::move(arr));
  }
  return util::Json(std::move(o));
}

Result<SeriesPoint> SeriesPoint::from_json(const util::Json& j) {
  if (!j.is_object()) return Err{std::string("series point: not an object")};
  SeriesPoint p;
  if (!j.at("metric").is_string() || !j.at("vantage").is_string() ||
      !j.at("resolver").is_string() || !j.at("protocol").is_string() ||
      !j.at("kind").is_string() || !j.at("bucket").is_number()) {
    return Err{std::string("series point: missing required fields")};
  }
  p.metric = j.at("metric").as_string();
  p.vantage = j.at("vantage").as_string();
  p.resolver = j.at("resolver").as_string();
  p.protocol = j.at("protocol").as_string();
  p.kind = j.at("kind").as_string();
  p.bucket = static_cast<std::int64_t>(j.at("bucket").as_number());
  if (j.at("value").is_number()) p.value = j.at("value").as_number();
  if (j.at("count").is_number()) p.count = static_cast<std::uint64_t>(j.at("count").as_number());
  if (j.at("mean").is_number()) p.mean = j.at("mean").as_number();
  if (j.at("m2").is_number()) p.m2 = j.at("m2").as_number();
  if (j.at("min").is_number()) p.min = j.at("min").as_number();
  if (j.at("max").is_number()) p.max = j.at("max").as_number();
  if (j.at("bins").is_array()) {
    for (const util::Json& e : j.at("bins").as_array()) {
      if (!e.is_array() || e.as_array().size() != 2 || !e.as_array()[0].is_number() ||
          !e.as_array()[1].is_number()) {
        return Err{std::string("series point: bins entries must be [bin, count] pairs")};
      }
      p.bins.emplace_back(static_cast<std::uint32_t>(e.as_array()[0].as_number()),
                          static_cast<std::uint64_t>(e.as_array()[1].as_number()));
    }
  }
  return p;
}

// -- TimeSeries writes --------------------------------------------------------

TimeSeries::PointKey TimeSeries::intern_key(std::string_view metric, std::string_view vantage,
                                            std::string_view resolver, std::string_view protocol,
                                            std::int64_t bucket) {
  return PointKey{names_.intern(metric), names_.intern(vantage), names_.intern(resolver),
                  names_.intern(protocol), bucket};
}

bool TimeSeries::find_key(std::string_view metric, std::string_view vantage,
                          std::string_view resolver, std::string_view protocol,
                          std::int64_t bucket, PointKey& out) const {
  const auto m = names_.find(metric);
  const auto v = names_.find(vantage);
  const auto r = names_.find(resolver);
  const auto p = names_.find(protocol);
  if (!m || !v || !r || !p) return false;
  out = PointKey{*m, *v, *r, *p, bucket};
  return true;
}

void TimeSeries::add_counter(std::string_view metric, std::string_view vantage,
                             std::string_view resolver, std::string_view protocol, std::int64_t t,
                             std::uint64_t delta) {
  counters_[intern_key(metric, vantage, resolver, protocol, bucket_of(t))] += delta;
}

void TimeSeries::set_gauge(std::string_view metric, std::string_view vantage,
                           std::string_view resolver, std::string_view protocol, std::int64_t t,
                           double value) {
  gauges_[intern_key(metric, vantage, resolver, protocol, bucket_of(t))] = value;
}

void TimeSeries::observe(std::string_view metric, std::string_view vantage,
                         std::string_view resolver, std::string_view protocol, std::int64_t t,
                         double value_ms) {
  Dist& d = dists_[intern_key(metric, vantage, resolver, protocol, bucket_of(t))];
  d.welford.add(value_ms);
  d.histogram.add(value_ms);
}

// -- TimeSeries reads ---------------------------------------------------------

std::uint64_t TimeSeries::counter_at(std::string_view metric, std::string_view vantage,
                                     std::string_view resolver, std::string_view protocol,
                                     std::int64_t bucket) const {
  PointKey k{};
  if (!find_key(metric, vantage, resolver, protocol, bucket, k)) return 0;
  const auto it = counters_.find(k);
  return it != counters_.end() ? it->second : 0;
}

double TimeSeries::gauge_at(std::string_view metric, std::string_view vantage,
                            std::string_view resolver, std::string_view protocol,
                            std::int64_t bucket) const {
  PointKey k{};
  if (!find_key(metric, vantage, resolver, protocol, bucket, k)) return 0.0;
  const auto it = gauges_.find(k);
  return it != gauges_.end() ? it->second : 0.0;
}

const stats::Welford* TimeSeries::dist_at(std::string_view metric, std::string_view vantage,
                                          std::string_view resolver, std::string_view protocol,
                                          std::int64_t bucket) const {
  PointKey k{};
  if (!find_key(metric, vantage, resolver, protocol, bucket, k)) return nullptr;
  const auto it = dists_.find(k);
  return it != dists_.end() ? &it->second.welford : nullptr;
}

double TimeSeries::dist_quantile(std::string_view metric, std::string_view vantage,
                                 std::string_view resolver, std::string_view protocol,
                                 std::int64_t bucket, double q) const {
  PointKey k{};
  if (!find_key(metric, vantage, resolver, protocol, bucket, k)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const auto it = dists_.find(k);
  if (it == dists_.end()) return std::numeric_limits<double>::quiet_NaN();
  return it->second.histogram.approx_quantile(q);
}

double TimeSeries::window_quantile(std::string_view metric, std::string_view vantage,
                                   std::string_view resolver, std::string_view protocol,
                                   std::int64_t from, std::int64_t to, double q) const {
  PointKey k{};
  if (!find_key(metric, vantage, resolver, protocol, 0, k)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  stats::Histogram merged(kHistBinWidthMs, kHistBins);
  for (std::int64_t b = from; b <= to; ++b) {
    k.bucket = b;
    const auto it = dists_.find(k);
    if (it != dists_.end()) merged.merge(it->second.histogram);
  }
  return merged.approx_quantile(q);  // NaN when no samples in the window
}

std::pair<std::int64_t, std::int64_t> TimeSeries::bucket_range() const noexcept {
  std::int64_t lo = std::numeric_limits<std::int64_t>::max();
  std::int64_t hi = std::numeric_limits<std::int64_t>::min();
  const auto scan = [&](const auto& m) {
    for (const auto& [k, unused] : m) {
      (void)unused;
      lo = std::min(lo, k.bucket);
      hi = std::max(hi, k.bucket);
    }
  };
  scan(counters_);
  scan(gauges_);
  scan(dists_);
  if (lo > hi) return {0, -1};
  return {lo, hi};
}

// -- merge / snapshot / insert ------------------------------------------------

void TimeSeries::merge(const TimeSeries& other) {
  const auto rekey = [&](const PointKey& k) {
    return intern_key(other.names_.name(k.metric), other.names_.name(k.vantage),
                      other.names_.name(k.resolver), other.names_.name(k.protocol), k.bucket);
  };
  for (const auto& [k, v] : other.counters_) counters_[rekey(k)] += v;
  for (const auto& [k, v] : other.gauges_) gauges_[rekey(k)] += v;
  for (const auto& [k, d] : other.dists_) {
    Dist& mine = dists_[rekey(k)];
    mine.welford.merge(d.welford);
    mine.histogram.merge(d.histogram);
  }
}

std::vector<SeriesPoint> TimeSeries::snapshot() const {
  std::vector<SeriesPoint> out;
  out.reserve(size());
  const auto labels = [&](const PointKey& k, SeriesPoint& p) {
    p.metric = names_.name(k.metric);
    p.vantage = names_.name(k.vantage);
    p.resolver = names_.name(k.resolver);
    p.protocol = names_.name(k.protocol);
    p.bucket = k.bucket;
  };
  for (const auto& [k, v] : counters_) {
    SeriesPoint p;
    labels(k, p);
    p.kind = std::string(kKindCounter);
    p.value = static_cast<double>(v);
    out.push_back(std::move(p));
  }
  for (const auto& [k, v] : gauges_) {
    SeriesPoint p;
    labels(k, p);
    p.kind = std::string(kKindGauge);
    p.value = v;
    out.push_back(std::move(p));
  }
  for (const auto& [k, d] : dists_) {
    SeriesPoint p;
    labels(k, p);
    p.kind = std::string(kKindHistogram);
    p.count = d.welford.count();
    p.mean = d.welford.mean();
    p.m2 = d.welford.m2();
    p.min = d.welford.min();
    p.max = d.welford.max();
    const auto& bins = d.histogram.bins();
    for (std::size_t i = 0; i < bins.size(); ++i) {
      if (bins[i] != 0) p.bins.emplace_back(static_cast<std::uint32_t>(i), bins[i]);
    }
    out.push_back(std::move(p));
  }
  std::sort(out.begin(), out.end(), [](const SeriesPoint& a, const SeriesPoint& b) {
    return std::tie(a.metric, a.vantage, a.resolver, a.protocol, a.kind, a.bucket) <
           std::tie(b.metric, b.vantage, b.resolver, b.protocol, b.kind, b.bucket);
  });
  return out;
}

Result<void> TimeSeries::insert(const SeriesPoint& p) {
  const PointKey k = intern_key(p.metric, p.vantage, p.resolver, p.protocol, p.bucket);
  if (p.kind == kKindCounter) {
    counters_[k] += static_cast<std::uint64_t>(p.value);
    return {};
  }
  if (p.kind == kKindGauge) {
    gauges_[k] += p.value;
    return {};
  }
  if (p.kind == kKindHistogram) {
    Dist incoming;
    incoming.welford = stats::Welford::from_moments(p.count, p.mean, p.m2, p.min, p.max);
    for (const auto& [bin, n] : p.bins) {
      if (!incoming.histogram.add_count(bin, n)) {
        return Err{std::string("series point: histogram bin out of range")};
      }
    }
    Dist& mine = dists_[k];
    mine.welford.merge(incoming.welford);
    mine.histogram.merge(incoming.histogram);
    return {};
  }
  return Err{std::string("series point: unknown kind '") + p.kind + "'"};
}

// -- JSONL codec --------------------------------------------------------------

void TimeSeries::write_jsonl(std::ostream& os) const {
  util::JsonObject header;
  header["kind"] = std::string("header");
  header["schema"] = std::string(kSchema);
  header["bucket_width"] = bucket_width_;
  os << util::Json(std::move(header)).dump() << '\n';
  for (const SeriesPoint& p : snapshot()) os << p.to_json().dump() << '\n';
}

std::string TimeSeries::jsonl() const {
  std::ostringstream os;
  write_jsonl(os);
  return std::move(os).str();
}

Result<TimeSeries> TimeSeries::read_jsonl(std::string_view text) {
  TimeSeries ts;
  std::size_t start = 0;
  bool saw_header = false;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    auto parsed = util::Json::parse(line);
    if (!parsed) return Err{std::string("timeseries: ") + parsed.error()};
    const util::Json& j = parsed.value();
    if (j.is_object() && j.at("kind").is_string() && j.at("kind").as_string() == "header") {
      if (j.at("bucket_width").is_number()) {
        ts.bucket_width_ = static_cast<std::int64_t>(j.at("bucket_width").as_number());
        if (ts.bucket_width_ <= 0) return Err{std::string("timeseries: bucket_width must be > 0")};
      }
      saw_header = true;
      continue;
    }
    auto point = SeriesPoint::from_json(j);
    if (!point) return Err{point.error()};
    if (auto ins = ts.insert(point.value()); !ins) return Err{ins.error()};
  }
  if (!saw_header && ts.empty()) return Err{std::string("timeseries: empty input")};
  return ts;
}

// -- binary codec -------------------------------------------------------------

util::Bytes TimeSeries::to_binary() const {
  const std::vector<SeriesPoint> points = snapshot();

  // Canonical string table: label strings interned in snapshot order, so the
  // blob is independent of this store's live intern order.
  util::InternTable table;
  for (const SeriesPoint& p : points) {
    table.intern(p.metric);
    table.intern(p.vantage);
    table.intern(p.resolver);
    table.intern(p.protocol);
  }

  util::Bytes out;
  out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
  put_u32(out, kBinaryVersion);
  put_i64(out, bucket_width_);
  put_u32(out, static_cast<std::uint32_t>(table.size()));
  for (Symbol s = 0; s < table.size(); ++s) put_str(out, table.name(s));
  put_u64(out, points.size());
  for (const SeriesPoint& p : points) {
    put_u32(out, *table.find(p.metric));
    put_u32(out, *table.find(p.vantage));
    put_u32(out, *table.find(p.resolver));
    put_u32(out, *table.find(p.protocol));
    put_i64(out, p.bucket);
    if (p.kind == kKindCounter) {
      out.push_back(kTagCounter);
      put_u64(out, static_cast<std::uint64_t>(p.value));
    } else if (p.kind == kKindGauge) {
      out.push_back(kTagGauge);
      put_f64(out, p.value);
    } else {
      out.push_back(kTagHistogram);
      put_u64(out, p.count);
      put_f64(out, p.mean);
      put_f64(out, p.m2);
      put_f64(out, p.min);
      put_f64(out, p.max);
      put_u32(out, static_cast<std::uint32_t>(p.bins.size()));
      for (const auto& [bin, n] : p.bins) {
        put_u32(out, bin);
        put_u64(out, n);
      }
    }
  }
  return out;
}

Result<TimeSeries> TimeSeries::from_binary(const util::Bytes& bytes) {
  ByteReader r(bytes);
  const auto fail = [](const char* what) {
    return Err{std::string("timeseries binary: ") + what};
  };

  std::uint8_t magic[4] = {};
  for (std::uint8_t& b : magic) {
    if (!r.read_u8(b)) return fail("truncated magic");
  }
  if (!std::equal(std::begin(magic), std::end(magic), std::begin(kMagic))) {
    return fail("bad magic");
  }
  std::uint32_t version = 0;
  if (!r.read_u32(version)) return fail("truncated version");
  if (version != kBinaryVersion) return fail("unsupported version");

  std::int64_t bucket_width = 0;
  if (!r.read_i64(bucket_width)) return fail("truncated bucket width");
  if (bucket_width <= 0) return fail("bucket width must be > 0");
  TimeSeries ts(bucket_width);

  std::uint32_t n_names = 0;
  if (!r.read_u32(n_names)) return fail("truncated string table size");
  std::vector<std::string> table;
  table.reserve(n_names);
  for (std::uint32_t i = 0; i < n_names; ++i) {
    std::string s;
    if (!r.read_str(s)) return fail("truncated string table");
    table.push_back(std::move(s));
  }

  std::uint64_t n_points = 0;
  if (!r.read_u64(n_points)) return fail("truncated point count");
  for (std::uint64_t i = 0; i < n_points; ++i) {
    std::uint32_t sym[4] = {};
    for (std::uint32_t& s : sym) {
      if (!r.read_u32(s)) return fail("truncated point labels");
      if (s >= table.size()) return fail("label symbol out of range");
    }
    SeriesPoint p;
    p.metric = table[sym[0]];
    p.vantage = table[sym[1]];
    p.resolver = table[sym[2]];
    p.protocol = table[sym[3]];
    if (!r.read_i64(p.bucket)) return fail("truncated point bucket");
    std::uint8_t tag = 0;
    if (!r.read_u8(tag)) return fail("truncated point tag");
    if (tag == kTagCounter) {
      p.kind = std::string(kKindCounter);
      std::uint64_t v = 0;
      if (!r.read_u64(v)) return fail("truncated counter value");
      p.value = static_cast<double>(v);
    } else if (tag == kTagGauge) {
      p.kind = std::string(kKindGauge);
      if (!r.read_f64(p.value)) return fail("truncated gauge value");
    } else if (tag == kTagHistogram) {
      p.kind = std::string(kKindHistogram);
      if (!r.read_u64(p.count) || !r.read_f64(p.mean) || !r.read_f64(p.m2) ||
          !r.read_f64(p.min) || !r.read_f64(p.max)) {
        return fail("truncated histogram moments");
      }
      std::uint32_t n_bins = 0;
      if (!r.read_u32(n_bins)) return fail("truncated histogram bin count");
      p.bins.reserve(n_bins);
      for (std::uint32_t b = 0; b < n_bins; ++b) {
        std::uint32_t bin = 0;
        std::uint64_t cnt = 0;
        if (!r.read_u32(bin) || !r.read_u64(cnt)) return fail("truncated histogram bins");
        p.bins.emplace_back(bin, cnt);
      }
    } else {
      return fail("unknown point tag");
    }
    if (auto ins = ts.insert(p); !ins) return Err{ins.error()};
  }
  if (!r.done()) return fail("trailing bytes");
  return ts;
}

}  // namespace ednsm::obs
