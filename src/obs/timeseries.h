// TimeSeries: a fixed-width-bucket metrics store for longitudinal runs.
//
// The paper's collection ran for months on Netrics; a single Metrics registry
// collapses that history into one aggregate. TimeSeries keeps one point per
// (metric, vantage, resolver, protocol, bucket) so the monitor can evaluate
// rolling SLO windows and locate outages at epoch granularity. Label strings
// are interned (the core/availability convention) so hot folds compare dense
// u32 symbols; persisted output is always re-sorted by the label *names*, so
// the serialized store is independent of intern order and shard count.
//
// Three point kinds mirror obs::Metrics: counters (sum), gauges (last write
// wins in a bucket, merge sums), and histograms (welford moments + fixed-bin
// histogram, persisted exactly via m2/bins so codecs round-trip the
// accumulators bit-for-bit). Persistence is JSONL (header line + one
// SeriesPoint per line) and a compact binary format ("EDTS") with a canonical
// string table.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/intern.h"
#include "util/json.h"
#include "stats/histogram.h"
#include "stats/welford.h"
#include "util/bytes.h"

namespace ednsm::obs {

// One persisted bucket sample — the codec-facing snapshot of a live point.
// `value` carries the counter total or gauge value; `count`/`mean`/`m2`/
// `min`/`max`/`bins` carry the histogram accumulators (sparse nonzero bins).
struct SeriesPoint {
  std::string metric;
  std::string vantage;
  std::string resolver;
  std::string protocol;
  std::string kind;  // "counter" | "gauge" | "histogram"
  std::int64_t bucket = 0;
  double value = 0.0;
  std::uint64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> bins;

  [[nodiscard]] util::Json to_json() const;
  [[nodiscard]] static Result<SeriesPoint> from_json(const util::Json& j);
};

class TimeSeries {
 public:
  using Symbol = util::InternTable::Symbol;

  // Histogram layout: 8 ms resolution to ~2 s plus overflow — coarse enough
  // that a point costs ~2 KB, fine enough for p99 under the 5 s timeout.
  static constexpr double kHistBinWidthMs = 8.0;
  static constexpr std::size_t kHistBins = 256;
  static constexpr std::uint32_t kBinaryVersion = 1;

  explicit TimeSeries(std::int64_t bucket_width = 1)
      : bucket_width_(bucket_width > 0 ? bucket_width : 1) {}

  [[nodiscard]] std::int64_t bucket_width() const noexcept { return bucket_width_; }
  [[nodiscard]] std::int64_t bucket_of(std::int64_t t) const noexcept { return t / bucket_width_; }

  // -- writes (t is a raw time coordinate; the point lands in bucket_of(t)) --
  void add_counter(std::string_view metric, std::string_view vantage, std::string_view resolver,
                   std::string_view protocol, std::int64_t t, std::uint64_t delta = 1);
  void set_gauge(std::string_view metric, std::string_view vantage, std::string_view resolver,
                 std::string_view protocol, std::int64_t t, double value);
  void observe(std::string_view metric, std::string_view vantage, std::string_view resolver,
               std::string_view protocol, std::int64_t t, double value_ms);

  // -- reads (bucket index, not raw time) ------------------------------------
  [[nodiscard]] std::uint64_t counter_at(std::string_view metric, std::string_view vantage,
                                         std::string_view resolver, std::string_view protocol,
                                         std::int64_t bucket) const;
  [[nodiscard]] double gauge_at(std::string_view metric, std::string_view vantage,
                                std::string_view resolver, std::string_view protocol,
                                std::int64_t bucket) const;
  // Welford moments for a histogram point; nullptr when the point is absent.
  [[nodiscard]] const stats::Welford* dist_at(std::string_view metric, std::string_view vantage,
                                              std::string_view resolver, std::string_view protocol,
                                              std::int64_t bucket) const;
  // Approximate quantile for a histogram point; NaN when absent or empty.
  [[nodiscard]] double dist_quantile(std::string_view metric, std::string_view vantage,
                                     std::string_view resolver, std::string_view protocol,
                                     std::int64_t bucket, double q) const;
  // Merged quantile across an inclusive bucket window [from, to]; NaN when no
  // samples land in the window.
  [[nodiscard]] double window_quantile(std::string_view metric, std::string_view vantage,
                                       std::string_view resolver, std::string_view protocol,
                                       std::int64_t from, std::int64_t to, double q) const;

  // Combine another store by label names (symbol tables may differ): counters
  // sum, gauges sum (shard-additive, matching obs::Metrics), histograms merge.
  void merge(const TimeSeries& other);

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + dists_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  // Inclusive [min, max] bucket over all points; {0, -1} when empty.
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> bucket_range() const noexcept;

  // Canonical listing, sorted by (metric, vantage, resolver, protocol, kind,
  // bucket) label *names* — identical for any intern/insert order.
  [[nodiscard]] std::vector<SeriesPoint> snapshot() const;
  // Fold one decoded point back in (counter adds, gauge sums, histogram
  // merges); rejects unknown kinds and out-of-range histogram bins.
  [[nodiscard]] Result<void> insert(const SeriesPoint& p);

  // JSONL: one header line ({"kind":"header",...}) then one point per line.
  void write_jsonl(std::ostream& os) const;
  [[nodiscard]] std::string jsonl() const;
  [[nodiscard]] static Result<TimeSeries> read_jsonl(std::string_view text);

  // Compact binary: "EDTS" magic, version, bucket width, canonical string
  // table, then symbol-referenced points in snapshot order.
  [[nodiscard]] util::Bytes to_binary() const;
  [[nodiscard]] static Result<TimeSeries> from_binary(const util::Bytes& bytes);

 private:
  struct PointKey {
    Symbol metric;
    Symbol vantage;
    Symbol resolver;
    Symbol protocol;
    std::int64_t bucket;
    auto operator<=>(const PointKey&) const = default;
  };
  struct Dist {
    stats::Welford welford;
    stats::Histogram histogram{kHistBinWidthMs, kHistBins};
  };

  [[nodiscard]] PointKey intern_key(std::string_view metric, std::string_view vantage,
                                    std::string_view resolver, std::string_view protocol,
                                    std::int64_t bucket);
  // Lookup without interning; false when any label was never seen.
  [[nodiscard]] bool find_key(std::string_view metric, std::string_view vantage,
                              std::string_view resolver, std::string_view protocol,
                              std::int64_t bucket, PointKey& out) const;

  std::int64_t bucket_width_;
  util::InternTable names_;  // shared across all four label dimensions
  // std::map keyed by symbols: deterministic iteration given deterministic
  // intern order; canonical outputs re-sort by name regardless.
  std::map<PointKey, std::uint64_t> counters_;
  std::map<PointKey, double> gauges_;
  std::map<PointKey, Dist> dists_;
};

}  // namespace ednsm::obs
