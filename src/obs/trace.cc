#include "obs/trace.h"

#include <ostream>
#include <sstream>

namespace ednsm::obs {

namespace {

// Minimal JSON string escape for trace labels (subsystem/name literals and
// vantage ids; kept self-contained so obs does not link the core JSON DOM).
void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void Tracer::enable(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  if (ring_.empty()) {
    capacity_ = capacity;
    ring_.reserve(capacity_);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::push(const TraceEvent& e) {
  ++emitted_;
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
    return;
  }
  ring_[head_] = e;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

void Tracer::instant(std::string_view subsystem, std::string_view name, netsim::SimTime ts) {
  if (!enabled()) return;
  push(TraceEvent{ts, netsim::kZeroDuration, symbols_.intern(subsystem),
                  symbols_.intern(name), EventKind::Instant});
}

void Tracer::complete(std::string_view subsystem, std::string_view name, netsim::SimTime begin,
                      netsim::SimDuration dur) {
  if (!enabled()) return;
  if (dur < netsim::kZeroDuration) dur = netsim::kZeroDuration;
  push(TraceEvent{begin, dur, symbols_.intern(subsystem), symbols_.intern(name),
                  EventKind::Complete});
}

Tracer::SpanId Tracer::begin_span(std::string_view subsystem, std::string_view name,
                                  netsim::SimTime ts) {
  if (!enabled()) return 0;
  const OpenSpan span{symbols_.intern(subsystem), symbols_.intern(name), ts};
  if (!free_ids_.empty()) {
    const SpanId id = free_ids_.back();
    free_ids_.pop_back();
    open_[id - 1] = span;
    return id;
  }
  open_.push_back(span);
  return static_cast<SpanId>(open_.size());
}

void Tracer::end_span(SpanId id, netsim::SimTime ts) {
  if (id == 0 || id > open_.size()) return;
  const OpenSpan& span = open_[id - 1];
  push(TraceEvent{span.begin, ts - span.begin, span.subsystem, span.name,
                  EventKind::Complete});
  free_ids_.push_back(id);
}

TraceData Tracer::drain() {
  TraceData out;
  out.symbols = symbols_;
  out.emitted = emitted_;
  out.dropped = dropped_;
  out.events.reserve(ring_.size());
  // Chronological emission order: the ring's oldest surviving event sits at
  // head_ once the buffer has wrapped, at index 0 otherwise.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.events.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  ring_.clear();
  head_ = 0;
  return out;
}

util::Json TraceData::to_json() const {
  util::JsonObject o;
  util::JsonArray syms;
  syms.reserve(symbols.size());
  for (util::InternTable::Symbol s = 0; s < symbols.size(); ++s) {
    syms.emplace_back(symbols.name(s));
  }
  o["symbols"] = util::Json(std::move(syms));
  o["emitted"] = emitted;
  o["dropped"] = dropped;
  util::JsonArray evs;
  evs.reserve(events.size());
  for (const TraceEvent& e : events) {
    util::JsonArray tuple;
    tuple.reserve(5);
    tuple.emplace_back(static_cast<std::int64_t>(e.ts.count()));
    tuple.emplace_back(static_cast<std::int64_t>(e.dur.count()));
    tuple.emplace_back(static_cast<std::uint64_t>(e.subsystem));
    tuple.emplace_back(static_cast<std::uint64_t>(e.name));
    tuple.emplace_back(static_cast<std::uint64_t>(e.kind == EventKind::Complete ? 1 : 0));
    evs.emplace_back(std::move(tuple));
  }
  o["events"] = util::Json(std::move(evs));
  return util::Json(std::move(o));
}

Result<TraceData> TraceData::from_json(const util::Json& j) {
  if (!j.is_object()) return Err{std::string("trace data: not an object")};
  TraceData out;
  if (!j.at("symbols").is_array() || !j.at("events").is_array()) {
    return Err{std::string("trace data: missing symbols/events arrays")};
  }
  for (const util::Json& s : j.at("symbols").as_array()) {
    if (!s.is_string()) return Err{std::string("trace data: symbols must be strings")};
    (void)out.symbols.intern(s.as_string());
  }
  if (j.at("emitted").is_number()) {
    out.emitted = static_cast<std::uint64_t>(j.at("emitted").as_number());
  }
  if (j.at("dropped").is_number()) {
    out.dropped = static_cast<std::uint64_t>(j.at("dropped").as_number());
  }
  out.events.reserve(j.at("events").as_array().size());
  for (const util::Json& e : j.at("events").as_array()) {
    if (!e.is_array() || e.as_array().size() != 5) {
      return Err{std::string("trace data: event must be a 5-tuple")};
    }
    const util::JsonArray& t = e.as_array();
    for (const util::Json& field : t) {
      if (!field.is_number()) return Err{std::string("trace data: event fields must be numbers")};
    }
    TraceEvent ev;
    ev.ts = netsim::SimTime(static_cast<std::int64_t>(t[0].as_number()));
    ev.dur = netsim::SimDuration(static_cast<std::int64_t>(t[1].as_number()));
    ev.subsystem = static_cast<util::InternTable::Symbol>(t[2].as_number());
    ev.name = static_cast<util::InternTable::Symbol>(t[3].as_number());
    ev.kind = t[4].as_number() != 0 ? EventKind::Complete : EventKind::Instant;
    if (ev.subsystem >= out.symbols.size() || ev.name >= out.symbols.size()) {
      return Err{std::string("trace data: event references unknown symbol")};
    }
    out.events.push_back(ev);
  }
  return out;
}

void MergedTrace::add_shard(std::string label, TraceData data) {
  shards_.push_back(Shard{std::move(label), std::move(data)});
}

std::uint64_t MergedTrace::total_events() const noexcept {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) n += s.data.events.size();
  return n;
}

std::uint64_t MergedTrace::total_dropped() const noexcept {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) n += s.data.dropped;
  return n;
}

void MergedTrace::write_chrome_json(std::ostream& os, std::string_view subsystem_filter) const {
  os << "{\"traceEvents\":[\n";
  os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"ednsm\"}}";
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    const std::uint64_t tid = si + 1;
    os << ",\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":" << tid
       << ",\"args\":{\"name\":";
    write_escaped(os, shards_[si].label);
    os << "}}";
  }
  for (std::size_t si = 0; si < shards_.size(); ++si) {
    const Shard& shard = shards_[si];
    const std::uint64_t tid = si + 1;
    for (const TraceEvent& e : shard.data.events) {
      const std::string& subsystem = shard.data.symbols.name(e.subsystem);
      if (!subsystem_filter.empty() && subsystem != subsystem_filter) continue;
      os << ",\n{\"ph\":\"" << (e.kind == EventKind::Complete ? 'X' : 'i') << "\",\"name\":";
      write_escaped(os, shard.data.symbols.name(e.name));
      os << ",\"cat\":";
      write_escaped(os, subsystem);
      os << ",\"ts\":" << e.ts.count();
      if (e.kind == EventKind::Complete) {
        os << ",\"dur\":" << e.dur.count();
      } else {
        os << ",\"s\":\"t\"";
      }
      os << ",\"pid\":0,\"tid\":" << tid << '}';
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":" << total_dropped()
     << "}}\n";
}

std::string MergedTrace::chrome_json(std::string_view subsystem_filter) const {
  std::ostringstream os;
  write_chrome_json(os, subsystem_filter);
  return std::move(os).str();
}

}  // namespace ednsm::obs
