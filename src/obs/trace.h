// Deterministic trace layer: SimTime-stamped spans and instants with a
// bounded per-world ring buffer, merged across campaign shards into a
// chrome://tracing-loadable JSON stream.
//
// Design constraints, in order:
//   1. Determinism. Events are timestamped exclusively in SimTime — never the
//      wall clock — so a merged trace is a pure function of the spec and is
//      byte-identical for any `--threads N` (shards record independently and
//      merge in spec vantage order, mirroring the campaign-record merge).
//   2. Zero cost when disabled. Every emission site guards on a relaxed
//      atomic enabled flag behind a null-check of the queue's tracer pointer;
//      a disabled campaign does no interning, no allocation, no branching
//      beyond the flag read.
//   3. Bounded memory. The buffer is a fixed-capacity ring with drop-oldest
//      semantics (a flight recorder, not an archive); the dropped count is
//      reported in the export so truncation is never silent.
//
// Span durations: SimTime only advances between event-queue callbacks, so an
// OBS_SPAN scoped inside one callback records duration zero — it marks causal
// structure, not elapsed time. Phases that span simulated time (handshakes,
// exchanges, probes) are emitted as complete events from their already-stamped
// begin/duration pairs via OBS_COMPLETE.
//
// The begin_span/end_span pair below is the low-level protocol used by the
// OBS_SPAN RAII guard. Calling it by hand is rejected by the lint rule
// `obs-span-balance` outside src/obs — manual pairs are how spans leak.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/intern.h"
#include "util/json.h"
#include "netsim/time.h"

namespace ednsm::obs {

enum class EventKind : std::uint8_t {
  Instant,   // a point in simulated time ("i" in the Chrome stream)
  Complete,  // a [begin, begin+dur) interval ("X" in the Chrome stream)
};

struct TraceEvent {
  netsim::SimTime ts{0};
  netsim::SimDuration dur{0};
  util::InternTable::Symbol subsystem = 0;
  util::InternTable::Symbol name = 0;
  EventKind kind = EventKind::Instant;
};

// One shard's drained buffer: events in emission order (deterministic for a
// given seed), with the symbol table that resolves them.
struct TraceData {
  std::vector<TraceEvent> events;
  util::InternTable symbols;
  std::uint64_t emitted = 0;  // total emissions, including dropped
  std::uint64_t dropped = 0;  // overwritten by ring wrap-around

  // Exact JSON round trip so shard files carry traces across processes and a
  // multi-process merge stays byte-identical to an in-process one. Symbols
  // are persisted in dense intern order (which preserves them exactly on
  // reload); events are compact 5-tuples [ts_us, dur_us, subsystem, name,
  // kind].
  [[nodiscard]] util::Json to_json() const;
  [[nodiscard]] static Result<TraceData> from_json(const util::Json& j);
};

class Tracer {
 public:
  using SpanId = std::uint32_t;

  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // The hot-path guard: a relaxed atomic load, nothing else. Emission sites
  // check this (via the OBS_* macros) before touching any other state.
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Start recording into a ring of `capacity` events. Idempotent; capacity
  // changes take effect only from an empty buffer.
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }

  void instant(std::string_view subsystem, std::string_view name, netsim::SimTime ts);
  void complete(std::string_view subsystem, std::string_view name, netsim::SimTime begin,
                netsim::SimDuration dur);

  // Low-level span protocol for the OBS_SPAN guard (see header comment; the
  // obs-span-balance lint rule rejects direct calls outside src/obs).
  // begin_span returns 0 when tracing is disabled; end_span(0, ...) is a
  // no-op, so a guard built while disabled costs nothing at destruction.
  [[nodiscard]] SpanId begin_span(std::string_view subsystem, std::string_view name,
                                  netsim::SimTime ts);
  void end_span(SpanId id, netsim::SimTime ts);

  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t buffered() const noexcept { return ring_.size(); }

  // Move the buffered events out in chronological emission order (oldest
  // surviving event first) and reset the buffer. The enabled flag and
  // capacity are untouched, so recording can continue afterwards.
  [[nodiscard]] TraceData drain();

 private:
  struct OpenSpan {
    util::InternTable::Symbol subsystem = 0;
    util::InternTable::Symbol name = 0;
    netsim::SimTime begin{0};
  };

  void push(const TraceEvent& e);

  std::atomic<bool> enabled_{false};
  std::size_t capacity_ = kDefaultCapacity;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // next overwrite position once the ring is full
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
  util::InternTable symbols_;
  std::vector<OpenSpan> open_;
  std::vector<SpanId> free_ids_;
};

// RAII span guard for the OBS_SPAN macro. `Clock` is anything exposing
// `obs::Tracer* tracer()` and `netsim::SimTime now()` — in practice the
// netsim::EventQueue, so every layer holding a queue reference can trace
// without extra plumbing.
template <typename Clock>
class SpanGuard {
 public:
  SpanGuard(Clock& clk, std::string_view subsystem, std::string_view name) : clk_(clk) {
    Tracer* t = clk_.tracer();
    if (t != nullptr && t->enabled()) {
      tracer_ = t;
      id_ = t->begin_span(subsystem, name, clk_.now());
    }
  }
  ~SpanGuard() {
    if (tracer_ != nullptr) tracer_->end_span(id_, clk_.now());
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  Clock& clk_;
  Tracer* tracer_ = nullptr;
  Tracer::SpanId id_ = 0;
};

// Shard-merged trace. Shards are appended in spec vantage order (the same
// canonical order the record merge uses), each becoming one Chrome "thread",
// so the serialized stream is independent of how many workers ran them.
class MergedTrace {
 public:
  void add_shard(std::string label, TraceData data);

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] std::uint64_t total_events() const noexcept;
  [[nodiscard]] std::uint64_t total_dropped() const noexcept;

  // Chrome trace-event JSON (JSON-array-of-objects under "traceEvents";
  // loadable by chrome://tracing and Perfetto). `subsystem_filter` keeps only
  // events whose subsystem ("cat") matches; empty keeps everything. Output is
  // deterministic: fixed key order, integer microsecond timestamps.
  void write_chrome_json(std::ostream& os, std::string_view subsystem_filter = {}) const;
  [[nodiscard]] std::string chrome_json(std::string_view subsystem_filter = {}) const;

 private:
  struct Shard {
    std::string label;
    TraceData data;
  };
  std::vector<Shard> shards_;
};

}  // namespace ednsm::obs

// Emission macros. `clk` is a Clock in the SpanGuard sense (normally the
// EventQueue). All three compile to a pointer null-check plus one relaxed
// atomic load when tracing is off.
#define EDNSM_OBS_CONCAT_IMPL(a, b) a##b
#define EDNSM_OBS_CONCAT(a, b) EDNSM_OBS_CONCAT_IMPL(a, b)

// RAII span over the enclosing scope (duration in SimTime; zero within one
// event callback — see header comment).
#define OBS_SPAN(clk, subsystem, name)                                              \
  const ::ednsm::obs::SpanGuard EDNSM_OBS_CONCAT(obs_span_guard_, __LINE__) {       \
    (clk), (subsystem), (name)                                                      \
  }

// Point event at the clock's current SimTime.
#define OBS_EVENT(clk, subsystem, name)                                             \
  do {                                                                              \
    ::ednsm::obs::Tracer* ednsm_obs_t = (clk).tracer();                             \
    if (ednsm_obs_t != nullptr && ednsm_obs_t->enabled()) {                         \
      ednsm_obs_t->instant((subsystem), (name), (clk).now());                       \
    }                                                                               \
  } while (false)

// Interval event from an already-stamped (begin, dur) pair — the idiom for
// phases that span simulated time across callbacks (handshakes, exchanges).
#define OBS_COMPLETE(clk, subsystem, name, begin, dur)                              \
  do {                                                                              \
    ::ednsm::obs::Tracer* ednsm_obs_t = (clk).tracer();                             \
    if (ednsm_obs_t != nullptr && ednsm_obs_t->enabled()) {                         \
      ednsm_obs_t->complete((subsystem), (name), (begin), (dur));                   \
    }                                                                               \
  } while (false)
