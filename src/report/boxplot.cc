#include "report/boxplot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ednsm::report {

namespace {
int to_col(double ms, double max_ms, int width) {
  if (ms <= 0) return 0;
  if (ms >= max_ms) return width - 1;
  return static_cast<int>(ms / max_ms * (width - 1));
}
}  // namespace

std::string render_box_line(const stats::BoxSummary& s, double max_ms, int width, char fill) {
  std::string line(static_cast<std::size_t>(width), ' ');
  if (s.count == 0) return line;

  const int wlow = to_col(s.whisker_low, max_ms, width);
  const int q1 = to_col(s.q1, max_ms, width);
  const int med = to_col(s.median, max_ms, width);
  const int q3 = to_col(s.q3, max_ms, width);
  const int whigh = to_col(s.whisker_high, max_ms, width);

  for (int i = wlow; i <= whigh; ++i) line[static_cast<std::size_t>(i)] = '-';
  for (int i = q1; i <= q3; ++i) line[static_cast<std::size_t>(i)] = fill;
  line[static_cast<std::size_t>(wlow)] = '|';
  line[static_cast<std::size_t>(whigh)] = '|';
  line[static_cast<std::size_t>(q1)] = '[';
  line[static_cast<std::size_t>(q3)] = ']';
  line[static_cast<std::size_t>(med)] = 'M';

  // Outliers beyond the whiskers (and anything truncated at the axis edge).
  for (double v : s.outliers) {
    const int col = to_col(v, max_ms, width);
    if (line[static_cast<std::size_t>(col)] == ' ') line[static_cast<std::size_t>(col)] = 'o';
  }
  return line;
}

std::string render_boxplots(const std::vector<BoxRow>& rows, const BoxPlotOptions& options) {
  std::size_t label_width = 8;
  for (const BoxRow& row : rows) {
    label_width = std::max(label_width, row.label.size() + (row.bold ? 2 : 0));
  }

  std::string out;
  // Axis header.
  out.append(label_width + 2, ' ');
  char axis[128];
  std::snprintf(axis, sizeof axis, "0 ms%*s%.0f ms", options.plot_width - 12, "",
                options.max_ms);
  out += axis;
  out += "\n";

  for (const BoxRow& row : rows) {
    const std::string label = row.bold ? "*" + row.label + "*" : row.label;
    out += label;
    out.append(label_width - label.size() + 1, ' ');
    out += '|';
    out += render_box_line(row.response, options.max_ms, options.plot_width,
                           options.response_fill);
    char med[48];
    if (row.response.count > 0) {
      std::snprintf(med, sizeof med, "  med=%.1f ms (n=%zu)", row.response.median,
                    row.response.count);
      out += med;
    }
    out += "\n";
    if (row.ping.count > 0) {
      out.append(label_width + 1, ' ');
      out += '|';
      out += render_box_line(row.ping, options.max_ms, options.plot_width, options.ping_fill);
      std::snprintf(med, sizeof med, "  ping=%.1f ms", row.ping.median);
      out += med;
      out += "\n";
    }
  }
  out += "legend: [==M==] DNS response time   (--m--) / [--] ICMP ping   * mainstream\n";
  return out;
}

}  // namespace ednsm::report
