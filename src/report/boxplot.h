// ASCII box-plot rendering in the style of the paper's figures: one row per
// resolver, two series per row (DNS response time and ICMP ping), truncated
// at a configurable maximum "for ease of exposition" like the paper's plots.
#pragma once

#include <string>
#include <vector>

#include "stats/quantile.h"

namespace ednsm::report {

struct BoxRow {
  std::string label;
  bool bold = false;  // the paper bolds mainstream resolvers
  stats::BoxSummary response;  // count==0 -> no box drawn
  stats::BoxSummary ping;
};

struct BoxPlotOptions {
  double max_ms = 600.0;  // the paper truncates beyond 600 ms
  int plot_width = 72;    // characters for the axis
  char response_fill = '=';
  char ping_fill = '-';
};

// Render rows (already in display order) over a shared millisecond axis.
// Layout per row:
//   label          |--[==M==]--|   response
//                  |-(--m--)-|     ping (omitted when count == 0)
[[nodiscard]] std::string render_boxplots(const std::vector<BoxRow>& rows,
                                          const BoxPlotOptions& options = {});

// One-line rendering of a single box summary (used by tests and quick looks).
[[nodiscard]] std::string render_box_line(const stats::BoxSummary& s, double max_ms,
                                          int width, char fill);

}  // namespace ednsm::report
