#include "report/decomposition.h"

#include <map>

#include "stats/quantile.h"

namespace ednsm::report {

namespace {

// Successful records for one vantage, split by whether the query rode a
// reused connection. Vantage order follows the spec (the campaign's own
// ordering), falling back to record order for vantages outside the spec.
struct Population {
  std::vector<const core::ResultRecord*> cold;
  std::vector<const core::ResultRecord*> warm;
};

std::vector<std::pair<std::string, Population>> populations(
    const core::CampaignResult& result) {
  std::map<std::string, Population> by_vantage;
  for (const core::ResultRecord& r : result.records) {
    if (!r.ok) continue;
    Population& p = by_vantage[r.vantage];
    (r.connection_reused ? p.warm : p.cold).push_back(&r);
  }
  std::vector<std::pair<std::string, Population>> out;
  for (const std::string& id : result.spec.vantage_ids) {
    const auto it = by_vantage.find(id);
    if (it == by_vantage.end()) continue;
    out.emplace_back(it->first, std::move(it->second));
    by_vantage.erase(it);
  }
  for (auto& [id, pop] : by_vantage) out.emplace_back(id, std::move(pop));
  return out;
}

std::vector<double> collect(const std::vector<const core::ResultRecord*>& recs,
                            double core::ResultRecord::* field) {
  std::vector<double> out;
  out.reserve(recs.size());
  for (const core::ResultRecord* r : recs) out.push_back(r->*field);
  return out;
}

void add_phase_row(Table& table, const std::string& vantage, const char* conn,
                   const std::vector<const core::ResultRecord*>& recs) {
  const double total = stats::median(collect(recs, &core::ResultRecord::response_ms));
  const double exchange = stats::median(collect(recs, &core::ResultRecord::exchange_ms));
  table.add_row(
      {vantage, conn, std::to_string(recs.size()),
       fmt(stats::median(collect(recs, &core::ResultRecord::tcp_handshake_ms))),
       fmt(stats::median(collect(recs, &core::ResultRecord::tls_handshake_ms))),
       fmt(stats::median(collect(recs, &core::ResultRecord::quic_handshake_ms))),
       fmt(stats::median(collect(recs, &core::ResultRecord::pool_wait_ms))), fmt(exchange),
       fmt(total - exchange), fmt(total)});
}

}  // namespace

Table phase_decomposition_table(const core::CampaignResult& result) {
  Table table({"Vantage", "Conn", "Queries", "TCP", "TLS", "QUIC", "Pool", "Exchange",
               "Setup", "Total"});
  for (const auto& [vantage, pop] : populations(result)) {
    if (!pop.cold.empty()) add_phase_row(table, vantage, "cold", pop.cold);
    if (!pop.warm.empty()) add_phase_row(table, vantage, "warm", pop.warm);
  }
  return table;
}

std::vector<BoxRow> cold_warm_rows(const core::CampaignResult& result) {
  std::vector<BoxRow> rows;
  for (const auto& [vantage, pop] : populations(result)) {
    for (const auto& [conn, recs] :
         {std::pair{"cold", &pop.cold}, std::pair{"warm", &pop.warm}}) {
      if (recs->empty()) continue;
      BoxRow row;
      row.label = vantage + " (" + conn + ")";
      row.response = stats::box_summary(collect(*recs, &core::ResultRecord::response_ms));
      row.ping = stats::box_summary(collect(*recs, &core::ResultRecord::exchange_ms));
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::string render_cold_warm_figure(const core::CampaignResult& result, double max_ms) {
  const std::string title = "Cold vs. warm response times (= full response, - exchange only)";
  std::string out = title + "\n";
  out.append(title.size(), '=');
  out += "\n";
  BoxPlotOptions options;
  options.max_ms = max_ms;
  out += render_boxplots(cold_warm_rows(result), options);
  return out;
}

}  // namespace ednsm::report
