// Per-phase timing decomposition: where a query's milliseconds go, split by
// connection state. The paper reports end-to-end response times; these
// builders break them into handshake vs. resolution so the cost of a cold
// connection (TCP + TLS or QUIC setup) is visible next to the steady-state
// exchange time a warm, reused connection achieves.
#pragma once

#include <string>
#include <vector>

#include "core/campaign.h"
#include "report/boxplot.h"
#include "report/table.h"

namespace ednsm::report {

// Handshake-vs-resolution table: one row per (vantage, cold|warm) with the
// median of each timing phase over that vantage's successful records.
// Columns: Vantage | Conn | Queries | TCP | TLS | QUIC | Pool | Exchange |
// Setup | Total (all milliseconds; Setup = Total - Exchange). Vantages with
// no successful records are omitted; a missing cold or warm population
// renders "-" via Table's NaN handling.
[[nodiscard]] Table phase_decomposition_table(const core::CampaignResult& result);

// Cold-vs-warm box rows: for each vantage, a "cold" row (fresh connections)
// and a "warm" row (reused ones), both over response_ms. The ping slot
// carries the exchange-time distribution, so each row shows the full
// response box over the resolution-only box it decomposes into.
[[nodiscard]] std::vector<BoxRow> cold_warm_rows(const core::CampaignResult& result);

[[nodiscard]] std::string render_cold_warm_figure(const core::CampaignResult& result,
                                                  double max_ms = 600.0);

}  // namespace ednsm::report
