#include "report/figures.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "resolver/browsers.h"
#include "resolver/registry.h"
#include "stats/quantile.h"

namespace ednsm::report {

namespace {

// Resolvers relevant to a continent figure: those located there, plus the
// mainstream set (which the paper includes, bolded, in every regional
// figure because they are measured from everywhere).
std::vector<const resolver::ResolverSpec*> figure_population(geo::Continent continent) {
  std::vector<const resolver::ResolverSpec*> out;
  for (const resolver::ResolverSpec& s : resolver::paper_resolver_list()) {
    if (s.continent == continent || s.mainstream) out.push_back(&s);
  }
  return out;
}

}  // namespace

std::vector<BoxRow> figure_rows(const core::CampaignResult& result,
                                const std::string& vantage_id, geo::Continent continent) {
  std::vector<BoxRow> rows;
  for (const resolver::ResolverSpec* spec : figure_population(continent)) {
    const std::vector<double> responses =
        result.response_times(vantage_id, spec->hostname);
    const std::vector<double> pings = result.ping_times(vantage_id, spec->hostname);
    if (responses.empty() && pings.empty()) continue;  // not measured from here
    BoxRow row;
    row.label = spec->hostname;
    row.bold = spec->mainstream;
    row.response = stats::box_summary(responses);
    row.ping = stats::box_summary(pings);
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const BoxRow& a, const BoxRow& b) {
    const double ma = a.response.count > 0 ? a.response.median
                                           : std::numeric_limits<double>::max();
    const double mb = b.response.count > 0 ? b.response.median
                                           : std::numeric_limits<double>::max();
    if (ma != mb) return ma < mb;
    return a.label < b.label;
  });
  return rows;
}

std::string render_figure(const core::CampaignResult& result, const std::string& vantage_id,
                          geo::Continent continent, const std::string& title, double max_ms) {
  std::string out = title + "\n";
  out.append(title.size(), '=');
  out += "\n";
  BoxPlotOptions options;
  options.max_ms = max_ms;
  out += render_boxplots(figure_rows(result, vantage_id, continent), options);
  return out;
}

Table remote_median_table(const core::CampaignResult& result, geo::Continent continent,
                          const std::string& near_vantage, const std::string& far_vantage,
                          std::size_t top_n) {
  struct Row {
    std::string hostname;
    double near_ms;
    double far_ms;
  };
  std::vector<Row> rows;
  for (const resolver::ResolverSpec& s : resolver::paper_resolver_list()) {
    if (s.continent != continent || s.mainstream) continue;
    const double near_med = stats::median(result.response_times(near_vantage, s.hostname));
    const double far_med = stats::median(result.response_times(far_vantage, s.hostname));
    if (std::isnan(near_med) || std::isnan(far_med)) continue;
    rows.push_back({s.hostname, near_med, far_med});
  }
  // Largest near-vs-far gap first (the paper's selection criterion).
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return (a.far_ms - a.near_ms) > (b.far_ms - b.near_ms);
  });
  if (rows.size() > top_n) rows.resize(top_n);

  Table table({"Resolver", near_vantage + " (ms)", far_vantage + " (ms)"});
  for (const Row& r : rows) {
    table.add_row({r.hostname, fmt(r.near_ms, 0), fmt(r.far_ms, 0)});
  }
  return table;
}

std::string availability_report(const core::CampaignResult& result) {
  const core::AvailabilityCounts& overall = result.availability.overall();
  std::string out;
  out += "Availability summary\n";
  out += "  successful responses: " + std::to_string(overall.successes) + "\n";
  out += "  errors:               " + std::to_string(overall.errors) + "\n";
  char rate[64];
  std::snprintf(rate, sizeof rate, "  error rate:           %.2f%%\n",
                overall.error_rate() * 100.0);
  out += rate;
  out += "  errors by class:\n";
  for (const auto& [cls, count] : overall.errors_by_class) {
    out += "    " + cls + ": " + std::to_string(count) + "\n";
  }
  const std::string dominant = result.availability.dominant_error_class();
  if (!dominant.empty()) {
    out += "  most common error class: " + dominant + "\n";
  }

  // Per-vantage unresponsive resolvers (paper: no consistent subset).
  out += "  unresponsive (vantage, resolver) pairs:\n";
  bool any = false;
  for (const std::string& vid : result.spec.vantage_ids) {
    for (const std::string& host : result.spec.resolvers) {
      if (result.availability.unresponsive_from(vid, host)) {
        out += "    " + vid + " -> " + host + "\n";
        any = true;
      }
    }
  }
  if (!any) out += "    (none)\n";
  return out;
}

Table browser_matrix() {
  std::vector<std::string> header = {"Browser"};
  for (resolver::Provider p : resolver::all_providers()) {
    header.emplace_back(resolver::to_string(p));
  }
  Table table(std::move(header));
  for (resolver::Browser b : resolver::all_browsers()) {
    std::vector<std::string> row = {std::string(resolver::to_string(b))};
    for (resolver::Provider p : resolver::all_providers()) {
      row.emplace_back(resolver::browser_offers(b, p) ? "v" : "");
    }
    table.add_row(std::move(row));
  }
  return table;
}

Table max_median_table(const core::CampaignResult& result) {
  Table table({"Vantage", "Max median response (ms)", "Resolver"});
  for (const std::string& vid : result.spec.vantage_ids) {
    double worst = -1;
    std::string worst_host;
    for (const std::string& host : result.spec.resolvers) {
      const double med = stats::median(result.response_times(vid, host));
      if (!std::isnan(med) && med > worst) {
        worst = med;
        worst_host = host;
      }
    }
    if (worst >= 0) table.add_row({vid, fmt(worst, 0), worst_host});
  }
  return table;
}

std::vector<std::string> nonmainstream_winners(const core::CampaignResult& result,
                                               const std::string& vantage_id) {
  double best_mainstream = std::numeric_limits<double>::max();
  for (const std::string& host : result.spec.resolvers) {
    const resolver::ResolverSpec* spec = resolver::find_resolver(host);
    if (spec == nullptr || !spec->mainstream) continue;
    const double med = stats::median(result.response_times(vantage_id, host));
    if (!std::isnan(med)) best_mainstream = std::min(best_mainstream, med);
  }
  std::vector<std::string> winners;
  if (best_mainstream == std::numeric_limits<double>::max()) return winners;
  for (const std::string& host : result.spec.resolvers) {
    const resolver::ResolverSpec* spec = resolver::find_resolver(host);
    if (spec == nullptr || spec->mainstream) continue;
    const double med = stats::median(result.response_times(vantage_id, host));
    if (!std::isnan(med) && med < best_mainstream) winners.push_back(host);
  }
  return winners;
}

}  // namespace ednsm::report
