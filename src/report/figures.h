// Figure and table builders keyed to the paper's evaluation artifacts.
// Each builder takes a CampaignResult and produces the printable analog of
// one paper figure/table; the bench binaries are thin wrappers around these.
#pragma once

#include <string>
#include <vector>

#include "core/campaign.h"
#include "geo/coords.h"
#include "report/boxplot.h"
#include "report/table.h"

namespace ednsm::report {

// Figures 1-4: response-time + ping box plots for the resolvers located on
// `continent`, measured from `vantage_id`, sorted by ascending median
// response time (the paper's ordering). Mainstream resolvers are included
// (they are measured from everywhere) and marked bold.
[[nodiscard]] std::vector<BoxRow> figure_rows(const core::CampaignResult& result,
                                              const std::string& vantage_id,
                                              geo::Continent continent);

[[nodiscard]] std::string render_figure(const core::CampaignResult& result,
                                        const std::string& vantage_id,
                                        geo::Continent continent, const std::string& title,
                                        double max_ms = 600.0);

// Tables 2-3: the five non-mainstream resolvers on `continent` with the
// largest increase in median response time between the near and far vantage,
// as "Resolver | near (ms) | far (ms)" rows sorted by the gap.
[[nodiscard]] Table remote_median_table(const core::CampaignResult& result,
                                        geo::Continent continent,
                                        const std::string& near_vantage,
                                        const std::string& far_vantage, std::size_t top_n = 5);

// §4 availability paragraph: success/error totals and the error taxonomy.
[[nodiscard]] std::string availability_report(const core::CampaignResult& result);

// Table 1: the browser x provider support matrix (static registry data).
[[nodiscard]] Table browser_matrix();

// §4 headline numbers: per-vantage maximum of per-resolver median response
// times ("response times from resolvers were as high as 399 ms").
[[nodiscard]] Table max_median_table(const core::CampaignResult& result);

// Resolvers whose median beats every mainstream resolver from `vantage_id`
// (the paper's "local non-mainstream winners": ordns.he.net & friends).
[[nodiscard]] std::vector<std::string> nonmainstream_winners(const core::CampaignResult& result,
                                                             const std::string& vantage_id);

}  // namespace ednsm::report
