#include "report/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>
#include <sstream>
#include <tuple>

#include "client/query.h"

namespace ednsm::report {

namespace {

std::string ms(double value) { return fmt(value, 1) + " ms"; }

void tree_line(std::ostream& os, const char* branch, const char* label, double value_ms) {
  if (value_ms == 0) return;  // phase absent (reused connection, UDP, ...)
  char buf[96];
  std::snprintf(buf, sizeof(buf), "    %s %-16s %9.1f ms\n", branch, label, value_ms);
  os << buf;
}

void render_record_tree(std::ostream& os, const core::ResultRecord& r, std::size_t rank) {
  std::ostringstream head;
  head << "#" << rank << "  " << ms(r.response_ms) << "  "
       << client::to_string(r.protocol) << "  " << r.vantage << " -> " << r.resolver << "  "
       << r.domain << "  round " << r.round;
  if (r.ok) {
    head << "  [ok " << r.rcode << "]";
  } else {
    head << "  [" << (r.failure_stage.empty() ? "failed" : r.failure_stage) << ": "
         << r.error_class << "]";
  }
  if (r.connection_reused) head << "  (reused)";
  os << head.str() << '\n';

  // The span tree mirrors the QueryTiming decomposition: connect wraps the
  // handshake phases, exchange is the live-connection round trip.
  const bool has_setup = r.connect_ms != 0 || r.tcp_handshake_ms != 0 ||
                         r.tls_handshake_ms != 0 || r.quic_handshake_ms != 0 ||
                         r.pool_wait_ms != 0;
  if (has_setup) {
    tree_line(os, "├─", "connect", r.connect_ms);
    tree_line(os, "│  ├─", "tcp-handshake", r.tcp_handshake_ms);
    tree_line(os, "│  ├─", "tls-handshake", r.tls_handshake_ms);
    tree_line(os, "│  ├─", "quic-handshake", r.quic_handshake_ms);
    tree_line(os, "│  └─", "pool-wait", r.pool_wait_ms);
  }
  tree_line(os, "└─", "exchange", r.exchange_ms);
  if (!r.ok && !r.error_detail.empty()) os << "       " << r.error_detail << '\n';
}

}  // namespace

Table failure_breakdown_table(const core::CampaignResult& result) {
  // std::map keys give the lexicographic tie-break for free.
  std::map<std::pair<std::string, std::string>, std::uint64_t> counts;
  std::uint64_t failed = 0;
  for (const core::ResultRecord& r : result.records) {
    if (r.ok) continue;
    ++failed;
    const std::string stage = r.failure_stage.empty()
                                  ? std::string(core::derive_failure_stage(r.error_class))
                                  : r.failure_stage;
    ++counts[{stage.empty() ? "unknown" : stage, r.error_class}];
  }

  std::vector<std::pair<std::pair<std::string, std::string>, std::uint64_t>> rows(
      counts.begin(), counts.end());
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });

  Table t({"Stage", "Error", "Count", "Share%"});
  for (const auto& [key, count] : rows) {
    const double share = failed == 0 ? 0.0 : 100.0 * static_cast<double>(count) /
                                                 static_cast<double>(failed);
    t.add_row({key.first, key.second, std::to_string(count), fmt(share, 1)});
  }
  return t;
}

std::string render_slowest_queries(const core::CampaignResult& result, std::size_t top_n) {
  std::vector<std::size_t> order(result.records.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Equal durations tie-break on (vantage, resolver, round) so the listing is
  // deterministic even for records loaded from files whose order is not the
  // canonical merge order; stable_sort keeps record order for full ties.
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const core::ResultRecord& ra = result.records[a];
    const core::ResultRecord& rb = result.records[b];
    if (ra.response_ms != rb.response_ms) return ra.response_ms > rb.response_ms;
    return std::tie(ra.vantage, ra.resolver, ra.round) < std::tie(rb.vantage, rb.resolver, rb.round);
  });
  if (order.size() > top_n) order.resize(top_n);

  std::ostringstream os;
  for (std::size_t i = 0; i < order.size(); ++i) {
    render_record_tree(os, result.records[order[i]], i + 1);
  }
  return os.str();
}

std::string render_flight_recorder(const core::CampaignResult& result, std::size_t top_n) {
  std::uint64_t ok = 0;
  for (const core::ResultRecord& r : result.records) ok += r.ok ? 1 : 0;
  const std::uint64_t failed = result.records.size() - ok;

  std::ostringstream os;
  os << "== Flight recorder ==\n"
     << result.records.size() << " records (" << ok << " ok, " << failed << " failed), "
     << result.pings.size() << " pings\n\n";
  os << "-- Slowest " << top_n << " queries --\n"
     << render_slowest_queries(result, top_n);
  if (failed > 0) {
    os << "\n-- Failure breakdown --\n" << failure_breakdown_table(result).to_text();
  }
  return os.str();
}

}  // namespace ednsm::report
