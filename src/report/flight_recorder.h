// Campaign flight recorder: a post-hoc debugging view over a finished
// campaign. Renders the top-N slowest queries as per-phase span trees
// (reconstructed from each record's timing decomposition) plus a
// failure-cause breakdown keyed by (failure_stage, error_class) — the
// "what went wrong, where, and what did the slow tail pay for" report.
#pragma once

#include <cstddef>
#include <string>

#include "core/campaign.h"
#include "report/table.h"

namespace ednsm::report {

// Failure counts by (stage, error_class), sorted by descending count then
// lexicographically — deterministic for a deterministic campaign. Columns:
// Stage | Error | Count | Share%.
[[nodiscard]] Table failure_breakdown_table(const core::CampaignResult& result);

// The `top_n` slowest queries by end-to-end response time (ties broken by
// canonical record order), each rendered as a span tree of its phases.
// Includes failed records: a timeout sitting at the deadline is exactly what
// a flight recorder is for.
[[nodiscard]] std::string render_slowest_queries(const core::CampaignResult& result,
                                                 std::size_t top_n);

// The full flight-recorder report: summary line, slowest queries, failure
// breakdown.
[[nodiscard]] std::string render_flight_recorder(const core::CampaignResult& result,
                                                 std::size_t top_n = 10);

}  // namespace ednsm::report
