#include "report/table.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ednsm::report {

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row width does not match header");
  }
  rows_.push_back(std::move(row));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out.append(row[c]);
      if (c + 1 < row.size()) out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out.push_back('\n');
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out.append(total, '-');
  out.push_back('\n');
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string Table::to_markdown() const {
  std::string out = "|";
  for (const std::string& h : header_) out += " " + h + " |";
  out += "\n|";
  for (std::size_t c = 0; c < header_.size(); ++c) out += "---|";
  out += "\n";
  for (const auto& row : rows_) {
    out += "|";
    for (const std::string& cell : row) out += " " + cell + " |";
    out += "\n";
  }
  return out;
}

std::string Table::to_tsv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out += (c + 1 < row.size()) ? '\t' : '\n';
    }
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string fmt(double value, int decimals) {
  if (std::isnan(value)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

}  // namespace ednsm::report
