// Plain-text / markdown table rendering for the reproduction reports.
#pragma once

#include <string>
#include <vector>

namespace ednsm::report {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return header_.size(); }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

  // Aligned monospace rendering with a separator under the header.
  [[nodiscard]] std::string to_text() const;

  // GitHub-flavored markdown.
  [[nodiscard]] std::string to_markdown() const;

  // Tab-separated (for piping into plotting tools).
  [[nodiscard]] std::string to_tsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Format a double with `decimals` places ("12.3"); NaN renders as "-".
[[nodiscard]] std::string fmt(double value, int decimals = 1);

}  // namespace ednsm::report
