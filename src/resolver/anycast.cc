#include "resolver/anycast.h"

#include <cassert>
#include <limits>

#include "geo/geodb.h"

namespace ednsm::resolver {

Deployment Deployment::unicast(AnycastSite site) {
  Deployment d;
  d.sites_.push_back(std::move(site));
  return d;
}

Deployment Deployment::anycast(std::vector<AnycastSite> sites) {
  assert(sites.size() >= 2 && "anycast needs at least two sites");
  Deployment d;
  d.sites_ = std::move(sites);
  return d;
}

const AnycastSite& Deployment::site_for(const geo::GeoPoint& from) const {
  const AnycastSite* best = &sites_.front();
  double best_km = std::numeric_limits<double>::max();
  for (const AnycastSite& site : sites_) {
    const double km = geo::great_circle_km(from, site.location);
    if (km < best_km) {
      best_km = km;
      best = &site;
    }
  }
  return *best;
}

namespace c = geo::city;

std::vector<AnycastSite> global_anycast_sites() {
  return {
      {"Chicago", c::kChicago},     {"Ashburn", c::kAshburn},
      {"Dallas", c::kDallas},       {"Los Angeles", c::kLosAngeles},
      {"Seattle", c::kSeattle},     {"Toronto", c::kToronto},
      {"Frankfurt", c::kFrankfurt}, {"Amsterdam", c::kAmsterdam},
      {"London", c::kLondon},       {"Paris", c::kParis},
      {"Stockholm", c::kStockholm}, {"Warsaw", c::kWarsaw},
      {"Seoul", c::kSeoul},         {"Tokyo", c::kTokyo},
      {"Singapore", c::kSingapore}, {"Hong Kong", c::kHongKong},
      {"Sydney", c::kSydney},       {"Mumbai", c::kMumbai},
  };
}

std::vector<AnycastSite> regional_anycast_sites() {
  return {
      {"Ashburn", c::kAshburn},     {"Chicago", c::kChicago},
      {"Los Angeles", c::kLosAngeles},
      {"Frankfurt", c::kFrankfurt}, {"Amsterdam", c::kAmsterdam},
      {"Tokyo", c::kTokyo},         {"Singapore", c::kSingapore},
      {"Sydney", c::kSydney},
  };
}

std::vector<AnycastSite> isp_backbone_sites() {
  // Hurricane Electric's backbone is dense in North America and Europe with
  // a lighter Asian footprint — which is why ordns.he.net wins from the
  // Chicago home vantage but not from Seoul.
  return {
      {"Fremont", c::kFremont},   {"Chicago", c::kChicago},
      {"New York", c::kNewYork},  {"Dallas", c::kDallas},
      {"Miami", c::kMiami},       {"Seattle", c::kSeattle},
      {"Frankfurt", c::kFrankfurt}, {"London", c::kLondon},
      {"Amsterdam", c::kAmsterdam}, {"Tokyo", c::kTokyo},
      {"Singapore", c::kSingapore},
  };
}

}  // namespace ednsm::resolver
