// Anycast deployment model.
//
// Mainstream resolvers (Cloudflare, Google, Quad9, ...) announce one address
// from dozens of sites; BGP delivers a client to (approximately) the nearest
// one. Non-mainstream resolvers are typically a single unicast site — the
// paper's central finding is that this difference drives the response-time
// gap for distant vantage points. site_for() picks the geographically
// nearest site, which is the standard first-order approximation of anycast
// catchment.
#pragma once

#include <string>
#include <vector>

#include "geo/coords.h"

namespace ednsm::resolver {

struct AnycastSite {
  std::string city;
  geo::GeoPoint location;
};

class Deployment {
 public:
  // Unicast: exactly one site.
  [[nodiscard]] static Deployment unicast(AnycastSite site);

  // Anycast over the given sites (>= 2).
  [[nodiscard]] static Deployment anycast(std::vector<AnycastSite> sites);

  [[nodiscard]] bool is_anycast() const noexcept { return sites_.size() > 1; }
  [[nodiscard]] const std::vector<AnycastSite>& sites() const noexcept { return sites_; }

  // The site serving a client at `from` (nearest by great-circle distance).
  [[nodiscard]] const AnycastSite& site_for(const geo::GeoPoint& from) const;

  // The site whose location the paper's GeoLite2 lookup would report
  // (registration location = first site).
  [[nodiscard]] const AnycastSite& primary_site() const { return sites_.front(); }

 private:
  std::vector<AnycastSite> sites_;
};

// Site lists used by the registry for the big mainstream deployments:
// a representative subset of each provider's published PoP maps.
[[nodiscard]] std::vector<AnycastSite> global_anycast_sites();   // ~Cloudflare/Google scale
[[nodiscard]] std::vector<AnycastSite> regional_anycast_sites(); // ~Quad9/NextDNS scale
[[nodiscard]] std::vector<AnycastSite> isp_backbone_sites();     // ~Hurricane Electric PoPs

}  // namespace ednsm::resolver
