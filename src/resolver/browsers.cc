#include "resolver/browsers.h"

#include "util/strings.h"

namespace ednsm::resolver {

std::string_view to_string(Browser b) noexcept {
  switch (b) {
    case Browser::Chrome: return "Chrome";
    case Browser::Firefox: return "Firefox";
    case Browser::Edge: return "Edge";
    case Browser::Opera: return "Opera";
    case Browser::Brave: return "Brave";
  }
  return "?";
}

std::string_view to_string(Provider p) noexcept {
  switch (p) {
    case Provider::Cloudflare: return "Cloudflare";
    case Provider::Google: return "Google";
    case Provider::Quad9: return "Quad9";
    case Provider::NextDNS: return "NextDNS";
    case Provider::CleanBrowsing: return "CleanBrowsing";
    case Provider::OpenDNS: return "OpenDNS";
  }
  return "?";
}

const std::vector<Browser>& all_browsers() {
  static const std::vector<Browser> kAll = {Browser::Chrome, Browser::Firefox, Browser::Edge,
                                            Browser::Opera, Browser::Brave};
  return kAll;
}

const std::vector<Provider>& all_providers() {
  static const std::vector<Provider> kAll = {Provider::Cloudflare,    Provider::Google,
                                             Provider::Quad9,         Provider::NextDNS,
                                             Provider::CleanBrowsing, Provider::OpenDNS};
  return kAll;
}

bool browser_offers(Browser browser, Provider provider) noexcept {
  // Table 1, row by row.
  switch (browser) {
    case Browser::Chrome:
      return provider == Provider::Cloudflare || provider == Provider::Google ||
             provider == Provider::Quad9 || provider == Provider::NextDNS ||
             provider == Provider::CleanBrowsing;
    case Browser::Firefox:
      return provider == Provider::Cloudflare || provider == Provider::NextDNS;
    case Browser::Edge:
      return true;  // all six
    case Browser::Opera:
      return provider == Provider::Cloudflare || provider == Provider::Google;
    case Browser::Brave:
      return true;  // all six
  }
  return false;
}

std::vector<Provider> providers_of(Browser browser) {
  std::vector<Provider> out;
  for (Provider p : all_providers()) {
    if (browser_offers(browser, p)) out.push_back(p);
  }
  return out;
}

bool provider_of_hostname(std::string_view hostname, Provider& out) noexcept {
  if (util::ends_with(hostname, "cloudflare-dns.com")) {
    out = Provider::Cloudflare;
    return true;
  }
  if (hostname == "dns.google") {
    out = Provider::Google;
    return true;
  }
  if (util::ends_with(hostname, "quad9.net")) {
    out = Provider::Quad9;
    return true;
  }
  if (util::ends_with(hostname, "nextdns.io")) {
    out = Provider::NextDNS;
    return true;
  }
  return false;
}

}  // namespace ednsm::resolver
