// Table 1 of the paper: which encrypted-DNS providers each major browser
// offers as built-in choices (as of May 9, 2024). This is the paper's
// operational definition of "mainstream".
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ednsm::resolver {

enum class Browser { Chrome, Firefox, Edge, Opera, Brave };

enum class Provider { Cloudflare, Google, Quad9, NextDNS, CleanBrowsing, OpenDNS };

[[nodiscard]] std::string_view to_string(Browser b) noexcept;
[[nodiscard]] std::string_view to_string(Provider p) noexcept;

[[nodiscard]] const std::vector<Browser>& all_browsers();
[[nodiscard]] const std::vector<Provider>& all_providers();

// Does `browser` ship `provider` as a built-in DoH choice? (Table 1.)
[[nodiscard]] bool browser_offers(Browser browser, Provider provider) noexcept;

// Providers offered by a browser, in Table 1 column order.
[[nodiscard]] std::vector<Provider> providers_of(Browser browser);

// The provider operating a registry hostname, if it is a Table 1 provider.
// ("dns.google" -> Google, "dns9.quad9.net" -> Quad9, ...)
[[nodiscard]] bool provider_of_hostname(std::string_view hostname, Provider& out) noexcept;

}  // namespace ednsm::resolver
