#include "resolver/cache.h"

#include <algorithm>

namespace ednsm::resolver {

void Cache::insert(const CacheKey& key, dns::Rcode rcode,
                   std::vector<dns::ResourceRecord> answers, netsim::SimTime now,
                   netsim::SimDuration negative_ttl) {
  CacheEntry entry;
  entry.rcode = rcode;
  entry.inserted_at = now;
  if (answers.empty()) {
    entry.ttl = negative_ttl;
  } else {
    std::uint32_t min_ttl = answers.front().ttl;
    for (const auto& rr : answers) min_ttl = std::min(min_ttl, rr.ttl);
    entry.ttl = std::chrono::seconds(std::max<std::uint32_t>(min_ttl, 1));
  }
  entry.answers = std::move(answers);

  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second = std::move(entry);
    touch(key);
  } else {
    if (entries_.size() >= capacity_ && !lru_.empty()) {
      const CacheKey victim = lru_.back();
      lru_.pop_back();
      lru_index_.erase(victim);
      entries_.erase(victim);
      ++stats_.evictions;
    }
    entries_.emplace(key, std::move(entry));
    lru_.push_front(key);
    lru_index_[key] = lru_.begin();
  }
  ++stats_.insertions;
}

std::optional<CacheEntry> Cache::lookup(const CacheKey& key, netsim::SimTime now) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  const CacheEntry& e = it->second;
  const netsim::SimDuration age = now - e.inserted_at;
  if (age >= e.ttl) {
    ++stats_.expirations;
    ++stats_.misses;
    const auto lru_it = lru_index_.find(key);
    if (lru_it != lru_index_.end()) {
      lru_.erase(lru_it->second);
      lru_index_.erase(lru_it);
    }
    entries_.erase(it);
    return std::nullopt;
  }

  ++stats_.hits;
  touch(key);
  CacheEntry out = e;
  // Decay TTLs to the remaining lifetime.
  const auto remaining_s = std::chrono::duration_cast<std::chrono::seconds>(e.ttl - age);
  for (auto& rr : out.answers) {
    rr.ttl = static_cast<std::uint32_t>(std::max<std::int64_t>(remaining_s.count(), 0));
  }
  return out;
}

void Cache::touch(const CacheKey& key) {
  const auto it = lru_index_.find(key);
  if (it == lru_index_.end()) return;
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second = lru_.begin();
}

void Cache::clear() {
  entries_.clear();
  lru_.clear();
  lru_index_.clear();
}

}  // namespace ednsm::resolver
