// Recursive-resolver answer cache with TTL decay and LRU eviction.
//
// Keys are (qname, qtype, qclass); values are the answer RRset plus the
// response code (negative answers are cached too, per RFC 2308, using the
// SOA minimum as the negative TTL). TTLs decay against the simulated clock:
// a hit returns the records with their remaining TTL.
#pragma once

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dns/message.h"
#include "netsim/time.h"

namespace ednsm::resolver {

struct CacheKey {
  dns::Name qname;
  dns::RecordType qtype = dns::RecordType::A;
  dns::RecordClass qclass = dns::RecordClass::IN;

  [[nodiscard]] bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const noexcept {
    std::size_t h = k.qname.hash();
    h ^= static_cast<std::size_t>(k.qtype) * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<std::size_t>(k.qclass) * 0xc2b2ae3d27d4eb4fULL;
    return h;
  }
};

struct CacheEntry {
  dns::Rcode rcode = dns::Rcode::NoError;
  std::vector<dns::ResourceRecord> answers;  // TTLs as of insertion
  netsim::SimTime inserted_at{0};
  netsim::SimDuration ttl{0};  // min TTL across the RRset (or negative TTL)
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t expirations = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
};

class Cache {
 public:
  explicit Cache(std::size_t capacity = 10000) : capacity_(capacity) {}

  // Insert an answer observed at `now`. The entry TTL is the minimum record
  // TTL (clamped to >= 1s so zero-TTL records do not thrash), or
  // `negative_ttl` when the answer set is empty.
  void insert(const CacheKey& key, dns::Rcode rcode,
              std::vector<dns::ResourceRecord> answers, netsim::SimTime now,
              netsim::SimDuration negative_ttl = std::chrono::seconds(60));

  // Lookup at `now`. Expired entries are removed and count as misses. The
  // returned records carry their *remaining* TTL.
  [[nodiscard]] std::optional<CacheEntry> lookup(const CacheKey& key, netsim::SimTime now);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void clear();

 private:
  void touch(const CacheKey& key);

  std::size_t capacity_;
  std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> entries_;
  std::list<CacheKey> lru_;  // front = most recently used
  std::unordered_map<CacheKey, std::list<CacheKey>::iterator, CacheKeyHash> lru_index_;
  CacheStats stats_;
};

}  // namespace ednsm::resolver
