#include "resolver/odoh.h"

#include "dns/wire.h"

namespace ednsm::resolver {

using netsim::Endpoint;

util::Bytes ObliviousMessage::encode() const {
  dns::WireWriter w;
  w.u8(static_cast<std::uint8_t>(target_hostname.size()));
  w.bytes(std::span(reinterpret_cast<const std::uint8_t*>(target_hostname.data()),
                    target_hostname.size()));
  w.u16(static_cast<std::uint16_t>(payload.size() + kHpkeOverhead));
  w.bytes(payload);
  for (std::size_t i = 0; i < kHpkeOverhead; ++i) w.u8(0x5A);  // simulated HPKE bytes
  return std::move(w).take();
}

Result<ObliviousMessage> ObliviousMessage::decode(std::span<const std::uint8_t> wire) {
  dns::WireReader r(wire);
  ObliviousMessage m;
  auto len = r.u8();
  if (!len) return Err{std::string("odoh: truncated target")};
  auto host = r.bytes(len.value());
  if (!host) return Err{std::string("odoh: truncated target")};
  m.target_hostname.assign(reinterpret_cast<const char*>(host.value().data()),
                           host.value().size());
  auto plen = r.u16();
  if (!plen) return Err{std::string("odoh: truncated payload length")};
  if (plen.value() < kHpkeOverhead) return Err{std::string("odoh: payload too short")};
  auto payload = r.bytes(plen.value() - kHpkeOverhead);
  if (!payload) return Err{std::string("odoh: truncated payload")};
  auto hpke = r.bytes(kHpkeOverhead);
  if (!hpke) return Err{std::string("odoh: truncated HPKE trailer")};
  if (!r.at_end()) return Err{std::string("odoh: trailing bytes")};
  m.payload = std::move(payload).value();
  return m;
}

OdohRelay::OdohRelay(netsim::Network& net, std::string hostname, geo::GeoPoint location,
                     TargetResolver resolve_target)
    : net_(net),
      hostname_(std::move(hostname)),
      addr_(net.attach("odoh-relay/" + hostname_, location,
                       netsim::AccessLinkModel::datacenter())),
      resolve_target_(std::move(resolve_target)) {
  listener_ = std::make_unique<transport::TcpListener>(
      net_, Endpoint{addr_, netsim::kPortHttps});
  upstream_pool_ = std::make_unique<transport::ConnectionPool>(net_, addr_);

  transport::TlsServerConfig tls_cfg;
  tls_cfg.certificate_names = {hostname_};

  listener_->on_accept([this, tls_cfg](transport::TcpServerConn& conn) {
    auto state = std::make_shared<ConnState>(net_.queue(), net_.rng(), conn, tls_cfg);
    conns_[&conn] = state;
    std::weak_ptr<ConnState> weak = state;
    state->tls.on_data([this, weak](util::Bytes data) {
      if (auto st = weak.lock()) handle_request(st, std::move(data));
    });
  });
  listener_->on_close([this](transport::TcpServerConn& conn) { conns_.erase(&conn); });
}

OdohRelay::~OdohRelay() = default;

void OdohRelay::handle_request(const std::shared_ptr<ConnState>& st, util::Bytes data) {
  auto respond_status = [st](int status) {
    http::Response resp;
    resp.status = status;
    st->tls.send(resp.encode());
  };

  auto request = http::Request::decode(data);
  if (!request) {
    ++stats_.malformed;
    respond_status(400);
    return;
  }
  const std::string* ct = http::find_header(request.value().headers, "content-type");
  if (request.value().method != "POST" || ct == nullptr ||
      *ct != std::string(kObliviousMediaType)) {
    ++stats_.malformed;
    respond_status(415);
    return;
  }
  auto oblivious = ObliviousMessage::decode(request.value().body);
  if (!oblivious) {
    ++stats_.malformed;
    respond_status(400);
    return;
  }
  const std::string target = oblivious.value().target_hostname;
  const auto target_addr = resolve_target_(target);
  if (!target_addr.has_value()) {
    ++stats_.target_failures;
    respond_status(502);
    return;
  }

  // Forward the sealed query to the target's DoH endpoint. The relay reuses
  // upstream sessions across client queries (Keepalive policy).
  ++stats_.forwarded;
  const Endpoint target_ep{*target_addr, netsim::kPortHttps};
  const http::Request upstream = http::make_doh_request(
      target, http::kDohDefaultPath, oblivious.value().payload, /*post=*/true);

  std::weak_ptr<ConnState> weak = st;
  upstream_pool_->acquire(
      target_ep, target, transport::ReusePolicy::Keepalive, {},
      [this, weak, target, upstream](Result<transport::ConnectionPool::Lease> lease) {
        auto client_conn = weak.lock();
        if (!client_conn) return;
        if (!lease) {
          ++stats_.target_failures;
          http::Response bad;
          bad.status = 502;
          client_conn->tls.send(bad.encode());
          return;
        }
        auto* tls = lease.value().tls;
        std::weak_ptr<ConnState> weak2 = client_conn;
        tls->on_data([this, weak2, target](util::Bytes answer) {
          auto client = weak2.lock();
          if (!client) return;
          auto response = http::Response::decode(answer);
          if (!response || response.value().status != 200) {
            ++stats_.target_failures;
            http::Response bad;
            bad.status = 502;
            client->tls.send(bad.encode());
            return;
          }
          // Re-encapsulate the (sealed) answer for the client.
          ObliviousMessage sealed;
          sealed.target_hostname = target;
          sealed.payload = std::move(response.value().body);
          http::Response out;
          out.status = 200;
          out.headers.emplace_back("content-type", std::string(kObliviousMediaType));
          out.body = sealed.encode();
          client->tls.send(out.encode());
        });
        tls->send(upstream.encode());
      });
}

}  // namespace ednsm::resolver
