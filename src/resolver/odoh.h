// Oblivious DoH (RFC 9230): a relay decouples client identity from query
// content. The client encapsulates its DNS query for a *target* resolver and
// sends it to a *relay* over HTTPS; the relay forwards to the target without
// learning the (encrypted) query, and the target answers without learning the
// client's address.
//
// The Appendix A.2 population contains four ODoH targets
// (odoh-target*.alekberg.net), whose response-time penalty relative to their
// pings is visible in the paper's Figure 1 — this module implements the
// actual relay message path that produces that penalty.
//
// Simulation note: encapsulation is structural (target name + payload framing
// + HPKE-sized padding), not cryptographic, consistent with the TLS layer.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "http/doh_media.h"
#include "netsim/network.h"
#include "transport/pool.h"
#include "transport/tcp.h"
#include "transport/tls.h"
#include "util/result.h"

namespace ednsm::resolver {

inline constexpr std::string_view kObliviousMediaType = "application/oblivious-dns-message";
inline constexpr std::size_t kHpkeOverhead = 48;  // ~KEM ct + AEAD tag, for sizing realism

// The encapsulated message the relay forwards without inspecting.
struct ObliviousMessage {
  std::string target_hostname;
  util::Bytes payload;  // (sealed) DNS message

  [[nodiscard]] util::Bytes encode() const;
  [[nodiscard]] static Result<ObliviousMessage> decode(std::span<const std::uint8_t> wire);
};

struct RelayStats {
  std::uint64_t forwarded = 0;
  std::uint64_t target_failures = 0;
  std::uint64_t malformed = 0;
};

// An ODoH relay host: terminates client HTTPS, forwards the sealed query to
// the named target's DoH endpoint, and relays the sealed answer back.
class OdohRelay {
 public:
  // Resolves a target hostname to an address from the relay's location
  // (typically ResolverFleet::address_for bound to the relay's coordinates).
  using TargetResolver = std::function<std::optional<netsim::IpAddr>(std::string_view)>;

  OdohRelay(netsim::Network& net, std::string hostname, geo::GeoPoint location,
            TargetResolver resolve_target);
  ~OdohRelay();

  OdohRelay(const OdohRelay&) = delete;
  OdohRelay& operator=(const OdohRelay&) = delete;

  [[nodiscard]] netsim::IpAddr address() const noexcept { return addr_; }
  [[nodiscard]] const std::string& hostname() const noexcept { return hostname_; }
  [[nodiscard]] const RelayStats& stats() const noexcept { return stats_; }

 private:
  struct ConnState {
    transport::TlsServerSession tls;
    ConnState(netsim::EventQueue& q, netsim::Rng& rng, transport::TcpServerConn& conn,
              transport::TlsServerConfig cfg)
        : tls(q, rng, conn, std::move(cfg)) {}
  };

  void handle_request(const std::shared_ptr<ConnState>& st, util::Bytes data);

  netsim::Network& net_;
  std::string hostname_;
  netsim::IpAddr addr_;
  TargetResolver resolve_target_;
  std::unique_ptr<transport::TcpListener> listener_;
  // Hashed (never iterated): an ordered pointer key would order entries by
  // allocation address, which differs across runs.
  std::unordered_map<const transport::TcpServerConn*, std::shared_ptr<ConnState>> conns_;
  // The relay's own upstream connections to targets (reused across clients —
  // this reuse is why production ODoH adds less than 2x the direct latency).
  std::unique_ptr<transport::ConnectionPool> upstream_pool_;
  RelayStats stats_;
};

}  // namespace ednsm::resolver
