#include "resolver/registry.h"

#include <algorithm>
#include <stdexcept>

#include "geo/vantage.h"
#include "util/strings.h"

namespace ednsm::resolver {

namespace c = geo::city;
using geo::Continent;

namespace {

// Terse spec builders ---------------------------------------------------------

ResolverSpec make(std::string hostname, Continent continent, std::string city,
                  geo::GeoPoint location, OperatorTier tier) {
  ResolverSpec s;
  s.hostname = std::move(hostname);
  s.continent = continent;
  s.city = city;
  s.location = location;
  s.tier = tier;
  s.sites = {AnycastSite{std::move(city), location}};
  return s;
}

ResolverSpec mainstream_global(std::string hostname, std::string city, geo::GeoPoint location) {
  ResolverSpec s = make(std::move(hostname), Continent::NorthAmerica, std::move(city),
                        location, OperatorTier::Hyperscale);
  s.mainstream = true;
  s.footprint = Footprint::GlobalAnycast;
  s.sites = global_anycast_sites();
  s.home_extra_ms = 1.2;  // reached off-net from residential ISPs
  return s;
}

netsim::PathQuirk jitter_quirk(double probability, double scale_ms, double alpha) {
  netsim::PathQuirk q;
  q.extra_jitter_probability = probability;
  q.extra_jitter_scale = scale_ms;
  q.extra_jitter_alpha = alpha;
  return q;
}

netsim::PathQuirk base_quirk(double extra_base_ms) {
  netsim::PathQuirk q;
  q.extra_base_ms = extra_base_ms;
  return q;
}

std::vector<ResolverSpec> build_list() {
  std::vector<ResolverSpec> r;
  r.reserve(80);

  // ---- Mainstream (Table 1), globally anycast --------------------------------
  r.push_back(mainstream_global("dns.google", "Mountain View", c::kSanFrancisco));
  r.push_back(mainstream_global("security.cloudflare-dns.com", "San Francisco", c::kSanFrancisco));
  r.push_back(mainstream_global("family.cloudflare-dns.com", "San Francisco", c::kSanFrancisco));
  r.push_back(mainstream_global("1dot1dot1dot1.cloudflare-dns.com", "San Francisco", c::kSanFrancisco));
  r.push_back(mainstream_global("dns.quad9.net", "Berkeley", c::kSanFrancisco));
  r.push_back(mainstream_global("dns9.quad9.net", "Berkeley", c::kSanFrancisco));
  r.push_back(mainstream_global("dns.nextdns.io", "New York", c::kNewYork));
  r.push_back(mainstream_global("anycast.dns.nextdns.io", "New York", c::kNewYork));
  // Quad9's numbered variants are operated from Zurich and geolocate to
  // Europe (they appear in the paper's Europe figures).
  for (const char* host : {"dns10.quad9.net", "dns11.quad9.net", "dns12.quad9.net"}) {
    ResolverSpec s = mainstream_global(host, "Zurich", c::kZurich);
    s.continent = Continent::Europe;
    r.push_back(std::move(s));
  }

  // ---- North America, non-mainstream -----------------------------------------
  {
    // Hurricane Electric: ISP backbone, hyperscale-grade operation, and —
    // decisively for the home vantage — it is upstream transit for many
    // access ISPs, so no off-net penalty.
    ResolverSpec s = make("ordns.he.net", Continent::NorthAmerica, "Fremont", c::kFremont,
                          OperatorTier::Managed);
    s.footprint = Footprint::IspBackbone;
    s.sites = isp_backbone_sites();
    s.processing_mu = -1.5;
    s.warm_cache = 0.96;
    s.home_extra_ms = 0.0;
    r.push_back(std::move(s));
  }
  {
    // ControlD: regional anycast with strong Midwest peering (the paper sees
    // it outperform Google/Cloudflare from the Ohio EC2 vantage).
    ResolverSpec s = make("freedns.controld.com", Continent::NorthAmerica, "Toronto",
                          c::kToronto, OperatorTier::Managed);
    s.footprint = Footprint::RegionalAnycast;
    s.sites = {{"Toronto", c::kToronto},   {"Chicago", c::kChicago},
               {"Ashburn", c::kAshburn},   {"Los Angeles", c::kLosAngeles},
               {"Amsterdam", c::kAmsterdam}, {"London", c::kLondon}};
    s.processing_mu = -1.7;
    s.warm_cache = 0.95;
    s.quirks.push_back({"ec2-ohio", base_quirk(-1.5)});  // peering advantage
    r.push_back(std::move(s));
  }
  {
    ResolverSpec s = make("doh.mullvad.net", Continent::NorthAmerica, "New York", c::kNewYork,
                          OperatorTier::Managed);
    s.footprint = Footprint::RegionalAnycast;
    s.sites = {{"New York", c::kNewYork},   {"Los Angeles", c::kLosAngeles},
               {"Stockholm", c::kStockholm}, {"Frankfurt", c::kFrankfurt},
               {"Sydney", c::kSydney}};
    r.push_back(s);
    s.hostname = "adblock.doh.mullvad.net";
    r.push_back(std::move(s));
  }
  for (const char* host :
       {"kronos.plan9-dns.com", "helios.plan9-dns.com", "pluton.plan9-dns.com"}) {
    r.push_back(make(host, Continent::NorthAmerica, "Dallas", c::kDallas,
                     OperatorTier::Hobbyist));
  }
  r.push_back(make("dohtrial.att.net", Continent::NorthAmerica, "Dallas", c::kDallas,
                   OperatorTier::Managed));
  r.push_back(make("doh.safesurfer.io", Continent::NorthAmerica, "Seattle", c::kSeattle,
                   OperatorTier::Hobbyist));
  {
    // §4: "doh.la.ahadns.net has significant response times and variability
    // in the home network measurements, but very little in the EC2 ones."
    ResolverSpec s = make("doh.la.ahadns.net", Continent::NorthAmerica, "Los Angeles",
                          c::kLosAngeles, OperatorTier::Hobbyist);
    s.quirks.push_back({"home", jitter_quirk(0.5, 30.0, 1.4)});
    r.push_back(std::move(s));
  }
  // ODoH targets: the oblivious relay adds a fixed hop on the DNS path only
  // (pings still take the direct path), which is why the paper's Figure 1
  // shows their response boxes far to the right of their ping boxes.
  for (const char* host :
       {"odoh-target.alekberg.net", "odoh-target-noads.alekberg.net",
        "odoh-target-se.alekberg.net", "odoh-target-noads-se.alekberg.net"}) {
    ResolverSpec s =
        make(host, Continent::NorthAmerica, "New York", c::kNewYork, OperatorTier::Hobbyist);
    s.odoh_target = true;
    r.push_back(std::move(s));
  }

  // ---- Europe ----------------------------------------------------------------
  for (const char* host :
       {"dns.adguard.com", "dns-unfiltered.adguard.com", "dns-family.adguard.com"}) {
    ResolverSpec s =
        make(host, Continent::Europe, "Frankfurt", c::kFrankfurt, OperatorTier::Managed);
    s.footprint = Footprint::RegionalAnycast;
    s.sites = regional_anycast_sites();
    r.push_back(std::move(s));
  }
  {
    // dns0.eu: French public resolver, EU-only anycast — very fast from
    // Frankfurt, an ocean away from Seoul (Table 3).
    ResolverSpec base = make("dns0.eu", Continent::Europe, "Paris", c::kParis,
                             OperatorTier::Managed);
    base.footprint = Footprint::RegionalAnycast;
    base.sites = {{"Paris", c::kParis},
                  {"Frankfurt", c::kFrankfurt},
                  {"Amsterdam", c::kAmsterdam},
                  {"Warsaw", c::kWarsaw}};
    for (const char* host : {"dns0.eu", "open.dns0.eu", "kids.dns0.eu"}) {
      ResolverSpec s = base;
      s.hostname = host;
      r.push_back(std::move(s));
    }
  }
  {
    // §4: dns.brahma.world outperforms Cloudflare from Frankfurt.
    ResolverSpec s = make("dns.brahma.world", Continent::Europe, "Frankfurt", c::kFrankfurt,
                          OperatorTier::Managed);
    s.processing_mu = -1.8;
    s.warm_cache = 0.93;
    s.quirks.push_back({"ec2-frankfurt", base_quirk(-1.0)});
    r.push_back(std::move(s));
  }
  {
    ResolverSpec s = make("anycast.uncensoreddns.org", Continent::Europe, "Copenhagen",
                          c::kCopenhagen, OperatorTier::Hobbyist);
    s.footprint = Footprint::RegionalAnycast;
    s.sites = {{"Copenhagen", c::kCopenhagen}, {"Amsterdam", c::kAmsterdam}};
    r.push_back(std::move(s));
  }
  r.push_back(make("unicast.uncensoreddns.org", Continent::Europe, "Copenhagen",
                   c::kCopenhagen, OperatorTier::Hobbyist));
  r.push_back(make("doh.ffmuc.net", Continent::Europe, "Munich", c::kMunich,
                   OperatorTier::Hobbyist));
  r.push_back(make("dns1.ryan-palmer.com", Continent::Europe, "London", c::kLondon,
                   OperatorTier::Hobbyist));
  r.push_back(make("dns.digitale-gesellschaft.ch", Continent::Europe, "Zurich", c::kZurich,
                   OperatorTier::Hobbyist));
  r.push_back(make("doh.libredns.gr", Continent::Europe, "Athens", c::kAthens,
                   OperatorTier::Hobbyist));
  r.push_back(make("dns.switch.ch", Continent::Europe, "Zurich", c::kZurich,
                   OperatorTier::Managed));
  r.push_back(make("dns-doh-no-safe-search.dnsforfamily.com", Continent::Europe, "Warsaw",
                   c::kWarsaw, OperatorTier::Hobbyist));
  r.push_back(make("dns-doh.dnsforfamily.com", Continent::Europe, "Warsaw", c::kWarsaw,
                   OperatorTier::Hobbyist));
  r.push_back(make("ibksturm.synology.me", Continent::Europe, "Zurich", c::kZurich,
                   OperatorTier::Hobbyist));
  r.push_back(make("dnsforge.de", Continent::Europe, "Berlin", c::kBerlin,
                   OperatorTier::Hobbyist));
  r.push_back(make("v.dnscrypt.uk", Continent::Europe, "London", c::kLondon,
                   OperatorTier::Hobbyist));
  r.push_back(make("doh.dnscrypt.uk", Continent::Europe, "London", c::kLondon,
                   OperatorTier::Hobbyist));
  r.push_back(make("doh.sb", Continent::Europe, "Amsterdam", c::kAmsterdam,
                   OperatorTier::Managed));
  r.push_back(make("dns.njal.la", Continent::Europe, "Stockholm", c::kStockholm,
                   OperatorTier::Hobbyist));
  r.push_back(make("dns.digitalsize.net", Continent::Europe, "London", c::kLondon,
                   OperatorTier::Hobbyist));
  r.push_back(make("doh.nl.ahadns.net", Continent::Europe, "Amsterdam", c::kAmsterdam,
                   OperatorTier::Hobbyist));
  r.push_back(make("dnsse.alekberg.net", Continent::Europe, "Stockholm", c::kStockholm,
                   OperatorTier::Hobbyist));
  r.push_back(make("dnsse-noads.alekberg.net", Continent::Europe, "Stockholm", c::kStockholm,
                   OperatorTier::Hobbyist));
  r.push_back(make("dnsnl.alekberg.net", Continent::Europe, "Amsterdam", c::kAmsterdam,
                   OperatorTier::Hobbyist));
  r.push_back(make("dnsnl-noads.alekberg.net", Continent::Europe, "Amsterdam", c::kAmsterdam,
                   OperatorTier::Hobbyist));
  r.push_back(make("dns.circl.lu", Continent::Europe, "Luxembourg", c::kLuxembourg,
                   OperatorTier::Managed));

  // ---- Asia ------------------------------------------------------------------
  {
    // AliDNS: Asian anycast with a Seoul-adjacent presence — the paper sees
    // it beat every mainstream resolver from the Seoul vantage.
    ResolverSpec s = make("dns.alidns.com", Continent::Asia, "Hangzhou", c::kHangzhou,
                          OperatorTier::Managed);
    s.footprint = Footprint::RegionalAnycast;
    s.sites = {{"Hangzhou", c::kHangzhou},
               {"Hong Kong", c::kHongKong},
               {"Singapore", c::kSingapore},
               {"Seoul", c::kSeoul}};
    s.processing_mu = -1.6;
    s.warm_cache = 0.96;
    // Domestic-peering advantage from the Seoul vantage (the paper observes
    // AliDNS beating every mainstream resolver from Seoul).
    s.quirks.push_back({"ec2-seoul", base_quirk(-1.2)});
    r.push_back(std::move(s));
  }
  {
    ResolverSpec s =
        make("doh.pub", Continent::Asia, "Beijing", c::kBeijing, OperatorTier::Managed);
    s.footprint = Footprint::RegionalAnycast;
    s.sites = {{"Beijing", c::kBeijing}, {"Hong Kong", c::kHongKong}};
    r.push_back(std::move(s));
  }
  {
    ResolverSpec s =
        make("doh.360.cn", Continent::Asia, "Beijing", c::kBeijing, OperatorTier::Managed);
    s.footprint = Footprint::RegionalAnycast;
    s.sites = {{"Beijing", c::kBeijing}, {"Hong Kong", c::kHongKong}};
    r.push_back(std::move(s));
  }
  r.push_back(make("public.dns.iij.jp", Continent::Asia, "Tokyo", c::kTokyo,
                   OperatorTier::Managed));
  {
    // §4: dns.twnic.tw — high ping *and* response times from the home
    // devices, low and stable from EC2: a path quirk, not a server quirk.
    // TWNIC's Quad101 service has a modest anycast footprint with a US
    // west-coast presence, which keeps its EC2 numbers unremarkable.
    ResolverSpec s =
        make("dns.twnic.tw", Continent::Asia, "Taipei", c::kTaipei, OperatorTier::Managed);
    s.footprint = Footprint::RegionalAnycast;
    s.sites = {{"Taipei", c::kTaipei}, {"Los Angeles", c::kLosAngeles}};
    s.quirks.push_back({"home", [] {
                          netsim::PathQuirk q = jitter_quirk(0.3, 20.0, 1.6);
                          q.extra_base_ms = 45.0;
                          return q;
                        }()});
    r.push_back(std::move(s));
  }
  {
    // §4: antivirus.bebasid.com — high variability from the Ohio and
    // Frankfurt EC2 instances, but low variability from the home devices.
    ResolverSpec s = make("antivirus.bebasid.com", Continent::Asia, "Jakarta", c::kJakarta,
                          OperatorTier::Hobbyist);
    s.quirks.push_back({"ec2-ohio", jitter_quirk(0.4, 50.0, 1.5)});
    s.quirks.push_back({"ec2-frankfurt", jitter_quirk(0.4, 50.0, 1.5)});
    r.push_back(std::move(s));
  }
  r.push_back(make("dns.bebasid.com", Continent::Asia, "Jakarta", c::kJakarta,
                   OperatorTier::Hobbyist));
  r.push_back(make("jp-tiar.app", Continent::Asia, "Tokyo", c::kTokyo, OperatorTier::Hobbyist));
  r.push_back(make("doh.tiar.app", Continent::Asia, "Singapore", c::kSingapore,
                   OperatorTier::Hobbyist));
  r.push_back(make("dnslow.me", Continent::Asia, "Tokyo", c::kTokyo, OperatorTier::Hobbyist));
  r.push_back(make("dns.therifleman.name", Continent::Asia, "Mumbai", c::kMumbai,
                   OperatorTier::Hobbyist));
  r.push_back(make("pdns.itxe.net", Continent::Asia, "Jakarta", c::kJakarta,
                   OperatorTier::Hobbyist));
  r.push_back(make("sby-doh.limotelu.org", Continent::Asia, "Surabaya",
                   geo::GeoPoint{-7.25, 112.75}, OperatorTier::Hobbyist));

  // ---- Oceania (measured; not shown in the paper's per-region figures) -------
  r.push_back(make("adl.adfilter.net", Continent::Oceania, "Adelaide", c::kAdelaide,
                   OperatorTier::Hobbyist));
  r.push_back(make("per.adfilter.net", Continent::Oceania, "Perth", c::kPerth,
                   OperatorTier::Hobbyist));
  r.push_back(make("syd.adfilter.net", Continent::Oceania, "Sydney", c::kSydney,
                   OperatorTier::Hobbyist));
  r.push_back(make("doh.seby.io", Continent::Oceania, "Sydney", c::kSydney,
                   OperatorTier::Hobbyist));
  r.push_back(make("doh-2.seby.io", Continent::Oceania, "Sydney", c::kSydney,
                   OperatorTier::Hobbyist));

  // ---- No geolocation ("6 resolvers were unable to return a location") -------
  // These still exist somewhere; the simulator places them, but the GeoDb
  // refuses to answer for them, exactly like the paper's GeoLite2 lookups.
  {
    ResolverSpec s = make("chewbacca.meganerd.nl", Continent::Unknown, "Amsterdam",
                          c::kAmsterdam, OperatorTier::Hobbyist);
    r.push_back(std::move(s));
  }
  {
    ResolverSpec base = make("puredns.org", Continent::Unknown, "Nicosia",
                             geo::GeoPoint{35.17, 33.36}, OperatorTier::Managed);
    base.footprint = Footprint::RegionalAnycast;
    base.sites = {{"Nicosia", geo::GeoPoint{35.17, 33.36}},
                  {"Frankfurt", c::kFrankfurt},
                  {"New York", c::kNewYork}};
    r.push_back(base);
    base.hostname = "family.puredns.org";
    r.push_back(std::move(base));
  }

  // ICMP-filtered operators (the paper: "certain resolvers did not respond
  // to our ICMP ping probes").
  for (ResolverSpec& s : r) {
    static const char* kNoPing[] = {"doh.seby.io",        "doh-2.seby.io",
                                    "puredns.org",        "family.puredns.org",
                                    "chewbacca.meganerd.nl", "pdns.itxe.net",
                                    "dns.therifleman.name"};
    for (const char* host : kNoPing) {
      if (s.hostname == host) s.icmp_responder = false;
    }
    if (s.odoh_target) s.footprint = Footprint::Unicast;
  }
  return r;
}

}  // namespace

const std::vector<ResolverSpec>& paper_resolver_list() {
  static const std::vector<ResolverSpec> kList = build_list();
  return kList;
}

const ResolverSpec* find_resolver(std::string_view hostname) {
  for (const ResolverSpec& s : paper_resolver_list()) {
    if (s.hostname == hostname) return &s;
  }
  return nullptr;
}

std::vector<std::string> mainstream_hostnames() {
  std::vector<std::string> out;
  for (const ResolverSpec& s : paper_resolver_list()) {
    if (s.mainstream) out.push_back(s.hostname);
  }
  return out;
}

ServerBehavior behavior_for_tier(OperatorTier tier) {
  ServerBehavior b;
  switch (tier) {
    case OperatorTier::Hyperscale:
      b.processing_mu = -1.6;
      b.processing_sigma = 0.3;
      b.load_spike_probability = 0.002;
      b.load_spike_scale_ms = 5.0;
      b.upstream.authority_rtt_mu = 2.5;
      b.upstream.authority_rtt_sigma = 0.5;
      b.upstream.servfail_probability = 0.0005;
      b.connect_drop_probability = 0.0015;
      b.connect_refuse_probability = 0.0002;
      b.tls_failure_probability = 0.0002;
      b.http_error_probability = 0.0005;
      b.warm_cache_probability = 0.97;
      break;
    case OperatorTier::Managed:
      b.processing_mu = -0.5;
      b.processing_sigma = 0.5;
      b.load_spike_probability = 0.01;
      b.load_spike_scale_ms = 10.0;
      b.upstream.authority_rtt_mu = 3.0;
      b.upstream.authority_rtt_sigma = 0.6;
      b.upstream.servfail_probability = 0.002;
      b.connect_drop_probability = 0.01;
      b.connect_refuse_probability = 0.002;
      b.tls_failure_probability = 0.002;
      b.http_error_probability = 0.002;
      b.warm_cache_probability = 0.9;
      break;
    case OperatorTier::Hobbyist:
      b.processing_mu = 0.3;
      b.processing_sigma = 0.8;
      b.load_spike_probability = 0.05;
      b.load_spike_scale_ms = 15.0;
      b.load_spike_alpha = 1.6;
      b.upstream.authority_rtt_mu = 3.4;
      b.upstream.authority_rtt_sigma = 0.7;
      b.upstream.servfail_probability = 0.006;
      b.connect_drop_probability = 0.035;
      b.connect_refuse_probability = 0.008;
      b.tls_failure_probability = 0.006;
      b.http_error_probability = 0.006;
      b.warm_cache_probability = 0.72;
      break;
  }
  return b;
}

geo::GeoDb build_geodb() {
  geo::GeoDb db;
  for (const ResolverSpec& s : paper_resolver_list()) {
    geo::GeoRecord rec;
    rec.city = s.city;
    rec.continent = s.continent;
    rec.point = s.location;
    db.add(s.hostname, rec);
  }
  return db;
}

// ---- fleet ------------------------------------------------------------------

ResolverFleet::ResolverFleet(netsim::Network& net, const std::vector<ResolverSpec>& specs)
    : net_(net), specs_(specs) {
  entries_.reserve(specs_.size());
  for (const ResolverSpec& spec : specs_) {
    Entry entry{spec.sites.size() > 1 ? Deployment::anycast(spec.sites)
                                      : Deployment::unicast(spec.sites.front()),
                {}};
    ServerBehavior behavior = behavior_for_tier(spec.tier);
    if (spec.processing_mu.has_value()) behavior.processing_mu = *spec.processing_mu;
    if (spec.warm_cache.has_value()) behavior.warm_cache_probability = *spec.warm_cache;
    if (spec.odoh_target) behavior.extra_response_ms = 25.0;

    for (const AnycastSite& site : entry.deployment.sites()) {
      auto server = std::make_unique<ResolverServer>(net_, spec.hostname, site, behavior);
      net_.set_icmp_responder(server->address(), spec.icmp_responder);
      entry.server_indices.push_back(servers_.size());
      servers_.push_back(std::move(server));
    }
    entries_.push_back(std::move(entry));
  }
}

std::optional<netsim::IpAddr> ResolverFleet::address_for(std::string_view hostname,
                                                         const geo::GeoPoint& from) const {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].hostname != hostname) continue;
    const Entry& entry = entries_[i];
    const AnycastSite& site = entry.deployment.site_for(from);
    // Find the server at that site.
    for (std::size_t idx : entry.server_indices) {
      if (servers_[idx]->site().city == site.city) return servers_[idx]->address();
    }
  }
  return std::nullopt;
}

std::vector<const ResolverServer*> ResolverFleet::sites_of(std::string_view hostname) const {
  std::vector<const ResolverServer*> out;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].hostname != hostname) continue;
    for (std::size_t idx : entries_[i].server_indices) out.push_back(servers_[idx].get());
  }
  return out;
}

void ResolverFleet::apply_quirks(netsim::IpAddr client, std::string_view vantage_id) {
  const geo::VantagePoint& vp = geo::vantage_by_id(vantage_id);
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const ResolverSpec& spec = specs_[i];
    netsim::PathQuirk combined;
    bool any = false;
    if (vp.is_home() && spec.home_extra_ms != 0.0) {
      combined.extra_base_ms += spec.home_extra_ms;
      any = true;
    }
    for (const VantageQuirkSpec& q : spec.quirks) {
      if (util::starts_with(vantage_id, q.vantage_prefix)) {
        combined.extra_base_ms += q.quirk.extra_base_ms;
        combined.extra_jitter_probability =
            std::max(combined.extra_jitter_probability, q.quirk.extra_jitter_probability);
        combined.extra_jitter_scale =
            std::max(combined.extra_jitter_scale, q.quirk.extra_jitter_scale);
        combined.extra_jitter_alpha = q.quirk.extra_jitter_alpha;
        combined.extra_loss += q.quirk.extra_loss;
        any = true;
      }
    }
    if (!any) continue;
    for (std::size_t idx : entries_[i].server_indices) {
      net_.set_quirk(client, servers_[idx]->address(), combined);
    }
  }
}

void ResolverFleet::set_offline(std::string_view hostname, bool offline) {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].hostname != hostname) continue;
    for (std::size_t idx : entries_[i].server_indices) {
      ServerBehavior behavior = servers_[idx]->behavior();
      behavior.offline = offline;
      servers_[idx]->set_behavior(behavior);
    }
  }
}

ServerQueryStats ResolverFleet::stats_of(std::string_view hostname) const {
  ServerQueryStats total;
  for (const ResolverServer* s : sites_of(hostname)) {
    const ServerQueryStats& st = s->stats();
    total.queries += st.queries;
    total.cache_hits += st.cache_hits;
    total.cache_misses += st.cache_misses;
    total.servfails += st.servfails;
    total.formerrs += st.formerrs;
    total.http_errors += st.http_errors;
    total.doh_requests += st.doh_requests;
    total.dot_requests += st.dot_requests;
    total.do53_requests += st.do53_requests;
  }
  return total;
}

}  // namespace ednsm::resolver
