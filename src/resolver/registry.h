// The resolver registry: every public DoH resolver from the paper's
// Appendix A.2, with the deployment attributes that drive the measured
// behaviour, plus ResolverFleet, which instantiates the whole population
// into a simulated network.
//
// Attribute sources and modeling rationale:
//  - hostname list: Appendix A.2 verbatim (75 hostnames; the paper's §3.2
//    says "91 resolvers" — the appendix enumerates 75, and we follow the
//    appendix since those are the named, reproducible targets).
//  - continent/city: the paper's own figure groupings (Figures 1-4 place
//    each resolver in North America / Europe / Asia) plus public knowledge
//    of each operator's location for the city-level placement.
//  - mainstream flag: Table 1 (Cloudflare, Google, Quad9, NextDNS,
//    CleanBrowsing, OpenDNS; the last two do not appear in A.2).
//  - footprint: mainstream resolvers are globally anycast; a few managed
//    operators run regional anycast; Hurricane Electric rides its ISP
//    backbone; everything else is a single unicast site — the paper's core
//    explanation for the response-time gap.
//  - tier: operational quality (processing latency, failure rates).
//  - quirks: the idiosyncratic per-vantage behaviours called out in §4
//    (doh.la.ahadns.net, dns.twnic.tw, antivirus.bebasid.com).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "geo/coords.h"
#include "geo/geodb.h"
#include "netsim/network.h"
#include "resolver/anycast.h"
#include "resolver/server.h"

namespace ednsm::resolver {

enum class Footprint {
  GlobalAnycast,    // dozens of sites worldwide (Cloudflare/Google/Quad9 class)
  RegionalAnycast,  // a handful of sites (AdGuard/Mullvad/ControlD class)
  IspBackbone,      // Hurricane Electric: dense NA/EU, light Asia
  Unicast,          // one site
};

enum class OperatorTier {
  Hyperscale,  // sub-ms processing, negligible failure rates
  Managed,     // professional but smaller: ~0.5 ms processing, rare hiccups
  Hobbyist,    // single-operator deployments: slower, spiky, less available
};

// Extra variability this resolver exhibits from a class of vantage points
// (matched by vantage-id prefix, e.g. "home" or "ec2-frankfurt").
struct VantageQuirkSpec {
  std::string vantage_prefix;
  netsim::PathQuirk quirk;
};

struct ResolverSpec {
  std::string hostname;
  geo::Continent continent = geo::Continent::Unknown;  // Unknown = no geolocation
  std::string city;  // primary-site city ("" for Unknown)
  geo::GeoPoint location;
  bool mainstream = false;
  Footprint footprint = Footprint::Unicast;
  OperatorTier tier = OperatorTier::Hobbyist;
  bool icmp_responder = true;
  bool odoh_target = false;  // Oblivious DoH target: proxy hop on the DNS path
  // Deployment sites; filled by the registry (single entry for Unicast).
  std::vector<AnycastSite> sites;
  // Per-query processing override (ln-ms); nullopt = the tier default.
  std::optional<double> processing_mu;
  // Warm-cache override (popularity of this resolver); nullopt = tier default.
  std::optional<double> warm_cache;
  // Extra one-way path milliseconds from residential vantages: anycast CDNs
  // are reached off-net from home ISPs (+), Hurricane Electric *is* the
  // upstream transit for many access ISPs (0). Calibrates the paper's
  // home-vantage inversions.
  double home_extra_ms = 0.0;
  std::vector<VantageQuirkSpec> quirks;
};

// The full Appendix A.2 population.
[[nodiscard]] const std::vector<ResolverSpec>& paper_resolver_list();

// Lookup by hostname (nullptr if absent).
[[nodiscard]] const ResolverSpec* find_resolver(std::string_view hostname);

// Hostnames of all mainstream (Table 1) resolvers present in the registry.
[[nodiscard]] std::vector<std::string> mainstream_hostnames();

// Baseline ServerBehavior for a tier (the fleet tweaks it per resolver).
[[nodiscard]] ServerBehavior behavior_for_tier(OperatorTier tier);

// GeoDb mirroring what a GeoLite2 lookup of each resolver returns.
[[nodiscard]] geo::GeoDb build_geodb();

// ---- fleet ------------------------------------------------------------------

// Instantiates one ResolverServer per deployment site of every resolver in
// `specs`, and answers "which address serves hostname X for a client at Y"
// the way BGP anycast would (nearest site).
class ResolverFleet {
 public:
  ResolverFleet(netsim::Network& net, const std::vector<ResolverSpec>& specs);

  // Address of the site that serves `hostname` for a client at `from`.
  [[nodiscard]] std::optional<netsim::IpAddr> address_for(std::string_view hostname,
                                                          const geo::GeoPoint& from) const;

  // All sites of one resolver (empty if unknown hostname).
  [[nodiscard]] std::vector<const ResolverServer*> sites_of(std::string_view hostname) const;

  // Apply a resolver's vantage quirks for a client host (call once per
  // vantage after attaching it, before traffic flows).
  void apply_quirks(netsim::IpAddr client, std::string_view vantage_id);

  [[nodiscard]] const std::vector<ResolverSpec>& specs() const noexcept { return specs_; }
  [[nodiscard]] std::size_t total_sites() const noexcept { return servers_.size(); }

  // Aggregate query stats across every site of one resolver.
  [[nodiscard]] ServerQueryStats stats_of(std::string_view hostname) const;

  // Take every site of `hostname` offline (or back online) — longitudinal
  // outage modeling. No-op for unknown hostnames.
  void set_offline(std::string_view hostname, bool offline);

 private:
  netsim::Network& net_;
  std::vector<ResolverSpec> specs_;
  std::vector<std::unique_ptr<ResolverServer>> servers_;
  // parallel to specs_: deployment + indices into servers_.
  struct Entry {
    Deployment deployment;
    std::vector<std::size_t> server_indices;
  };
  std::vector<Entry> entries_;
};

}  // namespace ednsm::resolver
