#include "resolver/server.h"

#include "dns/wire.h"
#include "obs/trace.h"
#include "util/bytes.h"
#include "util/strings.h"

namespace ednsm::resolver {

using netsim::Endpoint;

util::Bytes dot_frame(std::span<const std::uint8_t> dns_message) {
  dns::WireWriter w;
  w.u16(static_cast<std::uint16_t>(dns_message.size()));
  w.bytes(dns_message);
  return std::move(w).take();
}

Result<std::vector<util::Bytes>> dot_unframe(std::span<const std::uint8_t> data) {
  std::vector<util::Bytes> out;
  dns::WireReader r(data);
  while (!r.at_end()) {
    auto len = r.u16();
    if (!len) return Err{std::string("dot: truncated length prefix")};
    auto msg = r.bytes(len.value());
    if (!msg) return Err{std::string("dot: truncated message")};
    out.push_back(std::move(msg).value());
  }
  return out;
}

ResolverServer::ResolverServer(netsim::Network& net, std::string hostname, AnycastSite site,
                               ServerBehavior behavior)
    : net_(net),
      hostname_(std::move(hostname)),
      site_(std::move(site)),
      behavior_(std::move(behavior)),
      addr_(net.attach(hostname_ + "@" + site_.city, site_.location,
                       netsim::AccessLinkModel::datacenter())),
      rng_(net.rng().fork(util::fnv1a(hostname_ + "/" + site_.city))) {
  if (behavior_.supports_do53) setup_do53();
  if (behavior_.supports_dot) setup_dot();
  if (behavior_.supports_doh) setup_doh();
  if (behavior_.supports_doq) setup_doq();
}

ResolverServer::~ResolverServer() = default;

transport::TlsServerConfig ResolverServer::tls_config() const {
  transport::TlsServerConfig cfg;
  cfg.certificate_names = {hostname_};
  cfg.handshake_failure_probability = behavior_.tls_failure_probability;
  return cfg;
}

void ResolverServer::set_behavior(const ServerBehavior& behavior) {
  behavior_ = behavior;
  const double drop =
      behavior_.offline ? 1.0 : behavior_.connect_drop_probability;
  if (dot_listener_) {
    dot_listener_->set_refuse_probability(behavior_.connect_refuse_probability);
    dot_listener_->set_drop_syn_probability(drop);
  }
  if (doh_listener_) {
    doh_listener_->set_refuse_probability(behavior_.connect_refuse_probability);
    doh_listener_->set_drop_syn_probability(drop);
  }
  if (doq_listener_) {
    doq_listener_->set_refuse_probability(behavior_.connect_refuse_probability);
    doq_listener_->set_drop_probability(drop);
  }
}

// ---- query engine -----------------------------------------------------------

void ResolverServer::handle_query(util::Bytes wire,
                                  std::function<void(util::Bytes)> respond) {
  if (behavior_.offline) return;  // outage: silence on every protocol
  ++stats_.queries;
  auto query_r = dns::Message::decode(wire);
  if (!query_r) {
    ++stats_.formerrs;
    // FORMERR with a best-effort id echo (first two bytes if present).
    dns::Message err;
    err.header.qr = true;
    err.header.rcode = dns::Rcode::FormErr;
    if (wire.size() >= 2) {
      err.header.id = static_cast<std::uint16_t>((wire[0] << 8) | wire[1]);
    }
    respond(err.encode());
    return;
  }
  const dns::Message query = std::move(query_r).value();
  if (query.questions.empty()) {
    ++stats_.formerrs;
    respond(dns::make_response(query, dns::Rcode::FormErr, {}).encode());
    return;
  }

  const dns::Question& q = query.questions.front();
  const CacheKey key{q.qname, q.qtype, q.qclass};
  const netsim::SimTime now = net_.queue().now();

  double delay_ms = behavior_.extra_response_ms +
                    rng_.lognormal(behavior_.processing_mu, behavior_.processing_sigma);
  if (behavior_.load_spike_probability > 0.0 && rng_.bernoulli(behavior_.load_spike_probability)) {
    delay_ms += rng_.pareto(behavior_.load_spike_scale_ms, behavior_.load_spike_alpha);
  }

  dns::Rcode rcode = dns::Rcode::NoError;
  std::vector<dns::ResourceRecord> answers;

  if (auto hit = cache_.lookup(key, now); hit.has_value()) {
    ++stats_.cache_hits;
    OBS_EVENT(net_.queue(), "resolver", "cache-hit");
    rcode = hit->rcode;
    answers = std::move(hit->answers);
  } else if (rng_.bernoulli(behavior_.warm_cache_probability)) {
    // Another client of this resolver kept the entry warm; to our probe it
    // is indistinguishable from a local hit.
    ++stats_.warm_hits;
    OBS_EVENT(net_.queue(), "resolver", "cache-warm-hit");
    answers = synthesize_answers(q.qname, q.qtype);
    cache_.insert(key, dns::Rcode::NoError, answers, now);
  } else {
    ++stats_.cache_misses;
    OBS_EVENT(net_.queue(), "resolver", "cache-miss");
    if (sample_servfail(behavior_.upstream, rng_)) {
      ++stats_.servfails;
      OBS_EVENT(net_.queue(), "resolver", "upstream-servfail");
      rcode = dns::Rcode::ServFail;
      delay_ms += behavior_.upstream.servfail_stall_ms;
    } else {
      delay_ms += behavior_.upstream.sample_latency_ms(rng_);
      answers = synthesize_answers(q.qname, q.qtype);
      cache_.insert(key, dns::Rcode::NoError, answers, now);
    }
  }

  dns::Message response = dns::make_response(query, rcode, std::move(answers));
  OBS_COMPLETE(net_.queue(), "resolver", "resolve", now, netsim::from_ms(delay_ms));
  net_.queue().schedule(netsim::from_ms(delay_ms),
                        [respond = std::move(respond), wire_out = response.encode()]() {
                          respond(wire_out);
                        });
}

// ---- Do53 -------------------------------------------------------------------

void ResolverServer::setup_do53() {
  udp_ = std::make_unique<transport::UdpSocket>(net_, Endpoint{addr_, netsim::kPortDns});
  udp_->on_receive([this](const netsim::Datagram& d) {
    ++stats_.do53_requests;
    const Endpoint peer = d.src;
    handle_query(d.payload, [this, peer](util::Bytes response) {
      udp_->send_to(peer, std::move(response));
    });
  });
}

// ---- DoT --------------------------------------------------------------------

void ResolverServer::setup_dot() {
  dot_listener_ =
      std::make_unique<transport::TcpListener>(net_, Endpoint{addr_, netsim::kPortDot});
  dot_listener_->set_refuse_probability(behavior_.connect_refuse_probability);
  dot_listener_->set_drop_syn_probability(behavior_.connect_drop_probability);

  dot_listener_->on_accept([this](transport::TcpServerConn& conn) {
    auto state = std::make_shared<DotConnState>(net_.queue(), rng_, conn, tls_config());
    dot_conns_[&conn] = state;
    std::weak_ptr<DotConnState> weak = state;

    state->tls.on_data([this, weak](util::Bytes data) {
      auto messages = dot_unframe(data);
      if (!messages) return;  // malformed framing: drop, client will time out
      for (util::Bytes& msg : messages.value()) {
        ++stats_.dot_requests;
        handle_query(std::move(msg), [weak](util::Bytes response) {
          if (auto st = weak.lock()) st->tls.send(dot_frame(response));
        });
      }
    });
  });
  dot_listener_->on_close(
      [this](transport::TcpServerConn& conn) { dot_conns_.erase(&conn); });
}

// ---- DoQ --------------------------------------------------------------------

void ResolverServer::setup_doq() {
  transport::QuicServerConfig cfg;
  cfg.certificate_names = {hostname_};
  cfg.handshake_failure_probability = behavior_.tls_failure_probability;
  doq_listener_ = std::make_unique<transport::QuicListener>(
      net_, Endpoint{addr_, netsim::kPortDoq}, cfg);
  doq_listener_->set_refuse_probability(behavior_.connect_refuse_probability);
  doq_listener_->set_drop_probability(behavior_.connect_drop_probability);

  doq_listener_->on_accept([this](const std::shared_ptr<transport::QuicServerConn>& conn) {
    std::weak_ptr<transport::QuicServerConn> weak = conn;
    conn->on_stream([this, weak](std::uint64_t stream_id, util::Bytes data) {
      // RFC 9250 §4.2: each query is one 2-byte-length-prefixed message on
      // its own stream; the response goes back on the same stream.
      auto messages = dot_unframe(data);
      if (!messages) return;
      for (util::Bytes& msg : messages.value()) {
        ++stats_.doq_requests;
        handle_query(std::move(msg), [weak, stream_id](util::Bytes response) {
          if (auto live = weak.lock()) live->send_stream(stream_id, dot_frame(response));
        });
      }
    });
  });
}

// ---- DoH --------------------------------------------------------------------

void ResolverServer::setup_doh() {
  doh_listener_ =
      std::make_unique<transport::TcpListener>(net_, Endpoint{addr_, netsim::kPortHttps});
  doh_listener_->set_refuse_probability(behavior_.connect_refuse_probability);
  doh_listener_->set_drop_syn_probability(behavior_.connect_drop_probability);

  doh_listener_->on_accept([this](transport::TcpServerConn& conn) {
    auto state = std::make_shared<DohConnState>(net_.queue(), rng_, conn, tls_config());
    transport::TcpServerConn* conn_ptr = &conn;
    doh_conns_[conn_ptr] = state;
    std::weak_ptr<DohConnState> weak = state;

    state->tls.on_data([this, weak, conn_ptr](util::Bytes data) {
      if (auto locked = weak.lock()) handle_doh_payload(locked, *conn_ptr, std::move(data));
    });
  });
  doh_listener_->on_close(
      [this](transport::TcpServerConn& conn) { doh_conns_.erase(&conn); });
}

void ResolverServer::handle_doh_payload(const std::shared_ptr<DohConnState>& st,
                                        transport::TcpServerConn& conn, util::Bytes data) {
  (void)conn;
  // Protocol sniff on the first decrypted record: HTTP/2 begins with the
  // fixed preface, HTTP/1.1 with a method token.
  if (!st->decided) {
    st->decided = true;
    const auto preface = http::client_preface();
    st->saw_h2_preface =
        data.size() >= preface.size() && std::equal(preface.begin(), preface.end(), data.begin());
  }

  auto answer = [this, st](std::uint32_t stream_id, const http::Request& req, bool via_h2) {
    ++stats_.doh_requests;
    // Inject HTTP-level failures before looking at the query.
    if (behavior_.http_error_probability > 0.0 &&
        rng_.bernoulli(behavior_.http_error_probability)) {
      ++stats_.http_errors;
      http::Response err;
      err.status = 503;
      st->tls.send(via_h2 ? st->h2.serialize_response(stream_id, err) : err.encode());
      return;
    }

    if (req.path.substr(0, behavior_.doh_path.size()) != behavior_.doh_path) {
      http::Response nf;
      nf.status = 404;
      st->tls.send(via_h2 ? st->h2.serialize_response(stream_id, nf) : nf.encode());
      return;
    }

    auto dns_msg = http::extract_dns_message(req);
    if (!dns_msg) {
      http::Response bad;
      bad.status = 400;
      bad.body = util::to_bytes(dns_msg.error());
      st->tls.send(via_h2 ? st->h2.serialize_response(stream_id, bad) : bad.encode());
      return;
    }

    std::weak_ptr<DohConnState> weak = st;
    handle_query(std::move(dns_msg).value(),
                 [weak, stream_id, via_h2](util::Bytes response_wire) {
                   auto stp = weak.lock();
                   if (!stp) return;  // client gave up; connection is gone
                   // Use the answer's min TTL for cache-control, per RFC 8484.
                   std::uint32_t min_ttl = 0;
                   if (auto m = dns::Message::decode(response_wire);
                       m && !m.value().answers.empty()) {
                     min_ttl = m.value().answers.front().ttl;
                     for (const auto& rr : m.value().answers) {
                       min_ttl = std::min(min_ttl, rr.ttl);
                     }
                   }
                   http::Response resp =
                       http::make_doh_response(std::move(response_wire), min_ttl);
                   stp->tls.send(via_h2 ? stp->h2.serialize_response(stream_id, resp)
                                        : resp.encode());
                 });
  };

  if (st->saw_h2_preface) {
    st->h2.feed(data, [&](std::uint32_t stream_id, Result<http::Request> req) {
      if (!req) return;  // malformed run: drop
      answer(stream_id, req.value(), /*via_h2=*/true);
    });
  } else {
    auto req = http::Request::decode(data);
    if (!req) {
      http::Response bad;
      bad.status = 400;
      st->tls.send(bad.encode());
      return;
    }
    answer(0, req.value(), /*via_h2=*/false);
  }
}

}  // namespace ednsm::resolver
