// ResolverServer: one simulated encrypted-DNS resolver site.
//
// Each site is a netsim host serving three protocol endpoints:
//   UDP 53   Do53 (plain DNS)
//   TCP 853  DoT  (RFC 7858: 2-byte length-prefixed DNS over TLS)
//   TCP 443  DoH  (RFC 8484: HTTP/1.1 or HTTP/2 over TLS, GET and POST)
// All three feed one query engine: decode -> cache lookup -> (hit: processing
// delay | miss: recursion model, answer synthesis, cache fill) -> encode.
//
// Failure injection knobs model the error taxonomy the paper observed —
// "the most common errors ... were related to a failure to establish a
// connection" — as well as TLS failures, HTTP 5xx, and SERVFAIL.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "dns/message.h"
#include "http/doh_media.h"
#include "http/h2.h"
#include "netsim/network.h"
#include "resolver/anycast.h"
#include "resolver/cache.h"
#include "resolver/upstream.h"
#include "transport/quic.h"
#include "transport/tcp.h"
#include "transport/tls.h"
#include "transport/udp.h"

namespace ednsm::resolver {

struct ServerBehavior {
  // Per-query processing time on a cache hit (lognormal, ln-ms). Mainstream
  // deployments run hot caches on fast hardware; small resolvers are slower
  // and more variable.
  double processing_mu = -1.0;   // e^-1 ~ 0.37 ms median
  double processing_sigma = 0.4;
  // Occasional load spikes (GC pauses, rate limiting, oversubscribed VMs).
  double load_spike_probability = 0.0;
  double load_spike_scale_ms = 10.0;
  double load_spike_alpha = 1.8;

  UpstreamModel upstream;

  // Probability that a *local-cache miss* for a popular domain is still
  // answerable without full recursion because other users of this resolver
  // keep the entry warm (we only simulate our own probes; real resolvers
  // serve many clients). Scales with user-base size: hyperscalers nearly
  // always have google.com in cache, one-operator resolvers often don't.
  double warm_cache_probability = 0.8;

  // Deterministic additive response delay. Used for Oblivious DoH targets:
  // the ODoH relay hop sits on the DNS path but not on the ICMP path, so it
  // belongs to the server response, not the network path.
  double extra_response_ms = 0.0;

  // Failure injection.
  double connect_drop_probability = 0.0;  // SYN silently dropped
  double connect_refuse_probability = 0.0;  // RST
  double tls_failure_probability = 0.0;
  double http_error_probability = 0.0;    // DoH responds 5xx

  bool supports_do53 = true;
  bool supports_dot = true;
  bool supports_doh = true;
  bool supports_doq = true;  // RFC 9250 (simulated deployment: everywhere)

  // Hard outage: listeners drop every connection attempt and the query
  // engine goes silent (campaigns observe pure connect-timeouts). Toggled
  // mid-simulation through set_behavior for longitudinal studies.
  bool offline = false;

  std::string doh_path = "/dns-query";
};

struct ServerQueryStats {
  std::uint64_t queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t warm_hits = 0;  // miss locally, warm in the modeled user base
  std::uint64_t cache_misses = 0;
  std::uint64_t servfails = 0;
  std::uint64_t formerrs = 0;
  std::uint64_t http_errors = 0;
  std::uint64_t doh_requests = 0;
  std::uint64_t dot_requests = 0;
  std::uint64_t do53_requests = 0;
  std::uint64_t doq_requests = 0;
};

class ResolverServer {
 public:
  // Attaches a host at `site.location` to `net` and binds all endpoints.
  // `hostname` becomes the TLS certificate name.
  ResolverServer(netsim::Network& net, std::string hostname, AnycastSite site,
                 ServerBehavior behavior);
  ~ResolverServer();

  ResolverServer(const ResolverServer&) = delete;
  ResolverServer& operator=(const ResolverServer&) = delete;

  [[nodiscard]] netsim::IpAddr address() const noexcept { return addr_; }
  [[nodiscard]] const std::string& hostname() const noexcept { return hostname_; }
  [[nodiscard]] const AnycastSite& site() const noexcept { return site_; }
  [[nodiscard]] const ServerQueryStats& stats() const noexcept { return stats_; }
  [[nodiscard]] Cache& cache() noexcept { return cache_; }
  [[nodiscard]] const ServerBehavior& behavior() const noexcept { return behavior_; }

  // Adjust failure injection mid-simulation (outage modeling).
  void set_behavior(const ServerBehavior& behavior);

 private:
  struct DohConnState {
    transport::TlsServerSession tls;
    http::H2ServerSession h2;
    bool saw_h2_preface = false;
    bool decided = false;  // protocol sniffed on first record
    DohConnState(netsim::EventQueue& q, netsim::Rng& rng, transport::TcpServerConn& conn,
                 transport::TlsServerConfig cfg)
        : tls(q, rng, conn, std::move(cfg)) {}
  };
  struct DotConnState {
    transport::TlsServerSession tls;
    DotConnState(netsim::EventQueue& q, netsim::Rng& rng, transport::TcpServerConn& conn,
                 transport::TlsServerConfig cfg)
        : tls(q, rng, conn, std::move(cfg)) {}
  };

  // The query engine: parse wire, consult cache/upstream, schedule `respond`
  // with the encoded answer after the modeled delay.
  void handle_query(util::Bytes wire, std::function<void(util::Bytes)> respond);

  void setup_do53();
  void setup_dot();
  void setup_doh();
  void setup_doq();
  void handle_doh_payload(const std::shared_ptr<DohConnState>& st,
                          transport::TcpServerConn& conn, util::Bytes data);

  [[nodiscard]] transport::TlsServerConfig tls_config() const;

  netsim::Network& net_;
  std::string hostname_;
  AnycastSite site_;
  ServerBehavior behavior_;
  netsim::IpAddr addr_;
  netsim::Rng rng_;

  Cache cache_;
  ServerQueryStats stats_;

  std::unique_ptr<transport::UdpSocket> udp_;
  std::unique_ptr<transport::TcpListener> dot_listener_;
  std::unique_ptr<transport::TcpListener> doh_listener_;
  std::unique_ptr<transport::QuicListener> doq_listener_;
  // shared_ptr so deferred responses can hold weak references: a query answer
  // scheduled behind a recursion stall must not touch a connection the client
  // already tore down. Hashed (never iterated): an ordered pointer key would
  // order entries by allocation address, which differs across runs.
  std::unordered_map<const transport::TcpServerConn*, std::shared_ptr<DotConnState>> dot_conns_;
  std::unordered_map<const transport::TcpServerConn*, std::shared_ptr<DohConnState>> doh_conns_;
};

// DoT framing helpers (RFC 7858 §3.3): 2-byte length prefix per message.
[[nodiscard]] util::Bytes dot_frame(std::span<const std::uint8_t> dns_message);
[[nodiscard]] Result<std::vector<util::Bytes>> dot_unframe(std::span<const std::uint8_t> data);

}  // namespace ednsm::resolver
