#include "resolver/upstream.h"

#include "util/bytes.h"

namespace ednsm::resolver {

double UpstreamModel::sample_latency_ms(netsim::Rng& rng) const {
  const int span = depth_max - depth_min + 1;
  const int depth =
      depth_min + static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(span)));
  double total = 0.0;
  for (int i = 0; i < depth; ++i) {
    total += rng.lognormal(authority_rtt_mu, authority_rtt_sigma);
  }
  return total;
}

bool sample_servfail(const UpstreamModel& model, netsim::Rng& rng) {
  return rng.bernoulli(model.servfail_probability);
}

std::vector<dns::ResourceRecord> synthesize_answers(const dns::Name& qname,
                                                    dns::RecordType qtype) {
  std::vector<dns::ResourceRecord> answers;
  const std::uint64_t h = util::fnv1a(qname.to_string());
  const std::uint32_t ttl = 300 + static_cast<std::uint32_t>(h % 3600);

  if (qtype == dns::RecordType::A || qtype == dns::RecordType::ANY) {
    // Popular domains resolve to a few addresses; derive 1-3 from the hash.
    const int count = 1 + static_cast<int>(h % 3);
    for (int i = 0; i < count; ++i) {
      dns::ResourceRecord rr;
      rr.name = qname;
      rr.type = dns::RecordType::A;
      rr.ttl = ttl;
      const std::uint64_t mix = h ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1));
      dns::ARecord a;
      a.address = {static_cast<std::uint8_t>(93 + (mix % 80)),
                   static_cast<std::uint8_t>((mix >> 8) & 0xff),
                   static_cast<std::uint8_t>((mix >> 16) & 0xff),
                   static_cast<std::uint8_t>(1 + ((mix >> 24) % 250))};
      rr.rdata = a;
      answers.push_back(std::move(rr));
    }
  }
  if (qtype == dns::RecordType::AAAA || qtype == dns::RecordType::ANY) {
    dns::ResourceRecord rr;
    rr.name = qname;
    rr.type = dns::RecordType::AAAA;
    rr.ttl = ttl;
    dns::AaaaRecord aaaa;
    aaaa.address[0] = 0x26;
    aaaa.address[1] = 0x06;
    for (std::size_t i = 2; i < 16; ++i) {
      aaaa.address[i] = static_cast<std::uint8_t>((h >> ((i % 8) * 8)) & 0xff);
    }
    rr.rdata = aaaa;
    answers.push_back(std::move(rr));
  }
  if (qtype == dns::RecordType::TXT) {
    dns::ResourceRecord rr;
    rr.name = qname;
    rr.type = dns::RecordType::TXT;
    rr.ttl = ttl;
    rr.rdata = dns::TxtRecord{{"v=sim1 h=" + std::to_string(h % 100000)}};
    answers.push_back(std::move(rr));
  }
  // Other qtypes: empty answer (NODATA), which the caller caches negatively.
  return answers;
}

}  // namespace ednsm::resolver
