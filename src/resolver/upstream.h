// Upstream recursion model: what a recursive resolver does on a cache miss.
//
// A real recursive resolver walks the delegation chain (root -> TLD ->
// authoritative). We model that walk as (a) a latency sample — a few
// authority round trips whose cost depends on the resolver's location
// relative to the authoritative infrastructure — and (b) a synthetic answer
// generator that produces deterministic, stable A/AAAA records per domain so
// responses round-trip through the full wire codec.
//
// The paper's measurements are intentionally cache-hit heavy ("most people
// query sites that are already in cache"), so this path is exercised mostly
// by the first query per (resolver, domain) and by TTL expiries during the
// multi-week campaign.
#pragma once

#include <vector>

#include "dns/message.h"
#include "netsim/rng.h"
#include "netsim/time.h"

namespace ednsm::resolver {

struct UpstreamModel {
  // Authority round trips per miss: 1 (everything warm) .. depth_max.
  int depth_min = 1;
  int depth_max = 3;
  // Per-round-trip latency: lognormal, roughly 10-60 ms depending on how
  // close the resolver is to major authoritative deployments.
  double authority_rtt_mu = 3.0;    // ln-ms; e^3 ~ 20 ms median
  double authority_rtt_sigma = 0.6;
  // Probability the whole recursion fails (lame delegation, timeout) and the
  // resolver answers SERVFAIL after a long stall.
  double servfail_probability = 0.002;
  double servfail_stall_ms = 1500.0;

  // Sample the recursion latency for one miss.
  [[nodiscard]] double sample_latency_ms(netsim::Rng& rng) const;
};

// Deterministic synthetic answers: the same (qname, qtype) always yields the
// same records, independent of resolver, so cross-resolver comparisons are
// apples-to-apples. TTLs are domain-stable in [300, 3900) seconds.
[[nodiscard]] std::vector<dns::ResourceRecord> synthesize_answers(const dns::Name& qname,
                                                                  dns::RecordType qtype);

// True if the recursion for this sample fails (SERVFAIL path).
[[nodiscard]] bool sample_servfail(const UpstreamModel& model, netsim::Rng& rng);

}  // namespace ednsm::resolver
