#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace ednsm::stats {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return kNaN;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return kNaN;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(const std::vector<double>& values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });

  std::vector<double> out(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Tie group [i, j]: average 1-based rank.
    const double rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) out[order[k]] = rank;
    i = j + 1;
  }
  return out;
}

double spearman(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return kNaN;
  const std::vector<double> rx = ranks(std::vector<double>(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(n)));
  const std::vector<double> ry = ranks(std::vector<double>(y.begin(), y.begin() + static_cast<std::ptrdiff_t>(n)));
  return pearson(rx, ry);
}

LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y) {
  LinearFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  fit.n = n;
  if (n < 2) return fit;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace ednsm::stats
