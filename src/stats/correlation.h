// Correlation measures for the paper's §3.1 analysis: "each time we issued a
// set of DoH queries to a resolver, we also issued a ICMP ping message ...
// This enabled us to explore whether there was a consistent relationship
// between high query response times and network latency."
#pragma once

#include <cstddef>
#include <vector>

namespace ednsm::stats {

// Pearson product-moment correlation of paired samples. NaN when fewer than
// two pairs or when either series is constant.
[[nodiscard]] double pearson(const std::vector<double>& x, const std::vector<double>& y);

// Spearman rank correlation (Pearson over ranks, average ranks for ties) —
// the right tool when the relationship is monotone but not linear, as with
// RTT-dominated response times under heavy-tailed jitter.
[[nodiscard]] double spearman(const std::vector<double>& x, const std::vector<double>& y);

// Ordinary-least-squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r_squared = 0;
  std::size_t n = 0;
};

[[nodiscard]] LinearFit linear_fit(const std::vector<double>& x,
                                   const std::vector<double>& y);

// Average ranks (1-based) with ties sharing the mean rank.
[[nodiscard]] std::vector<double> ranks(const std::vector<double>& values);

}  // namespace ednsm::stats
