#include "stats/group.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ednsm::stats {

void GroupedSamples::add(const std::string& key, double value) {
  groups_[key].push_back(value);
  ++total_;
}

const std::vector<double>* GroupedSamples::samples(const std::string& key) const {
  const auto it = groups_.find(key);
  return it == groups_.end() ? nullptr : &it->second;
}

std::vector<std::string> GroupedSamples::keys() const {
  std::vector<std::string> out;
  out.reserve(groups_.size());
  for (const auto& [k, v] : groups_) out.push_back(k);
  return out;
}

double GroupedSamples::median_of(const std::string& key) const {
  const auto* s = samples(key);
  if (s == nullptr) return std::numeric_limits<double>::quiet_NaN();
  return median(*s);
}

BoxSummary GroupedSamples::summary_of(const std::string& key) const {
  const auto* s = samples(key);
  if (s == nullptr) return {};
  return box_summary(*s);
}

std::vector<std::string> GroupedSamples::keys_by_median() const {
  std::vector<std::pair<double, std::string>> med;
  med.reserve(groups_.size());
  for (const auto& [k, v] : groups_) med.emplace_back(median(v), k);
  std::sort(med.begin(), med.end(), [](const auto& a, const auto& b) {
    if (std::isnan(a.first)) return false;
    if (std::isnan(b.first)) return true;
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  });
  std::vector<std::string> out;
  out.reserve(med.size());
  for (auto& [m, k] : med) out.push_back(std::move(k));
  return out;
}

}  // namespace ednsm::stats
