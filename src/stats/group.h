// Grouped sample collection: accumulate doubles under string keys, then
// summarize per group. The report layer groups measurement records by
// (resolver, vantage, metric) with this.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "stats/quantile.h"

namespace ednsm::stats {

class GroupedSamples {
 public:
  void add(const std::string& key, double value);

  [[nodiscard]] const std::vector<double>* samples(const std::string& key) const;
  [[nodiscard]] std::vector<std::string> keys() const;  // sorted
  [[nodiscard]] std::size_t group_count() const noexcept { return groups_.size(); }
  [[nodiscard]] std::size_t total_samples() const noexcept { return total_; }

  [[nodiscard]] double median_of(const std::string& key) const;  // NaN if absent
  [[nodiscard]] BoxSummary summary_of(const std::string& key) const;

  // Keys ordered by ascending median (the paper's figures sort resolvers by
  // median response time).
  [[nodiscard]] std::vector<std::string> keys_by_median() const;

 private:
  std::map<std::string, std::vector<double>> groups_;
  std::size_t total_ = 0;
};

}  // namespace ednsm::stats
