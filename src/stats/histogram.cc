#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ednsm::stats {

Histogram::Histogram(double bin_width_ms, std::size_t bins)
    : width_(bin_width_ms), counts_(bins + 1, 0) {}

void Histogram::add(double value_ms) noexcept {
  ++total_;
  if (value_ms < 0) value_ms = 0;
  const auto idx = static_cast<std::size_t>(value_ms / width_);
  if (idx >= counts_.size() - 1) {
    ++counts_.back();
  } else {
    ++counts_[idx];
  }
}

bool Histogram::add_count(std::size_t bin, std::uint64_t count) noexcept {
  if (bin >= counts_.size()) return false;
  counts_[bin] += count;
  total_ += count;
  return true;
}

bool Histogram::merge(const Histogram& other) noexcept {
  if (width_ != other.width_ || counts_.size() != other.counts_.size()) return false;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  return true;
}

double Histogram::approx_quantile(double q) const noexcept {
  if (total_ == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      if (i == counts_.size() - 1) return static_cast<double>(i) * width_;  // overflow bin
      const double frac =
          counts_[i] == 0 ? 0.0 : (target - cumulative) / static_cast<double>(counts_[i]);
      return (static_cast<double>(i) + frac) * width_;
    }
    cumulative = next;
  }
  return static_cast<double>(counts_.size() - 1) * width_;
}

}  // namespace ednsm::stats
