// Fixed-bin latency histogram with log-ish resolution, for distribution
// summaries without retaining every sample.
#pragma once

#include <cstdint>
#include <vector>

namespace ednsm::stats {

class Histogram {
 public:
  // Bins: [0, width), [width, 2*width), ... up to `bins`*width, plus an
  // overflow bin.
  Histogram(double bin_width_ms, std::size_t bins);

  void add(double value_ms) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return counts_.back(); }
  [[nodiscard]] const std::vector<std::uint64_t>& bins() const noexcept { return counts_; }
  [[nodiscard]] double bin_width() const noexcept { return width_; }

  // Approximate quantile by bin interpolation (NaN when empty).
  [[nodiscard]] double approx_quantile(double q) const noexcept;

  // Element-wise combination of another histogram with the same bin layout
  // (width and count); histograms shaped differently are rejected (no-op
  // returning false) rather than silently mis-binned.
  bool merge(const Histogram& other) noexcept;

  // Bulk-load `count` samples directly into bin `bin` (the last bin is the
  // overflow bin) — the codec-side inverse of reading bins(). Returns false
  // (no-op) when `bin` is out of range.
  bool add_count(std::size_t bin, std::uint64_t count) noexcept;

 private:
  double width_;
  std::vector<std::uint64_t> counts_;  // last element = overflow
  std::uint64_t total_ = 0;
};

}  // namespace ednsm::stats
