#include "stats/quantile.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ednsm::stats {

namespace {
double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (sorted.size() == 1) return sorted.front();
  q = std::clamp(q, 0.0, 1.0);
  const double h = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(h));
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}
}  // namespace

double quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return sorted_quantile(values, q);
}

double median(std::vector<double> values) { return quantile(std::move(values), 0.5); }

BoxSummary box_summary(std::vector<double> values) {
  BoxSummary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  s.q1 = sorted_quantile(values, 0.25);
  s.median = sorted_quantile(values, 0.5);
  s.q3 = sorted_quantile(values, 0.75);

  const double fence_low = s.q1 - 1.5 * s.iqr();
  const double fence_high = s.q3 + 1.5 * s.iqr();
  s.whisker_low = s.max;   // will shrink below
  s.whisker_high = s.min;
  for (double v : values) {
    if (v < fence_low || v > fence_high) {
      s.outliers.push_back(v);
    } else {
      s.whisker_low = std::min(s.whisker_low, v);
      s.whisker_high = std::max(s.whisker_high, v);
    }
  }
  return s;
}

}  // namespace ednsm::stats
