// Quantiles and box-plot summaries (the paper's figures are box plots of
// response-time and ping distributions).
#pragma once

#include <cstddef>
#include <vector>

namespace ednsm::stats {

// Type-7 (linear interpolation) quantile, the R/NumPy default. `q` in [0,1].
// Input need not be sorted; an empty input returns NaN.
[[nodiscard]] double quantile(std::vector<double> values, double q);

[[nodiscard]] double median(std::vector<double> values);

// Five-number box-plot summary with Tukey 1.5*IQR whiskers.
struct BoxSummary {
  std::size_t count = 0;
  double min = 0, max = 0;
  double q1 = 0, median = 0, q3 = 0;
  double whisker_low = 0, whisker_high = 0;  // clamped to data range
  std::vector<double> outliers;              // points beyond the whiskers

  [[nodiscard]] double iqr() const noexcept { return q3 - q1; }
};

[[nodiscard]] BoxSummary box_summary(std::vector<double> values);

}  // namespace ednsm::stats
