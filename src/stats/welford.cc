#include "stats/welford.h"

#include <algorithm>

namespace ednsm::stats {

void Welford::merge(const Welford& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  const double new_mean =
      mean_ + delta * static_cast<double>(other.n_) / total;
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(n_) * static_cast<double>(other.n_) / total;
  mean_ = new_mean;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

}  // namespace ednsm::stats
