// Streaming mean/variance (Welford's algorithm) — numerically stable
// accumulation for long-running campaign counters.
#pragma once

#include <cmath>
#include <cstdint>

namespace ednsm::stats {

class Welford {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  // Raw second central moment (sum of squared deviations). Exposed so codecs
  // can persist the accumulator exactly; variance() derives from it.
  [[nodiscard]] double m2() const noexcept { return m2_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  // Merge another accumulator (parallel combination of Chan et al.).
  void merge(const Welford& other) noexcept;

  // Rebuild an accumulator from persisted moments (the inverse of reading
  // count/mean/m2/min/max). n == 0 yields a fresh, empty accumulator no
  // matter what the other arguments say.
  [[nodiscard]] static Welford from_moments(std::uint64_t n, double mean, double m2, double min,
                                            double max) noexcept {
    Welford w;
    if (n == 0) return w;
    w.n_ = n;
    w.mean_ = mean;
    w.m2_ = m2;
    w.min_ = min;
    w.max_ = max;
    return w;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ednsm::stats
