#include "transport/pool.h"

#include "obs/trace.h"

namespace ednsm::transport {

std::string_view to_string(ReusePolicy p) noexcept {
  switch (p) {
    case ReusePolicy::None: return "none";
    case ReusePolicy::Keepalive: return "keepalive";
    case ReusePolicy::TicketResumption: return "ticket-resumption";
  }
  return "?";
}

std::optional<ReusePolicy> reuse_policy_from_string(std::string_view name) noexcept {
  for (ReusePolicy p :
       {ReusePolicy::None, ReusePolicy::Keepalive, ReusePolicy::TicketResumption}) {
    if (name == to_string(p)) return p;
  }
  return std::nullopt;
}

ConnectionPool::ConnectionPool(netsim::Network& net, netsim::IpAddr local_ip)
    : net_(net), local_ip_(local_ip) {}

ConnectionPool::~ConnectionPool() = default;

bool ConnectionPool::has_ticket(const netsim::Endpoint& remote, const std::string& sni) const {
  return tickets_.contains({remote, sni});
}

void ConnectionPool::invalidate(const netsim::Endpoint& remote, const std::string& sni) {
  sessions_.erase({remote, sni});
}

void ConnectionPool::forget_ticket(const netsim::Endpoint& remote, const std::string& sni) {
  tickets_.erase({remote, sni});
}

void ConnectionPool::acquire(const netsim::Endpoint& remote, const std::string& sni,
                             ReusePolicy policy, util::Bytes early_data, AcquireCallback cb) {
  const SessionKey key{remote, sni};
  const netsim::SimTime acquire_started = net_.queue().now();
  ++stats_.acquires;

  if (policy != ReusePolicy::None) {
    const auto it = sessions_.find(key);
    if (it != sessions_.end() && it->second->tls.established()) {
      ++stats_.reused;
      OBS_EVENT(net_.queue(), "transport", "pool-reuse");
      Lease lease;
      lease.tcp = &it->second->tcp;
      lease.tls = &it->second->tls;
      lease.fresh = false;
      cb(lease);
      return;
    }
  } else {
    // Policy None never re-uses; drop any leftover session for this key.
    sessions_.erase(key);
  }

  // Build a fresh session.
  const netsim::Endpoint local{local_ip_, net_.ephemeral_port(local_ip_)};
  auto session = std::make_unique<Session>(net_, local, remote, next_conn_id_++,
                                           TlsClientConfig{sni});
  Session* raw = session.get();
  sessions_[key] = std::move(session);

  std::optional<SessionTicket> ticket;
  TlsMode mode = TlsMode::Full;
  if (policy == ReusePolicy::TicketResumption) {
    const auto tk = tickets_.find(key);
    if (tk != tickets_.end()) {
      ticket = tk->second;
      mode = early_data.empty() ? TlsMode::Resume : TlsMode::EarlyData;
    }
  }

  raw->tcp.connect([this, key, raw, mode, ticket, acquire_started,
                    early_data = std::move(early_data),
                    cb = std::move(cb)](Result<void> connected) mutable {
    if (!connected) {
      ++stats_.handshake_failures;
      sessions_.erase(key);
      cb(Err{connected.error()});
      return;
    }
    raw->tls.handshake(
        mode, ticket, std::move(early_data),
        [this, key, raw, mode, acquire_started, cb = std::move(cb)](Result<TlsHandshakeInfo> hs) {
          if (!hs) {
            ++stats_.handshake_failures;
            sessions_.erase(key);
            cb(Err{hs.error()});
            return;
          }
          if (hs.value().ticket.has_value()) {
            tickets_[key] = *hs.value().ticket;
          }
          Lease lease;
          lease.tcp = &raw->tcp;
          lease.tls = &raw->tls;
          lease.fresh = true;
          lease.mode = mode;
          lease.early_data_accepted = hs.value().early_data_accepted;
          lease.tcp_handshake = raw->tcp.handshake_duration();
          lease.tls_handshake = raw->tls.handshake_duration();
          const netsim::SimDuration setup = net_.queue().now() - acquire_started;
          const netsim::SimDuration handshakes = lease.tcp_handshake + lease.tls_handshake;
          lease.wait_in_pool =
              setup > handshakes ? setup - handshakes : netsim::SimDuration{0};
          ++stats_.fresh;
          OBS_COMPLETE(net_.queue(), "transport", "pool-acquire", acquire_started, setup);
          cb(lease);
        });
  });
}

}  // namespace ednsm::transport
