// Connection pool for one vantage host.
//
// Encrypted DNS cost is dominated by connection setup (TCP + TLS round
// trips); Zhu et al. and Böttger et al. both show the overhead is largely
// amortized by connection re-use. The pool implements the three policies the
// ablation bench compares:
//   None              every query pays TCP + full TLS
//   Keepalive         live sessions are re-used while they last
//   TicketResumption  like Keepalive, plus PSK tickets cut the crypto cost
//                     (and optionally carry 0-RTT early data) after a session
//                     dies
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "transport/tcp.h"
#include "transport/tls.h"
#include "transport/udp.h"

namespace ednsm::transport {

enum class ReusePolicy {
  None,
  Keepalive,
  TicketResumption,
};

[[nodiscard]] std::string_view to_string(ReusePolicy p) noexcept;

class ConnectionPool {
 public:
  // A leased session: valid until release()/invalidate(). `fresh` says the
  // lease paid connection setup; `early_data_accepted` says the request
  // already reached the server inside the handshake (0-RTT).
  struct Lease {
    TcpConnection* tcp = nullptr;
    TlsClient* tls = nullptr;
    bool fresh = false;
    TlsMode mode = TlsMode::Full;
    bool early_data_accepted = false;
  };
  using AcquireCallback = std::function<void(Result<Lease>)>;

  ConnectionPool(netsim::Network& net, netsim::IpAddr local_ip);
  ~ConnectionPool();

  ConnectionPool(const ConnectionPool&) = delete;
  ConnectionPool& operator=(const ConnectionPool&) = delete;

  // Ensure an established TLS session to (remote, sni). With
  // TicketResumption and a stored ticket, `early_data` (if non-empty) is
  // offered as 0-RTT. The callback fires exactly once.
  void acquire(const netsim::Endpoint& remote, const std::string& sni, ReusePolicy policy,
               util::Bytes early_data, AcquireCallback cb);

  // Drop the pooled session for (remote, sni) — call after transport errors.
  // The stored ticket survives (real clients retry with resumption).
  void invalidate(const netsim::Endpoint& remote, const std::string& sni);

  // Forget the resumption ticket too (e.g. server rejected it).
  void forget_ticket(const netsim::Endpoint& remote, const std::string& sni);

  [[nodiscard]] std::size_t live_sessions() const noexcept { return sessions_.size(); }
  [[nodiscard]] bool has_ticket(const netsim::Endpoint& remote, const std::string& sni) const;
  [[nodiscard]] netsim::IpAddr local_ip() const noexcept { return local_ip_; }

 private:
  struct Session {
    TcpConnection tcp;
    TlsClient tls;
    Session(netsim::Network& net, netsim::Endpoint local, netsim::Endpoint remote,
            std::uint32_t conn_id, TlsClientConfig config)
        : tcp(net, local, remote, conn_id), tls(tcp, std::move(config)) {}
  };
  using Key = std::pair<netsim::Endpoint, std::string>;

  netsim::Network& net_;
  netsim::IpAddr local_ip_;
  std::uint32_t next_conn_id_ = 1;
  std::map<Key, std::unique_ptr<Session>> sessions_;
  std::map<Key, SessionTicket> tickets_;
};

}  // namespace ednsm::transport
