// Connection pool for one vantage host.
//
// Encrypted DNS cost is dominated by connection setup (TCP + TLS round
// trips); Zhu et al. and Böttger et al. both show the overhead is largely
// amortized by connection re-use. The pool implements the three policies the
// ablation bench compares:
//   None              every query pays TCP + full TLS
//   Keepalive         live sessions are re-used while they last
//   TicketResumption  like Keepalive, plus PSK tickets cut the crypto cost
//                     (and optionally carry 0-RTT early data) after a session
//                     dies
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "transport/tcp.h"
#include "transport/tls.h"
#include "transport/udp.h"

namespace ednsm::transport {

enum class ReusePolicy {
  None,
  Keepalive,
  TicketResumption,
};

[[nodiscard]] std::string_view to_string(ReusePolicy p) noexcept;

// Inverse of to_string (exact match); nullopt for unknown names. Shared by
// spec parsing and the CLI tools.
[[nodiscard]] std::optional<ReusePolicy> reuse_policy_from_string(std::string_view name) noexcept;

// (remote endpoint, SNI) key for per-destination session caches. All users
// are point-access only (find/erase, never iterated), so a hashed map is
// order-safe; the endpoint packs to one u64 (EndpointHash) and is mixed with
// the SNI hash, following the listeners' ConnKeyHash idiom.
struct SessionKey {
  netsim::Endpoint remote;
  std::string sni;

  [[nodiscard]] bool operator==(const SessionKey&) const = default;
};

struct SessionKeyHash {
  [[nodiscard]] std::size_t operator()(const SessionKey& k) const noexcept {
    return netsim::EndpointHash{}(k.remote) ^ (std::hash<std::string>{}(k.sni) << 1);
  }
};

// Lease-lifecycle counters for the "transport.pool_*" metrics. `reused` and
// `fresh` partition successful acquires; `handshake_failures` counts acquires
// that died in TCP connect or the TLS handshake.
struct PoolStats {
  std::uint64_t acquires = 0;
  std::uint64_t reused = 0;
  std::uint64_t fresh = 0;
  std::uint64_t handshake_failures = 0;
};

class ConnectionPool {
 public:
  // A leased session: valid until release()/invalidate(). `fresh` says the
  // lease paid connection setup; `early_data_accepted` says the request
  // already reached the server inside the handshake (0-RTT).
  struct Lease {
    TcpConnection* tcp = nullptr;
    TlsClient* tls = nullptr;
    bool fresh = false;
    TlsMode mode = TlsMode::Full;
    bool early_data_accepted = false;
    // Phase breakdown of a fresh acquire (all zero on re-use): the TCP and
    // TLS handshake round trips as stamped by the transports, plus whatever
    // acquire time is attributable to neither (pool queueing/scheduling).
    netsim::SimDuration tcp_handshake{0};
    netsim::SimDuration tls_handshake{0};
    netsim::SimDuration wait_in_pool{0};
  };
  using AcquireCallback = std::function<void(Result<Lease>)>;

  ConnectionPool(netsim::Network& net, netsim::IpAddr local_ip);
  ~ConnectionPool();

  ConnectionPool(const ConnectionPool&) = delete;
  ConnectionPool& operator=(const ConnectionPool&) = delete;

  // Ensure an established TLS session to (remote, sni). With
  // TicketResumption and a stored ticket, `early_data` (if non-empty) is
  // offered as 0-RTT. The callback fires exactly once.
  void acquire(const netsim::Endpoint& remote, const std::string& sni, ReusePolicy policy,
               util::Bytes early_data, AcquireCallback cb);

  // Drop the pooled session for (remote, sni) — call after transport errors.
  // The stored ticket survives (real clients retry with resumption).
  void invalidate(const netsim::Endpoint& remote, const std::string& sni);

  // Forget the resumption ticket too (e.g. server rejected it).
  void forget_ticket(const netsim::Endpoint& remote, const std::string& sni);

  [[nodiscard]] std::size_t live_sessions() const noexcept { return sessions_.size(); }
  [[nodiscard]] const PoolStats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool has_ticket(const netsim::Endpoint& remote, const std::string& sni) const;
  [[nodiscard]] netsim::IpAddr local_ip() const noexcept { return local_ip_; }

 private:
  struct Session {
    TcpConnection tcp;
    TlsClient tls;
    Session(netsim::Network& net, netsim::Endpoint local, netsim::Endpoint remote,
            std::uint32_t conn_id, TlsClientConfig config)
        : tcp(net, local, remote, conn_id), tls(tcp, std::move(config)) {}
  };
  netsim::Network& net_;
  netsim::IpAddr local_ip_;
  std::uint32_t next_conn_id_ = 1;
  PoolStats stats_;
  // Point access only (never iterated) — hashed, like the listener conn maps.
  std::unordered_map<SessionKey, std::unique_ptr<Session>, SessionKeyHash> sessions_;
  std::unordered_map<SessionKey, SessionTicket, SessionKeyHash> tickets_;
};

}  // namespace ednsm::transport
