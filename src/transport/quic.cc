#include "transport/quic.h"

#include "dns/wire.h"
#include "netsim/rng.h"
#include "obs/trace.h"

namespace ednsm::transport {

using netsim::Datagram;
using netsim::Endpoint;

// ---- packet codec -------------------------------------------------------------

util::Bytes QuicPacket::encode() const {
  dns::WireWriter w;
  w.reserve(21 + data.size());  // fixed header + payload
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(static_cast<std::uint32_t>(conn_id >> 32));
  w.u32(static_cast<std::uint32_t>(conn_id & 0xffffffffULL));
  w.u32(static_cast<std::uint32_t>(stream_id >> 32));
  w.u32(static_cast<std::uint32_t>(stream_id & 0xffffffffULL));
  w.u16(seq);
  w.u16(total);
  w.bytes(data);
  return std::move(w).take();
}

Result<QuicPacket> QuicPacket::decode(std::span<const std::uint8_t> wire) {
  dns::WireReader r(wire);
  QuicPacket p;
  auto type = r.u8();
  if (!type || type.value() < 1 || type.value() > 6) {
    return Err{std::string("quic: bad packet type")};
  }
  p.type = static_cast<QuicPacketType>(type.value());
  auto chi = r.u32();
  auto clo = r.u32();
  if (!chi || !clo) return Err{std::string("quic: truncated conn id")};
  p.conn_id = (static_cast<std::uint64_t>(chi.value()) << 32) | clo.value();
  auto shi = r.u32();
  auto slo = r.u32();
  if (!shi || !slo) return Err{std::string("quic: truncated stream id")};
  p.stream_id = (static_cast<std::uint64_t>(shi.value()) << 32) | slo.value();
  auto seq = r.u16();
  auto total = r.u16();
  if (!seq || !total) return Err{std::string("quic: truncated header")};
  p.seq = seq.value();
  p.total = total.value();
  auto data = r.bytes(r.remaining());
  if (!data) return Err{std::string("quic: truncated data")};
  p.data = std::move(data).value();
  return p;
}

namespace {

// Initial payload: [mode][sni_len][sni][ticket u64][early bytes...]
struct InitialPayload {
  TlsMode mode = TlsMode::Full;
  std::string sni;
  std::uint64_t ticket_id = 0;
  util::Bytes early;

  [[nodiscard]] util::Bytes encode() const {
    dns::WireWriter w;
    w.u8(static_cast<std::uint8_t>(mode));
    w.u8(static_cast<std::uint8_t>(sni.size()));
    w.bytes(std::span(reinterpret_cast<const std::uint8_t*>(sni.data()), sni.size()));
    w.u32(static_cast<std::uint32_t>(ticket_id >> 32));
    w.u32(static_cast<std::uint32_t>(ticket_id & 0xffffffffULL));
    w.bytes(early);
    return std::move(w).take();
  }

  [[nodiscard]] static Result<InitialPayload> decode(std::span<const std::uint8_t> wire) {
    dns::WireReader r(wire);
    InitialPayload p;
    auto mode = r.u8();
    if (!mode || mode.value() > 2) return Err{std::string("quic: bad mode")};
    p.mode = static_cast<TlsMode>(mode.value());
    auto len = r.u8();
    if (!len) return Err{std::string("quic: truncated sni")};
    auto sni = r.view(len.value());
    if (!sni) return Err{std::string("quic: truncated sni")};
    p.sni.assign(reinterpret_cast<const char*>(sni.value().data()), sni.value().size());
    auto hi = r.u32();
    auto lo = r.u32();
    if (!hi || !lo) return Err{std::string("quic: truncated ticket")};
    p.ticket_id = (static_cast<std::uint64_t>(hi.value()) << 32) | lo.value();
    auto early = r.bytes(r.remaining());
    if (!early) return Err{std::string("quic: truncated early data")};
    p.early = std::move(early).value();
    return p;
  }
};

// ServerInitial payload: [early_accepted][ticket u64][cert_len][cert]
struct ServerInitialPayload {
  bool early_accepted = false;
  std::uint64_t ticket_id = 0;
  std::string certificate_name;

  [[nodiscard]] util::Bytes encode() const {
    dns::WireWriter w;
    w.u8(early_accepted ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(ticket_id >> 32));
    w.u32(static_cast<std::uint32_t>(ticket_id & 0xffffffffULL));
    w.u8(static_cast<std::uint8_t>(certificate_name.size()));
    w.bytes(std::span(reinterpret_cast<const std::uint8_t*>(certificate_name.data()),
                      certificate_name.size()));
    return std::move(w).take();
  }

  [[nodiscard]] static Result<ServerInitialPayload> decode(
      std::span<const std::uint8_t> wire) {
    dns::WireReader r(wire);
    ServerInitialPayload p;
    auto early = r.u8();
    if (!early) return Err{std::string("quic: truncated server initial")};
    p.early_accepted = early.value() != 0;
    auto hi = r.u32();
    auto lo = r.u32();
    if (!hi || !lo) return Err{std::string("quic: truncated ticket")};
    p.ticket_id = (static_cast<std::uint64_t>(hi.value()) << 32) | lo.value();
    auto len = r.u8();
    if (!len) return Err{std::string("quic: truncated cert")};
    auto cert = r.bytes(len.value());
    if (!cert) return Err{std::string("quic: truncated cert")};
    p.certificate_name.assign(reinterpret_cast<const char*>(cert.value().data()),
                              cert.value().size());
    return p;
  }
};

}  // namespace

// ---- stream core ----------------------------------------------------------------

QuicStreamCore::QuicStreamCore(netsim::EventQueue& queue, SendFn send)
    : queue_(queue), send_(std::move(send)) {}

QuicStreamCore::~QuicStreamCore() { shutdown(); }

void QuicStreamCore::shutdown() {
  dead_ = true;
  for (auto& [id, out] : outbound_) {
    if (out.pto_timer.has_value()) queue_.cancel(*out.pto_timer);
    out.pto_timer.reset();
  }
}

void QuicStreamCore::send_stream(std::uint64_t stream_id, util::Bytes data) {
  Outbound out;
  const std::size_t nchunks = data.empty() ? 1 : (data.size() + kQuicMaxPayload - 1) / kQuicMaxPayload;
  for (std::size_t i = 0; i < nchunks; ++i) {
    QuicPacket p;
    p.type = QuicPacketType::Stream;
    p.stream_id = stream_id;
    p.seq = static_cast<std::uint16_t>(i);
    p.total = static_cast<std::uint16_t>(nchunks);
    const std::size_t begin = i * kQuicMaxPayload;
    const std::size_t end = std::min(data.size(), begin + kQuicMaxPayload);
    p.data.assign(data.begin() + static_cast<std::ptrdiff_t>(begin),
                  data.begin() + static_cast<std::ptrdiff_t>(end));
    out.unacked.insert(p.seq);
    out.chunks.push_back(std::move(p));
  }
  for (const QuicPacket& p : out.chunks) {
    ++stats_.stream_packets_sent;
    send_(p);
  }
  outbound_[stream_id] = std::move(out);
  arm_pto(stream_id);
}

void QuicStreamCore::arm_pto(std::uint64_t stream_id) {
  auto it = outbound_.find(stream_id);
  if (it == outbound_.end() || it->second.unacked.empty()) return;
  it->second.pto_timer = queue_.schedule(kPto, [this, stream_id] { on_pto(stream_id); });
}

void QuicStreamCore::on_pto(std::uint64_t stream_id) {
  if (dead_) return;
  auto it = outbound_.find(stream_id);
  if (it == outbound_.end() || it->second.unacked.empty()) return;
  Outbound& out = it->second;
  out.pto_timer.reset();
  if (++out.retries > kMaxRetries) return;  // stream abandoned; caller times out
  for (std::uint16_t seq : out.unacked) {
    ++stats_.stream_retransmissions;
    send_(out.chunks[seq]);
  }
  arm_pto(stream_id);
}

void QuicStreamCore::handle(const QuicPacket& packet) {
  if (packet.type == QuicPacketType::StreamAck) {
    auto it = outbound_.find(packet.stream_id);
    if (it == outbound_.end()) return;
    it->second.unacked.erase(packet.seq);
    if (it->second.unacked.empty()) {
      if (it->second.pto_timer.has_value()) queue_.cancel(*it->second.pto_timer);
      outbound_.erase(it);
    }
    return;
  }
  if (packet.type != QuicPacketType::Stream) return;

  QuicPacket ack;
  ack.type = QuicPacketType::StreamAck;
  ack.conn_id = packet.conn_id;
  ack.stream_id = packet.stream_id;
  ack.seq = packet.seq;
  send_(ack);

  Inbound& in = inbound_[packet.stream_id];
  if (in.delivered) return;
  in.total = packet.total;
  in.chunks.emplace(packet.seq, packet.data);
  if (in.chunks.size() == in.total) {
    in.delivered = true;
    util::Bytes whole;
    for (auto& [s, chunk] : in.chunks) whole.insert(whole.end(), chunk.begin(), chunk.end());
    in.chunks.clear();
    ++stats_.streams_delivered;
    if (on_stream_) on_stream_(packet.stream_id, std::move(whole));
  }
}

// ---- client ----------------------------------------------------------------------

QuicConnection::QuicConnection(netsim::Network& net, Endpoint local, Endpoint remote,
                               std::string sni, std::uint64_t conn_id)
    : net_(net),
      local_(local),
      remote_(remote),
      sni_(std::move(sni)),
      conn_id_(conn_id),
      core_(net.queue(), [this](const QuicPacket& p) { send_packet(p); }) {
  net_.bind(local_, [this](const Datagram& d) { handle_datagram(d); });
}

QuicConnection::~QuicConnection() {
  close();
  net_.unbind(local_);
}

void QuicConnection::close() {
  if (established_) {
    QuicPacket p;
    p.type = QuicPacketType::Close;
    send_packet(p);
    established_ = false;
  }
  core_.shutdown();
  if (initial_timer_.has_value()) {
    net_.queue().cancel(*initial_timer_);
    initial_timer_.reset();
  }
}

void QuicConnection::send_packet(const QuicPacket& p) {
  QuicPacket out = p;
  out.conn_id = conn_id_;
  net_.send(Datagram{local_, remote_, out.encode()});
}

void QuicConnection::connect(TlsMode mode, std::optional<SessionTicket> ticket,
                             util::Bytes early_stream, ConnectCallback cb) {
  connect_cb_ = std::move(cb);
  mode_ = mode;
  connect_started_ = net_.queue().now();
  if (mode != TlsMode::Full) {
    if (!ticket.has_value() || ticket->server_name != sni_) {
      auto hcb = std::move(connect_cb_);
      connect_cb_ = nullptr;
      hcb(Err{std::string("quic: resumption requested without a valid ticket")});
      return;
    }
  }

  InitialPayload payload;
  payload.mode = mode;
  payload.sni = sni_;
  payload.ticket_id = ticket.has_value() ? ticket->id : 0;
  if (mode == TlsMode::EarlyData) {
    payload.early = early_stream;
    pending_early_ = std::move(early_stream);
    next_stream_id_ = 4;  // stream 0 is the early stream
  }

  QuicPacket initial;
  initial.type = QuicPacketType::Initial;
  initial.data = payload.encode();

  // Keep the encoded Initial for retransmission.
  pending_initial_ = std::move(initial);
  retransmit_initial();
}

void QuicConnection::retransmit_initial() {
  if (established_ || connect_cb_ == nullptr) return;
  if (initial_transmissions_ >= kMaxInitialTransmissions) {
    fail_connect("quic: connection timed out (Initial retries exhausted)");
    return;
  }
  ++initial_transmissions_;
  send_packet(pending_initial_);
  const auto backoff = kInitialPto * (1 << (initial_transmissions_ - 1));
  initial_timer_ = net_.queue().schedule(backoff, [this] { retransmit_initial(); });
}

void QuicConnection::fail_connect(const std::string& why) {
  if (initial_timer_.has_value()) {
    net_.queue().cancel(*initial_timer_);
    initial_timer_.reset();
  }
  if (connect_cb_) {
    auto cb = std::move(connect_cb_);
    connect_cb_ = nullptr;
    cb(Err{why});
  }
}

std::uint64_t QuicConnection::send_stream(util::Bytes data) {
  const std::uint64_t sid = next_stream_id_;
  next_stream_id_ += 4;
  core_.send_stream(sid, std::move(data));
  return sid;
}

void QuicConnection::handle_datagram(const Datagram& d) {
  auto packet_r = QuicPacket::decode(d.payload);
  if (!packet_r) return;
  const QuicPacket& p = packet_r.value();
  if (p.conn_id != conn_id_) return;

  switch (p.type) {
    case QuicPacketType::ServerInitial: {
      if (established_) return;  // duplicate
      auto payload = ServerInitialPayload::decode(p.data);
      if (!payload) return;
      if (initial_timer_.has_value()) {
        net_.queue().cancel(*initial_timer_);
        initial_timer_.reset();
      }
      if (payload.value().certificate_name != sni_) {
        fail_connect("quic: tls certificate name mismatch (got '" +
                     payload.value().certificate_name + "')");
        return;
      }
      established_ = true;
      handshake_duration_ = net_.queue().now() - connect_started_;
      OBS_COMPLETE(net_.queue(), "transport", "quic-handshake", connect_started_,
                   handshake_duration_);
      QuicHandshakeInfo info;
      info.mode = mode_;
      info.early_data_accepted = payload.value().early_accepted;
      info.ticket = SessionTicket{payload.value().ticket_id, sni_};
      // Early data rejected? Replay it as a regular stream 0 message.
      if (mode_ == TlsMode::EarlyData && !info.early_data_accepted &&
          !pending_early_.empty()) {
        core_.send_stream(0, std::move(pending_early_));
      }
      pending_early_.clear();
      if (connect_cb_) {
        auto cb = std::move(connect_cb_);
        connect_cb_ = nullptr;
        cb(info);
      }
      // Replay stream packets that arrived ahead of the handshake.
      std::vector<QuicPacket> reordered;
      reordered.swap(reordered_);
      for (const QuicPacket& early_pkt : reordered) core_.handle(early_pkt);
      return;
    }
    case QuicPacketType::Retry:
      fail_connect("quic: connection refused (Retry/close from server)");
      return;
    case QuicPacketType::Stream:
    case QuicPacketType::StreamAck:
      if (established_) {
        core_.handle(p);
      } else if (connect_cb_ != nullptr) {
        reordered_.push_back(p);  // outran the ServerInitial
      }
      return;
    case QuicPacketType::Close:
      established_ = false;
      return;
    default:
      return;
  }
}

// ---- server ----------------------------------------------------------------------

QuicServerConn::QuicServerConn(netsim::Network& net, Endpoint local, Endpoint peer,
                               std::uint64_t conn_id, QuicStreamCore::SendFn send)
    : net_(net), local_(local), peer_(peer), conn_id_(conn_id),
      core_(net.queue(), std::move(send)) {
  (void)net_;
  (void)local_;
  (void)conn_id_;
}

void QuicServerConn::send_stream(std::uint64_t stream_id, util::Bytes data) {
  core_.send_stream(stream_id, std::move(data));
}

QuicListener::QuicListener(netsim::Network& net, Endpoint local, QuicServerConfig config)
    : net_(net),
      local_(local),
      config_(std::move(config)),
      salt_(net.rng().next_u64()),
      next_ticket_id_(net.rng().next_u64() | 1) {
  net_.bind(local_, [this](const Datagram& d) { handle_datagram(d); });
}

QuicListener::~QuicListener() { net_.unbind(local_); }

void QuicListener::handle_datagram(const Datagram& d) {
  auto packet_r = QuicPacket::decode(d.payload);
  if (!packet_r) return;
  QuicPacket& p = packet_r.value();
  const auto key = std::make_pair(d.src, p.conn_id);

  if (p.type == QuicPacketType::Initial) {
    const auto existing = conns_.find(key);
    if (existing == conns_.end()) {
      // Per-attempt failure decision (deterministic across retransmits).
      std::uint64_t state = salt_ ^ (static_cast<std::uint64_t>(d.src.ip.value) << 24) ^
                            (static_cast<std::uint64_t>(d.src.port) << 8) ^ p.conn_id;
      const double u_refuse =
          static_cast<double>(netsim::splitmix64(state) >> 11) * 0x1.0p-53;
      const double u_drop = static_cast<double>(netsim::splitmix64(state) >> 11) * 0x1.0p-53;
      const double u_hs = static_cast<double>(netsim::splitmix64(state) >> 11) * 0x1.0p-53;
      if (u_refuse < refuse_probability_ ||
          u_hs < config_.handshake_failure_probability) {
        QuicPacket retry;
        retry.type = QuicPacketType::Retry;
        retry.conn_id = p.conn_id;
        net_.send(Datagram{local_, d.src, retry.encode()});
        return;
      }
      if (u_drop < drop_probability_) return;
    }

    auto payload_r = InitialPayload::decode(p.data);
    if (!payload_r) return;
    InitialPayload& payload = payload_r.value();

    bool sni_ok = false;
    for (const std::string& name : config_.certificate_names) {
      if (name == payload.sni) sni_ok = true;
    }

    std::shared_ptr<QuicServerConn> conn;
    const bool fresh = existing == conns_.end();
    if (fresh) {
      const Endpoint peer = d.src;
      const std::uint64_t conn_id = p.conn_id;
      conn = std::make_shared<QuicServerConn>(
          net_, local_, peer, conn_id, [this, peer, conn_id](const QuicPacket& out) {
            QuicPacket o = out;
            o.conn_id = conn_id;
            net_.send(Datagram{local_, peer, o.encode()});
          });
      conns_[key] = conn;
      if (on_accept_) on_accept_(conn);
    } else {
      conn = existing->second;
    }

    // Effective mode: a PSK needs a ticket.
    TlsMode mode = payload.mode;
    if (mode != TlsMode::Full && payload.ticket_id == 0) mode = TlsMode::Full;
    const double cpu_ms = mode == TlsMode::Full
                              ? net_.rng().exponential(config_.handshake_cpu_ms)
                              : net_.rng().exponential(config_.resume_cpu_ms);

    ServerInitialPayload reply;
    reply.early_accepted = mode == TlsMode::EarlyData && config_.accept_early_data &&
                           !payload.early.empty() && sni_ok;
    reply.ticket_id = next_ticket_id_++;
    reply.certificate_name = sni_ok ? payload.sni
                             : config_.certificate_names.empty()
                                 ? std::string("invalid.example")
                                 : config_.certificate_names.front();

    QuicPacket out;
    out.type = QuicPacketType::ServerInitial;
    out.conn_id = p.conn_id;
    out.data = reply.encode();

    std::weak_ptr<QuicServerConn> weak = conn;
    const Endpoint peer = d.src;
    util::Bytes early = reply.early_accepted ? std::move(payload.early) : util::Bytes{};
    net_.queue().schedule(
        netsim::from_ms(cpu_ms),
        [this, weak, peer, out = std::move(out), early = std::move(early)]() mutable {
          auto live = weak.lock();
          if (!live) return;  // torn down during the handshake
          net_.send(Datagram{local_, peer, out.encode()});
          if (!early.empty()) {
            // Deliver the 0-RTT stream as if it arrived as stream 0.
            QuicPacket stream0;
            stream0.type = QuicPacketType::Stream;
            stream0.conn_id = out.conn_id;
            stream0.stream_id = 0;
            stream0.seq = 0;
            stream0.total = 1;
            stream0.data = std::move(early);
            live->handle(stream0);
          }
        });
    return;
  }

  if (p.type == QuicPacketType::Close) {
    const auto it = conns_.find(key);
    if (it != conns_.end()) {
      if (on_close_) on_close_(it->second);
      conns_.erase(it);
    }
    return;
  }

  const auto it = conns_.find(key);
  if (it == conns_.end()) return;
  it->second->handle(p);
}

}  // namespace ednsm::transport
