// QUIC transport simulation (RFC 9000/9001 subset) — the substrate for
// DNS-over-QUIC (RFC 9250), the protocol the encrypted-DNS ecosystem is
// moving toward and a natural extension of the paper's measurements.
//
// Faithful parts:
//   - the combined transport+crypto handshake costs ONE round trip before
//     application data flows (vs TCP's one + TLS's one);
//   - 0-RTT resumption carries application data in the first flight;
//   - each application message rides its own stream: packets of different
//     streams are delivered independently, so one lost packet never blocks
//     another stream (no transport head-of-line blocking);
//   - packet loss is recovered by PTO-style retransmission;
//   - connection IDs demultiplex on a single UDP port; SNI is verified.
//
// Simplified (like the TCP/TLS sims): no congestion control, no real
// cryptography, stream payloads framed as whole messages.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "netsim/network.h"
#include "transport/tls.h"  // SessionTicket, TlsMode
#include "util/result.h"

namespace ednsm::transport {

inline constexpr std::size_t kQuicMaxPayload = 1200;  // QUIC datagram budget

enum class QuicPacketType : std::uint8_t {
  Initial = 1,        // client hello (flags: mode, sni, ticket, early stream)
  ServerInitial = 2,  // server hello + handshake done (ticket, cert name)
  Stream = 3,         // stream data chunk
  StreamAck = 4,
  Retry = 5,          // server refusal ("connection refused" analog)
  Close = 6,
};

struct QuicPacket {
  QuicPacketType type = QuicPacketType::Initial;
  std::uint64_t conn_id = 0;
  std::uint64_t stream_id = 0;
  std::uint16_t seq = 0;    // chunk index within the stream message
  std::uint16_t total = 0;  // chunks in the stream message
  util::Bytes data;

  [[nodiscard]] util::Bytes encode() const;
  [[nodiscard]] static Result<QuicPacket> decode(std::span<const std::uint8_t> wire);
};

struct QuicHandshakeInfo {
  TlsMode mode = TlsMode::Full;
  bool early_data_accepted = false;
  std::optional<SessionTicket> ticket;
};

struct QuicStats {
  std::uint64_t initial_transmissions = 0;
  std::uint64_t stream_packets_sent = 0;
  std::uint64_t stream_retransmissions = 0;
  std::uint64_t streams_delivered = 0;
};

// Reliable per-stream message delivery shared by both connection halves.
class QuicStreamCore {
 public:
  using SendFn = std::function<void(const QuicPacket&)>;
  using StreamHandler = std::function<void(std::uint64_t stream_id, util::Bytes)>;

  QuicStreamCore(netsim::EventQueue& queue, SendFn send);
  ~QuicStreamCore();

  void on_stream(StreamHandler h) { on_stream_ = std::move(h); }

  // Send one whole message on `stream_id` (chunked; PTO-retransmitted).
  void send_stream(std::uint64_t stream_id, util::Bytes data);

  void handle(const QuicPacket& packet);
  void shutdown();

  [[nodiscard]] const QuicStats& stats() const noexcept { return stats_; }

 private:
  struct Outbound {
    std::vector<QuicPacket> chunks;
    std::set<std::uint16_t> unacked;
    int retries = 0;
    std::optional<netsim::EventQueue::EventId> pto_timer;
  };
  struct Inbound {
    std::map<std::uint16_t, util::Bytes> chunks;
    std::uint16_t total = 0;
    bool delivered = false;
  };

  void arm_pto(std::uint64_t stream_id);
  void on_pto(std::uint64_t stream_id);

  netsim::EventQueue& queue_;
  SendFn send_;
  StreamHandler on_stream_;
  std::map<std::uint64_t, Outbound> outbound_;
  std::map<std::uint64_t, Inbound> inbound_;
  QuicStats stats_;
  bool dead_ = false;

  static constexpr netsim::SimDuration kPto = std::chrono::milliseconds(250);
  static constexpr int kMaxRetries = 6;
};

// ---- client ------------------------------------------------------------------

class QuicConnection {
 public:
  using ConnectCallback = std::function<void(Result<QuicHandshakeInfo>)>;
  using StreamHandler = QuicStreamCore::StreamHandler;

  QuicConnection(netsim::Network& net, netsim::Endpoint local, netsim::Endpoint remote,
                 std::string sni, std::uint64_t conn_id);
  ~QuicConnection();

  QuicConnection(const QuicConnection&) = delete;
  QuicConnection& operator=(const QuicConnection&) = delete;

  // One round trip (Full/Resume); with EarlyData the `early_stream` payload
  // is delivered to the server inside the first flight (stream id 0).
  void connect(TlsMode mode, std::optional<SessionTicket> ticket, util::Bytes early_stream,
               ConnectCallback cb);

  // Returns the new stream's id (client streams: 0, 4, 8, ... per RFC 9000).
  std::uint64_t send_stream(util::Bytes data);

  void on_stream(StreamHandler h) { core_.on_stream(std::move(h)); }
  void close();

  [[nodiscard]] bool established() const noexcept { return established_; }
  [[nodiscard]] const QuicStats& stats() const noexcept { return core_.stats(); }

  // Phase stamp: Initial sent -> ServerInitial accepted (zero until
  // established). Feeds QueryTiming::quic_handshake.
  [[nodiscard]] netsim::SimDuration handshake_duration() const noexcept {
    return handshake_duration_;
  }

 private:
  void handle_datagram(const netsim::Datagram& d);
  void send_packet(const QuicPacket& p);
  void retransmit_initial();
  void fail_connect(const std::string& why);

  netsim::Network& net_;
  netsim::Endpoint local_;
  netsim::Endpoint remote_;
  std::string sni_;
  std::uint64_t conn_id_;
  QuicStreamCore core_;
  ConnectCallback connect_cb_;
  bool established_ = false;
  std::uint64_t next_stream_id_ = 0;
  std::optional<netsim::EventQueue::EventId> initial_timer_;
  int initial_transmissions_ = 0;
  netsim::SimTime connect_started_{0};
  netsim::SimDuration handshake_duration_{0};
  TlsMode mode_ = TlsMode::Full;
  util::Bytes pending_early_;  // resent as a normal stream if 0-RTT is rejected
  QuicPacket pending_initial_;  // kept for Initial retransmission
  // Stream packets that outran the ServerInitial under reordering; replayed
  // once the handshake completes (dropped if it fails).
  std::vector<QuicPacket> reordered_;

  static constexpr netsim::SimDuration kInitialPto = std::chrono::seconds(1);
  static constexpr int kMaxInitialTransmissions = 3;
};

// ---- server ------------------------------------------------------------------

struct QuicServerConfig {
  std::vector<std::string> certificate_names;
  double handshake_cpu_ms = 0.5;   // cheaper than TCP+TLS (one combined flight)
  double resume_cpu_ms = 0.08;
  double handshake_failure_probability = 0.0;  // Retry/close instead of accept
  bool accept_early_data = true;
};

class QuicServerConn {
 public:
  QuicServerConn(netsim::Network& net, netsim::Endpoint local, netsim::Endpoint peer,
                 std::uint64_t conn_id, QuicStreamCore::SendFn send);

  void on_stream(QuicStreamCore::StreamHandler h) { core_.on_stream(std::move(h)); }
  void send_stream(std::uint64_t stream_id, util::Bytes data);
  void handle(const QuicPacket& p) { core_.handle(p); }

  [[nodiscard]] const netsim::Endpoint& peer() const noexcept { return peer_; }

 private:
  netsim::Network& net_;
  netsim::Endpoint local_;
  netsim::Endpoint peer_;
  std::uint64_t conn_id_;
  QuicStreamCore core_;
};

class QuicListener {
 public:
  // Handlers receive the shared_ptr so deferred work (a query answer behind
  // a recursion stall) can hold a weak reference and detect teardown.
  using AcceptHandler = std::function<void(const std::shared_ptr<QuicServerConn>&)>;

  QuicListener(netsim::Network& net, netsim::Endpoint local, QuicServerConfig config);
  ~QuicListener();

  QuicListener(const QuicListener&) = delete;
  QuicListener& operator=(const QuicListener&) = delete;

  void on_accept(AcceptHandler h) { on_accept_ = std::move(h); }
  void on_close(AcceptHandler h) { on_close_ = std::move(h); }

  // Failure injection, mirroring the TCP listener semantics: decided
  // deterministically per connection attempt.
  void set_refuse_probability(double p) noexcept { refuse_probability_ = p; }
  void set_drop_probability(double p) noexcept { drop_probability_ = p; }

  [[nodiscard]] std::size_t connection_count() const noexcept { return conns_.size(); }

 private:
  void handle_datagram(const netsim::Datagram& d);

  netsim::Network& net_;
  netsim::Endpoint local_;
  QuicServerConfig config_;
  AcceptHandler on_accept_;
  AcceptHandler on_close_;
  double refuse_probability_ = 0.0;
  double drop_probability_ = 0.0;
  std::uint64_t salt_;
  std::uint64_t next_ticket_id_;
  // Hot per-datagram lookup; point access only (never iterated), so a hashed
  // map keyed by (peer endpoint, connection id) is order-safe.
  struct ConnKeyHash {
    std::size_t operator()(const std::pair<netsim::Endpoint, std::uint64_t>& k) const noexcept {
      return netsim::EndpointHash{}(k.first) ^ (std::hash<std::uint64_t>{}(k.second) << 1);
    }
  };
  std::unordered_map<std::pair<netsim::Endpoint, std::uint64_t>, std::shared_ptr<QuicServerConn>,
                     ConnKeyHash>
      conns_;
};

}  // namespace ednsm::transport
