#include "transport/tcp.h"

#include "dns/wire.h"
#include "obs/trace.h"

namespace ednsm::transport {

using netsim::Datagram;
using netsim::Endpoint;

// ---- segment codec ----------------------------------------------------------

util::Bytes TcpSegment::encode() const {
  dns::WireWriter w;
  w.reserve(13 + data.size());  // fixed header + payload
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(conn_id);
  w.u32(msg_id);
  w.u16(seq);
  w.u16(total);
  w.bytes(data);
  return std::move(w).take();
}

Result<TcpSegment> TcpSegment::decode(std::span<const std::uint8_t> wire) {
  dns::WireReader r(wire);
  TcpSegment seg;
  auto type = r.u8();
  if (!type) return Err{std::string("tcp: truncated segment")};
  if (type.value() < 1 || type.value() > 7) return Err{std::string("tcp: bad segment type")};
  seg.type = static_cast<TcpSegmentType>(type.value());
  auto conn = r.u32();
  if (!conn) return Err{std::string("tcp: truncated segment")};
  seg.conn_id = conn.value();
  auto msg = r.u32();
  if (!msg) return Err{std::string("tcp: truncated segment")};
  seg.msg_id = msg.value();
  auto seq = r.u16();
  if (!seq) return Err{std::string("tcp: truncated segment")};
  seg.seq = seq.value();
  auto total = r.u16();
  if (!total) return Err{std::string("tcp: truncated segment")};
  seg.total = total.value();
  auto data = r.bytes(r.remaining());
  if (!data) return Err{std::string("tcp: truncated segment")};
  seg.data = std::move(data).value();
  return seg;
}

// ---- reliable-message core --------------------------------------------------

TcpMessageCore::TcpMessageCore(netsim::EventQueue& queue, SendFn send)
    : queue_(queue), send_(std::move(send)) {}

TcpMessageCore::~TcpMessageCore() { shutdown(); }

void TcpMessageCore::shutdown() {
  dead_ = true;
  for (auto& [id, msg] : outbound_) {
    if (msg.rto_timer.has_value()) queue_.cancel(*msg.rto_timer);
    msg.rto_timer.reset();
  }
}

void TcpMessageCore::send_message(util::Bytes data) {
  const std::uint32_t msg_id = next_msg_id_++;
  OutboundMessage out;
  const std::size_t nsegs = data.empty() ? 1 : (data.size() + kTcpMss - 1) / kTcpMss;
  for (std::size_t i = 0; i < nsegs; ++i) {
    TcpSegment seg;
    seg.type = TcpSegmentType::Data;
    seg.msg_id = msg_id;
    seg.seq = static_cast<std::uint16_t>(i);
    seg.total = static_cast<std::uint16_t>(nsegs);
    const std::size_t begin = i * kTcpMss;
    const std::size_t end = std::min(data.size(), begin + kTcpMss);
    seg.data.assign(data.begin() + static_cast<std::ptrdiff_t>(begin),
                    data.begin() + static_cast<std::ptrdiff_t>(end));
    out.unacked.insert(seg.seq);
    out.segments.push_back(std::move(seg));
  }
  for (const TcpSegment& seg : out.segments) {
    ++stats_.data_segments_sent;
    send_(seg);
  }
  outbound_.emplace(msg_id, std::move(out));
  arm_rto(msg_id);
}

void TcpMessageCore::arm_rto(std::uint32_t msg_id) {
  auto it = outbound_.find(msg_id);
  if (it == outbound_.end() || it->second.unacked.empty()) return;
  it->second.rto_timer = queue_.schedule(kDataRto, [this, msg_id] { on_rto(msg_id); });
}

void TcpMessageCore::on_rto(std::uint32_t msg_id) {
  if (dead_) return;
  auto it = outbound_.find(msg_id);
  if (it == outbound_.end() || it->second.unacked.empty()) return;
  OutboundMessage& msg = it->second;
  msg.rto_timer.reset();
  if (++msg.retries > kMaxDataRetries) {
    if (on_error_) on_error_("tcp: data retransmission limit exceeded");
    return;
  }
  for (std::uint16_t seq : msg.unacked) {
    ++stats_.data_retransmissions;
    send_(msg.segments[seq]);
  }
  arm_rto(msg_id);
}

void TcpMessageCore::handle(const TcpSegment& seg) {
  if (seg.type == TcpSegmentType::DataAck) {
    auto it = outbound_.find(seg.msg_id);
    if (it == outbound_.end()) return;
    it->second.unacked.erase(seg.seq);
    if (it->second.unacked.empty()) {
      if (it->second.rto_timer.has_value()) queue_.cancel(*it->second.rto_timer);
      outbound_.erase(it);
    }
    return;
  }
  if (seg.type != TcpSegmentType::Data) return;

  // Ack every received Data segment (duplicates included: the ack may have
  // been the thing that got lost).
  TcpSegment ack;
  ack.type = TcpSegmentType::DataAck;
  ack.conn_id = seg.conn_id;
  ack.msg_id = seg.msg_id;
  ack.seq = seg.seq;
  send_(ack);

  InboundMessage& in = inbound_[seg.msg_id];
  if (in.delivered) return;
  in.total = seg.total;
  in.chunks.emplace(seg.seq, seg.data);
  if (in.chunks.size() == in.total) {
    in.delivered = true;
    util::Bytes whole;
    for (auto& [s, chunk] : in.chunks) {
      whole.insert(whole.end(), chunk.begin(), chunk.end());
    }
    in.chunks.clear();
    ++stats_.messages_delivered;
    if (on_message_) on_message_(std::move(whole));
  }
}

// ---- client connection ------------------------------------------------------

TcpConnection::TcpConnection(netsim::Network& net, Endpoint local, Endpoint remote,
                             std::uint32_t conn_id)
    : net_(net),
      local_(local),
      remote_(remote),
      conn_id_(conn_id),
      core_(net.queue(), [this](const TcpSegment& seg) { send_segment(seg); }) {
  net_.bind(local_, [this](const Datagram& d) { handle_datagram(d); });
}

TcpConnection::~TcpConnection() {
  if (state_ == State::Established) {
    TcpSegment fin;
    fin.type = TcpSegmentType::Fin;
    send_segment(fin);  // let the server release per-connection state
  }
  core_.shutdown();
  if (syn_timer_.has_value()) net_.queue().cancel(*syn_timer_);
  net_.unbind(local_);
}

void TcpConnection::send_segment(const TcpSegment& seg) {
  TcpSegment out = seg;
  out.conn_id = conn_id_;
  net_.send(Datagram{local_, remote_, out.encode()});
}

void TcpConnection::connect(ConnectCallback cb) {
  connect_cb_ = std::move(cb);
  state_ = State::SynSent;
  connect_started_ = net_.queue().now();
  retransmit_syn();
}

void TcpConnection::retransmit_syn() {
  if (state_ != State::SynSent) return;
  if (syn_transmissions_ >= kMaxSynTransmissions) {
    fail_connect("tcp: connection timed out (SYN retries exhausted)");
    return;
  }
  ++syn_transmissions_;
  TcpSegment syn;
  syn.type = TcpSegmentType::Syn;
  send_segment(syn);
  // Exponential backoff: 1s, 2s, 4s ...
  const auto backoff = kSynRtoInitial * (1 << (syn_transmissions_ - 1));
  syn_timer_ = net_.queue().schedule(backoff, [this] { retransmit_syn(); });
}

void TcpConnection::fail_connect(const std::string& why) {
  state_ = State::Closed;
  OBS_EVENT(net_.queue(), "transport", "tcp-connect-fail");
  if (syn_timer_.has_value()) {
    net_.queue().cancel(*syn_timer_);
    syn_timer_.reset();
  }
  if (connect_cb_) {
    auto cb = std::move(connect_cb_);
    connect_cb_ = nullptr;
    cb(Err{why});
  }
}

void TcpConnection::handle_datagram(const Datagram& d) {
  auto seg_r = TcpSegment::decode(d.payload);
  if (!seg_r) return;  // garbage on the wire: drop, like a real stack
  const TcpSegment& seg = seg_r.value();
  if (seg.conn_id != conn_id_) return;

  switch (seg.type) {
    case TcpSegmentType::SynAck: {
      if (state_ != State::SynSent) return;  // duplicate SYNACK
      state_ = State::Established;
      handshake_duration_ = net_.queue().now() - connect_started_;
      OBS_COMPLETE(net_.queue(), "transport", "tcp-handshake", connect_started_,
                   handshake_duration_);
      if (syn_timer_.has_value()) {
        net_.queue().cancel(*syn_timer_);
        syn_timer_.reset();
      }
      TcpSegment ack;
      ack.type = TcpSegmentType::Ack;
      send_segment(ack);
      if (connect_cb_) {
        auto cb = std::move(connect_cb_);
        connect_cb_ = nullptr;
        cb(Result<void>{});
      }
      return;
    }
    case TcpSegmentType::Rst: {
      if (state_ == State::SynSent) {
        fail_connect("tcp: connection refused (RST)");
      } else {
        state_ = State::Closed;
      }
      return;
    }
    case TcpSegmentType::Data:
    case TcpSegmentType::DataAck:
      if (state_ == State::Established) core_.handle(seg);
      return;
    case TcpSegmentType::Fin:
      state_ = State::Closed;
      return;
    default:
      return;
  }
}

void TcpConnection::send_message(util::Bytes data) { core_.send_message(std::move(data)); }

void TcpConnection::on_error(TcpMessageCore::ErrorHandler h) { core_.on_error(std::move(h)); }

void TcpConnection::close() {
  if (state_ == State::Established) {
    TcpSegment fin;
    fin.type = TcpSegmentType::Fin;
    send_segment(fin);
  }
  state_ = State::Closed;
  core_.shutdown();
}

// ---- server conn ------------------------------------------------------------

TcpServerConn::TcpServerConn(netsim::Network& net, Endpoint local, Endpoint peer,
                             std::uint32_t conn_id)
    : net_(net),
      local_(local),
      peer_(peer),
      conn_id_(conn_id),
      core_(net.queue(), [this](const TcpSegment& seg) { send_segment(seg); }) {}

void TcpServerConn::send_segment(const TcpSegment& seg) {
  TcpSegment out = seg;
  out.conn_id = conn_id_;
  net_.send(Datagram{local_, peer_, out.encode()});
}

void TcpServerConn::send_message(util::Bytes data) { core_.send_message(std::move(data)); }

void TcpServerConn::handle(const TcpSegment& seg) {
  if (seg.type == TcpSegmentType::Data || seg.type == TcpSegmentType::DataAck) {
    core_.handle(seg);
  }
}

// ---- listener ---------------------------------------------------------------

TcpListener::TcpListener(netsim::Network& net, Endpoint local)
    : net_(net), local_(local), salt_(net.rng().next_u64()) {
  net_.bind(local_, [this](const Datagram& d) { handle_datagram(d); });
}

TcpListener::~TcpListener() { net_.unbind(local_); }

void TcpListener::handle_datagram(const Datagram& d) {
  auto seg_r = TcpSegment::decode(d.payload);
  if (!seg_r) return;
  const TcpSegment& seg = seg_r.value();
  const auto key = std::make_pair(d.src, seg.conn_id);

  if (seg.type == TcpSegmentType::Syn) {
    // Failure is decided once per connection *attempt*, not per SYN packet:
    // the decision is derived deterministically from (peer, conn_id, salt),
    // so a retransmitted SYN of a doomed attempt stays doomed and the
    // configured probability is the true per-attempt failure rate.
    if (!conns_.contains(key)) {
      std::uint64_t state = salt_ ^ (static_cast<std::uint64_t>(d.src.ip.value) << 24) ^
                            (static_cast<std::uint64_t>(d.src.port) << 8) ^ seg.conn_id;
      const double u_refuse =
          static_cast<double>(netsim::splitmix64(state) >> 11) * 0x1.0p-53;
      const double u_drop =
          static_cast<double>(netsim::splitmix64(state) >> 11) * 0x1.0p-53;
      if (u_refuse < refuse_probability_) {
        TcpSegment rst;
        rst.type = TcpSegmentType::Rst;
        rst.conn_id = seg.conn_id;
        net_.send(Datagram{local_, d.src, rst.encode()});
        return;
      }
      if (u_drop < drop_syn_probability_) {
        return;  // listener under duress: SYN silently dropped
      }
    }
    auto it = conns_.find(key);
    if (it == conns_.end()) {
      auto conn = std::make_unique<TcpServerConn>(net_, local_, d.src, seg.conn_id);
      it = conns_.emplace(key, std::move(conn)).first;
      if (on_accept_) on_accept_(*it->second);
    }
    // (Re-)send SYNACK — handles duplicate SYNs from client retransmits.
    TcpSegment synack;
    synack.type = TcpSegmentType::SynAck;
    synack.conn_id = seg.conn_id;
    net_.send(Datagram{local_, d.src, synack.encode()});
    return;
  }

  if (seg.type == TcpSegmentType::Fin) {
    const auto it = conns_.find(key);
    if (it != conns_.end()) {
      if (on_close_) on_close_(*it->second);
      conns_.erase(it);
    }
    return;
  }

  const auto it = conns_.find(key);
  if (it == conns_.end()) {
    // Data for an unknown connection: RST, matching real stack behaviour.
    if (seg.type == TcpSegmentType::Data) {
      TcpSegment rst;
      rst.type = TcpSegmentType::Rst;
      rst.conn_id = seg.conn_id;
      net_.send(Datagram{local_, d.src, rst.encode()});
    }
    return;
  }
  it->second->handle(seg);
}

}  // namespace ednsm::transport
