// Message-level TCP simulation.
//
// What is faithful: the 3-way handshake costs one round trip before data can
// flow; connection refusal (RST) and silent SYN loss produce the distinct
// "failure to establish a connection" errors the paper reports; segment loss
// triggers retransmission timeouts that create the latency tail; every
// message is chunked into MSS-sized segments that are individually delayed,
// lost, reordered, and reassembled.
//
// What is simplified (documented in DESIGN.md): the byte-stream is modeled as
// a sequence of framed messages (one per application write), there is no
// congestion/flow control, and ACK clocking is per-segment rather than
// cumulative. DNS response-time shape depends on handshake round trips and
// loss recovery, both of which are modeled; it does not depend on cwnd
// dynamics at these message sizes (a DoH exchange fits in the initial
// window).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "netsim/network.h"
#include "util/result.h"

namespace ednsm::transport {

inline constexpr std::size_t kTcpMss = 1400;  // data bytes per segment

enum class TcpSegmentType : std::uint8_t {
  Syn = 1,
  SynAck = 2,
  Ack = 3,
  Data = 4,
  DataAck = 5,
  Fin = 6,
  Rst = 7,
};

// On-the-wire segment header (encoded big-endian ahead of the data chunk).
struct TcpSegment {
  TcpSegmentType type = TcpSegmentType::Syn;
  std::uint32_t conn_id = 0;
  std::uint32_t msg_id = 0;   // message counter (Data/DataAck)
  std::uint16_t seq = 0;      // segment index within the message
  std::uint16_t total = 0;    // total segments in the message (Data)
  util::Bytes data;

  [[nodiscard]] util::Bytes encode() const;
  [[nodiscard]] static Result<TcpSegment> decode(std::span<const std::uint8_t> wire);
};

struct TcpStats {
  std::uint64_t syn_transmissions = 0;
  std::uint64_t data_segments_sent = 0;
  std::uint64_t data_retransmissions = 0;
  std::uint64_t messages_delivered = 0;
};

// Reliable-message engine shared by the client and server halves: chunking,
// per-segment ack tracking, RTO-driven retransmission, reassembly, dedup.
class TcpMessageCore {
 public:
  using SendFn = std::function<void(const TcpSegment&)>;
  using MessageHandler = std::function<void(util::Bytes)>;
  using ErrorHandler = std::function<void(std::string)>;

  TcpMessageCore(netsim::EventQueue& queue, SendFn send);
  ~TcpMessageCore();

  void on_message(MessageHandler h) { on_message_ = std::move(h); }
  void on_error(ErrorHandler h) { on_error_ = std::move(h); }

  // Send one framed application message (chunks + arms the RTO).
  void send_message(util::Bytes data);

  // Feed an incoming Data/DataAck segment.
  void handle(const TcpSegment& seg);

  // Cancel all timers (connection closing).
  void shutdown();

  [[nodiscard]] const TcpStats& stats() const noexcept { return stats_; }

 private:
  struct OutboundMessage {
    std::vector<TcpSegment> segments;
    std::set<std::uint16_t> unacked;
    int retries = 0;
    std::optional<netsim::EventQueue::EventId> rto_timer;
  };
  struct InboundMessage {
    std::map<std::uint16_t, util::Bytes> chunks;
    std::uint16_t total = 0;
    bool delivered = false;
  };

  void arm_rto(std::uint32_t msg_id);
  void on_rto(std::uint32_t msg_id);

  netsim::EventQueue& queue_;
  SendFn send_;
  MessageHandler on_message_;
  ErrorHandler on_error_;
  std::uint32_t next_msg_id_ = 1;
  std::map<std::uint32_t, OutboundMessage> outbound_;
  std::map<std::uint32_t, InboundMessage> inbound_;
  TcpStats stats_;
  bool dead_ = false;

  static constexpr netsim::SimDuration kDataRto = std::chrono::milliseconds(300);
  static constexpr int kMaxDataRetries = 6;
};

// Client-side connection. Binds `local` for the connection's lifetime.
class TcpConnection {
 public:
  using ConnectCallback = std::function<void(Result<void>)>;

  TcpConnection(netsim::Network& net, netsim::Endpoint local, netsim::Endpoint remote,
                std::uint32_t conn_id);
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // Begin the 3-way handshake. The callback fires exactly once. SYNs are
  // retransmitted with exponential backoff; exhausting retries or receiving
  // RST fails the connect.
  void connect(ConnectCallback cb);

  void send_message(util::Bytes data);
  void on_message(TcpMessageCore::MessageHandler h) { core_.on_message(std::move(h)); }
  void on_error(TcpMessageCore::ErrorHandler h);
  void close();

  [[nodiscard]] bool established() const noexcept { return state_ == State::Established; }
  [[nodiscard]] const netsim::Endpoint& local() const noexcept { return local_; }
  [[nodiscard]] const netsim::Endpoint& remote() const noexcept { return remote_; }
  [[nodiscard]] const TcpStats& stats() const noexcept { return core_.stats(); }
  [[nodiscard]] std::uint32_t conn_id() const noexcept { return conn_id_; }

  // Phase stamp: SYN sent -> SYNACK received (zero until established). Feeds
  // QueryTiming::tcp_handshake through the pool lease.
  [[nodiscard]] netsim::SimDuration handshake_duration() const noexcept {
    return handshake_duration_;
  }
  // Layered protocols above TCP (TLS) stamp their own phases but have no
  // network handle of their own; they borrow the connection's clock.
  [[nodiscard]] netsim::EventQueue& queue() noexcept { return net_.queue(); }

 private:
  enum class State { Closed, SynSent, Established };

  void handle_datagram(const netsim::Datagram& d);
  void send_segment(const TcpSegment& seg);
  void retransmit_syn();
  void fail_connect(const std::string& why);

  netsim::Network& net_;
  netsim::Endpoint local_;
  netsim::Endpoint remote_;
  std::uint32_t conn_id_;
  State state_ = State::Closed;
  ConnectCallback connect_cb_;
  TcpMessageCore core_;
  std::optional<netsim::EventQueue::EventId> syn_timer_;
  int syn_transmissions_ = 0;
  std::string pending_error_;
  netsim::SimTime connect_started_{0};
  netsim::SimDuration handshake_duration_{0};

  static constexpr netsim::SimDuration kSynRtoInitial = std::chrono::seconds(1);
  static constexpr int kMaxSynTransmissions = 3;
};

// Server side of one accepted connection; owned by the listener.
class TcpServerConn {
 public:
  TcpServerConn(netsim::Network& net, netsim::Endpoint local, netsim::Endpoint peer,
                std::uint32_t conn_id);

  void send_message(util::Bytes data);
  void on_message(TcpMessageCore::MessageHandler h) { core_.on_message(std::move(h)); }

  // Feed a segment demuxed by the listener.
  void handle(const TcpSegment& seg);

  [[nodiscard]] const netsim::Endpoint& peer() const noexcept { return peer_; }
  [[nodiscard]] std::uint32_t conn_id() const noexcept { return conn_id_; }

 private:
  void send_segment(const TcpSegment& seg);

  netsim::Network& net_;
  netsim::Endpoint local_;
  netsim::Endpoint peer_;
  std::uint32_t conn_id_;
  TcpMessageCore core_;
};

// Listening socket: demuxes segments to per-(peer, conn_id) server conns.
class TcpListener {
 public:
  using AcceptHandler = std::function<void(TcpServerConn&)>;

  TcpListener(netsim::Network& net, netsim::Endpoint local);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  void on_accept(AcceptHandler h) { on_accept_ = std::move(h); }

  // Fired just before a connection is torn down (peer FIN) so owners of
  // per-connection state can release it.
  void on_close(AcceptHandler h) { on_close_ = std::move(h); }

  // Failure injection (driven by the resolver availability model):
  // refuse_probability -> RST in response to SYN ("connection refused");
  // drop_syn_probability -> SYN silently ignored ("connection timeout").
  // Both are sampled per incoming SYN.
  void set_refuse(bool refuse) noexcept { refuse_probability_ = refuse ? 1.0 : 0.0; }
  void set_refuse_probability(double p) noexcept { refuse_probability_ = p; }
  void set_drop_syn_probability(double p) noexcept { drop_syn_probability_ = p; }

  [[nodiscard]] std::size_t connection_count() const noexcept { return conns_.size(); }

 private:
  void handle_datagram(const netsim::Datagram& d);

  netsim::Network& net_;
  netsim::Endpoint local_;
  AcceptHandler on_accept_;
  AcceptHandler on_close_;
  double refuse_probability_ = 0.0;
  double drop_syn_probability_ = 0.0;
  std::uint64_t salt_ = 0;  // per-listener seed for the per-attempt failure hash
  // Hot per-segment lookup; point access only (never iterated), so a hashed
  // map keyed by (peer endpoint, peer port generation) is order-safe.
  struct ConnKeyHash {
    std::size_t operator()(const std::pair<netsim::Endpoint, std::uint32_t>& k) const noexcept {
      return netsim::EndpointHash{}(k.first) ^ (std::hash<std::uint32_t>{}(k.second) << 1);
    }
  };
  std::unordered_map<std::pair<netsim::Endpoint, std::uint32_t>, std::unique_ptr<TcpServerConn>,
                     ConnKeyHash>
      conns_;
};

}  // namespace ednsm::transport
