#include "transport/tls.h"

#include "dns/wire.h"
#include "obs/trace.h"

namespace ednsm::transport {

namespace {

// Handshake message discriminators inside TlsContentType::Handshake records.
enum class HsType : std::uint8_t {
  ClientHello = 1,
  ServerHelloFinished = 2,  // SH..Fin flight collapsed into one marker
  NewSessionTicket = 4,
  ClientFinished = 20,
};

struct ClientHello {
  TlsMode mode = TlsMode::Full;
  std::string sni;
  std::uint64_t ticket_id = 0;  // valid for Resume/EarlyData
  util::Bytes early_data;

  [[nodiscard]] util::Bytes encode() const {
    dns::WireWriter w;
    w.u8(static_cast<std::uint8_t>(HsType::ClientHello));
    w.u8(static_cast<std::uint8_t>(mode));
    w.u8(static_cast<std::uint8_t>(sni.size()));
    w.bytes(std::span(reinterpret_cast<const std::uint8_t*>(sni.data()), sni.size()));
    w.u32(static_cast<std::uint32_t>(ticket_id >> 32));
    w.u32(static_cast<std::uint32_t>(ticket_id & 0xffffffffULL));
    w.bytes(early_data);
    return std::move(w).take();
  }

  [[nodiscard]] static Result<ClientHello> decode(std::span<const std::uint8_t> wire) {
    dns::WireReader r(wire);
    ClientHello ch;
    auto hs = r.u8();
    if (!hs || hs.value() != static_cast<std::uint8_t>(HsType::ClientHello)) {
      return Err{std::string("tls: not a ClientHello")};
    }
    auto mode = r.u8();
    if (!mode || mode.value() > 2) return Err{std::string("tls: bad mode")};
    ch.mode = static_cast<TlsMode>(mode.value());
    auto sni_len = r.u8();
    if (!sni_len) return Err{std::string("tls: truncated SNI")};
    auto sni = r.view(sni_len.value());
    if (!sni) return Err{std::string("tls: truncated SNI")};
    ch.sni.assign(reinterpret_cast<const char*>(sni.value().data()), sni.value().size());
    auto hi = r.u32();
    auto lo = r.u32();
    if (!hi || !lo) return Err{std::string("tls: truncated ticket")};
    ch.ticket_id = (static_cast<std::uint64_t>(hi.value()) << 32) | lo.value();
    auto early = r.bytes(r.remaining());
    if (!early) return Err{std::string("tls: truncated early data")};
    ch.early_data = std::move(early).value();
    return ch;
  }
};

struct ServerFlight {
  bool early_data_accepted = false;
  std::uint64_t ticket_id = 0;
  std::string certificate_name;

  [[nodiscard]] util::Bytes encode() const {
    dns::WireWriter w;
    w.u8(static_cast<std::uint8_t>(HsType::ServerHelloFinished));
    w.u8(early_data_accepted ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(ticket_id >> 32));
    w.u32(static_cast<std::uint32_t>(ticket_id & 0xffffffffULL));
    w.u8(static_cast<std::uint8_t>(certificate_name.size()));
    w.bytes(std::span(reinterpret_cast<const std::uint8_t*>(certificate_name.data()),
                      certificate_name.size()));
    return std::move(w).take();
  }

  [[nodiscard]] static Result<ServerFlight> decode(std::span<const std::uint8_t> wire) {
    dns::WireReader r(wire);
    ServerFlight sf;
    auto hs = r.u8();
    if (!hs || hs.value() != static_cast<std::uint8_t>(HsType::ServerHelloFinished)) {
      return Err{std::string("tls: not a server flight")};
    }
    auto early = r.u8();
    if (!early) return Err{std::string("tls: truncated server flight")};
    sf.early_data_accepted = early.value() != 0;
    auto hi = r.u32();
    auto lo = r.u32();
    if (!hi || !lo) return Err{std::string("tls: truncated ticket")};
    sf.ticket_id = (static_cast<std::uint64_t>(hi.value()) << 32) | lo.value();
    auto name_len = r.u8();
    if (!name_len) return Err{std::string("tls: truncated cert name")};
    auto name = r.view(name_len.value());
    if (!name) return Err{std::string("tls: truncated cert name")};
    sf.certificate_name.assign(reinterpret_cast<const char*>(name.value().data()),
                               name.value().size());
    return sf;
  }
};

}  // namespace

// ---- record codec -----------------------------------------------------------

util::Bytes TlsRecord::encode() const {
  dns::WireWriter w;
  w.reserve(21 + payload.size());  // header + payload + AEAD tag
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(0x0303);  // legacy_record_version, as TLS 1.3 puts on the wire
  w.u16(static_cast<std::uint16_t>(payload.size() + 16));  // + AEAD tag
  w.bytes(payload);
  for (int i = 0; i < 16; ++i) w.u8(0xAA);  // simulated AEAD tag bytes
  return std::move(w).take();
}

Result<TlsRecord> TlsRecord::decode(std::span<const std::uint8_t> wire) {
  dns::WireReader r(wire);
  TlsRecord rec;
  auto type = r.u8();
  if (!type) return Err{std::string("tls: truncated record")};
  if (type.value() != 21 && type.value() != 22 && type.value() != 23) {
    return Err{std::string("tls: unknown content type")};
  }
  rec.type = static_cast<TlsContentType>(type.value());
  auto version = r.u16();
  if (!version || version.value() != 0x0303) return Err{std::string("tls: bad version")};
  auto len = r.u16();
  if (!len || len.value() < 16) return Err{std::string("tls: bad length")};
  auto body = r.bytes(static_cast<std::size_t>(len.value()) - 16);
  if (!body) return Err{std::string("tls: truncated payload")};
  auto tag = r.bytes(16);
  if (!tag) return Err{std::string("tls: truncated tag")};
  if (!r.at_end()) return Err{std::string("tls: trailing bytes")};
  rec.payload = std::move(body).value();
  return rec;
}

// ---- client ----------------------------------------------------------------

TlsClient::TlsClient(TcpConnection& conn, TlsClientConfig config)
    : conn_(conn), config_(std::move(config)) {
  conn_.on_message([this](util::Bytes raw) { handle_message(std::move(raw)); });
}

void TlsClient::handshake(TlsMode mode, std::optional<SessionTicket> ticket,
                          util::Bytes early_data, HandshakeCallback cb) {
  handshake_cb_ = std::move(cb);
  mode_ = mode;
  handshake_started_ = conn_.queue().now();

  if (mode != TlsMode::Full) {
    if (!ticket.has_value() || ticket->server_name != config_.server_name) {
      auto hcb = std::move(handshake_cb_);
      handshake_cb_ = nullptr;
      hcb(Err{std::string("tls: resumption requested without a valid ticket")});
      return;
    }
  }

  ClientHello ch;
  ch.mode = mode;
  ch.sni = config_.server_name;
  ch.ticket_id = ticket.has_value() ? ticket->id : 0;
  if (mode == TlsMode::EarlyData) ch.early_data = std::move(early_data);

  TlsRecord rec;
  rec.type = TlsContentType::Handshake;
  rec.payload = ch.encode();
  conn_.send_message(rec.encode());
}

void TlsClient::send(util::Bytes app_data) {
  TlsRecord rec;
  rec.type = TlsContentType::ApplicationData;
  rec.payload = std::move(app_data);
  conn_.send_message(rec.encode());
}

void TlsClient::on_data(RecordHandler h) {
  on_data_ = std::move(h);
  if (on_data_ && !pending_data_.empty()) {
    std::vector<util::Bytes> drained;
    drained.swap(pending_data_);
    for (util::Bytes& data : drained) on_data_(std::move(data));
  }
}

void TlsClient::handle_message(util::Bytes raw) {
  auto rec_r = TlsRecord::decode(raw);
  if (!rec_r) return;  // garbage record: drop
  TlsRecord& rec = rec_r.value();

  if (rec.type == TlsContentType::Alert) {
    OBS_EVENT(conn_.queue(), "transport", "tls-alert");
    if (handshake_cb_) {
      auto cb = std::move(handshake_cb_);
      handshake_cb_ = nullptr;
      cb(Err{std::string("tls: handshake alert from server")});
    }
    return;
  }

  if (rec.type == TlsContentType::Handshake) {
    auto sf_r = ServerFlight::decode(rec.payload);
    if (!sf_r) return;
    const ServerFlight& sf = sf_r.value();

    if (sf.certificate_name != config_.server_name) {
      if (handshake_cb_) {
        auto cb = std::move(handshake_cb_);
        handshake_cb_ = nullptr;
        cb(Err{std::string("tls: certificate name mismatch (got '") +
               sf.certificate_name + "', wanted '" + config_.server_name + "')"});
      }
      return;
    }

    established_ = true;
    handshake_duration_ = conn_.queue().now() - handshake_started_;
    OBS_COMPLETE(conn_.queue(), "transport", "tls-handshake", handshake_started_,
                 handshake_duration_);
    // Client Finished rides with (or just before) the first app record; send
    // it explicitly so the server-side state machine is honest.
    TlsRecord fin;
    fin.type = TlsContentType::Handshake;
    dns::WireWriter w;
    w.u8(static_cast<std::uint8_t>(HsType::ClientFinished));
    fin.payload = std::move(w).take();
    conn_.send_message(fin.encode());

    if (handshake_cb_) {
      TlsHandshakeInfo info;
      info.mode = mode_;
      info.early_data_accepted = sf.early_data_accepted;
      info.ticket = SessionTicket{sf.ticket_id, config_.server_name};
      auto cb = std::move(handshake_cb_);
      handshake_cb_ = nullptr;
      cb(info);
    }
    return;
  }

  // Application data; buffered if no handler is installed yet.
  if (on_data_) {
    on_data_(std::move(rec.payload));
  } else {
    pending_data_.push_back(std::move(rec.payload));
  }
}

// ---- server ----------------------------------------------------------------

TlsServerSession::TlsServerSession(netsim::EventQueue& queue, netsim::Rng& rng,
                                   TcpServerConn& conn, TlsServerConfig config)
    : queue_(queue),
      rng_(rng),
      conn_(conn),
      config_(std::move(config)),
      next_ticket_id_(rng_.next_u64() | 1) {
  conn_.on_message([this](util::Bytes raw) { handle_message(std::move(raw)); });
}

TlsServerSession::~TlsServerSession() { alive_.reset(); }

void TlsServerSession::send(util::Bytes app_data) {
  TlsRecord rec;
  rec.type = TlsContentType::ApplicationData;
  rec.payload = std::move(app_data);
  conn_.send_message(rec.encode());
}

void TlsServerSession::handle_message(util::Bytes raw) {
  auto rec_r = TlsRecord::decode(raw);
  if (!rec_r) return;
  TlsRecord& rec = rec_r.value();

  if (rec.type == TlsContentType::Handshake) {
    if (!rec.payload.empty() &&
        rec.payload[0] == static_cast<std::uint8_t>(HsType::ClientFinished)) {
      return;  // handshake bookkeeping only
    }
    auto ch_r = ClientHello::decode(rec.payload);
    if (!ch_r) return;
    ClientHello& ch = ch_r.value();

    if (config_.handshake_failure_probability > 0.0 &&
        rng_.bernoulli(config_.handshake_failure_probability)) {
      TlsRecord alert;
      alert.type = TlsContentType::Alert;
      alert.payload = {0x02, 0x28};  // fatal, handshake_failure
      conn_.send_message(alert.encode());
      return;
    }

    bool sni_ok = false;
    for (const std::string& name : config_.certificate_names) {
      if (name == ch.sni) {
        sni_ok = true;
        break;
      }
    }
    std::string sni = ch.sni;

    // A PSK requires a ticket; treat ticket 0 as absent and fall back to full.
    TlsMode mode = ch.mode;
    if (mode != TlsMode::Full && ch.ticket_id == 0) mode = TlsMode::Full;

    const double cpu_ms =
        (mode == TlsMode::Full)
            ? rng_.exponential(config_.handshake_cpu_ms)
            : rng_.exponential(config_.resume_cpu_ms);
    util::Bytes early = std::move(ch.early_data);
    queue_.schedule(netsim::from_ms(cpu_ms),
                    [this, alive = std::weak_ptr<bool>(alive_), mode,
                     early = std::move(early), sni_ok, sni = std::move(sni)]() mutable {
                      if (alive.expired()) return;  // session torn down mid-handshake
                      complete_handshake(mode, std::move(early), sni_ok, sni);
                    });
    return;
  }

  if (rec.type == TlsContentType::ApplicationData) {
    if (established_ && on_data_) on_data_(std::move(rec.payload));
    return;
  }
}

void TlsServerSession::complete_handshake(TlsMode mode, util::Bytes early_data, bool sni_ok,
                                          const std::string& sni) {
  ServerFlight sf;
  sf.early_data_accepted =
      mode == TlsMode::EarlyData && config_.accept_early_data && !early_data.empty();
  sf.ticket_id = next_ticket_id_++;
  // On an SNI match the certificate presents the requested name; on a
  // mismatch the client sees the certificate we actually hold and rejects
  // it — mirroring real deployments.
  sf.certificate_name = sni_ok ? sni
                        : config_.certificate_names.empty()
                            ? std::string("invalid.example")
                            : config_.certificate_names.front();

  established_ = true;
  TlsRecord rec;
  rec.type = TlsContentType::Handshake;
  rec.payload = sf.encode();
  conn_.send_message(rec.encode());

  if (sf.early_data_accepted && on_data_) on_data_(std::move(early_data));
}

}  // namespace ednsm::transport
