// TLS 1.3 session simulation over the message-level TCP layer.
//
// Faithful parts: the handshake costs exactly one round trip before
// application data flows (full and PSK-resumed modes), 0-RTT early data
// rides with the ClientHello, the server charges asymmetric-crypto CPU time
// on full handshakes, tickets enable resumption, SNI is carried and verified
// against the server's certificate names, and record framing adds the real
// 5-byte header + 16-byte AEAD tag to every record's wire size.
//
// Not implemented (documented substitution): actual cryptography. Records are
// framed but not encrypted — the toolkit measures timing and availability,
// not confidentiality, and the simulated adversary model doesn't exist.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "netsim/time.h"
#include "transport/tcp.h"
#include "util/result.h"

namespace ednsm::transport {

enum class TlsMode : std::uint8_t {
  Full = 0,       // fresh handshake: 1 RTT + full server crypto
  Resume = 1,     // PSK resumption: 1 RTT, cheap crypto
  EarlyData = 2,  // PSK + 0-RTT: application data in the first flight
};

struct SessionTicket {
  std::uint64_t id = 0;
  std::string server_name;  // ticket is only valid for the issuing server

  [[nodiscard]] bool operator==(const SessionTicket&) const = default;
};

struct TlsHandshakeInfo {
  TlsMode mode = TlsMode::Full;
  bool early_data_accepted = false;
  std::optional<SessionTicket> ticket;  // issued by the server for next time
};

// TLS record framing (content type + length; AEAD tag accounted in size).
enum class TlsContentType : std::uint8_t {
  Handshake = 22,
  ApplicationData = 23,
  Alert = 21,
};

struct TlsRecord {
  TlsContentType type = TlsContentType::Handshake;
  util::Bytes payload;

  [[nodiscard]] util::Bytes encode() const;
  [[nodiscard]] static Result<TlsRecord> decode(std::span<const std::uint8_t> wire);
};

inline constexpr std::size_t kTlsRecordOverhead = 5 + 16;  // header + AEAD tag

// ---- client ----------------------------------------------------------------

struct TlsClientConfig {
  std::string server_name;  // SNI; must match a certificate name on the server
};

class TlsClient {
 public:
  using HandshakeCallback = std::function<void(Result<TlsHandshakeInfo>)>;
  using RecordHandler = std::function<void(util::Bytes)>;

  // The client does not own the TCP connection (the pool does).
  TlsClient(TcpConnection& conn, TlsClientConfig config);

  // Start the handshake; `ticket` is required for Resume/EarlyData, and
  // `early_data` only meaningful with EarlyData. Callback fires exactly once.
  void handshake(TlsMode mode, std::optional<SessionTicket> ticket,
                 util::Bytes early_data, HandshakeCallback cb);

  // Send application data (only after the handshake completed).
  void send(util::Bytes app_data);

  // Records that arrive while no handler is installed (e.g. a 0-RTT response
  // racing the handshake-completion callback under reordering) are buffered
  // and flushed when the handler is set.
  void on_data(RecordHandler h);

  [[nodiscard]] bool established() const noexcept { return established_; }

  // Phase stamp: ClientHello sent -> ServerFlight accepted (zero until
  // established). Feeds QueryTiming::tls_handshake through the pool lease.
  [[nodiscard]] netsim::SimDuration handshake_duration() const noexcept {
    return handshake_duration_;
  }

 private:
  void handle_message(util::Bytes raw);

  TcpConnection& conn_;
  TlsClientConfig config_;
  HandshakeCallback handshake_cb_;
  RecordHandler on_data_;
  TlsMode mode_ = TlsMode::Full;
  bool established_ = false;
  netsim::SimTime handshake_started_{0};
  netsim::SimDuration handshake_duration_{0};
  std::vector<util::Bytes> pending_data_;  // records received before on_data()
};

// ---- server ----------------------------------------------------------------

struct TlsServerConfig {
  std::vector<std::string> certificate_names;  // acceptable SNI values
  double handshake_cpu_ms = 0.6;    // full-handshake asymmetric crypto cost
  double resume_cpu_ms = 0.08;      // PSK path
  double handshake_failure_probability = 0.0;  // alert instead of ServerHello
  bool accept_early_data = true;
};

// Wraps one accepted TCP server connection; answers handshakes and delivers
// decrypted application data. The resolver server owns one per connection.
class TlsServerSession {
 public:
  using DataHandler = std::function<void(util::Bytes)>;

  TlsServerSession(netsim::EventQueue& queue, netsim::Rng& rng, TcpServerConn& conn,
                   TlsServerConfig config);
  ~TlsServerSession();

  void on_data(DataHandler h) { on_data_ = std::move(h); }
  void send(util::Bytes app_data);

  [[nodiscard]] bool established() const noexcept { return established_; }

 private:
  void handle_message(util::Bytes raw);
  void complete_handshake(TlsMode mode, util::Bytes early_data, bool sni_ok,
                          const std::string& sni);

  netsim::EventQueue& queue_;
  netsim::Rng& rng_;
  TcpServerConn& conn_;
  TlsServerConfig config_;
  DataHandler on_data_;
  bool established_ = false;
  std::uint64_t next_ticket_id_;
  // Guards the deferred handshake-completion event against session teardown.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace ednsm::transport
