#include "transport/udp.h"

namespace ednsm::transport {

UdpSocket::UdpSocket(netsim::Network& net, netsim::Endpoint local)
    : net_(net), local_(local) {
  net_.bind(local_, [this](const netsim::Datagram& d) {
    if (handler_) handler_(d);
  });
}

UdpSocket::~UdpSocket() { net_.unbind(local_); }

void UdpSocket::on_receive(ReceiveHandler handler) { handler_ = std::move(handler); }

void UdpSocket::send_to(const netsim::Endpoint& dst, util::Bytes payload) {
  net_.send(netsim::Datagram{local_, dst, std::move(payload)});
}


}  // namespace ednsm::transport
