// UDP socket over the simulated network: bind a local endpoint, send
// datagrams, receive via callback. Do53 runs on this directly.
#pragma once

#include <functional>

#include "netsim/network.h"

namespace ednsm::transport {

class UdpSocket {
 public:
  using ReceiveHandler = std::function<void(const netsim::Datagram&)>;

  // Binds immediately; unbinds on destruction (RAII).
  UdpSocket(netsim::Network& net, netsim::Endpoint local);
  ~UdpSocket();

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  void on_receive(ReceiveHandler handler);
  void send_to(const netsim::Endpoint& dst, util::Bytes payload);

  [[nodiscard]] const netsim::Endpoint& local() const noexcept { return local_; }

 private:
  netsim::Network& net_;
  netsim::Endpoint local_;
  ReceiveHandler handler_;
};


}  // namespace ednsm::transport
