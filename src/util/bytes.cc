#include "util/bytes.h"

namespace ednsm::util {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

bool from_hex(std::string_view hex, Bytes& out) {
  if (hex.size() % 2 != 0) return false;
  out.clear();
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return true;
}

std::string as_string(std::span<const std::uint8_t> data) {
  return std::string(reinterpret_cast<const char*>(data.data()), data.size());
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace ednsm::util
