// Byte-sequence helpers used by the wire codecs and test assertions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ednsm::util {

using Bytes = std::vector<std::uint8_t>;

// Lowercase hex dump, no separators: {0xde, 0xad} -> "dead".
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> data);

// Inverse of to_hex; returns false on odd length or non-hex characters.
[[nodiscard]] bool from_hex(std::string_view hex, Bytes& out);

// Interpret a byte span as text (for HTTP bodies and test assertions).
[[nodiscard]] std::string as_string(std::span<const std::uint8_t> data);

// Copy text into a byte vector.
[[nodiscard]] Bytes to_bytes(std::string_view s);

// FNV-1a 64-bit hash; used for deterministic per-key jitter seeds.
[[nodiscard]] std::uint64_t fnv1a(std::string_view s) noexcept;

}  // namespace ednsm::util
