#include "util/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace ednsm::util {

namespace {

std::string errno_message(const char* step, const std::string& path) {
  return std::string(step) + " failed for " + path + ": " + std::strerror(errno);
}

// fsync the directory containing `path` so the rename itself is durable.
// Best-effort: some filesystems reject O_RDONLY directory fsync; the rename
// atomicity (the property partial-write safety rests on) is unaffected.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

Result<void> write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Err{errno_message("open", tmp)};

  std::size_t written = 0;
  while (written < content.size()) {
    const ::ssize_t n = ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Err{errno_message("write", tmp)};
    }
    written += static_cast<std::size_t>(n);
  }

  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Err{errno_message("fsync", tmp)};
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Err{errno_message("close", tmp)};
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Err{errno_message("rename", path)};
  }
  sync_parent_dir(path);
  return {};
}

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Err{"cannot open " + path};
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Err{"read failed for " + path};
  return std::move(buf).str();
}

}  // namespace ednsm::util
