// Crash-safe file output. Shard files are consumed by a separate process
// (ednsm_merge), possibly from a network drive mid-campaign, so a partially
// written file must never be observable at its final path: write to a
// temporary sibling, fsync, then atomically rename into place.
#pragma once

#include <string>
#include <string_view>

#include "util/result.h"

namespace ednsm::util {

// Writes `content` to `path` atomically: the data lands in `path + ".tmp.<pid>"`
// first, is fsync'd, and is renamed over `path` (POSIX rename is atomic within
// a filesystem). On any failure the temp file is unlinked and an error
// describing the failing step is returned; `path` is either fully written or
// untouched, never truncated.
[[nodiscard]] Result<void> write_file_atomic(const std::string& path, std::string_view content);

// Reads the entire file into a string; errors (with the failing path) when
// the file cannot be opened or read.
[[nodiscard]] Result<std::string> read_file(const std::string& path);

}  // namespace ednsm::util
