// InternTable: a tiny append-only symbol table mapping strings (vantage ids,
// resolver hostnames) to dense u32 symbols.
//
// Campaign post-processing groups hundreds of thousands of records by
// (vantage, resolver); comparing interned symbols (one integer compare, and
// two symbols pack into a u64 map key) replaces per-record std::string
// compares and pair<string,string> key copies on the accumulation path.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace ednsm::util {

class InternTable {
 public:
  using Symbol = std::uint32_t;

  InternTable() = default;

  // The index keys are string_views into names_, so copies must rebuild the
  // index over their own storage. Moves are safe as-is: deque move steals the
  // underlying buffers without relocating the strings the views point at.
  InternTable(const InternTable& other) : names_(other.names_) { rebuild_index(); }
  InternTable& operator=(const InternTable& other) {
    if (this != &other) {
      names_ = other.names_;
      rebuild_index();
    }
    return *this;
  }
  InternTable(InternTable&&) noexcept = default;
  InternTable& operator=(InternTable&&) = default;

  // Returns the symbol for `s`, interning it on first sight. Symbols are
  // assigned densely in first-intern order, so a table fed the same strings
  // in the same order yields the same symbols (determinism matters: symbols
  // feed sorted/merged outputs).
  Symbol intern(std::string_view s) {
    const auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    const Symbol sym = static_cast<Symbol>(names_.size());
    // deque never relocates elements, so the string_view key stays valid.
    const std::string& stored = names_.emplace_back(s);
    index_.emplace(std::string_view(stored), sym);
    return sym;
  }

  // Lookup without interning; nullopt when never seen.
  [[nodiscard]] std::optional<Symbol> find(std::string_view s) const {
    const auto it = index_.find(s);
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] const std::string& name(Symbol sym) const { return names_.at(sym); }

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

  // Pack two symbols into one map key (vantage-major).
  [[nodiscard]] static constexpr std::uint64_t pair_key(Symbol a, Symbol b) noexcept {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

 private:
  void rebuild_index() {
    index_.clear();
    index_.reserve(names_.size());
    for (std::size_t i = 0; i < names_.size(); ++i) {
      index_.emplace(std::string_view(names_[i]), static_cast<Symbol>(i));
    }
  }

  std::deque<std::string> names_;
  std::unordered_map<std::string_view, Symbol> index_;
};

}  // namespace ednsm::util

// Source-compatibility alias: InternTable lived in core/ until the layering
// refactor moved it to the bottom layer (see tools/lint/layers.conf). New
// code should spell ednsm::util::InternTable.
namespace ednsm::core {
using util::InternTable;
}  // namespace ednsm::core
