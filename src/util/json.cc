#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace ednsm::util {

namespace {

const Json kNull{};

void dump_impl(const Json& j, std::string& out, int indent, int depth);

void append_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

void dump_number(double d, std::string& out) {
  if (std::isnan(d) || std::isinf(d)) {
    out.append("null");  // JSON has no NaN/Inf; null is the least-wrong choice
    return;
  }
  // Integers print without a decimal point; everything else round-trips.
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out.append(buf);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out.append(buf);
}

void dump_impl(const Json& j, std::string& out, int indent, int depth) {
  if (j.is_null()) {
    out.append("null");
  } else if (j.is_bool()) {
    out.append(j.as_bool() ? "true" : "false");
  } else if (j.is_number()) {
    dump_number(j.as_number(), out);
  } else if (j.is_string()) {
    out.push_back('"');
    out.append(json_escape(j.as_string()));
    out.push_back('"');
  } else if (j.is_array()) {
    const JsonArray& arr = j.as_array();
    if (arr.empty()) {
      out.append("[]");
      return;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i != 0) out.push_back(',');
      append_indent(out, indent, depth + 1);
      dump_impl(arr[i], out, indent, depth + 1);
    }
    append_indent(out, indent, depth);
    out.push_back(']');
  } else {
    const JsonObject& obj = j.as_object();
    if (obj.empty()) {
      out.append("{}");
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [k, v] : obj) {
      if (!first) out.push_back(',');
      first = false;
      append_indent(out, indent, depth + 1);
      out.push_back('"');
      out.append(json_escape(k));
      out.append(indent > 0 ? "\": " : "\":");
      dump_impl(v, out, indent, depth + 1);
    }
    append_indent(out, indent, depth);
    out.push_back('}');
  }
}

// ---- parser -----------------------------------------------------------------

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  [[nodiscard]] Result<Json> value() {
    skip_ws();
    if (pos >= text.size()) return Err{std::string("json: unexpected end")};
    const char c = text[pos];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      auto s = string();
      if (!s) return Err{s.error()};
      return Json(std::move(s).value());
    }
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      if (text.substr(pos, 4) == "null") {
        pos += 4;
        return Json(nullptr);
      }
      return Err{std::string("json: bad literal")};
    }
    return number();
  }

  [[nodiscard]] Result<Json> boolean() {
    if (text.substr(pos, 4) == "true") {
      pos += 4;
      return Json(true);
    }
    if (text.substr(pos, 5) == "false") {
      pos += 5;
      return Json(false);
    }
    return Err{std::string("json: bad literal")};
  }

  [[nodiscard]] Result<Json> number() {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' || text[pos] == 'e' ||
            text[pos] == 'E' || text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) return Err{std::string("json: expected value")};
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Err{std::string("json: bad number")};
    return Json(d);
  }

  [[nodiscard]] Result<std::string> string() {
    if (!eat('"')) return Err{std::string("json: expected string")};
    std::string out;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos >= text.size()) break;
        const char e = text[pos++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos + 4 > text.size()) return Err{std::string("json: bad \\u escape")};
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Err{std::string("json: bad \\u escape")};
            }
            // Encode as UTF-8 (BMP only; surrogate pairs unsupported).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Err{std::string("json: bad escape")};
        }
      } else {
        out.push_back(c);
      }
    }
    return Err{std::string("json: unterminated string")};
  }

  [[nodiscard]] Result<Json> array() {
    if (!eat('[')) return Err{std::string("json: expected array")};
    JsonArray arr;
    skip_ws();
    if (eat(']')) return Json(std::move(arr));
    while (true) {
      auto v = value();
      if (!v) return Err{v.error()};
      arr.push_back(std::move(v).value());
      skip_ws();
      if (eat(']')) return Json(std::move(arr));
      if (!eat(',')) return Err{std::string("json: expected ',' in array")};
    }
  }

  [[nodiscard]] Result<Json> object() {
    if (!eat('{')) return Err{std::string("json: expected object")};
    JsonObject obj;
    skip_ws();
    if (eat('}')) return Json(std::move(obj));
    while (true) {
      skip_ws();
      auto key = string();
      if (!key) return Err{key.error()};
      skip_ws();
      if (!eat(':')) return Err{std::string("json: expected ':'")};
      auto v = value();
      if (!v) return Err{v.error()};
      obj.emplace(std::move(key).value(), std::move(v).value());
      skip_ws();
      if (eat('}')) return Json(std::move(obj));
      if (!eat(',')) return Err{std::string("json: expected ',' in object")};
    }
  }
};

}  // namespace

const Json& Json::at(const std::string& key) const {
  if (!is_object()) return kNull;
  const auto it = as_object().find(key);
  return it == as_object().end() ? kNull : it->second;
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(*this, out, indent, 0);
  return out;
}

Result<Json> Json::parse(std::string_view text) {
  Parser p{text};
  auto v = p.value();
  if (!v) return Err{v.error()};
  p.skip_ws();
  if (p.pos != text.size()) return Err{std::string("json: trailing characters")};
  return v;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\b': out.append("\\b"); break;
      case '\f': out.append("\\f"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace ednsm::util
