// Minimal JSON document model, writer, and parser.
//
// The paper's tool "writes the results to a JSON file"; this is that layer,
// implemented from scratch (no third-party dependencies are available in the
// build environment). Supports the full JSON grammar except for \u escapes
// beyond the BMP-ASCII range (emitted as-is; parsed literally), which the
// result schema never produces.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/result.h"

namespace ednsm::util {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;  // sorted keys: stable output

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::uint64_t u) : value_(static_cast<double>(u)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(value_); }
  [[nodiscard]] bool is_bool() const noexcept { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_number() const noexcept { return std::holds_alternative<double>(value_); }
  [[nodiscard]] bool is_string() const noexcept { return std::holds_alternative<std::string>(value_); }
  [[nodiscard]] bool is_array() const noexcept { return std::holds_alternative<JsonArray>(value_); }
  [[nodiscard]] bool is_object() const noexcept { return std::holds_alternative<JsonObject>(value_); }

  // Typed accessors; throw std::bad_variant_access on type mismatch (caller bug).
  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] double as_number() const { return std::get<double>(value_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(value_); }
  [[nodiscard]] const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  [[nodiscard]] JsonArray& as_array() { return std::get<JsonArray>(value_); }
  [[nodiscard]] const JsonObject& as_object() const { return std::get<JsonObject>(value_); }
  [[nodiscard]] JsonObject& as_object() { return std::get<JsonObject>(value_); }

  // Object field access; returns null Json for missing keys.
  [[nodiscard]] const Json& at(const std::string& key) const;

  [[nodiscard]] bool operator==(const Json&) const = default;

  // Serialize. indent 0 = compact; otherwise pretty-printed.
  [[nodiscard]] std::string dump(int indent = 0) const;

  [[nodiscard]] static Result<Json> parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

// Escape a string per JSON rules (quotes not included).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace ednsm::util

// Source-compatibility aliases: the JSON model lived in core/ until the
// layering refactor moved it to the bottom layer (obs and other near-leaf
// modules persist structured data; see tools/lint/layers.conf). New code
// should spell ednsm::util::Json.
namespace ednsm::core {
using util::Json;
using util::JsonArray;
using util::JsonObject;
using util::json_escape;
}  // namespace ednsm::core
