// Result<T, E>: a minimal std::expected work-alike for recoverable errors.
//
// libstdc++ shipped with GCC 12 does not provide std::expected under C++20,
// so the toolkit carries its own. The API intentionally mirrors the subset of
// std::expected we use: has_value / value / error / value_or / map / and_then,
// plus Err<E> as the unexpected-value carrier.
//
// Exceptions are reserved for programming errors (contract violations);
// everything recoverable — malformed wire data, connection failures, HTTP
// errors — travels through Result.
#pragma once

#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace ednsm {

// Wrapper distinguishing an error value from a success value when the two
// types coincide (e.g. Result<std::string, std::string>).
template <typename E>
struct Err {
  E value;
};

template <typename E>
Err(E) -> Err<E>;

// Thrown only when value()/error() is called on the wrong alternative:
// that is a caller bug, not a recoverable condition.
class BadResultAccess : public std::logic_error {
 public:
  explicit BadResultAccess(const char* what) : std::logic_error(what) {}
};

template <typename T, typename E = std::string>
class [[nodiscard]] Result {
 public:
  using value_type = T;
  using error_type = E;

  // Implicit from both alternatives keeps call sites terse:
  //   return parsed_message;          // success
  //   return Err{"short header"s};    // failure
  Result(T value) : repr_(std::in_place_index<0>, std::move(value)) {}
  Result(Err<E> error) : repr_(std::in_place_index<1>, std::move(error.value)) {}

  [[nodiscard]] bool has_value() const noexcept { return repr_.index() == 0; }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] T& value() & {
    if (!has_value()) throw BadResultAccess("Result::value() on error");
    return std::get<0>(repr_);
  }
  [[nodiscard]] const T& value() const& {
    if (!has_value()) throw BadResultAccess("Result::value() on error");
    return std::get<0>(repr_);
  }
  [[nodiscard]] T&& value() && {
    if (!has_value()) throw BadResultAccess("Result::value() on error");
    return std::get<0>(std::move(repr_));
  }

  [[nodiscard]] E& error() & {
    if (has_value()) throw BadResultAccess("Result::error() on value");
    return std::get<1>(repr_);
  }
  [[nodiscard]] const E& error() const& {
    if (has_value()) throw BadResultAccess("Result::error() on value");
    return std::get<1>(repr_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return has_value() ? std::get<0>(repr_) : std::move(fallback);
  }

  // map: transform the success value, propagate the error untouched.
  template <typename F>
  [[nodiscard]] auto map(F&& f) const& -> Result<std::invoke_result_t<F, const T&>, E> {
    if (has_value()) return f(std::get<0>(repr_));
    return Err<E>{std::get<1>(repr_)};
  }

  // and_then: chain an operation that itself may fail.
  template <typename F>
  [[nodiscard]] auto and_then(F&& f) const& -> std::invoke_result_t<F, const T&> {
    using R = std::invoke_result_t<F, const T&>;
    static_assert(std::is_same_v<typename R::error_type, E>,
                  "and_then must preserve the error type");
    if (has_value()) return f(std::get<0>(repr_));
    return Err<E>{std::get<1>(repr_)};
  }

 private:
  std::variant<T, E> repr_;
};

// Result<void, E> specialization: success carries no payload.
template <typename E>
class [[nodiscard]] Result<void, E> {
 public:
  using value_type = void;
  using error_type = E;

  Result() : error_(), ok_(true) {}
  Result(Err<E> error) : error_(std::move(error.value)), ok_(false) {}

  [[nodiscard]] bool has_value() const noexcept { return ok_; }
  explicit operator bool() const noexcept { return ok_; }

  [[nodiscard]] const E& error() const& {
    if (ok_) throw BadResultAccess("Result<void>::error() on value");
    return error_;
  }

 private:
  E error_;
  bool ok_;
};

}  // namespace ednsm
