// Optional instrumentation sink for SpscRing — the util-layer half of the
// runtime telemetry split (see src/obs/runtime.h for the aggregation half and
// DESIGN.md "Runtime telemetry and clock domains").
//
// util sits at the bottom of the module DAG and must not depend on obs, so
// the ring exposes only a plain bag of relaxed atomic counters that either
// side of the ring bumps when a sink is attached. Wall time never enters
// util: stall *durations* are measured only when the owner injects a
// monotonic-clock reader (`now_ns`, typically obs::runtime_now_ns), so the
// header stays clock-free and the deterministic simulation cannot observe
// any of it.
//
// Counters are advisory telemetry, not synchronization: every access is
// memory_order_relaxed, values are monotone (except max_occupancy, which
// only its producer updates), and a ring with no sink attached pays exactly
// one null-pointer check per operation.
#pragma once

#include <atomic>
#include <cstdint>

namespace ednsm::util {

struct RingStatSink {
  // Successful handoffs (one per item through the ring).
  std::atomic<std::uint64_t> pushes{0};
  std::atomic<std::uint64_t> pops{0};
  // Yield spins inside the blocking push()/pop() loops: the producer found
  // the ring full / the consumer found it empty-but-open.
  std::atomic<std::uint64_t> push_stall_spins{0};
  std::atomic<std::uint64_t> pop_stall_spins{0};
  // Wall nanoseconds spent inside those blocking loops. Accumulated only when
  // `now_ns` is set; zero otherwise.
  std::atomic<std::uint64_t> push_stall_ns{0};
  std::atomic<std::uint64_t> pop_stall_ns{0};
  // High-water occupancy, updated by the producer after each push (the
  // producer is the only writer, so a relaxed read-modify-write is safe
  // under the SPSC contract).
  std::atomic<std::uint64_t> max_occupancy{0};

  // Monotonic-clock reader injected by the telemetry layer; nullptr keeps
  // this header (and the ring) entirely clock-free.
  std::uint64_t (*now_ns)() = nullptr;
};

}  // namespace ednsm::util
