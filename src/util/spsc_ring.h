// Lock-free single-producer/single-consumer ring — the stage connector of
// the campaign pipeline (spec expansion → shard simulation → result encode →
// sink; see core/parallel_campaign.cc and DESIGN.md "Pipeline architecture").
//
// Exactly one thread may push and exactly one thread may pop; under that
// contract every operation is a handful of relaxed loads plus one
// acquire/release pair, with no locks, no CAS loops, and no allocation after
// construction. Indices are monotonically increasing 64-bit counters (so
// full/empty never alias) masked into a power-of-two slot array.
//
// Rings are bounded on purpose: a full task ring applies backpressure to the
// expansion stage and a full outcome ring parks a simulation worker, keeping
// peak memory proportional to ring capacity rather than campaign size. The
// blocking helpers spin briefly and then yield — stage handoff latency is
// microseconds, and the pipeline stages are long-running threads, not tasks
// on a scheduler that could deadlock under yield.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "util/ring_stats.h"

namespace ednsm::util {

template <typename T>
class SpscRing {
 public:
  // Capacity is rounded up to a power of two (minimum 2) so index masking is
  // a single AND.
  explicit SpscRing(std::size_t min_capacity = 64) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  // Attach an optional telemetry sink (see util/ring_stats.h). Call before
  // the producer/consumer threads start; a ring with no sink pays one null
  // check per operation and nothing else.
  void attach_stats(RingStatSink* sink) noexcept { stats_ = sink; }

  // Producer side ------------------------------------------------------------

  // Moves `v` into the ring; false when full (v is left untouched).
  [[nodiscard]] bool try_push(T& v) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t occupancy = tail - head_.load(std::memory_order_acquire);
    if (occupancy >= slots_.size()) return false;
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    if (stats_ != nullptr) {
      stats_->pushes.fetch_add(1, std::memory_order_relaxed);
      // Producer-only high-water mark (relaxed RMW is safe: one writer).
      if (occupancy + 1 > stats_->max_occupancy.load(std::memory_order_relaxed)) {
        stats_->max_occupancy.store(occupancy + 1, std::memory_order_relaxed);
      }
    }
    return true;
  }

  // Blocking push: spins (with yields) until a slot frees up.
  void push(T v) {
    if (try_push(v)) return;
    const std::uint64_t stall_start = stall_clock_ns();
    std::uint64_t spins = 0;
    do {
      ++spins;
      std::this_thread::yield();
    } while (!try_push(v));
    if (stats_ != nullptr) {
      stats_->push_stall_spins.fetch_add(spins, std::memory_order_relaxed);
      if (stats_->now_ns != nullptr) {
        stats_->push_stall_ns.fetch_add(stats_->now_ns() - stall_start,
                                        std::memory_order_relaxed);
      }
    }
  }

  // Marks the stream complete: the consumer drains remaining items and then
  // sees end-of-stream. Push nothing after closing.
  void close() noexcept { closed_.store(true, std::memory_order_release); }

  // Consumer side ------------------------------------------------------------

  // Moves the oldest item into `out`; false when the ring is empty (which
  // does not distinguish "temporarily empty" from "closed" — see pop()).
  [[nodiscard]] bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    if (stats_ != nullptr) stats_->pops.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Blocking pop: true with an item, or false once the ring is closed and
  // fully drained. The close() check runs only after a failed pop so items
  // pushed before close() are never lost.
  [[nodiscard]] bool pop(T& out) {
    if (try_pop(out)) return true;
    const std::uint64_t stall_start = stall_clock_ns();
    std::uint64_t spins = 0;
    for (;;) {
      if (closed_.load(std::memory_order_acquire)) {
        // Re-check: the producer may have pushed between our pop and its
        // close; acquire on closed_ orders that push before this pop.
        const bool got = try_pop(out);
        record_pop_stall(spins, stall_start);
        return got;
      }
      ++spins;
      std::this_thread::yield();
      if (try_pop(out)) {
        record_pop_stall(spins, stall_start);
        return true;
      }
    }
  }

  // Observers (either side; values are instantaneous, not synchronizing).
  [[nodiscard]] bool closed() const noexcept { return closed_.load(std::memory_order_acquire); }
  [[nodiscard]] std::size_t size() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

 private:
  // Reads the injected stall clock, or 0 when timing is off (no sink, or a
  // sink without a clock — counters still accumulate, durations stay 0).
  [[nodiscard]] std::uint64_t stall_clock_ns() const {
    return (stats_ != nullptr && stats_->now_ns != nullptr) ? stats_->now_ns() : 0;
  }

  void record_pop_stall(std::uint64_t spins, std::uint64_t stall_start) {
    if (stats_ == nullptr || spins == 0) return;
    stats_->pop_stall_spins.fetch_add(spins, std::memory_order_relaxed);
    if (stats_->now_ns != nullptr) {
      stats_->pop_stall_ns.fetch_add(stats_->now_ns() - stall_start,
                                     std::memory_order_relaxed);
    }
  }

  std::vector<T> slots_;
  std::size_t mask_ = 0;
  RingStatSink* stats_ = nullptr;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer cursor
  std::atomic<bool> closed_{false};
};

}  // namespace ednsm::util
