#include "util/strings.h"

#include <cctype>

namespace ednsm::util {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool parse_u64(std::string_view s, unsigned long long& out) noexcept {
  if (s.empty()) return false;
  unsigned long long acc = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<unsigned long long>(c - '0');
    if (acc > (~0ULL - digit) / 10ULL) return false;  // would overflow
    acc = acc * 10ULL + digit;
  }
  out = acc;
  return true;
}

}  // namespace ednsm::util
