// Small string utilities shared across modules. All functions are pure and
// allocation-honest: anything returning std::string allocates, anything
// returning std::string_view only views the input.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ednsm::util {

// Split `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char sep);

// Strip ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

// ASCII-only case transforms (DNS names are ASCII by construction here).
[[nodiscard]] std::string to_lower(std::string_view s);
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix) noexcept;

// Join `parts` with `sep` between elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

// Parse a non-negative decimal integer; returns false on overflow or any
// non-digit character (including an empty string).
[[nodiscard]] bool parse_u64(std::string_view s, unsigned long long& out) noexcept;

}  // namespace ednsm::util
