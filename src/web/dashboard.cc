#include "web/dashboard.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <vector>

#include "util/json.h"
#include "geo/coords.h"
#include "resolver/registry.h"

namespace ednsm::web {

namespace {

std::string fmt(double v, const char* spec = "%.1f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return std::string(buf);
}

std::string html_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

// Availability 1.0 -> green, 0.0 -> red, with a gray cell for no data.
std::string heat_color(double availability) {
  const double a = std::clamp(availability, 0.0, 1.0);
  const int r = static_cast<int>(220.0 - 120.0 * a);
  const int g = static_cast<int>(60.0 + 140.0 * a);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "#%02x%02x50", r, g);
  return std::string(buf);
}

const char* event_color(std::string_view type) {
  if (type == "outage") return "#c0392b";
  if (type == "degradation") return "#e67e22";
  return "#8e44ad";  // flap
}

std::string region_of(const std::string& hostname) {
  const resolver::ResolverSpec* spec = resolver::find_resolver(hostname);
  if (spec == nullptr) return "Unknown";
  return std::string(geo::to_string(spec->continent));
}

void render_heatmap(std::ostringstream& os, const monitor::MonitorResult& result) {
  const int epochs = result.spec.epochs;
  os << "<h2>Availability heatmap</h2>\n<table class=\"heat\">\n<tr><th>vantage / resolver</th>";
  for (int e = 0; e < epochs; ++e) os << "<th>e" << e << "</th>";
  os << "</tr>\n";
  // slos are ordered (vantage, resolver, epoch); rows are epoch-length runs.
  for (std::size_t i = 0; i < result.slos.size(); i += static_cast<std::size_t>(epochs)) {
    const monitor::SloSample& head = result.slos[i];
    os << "<tr><td class=\"lbl\">" << html_escape(head.vantage) << " / "
       << html_escape(head.resolver) << "</td>";
    for (int e = 0; e < epochs; ++e) {
      const monitor::SloSample& s = result.slos[i + static_cast<std::size_t>(e)];
      if (s.queries == 0) {
        os << "<td class=\"nodata\" title=\"no data\"></td>";
        continue;
      }
      os << "<td style=\"background:" << heat_color(s.availability) << "\" title=\""
         << html_escape(head.vantage) << " / " << html_escape(head.resolver) << " epoch " << e
         << ": " << fmt(s.availability * 100.0) << "% of " << s.queries << " queries, state "
         << html_escape(s.state) << "\">" << fmt(s.availability * 100.0, "%.0f") << "</td>";
    }
    os << "</tr>\n";
  }
  os << "</table>\n";
}

void render_latency_bands(std::ostringstream& os, const monitor::MonitorResult& result) {
  const int epochs = result.spec.epochs;
  // Region -> epoch -> (lowest p50, highest p95, mean p50) over all
  // (vantage, resolver) pairs whose resolver sits in the region.
  struct Band {
    double lo = 0.0;
    double hi = 0.0;
    double mid = 0.0;
    int n = 0;
  };
  std::map<std::string, std::vector<Band>> regions;
  for (const monitor::SloSample& s : result.slos) {
    if (s.window_queries == 0) continue;
    auto& bands = regions[region_of(s.resolver)];
    if (bands.empty()) bands.resize(static_cast<std::size_t>(epochs));
    Band& b = bands[static_cast<std::size_t>(s.epoch)];
    if (b.n == 0) {
      b.lo = s.p50_ms;
      b.hi = s.p95_ms;
    } else {
      b.lo = std::min(b.lo, s.p50_ms);
      b.hi = std::max(b.hi, s.p95_ms);
    }
    b.mid += s.p50_ms;
    ++b.n;
  }

  os << "<h2>Per-region latency bands (window p50&ndash;p95)</h2>\n";
  for (const auto& [region, bands] : regions) {
    double max_ms = 1.0;
    for (const Band& b : bands) max_ms = std::max(max_ms, b.hi);
    const int width = 70 * std::max(epochs - 1, 1) + 60;
    const int height = 160;
    const auto x_of = [&](int e) { return 40.0 + 70.0 * e; };
    const auto y_of = [&](double ms) { return 10.0 + (height - 40.0) * (1.0 - ms / max_ms); };

    os << "<h3>" << html_escape(region) << "</h3>\n";
    os << "<svg width=\"" << width << "\" height=\"" << height
       << "\" role=\"img\" aria-label=\"latency band\">\n";
    // Band polygon: upper edge left->right on p95, lower edge right->left on p50.
    std::string points;
    for (int e = 0; e < epochs; ++e) {
      const Band& b = bands[static_cast<std::size_t>(e)];
      points += fmt(x_of(e), "%.1f") + "," + fmt(y_of(b.n > 0 ? b.hi : 0.0), "%.1f") + " ";
    }
    for (int e = epochs - 1; e >= 0; --e) {
      const Band& b = bands[static_cast<std::size_t>(e)];
      points += fmt(x_of(e), "%.1f") + "," + fmt(y_of(b.n > 0 ? b.lo : 0.0), "%.1f") + " ";
    }
    os << "  <polygon points=\"" << points << "\" fill=\"#3498db44\" stroke=\"none\"/>\n";
    // Mean-p50 line.
    os << "  <polyline fill=\"none\" stroke=\"#2c3e50\" stroke-width=\"1.5\" points=\"";
    for (int e = 0; e < epochs; ++e) {
      const Band& b = bands[static_cast<std::size_t>(e)];
      const double mid = b.n > 0 ? b.mid / b.n : 0.0;
      os << fmt(x_of(e), "%.1f") << ',' << fmt(y_of(mid), "%.1f") << ' ';
    }
    os << "\"/>\n";
    for (int e = 0; e < epochs; ++e) {
      os << "  <text x=\"" << fmt(x_of(e), "%.1f") << "\" y=\"" << height - 8
         << "\" class=\"tick\">e" << e << "</text>\n";
    }
    os << "  <text x=\"2\" y=\"14\" class=\"tick\">" << fmt(max_ms) << " ms</text>\n";
    os << "</svg>\n";
  }
}

// Diagnosis for one event, matched on the event's identity tuple so a report
// loaded from a file (possibly re-ordered) still annotates correctly.
const monitor::Diagnosis* diagnosis_of(const monitor::MonitorEvent& ev,
                                       const monitor::DiagnosisReport* diagnoses) {
  if (diagnoses == nullptr) return nullptr;
  for (const monitor::Diagnosis& d : diagnoses->diagnoses) {
    const monitor::MonitorEvent& de = d.event;
    if (de.type == ev.type && de.vantage == ev.vantage && de.resolver == ev.resolver &&
        de.protocol == ev.protocol && de.start_epoch == ev.start_epoch &&
        de.end_epoch == ev.end_epoch) {
      return &d;
    }
  }
  return nullptr;
}

void render_event_timeline(std::ostringstream& os, const monitor::MonitorResult& result,
                           const monitor::DiagnosisReport* diagnoses) {
  os << "<h2>Event timeline</h2>\n";
  if (result.events.empty()) {
    os << "<p>No events.</p>\n";
    return;
  }
  const int epochs = result.spec.epochs;
  const int row_h = 22;
  const int label_w = 320;
  const double cell_w = 40.0;
  const int width = label_w + static_cast<int>(cell_w) * epochs + 10;
  const int height = row_h * static_cast<int>(result.events.size()) + 30;
  os << "<svg width=\"" << width << "\" height=\"" << height
     << "\" role=\"img\" aria-label=\"event timeline\">\n";
  for (int e = 0; e <= epochs; ++e) {
    const double x = label_w + cell_w * e;
    os << "  <line x1=\"" << fmt(x, "%.1f") << "\" y1=\"0\" x2=\"" << fmt(x, "%.1f")
       << "\" y2=\"" << height - 20 << "\" stroke=\"#eee\"/>\n";
    if (e < epochs) {
      os << "  <text x=\"" << fmt(x + cell_w / 2 - 6, "%.1f") << "\" y=\"" << height - 6
         << "\" class=\"tick\">e" << e << "</text>\n";
    }
  }
  int row = 0;
  for (const monitor::MonitorEvent& ev : result.events) {
    const double y = 4.0 + row_h * row;
    os << "  <text x=\"4\" y=\"" << fmt(y + 12.0, "%.1f") << "\" class=\"lbl\">"
       << html_escape(ev.vantage) << " / " << html_escape(ev.resolver) << "</text>\n";
    const double x0 = label_w + cell_w * ev.start_epoch;
    const double w = cell_w * (ev.end_epoch - ev.start_epoch + 1);
    os << "  <rect x=\"" << fmt(x0, "%.1f") << "\" y=\"" << fmt(y, "%.1f") << "\" width=\""
       << fmt(w, "%.1f") << "\" height=\"" << row_h - 8 << "\" rx=\"3\" fill=\""
       << event_color(ev.type) << "\"><title>" << html_escape(ev.type) << " epochs "
       << ev.start_epoch << "&ndash;" << ev.end_epoch
       << (ev.transitions > 0 ? " (" + std::to_string(ev.transitions) + " transitions)" : "");
    if (const monitor::Diagnosis* d = diagnosis_of(ev, diagnoses);
        d != nullptr && !d->verdicts.empty()) {
      os << " — " << html_escape(d->verdicts.front().cause) << " (score "
         << fmt(d->verdicts.front().score, "%.2f") << ", " << html_escape(d->scope.classification)
         << ")";
    }
    os << "</title></rect>\n";
    ++row;
  }
  os << "</svg>\n";
  os << "<p class=\"legend\"><span style=\"color:#c0392b\">&#9632;</span> outage "
        "<span style=\"color:#e67e22\">&#9632;</span> degradation "
        "<span style=\"color:#8e44ad\">&#9632;</span> flap</p>\n";
}

void render_diagnoses(std::ostringstream& os, const monitor::DiagnosisReport& report) {
  os << "<h2>Diagnoses</h2>\n";
  if (report.diagnoses.empty()) {
    os << "<p>No events to diagnose.</p>\n";
    return;
  }
  os << "<table class=\"heat\"><tr><th>event</th><th>verdict</th><th>stage</th><th>scope</th>"
        "<th>&Delta;response</th><th>window avail</th><th>exemplars</th></tr>\n";
  for (const monitor::Diagnosis& d : report.diagnoses) {
    const monitor::MonitorEvent& ev = d.event;
    os << "<tr><td class=\"lbl\">" << html_escape(ev.type) << " " << html_escape(ev.vantage)
       << " / " << html_escape(ev.resolver) << " e" << ev.start_epoch << "&ndash;e"
       << ev.end_epoch << "</td>";
    if (d.verdicts.empty()) {
      os << "<td>-</td>";
    } else {
      os << "<td title=\"" << html_escape(d.verdicts.front().rationale) << "\">"
         << html_escape(d.verdicts.front().cause) << " ("
         << fmt(d.verdicts.front().score, "%.2f") << ")</td>";
    }
    os << "<td>" << html_escape(d.dominant_stage.empty() ? "none" : d.dominant_stage) << "</td>";
    os << "<td>" << html_escape(d.scope.classification) << " "
       << d.scope.affected_vantages.size() << "/" << d.scope.vantages_observed << "</td>";
    os << "<td>" << fmt(d.delta.response_ms, "%+.1f") << " ms</td>";
    os << "<td>" << fmt(d.window.availability * 100.0) << "%</td>";
    os << "<td class=\"lbl\">";
    bool first = true;
    for (const auto& e : d.exemplars) {
      if (!first) os << "<br>";
      first = false;
      os << "<code>" << html_escape(e.flight_ref) << "</code>";
    }
    if (first) os << "-";
    os << "</td></tr>\n";
  }
  os << "</table>\n";
}

}  // namespace

std::string render_monitor_dashboard(const monitor::MonitorResult& result,
                                     const monitor::DiagnosisReport* diagnoses) {
  std::ostringstream os;
  os << "<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
     << "<title>ednsm monitor dashboard</title>\n<style>\n"
     << "body{font:14px/1.4 system-ui,sans-serif;margin:24px;color:#222}\n"
     << "table.heat{border-collapse:collapse}\n"
     << "table.heat td,table.heat th{border:1px solid #ccc;padding:2px 6px;font-size:12px;"
        "text-align:center}\n"
     << "table.heat td.lbl{text-align:left;white-space:nowrap}\n"
     << "table.heat td.nodata{background:#ddd}\n"
     << ".tick{font-size:10px;fill:#666}\n"
     << "svg .lbl{font-size:11px;fill:#222}\n"
     << ".legend{font-size:12px}\n"
     << "</style>\n</head>\n<body>\n";
  os << "<h1>Longitudinal monitor</h1>\n";
  os << "<p>" << result.spec.epochs << " epochs &times; " << result.spec.base.rounds
     << " rounds, " << result.spec.base.resolvers.size() << " resolvers from "
     << result.spec.base.vantage_ids.size() << " vantages over "
     << html_escape(std::string(client::to_string(result.spec.base.protocol))) << ", seed "
     << result.spec.base.seed << ". " << result.events.size() << " events.</p>\n";

  os << "<h2>Epochs</h2>\n<table class=\"heat\"><tr><th>epoch</th><th>queries</th>"
        "<th>failures</th><th>availability</th></tr>\n";
  for (const monitor::EpochSummary& e : result.epochs) {
    os << "<tr><td>" << e.epoch << "</td><td>" << e.queries << "</td><td>" << e.failures
       << "</td><td>" << fmt(e.availability * 100.0, "%.2f") << "%</td></tr>\n";
  }
  os << "</table>\n";

  render_heatmap(os, result);
  render_latency_bands(os, result);
  render_event_timeline(os, result, diagnoses);
  if (diagnoses != nullptr) render_diagnoses(os, *diagnoses);

  os << "</body>\n</html>\n";
  return std::move(os).str();
}

}  // namespace ednsm::web
