// Self-contained HTML dashboard for a longitudinal monitor run: an
// availability heatmap over (vantage x resolver) rows and epoch columns, a
// per-region latency band chart (window p50..p95 per epoch, resolvers
// grouped by registry continent), and an event timeline. All styling and SVG
// are inline — the file opens offline, matching the report tools' "artifact
// you can email" convention.
//
// When a DiagnosisReport is supplied (ednsm_report --diagnosis), each
// timeline event's tooltip carries its top-ranked cause and a "Diagnoses"
// section lists the verdicts, stage breakdowns, and flight-recorder exemplar
// refs per event.
#pragma once

#include <string>

#include "monitor/diagnose.h"
#include "monitor/monitor.h"

namespace ednsm::web {

[[nodiscard]] std::string render_monitor_dashboard(const monitor::MonitorResult& result,
                                                   const monitor::DiagnosisReport* diagnoses);

[[nodiscard]] inline std::string render_monitor_dashboard(const monitor::MonitorResult& result) {
  return render_monitor_dashboard(result, nullptr);
}

}  // namespace ednsm::web
