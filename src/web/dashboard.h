// Self-contained HTML dashboard for a longitudinal monitor run: an
// availability heatmap over (vantage x resolver) rows and epoch columns, a
// per-region latency band chart (window p50..p95 per epoch, resolvers
// grouped by registry continent), and an event timeline. All styling and SVG
// are inline — the file opens offline, matching the report tools' "artifact
// you can email" convention.
#pragma once

#include <string>

#include "monitor/monitor.h"

namespace ednsm::web {

[[nodiscard]] std::string render_monitor_dashboard(const monitor::MonitorResult& result);

}  // namespace ednsm::web
