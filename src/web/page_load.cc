#include "web/page_load.h"

#include <algorithm>
#include <set>

#include "client/doh.h"
#include "geo/geodb.h"
#include "util/bytes.h"

namespace ednsm::web {

std::size_t PageSpec::unique_domains() const {
  std::set<std::string> d;
  for (const PageObject& o : objects) d.insert(o.domain);
  return d.size();
}

PageSpec make_page(std::string root_domain, int objects, int domains, int depth,
                   std::uint64_t seed) {
  PageSpec page;
  page.root_domain = root_domain;
  page.depth = std::max(depth, 1);
  netsim::Rng rng(seed);

  // Root document.
  PageObject root;
  root.domain = root_domain;
  root.level = 0;
  root.cdn = true;
  root.bytes = 80 * 1024;
  page.objects.push_back(root);

  // Domain pool: the root's own assets plus third parties.
  std::vector<std::string> pool = {root_domain};
  for (int d = 1; d < std::max(domains, 1); ++d) {
    pool.push_back("cdn" + std::to_string(d) + ".assets-" +
                   std::to_string(seed % 97) + ".example");
  }

  for (int i = 1; i < std::max(objects, 1); ++i) {
    PageObject o;
    // Zipf-ish: favor early pool entries (the root + big CDNs host most).
    const std::size_t r1 = rng.uniform_u64(pool.size());
    const std::size_t r2 = rng.uniform_u64(pool.size());
    o.domain = pool[std::min(r1, r2)];
    o.level = 1 + static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(page.depth)));
    o.cdn = rng.bernoulli(0.7);
    o.bytes = 5 * 1024 + static_cast<std::size_t>(rng.uniform_u64(200 * 1024));
    page.objects.push_back(std::move(o));
  }
  return page;
}

PageLoadSimulator::PageLoadSimulator(core::SimWorld& world, std::string vantage_id,
                                     std::string resolver_hostname, PageLoadOptions options)
    : world_(world),
      vantage_id_(std::move(vantage_id)),
      resolver_(std::move(resolver_hostname)),
      options_(options) {
  auto& vantage = world_.vantage(vantage_id_);
  doh_ = std::make_unique<client::DohClient>(world_.net(), *vantage.pool,
                                             options_.query_options);
  // CDN-mapping effect: the replica a client is mapped to follows the
  // *resolver's* location. "Near" = within ~1000 km of the client.
  const auto server = world_.fleet().address_for(resolver_, vantage.info.location);
  if (server.has_value()) {
    const auto loc = world_.net().location_of(*server);
    if (loc.has_value()) {
      resolver_is_near_ =
          geo::great_circle_km(vantage.info.location, *loc) < 1000.0;
    }
  }
}

std::pair<double, bool> PageLoadSimulator::resolve(const std::string& domain) {
  const netsim::SimTime now = world_.queue().now();
  const auto cached = browser_cache_.find(domain);
  if (cached != browser_cache_.end() && cached->second.ok &&
      now - cached->second.at < options_.browser_dns_ttl) {
    return {0.0, true};  // browser cache hit: free
  }

  auto& vantage = world_.vantage(vantage_id_);
  const auto server = world_.fleet().address_for(resolver_, vantage.info.location);
  auto name = dns::Name::parse(domain);
  if (!server.has_value() || !name.has_value()) return {0.0, false};

  double dns_ms = 0.0;
  bool ok = false;
  doh_->query(*server, resolver_, name.value(), dns::RecordType::A,
              [&](client::QueryOutcome o) {
                dns_ms = netsim::to_ms(o.timing.total);
                ok = o.ok;
              });
  world_.run();
  browser_cache_[domain] = CachedLookup{world_.queue().now(), ok};
  return {dns_ms, ok};
}

double PageLoadSimulator::fetch_ms(const PageObject& object) const {
  auto& world = world_;
  const auto& vantage_loc = geo::vantage_by_id(vantage_id_).location;
  (void)world;

  // Origin placement: deterministic from the domain hash across major hubs.
  static const geo::GeoPoint kHubs[] = {
      geo::city::kAshburn, geo::city::kFrankfurt, geo::city::kSingapore,
      geo::city::kSanFrancisco, geo::city::kLondon, geo::city::kTokyo,
  };
  const std::uint64_t h = util::fnv1a(object.domain);
  geo::GeoPoint origin = kHubs[h % (sizeof kHubs / sizeof kHubs[0])];

  // CDN objects are served from a nearby replica — but only when the
  // resolver is near the client; a remote resolver maps the client to a
  // replica near the *resolver* (approximated as the distant origin).
  if (object.cdn && resolver_is_near_) {
    origin = vantage_loc;  // metro-local replica
  }

  const double rtt_ms = 2.0 * geo::propagation_delay_ms(vantage_loc, origin) + 2.0;
  // Connection chain (TCP+TLS+GET ~ origin_rtt_factor RTTs) + transfer.
  const double transfer_ms =
      static_cast<double>(object.bytes) / (2.0 * 1024.0 * 1024.0) * 8.0;  // ~16 Mbit/s
  return options_.origin_rtt_factor * rtt_ms + transfer_ms;
}

PageLoadResult PageLoadSimulator::load(const PageSpec& page) {
  PageLoadResult result;

  for (int level = 0; level <= page.depth; ++level) {
    // Domains first referenced at this level resolve in parallel: the level
    // waits for the slowest lookup (WProf's critical-path rule).
    std::set<std::string> level_domains;
    for (const PageObject& o : page.objects) {
      if (o.level == level) level_domains.insert(o.domain);
    }
    if (level_domains.empty()) continue;

    double level_dns_ms = 0.0;
    for (const std::string& domain : level_domains) {
      const auto [dns_ms, ok] = resolve(domain);
      if (!ok) ++result.dns_failures;
      if (dns_ms > 0) ++result.dns_lookups;
      level_dns_ms = std::max(level_dns_ms, dns_ms);
    }

    // Objects at a level fetch in parallel: cost = slowest object.
    double level_fetch_ms = 0.0;
    for (const PageObject& o : page.objects) {
      if (o.level == level) level_fetch_ms = std::max(level_fetch_ms, fetch_ms(o));
    }

    result.dns_ms += level_dns_ms;
    result.fetch_ms += level_fetch_ms;
  }
  result.plt_ms = result.dns_ms + result.fetch_ms;
  return result;
}

}  // namespace ednsm::web
