// Web page-load model: how resolver choice affects page load time (PLT).
//
// The paper's limitations section names this as the open follow-up ("we do
// not measure how encrypted DNS affects application performance, such as web
// page load time") and its related work grounds the model:
//   - WProf (Wang et al.): DNS on the critical path can be up to ~13% of PLT;
//   - Otto et al.: distant resolvers break CDN mapping and inflate fetches;
//   - Sundaresan et al.: home PLT is significantly influenced by slow DNS.
//
// Model (WProf-style dependency levels): a page is a DAG of objects grouped
// into `depth` sequential levels (HTML -> CSS/JS -> subresources ...). Each
// level references objects across several domains; a level's DNS cost is the
// *max* across its new domains (lookups run in parallel, the level waits for
// the slowest), resolved through a real simulated DoH client with a
// browser-side DNS cache. Each level's fetch cost is a TCP+TLS+GET round-trip
// chain to each origin, with origins placed deterministically around the
// globe and the *CDN effect*: an origin marked CDN-hosted is fetched from a
// replica near the client, but only if the resolver that answered is near the
// client too (a distant resolver maps the client to a distant replica —
// Otto et al.'s effect).
#pragma once

#include <string>
#include <vector>

#include "client/doh.h"
#include "core/world.h"

namespace ednsm::web {

struct PageObject {
  std::string domain;
  int level = 0;       // dependency depth (0 = root document)
  bool cdn = true;     // served via CDN (replicated near clients)
  std::size_t bytes = 50 * 1024;
};

struct PageSpec {
  std::string root_domain;
  std::vector<PageObject> objects;  // includes the root document at level 0
  int depth = 1;

  [[nodiscard]] std::size_t unique_domains() const;
};

// Deterministic synthetic page: `objects` objects over `domains` domains in
// `depth` levels, Zipf-ish domain popularity, ~70% CDN-hosted. Same seed,
// same page.
[[nodiscard]] PageSpec make_page(std::string root_domain, int objects, int domains,
                                 int depth, std::uint64_t seed);

struct PageLoadResult {
  double plt_ms = 0;            // total page load time
  double dns_ms = 0;            // DNS share of the critical path
  double fetch_ms = 0;          // fetch share of the critical path
  int dns_lookups = 0;          // cold lookups performed (cache misses)
  int dns_failures = 0;         // lookups that errored/timed out
  [[nodiscard]] double dns_share() const noexcept {
    return plt_ms > 0 ? dns_ms / plt_ms : 0.0;
  }
};

struct PageLoadOptions {
  client::QueryOptions query_options;  // reuse policy etc. for the DoH client
  double origin_rtt_factor = 3.0;      // round trips per object fetch chain
  netsim::SimDuration browser_dns_ttl = std::chrono::seconds(60);
};

// Loads pages from one vantage through one DoH resolver, keeping a
// browser-style DNS cache across page loads (so a "second visit" is warm).
class PageLoadSimulator {
 public:
  PageLoadSimulator(core::SimWorld& world, std::string vantage_id,
                    std::string resolver_hostname, PageLoadOptions options = {});

  // Synchronously (in simulated time) loads the page and returns the
  // breakdown. Runs the world's event loop.
  [[nodiscard]] PageLoadResult load(const PageSpec& page);

  void clear_browser_cache() { browser_cache_.clear(); }

 private:
  struct CachedLookup {
    netsim::SimTime at{0};
    bool ok = false;
  };

  // Resolve one domain (through the cache); returns (dns_ms, ok).
  std::pair<double, bool> resolve(const std::string& domain);

  // Fetch cost for one object given resolver proximity (CDN mapping effect).
  [[nodiscard]] double fetch_ms(const PageObject& object) const;

  core::SimWorld& world_;
  std::string vantage_id_;
  std::string resolver_;
  PageLoadOptions options_;
  std::unique_ptr<client::DohClient> doh_;
  std::map<std::string, CachedLookup> browser_cache_;
  bool resolver_is_near_ = false;  // resolver site close to the client?
};

}  // namespace ednsm::web
