// Fidelity check: the resolver registry must contain exactly the hostnames
// the paper's Appendix A.2 enumerates — no more, no less. The list below is
// transcribed verbatim from the paper (75 hostnames; "jp-tiar.app" appears as
// written in A.2 even though the figures render it "jp.tiar.app").
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "resolver/registry.h"

namespace ednsm::resolver {
namespace {

const std::set<std::string>& appendix_a2() {
  static const std::set<std::string> kHostnames = {
      "anycast.dns.nextdns.io",
      "unicast.uncensoreddns.org",
      "doh.ffmuc.net",
      "jp-tiar.app",
      "dns.therifleman.name",
      "doh.pub",
      "dns10.quad9.net",
      "dns.adguard.com",
      "doh.mullvad.net",
      "dns12.quad9.net",
      "dns-unfiltered.adguard.com",
      "dns.alidns.com",
      "helios.plan9-dns.com",
      "dns1.ryan-palmer.com",
      "dns.digitale-gesellschaft.ch",
      "chewbacca.meganerd.nl",
      "ordns.he.net",
      "dns11.quad9.net",
      "anycast.uncensoreddns.org",
      "doh.libredns.gr",
      "dns.brahma.world",
      "dns.switch.ch",
      "dns-doh-no-safe-search.dnsforfamily.com",
      "ibksturm.synology.me",
      "kronos.plan9-dns.com",
      "dns-family.adguard.com",
      "freedns.controld.com",
      "dnsforge.de",
      "dns-doh.dnsforfamily.com",
      "public.dns.iij.jp",
      "family.cloudflare-dns.com",
      "dns.google",
      "v.dnscrypt.uk",
      "doh.dnscrypt.uk",
      "doh.safesurfer.io",
      "doh.la.ahadns.net",
      "doh.tiar.app",
      "doh.sb",
      "doh-2.seby.io",
      "dns.twnic.tw",
      "dns.njal.la",
      "pluton.plan9-dns.com",
      "doh.seby.io",
      "dns.quad9.net",
      "dns.digitalsize.net",
      "dns9.quad9.net",
      "dohtrial.att.net",
      "doh.nl.ahadns.net",
      "adblock.doh.mullvad.net",
      "adl.adfilter.net",
      "per.adfilter.net",
      "syd.adfilter.net",
      "dns.nextdns.io",
      "dns0.eu",
      "doh.360.cn",
      "open.dns0.eu",
      "dnslow.me",
      "kids.dns0.eu",
      "pdns.itxe.net",
      "security.cloudflare-dns.com",
      "sby-doh.limotelu.org",
      "dns.bebasid.com",
      "1dot1dot1dot1.cloudflare-dns.com",
      "antivirus.bebasid.com",
      "odoh-target-noads.alekberg.net",
      "odoh-target-se.alekberg.net",
      "odoh-target-noads-se.alekberg.net",
      "odoh-target.alekberg.net",
      "dnsse-noads.alekberg.net",
      "dnsse.alekberg.net",
      "family.puredns.org",
      "dnsnl.alekberg.net",
      "dnsnl-noads.alekberg.net",
      "puredns.org",
      "dns.circl.lu",
  };
  return kHostnames;
}

TEST(AppendixA2, ListHas75Entries) { EXPECT_EQ(appendix_a2().size(), 75u); }

TEST(AppendixA2, RegistryContainsEveryAppendixHostname) {
  for (const std::string& host : appendix_a2()) {
    EXPECT_NE(find_resolver(host), nullptr) << "missing from registry: " << host;
  }
}

TEST(AppendixA2, RegistryContainsNothingElse) {
  for (const ResolverSpec& spec : paper_resolver_list()) {
    EXPECT_TRUE(appendix_a2().contains(spec.hostname))
        << "registry hostname not in Appendix A.2: " << spec.hostname;
  }
  EXPECT_EQ(paper_resolver_list().size(), appendix_a2().size());
}

TEST(AppendixA2, EveryResolverHasAtLeastOneSite) {
  for (const ResolverSpec& spec : paper_resolver_list()) {
    EXPECT_FALSE(spec.sites.empty()) << spec.hostname;
    // Unicast resolvers: the registry location matches the single site.
    if (spec.sites.size() == 1) {
      EXPECT_EQ(spec.sites.front().location, spec.location) << spec.hostname;
    }
  }
}

TEST(AppendixA2, QuadNineFamilyConsistent) {
  // All five quad9 hostnames present and mainstream.
  int quad9 = 0;
  for (const ResolverSpec& spec : paper_resolver_list()) {
    if (spec.hostname.find("quad9.net") != std::string::npos) {
      ++quad9;
      EXPECT_TRUE(spec.mainstream) << spec.hostname;
    }
  }
  EXPECT_EQ(quad9, 5);
}

TEST(AppendixA2, AlekbergFamilySplit) {
  // The four odoh-target hosts are ODoH targets; the four dnsse/dnsnl hosts
  // are ordinary DoH in the EU.
  for (const ResolverSpec& spec : paper_resolver_list()) {
    if (spec.hostname.starts_with("odoh-target")) {
      EXPECT_TRUE(spec.odoh_target) << spec.hostname;
    }
    if (spec.hostname.starts_with("dnsse") || spec.hostname.starts_with("dnsnl")) {
      EXPECT_FALSE(spec.odoh_target) << spec.hostname;
      EXPECT_EQ(spec.continent, geo::Continent::Europe) << spec.hostname;
    }
  }
}

}  // namespace
}  // namespace ednsm::resolver
