#include <gtest/gtest.h>

#include <set>

#include "client/do53.h"
#include "client/doh.h"
#include "client/doq.h"
#include "client/dot.h"
#include "geo/geodb.h"
#include "resolver/server.h"

namespace ednsm::client {
namespace {

using netsim::AccessLinkModel;
using netsim::EventQueue;
using netsim::IpAddr;
using netsim::Rng;
using resolver::AnycastSite;
using resolver::ResolverServer;
using resolver::ServerBehavior;

struct ClientWorld {
  EventQueue queue;
  netsim::Network net{queue, Rng(19)};
  IpAddr client_ip;
  std::unique_ptr<ResolverServer> server;
  std::unique_ptr<transport::ConnectionPool> pool;

  explicit ClientWorld(ServerBehavior behavior = {}) {
    behavior.warm_cache_probability = 1.0;  // deterministic fast answers
    client_ip = net.attach("client", geo::city::kColumbusOhio,
                           AccessLinkModel::datacenter());
    server = std::make_unique<ResolverServer>(
        net, "dns.example", AnycastSite{"Chicago", geo::city::kChicago}, behavior);
    pool = std::make_unique<transport::ConnectionPool>(net, client_ip);
  }
};

TEST(ClientTypes, ProtocolAndErrorNames) {
  EXPECT_EQ(to_string(Protocol::Do53), "Do53");
  EXPECT_EQ(to_string(Protocol::DoT), "DoT");
  EXPECT_EQ(to_string(Protocol::DoH), "DoH");
  EXPECT_EQ(to_string(QueryErrorClass::ConnectRefused), "connect-refused");
  EXPECT_EQ(to_string(QueryErrorClass::Timeout), "timeout");
  EXPECT_EQ(to_string(QueryErrorClass::Malformed), "malformed");
}

TEST(ClientTypes, TransportErrorClassification) {
  EXPECT_EQ(classify_transport_error("tcp: connection refused (RST)"),
            QueryErrorClass::ConnectRefused);
  EXPECT_EQ(classify_transport_error("tcp: connection timed out (SYN retries exhausted)"),
            QueryErrorClass::ConnectTimeout);
  EXPECT_EQ(classify_transport_error("tls: certificate name mismatch"),
            QueryErrorClass::TlsFailure);
  EXPECT_EQ(classify_transport_error("???"), QueryErrorClass::Timeout);
}

TEST(SingleFire, FiresTimeoutExactlyOnce) {
  EventQueue queue;
  int fired = 0;
  SingleFire guard(queue, std::chrono::seconds(1), [&] { ++fired; });
  queue.run_until_idle();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(guard.fired());
  EXPECT_FALSE(guard.fire());  // cannot fire again
}

TEST(SingleFire, ManualFireCancelsTimeout) {
  EventQueue queue;
  int timeouts = 0;
  SingleFire guard(queue, std::chrono::seconds(1), [&] { ++timeouts; });
  EXPECT_TRUE(guard.fire());
  EXPECT_FALSE(guard.fire());
  queue.run_until_idle();
  EXPECT_EQ(timeouts, 0);
}

TEST(SingleFire, DestructionCancelsTimer) {
  EventQueue queue;
  int timeouts = 0;
  {
    SingleFire guard(queue, std::chrono::seconds(1), [&] { ++timeouts; });
  }
  queue.run_until_idle();
  EXPECT_EQ(timeouts, 0);
}

// ---- timing semantics across the three protocols --------------------------------

TEST(Clients, ProtocolLadderColdLatency) {
  // Cold-start latency must order Do53 (1 RTT) < DoT (3 RTT) ~ DoH (3 RTT).
  ClientWorld w;
  double do53_ms = 0, dot_ms = 0, doh_ms = 0;

  Do53Client do53(w.net, w.client_ip, client::QueryOptions{});
  do53.query(w.server->address(), dns::Name::parse("a.com").value(), dns::RecordType::A,
             [&](QueryOutcome o) {
               ASSERT_TRUE(o.ok);
               do53_ms = netsim::to_ms(o.timing.total);
             });
  w.queue.run_until_idle();

  DotClient dot(w.net, *w.pool, client::QueryOptions{});
  dot.query(w.server->address(), "dns.example", dns::Name::parse("b.com").value(),
            dns::RecordType::A, [&](QueryOutcome o) {
              ASSERT_TRUE(o.ok);
              dot_ms = netsim::to_ms(o.timing.total);
            });
  w.queue.run_until_idle();

  DohClient doh(w.net, *w.pool, client::QueryOptions{});
  doh.query(w.server->address(), "dns.example", dns::Name::parse("c.com").value(),
            dns::RecordType::A, [&](QueryOutcome o) {
              ASSERT_TRUE(o.ok);
              doh_ms = netsim::to_ms(o.timing.total);
            });
  w.queue.run_until_idle();

  EXPECT_LT(do53_ms, dot_ms);
  EXPECT_LT(do53_ms, doh_ms);
  EXPECT_GT(dot_ms, 2.2 * do53_ms);
  EXPECT_GT(doh_ms, 2.2 * do53_ms);
}

TEST(Clients, ConnectShareReportedOnColdQuery) {
  ClientWorld w;
  DohClient doh(w.net, *w.pool, client::QueryOptions{});
  std::optional<QueryOutcome> out;
  doh.query(w.server->address(), "dns.example", dns::Name::parse("x.com").value(),
            dns::RecordType::A, [&](QueryOutcome o) { out = std::move(o); });
  w.queue.run_until_idle();
  ASSERT_TRUE(out.has_value() && out->ok);
  EXPECT_FALSE(out->timing.connection_reused);
  // Connect (TCP+TLS, 2 RTT) dominates: more than half of total.
  EXPECT_GT(netsim::to_ms(out->timing.connect), 0.5 * netsim::to_ms(out->timing.total));
  EXPECT_LT(out->timing.connect, out->timing.total);
}

TEST(Clients, ReusedQueryReportsZeroConnect) {
  ClientWorld w;
  QueryOptions options;
  options.reuse = transport::ReusePolicy::Keepalive;
  DohClient doh(w.net, *w.pool, options);
  std::vector<QueryOutcome> outs;
  for (int i = 0; i < 2; ++i) {
    doh.query(w.server->address(), "dns.example", dns::Name::parse("x.com").value(),
              dns::RecordType::A, [&](QueryOutcome o) { outs.push_back(std::move(o)); });
    w.queue.run_until_idle();
  }
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_TRUE(outs[1].timing.connection_reused);
  EXPECT_EQ(outs[1].timing.connect, netsim::kZeroDuration);
}

TEST(Clients, TicketResumptionReportedInTiming) {
  ClientWorld w;
  QueryOptions options;
  options.reuse = transport::ReusePolicy::TicketResumption;
  DohClient doh(w.net, *w.pool, options);
  std::vector<QueryOutcome> outs;
  auto ask = [&] {
    doh.query(w.server->address(), "dns.example", dns::Name::parse("x.com").value(),
              dns::RecordType::A, [&](QueryOutcome o) { outs.push_back(std::move(o)); });
    w.queue.run_until_idle();
  };
  ask();
  w.pool->invalidate({w.server->address(), netsim::kPortHttps}, "dns.example");
  ask();
  ASSERT_EQ(outs.size(), 2u);
  ASSERT_TRUE(outs[1].ok);
  EXPECT_EQ(outs[1].timing.tls_mode, transport::TlsMode::Resume);
}

TEST(Clients, ZeroRttQueryOverHttp1) {
  ClientWorld w;
  QueryOptions options;
  options.reuse = transport::ReusePolicy::TicketResumption;
  options.use_http2 = false;
  options.offer_early_data = true;
  DohClient doh(w.net, *w.pool, options);
  std::vector<QueryOutcome> outs;
  auto ask = [&] {
    doh.query(w.server->address(), "dns.example", dns::Name::parse("x.com").value(),
              dns::RecordType::A, [&](QueryOutcome o) { outs.push_back(std::move(o)); });
    w.queue.run_until_idle();
  };
  ask();  // full handshake, stores ticket
  w.pool->invalidate({w.server->address(), netsim::kPortHttps}, "dns.example");
  ask();  // 0-RTT
  ASSERT_EQ(outs.size(), 2u);
  ASSERT_TRUE(outs[0].ok);
  ASSERT_TRUE(outs[1].ok);
  EXPECT_EQ(outs[1].timing.tls_mode, transport::TlsMode::EarlyData);
  // 0-RTT saves one round trip vs the cold query.
  EXPECT_LT(netsim::to_ms(outs[1].timing.total), netsim::to_ms(outs[0].timing.total) - 3.0);
}

TEST(Clients, SequentialH2QueriesOnOneConnection) {
  ClientWorld w;
  QueryOptions options;
  options.reuse = transport::ReusePolicy::Keepalive;
  DohClient doh(w.net, *w.pool, options);
  int ok = 0;
  for (int i = 0; i < 5; ++i) {
    doh.query(w.server->address(), "dns.example",
              dns::Name::parse("q" + std::to_string(i) + ".com").value(),
              dns::RecordType::A, [&](QueryOutcome o) {
                if (o.ok) ++ok;
              });
    w.queue.run_until_idle();
  }
  EXPECT_EQ(ok, 5);
  EXPECT_EQ(w.pool->live_sessions(), 1u);
  EXPECT_EQ(w.server->stats().doh_requests, 5u);
}

TEST(Clients, PaddingMakesQuerySizesUniform) {
  // With RFC 7830 padding, queries for different names occupy the same
  // number of bytes on the wire (same 128-byte block).
  const dns::Message q1 = dns::make_query(1, dns::Name::parse("a.com").value(),
                                          dns::RecordType::A);
  const dns::Message q2 = dns::make_query(2, dns::Name::parse("subdomain.example.org").value(),
                                          dns::RecordType::A);
  EXPECT_EQ(q1.encode(128).size(), q2.encode(128).size());
  EXPECT_NE(q1.encode(0).size(), q2.encode(0).size());
}

TEST(Clients, Do53StrayDatagramIgnored) {
  ClientWorld w;
  Do53Client do53(w.net, w.client_ip, client::QueryOptions{});
  std::optional<QueryOutcome> out;
  do53.query(w.server->address(), dns::Name::parse("a.com").value(), dns::RecordType::A,
             [&](QueryOutcome o) { out = std::move(o); });
  // No interference — just verify the normal path is clean and single-fire.
  w.queue.run_until_idle();
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->ok);
}

TEST(Clients, DohTimeoutInvalidatesPooledSession) {
  ServerBehavior stall;
  stall.warm_cache_probability = 0.0;
  stall.upstream.servfail_probability = 1.0;
  stall.upstream.servfail_stall_ms = 60000.0;
  ClientWorld w(stall);
  // ClientWorld forces warm_cache to 1.0; rebuild server with the stall.
  stall.warm_cache_probability = 0.0;
  w.server = std::make_unique<ResolverServer>(
      w.net, "dns.example", AnycastSite{"Chicago", geo::city::kChicago}, stall);

  QueryOptions options;
  options.reuse = transport::ReusePolicy::Keepalive;
  options.timeout = std::chrono::seconds(1);
  DohClient doh(w.net, *w.pool, options);
  std::optional<QueryOutcome> out;
  doh.query(w.server->address(), "dns.example", dns::Name::parse("a.com").value(),
            dns::RecordType::A, [&](QueryOutcome o) { out = std::move(o); });
  w.queue.run_until_idle();
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->ok);
  EXPECT_EQ(out->error->error_class, QueryErrorClass::Timeout);
  EXPECT_EQ(w.pool->live_sessions(), 0u);  // poisoned session dropped
}


// Regression: multiple independent clients on one host must never collide on
// ephemeral ports (per-client counters once all started at 49152, so
// concurrent probes stole each other's bindings and accepted handshakes from
// the wrong server).
TEST(Clients, ConcurrentClientsOnOneHostDoNotCollide) {
  ClientWorld w;
  resolver::ServerBehavior behavior;
  behavior.warm_cache_probability = 1.0;
  auto server2 = std::make_unique<resolver::ResolverServer>(
      w.net, "dns2.example", resolver::AnycastSite{"Ashburn", geo::city::kAshburn},
      behavior);

  client::Do53Client do53_a(w.net, w.client_ip, client::QueryOptions{});
  client::Do53Client do53_b(w.net, w.client_ip, client::QueryOptions{});
  client::DoqClient doq_a(w.net, w.client_ip, client::QueryOptions{});
  client::DoqClient doq_b(w.net, w.client_ip, client::QueryOptions{});

  int ok = 0;
  auto count_ok = [&](client::QueryOutcome o) {
    if (o.ok) ++ok;
  };
  // Fire everything concurrently before running the event loop.
  do53_a.query(w.server->address(), dns::Name::parse("a.com").value(),
               dns::RecordType::A, count_ok);
  do53_b.query(server2->address(), dns::Name::parse("b.com").value(),
               dns::RecordType::A, count_ok);
  doq_a.query(w.server->address(), "dns.example", dns::Name::parse("c.com").value(),
              dns::RecordType::A, count_ok);
  doq_b.query(server2->address(), "dns2.example", dns::Name::parse("d.com").value(),
              dns::RecordType::A, count_ok);
  w.queue.run_until_idle();
  EXPECT_EQ(ok, 4);
}

TEST(Clients, NetworkHandsOutDistinctEphemeralPorts) {
  ClientWorld w;
  std::set<std::uint16_t> ports;
  for (int i = 0; i < 1000; ++i) ports.insert(w.net.ephemeral_port(w.client_ip));
  EXPECT_EQ(ports.size(), 1000u);
  for (std::uint16_t p : ports) EXPECT_GE(p, 49152);
}

}  // namespace
}  // namespace ednsm::client
