#include <gtest/gtest.h>

#include <sstream>

#include "core/campaign.h"

namespace ednsm::core {
namespace {

MeasurementSpec tiny_spec() {
  MeasurementSpec spec;
  spec.resolvers = {"dns.google", "ordns.he.net", "doh.ffmuc.net"};
  spec.vantage_ids = {"ec2-ohio"};
  spec.rounds = 4;
  spec.seed = 77;
  return spec;
}

TEST(Scheduler, RoundTimesSpacedByInterval) {
  MeasurementSpec spec = tiny_spec();
  spec.rounds = 3;
  const ProbeScheduler sched(spec);
  const auto t = sched.timeline(0);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1] - t[0], spec.round_interval);
  EXPECT_EQ(t[2] - t[1], spec.round_interval);
}

TEST(Scheduler, VantagesAreStaggered) {
  MeasurementSpec spec = tiny_spec();
  spec.vantage_ids = {"ec2-ohio", "ec2-frankfurt"};
  const ProbeScheduler sched(spec);
  EXPECT_GT(sched.round_start(0, 1), sched.round_start(0, 0));
  EXPECT_LT(sched.round_start(0, 1) - sched.round_start(0, 0), spec.round_interval);
}

TEST(Scheduler, SpanCoversAllRounds) {
  const ProbeScheduler sched(tiny_spec());
  EXPECT_GE(sched.span(), sched.round_start(3, 0));
}

TEST(Campaign, RecordCountsMatchSpec) {
  SimWorld world(tiny_spec().seed);
  CampaignRunner runner(world, tiny_spec());
  const CampaignResult result = runner.run();
  // rounds x vantages x resolvers x domains records.
  EXPECT_EQ(result.records.size(), 4u * 1u * 3u * 3u);
  // rounds x vantages x resolvers pings.
  EXPECT_EQ(result.pings.size(), 4u * 1u * 3u);
}

TEST(Campaign, RecordsCarryIdentity) {
  SimWorld world(1);
  CampaignRunner runner(world, tiny_spec());
  const CampaignResult result = runner.run();
  for (const ResultRecord& r : result.records) {
    EXPECT_EQ(r.vantage, "ec2-ohio");
    EXPECT_FALSE(r.resolver.empty());
    EXPECT_FALSE(r.domain.empty());
    EXPECT_EQ(r.protocol, client::Protocol::DoH);
    if (r.ok) {
      EXPECT_GT(r.response_ms, 0.0);
      EXPECT_FALSE(r.rcode.empty());
    } else {
      EXPECT_FALSE(r.error_class.empty());
    }
  }
}

TEST(Campaign, DeterministicForSeed) {
  auto run = [] {
    SimWorld world(123);
    MeasurementSpec spec = tiny_spec();
    spec.seed = 123;
    return CampaignRunner(world, spec).run();
  };
  const CampaignResult a = run();
  const CampaignResult b = run();
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].resolver, b.records[i].resolver);
    EXPECT_DOUBLE_EQ(a.records[i].response_ms, b.records[i].response_ms);
    EXPECT_EQ(a.records[i].ok, b.records[i].ok);
  }
  ASSERT_EQ(a.pings.size(), b.pings.size());
  for (std::size_t i = 0; i < a.pings.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.pings[i].rtt_ms, b.pings[i].rtt_ms);
  }
}

TEST(Campaign, DifferentSeedsProduceDifferentSamples) {
  SimWorld w1(1), w2(2);
  MeasurementSpec spec = tiny_spec();
  const CampaignResult a = CampaignRunner(w1, spec).run();
  const CampaignResult b = CampaignRunner(w2, spec).run();
  ASSERT_EQ(a.records.size(), b.records.size());
  int different = 0;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    if (a.records[i].response_ms != b.records[i].response_ms) ++different;
  }
  EXPECT_GT(different, static_cast<int>(a.records.size() / 2));
}

TEST(Campaign, InvalidSpecThrows) {
  SimWorld world(1);
  MeasurementSpec bad = tiny_spec();
  bad.rounds = 0;
  CampaignRunner runner(world, bad);
  EXPECT_THROW((void)runner.run(), std::invalid_argument);
}

TEST(Campaign, ResponseTimeAccessors) {
  SimWorld world(5);
  const CampaignResult result = CampaignRunner(world, tiny_spec()).run();
  const auto rts = result.response_times("ec2-ohio", "dns.google");
  EXPECT_GT(rts.size(), 6u);  // 12 queries, few failures at most
  const auto pings = result.ping_times("ec2-ohio", "dns.google");
  EXPECT_GT(pings.size(), 2u);
  EXPECT_TRUE(result.response_times("ec2-seoul", "dns.google").empty());
}

TEST(Campaign, JsonRoundTrip) {
  SimWorld world(9);
  MeasurementSpec spec = tiny_spec();
  spec.rounds = 2;
  const CampaignResult result = CampaignRunner(world, spec).run();

  std::ostringstream os;
  result.write_json(os);
  auto parsed = Json::parse(os.str());
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  auto round = CampaignResult::from_json(parsed.value());
  ASSERT_TRUE(round.has_value()) << round.error();
  EXPECT_EQ(round.value().records.size(), result.records.size());
  EXPECT_EQ(round.value().pings.size(), result.pings.size());
  EXPECT_EQ(round.value().spec.resolvers, spec.resolvers);
  // Availability is rebuilt from records.
  EXPECT_EQ(round.value().availability.overall().successes,
            result.availability.overall().successes);
  EXPECT_EQ(round.value().availability.overall().errors,
            result.availability.overall().errors);
}

TEST(Campaign, MultiVantageRecordsAllVantages) {
  SimWorld world(3);
  MeasurementSpec spec = tiny_spec();
  spec.vantage_ids = {"ec2-ohio", "ec2-frankfurt", "home-chicago-1"};
  spec.rounds = 2;
  const CampaignResult result = CampaignRunner(world, spec).run();
  for (const std::string& vid : spec.vantage_ids) {
    int count = 0;
    for (const ResultRecord& r : result.records) {
      if (r.vantage == vid) ++count;
    }
    EXPECT_EQ(count, 2 * 3 * 3) << vid;
  }
}

// ---- availability ledger ----------------------------------------------------------

TEST(Availability, CountsAndClasses) {
  AvailabilityLedger ledger;
  ResultRecord ok;
  ok.vantage = "v";
  ok.resolver = "r";
  ok.ok = true;
  ResultRecord bad = ok;
  bad.ok = false;
  bad.error_class = "connect-timeout";

  ledger.record(ok);
  ledger.record(ok);
  ledger.record(bad);
  EXPECT_EQ(ledger.overall().successes, 2u);
  EXPECT_EQ(ledger.overall().errors, 1u);
  EXPECT_NEAR(ledger.overall().error_rate(), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(ledger.per_resolver("r").total(), 3u);
  EXPECT_EQ(ledger.per_pair("v", "r").errors, 1u);
  EXPECT_EQ(ledger.dominant_error_class(), "connect-timeout");
  EXPECT_EQ(ledger.resolvers(), std::vector<std::string>{"r"});
}

TEST(Availability, UnresponsivePredicate) {
  AvailabilityLedger ledger;
  ResultRecord bad;
  bad.vantage = "v";
  bad.resolver = "dead";
  bad.ok = false;
  bad.error_class = "timeout";
  ledger.record(bad);
  EXPECT_TRUE(ledger.unresponsive_from("v", "dead"));
  EXPECT_FALSE(ledger.unresponsive_from("v", "never-measured"));

  ResultRecord ok = bad;
  ok.ok = true;
  ledger.record(ok);
  EXPECT_FALSE(ledger.unresponsive_from("v", "dead"));
}

TEST(Availability, EmptyLedger) {
  AvailabilityLedger ledger;
  EXPECT_EQ(ledger.overall().total(), 0u);
  EXPECT_DOUBLE_EQ(ledger.overall().error_rate(), 0.0);
  EXPECT_EQ(ledger.dominant_error_class(), "");
}

// ---- world ---------------------------------------------------------------------

TEST(World, VantageIsCachedAndQuirked) {
  SimWorld world(4);
  auto& v1 = world.vantage("home-chicago-1");
  auto& v2 = world.vantage("home-chicago-1");
  EXPECT_EQ(&v1, &v2);
  EXPECT_TRUE(v1.info.is_home());
  EXPECT_THROW((void)world.vantage("nope"), std::out_of_range);
}

TEST(World, FleetCoversWholeRegistry) {
  SimWorld world(4);
  EXPECT_EQ(world.fleet().specs().size(), resolver::paper_resolver_list().size());
}


TEST(Campaign, SequentialCampaignsInOneWorld) {
  // The paper's follow-up spans: campaigns run back-to-back in one world,
  // each scheduling relative to the simulation's current time.
  SimWorld world(88);
  MeasurementSpec spec = tiny_spec();
  spec.rounds = 2;
  const CampaignResult first = CampaignRunner(world, spec).run();
  const CampaignResult second = CampaignRunner(world, spec).run();  // must not assert
  EXPECT_EQ(first.records.size(), second.records.size());
  // The second span's records carry later timestamps.
  EXPECT_GT(second.records.front().issued_at_ms, first.records.back().issued_at_ms - 1.0);
}

TEST(Campaign, OutageIsObservedAndClears) {
  SimWorld world(89);
  MeasurementSpec spec = tiny_spec();
  spec.rounds = 2;
  spec.resolvers = {"dns.google", "kronos.plan9-dns.com"};

  world.fleet().set_offline("kronos.plan9-dns.com", true);
  const CampaignResult down = CampaignRunner(world, spec).run();
  EXPECT_TRUE(down.availability.unresponsive_from("ec2-ohio", "kronos.plan9-dns.com"));
  EXPECT_FALSE(down.availability.unresponsive_from("ec2-ohio", "dns.google"));
  // Every failed record is a connection failure, like a real dark host.
  for (const ResultRecord& r : down.records) {
    if (r.resolver == "kronos.plan9-dns.com") {
      EXPECT_FALSE(r.ok);
      EXPECT_EQ(r.error_class, "connect-timeout");
    }
  }

  world.fleet().set_offline("kronos.plan9-dns.com", false);
  const CampaignResult up = CampaignRunner(world, spec).run();
  EXPECT_FALSE(up.availability.unresponsive_from("ec2-ohio", "kronos.plan9-dns.com"));
}

TEST(Campaign, OutageSilencesDo53Too) {
  SimWorld world(90);
  MeasurementSpec spec = tiny_spec();
  spec.rounds = 1;
  spec.protocol = client::Protocol::Do53;
  spec.resolvers = {"kronos.plan9-dns.com"};
  world.fleet().set_offline("kronos.plan9-dns.com", true);
  const CampaignResult result = CampaignRunner(world, spec).run();
  for (const ResultRecord& r : result.records) EXPECT_FALSE(r.ok);
}

TEST(Campaign, DoqCampaignRuns) {
  SimWorld world(91);
  MeasurementSpec spec = tiny_spec();
  spec.protocol = client::Protocol::DoQ;
  spec.rounds = 2;
  const CampaignResult result = CampaignRunner(world, spec).run();
  EXPECT_EQ(result.records.size(), 2u * 3u * 3u);
  int ok = 0;
  for (const ResultRecord& r : result.records) {
    EXPECT_EQ(r.protocol, client::Protocol::DoQ);
    if (r.ok) ++ok;
  }
  EXPECT_GT(ok, 12);
}

}  // namespace
}  // namespace ednsm::core
