#include <gtest/gtest.h>

#include <cmath>

#include "util/json.h"

namespace ednsm::core {
namespace {

TEST(Json, ScalarsDump) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-3).dump(), "-3");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, NanBecomesNull) {
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

TEST(Json, EscapeSpecials) {
  EXPECT_EQ(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, ArrayAndObjectDump) {
  JsonArray arr = {Json(1), Json("two"), Json(nullptr)};
  EXPECT_EQ(Json(arr).dump(), "[1,\"two\",null]");
  JsonObject obj;
  obj["b"] = Json(2);
  obj["a"] = Json(1);
  EXPECT_EQ(Json(obj).dump(), "{\"a\":1,\"b\":2}");  // sorted keys
}

TEST(Json, PrettyPrint) {
  JsonObject obj;
  obj["k"] = Json(JsonArray{Json(1)});
  const std::string pretty = Json(obj).dump(2);
  EXPECT_NE(pretty.find("\n  \"k\": [\n    1\n  ]\n"), std::string::npos);
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json(JsonArray{}).dump(2), "[]");
  EXPECT_EQ(Json(JsonObject{}).dump(2), "{}");
}

TEST(Json, ParseScalars) {
  EXPECT_EQ(Json::parse("null").value(), Json(nullptr));
  EXPECT_EQ(Json::parse("true").value(), Json(true));
  EXPECT_EQ(Json::parse("false").value(), Json(false));
  EXPECT_EQ(Json::parse("3.5").value(), Json(3.5));
  EXPECT_EQ(Json::parse("-17").value(), Json(-17));
  EXPECT_EQ(Json::parse("1e3").value(), Json(1000.0));
  EXPECT_EQ(Json::parse("\"s\"").value(), Json("s"));
}

TEST(Json, ParseNested) {
  auto j = Json::parse(R"({"a": [1, {"b": "x"}], "c": null})");
  ASSERT_TRUE(j.has_value()) << j.error();
  EXPECT_EQ(j.value().at("a").as_array()[1].at("b").as_string(), "x");
  EXPECT_TRUE(j.value().at("c").is_null());
  EXPECT_TRUE(j.value().at("missing").is_null());
}

TEST(Json, ParseWhitespaceTolerant) {
  auto j = Json::parse("  {\n\t\"k\" :  1 , \"l\":[ ] }  ");
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j.value().at("k").as_number(), 1.0);
}

TEST(Json, ParseEscapes) {
  auto j = Json::parse(R"("a\"b\\c\ndA")");
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j.value().as_string(), "a\"b\\c\ndA");
}

TEST(Json, ParseUnicodeEscapesUtf8) {
  auto j = Json::parse(R"("é€")");  // é + €
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j.value().as_string(), "\xc3\xa9\xe2\x82\xac");
}

TEST(Json, ParseRejectsMalformed) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(Json::parse("{\"a\":1} extra").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("nul").has_value());
  EXPECT_FALSE(Json::parse("01a").has_value());
  EXPECT_FALSE(Json::parse("\"bad \\q escape\"").has_value());
  EXPECT_FALSE(Json::parse("\"\\u12g4\"").has_value());
}

TEST(Json, RoundTripComplexDocument) {
  JsonObject o;
  o["name"] = Json("ednsm");
  o["count"] = Json(75);
  o["rate"] = Json(0.0575);
  o["ok"] = Json(true);
  o["tags"] = Json(JsonArray{Json("doh"), Json("dot"), Json("do53")});
  JsonObject nested;
  nested["x"] = Json(nullptr);
  o["meta"] = Json(std::move(nested));
  const Json original{std::move(o)};

  for (int indent : {0, 2, 4}) {
    auto round = Json::parse(original.dump(indent));
    ASSERT_TRUE(round.has_value());
    EXPECT_EQ(round.value(), original);
  }
}

TEST(Json, NumberPrecisionRoundTrips) {
  const double values[] = {0.1, 1.0 / 3.0, 1e-12, 123456789.123456, 5e15};
  for (double v : values) {
    auto parsed = Json::parse(Json(v).dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_DOUBLE_EQ(parsed.value().as_number(), v);
  }
}

TEST(Json, TypePredicates) {
  EXPECT_TRUE(Json(nullptr).is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(1.0).is_number());
  EXPECT_TRUE(Json("s").is_string());
  EXPECT_TRUE(Json(JsonArray{}).is_array());
  EXPECT_TRUE(Json(JsonObject{}).is_object());
  EXPECT_FALSE(Json(1.0).is_string());
}

TEST(Json, AtOnNonObjectReturnsNull) {
  EXPECT_TRUE(Json(5).at("k").is_null());
}

}  // namespace
}  // namespace ednsm::core
