#include <gtest/gtest.h>

#include "core/spec.h"

namespace ednsm::core {
namespace {

MeasurementSpec small_spec() {
  MeasurementSpec spec;
  spec.resolvers = {"dns.google", "ordns.he.net"};
  spec.vantage_ids = {"ec2-ohio"};
  spec.rounds = 3;
  spec.seed = 7;
  return spec;
}

TEST(Spec, DefaultsMatchPaper) {
  const MeasurementSpec spec;
  EXPECT_EQ(spec.domains,
            (std::vector<std::string>{"google.com", "amazon.com", "wikipedia.com"}));
  EXPECT_EQ(spec.protocol, client::Protocol::DoH);
  EXPECT_EQ(spec.round_interval, std::chrono::hours(8));  // three times a day
}

TEST(Spec, ValidationCatchesEmptyLists) {
  MeasurementSpec spec = small_spec();
  spec.resolvers.clear();
  EXPECT_FALSE(spec.validate().has_value());

  spec = small_spec();
  spec.domains.clear();
  EXPECT_FALSE(spec.validate().has_value());

  spec = small_spec();
  spec.vantage_ids.clear();
  EXPECT_FALSE(spec.validate().has_value());
}

TEST(Spec, ValidationCatchesBadNumbers) {
  MeasurementSpec spec = small_spec();
  spec.rounds = 0;
  EXPECT_FALSE(spec.validate().has_value());

  spec = small_spec();
  spec.round_interval = netsim::kZeroDuration;
  EXPECT_FALSE(spec.validate().has_value());

  spec = small_spec();
  spec.query_options.timeout = netsim::kZeroDuration;
  EXPECT_FALSE(spec.validate().has_value());

  EXPECT_TRUE(small_spec().validate().has_value());
}

TEST(Spec, JsonRoundTrip) {
  MeasurementSpec spec = small_spec();
  spec.protocol = client::Protocol::DoT;
  spec.query_options.reuse = transport::ReusePolicy::TicketResumption;
  spec.query_options.use_post = true;
  spec.query_options.use_http2 = false;
  spec.query_options.timeout = std::chrono::milliseconds(2500);

  auto round = MeasurementSpec::from_json(spec.to_json());
  ASSERT_TRUE(round.has_value()) << round.error();
  EXPECT_EQ(round.value().resolvers, spec.resolvers);
  EXPECT_EQ(round.value().domains, spec.domains);
  EXPECT_EQ(round.value().vantage_ids, spec.vantage_ids);
  EXPECT_EQ(round.value().protocol, spec.protocol);
  EXPECT_EQ(round.value().rounds, spec.rounds);
  EXPECT_EQ(round.value().round_interval, spec.round_interval);
  EXPECT_EQ(round.value().query_options.reuse, spec.query_options.reuse);
  EXPECT_EQ(round.value().query_options.use_post, spec.query_options.use_post);
  EXPECT_EQ(round.value().query_options.use_http2, spec.query_options.use_http2);
  EXPECT_EQ(round.value().query_options.timeout, spec.query_options.timeout);
  EXPECT_EQ(round.value().seed, spec.seed);
}

TEST(Spec, FromJsonRejectsBadInput) {
  EXPECT_FALSE(MeasurementSpec::from_json(Json(nullptr)).has_value());
  JsonObject o;
  o["resolvers"] = Json("not-an-array");
  EXPECT_FALSE(MeasurementSpec::from_json(Json(o)).has_value());

  // Unknown protocol.
  MeasurementSpec spec = small_spec();
  Json j = spec.to_json();
  j.as_object()["protocol"] = Json("DoX");
  EXPECT_FALSE(MeasurementSpec::from_json(j).has_value());

  // Unknown reuse policy.
  j = spec.to_json();
  j.as_object()["reuse"] = Json("sometimes");
  EXPECT_FALSE(MeasurementSpec::from_json(j).has_value());
}

TEST(ResultRecord, JsonRoundTripOk) {
  ResultRecord r;
  r.vantage = "ec2-ohio";
  r.resolver = "dns.google";
  r.domain = "google.com";
  r.protocol = client::Protocol::DoH;
  r.round = 4;
  r.issued_at_ms = 123.5;
  r.ok = true;
  r.response_ms = 31.25;
  r.connect_ms = 20.5;
  r.connection_reused = true;
  r.rcode = "NOERROR";
  r.http_status = 200;
  r.answer_count = 2;

  auto round = ResultRecord::from_json(r.to_json());
  ASSERT_TRUE(round.has_value()) << round.error();
  EXPECT_EQ(round.value().vantage, r.vantage);
  EXPECT_EQ(round.value().resolver, r.resolver);
  EXPECT_EQ(round.value().ok, r.ok);
  EXPECT_DOUBLE_EQ(round.value().response_ms, r.response_ms);
  EXPECT_EQ(round.value().rcode, r.rcode);
  EXPECT_EQ(round.value().http_status, r.http_status);
  EXPECT_EQ(round.value().answer_count, r.answer_count);
  EXPECT_TRUE(round.value().connection_reused);
}

TEST(ResultRecord, JsonRoundTripError) {
  ResultRecord r;
  r.vantage = "home-chicago-1";
  r.resolver = "doh.ffmuc.net";
  r.domain = "amazon.com";
  r.ok = false;
  r.error_class = "connect-timeout";
  r.error_detail = "tcp: connection timed out";

  auto round = ResultRecord::from_json(r.to_json());
  ASSERT_TRUE(round.has_value());
  EXPECT_FALSE(round.value().ok);
  EXPECT_EQ(round.value().error_class, "connect-timeout");
  EXPECT_EQ(round.value().error_detail, "tcp: connection timed out");
  EXPECT_TRUE(round.value().rcode.empty());
}

TEST(ResultRecord, FromJsonRejectsMissingFields) {
  JsonObject o;
  o["vantage"] = Json("x");
  EXPECT_FALSE(ResultRecord::from_json(Json(o)).has_value());
  EXPECT_FALSE(ResultRecord::from_json(Json(3)).has_value());
}

TEST(PingRecord, JsonRoundTrip) {
  PingRecord p;
  p.vantage = "ec2-seoul";
  p.resolver = "dns.alidns.com";
  p.round = 2;
  p.ok = true;
  p.rtt_ms = 8.5;
  auto round = PingRecord::from_json(p.to_json());
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round.value().vantage, p.vantage);
  EXPECT_DOUBLE_EQ(round.value().rtt_ms, p.rtt_ms);

  PingRecord fail;
  fail.vantage = "v";
  fail.resolver = "r";
  fail.ok = false;
  auto round2 = PingRecord::from_json(fail.to_json());
  ASSERT_TRUE(round2.has_value());
  EXPECT_FALSE(round2.value().ok);
}

}  // namespace
}  // namespace ednsm::core
