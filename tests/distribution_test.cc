#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/distribution.h"

namespace ednsm::core {
namespace {

// ---- privacy ledger ----------------------------------------------------------

TEST(PrivacyLedger, EmptyLedger) {
  PrivacyLedger ledger;
  EXPECT_EQ(ledger.total(), 0u);
  EXPECT_DOUBLE_EQ(ledger.max_share(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.entropy_bits(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.max_domain_coverage(), 0.0);
}

TEST(PrivacyLedger, SingleResolverSeesEverything) {
  PrivacyLedger ledger;
  ledger.record("r1", "a.com");
  ledger.record("r1", "b.com");
  EXPECT_DOUBLE_EQ(ledger.max_share(), 1.0);
  EXPECT_DOUBLE_EQ(ledger.entropy_bits(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.max_domain_coverage(), 1.0);
  EXPECT_EQ(ledger.queries_seen("r1"), 2u);
  EXPECT_EQ(ledger.domains_seen("r1"), 2u);
  EXPECT_EQ(ledger.queries_seen("r2"), 0u);
}

TEST(PrivacyLedger, PerfectSplitMaximizesEntropy) {
  PrivacyLedger ledger;
  for (int i = 0; i < 100; ++i) {
    ledger.record(i % 2 == 0 ? "r1" : "r2", "d" + std::to_string(i) + ".com");
  }
  EXPECT_DOUBLE_EQ(ledger.max_share(), 0.5);
  EXPECT_NEAR(ledger.entropy_bits(), 1.0, 1e-12);  // log2(2)
  EXPECT_DOUBLE_EQ(ledger.max_domain_coverage(), 0.5);
}

TEST(PrivacyLedger, RepeatedDomainCountsOncePerResolver) {
  PrivacyLedger ledger;
  ledger.record("r1", "a.com");
  ledger.record("r1", "a.com");
  EXPECT_EQ(ledger.total(), 2u);
  EXPECT_EQ(ledger.domains_seen("r1"), 1u);
}

// ---- zipf workload -------------------------------------------------------------

TEST(ZipfWorkload, SizeAndSkew) {
  const auto w = zipf_workload(100, 10000, 1.0, 7);
  EXPECT_EQ(w.size(), 10000u);
  std::map<std::string, int> counts;
  for (const auto& d : w) ++counts[d];
  // The rank-0 domain must dominate the tail under alpha = 1.
  EXPECT_GT(counts["site0.example.com"], 1000);
  EXPECT_LT(counts["site99.example.com"], counts["site0.example.com"] / 5);
  // Not *everything* collapses to the head.
  EXPECT_GT(counts.size(), 50u);
}

TEST(ZipfWorkload, DeterministicForSeed) {
  EXPECT_EQ(zipf_workload(50, 100, 0.9, 3), zipf_workload(50, 100, 0.9, 3));
  EXPECT_NE(zipf_workload(50, 100, 0.9, 3), zipf_workload(50, 100, 0.9, 4));
}

// ---- strategies (pure pick(), no network) ---------------------------------------

struct DistFixture : ::testing::Test {
  SimWorld world{61};
  std::vector<std::string> resolvers = {"dns.google", "dns.quad9.net",
                                        "security.cloudflare-dns.com", "ordns.he.net"};

  QueryDistributor make(DistributionStrategy strategy, int k = 2) {
    DistributorConfig config;
    config.strategy = strategy;
    config.k = k;
    config.seed = 99;
    return QueryDistributor(world, "ec2-ohio", resolvers, config);
  }
};

TEST_F(DistFixture, RoundRobinCycles) {
  auto d = make(DistributionStrategy::RoundRobin);
  std::vector<std::string> picks;
  for (int i = 0; i < 8; ++i) picks.push_back(d.pick("x.com"));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(picks[static_cast<std::size_t>(i)], resolvers[static_cast<std::size_t>(i)]);
  EXPECT_EQ(picks[4], resolvers[0]);
}

TEST_F(DistFixture, HashShardedIsStablePerDomain) {
  auto d = make(DistributionStrategy::HashSharded);
  const std::string first = d.pick("news.example.com");
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.pick("news.example.com"), first);
  // Different domains spread across resolvers.
  std::set<std::string> seen;
  for (int i = 0; i < 64; ++i) seen.insert(d.pick("d" + std::to_string(i) + ".com"));
  EXPECT_GT(seen.size(), 2u);
}

TEST_F(DistFixture, UniformRandomCoversAll) {
  auto d = make(DistributionStrategy::UniformRandom);
  std::set<std::string> seen;
  for (int i = 0; i < 200; ++i) seen.insert(d.pick("x.com"));
  EXPECT_EQ(seen.size(), resolvers.size());
}

TEST_F(DistFixture, EmptyResolverSetThrows) {
  DistributorConfig config;
  EXPECT_THROW(QueryDistributor(world, "ec2-ohio", {}, config), std::invalid_argument);
}

// ---- calibration + end-to-end -----------------------------------------------------

TEST_F(DistFixture, CalibrationRanksLocalResolversFirst) {
  // Include a far-away unicast resolver: it must rank last from Ohio.
  std::vector<std::string> mixed = {"doh.ffmuc.net", "dns.google", "freedns.controld.com"};
  DistributorConfig config;
  config.strategy = DistributionStrategy::SingleFastest;
  QueryDistributor d(world, "ec2-ohio", mixed, config);
  d.calibrate(3);
  ASSERT_EQ(d.ranking().size(), 3u);
  EXPECT_EQ(d.ranking().back(), "doh.ffmuc.net");
  EXPECT_EQ(d.pick("anything.com"), d.ranking().front());
}

TEST_F(DistFixture, FastestKPicksOnlyFromTopK) {
  std::vector<std::string> mixed = {"doh.ffmuc.net", "dns.google", "freedns.controld.com",
                                    "dns.quad9.net"};
  DistributorConfig config;
  config.strategy = DistributionStrategy::FastestK;
  config.k = 2;
  config.seed = 5;
  QueryDistributor d(world, "ec2-ohio", mixed, config);
  d.calibrate(3);
  std::set<std::string> seen;
  for (int i = 0; i < 100; ++i) seen.insert(d.pick("x.com"));
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_FALSE(seen.contains("doh.ffmuc.net"));
}

TEST_F(DistFixture, ResolveRecordsPrivacyAndAnswers) {
  auto d = make(DistributionStrategy::RoundRobin);
  int ok = 0;
  const auto workload = zipf_workload(20, 40, 1.0, 1);
  for (const std::string& domain : workload) {
    d.resolve(domain, [&](const std::string& resolver, client::QueryOutcome o) {
      EXPECT_FALSE(resolver.empty());
      if (o.ok) ++ok;
    });
    world.run();
  }
  EXPECT_GT(ok, 35);
  EXPECT_EQ(d.privacy().total(), 40u);
  // Round-robin: perfectly even query split.
  EXPECT_NEAR(d.privacy().max_share(), 0.25, 1e-9);
  EXPECT_NEAR(d.privacy().entropy_bits(), 2.0, 1e-9);
}

TEST_F(DistFixture, ShardingLimitsDomainCoverage) {
  auto sharded = make(DistributionStrategy::HashSharded);
  auto single = make(DistributionStrategy::SingleFastest);
  const auto workload = zipf_workload(50, 120, 1.0, 2);
  for (const std::string& domain : workload) {
    (void)sharded.pick(domain);
    sharded.resolve(domain, [](const std::string&, client::QueryOutcome) {});
    single.resolve(domain, [](const std::string&, client::QueryOutcome) {});
    world.run();
  }
  EXPECT_LT(sharded.privacy().max_domain_coverage(), 0.75);
  EXPECT_DOUBLE_EQ(single.privacy().max_domain_coverage(), 1.0);
}

}  // namespace
}  // namespace ednsm::core
