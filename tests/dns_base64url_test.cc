#include <gtest/gtest.h>

#include "dns/base64url.h"
#include "netsim/rng.h"

namespace ednsm::dns {
namespace {

TEST(Base64Url, Rfc4648Vectors) {
  // RFC 4648 §10 test vectors, with padding stripped.
  EXPECT_EQ(base64url_encode(util::to_bytes("")), "");
  EXPECT_EQ(base64url_encode(util::to_bytes("f")), "Zg");
  EXPECT_EQ(base64url_encode(util::to_bytes("fo")), "Zm8");
  EXPECT_EQ(base64url_encode(util::to_bytes("foo")), "Zm9v");
  EXPECT_EQ(base64url_encode(util::to_bytes("foob")), "Zm9vYg");
  EXPECT_EQ(base64url_encode(util::to_bytes("fooba")), "Zm9vYmE");
  EXPECT_EQ(base64url_encode(util::to_bytes("foobar")), "Zm9vYmFy");
}

TEST(Base64Url, UrlSafeAlphabet) {
  // 0xfb 0xff encodes to characters that differ between base64 and base64url.
  const util::Bytes data = {0xfb, 0xff, 0xfe};
  const std::string enc = base64url_encode(data);
  EXPECT_EQ(enc.find('+'), std::string::npos);
  EXPECT_EQ(enc.find('/'), std::string::npos);
  EXPECT_NE(enc.find_first_of("-_"), std::string::npos);
}

TEST(Base64Url, DecodeRejectsPadding) {
  EXPECT_FALSE(base64url_decode("Zg==").has_value());
}

TEST(Base64Url, DecodeRejectsStandardAlphabet) {
  EXPECT_FALSE(base64url_decode("+/").has_value());
}

TEST(Base64Url, DecodeRejectsWhitespace) {
  EXPECT_FALSE(base64url_decode("Zm 9v").has_value());
}

TEST(Base64Url, DecodeRejectsLength1Mod4) {
  EXPECT_FALSE(base64url_decode("Zm9vY").has_value());
}

TEST(Base64Url, DecodeRejectsNonCanonicalTrailingBits) {
  // "Zh" decodes 'f' only if trailing bits are zero; "Zh" has nonzero bits.
  EXPECT_TRUE(base64url_decode("Zg").has_value());
  EXPECT_FALSE(base64url_decode("Zh").has_value());
}

TEST(Base64Url, EmptyRoundTrip) {
  auto d = base64url_decode("");
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d.value().empty());
}

// Property sweep: encode/decode must be the identity for random inputs of
// every length class (0, 1, 2 mod 3) and sizes up to a few KiB.
class Base64UrlRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Base64UrlRoundTrip, Identity) {
  netsim::Rng rng(GetParam() * 7919 + 1);
  util::Bytes data(GetParam());
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64() & 0xff);

  const std::string encoded = base64url_encode(data);
  auto decoded = base64url_decode(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded.value(), data);
  // Unpadded length formula: ceil(4n/3).
  EXPECT_EQ(encoded.size(), (data.size() * 4 + 2) / 3);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Base64UrlRoundTrip,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 16, 17, 63, 64, 100, 255, 256,
                                           1024, 4096));

}  // namespace
}  // namespace ednsm::dns
