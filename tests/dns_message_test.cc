#include <gtest/gtest.h>

#include "dns/edns.h"
#include "dns/message.h"

namespace ednsm::dns {
namespace {

Message sample_query() {
  return make_query(0x1234, Name::parse("google.com").value(), RecordType::A);
}

TEST(Message, QueryRoundTrip) {
  const Message q = sample_query();
  auto decoded = Message::decode(q.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded.value(), q);
}

TEST(Message, HeaderFlagsRoundTrip) {
  Message m = sample_query();
  m.header.qr = true;
  m.header.aa = true;
  m.header.tc = true;
  m.header.rd = false;
  m.header.ra = true;
  m.header.ad = true;
  m.header.cd = true;
  m.header.rcode = Rcode::NxDomain;
  m.header.opcode = Opcode::Status;
  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded.value().header, m.header);
}

TEST(Message, ResponseEchoesQuestionAndId) {
  const Message q = sample_query();
  const Message r = make_response(q, Rcode::NoError, {});
  EXPECT_EQ(r.header.id, q.header.id);
  EXPECT_TRUE(r.header.qr);
  ASSERT_EQ(r.questions.size(), 1u);
  EXPECT_EQ(r.questions.front(), q.questions.front());
}

ResourceRecord a_record(const char* name, std::uint32_t ttl, std::uint8_t last_octet) {
  ResourceRecord rr;
  rr.name = Name::parse(name).value();
  rr.type = RecordType::A;
  rr.ttl = ttl;
  ARecord a;
  a.address = {192, 0, 2, last_octet};
  rr.rdata = a;
  return rr;
}

TEST(Message, ARecordRoundTrip) {
  Message m = make_response(sample_query(), Rcode::NoError, {a_record("google.com", 300, 1)});
  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded.value().answers.size(), 1u);
  const auto& a = std::get<ARecord>(decoded.value().answers[0].rdata);
  EXPECT_EQ(a.to_string(), "192.0.2.1");
  EXPECT_EQ(decoded.value().answers[0].ttl, 300u);
}

TEST(Message, MultipleAnswersCompressOwnerNames) {
  Message m = make_response(sample_query(), Rcode::NoError,
                            {a_record("google.com", 300, 1), a_record("google.com", 300, 2),
                             a_record("google.com", 300, 3)});
  const util::Bytes wire = m.encode();
  // Each repeated owner name should cost 2 bytes (pointer), not 12.
  auto decoded = Message::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded.value().answers.size(), 3u);
  // Upper bound check: 12 (header) + question (16) + OPT (11) + 3 RRs.
  // Without compression an RR owner is 12 bytes; with pointers 2.
  EXPECT_LT(wire.size(), 100u);
}

TEST(Message, AaaaRoundTrip) {
  ResourceRecord rr;
  rr.name = Name::parse("v6.example").value();
  rr.type = RecordType::AAAA;
  rr.ttl = 60;
  AaaaRecord aaaa;
  aaaa.address = {0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1};
  rr.rdata = aaaa;
  Message m = make_response(sample_query(), Rcode::NoError, {rr});
  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  const auto& got = std::get<AaaaRecord>(decoded.value().answers[0].rdata);
  EXPECT_EQ(got.to_string(), "2001:0db8:0000:0000:0000:0000:0000:0001");
}

TEST(Message, CnameChainRoundTrip) {
  ResourceRecord cname;
  cname.name = Name::parse("www.example.com").value();
  cname.type = RecordType::CNAME;
  cname.ttl = 120;
  cname.rdata = CnameRecord{Name::parse("example.com").value()};
  Message m = make_response(sample_query(), Rcode::NoError,
                            {cname, a_record("example.com", 120, 7)});
  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<CnameRecord>(decoded.value().answers[0].rdata).target.to_string(),
            "example.com");
}

TEST(Message, TxtRoundTrip) {
  ResourceRecord rr;
  rr.name = Name::parse("example.com").value();
  rr.type = RecordType::TXT;
  rr.ttl = 30;
  rr.rdata = TxtRecord{{"v=spf1 -all", "second string"}};
  Message m = make_response(sample_query(), Rcode::NoError, {rr});
  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  const auto& txt = std::get<TxtRecord>(decoded.value().answers[0].rdata);
  ASSERT_EQ(txt.strings.size(), 2u);
  EXPECT_EQ(txt.strings[0], "v=spf1 -all");
}

TEST(Message, SoaRoundTrip) {
  ResourceRecord rr;
  rr.name = Name::parse("example.com").value();
  rr.type = RecordType::SOA;
  rr.ttl = 3600;
  SoaRecord soa;
  soa.mname = Name::parse("ns1.example.com").value();
  soa.rname = Name::parse("hostmaster.example.com").value();
  soa.serial = 2024050901;
  soa.refresh = 7200;
  soa.retry = 900;
  soa.expire = 1209600;
  soa.minimum = 300;
  rr.rdata = soa;
  Message m = make_response(sample_query(), Rcode::NoError, {rr});
  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<SoaRecord>(decoded.value().answers[0].rdata), soa);
}

TEST(Message, MxNsPtrSrvRoundTrip) {
  std::vector<ResourceRecord> answers;
  {
    ResourceRecord rr;
    rr.name = Name::parse("example.com").value();
    rr.type = RecordType::MX;
    rr.rdata = MxRecord{10, Name::parse("mail.example.com").value()};
    answers.push_back(rr);
  }
  {
    ResourceRecord rr;
    rr.name = Name::parse("example.com").value();
    rr.type = RecordType::NS;
    rr.rdata = NsRecord{Name::parse("ns1.example.com").value()};
    answers.push_back(rr);
  }
  {
    ResourceRecord rr;
    rr.name = Name::parse("1.2.0.192.in-addr.arpa").value();
    rr.type = RecordType::PTR;
    rr.rdata = PtrRecord{Name::parse("example.com").value()};
    answers.push_back(rr);
  }
  {
    ResourceRecord rr;
    rr.name = Name::parse("_dns._udp.example.com").value();
    rr.type = RecordType::SRV;
    rr.rdata = SrvRecord{1, 2, 853, Name::parse("dot.example.com").value()};
    answers.push_back(rr);
  }
  Message m = make_response(sample_query(), Rcode::NoError, answers);
  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded.value().answers, answers);
}

TEST(Message, OpaqueRdataForUnknownType) {
  ResourceRecord rr;
  rr.name = Name::parse("example.com").value();
  rr.type = RecordType::HTTPS;
  rr.rdata = OpaqueRdata{{1, 2, 3, 4, 5}};
  Message m = make_response(sample_query(), Rcode::NoError, {rr});
  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<OpaqueRdata>(decoded.value().answers[0].rdata).data,
            (util::Bytes{1, 2, 3, 4, 5}));
}

// ---- EDNS ---------------------------------------------------------------------

TEST(Edns, QueryCarriesOpt) {
  const Message q = sample_query();
  ASSERT_TRUE(q.edns.has_value());
  auto decoded = Message::decode(q.encode());
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded.value().edns.has_value());
  EXPECT_EQ(decoded.value().edns->udp_payload_size, 1232);
}

TEST(Edns, DnssecOkBitRoundTrips) {
  Message q = make_query(1, Name::parse("example.com").value(), RecordType::A, true);
  auto decoded = Message::decode(q.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded.value().edns->dnssec_ok);
}

TEST(Edns, PaddingRoundsMessageToBlock) {
  const Message q = sample_query();
  const util::Bytes padded = q.encode(128);
  EXPECT_EQ(padded.size() % 128, 0u);
  auto decoded = Message::decode(padded);
  ASSERT_TRUE(decoded.has_value());
  // Padding option present.
  bool has_padding = false;
  for (const EdnsOption& o : decoded.value().edns->options) {
    if (o.code == static_cast<std::uint16_t>(OptionCode::Padding)) has_padding = true;
  }
  EXPECT_TRUE(has_padding);
}

TEST(Edns, PaddingDifferentSizesSameBlock) {
  // Different qnames, same padded size class.
  const Message a = make_query(1, Name::parse("a.com").value(), RecordType::A);
  const Message b = make_query(2, Name::parse("muchlongername.example.com").value(),
                               RecordType::A);
  EXPECT_EQ(a.encode(128).size(), b.encode(128).size());
}

TEST(Edns, DuplicateOptRejected) {
  Message q = sample_query();
  util::Bytes wire = q.encode();
  // Append a second OPT RR and bump ARCOUNT.
  EdnsInfo extra;
  WireWriter w;
  write_opt_rr(w, extra);
  wire.insert(wire.end(), w.data().begin(), w.data().end());
  wire[11] = 2;  // ARCOUNT low byte (was 1)
  EXPECT_FALSE(Message::decode(wire).has_value());
}

TEST(Edns, UnsupportedVersionRejected) {
  auto r = parse_opt_rr(1232, /*ttl=*/static_cast<std::uint32_t>(1) << 16, {});
  EXPECT_FALSE(r.has_value());
}

// ---- malformed input ------------------------------------------------------------

TEST(MessageMalformed, TruncatedHeader) {
  const util::Bytes wire = {0x12, 0x34, 0x00};
  EXPECT_FALSE(Message::decode(wire).has_value());
}

TEST(MessageMalformed, TrailingGarbage) {
  util::Bytes wire = sample_query().encode();
  wire.push_back(0xFF);
  EXPECT_FALSE(Message::decode(wire).has_value());
}

TEST(MessageMalformed, CountsBeyondData) {
  util::Bytes wire = sample_query().encode();
  wire[5] = 9;  // QDCOUNT = 9, but only one question present
  EXPECT_FALSE(Message::decode(wire).has_value());
}

TEST(MessageMalformed, RdlengthMismatchRejected) {
  Message m = make_response(sample_query(), Rcode::NoError, {a_record("google.com", 60, 1)});
  util::Bytes wire = m.encode();
  // Find the A RDLENGTH (4) and corrupt it to 3. The RDATA of an A record is
  // the last 4 bytes before the OPT RR (11 bytes from the end).
  const std::size_t rdlen_offset = wire.size() - 11 - 4 - 2;
  ASSERT_EQ(wire[rdlen_offset + 1], 4);
  wire[rdlen_offset + 1] = 3;
  EXPECT_FALSE(Message::decode(wire).has_value());
}

TEST(MessageMalformed, EmptyInput) {
  EXPECT_FALSE(Message::decode({}).has_value());
}

TEST(Message, Summarize) {
  EXPECT_EQ(summarize(sample_query()), "QUERY google.com A");
  const Message r = make_response(sample_query(), Rcode::NxDomain, {});
  EXPECT_EQ(summarize(r), "RESPONSE google.com A -> NXDOMAIN 0 ans");
}

// ---- types ----------------------------------------------------------------------

TEST(Types, RecordTypeStrings) {
  EXPECT_EQ(to_string(RecordType::A), "A");
  EXPECT_EQ(to_string(RecordType::AAAA), "AAAA");
  EXPECT_EQ(to_string(RecordType::OPT), "OPT");
  RecordType t;
  EXPECT_TRUE(parse_record_type("aaaa", t));
  EXPECT_EQ(t, RecordType::AAAA);
  EXPECT_FALSE(parse_record_type("bogus", t));
}

TEST(Types, RcodeStrings) {
  EXPECT_EQ(to_string(Rcode::NoError), "NOERROR");
  EXPECT_EQ(to_string(Rcode::ServFail), "SERVFAIL");
  EXPECT_EQ(to_string(Rcode::NxDomain), "NXDOMAIN");
}

}  // namespace
}  // namespace ednsm::dns
