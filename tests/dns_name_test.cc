#include <gtest/gtest.h>

#include "dns/name.h"
#include "dns/wire.h"

namespace ednsm::dns {
namespace {

TEST(Name, ParseBasic) {
  auto n = Name::parse("dns.google");
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n.value().label_count(), 2u);
  EXPECT_EQ(n.value().to_string(), "dns.google");
}

TEST(Name, RootForms) {
  for (const char* text : {"", "."}) {
    auto n = Name::parse(text);
    ASSERT_TRUE(n.has_value()) << text;
    EXPECT_TRUE(n.value().is_root());
    EXPECT_EQ(n.value().to_string(), ".");
    EXPECT_EQ(n.value().wire_length(), 1u);
  }
}

TEST(Name, TrailingDotAccepted) {
  auto a = Name::parse("example.com.");
  auto b = Name::parse("example.com");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a.value(), b.value());
}

TEST(Name, CaseInsensitiveEquality) {
  auto a = Name::parse("DNS.Google");
  auto b = Name::parse("dns.google");
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(a.value().hash(), b.value().hash());
}

TEST(Name, RejectsEmptyLabel) {
  EXPECT_FALSE(Name::parse("a..b").has_value());
  EXPECT_FALSE(Name::parse(".a").has_value());
  EXPECT_FALSE(Name::parse("..").has_value());
}

TEST(Name, RejectsBadCharacters) {
  EXPECT_FALSE(Name::parse("exa mple.com").has_value());
  EXPECT_FALSE(Name::parse("exam!ple.com").has_value());
  EXPECT_TRUE(Name::parse("_dns-sd._udp.local").has_value());  // service labels ok
}

TEST(Name, LabelLengthLimit) {
  const std::string label63(63, 'a');
  EXPECT_TRUE(Name::parse(label63 + ".com").has_value());
  const std::string label64(64, 'a');
  EXPECT_FALSE(Name::parse(label64 + ".com").has_value());
}

TEST(Name, TotalLengthLimit) {
  // 4 * (63+1) + 1 = 257 > 255 -> reject; 3 labels of 63 ok (193).
  const std::string l(63, 'x');
  EXPECT_TRUE(Name::parse(l + "." + l + "." + l).has_value());
  EXPECT_FALSE(Name::parse(l + "." + l + "." + l + "." + l).has_value());
}

TEST(Name, WireLength) {
  auto n = Name::parse("abc.de");
  ASSERT_TRUE(n.has_value());
  // 1+3 + 1+2 + 1 = 8
  EXPECT_EQ(n.value().wire_length(), 8u);
}

TEST(Name, SubdomainChecks) {
  const Name zone = Name::parse("example.com").value();
  EXPECT_TRUE(Name::parse("example.com").value().is_subdomain_of(zone));
  EXPECT_TRUE(Name::parse("www.example.com").value().is_subdomain_of(zone));
  EXPECT_TRUE(Name::parse("a.b.EXAMPLE.COM").value().is_subdomain_of(zone));
  EXPECT_FALSE(Name::parse("example.org").value().is_subdomain_of(zone));
  EXPECT_FALSE(Name::parse("com").value().is_subdomain_of(zone));
  EXPECT_TRUE(zone.is_subdomain_of(Name()));  // everything under root
}

TEST(Name, Parent) {
  const Name n = Name::parse("a.b.c").value();
  EXPECT_EQ(n.parent().to_string(), "b.c");
  EXPECT_EQ(n.parent().parent().to_string(), "c");
  EXPECT_TRUE(n.parent().parent().parent().is_root());
  EXPECT_TRUE(Name().parent().is_root());
}

// ---- wire encoding + compression ---------------------------------------------

TEST(NameWire, UncompressedRoundTrip) {
  WireWriter w;
  NameCompressor comp;
  comp.write(w, Name::parse("www.example.com").value());

  WireReader r(w.data());
  auto decoded = read_name(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded.value().to_string(), "www.example.com");
  EXPECT_TRUE(r.at_end());
}

TEST(NameWire, RootRoundTrip) {
  WireWriter w;
  NameCompressor comp;
  comp.write(w, Name());
  EXPECT_EQ(w.size(), 1u);
  WireReader r(w.data());
  auto decoded = read_name(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded.value().is_root());
}

TEST(NameWire, CompressionEmitsPointer) {
  WireWriter w;
  NameCompressor comp;
  comp.write(w, Name::parse("www.example.com").value());
  const std::size_t first_len = w.size();
  comp.write(w, Name::parse("mail.example.com").value());
  // Second name should be: 1+4 ("mail") + 2 (pointer) = 7 bytes.
  EXPECT_EQ(w.size() - first_len, 7u);

  WireReader r(w.data());
  auto first = read_name(r);
  ASSERT_TRUE(first.has_value());
  auto second = read_name(r);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second.value().to_string(), "mail.example.com");
  EXPECT_TRUE(r.at_end());
}

TEST(NameWire, FullNamePointerForRepeat) {
  WireWriter w;
  NameCompressor comp;
  const Name n = Name::parse("a.b.c").value();
  comp.write(w, n);
  const std::size_t first_len = w.size();
  comp.write(w, n);
  EXPECT_EQ(w.size() - first_len, 2u);  // just a pointer

  WireReader r(w.data());
  (void)read_name(r);
  auto again = read_name(r);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again.value(), n);
}

TEST(NameWire, CompressionIsCaseInsensitive) {
  WireWriter w;
  NameCompressor comp;
  comp.write(w, Name::parse("WWW.Example.COM").value());
  const std::size_t first_len = w.size();
  comp.write(w, Name::parse("www.example.com").value());
  EXPECT_EQ(w.size() - first_len, 2u);
}

TEST(NameWire, RejectsForwardPointer) {
  // Pointer to offset 4 from offset 0 (forward) must be rejected.
  const util::Bytes wire = {0xC0, 0x04, 0x00, 0x00, 0x03, 'c', 'o', 'm', 0x00};
  WireReader r(wire);
  EXPECT_FALSE(read_name(r).has_value());
}

TEST(NameWire, RejectsSelfPointerLoop) {
  const util::Bytes wire = {0xC0, 0x00};
  WireReader r(wire);
  EXPECT_FALSE(read_name(r).has_value());
}

TEST(NameWire, RejectsTruncatedLabel) {
  const util::Bytes wire = {0x05, 'a', 'b'};
  WireReader r(wire);
  EXPECT_FALSE(read_name(r).has_value());
}

TEST(NameWire, RejectsMissingTerminator) {
  const util::Bytes wire = {0x01, 'a'};
  WireReader r(wire);
  EXPECT_FALSE(read_name(r).has_value());
}

TEST(NameWire, RejectsReservedLabelType) {
  const util::Bytes wire = {0x80, 'a', 0x00};
  WireReader r(wire);
  EXPECT_FALSE(read_name(r).has_value());
}

TEST(NameWire, PointerChainBacktracksCorrectly) {
  // Layout: "com" at 0, "example.com" at 5 (label + pointer to 0),
  // then a name at 15: "www" + pointer to 5.
  WireWriter w;
  NameCompressor comp;
  comp.write(w, Name::parse("com").value());
  comp.write(w, Name::parse("example.com").value());
  const std::size_t third_at = w.size();
  comp.write(w, Name::parse("www.example.com").value());

  WireReader r(w.data());
  ASSERT_TRUE(r.seek(third_at).has_value());
  auto n = read_name(r);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n.value().to_string(), "www.example.com");
  EXPECT_TRUE(r.at_end());  // cursor resumed after the pointer
}

// ---- wire primitives ---------------------------------------------------------

TEST(Wire, BigEndianRoundTrip) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  WireReader r(w.data());
  EXPECT_EQ(r.u8().value(), 0xAB);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xDEADBEEFu);
  EXPECT_TRUE(r.at_end());
}

TEST(Wire, TruncatedReadsFail) {
  const util::Bytes one = {0x01};
  WireReader r(one);
  EXPECT_FALSE(r.u16().has_value());
  EXPECT_TRUE(r.u8().has_value());
  EXPECT_FALSE(r.u8().has_value());
}

TEST(Wire, PatchU16) {
  WireWriter w;
  w.u16(0);
  w.u32(42);
  w.patch_u16(0, 0xBEEF);
  WireReader r(w.data());
  EXPECT_EQ(r.u16().value(), 0xBEEF);
}

TEST(Wire, SeekBounds) {
  const util::Bytes data = {1, 2, 3};
  WireReader r(data);
  EXPECT_TRUE(r.seek(3).has_value());  // end is valid
  EXPECT_FALSE(r.seek(4).has_value());
}

}  // namespace
}  // namespace ednsm::dns
