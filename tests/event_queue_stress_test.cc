// Stress and regression tests for the heap-based event queue: equivalence
// against a reference std::map model under random schedule/cancel/run
// interleavings, lazy-cancellation bookkeeping, cancellation from within a
// running callback, and the release-build past-time clamp.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "netsim/callback.h"
#include "netsim/event_queue.h"
#include "netsim/rng.h"

namespace ednsm::netsim {
namespace {

// The previous implementation of the queue, kept as a behavioral oracle: an
// ordered map of (when, seq) -> callback plus an id index. Slower, obviously
// correct, and shares the clamp contract for past-time scheduling.
class ModelQueue {
 public:
  using EventId = std::uint64_t;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  EventId schedule(SimDuration delay, std::function<void()> cb) {
    if (delay < kZeroDuration) delay = kZeroDuration;
    return schedule_at(now_ + delay, std::move(cb));
  }

  EventId schedule_at(SimTime when, std::function<void()> cb) {
    if (when < now_) when = now_;
    const EventId id = next_seq_++;
    events_.emplace(Key{when, id}, std::move(cb));
    index_.emplace(id, Key{when, id});
    return id;
  }

  bool cancel(EventId id) {
    const auto it = index_.find(id);
    if (it == index_.end()) return false;
    events_.erase(it->second);
    index_.erase(it);
    return true;
  }

  std::size_t run_until_idle() {
    std::size_t executed = 0;
    while (!events_.empty()) {
      run_front();
      ++executed;
    }
    return executed;
  }

  std::size_t run_until(SimTime deadline) {
    std::size_t executed = 0;
    while (!events_.empty() && events_.begin()->first.first <= deadline) {
      run_front();
      ++executed;
    }
    if (now_ < deadline) now_ = deadline;
    return executed;
  }

  [[nodiscard]] std::size_t pending() const noexcept { return events_.size(); }

 private:
  using Key = std::pair<SimTime, std::uint64_t>;

  void run_front() {
    const auto it = events_.begin();
    now_ = it->first.first;
    std::function<void()> cb = std::move(it->second);
    index_.erase(it->first.second);
    events_.erase(it);
    cb();
  }

  SimTime now_{0};
  std::uint64_t next_seq_ = 0;
  std::map<Key, std::function<void()>> events_;
  std::map<EventId, Key> index_;
};

TEST(EventQueueStress, MatchesMapModelOracle) {
  // Drive the real queue and the model with one op stream (drawn from a
  // deterministic RNG) and require identical execution logs, clocks, event
  // ids, cancel results, and pending counts at every checkpoint.
  EventQueue real;
  ModelQueue model;
  std::vector<std::uint64_t> real_log, model_log;
  std::vector<EventQueue::EventId> issued;

  Rng rng(0xfeedULL);
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t kind = rng.uniform_u64(100);
    if (kind < 55) {
      // Schedule (occasionally with a "negative" absolute time to exercise
      // the clamp: schedule_at at a time already in the past).
      const bool in_past = rng.bernoulli(0.1);
      const SimTime when = in_past
                               ? SimTime(real.now().count() / 2)
                               : real.now() + SimDuration(rng.uniform_u64(5000));
      const auto ra = real.schedule_at(when, [&real_log, id = issued.size()] {
        real_log.push_back(id);
      });
      const auto ma = model.schedule_at(when, [&model_log, id = issued.size()] {
        model_log.push_back(id);
      });
      ASSERT_EQ(ra, ma);
      issued.push_back(ra);
    } else if (kind < 75 && !issued.empty()) {
      const auto id = issued[rng.uniform_u64(issued.size())];
      ASSERT_EQ(real.cancel(id), model.cancel(id));
    } else if (kind < 95) {
      const SimTime deadline = real.now() + SimDuration(rng.uniform_u64(3000));
      ASSERT_EQ(real.run_until(deadline), model.run_until(deadline));
    } else {
      ASSERT_EQ(real.run_until_idle(), model.run_until_idle());
    }
    ASSERT_EQ(real.now(), model.now());
    ASSERT_EQ(real.pending(), model.pending());
    ASSERT_EQ(real_log, model_log);
  }
  real.run_until_idle();
  model.run_until_idle();
  EXPECT_EQ(real_log, model_log);
  EXPECT_EQ(real.now(), model.now());
}

TEST(EventQueue, CancelFromWithinCallback) {
  EventQueue q;
  bool b_ran = false;
  bool c_ran = false;
  const auto b = q.schedule(std::chrono::milliseconds(20), [&] { b_ran = true; });
  const auto c = q.schedule(std::chrono::milliseconds(10), [&] { c_ran = true; });
  q.schedule(std::chrono::milliseconds(10), [&] {
    // c shares our timestamp but was scheduled earlier, so it already ran:
    // cancelling it must report false. b is still pending: cancel succeeds.
    EXPECT_FALSE(q.cancel(c));
    EXPECT_TRUE(q.cancel(b));
    EXPECT_FALSE(q.cancel(b));
  });
  EXPECT_EQ(q.run_until_idle(), 2u);
  EXPECT_TRUE(c_ran);
  EXPECT_FALSE(b_ran);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SameInstantCancelOfLaterEvent) {
  // An event may cancel another event scheduled for the same instant that
  // has not fired yet (scheduled after it in tie-break order).
  EventQueue q;
  bool later_ran = false;
  EventQueue::EventId later = 0;
  q.schedule(std::chrono::milliseconds(5), [&] { EXPECT_TRUE(q.cancel(later)); });
  later = q.schedule(std::chrono::milliseconds(5), [&] { later_ran = true; });
  EXPECT_EQ(q.run_until_idle(), 1u);
  EXPECT_FALSE(later_ran);
}

TEST(EventQueue, PastSchedulingClampsToNow) {
  // Regression for the NDEBUG hole: the old implementation only assert()ed
  // against past-time scheduling, so release builds could move now()
  // backwards. The contract is now an explicit clamp in every build mode.
  EventQueue q;
  q.schedule(std::chrono::milliseconds(10), [] {});
  q.run_until_idle();
  ASSERT_EQ(q.now(), SimTime(std::chrono::milliseconds(10)));

  std::vector<SimTime> fired_at;
  q.schedule_at(SimTime(std::chrono::milliseconds(3)), [&] { fired_at.push_back(q.now()); });
  q.schedule(std::chrono::milliseconds(-5), [&] { fired_at.push_back(q.now()); });
  EXPECT_EQ(q.run_until_idle(), 2u);
  ASSERT_EQ(fired_at.size(), 2u);
  // Both run "immediately" at the clamped time; the clock never rewinds.
  EXPECT_EQ(fired_at[0], SimTime(std::chrono::milliseconds(10)));
  EXPECT_EQ(fired_at[1], SimTime(std::chrono::milliseconds(10)));
  EXPECT_EQ(q.now(), SimTime(std::chrono::milliseconds(10)));
}

TEST(EventQueue, CancelledEventsLeavePendingCount) {
  EventQueue q;
  std::vector<EventQueue::EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(q.schedule(std::chrono::milliseconds(i + 1), [] {}));
  }
  EXPECT_EQ(q.pending(), 8u);
  for (const auto id : ids) EXPECT_TRUE(q.cancel(id));
  // All tombstones: the queue must report empty and run nothing.
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.run_until_idle(), 0u);
}

TEST(UniqueCallback, InlineAndHeapCapturesBothInvoke) {
  int hits = 0;
  UniqueCallback small([&hits] { ++hits; });
  small();
  EXPECT_EQ(hits, 1);

  // Force the heap path with a capture larger than the inline buffer.
  struct Big {
    char bytes[UniqueCallback::kInlineSize * 2] = {};
  };
  Big big;
  big.bytes[0] = 42;
  UniqueCallback large([&hits, big] { hits += big.bytes[0]; });
  UniqueCallback moved = std::move(large);
  moved();
  EXPECT_EQ(hits, 43);
  EXPECT_FALSE(static_cast<bool>(large));  // NOLINT(bugprone-use-after-move): moved-from is empty
  EXPECT_TRUE(static_cast<bool>(moved));
}

}  // namespace
}  // namespace ednsm::netsim
