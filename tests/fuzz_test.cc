// Robustness sweeps: every wire decoder in the toolkit consumes untrusted
// bytes (the measurement tool talks to arbitrary public servers), so each
// must return a value or an error for ANY input — never crash, hang, or
// over-read. Two generators per decoder:
//   (1) uniformly random byte strings of assorted lengths, and
//   (2) valid messages with random single-byte mutations (the nastier case:
//       mostly-plausible input with corrupted length fields / pointers).
#include <gtest/gtest.h>

#include "client/doh.h"
#include "util/json.h"
#include "dns/base64url.h"
#include "geo/geodb.h"
#include "dns/message.h"
#include "http/h1.h"
#include "http/h2.h"
#include "http/hpack.h"
#include "netsim/rng.h"
#include "resolver/odoh.h"
#include "resolver/server.h"
#include "transport/quic.h"
#include "transport/tcp.h"
#include "transport/tls.h"

namespace ednsm {
namespace {

util::Bytes random_bytes(netsim::Rng& rng, std::size_t max_len) {
  util::Bytes out(rng.uniform_u64(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
  return out;
}

util::Bytes mutate(util::Bytes input, netsim::Rng& rng) {
  if (input.empty()) return input;
  const int mutations = 1 + static_cast<int>(rng.uniform_u64(4));
  for (int i = 0; i < mutations; ++i) {
    const std::size_t at = rng.uniform_u64(input.size());
    input[at] = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
  }
  return input;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, DnsMessageDecodeNeverCrashes) {
  netsim::Rng rng(GetParam());
  const util::Bytes valid =
      dns::make_query(1, dns::Name::parse("www.example.com").value(), dns::RecordType::A)
          .encode();
  for (int i = 0; i < 500; ++i) {
    (void)dns::Message::decode(random_bytes(rng, 128));
    (void)dns::Message::decode(mutate(valid, rng));
  }
}

TEST_P(FuzzSeeds, DnsMessageDecodeEncodeDecodeStable) {
  // Anything that *does* decode must re-encode to something that decodes to
  // the same message (idempotence of the canonical form).
  netsim::Rng rng(GetParam() ^ 0xABCD);
  const util::Bytes valid =
      dns::make_query(7, dns::Name::parse("stable.example.org").value(),
                      dns::RecordType::AAAA)
          .encode();
  for (int i = 0; i < 300; ++i) {
    const util::Bytes candidate = mutate(valid, rng);
    auto first = dns::Message::decode(candidate);
    if (!first.has_value()) continue;
    auto second = dns::Message::decode(first.value().encode());
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second.value(), first.value());
  }
}

TEST_P(FuzzSeeds, NameDecoderNeverCrashes) {
  netsim::Rng rng(GetParam() ^ 0x1111);
  for (int i = 0; i < 1000; ++i) {
    const util::Bytes data = random_bytes(rng, 300);
    dns::WireReader r(data);
    (void)dns::read_name(r);
  }
}

TEST_P(FuzzSeeds, Base64UrlDecodeNeverCrashes) {
  netsim::Rng rng(GetParam() ^ 0x2222);
  for (int i = 0; i < 1000; ++i) {
    const util::Bytes raw = random_bytes(rng, 64);
    (void)dns::base64url_decode(util::as_string(raw));
  }
}

TEST_P(FuzzSeeds, HttpCodecsNeverCrash) {
  netsim::Rng rng(GetParam() ^ 0x3333);
  const util::Bytes valid_req =
      http::Request{.method = "POST",
                    .path = "/dns-query",
                    .authority = "dns.example",
                    .headers = {{"content-type", "application/dns-message"}},
                    .body = util::to_bytes("payload")}
          .encode();
  for (int i = 0; i < 400; ++i) {
    (void)http::Request::decode(random_bytes(rng, 200));
    (void)http::Request::decode(mutate(valid_req, rng));
    (void)http::Response::decode(random_bytes(rng, 200));
    (void)http::decode_frames(random_bytes(rng, 200));
  }
}

TEST_P(FuzzSeeds, HpackDecoderNeverCrashes) {
  netsim::Rng rng(GetParam() ^ 0x4444);
  for (int i = 0; i < 500; ++i) {
    http::hpack::Decoder decoder;  // fresh table: mutations cannot poison later runs
    (void)decoder.decode(random_bytes(rng, 100));
  }
}

TEST_P(FuzzSeeds, TransportCodecsNeverCrash) {
  netsim::Rng rng(GetParam() ^ 0x5555);
  for (int i = 0; i < 500; ++i) {
    (void)transport::TcpSegment::decode(random_bytes(rng, 64));
    (void)transport::TlsRecord::decode(random_bytes(rng, 64));
    (void)transport::QuicPacket::decode(random_bytes(rng, 64));
    (void)resolver::ObliviousMessage::decode(random_bytes(rng, 64));
    (void)resolver::dot_unframe(random_bytes(rng, 64));
  }
}

TEST_P(FuzzSeeds, JsonParserNeverCrashes) {
  netsim::Rng rng(GetParam() ^ 0x6666);
  const std::string valid = R"({"a":[1,2,{"b":"c"}],"d":null,"e":true})";
  for (int i = 0; i < 400; ++i) {
    (void)core::Json::parse(util::as_string(random_bytes(rng, 120)));
    util::Bytes mutated = mutate(util::to_bytes(valid), rng);
    (void)core::Json::parse(util::as_string(mutated));
  }
}

TEST_P(FuzzSeeds, JsonRoundTripsWhenParseSucceeds) {
  netsim::Rng rng(GetParam() ^ 0x7777);
  const std::string valid = R"({"k":[1,2,3],"s":"text","n":-1.5e2})";
  for (int i = 0; i < 300; ++i) {
    util::Bytes mutated = mutate(util::to_bytes(valid), rng);
    auto parsed = core::Json::parse(util::as_string(mutated));
    if (!parsed.has_value()) continue;
    auto again = core::Json::parse(parsed.value().dump());
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again.value(), parsed.value());
  }
}

// A malicious *server* must not be able to crash the measurement client:
// feed garbage into a live DoH exchange at the TLS layer.
TEST_P(FuzzSeeds, GarbageOverEstablishedTlsIsSurvivable) {
  netsim::Rng seed_rng(GetParam() ^ 0x8888);
  netsim::EventQueue queue;
  netsim::Network net(queue, netsim::Rng(GetParam()));
  const auto client_ip =
      net.attach("c", geo::city::kChicago, netsim::AccessLinkModel::datacenter());
  const auto server_ip =
      net.attach("s", geo::city::kChicago, netsim::AccessLinkModel::datacenter());
  transport::TcpListener listener(net, netsim::Endpoint{server_ip, 443});
  std::vector<std::unique_ptr<transport::TlsServerSession>> sessions;
  transport::TlsServerConfig cfg;
  cfg.certificate_names = {"dns.example"};
  util::Bytes garbage = random_bytes(seed_rng, 80);
  listener.on_accept([&](transport::TcpServerConn& conn) {
    sessions.push_back(
        std::make_unique<transport::TlsServerSession>(queue, net.rng(), conn, cfg));
    auto& session = *sessions.back();
    session.on_data([&session, garbage](util::Bytes) {
      session.send(garbage);  // hostile response
    });
  });

  transport::ConnectionPool pool(net, client_ip);
  client::QueryOptions options;
  options.timeout = std::chrono::seconds(2);
  client::DohClient doh(net, pool, options);
  std::optional<client::QueryOutcome> out;
  doh.query(server_ip, "dns.example", dns::Name::parse("x.com").value(),
            dns::RecordType::A, [&](client::QueryOutcome o) { out = std::move(o); });
  queue.run_until_idle();
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->ok);  // classified as malformed or timeout — never a crash
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace ednsm
