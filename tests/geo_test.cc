#include <gtest/gtest.h>

#include "geo/coords.h"
#include "geo/geodb.h"
#include "geo/vantage.h"

namespace ednsm::geo {
namespace {

TEST(Coords, ZeroDistanceToSelf) {
  EXPECT_DOUBLE_EQ(great_circle_km(city::kChicago, city::kChicago), 0.0);
}

TEST(Coords, KnownDistances) {
  // Chicago <-> Frankfurt is about 6,970 km.
  const double km = great_circle_km(city::kChicago, city::kFrankfurt);
  EXPECT_GT(km, 6600.0);
  EXPECT_LT(km, 7300.0);
  // Seoul <-> Tokyo about 1,150 km.
  const double st = great_circle_km(city::kSeoul, city::kTokyo);
  EXPECT_GT(st, 1000.0);
  EXPECT_LT(st, 1300.0);
}

TEST(Coords, Symmetry) {
  EXPECT_DOUBLE_EQ(great_circle_km(city::kParis, city::kSydney),
                   great_circle_km(city::kSydney, city::kParis));
}

TEST(Coords, TriangleInequalityHolds) {
  const double ab = great_circle_km(city::kChicago, city::kLondon);
  const double bc = great_circle_km(city::kLondon, city::kFrankfurt);
  const double ac = great_circle_km(city::kChicago, city::kFrankfurt);
  EXPECT_LE(ac, ab + bc + 1e-6);
}

TEST(Coords, PropagationDelayScalesWithDistance) {
  const double near = propagation_delay_ms(city::kChicago, city::kColumbusOhio);
  const double far = propagation_delay_ms(city::kChicago, city::kSeoul);
  EXPECT_LT(near, 6.0);   // ~450 km
  EXPECT_GT(far, 60.0);   // ~10,500 km
  EXPECT_LT(far, 130.0);
}

TEST(Coords, StretchFactorIsLinear) {
  const double base = propagation_delay_ms(city::kParis, city::kTokyo, 1.0);
  const double stretched = propagation_delay_ms(city::kParis, city::kTokyo, 2.0);
  EXPECT_NEAR(stretched, 2.0 * base, 1e-9);
}

TEST(Coords, ContinentNames) {
  EXPECT_EQ(to_string(Continent::NorthAmerica), "North America");
  EXPECT_EQ(to_string(Continent::Unknown), "Unknown");
}

TEST(GeoDb, LookupHitAndMiss) {
  GeoDb db;
  db.add("dns.example", {"Frankfurt", "DE", Continent::Europe, city::kFrankfurt});
  auto hit = db.lookup("dns.example");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->city, "Frankfurt");
  EXPECT_FALSE(db.lookup("unknown.example").has_value());
}

TEST(GeoDb, UnknownContinentBehavesLikeNoLocation) {
  GeoDb db;
  db.add("nowhere.example", {"", "", Continent::Unknown, {}});
  EXPECT_FALSE(db.lookup("nowhere.example").has_value());
  EXPECT_EQ(db.size(), 1u);
}

TEST(GeoDb, HostnamesInContinentSorted) {
  GeoDb db;
  db.add("b.example", {"Paris", "FR", Continent::Europe, city::kParis});
  db.add("a.example", {"Berlin", "DE", Continent::Europe, city::kBerlin});
  db.add("c.example", {"Tokyo", "JP", Continent::Asia, city::kTokyo});
  const auto eu = db.hostnames_in(Continent::Europe);
  ASSERT_EQ(eu.size(), 2u);
  EXPECT_EQ(eu[0], "a.example");
  EXPECT_EQ(eu[1], "b.example");
}

TEST(Vantage, PaperVantagePoints) {
  const auto& points = paper_vantage_points();
  ASSERT_EQ(points.size(), 7u);  // 3 EC2 + 4 home devices
  int home = 0, dc = 0;
  for (const auto& vp : points) {
    (vp.is_home() ? home : dc)++;
  }
  EXPECT_EQ(home, 4);
  EXPECT_EQ(dc, 3);
}

TEST(Vantage, LookupById) {
  const VantagePoint& ohio = vantage_by_id("ec2-ohio");
  EXPECT_EQ(ohio.continent, Continent::NorthAmerica);
  EXPECT_FALSE(ohio.is_home());
  const VantagePoint& home = vantage_by_id("home-chicago-2");
  EXPECT_TRUE(home.is_home());
  EXPECT_THROW((void)vantage_by_id("ec2-mars"), std::out_of_range);
}

TEST(Vantage, Ec2RegionsMatchPaper) {
  EXPECT_EQ(vantage_by_id("ec2-frankfurt").continent, Continent::Europe);
  EXPECT_EQ(vantage_by_id("ec2-seoul").continent, Continent::Asia);
}

}  // namespace
}  // namespace ednsm::geo
