#include <gtest/gtest.h>

#include "dns/message.h"
#include "http/doh_media.h"
#include "http/h1.h"
#include "http/h2.h"
#include "http/hpack.h"

namespace ednsm::http {
namespace {

// ---- HTTP/1.1 -----------------------------------------------------------------

TEST(H1, RequestRoundTrip) {
  Request req;
  req.method = "POST";
  req.path = "/dns-query";
  req.authority = "dns.example";
  req.headers.emplace_back("accept", "application/dns-message");
  req.headers.emplace_back("content-type", "application/dns-message");
  req.body = util::to_bytes("BODY");

  auto decoded = Request::decode(req.encode());
  ASSERT_TRUE(decoded.has_value()) << decoded.error();
  EXPECT_EQ(decoded.value().method, "POST");
  EXPECT_EQ(decoded.value().path, "/dns-query");
  EXPECT_EQ(decoded.value().authority, "dns.example");
  EXPECT_EQ(decoded.value().body, util::to_bytes("BODY"));
  EXPECT_NE(find_header(decoded.value().headers, "Content-Type"), nullptr);
}

TEST(H1, GetRequestWithoutBody) {
  Request req;
  req.method = "GET";
  req.path = "/dns-query?dns=AAAA";
  req.authority = "dns.example";
  auto decoded = Request::decode(req.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded.value().body.empty());
}

TEST(H1, ResponseRoundTrip) {
  Response resp;
  resp.status = 200;
  resp.headers.emplace_back("content-type", "application/dns-message");
  resp.body = util::to_bytes("answer");
  auto decoded = Response::decode(resp.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded.value().status, 200);
  EXPECT_EQ(decoded.value().body, util::to_bytes("answer"));
}

TEST(H1, ResponseStatusLineVariants) {
  auto decoded = Response::decode(util::to_bytes(
      "HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n"));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded.value().status, 404);
  EXPECT_EQ(decoded.value().reason, "Not Found");
}

TEST(H1, RejectsMissingTerminator) {
  EXPECT_FALSE(Request::decode(util::to_bytes("GET / HTTP/1.1\r\n")).has_value());
}

TEST(H1, RejectsBadVersion) {
  EXPECT_FALSE(Request::decode(util::to_bytes("GET / HTTP/1.0\r\n\r\n")).has_value());
  EXPECT_FALSE(Response::decode(util::to_bytes("HTTP/2 200 OK\r\n\r\n")).has_value());
}

TEST(H1, RejectsContentLengthMismatch) {
  EXPECT_FALSE(Response::decode(util::to_bytes(
      "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort")).has_value());
  EXPECT_FALSE(Response::decode(util::to_bytes(
      "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\ntoolong")).has_value());
}

TEST(H1, RejectsBadStatus) {
  EXPECT_FALSE(Response::decode(util::to_bytes("HTTP/1.1 abc OK\r\n\r\n")).has_value());
  EXPECT_FALSE(Response::decode(util::to_bytes("HTTP/1.1 99 X\r\n\r\n")).has_value());
}

TEST(H1, HeaderLookupIsCaseInsensitive) {
  HeaderList headers = {{"Content-Type", "text/plain"}};
  EXPECT_NE(find_header(headers, "content-type"), nullptr);
  EXPECT_NE(find_header(headers, "CONTENT-TYPE"), nullptr);
  EXPECT_EQ(find_header(headers, "accept"), nullptr);
}

TEST(H1, DefaultReasons) {
  EXPECT_EQ(default_reason(200), "OK");
  EXPECT_EQ(default_reason(503), "Service Unavailable");
  EXPECT_EQ(default_reason(299), "Unknown");
}

// ---- HPACK ----------------------------------------------------------------------

TEST(Hpack, IntegerCoding) {
  // RFC 7541 C.1 examples.
  util::Bytes out;
  hpack::encode_integer(out, 5, 0, 10);
  EXPECT_EQ(out, (util::Bytes{0x0a}));
  out.clear();
  hpack::encode_integer(out, 5, 0, 1337);
  EXPECT_EQ(out, (util::Bytes{0x1f, 0x9a, 0x0a}));

  std::size_t pos = 0;
  auto v = hpack::decode_integer(out, pos, 5);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v.value(), 1337u);
  EXPECT_EQ(pos, 3u);
}

TEST(Hpack, IntegerDecodeRejectsTruncation) {
  const util::Bytes partial = {0x1f, 0x9a};
  std::size_t pos = 0;
  EXPECT_FALSE(hpack::decode_integer(partial, pos, 5).has_value());
}

TEST(Hpack, StaticTableSize) {
  EXPECT_EQ(hpack::static_table().size(), 61u);
  EXPECT_EQ(hpack::static_table()[1], (hpack::Header{":method", "GET"}));
  EXPECT_EQ(hpack::static_table()[7], (hpack::Header{":status", "200"}));
}

TEST(Hpack, RoundTripWithStaticMatches) {
  hpack::Encoder enc;
  hpack::Decoder dec;
  const std::vector<hpack::Header> headers = {
      {":method", "GET"},
      {":scheme", "https"},
      {":authority", "dns.example"},
      {":path", "/dns-query?dns=AAAA"},
      {"accept", "application/dns-message"},
  };
  const util::Bytes block = enc.encode(headers);
  auto decoded = dec.decode(block);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded.value(), headers);
}

TEST(Hpack, SecondEncodingIsSmaller) {
  hpack::Encoder enc;
  const std::vector<hpack::Header> headers = {
      {":authority", "dns.example"},
      {"accept", "application/dns-message"},
      {"user-agent", "ednsm/1.0"},
  };
  const util::Bytes first = enc.encode(headers);
  const util::Bytes second = enc.encode(headers);
  EXPECT_LT(second.size(), first.size());
  EXPECT_LE(second.size(), headers.size() * 2);  // all indexed
}

TEST(Hpack, EncoderDecoderStayInSync) {
  hpack::Encoder enc;
  hpack::Decoder dec;
  for (int i = 0; i < 10; ++i) {
    const std::vector<hpack::Header> headers = {
        {":path", "/q" + std::to_string(i)},
        {"x-round", std::to_string(i)},
        {"x-const", "same-every-time"},
    };
    auto decoded = dec.decode(enc.encode(headers));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded.value(), headers);
  }
}

TEST(Hpack, DynamicTableEviction) {
  hpack::DynamicTable table(100);
  table.insert({"aaaaaaaaaa", "bbbbbbbbbb"});  // 52 bytes
  table.insert({"cccccccccc", "dddddddddd"});  // 52 -> first evicted
  EXPECT_EQ(table.count(), 1u);
  EXPECT_EQ(table.at(0)->first, "cccccccccc");
}

TEST(Hpack, DecodeRejectsBadIndex) {
  hpack::Decoder dec;
  const util::Bytes block = {0xFF, 0x7F};  // indexed field with huge index
  EXPECT_FALSE(dec.decode(block).has_value());
}

TEST(Hpack, DecodeRejectsHuffman) {
  hpack::Decoder dec;
  // Literal with incremental indexing, new name, Huffman bit set.
  const util::Bytes block = {0x40, 0x81, 0x8f};
  EXPECT_FALSE(dec.decode(block).has_value());
}

// ---- HTTP/2 ----------------------------------------------------------------------

TEST(H2, FrameCodecRoundTrip) {
  Frame f;
  f.type = FrameType::Headers;
  f.flags = kFlagEndHeaders | kFlagEndStream;
  f.stream_id = 5;
  f.payload = util::to_bytes("block");
  auto frames = decode_frames(f.encode());
  ASSERT_TRUE(frames.has_value());
  ASSERT_EQ(frames.value().size(), 1u);
  EXPECT_EQ(frames.value()[0].stream_id, 5u);
  EXPECT_EQ(frames.value()[0].payload, util::to_bytes("block"));
}

TEST(H2, DecodeMultipleFrames) {
  Frame a;
  a.type = FrameType::Settings;
  Frame b;
  b.type = FrameType::Data;
  b.stream_id = 1;
  b.payload = util::to_bytes("x");
  util::Bytes wire = a.encode();
  const util::Bytes bw = b.encode();
  wire.insert(wire.end(), bw.begin(), bw.end());
  auto frames = decode_frames(wire);
  ASSERT_TRUE(frames.has_value());
  EXPECT_EQ(frames.value().size(), 2u);
}

TEST(H2, DecodeRejectsTruncatedFrame) {
  Frame f;
  f.type = FrameType::Data;
  f.payload = util::to_bytes("hello");
  util::Bytes wire = f.encode();
  wire.pop_back();
  EXPECT_FALSE(decode_frames(wire).has_value());
}

TEST(H2, ClientServerExchange) {
  H2ClientSession client;
  H2ServerSession server;

  Request req;
  req.method = "POST";
  req.path = "/dns-query";
  req.authority = "dns.example";
  req.body = util::to_bytes("query-bytes");

  std::uint32_t sid = 0;
  const util::Bytes request_wire = client.serialize_request(req, sid);
  EXPECT_EQ(sid, 1u);

  std::optional<Request> server_got;
  std::uint32_t server_sid = 0;
  server.feed(request_wire, [&](std::uint32_t s, Result<Request> r) {
    ASSERT_TRUE(r.has_value()) << r.error();
    server_sid = s;
    server_got = std::move(r).value();
  });
  ASSERT_TRUE(server_got.has_value());
  EXPECT_EQ(server_got->method, "POST");
  EXPECT_EQ(server_got->body, util::to_bytes("query-bytes"));

  Response resp;
  resp.status = 200;
  resp.body = util::to_bytes("answer-bytes");
  const util::Bytes response_wire = server.serialize_response(server_sid, resp);

  std::optional<Response> client_got;
  client.feed(response_wire, [&](std::uint32_t s, Result<Response> r) {
    EXPECT_EQ(s, sid);
    ASSERT_TRUE(r.has_value());
    client_got = std::move(r).value();
  });
  ASSERT_TRUE(client_got.has_value());
  EXPECT_EQ(client_got->status, 200);
  EXPECT_EQ(client_got->body, util::to_bytes("answer-bytes"));
}

TEST(H2, StreamIdsAdvanceByTwo) {
  H2ClientSession client;
  Request req;
  req.method = "GET";
  req.path = "/a";
  std::uint32_t s1 = 0, s2 = 0, s3 = 0;
  (void)client.serialize_request(req, s1);
  (void)client.serialize_request(req, s2);
  (void)client.serialize_request(req, s3);
  EXPECT_EQ(s1, 1u);
  EXPECT_EQ(s2, 3u);
  EXPECT_EQ(s3, 5u);
}

TEST(H2, PrefaceOnlyOnFirstRequest) {
  H2ClientSession client;
  Request req;
  req.method = "GET";
  req.path = "/";
  std::uint32_t sid = 0;
  const util::Bytes first = client.serialize_request(req, sid);
  const util::Bytes second = client.serialize_request(req, sid);
  const auto preface = client_preface();
  ASSERT_GE(first.size(), preface.size());
  EXPECT_TRUE(std::equal(preface.begin(), preface.end(), first.begin()));
  EXPECT_FALSE(second.size() >= preface.size() &&
               std::equal(preface.begin(), preface.end(), second.begin()));
}

TEST(H2, ServerRejectsMissingPreface) {
  H2ServerSession server;
  Frame f;
  f.type = FrameType::Settings;
  bool error = false;
  server.feed(f.encode(), [&](std::uint32_t, Result<Request> r) {
    if (!r.has_value()) error = true;
  });
  EXPECT_TRUE(error);
}

TEST(H2, RstStreamFailsPendingResponse) {
  H2ClientSession client;
  Request req;
  req.method = "GET";
  req.path = "/";
  std::uint32_t sid = 0;
  (void)client.serialize_request(req, sid);

  Frame rst;
  rst.type = FrameType::RstStream;
  rst.stream_id = sid;
  bool failed = false;
  client.feed(rst.encode(), [&](std::uint32_t s, Result<Response> r) {
    EXPECT_EQ(s, sid);
    EXPECT_FALSE(r.has_value());
    failed = true;
  });
  EXPECT_TRUE(failed);
}

// ---- DoH media ------------------------------------------------------------------

dns::Message sample_query() {
  return dns::make_query(7, dns::Name::parse("example.com").value(), dns::RecordType::A);
}

TEST(DohMedia, GetPathEncodesBase64Url) {
  const util::Bytes msg = sample_query().encode();
  const std::string path = doh_get_path("/dns-query", msg);
  EXPECT_TRUE(path.starts_with("/dns-query?dns="));
  EXPECT_EQ(path.find('='), path.find("?dns=") + 4);  // no padding chars after
}

TEST(DohMedia, PostRequestRoundTrip) {
  const util::Bytes msg = sample_query().encode();
  const Request req = make_doh_request("dns.example", "/dns-query", msg, /*post=*/true);
  auto extracted = extract_dns_message(req);
  ASSERT_TRUE(extracted.has_value()) << extracted.error();
  EXPECT_EQ(extracted.value(), msg);
}

TEST(DohMedia, GetRequestRoundTrip) {
  const util::Bytes msg = sample_query().encode();
  const Request req = make_doh_request("dns.example", "/dns-query", msg, /*post=*/false);
  auto extracted = extract_dns_message(req);
  ASSERT_TRUE(extracted.has_value()) << extracted.error();
  EXPECT_EQ(extracted.value(), msg);
}

TEST(DohMedia, PostRequiresMediaType) {
  Request req;
  req.method = "POST";
  req.path = "/dns-query";
  req.body = util::to_bytes("x");
  EXPECT_FALSE(extract_dns_message(req).has_value());
}

TEST(DohMedia, GetRequiresDnsParam) {
  Request req;
  req.method = "GET";
  req.path = "/dns-query?other=1";
  EXPECT_FALSE(extract_dns_message(req).has_value());
  req.path = "/dns-query";
  EXPECT_FALSE(extract_dns_message(req).has_value());
}

TEST(DohMedia, UnsupportedMethodRejected) {
  Request req;
  req.method = "PUT";
  req.path = "/dns-query";
  EXPECT_FALSE(extract_dns_message(req).has_value());
}

TEST(DohMedia, ResponseCarriesCacheControl) {
  const Response resp = make_doh_response(util::to_bytes("wire"), 299);
  const std::string* cc = find_header(resp.headers, "cache-control");
  ASSERT_NE(cc, nullptr);
  EXPECT_EQ(*cc, "max-age=299");
  const std::string* ct = find_header(resp.headers, "content-type");
  ASSERT_NE(ct, nullptr);
  EXPECT_EQ(*ct, kDnsMessageMediaType);
}

}  // namespace
}  // namespace ednsm::http
