// End-to-end shape assertions: the simulated world must reproduce the
// paper's qualitative findings. These are the claims from §4 that DESIGN.md
// commits to, each run on a reduced-size campaign to keep test time sane.
#include <gtest/gtest.h>

#include <cmath>

#include "core/campaign.h"
#include "report/figures.h"
#include "resolver/registry.h"
#include "stats/quantile.h"

namespace ednsm {
namespace {

using core::CampaignResult;
using core::CampaignRunner;
using core::MeasurementSpec;
using core::SimWorld;

// One shared campaign over a representative resolver subset from all vantage
// classes. Built once; the assertions below slice it.
const CampaignResult& shared_campaign() {
  static const CampaignResult kResult = [] {
    SimWorld world(20250704);
    MeasurementSpec spec;
    spec.resolvers = {
        // mainstream
        "dns.google", "security.cloudflare-dns.com", "dns.quad9.net", "dns9.quad9.net",
        "dns.nextdns.io",
        // NA non-mainstream
        "ordns.he.net", "freedns.controld.com", "kronos.plan9-dns.com",
        "doh.la.ahadns.net", "odoh-target.alekberg.net",
        // EU
        "doh.ffmuc.net", "dns0.eu", "dns.brahma.world", "dns.njal.la",
        // Asia
        "dns.alidns.com", "dns.twnic.tw", "antivirus.bebasid.com", "public.dns.iij.jp",
    };
    spec.vantage_ids = {"ec2-ohio", "ec2-frankfurt", "ec2-seoul", "home-chicago-1"};
    spec.rounds = 20;
    spec.seed = 20250704;
    return CampaignRunner(world, spec).run();
  }();
  return kResult;
}

double med(const std::string& vantage, const std::string& resolver) {
  return stats::median(shared_campaign().response_times(vantage, resolver));
}

double ping_med(const std::string& vantage, const std::string& resolver) {
  return stats::median(shared_campaign().ping_times(vantage, resolver));
}

// "Most mainstream resolvers outperformed non-mainstream resolvers from most
// vantage points."
TEST(PaperShape, MainstreamBeatsRemoteNonMainstream) {
  // From Ohio, mainstream anycast beats EU/Asia unicast resolvers by a lot.
  const double mainstream = med("ec2-ohio", "dns.google");
  EXPECT_LT(mainstream * 3, med("ec2-ohio", "doh.ffmuc.net"));
  EXPECT_LT(mainstream * 3, med("ec2-ohio", "dns.twnic.tw"));
  // From Seoul, EU unicast resolvers are even slower.
  EXPECT_LT(med("ec2-seoul", "dns.google") * 4, med("ec2-seoul", "doh.ffmuc.net"));
}

// "Non-mainstream resolvers queried from more distant vantage points have
// higher response times — most are not replicated or anycast."
TEST(PaperShape, UnicastDegradesWithDistanceAnycastDoesNot) {
  // doh.ffmuc.net (Munich, unicast): Frankfurt fast, Seoul slow.
  EXPECT_LT(med("ec2-frankfurt", "doh.ffmuc.net") * 3, med("ec2-seoul", "doh.ffmuc.net"));
  // dns.google (anycast): good absolute latency from every vantage — the
  // nearest-PoP distance varies (Columbus->Chicago vs Frankfurt->Frankfurt),
  // so the meaningful claim is an absolute bound, not a ratio.
  for (const char* vantage : {"ec2-ohio", "ec2-seoul", "ec2-frankfurt"}) {
    EXPECT_LT(med(vantage, "dns.google"), 60.0) << vantage;
  }
}

// §4's named local winners.
TEST(PaperShape, OrdnsHeNetWinsFromHomeDevices) {
  const double he = med("home-chicago-1", "ordns.he.net");
  for (const char* mainstream :
       {"dns.google", "security.cloudflare-dns.com", "dns.quad9.net", "dns9.quad9.net",
        "dns.nextdns.io"}) {
    EXPECT_LT(he, med("home-chicago-1", mainstream)) << mainstream;
  }
}

TEST(PaperShape, ControlDWinsFromOhio) {
  EXPECT_LT(med("ec2-ohio", "freedns.controld.com"), med("ec2-ohio", "dns.google"));
  EXPECT_LT(med("ec2-ohio", "freedns.controld.com"),
            med("ec2-ohio", "security.cloudflare-dns.com"));
}

TEST(PaperShape, BrahmaWinsFromFrankfurtOverCloudflare) {
  EXPECT_LT(med("ec2-frankfurt", "dns.brahma.world"),
            med("ec2-frankfurt", "security.cloudflare-dns.com"));
}

TEST(PaperShape, AlidnsWinsFromSeoul) {
  const double ali = med("ec2-seoul", "dns.alidns.com");
  EXPECT_LT(ali, med("ec2-seoul", "dns.quad9.net"));
  EXPECT_LT(ali, med("ec2-seoul", "dns.google"));
  EXPECT_LT(ali, med("ec2-seoul", "security.cloudflare-dns.com"));
}

// "Ping time is well below DNS response time" (handshake round trips).
TEST(PaperShape, ResponseTimeExceedsPing) {
  for (const char* host : {"dns.google", "ordns.he.net", "doh.ffmuc.net"}) {
    const double p = ping_med("ec2-ohio", host);
    const double r = med("ec2-ohio", host);
    ASSERT_FALSE(std::isnan(p)) << host;
    EXPECT_GT(r, 2.0 * p) << host;  // >= 3 RTT vs 1 RTT
  }
}

// ODoH targets: response times far beyond their ping (relay hop on the DNS
// path only) — visible in Figure 1's odoh-target rows.
TEST(PaperShape, OdohTargetsShowRelayPenalty) {
  const double p = ping_med("ec2-ohio", "odoh-target.alekberg.net");
  const double r = med("ec2-ohio", "odoh-target.alekberg.net");
  ASSERT_FALSE(std::isnan(p));
  EXPECT_GT(r, 3.0 * p + 20.0);
}

// dns.twnic.tw: slow from home, fine from EC2 (§4).
TEST(PaperShape, TwnicHomeQuirk) {
  const double home_ping = ping_med("home-chicago-1", "dns.twnic.tw");
  const double ohio_ping = ping_med("ec2-ohio", "dns.twnic.tw");
  EXPECT_GT(home_ping, ohio_ping + 50.0);
}

// antivirus.bebasid.com: high variability from Ohio/Frankfurt EC2, low from
// home (§4). Compare IQRs.
TEST(PaperShape, BebasidEc2Variability) {
  const auto iqr = [&](const char* vantage) {
    return stats::box_summary(
               shared_campaign().response_times(vantage, "antivirus.bebasid.com"))
        .iqr();
  };
  EXPECT_GT(iqr("ec2-ohio") + iqr("ec2-frankfurt"), 1.5 * iqr("home-chicago-1"));
}

// Availability: errors exist, successes dominate, and connection failures
// are the dominant error class (§4).
TEST(PaperShape, AvailabilityShape) {
  const auto& overall = shared_campaign().availability.overall();
  EXPECT_GT(overall.successes, overall.errors * 5);
  EXPECT_GT(overall.errors, 0u);
  const std::string dominant = shared_campaign().availability.dominant_error_class();
  EXPECT_TRUE(dominant == "connect-timeout" || dominant == "connect-refused")
      << dominant;
}

// Home vantage shows more jitter than EC2 for the same nearby resolver.
TEST(PaperShape, HomeAccessAddsLatency) {
  EXPECT_GT(med("home-chicago-1", "dns.google"), med("ec2-ohio", "dns.google"));
}

// Tables 2/3 shape: Asia resolvers near from Seoul / far from Frankfurt and
// vice versa for EU resolvers.
TEST(PaperShape, RemoteVantageGapTables) {
  EXPECT_LT(med("ec2-seoul", "dns.twnic.tw"), med("ec2-frankfurt", "dns.twnic.tw"));
  EXPECT_LT(med("ec2-frankfurt", "dns0.eu"), med("ec2-seoul", "dns0.eu"));
  EXPECT_LT(med("ec2-frankfurt", "dns.njal.la"), med("ec2-seoul", "dns.njal.la"));
  EXPECT_LT(med("ec2-seoul", "public.dns.iij.jp"), med("ec2-frankfurt", "public.dns.iij.jp"));
}

// The full-registry world builds and every resolver is reachable from Ohio.
TEST(Integration, EveryRegistryResolverAnswersFromOhio) {
  SimWorld world(99);
  MeasurementSpec spec;
  for (const auto& s : resolver::paper_resolver_list()) spec.resolvers.push_back(s.hostname);
  spec.vantage_ids = {"ec2-ohio"};
  spec.rounds = 2;
  spec.domains = {"google.com"};
  spec.seed = 99;
  const CampaignResult result = CampaignRunner(world, spec).run();
  EXPECT_EQ(result.records.size(), resolver::paper_resolver_list().size() * 2);
  // No resolver may be entirely unresponsive over two rounds... except by
  // (unlikely) failure-injection coincidence; allow a tiny number.
  int unresponsive = 0;
  for (const auto& s : resolver::paper_resolver_list()) {
    if (result.availability.unresponsive_from("ec2-ohio", s.hostname)) ++unresponsive;
  }
  EXPECT_LE(unresponsive, 2);
}

}  // namespace
}  // namespace ednsm
