// Tests for the ednsm_lint analyzer engine itself: the pass-1 symbol index,
// the pass-2 call graph, the determinism taint dataflow, the module-layering
// DAG + include-cycle rules, and the committed-baseline mechanism. Fixture
// rule coverage lives in lint_test.cc; this file exercises the machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/baseline.h"
#include "lint/graph.h"
#include "lint/index.h"
#include "lint/layers.h"
#include "lint/lint.h"

namespace {

using ednsm::lint::Diagnostic;
using ednsm::lint::SourceFile;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

SourceFile fixture(const std::string& name) {
  return SourceFile{name, read_file(std::string(EDNSM_LINT_FIXTURE_DIR) + "/" + name)};
}

std::string dump(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const Diagnostic& d : diags) out += ednsm::lint::format(d) + "\n";
  return out;
}

// A tiny layers config used by the synthetic layering tests.
constexpr const char* kToyLayers = R"(# toy DAG
util:
web: util
)";

// ---------------------------------------------------------------------------
// Pass 1: the symbol index.
// ---------------------------------------------------------------------------

TEST(SymbolIndex, CollectsFunctionsAndPairsDefinitions) {
  const SourceFile f{"src/core/sample.cc", R"cc(
namespace ednsm::core {

int free_helper(int x);  // declaration

int free_helper(int x) { return x + 1; }

struct Widget {
  int inline_method() const { return 1; }
  int outline_method() const;
};

int Widget::outline_method() const { return free_helper(2); }

}  // namespace ednsm::core
)cc"};
  const auto index = ednsm::lint::build_index({f});

  // free_helper: one declaration + one definition, both indexed.
  int decls = 0;
  int defs = 0;
  for (const auto& fn : index.functions) {
    if (fn.name != "free_helper") continue;
    (fn.defined ? defs : decls) += 1;
    EXPECT_EQ(fn.ns, "ednsm::core");
  }
  EXPECT_EQ(decls, 1);
  EXPECT_EQ(defs, 1);

  // Inline method adopts the enclosing struct; out-of-line keeps the
  // qualifier.
  bool saw_inline = false;
  bool saw_outline = false;
  for (const auto& fn : index.functions) {
    if (fn.name == "inline_method" && fn.defined) {
      EXPECT_EQ(fn.class_name, "Widget");
      saw_inline = true;
    }
    if (fn.name == "outline_method" && fn.defined) {
      EXPECT_EQ(fn.class_name, "Widget");
      EXPECT_EQ(fn.qualified(), "Widget::outline_method");
      saw_outline = true;
    }
  }
  EXPECT_TRUE(saw_inline);
  EXPECT_TRUE(saw_outline);
  EXPECT_EQ(index.definitions_named("free_helper").size(), 1u);
}

TEST(SymbolIndex, CollectsQuotedIncludesAndModules) {
  const SourceFile f{"src/transport/udp.cc", R"cc(
#include "transport/udp.h"

#include <vector>

#include "dns/wire.h"
#include "netsim/event_queue.h"
)cc"};
  const auto index = ednsm::lint::build_index({f});
  ASSERT_EQ(index.includes.size(), 1u);
  std::vector<std::string> targets;
  for (const auto& inc : index.includes[0]) targets.push_back(inc.target);
  EXPECT_EQ(targets, (std::vector<std::string>{"transport/udp.h", "dns/wire.h",
                                               "netsim/event_queue.h"}));
  EXPECT_EQ(index.modules[0], "transport");
  EXPECT_EQ(ednsm::lint::module_of("/abs/path/repo/src/core/spec.cc"), "core");
  EXPECT_EQ(ednsm::lint::module_of("tools/lint/lint.cc"), "");
}

// ---------------------------------------------------------------------------
// Pass 2: the call graph.
// ---------------------------------------------------------------------------

TEST(CallGraph, ResolvesEdgesAndReverseAdjacency) {
  const SourceFile f{"src/core/sample.cc", R"cc(
namespace ednsm::core {
int leaf() { return 1; }
int mid() { return leaf() + leaf(); }
int top() { return mid(); }
}  // namespace ednsm::core
)cc"};
  const auto index = ednsm::lint::build_index({f});
  const auto graph = ednsm::lint::build_call_graph(index);

  auto id_of = [&](const std::string& name) {
    const auto ids = index.definitions_named(name);
    EXPECT_EQ(ids.size(), 1u) << name;
    return ids.at(0);
  };
  const int leaf = id_of("leaf");
  const int mid = id_of("mid");
  const int top = id_of("top");

  // mid -> leaf (deduped to one edge), top -> mid.
  ASSERT_EQ(graph.calls[static_cast<std::size_t>(mid)].size(), 1u);
  EXPECT_EQ(graph.calls[static_cast<std::size_t>(mid)][0].callee, leaf);
  ASSERT_EQ(graph.calls[static_cast<std::size_t>(top)].size(), 1u);
  EXPECT_EQ(graph.calls[static_cast<std::size_t>(top)][0].callee, mid);
  EXPECT_EQ(graph.callers[static_cast<std::size_t>(leaf)],
            (std::vector<int>{mid}));
  EXPECT_EQ(graph.callers[static_cast<std::size_t>(mid)],
            (std::vector<int>{top}));
}

TEST(CallGraph, EnclosingFunctionFindsInnermostBody) {
  const SourceFile f{"a.cc", R"cc(
int outer() {
  return 42;
}
)cc"};
  const auto index = ednsm::lint::build_index({f});
  const auto pos = f.content.find("42");
  const int fn = ednsm::lint::enclosing_function(index, 0, pos);
  ASSERT_GE(fn, 0);
  EXPECT_EQ(index.functions[static_cast<std::size_t>(fn)].name, "outer");
  EXPECT_LT(ednsm::lint::enclosing_function(index, 0, 0), 0);
}

// ---------------------------------------------------------------------------
// Pass 3: determinism taint.
// ---------------------------------------------------------------------------

TEST(Taint, DirectSourceInSink) {
  const auto diags = ednsm::lint::run_lint({fixture("taint_direct_bad.cc")});
  const auto it = std::find_if(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.rule == "determinism-taint";
  });
  ASSERT_NE(it, diags.end()) << dump(diags);
  EXPECT_EQ(it->trace, (std::vector<std::string>{"Snapshot::to_json"}));
  EXPECT_EQ(it->key, "Snapshot::to_json->Snapshot::to_json");
}

TEST(Taint, OneHopHelperPathIsReported) {
  const auto diags = ednsm::lint::run_lint({fixture("taint_one_hop_bad.cc")});
  ASSERT_EQ(diags.size(), 1u) << dump(diags);
  const Diagnostic& d = diags[0];
  EXPECT_EQ(d.rule, "determinism-taint");
  EXPECT_EQ(d.trace, (std::vector<std::string>{"same_lane", "Record::to_json"}));
  EXPECT_NE(d.message.find("same_lane"), std::string::npos) << d.message;
  EXPECT_NE(d.message.find("Record::to_json"), std::string::npos) << d.message;
  EXPECT_NE(d.message.find("get_id"), std::string::npos) << d.message;
}

TEST(Taint, CrossFilePathLandsAtTheSource) {
  const auto diags = ednsm::lint::run_lint(
      {fixture("taint_cross_file_a.cc"), fixture("taint_cross_file_b.cc")});
  const auto it = std::find_if(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.rule == "determinism-taint";
  });
  ASSERT_NE(it, diags.end()) << dump(diags);
  EXPECT_EQ(it->path, "taint_cross_file_b.cc");
  EXPECT_EQ(it->trace, (std::vector<std::string>{"wall_nonce", "Export::to_json"}));
}

TEST(Taint, SuppressionAtTheSourceSilencesTheWholePath) {
  const auto diags = ednsm::lint::run_lint({fixture("taint_allowed.cc")});
  EXPECT_TRUE(diags.empty()) << dump(diags);
}

TEST(Taint, SourceWithoutASinkIsNotATaintFinding) {
  // get_id feeding a plain accessor that nothing serializes: nothing for the
  // taint rule (thread identity used locally, e.g. for an assert, is legal).
  const SourceFile f{"a.cc", R"cc(
#include <thread>
inline bool on_some_lane() {
  return std::this_thread::get_id() == std::this_thread::get_id();
}
bool poll() { return on_some_lane(); }
)cc"};
  const auto diags = ednsm::lint::run_lint({f});
  EXPECT_TRUE(diags.empty()) << dump(diags);
}

// ---------------------------------------------------------------------------
// Layering: config parsing and the arch rules.
// ---------------------------------------------------------------------------

TEST(Layers, ParsesAndValidates) {
  ednsm::lint::LayerConfig config;
  std::string error;
  ASSERT_TRUE(ednsm::lint::LayerConfig::parse(kToyLayers, &config, &error)) << error;
  EXPECT_EQ(config.deps.at("web"), (std::set<std::string>{"util"}));
  EXPECT_TRUE(config.deps.at("util").empty());

  EXPECT_FALSE(ednsm::lint::LayerConfig::parse("util util\n", &config, &error));
  EXPECT_FALSE(ednsm::lint::LayerConfig::parse("a: ghost\na:\n", &config, &error));
  EXPECT_FALSE(ednsm::lint::LayerConfig::parse("a: ghost\n", &config, &error));
  EXPECT_NE(error.find("undeclared"), std::string::npos) << error;
  EXPECT_FALSE(ednsm::lint::LayerConfig::parse("a: b\nb: a\n", &config, &error));
  EXPECT_NE(error.find("cycle"), std::string::npos) << error;
}

TEST(Layers, LegalEdgePassesIllegalEdgeFails) {
  ednsm::lint::Options options;
  options.layers_text = kToyLayers;

  // Legal: web -> util.
  const SourceFile legal{"src/web/page.cc", "#include \"util/strings.h\"\n"};
  EXPECT_TRUE(ednsm::lint::run_lint({legal}, options).empty());

  // Illegal: util -> web (the committed fixture, under a synthetic path).
  const SourceFile bad{"src/util/arch_layering_bad.cc",
                       read_file(std::string(EDNSM_LINT_FIXTURE_DIR) + "/arch_layering_bad.cc")};
  const auto diags = ednsm::lint::run_lint({bad}, options);
  ASSERT_EQ(diags.size(), 1u) << dump(diags);
  EXPECT_EQ(diags[0].rule, "arch-layering");
  EXPECT_EQ(diags[0].key, "util->web");
}

TEST(Layers, UndeclaredModuleIsAFinding) {
  ednsm::lint::Options options;
  options.layers_text = kToyLayers;
  const SourceFile f{"src/mystery/new_thing.cc", "namespace ednsm::mystery {}\n"};
  const auto diags = ednsm::lint::run_lint({f}, options);
  ASSERT_EQ(diags.size(), 1u) << dump(diags);
  EXPECT_EQ(diags[0].rule, "arch-layering");
  EXPECT_NE(diags[0].message.find("not declared"), std::string::npos);
}

TEST(Layers, IncludeCycleFixtureIsRejected) {
  const auto diags = ednsm::lint::run_lint({fixture("cycle_a.h"), fixture("cycle_b.h")});
  ASSERT_EQ(diags.size(), 1u) << dump(diags);
  EXPECT_EQ(diags[0].rule, "arch-include-cycle");
  EXPECT_NE(diags[0].message.find("cycle_a.h"), std::string::npos);
  EXPECT_NE(diags[0].message.find("cycle_b.h"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Baseline mechanism.
// ---------------------------------------------------------------------------

TEST(Baseline, ParseApplyAndStaleDetection) {
  std::vector<ednsm::lint::BaselineEntry> entries;
  std::string error;
  ASSERT_TRUE(ednsm::lint::parse_baseline(
      R"({"findings": [
        {"rule": "arch-layering", "path": "src/netsim/event_queue.cc",
         "key": "netsim->obs", "reason": "impl-only tracer hook"},
        {"rule": "arch-layering", "path": "src/ghost/gone.cc",
         "key": "ghost->web", "reason": "stale on purpose"}
      ]})",
      &entries, &error))
      << error;
  ASSERT_EQ(entries.size(), 2u);

  Diagnostic covered;
  covered.path = "/abs/checkout/src/netsim/event_queue.cc";  // suffix match
  covered.rule = "arch-layering";
  covered.key = "netsim->obs";
  Diagnostic uncovered;
  uncovered.path = "src/core/spec.cc";
  uncovered.rule = "codec-parity";

  const auto result = ednsm::lint::apply_baseline({covered, uncovered}, entries);
  ASSERT_EQ(result.remaining.size(), 1u);
  EXPECT_EQ(result.remaining[0].rule, "codec-parity");
  EXPECT_EQ(result.suppressed, 1u);
  ASSERT_EQ(result.stale.size(), 1u);
  EXPECT_EQ(result.stale[0].key, "ghost->web");
}

TEST(Baseline, RejectsEntriesWithoutReason) {
  std::vector<ednsm::lint::BaselineEntry> entries;
  std::string error;
  EXPECT_FALSE(ednsm::lint::parse_baseline(
      R"({"findings": [{"rule": "r", "path": "p", "key": ""}]})", &entries, &error));
  EXPECT_NE(error.find("reason"), std::string::npos) << error;
}

TEST(Baseline, WriteRoundTripsThroughParse) {
  Diagnostic d;
  d.rule = "arch-layering";
  d.path = "src/a/b.cc";
  d.key = "a->b";
  const std::string text = ednsm::lint::baseline_to_json({d, d});
  std::vector<ednsm::lint::BaselineEntry> entries;
  std::string error;
  ASSERT_TRUE(ednsm::lint::parse_baseline(text, &entries, &error)) << error << "\n" << text;
  ASSERT_EQ(entries.size(), 1u);  // identity-deduped
  EXPECT_EQ(entries[0].rule, "arch-layering");
  EXPECT_EQ(entries[0].key, "a->b");
}

TEST(Report, JsonFormatIsParseableShape) {
  Diagnostic d;
  d.rule = "determinism-taint";
  d.path = "src/x/y.cc";
  d.line = 7;
  d.key = "f->g";
  d.trace = {"f", "g"};
  d.message = "quote \" and backslash \\ survive";
  const std::string json = ednsm::lint::format_json({d});
  EXPECT_NE(json.find("\"rule\": \"determinism-taint\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace\": [\"f\", \"g\"]"), std::string::npos) << json;
  EXPECT_NE(json.find("\\\""), std::string::npos) << json;
  EXPECT_EQ(ednsm::lint::format_json({}), "{\"findings\": []}\n");
}

// ---------------------------------------------------------------------------
// Tree-level mutation checks over the real sources: the acceptance bar for
// the new passes staying alive.
// ---------------------------------------------------------------------------

std::vector<SourceFile> load_repo_tree() {
  return ednsm::lint::load_tree({std::string(EDNSM_SOURCE_DIR) + "/src",
                                 std::string(EDNSM_SOURCE_DIR) + "/tools",
                                 std::string(EDNSM_SOURCE_DIR) + "/bench"});
}

ednsm::lint::Options repo_options() {
  ednsm::lint::Options options;
  options.layers_text =
      read_file(std::string(EDNSM_SOURCE_DIR) + "/tools/lint/layers.conf");
  return options;
}

// The committed tree conforms to the committed DAG, modulo exactly the
// committed baseline (which must have no stale entries).
TEST(LintTreeArch, CleanTreeConformsToLayersConf) {
  auto diags = ednsm::lint::run_lint(load_repo_tree(), repo_options());
  std::vector<ednsm::lint::BaselineEntry> entries;
  std::string error;
  ASSERT_TRUE(ednsm::lint::parse_baseline(
      read_file(std::string(EDNSM_SOURCE_DIR) + "/tools/lint/baseline.json"), &entries, &error))
      << error;
  const auto result = ednsm::lint::apply_baseline(std::move(diags), entries);
  EXPECT_TRUE(result.remaining.empty()) << dump(result.remaining);
  EXPECT_TRUE(result.stale.empty());
  EXPECT_EQ(result.suppressed, entries.size());
}

// Routing a wall-clock read through a helper into a JSON writer must trip
// determinism-taint with the full helper -> sink path — even though the
// helper itself could have been buried far from any serialization code.
TEST(LintTreeArch, WallclockViaHelperIntoToJsonFails) {
  auto files = load_repo_tree();
  bool mutated = false;
  for (SourceFile& f : files) {
    if (!f.path.ends_with("core/spec.cc")) continue;
    f.content +=
        "\n#include <chrono>\n"
        "namespace ednsm::core {\n"
        "static double debug_stamp_ms() {\n"
        "  return static_cast<double>(\n"
        "      std::chrono::system_clock::now().time_since_epoch().count());\n"
        "}\n"
        "static double debug_stamp_field() { return debug_stamp_ms(); }\n"
        "Json to_json() {\n"
        "  JsonObject o;\n"
        "  o[\"stamped_at\"] = debug_stamp_field();\n"
        "  return Json(std::move(o));\n"
        "}\n"
        "}  // namespace ednsm::core\n";
    mutated = true;
  }
  ASSERT_TRUE(mutated);
  const auto diags = ednsm::lint::run_lint(files, repo_options());
  const auto it = std::find_if(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.rule == "determinism-taint" &&
           d.message.find("debug_stamp_ms") != std::string::npos;
  });
  ASSERT_NE(it, diags.end()) << dump(diags);
  // The full two-hop path is named, so the suppression can go at the origin.
  EXPECT_EQ(it->trace,
            (std::vector<std::string>{"debug_stamp_ms", "debug_stamp_field", "to_json"}));
}

// Inverting a layer edge in the real tree (a bottom-layer util file reaching
// into web/) must trip arch-layering.
TEST(LintTreeArch, InvertedLayerEdgeFails) {
  auto files = load_repo_tree();
  bool mutated = false;
  for (SourceFile& f : files) {
    if (!f.path.ends_with("src/util/strings.cc")) continue;
    f.content = "#include \"web/dashboard.h\"\n" + f.content;
    mutated = true;
  }
  ASSERT_TRUE(mutated);
  const auto diags = ednsm::lint::run_lint(files, repo_options());
  const auto it = std::find_if(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.rule == "arch-layering" && d.key == "util->web";
  });
  ASSERT_NE(it, diags.end()) << dump(diags);
  EXPECT_TRUE(it->path.ends_with("src/util/strings.cc")) << it->path;
}

// A helper that serializes a field on behalf of to_json counts as a codec
// reference: the upgraded codec-parity pass must NOT flag fields written
// through one module-local helper hop.
TEST(LintTreeArch, CodecParityUnderstandsHelperSerialization) {
  const SourceFile f{"src/core/helper_codec.cc", R"cc(
namespace ednsm::core {

struct Blob;
void write_extras(int& sink, const Blob& b);

struct Blob {
  int plain = 0;
  int via_helper = 0;
  void to_json(int& sink) const {
    sink = plain;
    write_extras(sink, *this);
  }
  void from_json(int v) {
    plain = v;
    via_helper = v;
  }
};

void write_extras(int& sink, const Blob& b) { sink += b.via_helper; }

}  // namespace ednsm::core
)cc"};
  const auto diags = ednsm::lint::run_lint({f});
  EXPECT_TRUE(diags.empty()) << dump(diags);
}

}  // namespace
