// arch-layering fixture: lint this under a synthetic src/util/ path with a
// layers config that does not allow util -> web. A bottom-layer module
// reaching up into the dashboard is exactly the inversion the DAG forbids.
#include "web/dashboard.h"

namespace ednsm::util {

inline int poke_dashboard() { return 1; }

}  // namespace ednsm::util
