// Fixture: `dropped_field` is declared on the struct but only the reader
// references it, so a write -> read round trip silently loses it.
// Expected: codec-parity (dropped_field missing from to_json).
#include <string>

namespace demo {

struct Json;
struct Record {
  std::string kept;
  int dropped_field = 0;

  Json to_json() const;
  static Record from_json(const Json& j);
};

Json Record::to_json() const {
  Json o = make_object();
  o["kept"] = kept;
  return o;
}

Record Record::from_json(const Json& j) {
  Record r;
  r.kept = j.at("kept").as_string();
  r.dropped_field = static_cast<int>(j.at("dropped_field").as_number());
  return r;
}

}  // namespace demo
