// Fixture: every field appears in both codec halves; derived fields carry a
// suppression. Expected: no diagnostics.
#include <string>
#include <vector>

namespace demo {

struct Json;
struct Record {
  std::string kept;
  int count = 0;
  // ednsm-lint: allow(codec-parity) — derived: rebuilt from `kept` on read
  std::vector<std::string> cache;

  Json to_json() const;
  static Record from_json(const Json& j);
};

Json Record::to_json() const {
  Json o = make_object();
  o["kept"] = kept;
  o["count"] = count;
  return o;
}

Record Record::from_json(const Json& j) {
  Record r;
  r.kept = j.at("kept").as_string();
  r.count = static_cast<int>(j.at("count").as_number());
  r.cache.push_back(r.kept);
  return r;
}

}  // namespace demo
