// arch-include-cycle fixture (half 1): includes cycle_b.h, which includes
// this header back.
#pragma once

#include "cycle_b.h"

struct CycleA {
  int a = 0;
};
