// arch-include-cycle fixture (half 2): completes the cycle back to
// cycle_a.h.
#pragma once

#include "cycle_a.h"

struct CycleB {
  int b = 0;
};
