// Fixture: Result-returning declarations without [[nodiscard]].
// Expected: hygiene-nodiscard-result x2 (free function and member); the
// annotated one, the friend declaration, and the callback alias are clean.
#pragma once

#include <functional>
#include <string>

namespace demo {

template <typename T>
class Result;

Result<int> parse_widget(const std::string& s);

[[nodiscard]] Result<int> parse_gadget(const std::string& s);

class Codec {
 public:
  Result<std::string> decode(const std::string& wire);
  [[nodiscard]] static Result<Codec> create();
  using Callback = std::function<void(Result<int>)>;

 private:
  friend Result<Codec> reparse(const std::string& s);
};

}  // namespace demo
