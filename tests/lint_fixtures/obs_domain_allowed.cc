// Suppressed variant of obs_domain_bad.cc: the allow() sits at the sink's
// definition line, which is where the rule reports.
namespace ednsm::core {

// ednsm-lint: allow(obs-domain-separation): debug-only dump, never shipped
double write_jsonl(int rows) {
  return static_cast<double>(rows) +
         static_cast<double>(ednsm::obs::runtime_probe_elapsed_ns());
}

}  // namespace ednsm::core
