// obs-domain-separation fixture, half 2: a deterministic serialization sink
// outside the runtime domain that calls into it. Linted under the synthetic
// path src/core/debug_dump.cc together with obs_domain_runtime.cc; the call
// edge write_jsonl -> runtime_probe_elapsed_ns crosses the clock-domain
// boundary and must be flagged at the sink's definition.
namespace ednsm::core {

double write_jsonl(int rows) {
  return static_cast<double>(rows) +
         static_cast<double>(ednsm::obs::runtime_probe_elapsed_ns());
}

}  // namespace ednsm::core
