// obs-domain-separation fixture, half 1: a function defined in the runtime
// telemetry domain. Linted under the synthetic path src/obs/runtime_probe.cc
// (the rule keys on "obs/runtime" in the path), together with
// obs_domain_bad.cc / obs_domain_allowed.cc as the out-of-domain caller.
namespace ednsm::obs {

unsigned long long runtime_probe_elapsed_ns() { return 42; }

}  // namespace ednsm::obs
