// Fixture: manual span pairing with a per-line suppression rationale.
// Expected: no diagnostics.
#include <cstdint>

namespace obs {
class Tracer;
}

namespace demo {

void traced_section(obs::Tracer& tracer, std::uint64_t now) {
  // ednsm-lint: allow(obs-span-balance) — span id crosses a callback boundary
  const std::uint64_t id = tracer.begin_span("demo", "section", now);
  // ednsm-lint: allow(obs-span-balance) — closed here after the callback fires
  tracer.end_span(id, now + 5);
}

}  // namespace demo
