// Fixture: manual Tracer span pairing outside src/obs.
// Expected: obs-span-balance x2 (begin_span, end_span).
#include <cstdint>

namespace obs {
class Tracer;
}

namespace demo {

void traced_section(obs::Tracer& tracer, std::uint64_t now) {
  const std::uint64_t id = tracer.begin_span("demo", "section", now);
  tracer.end_span(id, now + 5);
}

}  // namespace demo
