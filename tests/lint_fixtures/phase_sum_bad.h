// Fixture: `new_phase` is a SimDuration member that phase_sum() does not
// include, breaking the additive phase-timing invariant. `total` carries the
// aggregate suppression the real QueryTiming uses.
// Expected: phase-sum (new_phase only).
#pragma once

namespace demo {

using SimDuration = long long;

struct QueryTiming {
  // ednsm-lint: allow(phase-sum) — aggregate: the bound the phases sum under
  SimDuration total{0};
  SimDuration tcp_handshake{0};
  SimDuration exchange{0};
  SimDuration new_phase{0};

  SimDuration phase_sum() const { return tcp_handshake + exchange; }
};

}  // namespace demo
