// Fixture: a QueryTiming struct with SimDuration phase members but no
// phase_sum() at all. Expected: phase-sum (at the struct).
#pragma once

namespace demo {

using SimDuration = long long;

struct QueryTiming {
  SimDuration total{0};
  SimDuration tcp_handshake{0};
};

}  // namespace demo
