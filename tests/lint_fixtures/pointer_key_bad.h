// Fixture: ordered containers keyed by pointers order entries by allocation
// address. Expected: determinism-pointer-key x2 (map and set).
#pragma once

#include <map>
#include <memory>
#include <set>

namespace demo {

struct Conn;

class ConnRegistry {
 private:
  std::map<const Conn*, std::shared_ptr<int>> conns_;
  std::set<Conn*> live_;
};

}  // namespace demo
