// Fixture: header with neither #pragma once nor an include guard.
// Expected: hygiene-pragma-once.

namespace demo {

int answer();

}  // namespace demo
