// Fixture: a raw thread with a per-line suppression rationale.
// Expected: no diagnostics.
#include <thread>

namespace demo {

void watchdog() {
  // ednsm-lint: allow(concurrency-raw-thread) — detached watchdog, no shard work
  std::thread t([] {});
  t.detach();
}

}  // namespace demo
