// Fixture: ad-hoc worker threads outside the pipeline engine.
// Expected: concurrency-raw-thread x3 (two std::thread, one std::jthread);
// `threads` identifiers, `#include <thread>`, and std::this_thread must NOT
// trigger.
#include <thread>
#include <vector>

namespace demo {

void fan_out(int threads) {
  std::vector<std::thread> pool;
  for (int i = 0; i < threads; ++i) {
    pool.emplace_back([] { std::this_thread::yield(); });
  }
  std::thread extra([] {});
  std::jthread scoped([] {});
  for (auto& t : pool) t.join();
  extra.join();
}

}  // namespace demo
