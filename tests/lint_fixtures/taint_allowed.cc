// determinism-taint fixture: one suppression at the true origin silences
// both the wall-clock token rule and every taint path that starts there —
// downstream sinks need no annotations of their own.
#include <chrono>

namespace fx {

inline double harness_now_ms() {
  // ednsm-lint: allow(determinism-wallclock) — harness wall time; feeds only the tolerance-gated wall_ms field
  return static_cast<double>(std::chrono::steady_clock::now().time_since_epoch().count()) / 1e6;
}

struct Timing {
  double wall_ms = 0;
  void to_json() { wall_ms = harness_now_ms(); }
  void from_json() { wall_ms = 0; }
};

}  // namespace fx
