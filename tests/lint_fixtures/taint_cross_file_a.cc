// determinism-taint fixture (file A of two): the sink calls a helper whose
// definition lives in taint_cross_file_b.cc. Lint both files together; the
// diagnostic lands in file B at the source token, with the cross-file path.
namespace fx {

unsigned wall_nonce();  // defined in taint_cross_file_b.cc

struct Export {
  unsigned nonce = 0;
  void to_json() { nonce = wall_nonce(); }
  void from_json() { nonce = 0; }
};

}  // namespace fx
