// determinism-taint fixture (file B of two): the source definition. See
// taint_cross_file_a.cc for the sink.
#include <chrono>

namespace fx {

unsigned wall_nonce() {
  return static_cast<unsigned>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace fx
