// determinism-taint fixture: the nondeterminism source sits directly inside
// the serialization sink, so the reported call path is a single function.
#include <chrono>

struct Snapshot {
  double captured_at = 0;
  void to_json() {
    captured_at = static_cast<double>(
        std::chrono::system_clock::now().time_since_epoch().count());
  }
  void from_json() { captured_at = 0; }
};
