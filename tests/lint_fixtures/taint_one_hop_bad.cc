// determinism-taint fixture: the source (thread identity) lives in a helper
// one call away from the sink. Thread id has no base token rule of its own —
// only the taint pass catches it, and the diagnostic must name the full
// helper -> sink path.
#include <thread>

namespace fx {

inline bool same_lane(unsigned* out) {
  *out = (std::this_thread::get_id() == std::this_thread::get_id()) ? 1u : 2u;
  return true;
}

struct Record {
  unsigned lane = 0;
  void to_json();
  void from_json();
};

void Record::to_json() { same_lane(&lane); }
void Record::from_json() { lane = 0; }

}  // namespace fx
