// Fixture: the same iteration with suppressions (same-line and line-above)
// must produce no diagnostics.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

namespace demo {

class Table {
 public:
  std::vector<std::string> keys() const;

 private:
  std::unordered_map<std::string, int> counts_;
};

std::vector<std::string> Table::keys() const {
  std::vector<std::string> out;
  // ednsm-lint: allow(determinism-unordered-iter) — collected then sorted
  for (const auto& [key, value] : counts_) {
    (void)value;
    out.push_back(key);
  }
  for (const auto& [key, value] : counts_) {  // ednsm-lint: allow(determinism-unordered-iter) — sorted below
    (void)key;
    (void)value;
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace demo
