// Fixture: range-for over an unordered_map member leaks hash order.
// Expected: determinism-unordered-iter (twice: range-for and begin() walk).
#include <string>
#include <unordered_map>

namespace demo {

class Table {
 public:
  void emit() const;
  void walk() const;

 private:
  std::unordered_map<std::string, int> counts_;
};

void Table::emit() const {
  for (const auto& [key, value] : counts_) {
    (void)key;
    (void)value;
  }
}

void Table::walk() const {
  for (auto it = counts_.begin(); it != counts_.end(); ++it) {
    (void)it;
  }
}

}  // namespace demo
