// Fixture: using namespace at header scope.
// Expected: hygiene-using-namespace.
#pragma once

#include <string>

using namespace std;

namespace demo {

inline string greet() { return "hi"; }

}  // namespace demo
