// Fixture: ambient wall-clock and randomness calls outside netsim.
// Expected: determinism-wallclock x5 (system_clock::now, srand, rand, time,
// random_device).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace demo {

double jittered_now_ms() {
  const auto wall = std::chrono::system_clock::now();
  std::srand(42);
  const int jitter = std::rand();
  const auto stamp = time(nullptr);
  std::random_device rd;
  return static_cast<double>(jitter + stamp + static_cast<long>(rd())) +
         std::chrono::duration<double, std::milli>(wall.time_since_epoch()).count();
}

}  // namespace demo
