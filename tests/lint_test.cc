// ednsm_lint test suite: fixture-driven rule coverage plus tree-level
// guarantees. Three layers:
//   1. Every rule ID has at least one known-bad fixture that triggers it and
//      the suppression syntax silences it.
//   2. The real tree (src/, tools/, bench/) is lint-clean.
//   3. Mutation checks: deliberately removing a JSON codec field, or adding
//      an unsorted unordered_map emission, makes lint fail — the acceptance
//      bar for the codec-parity and determinism rules staying alive.
#include "lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

using ednsm::lint::Diagnostic;
using ednsm::lint::SourceFile;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

// Lint a single fixture in isolation under its on-disk name (the extension
// drives the header-only rules).
std::vector<Diagnostic> lint_fixture(const std::string& name) {
  const std::string path = std::string(EDNSM_LINT_FIXTURE_DIR) + "/" + name;
  return ednsm::lint::run_lint({SourceFile{name, read_file(path)}});
}

std::multiset<std::string> rule_ids(const std::vector<Diagnostic>& diags) {
  std::multiset<std::string> out;
  for (const Diagnostic& d : diags) out.insert(d.rule);
  return out;
}

std::string dump(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const Diagnostic& d : diags) out += ednsm::lint::format(d) + "\n";
  return out;
}

TEST(LintFixtures, UnorderedIterBad) {
  const auto diags = lint_fixture("unordered_iter_bad.cc");
  EXPECT_EQ(rule_ids(diags),
            (std::multiset<std::string>{"determinism-unordered-iter",
                                        "determinism-unordered-iter"}))
      << dump(diags);
}

TEST(LintFixtures, UnorderedIterSuppressed) {
  const auto diags = lint_fixture("unordered_iter_allowed.cc");
  EXPECT_TRUE(diags.empty()) << dump(diags);
}

TEST(LintFixtures, WallclockBad) {
  const auto diags = lint_fixture("wallclock_bad.cc");
  EXPECT_EQ(rule_ids(diags).count("determinism-wallclock"), 5u) << dump(diags);
  EXPECT_EQ(diags.size(), 5u) << dump(diags);
}

TEST(LintFixtures, PointerKeyBad) {
  const auto diags = lint_fixture("pointer_key_bad.h");
  EXPECT_EQ(rule_ids(diags),
            (std::multiset<std::string>{"determinism-pointer-key", "determinism-pointer-key"}))
      << dump(diags);
}

TEST(LintFixtures, CodecParityBad) {
  const auto diags = lint_fixture("codec_parity_bad.cc");
  ASSERT_EQ(diags.size(), 1u) << dump(diags);
  EXPECT_EQ(diags[0].rule, "codec-parity");
  EXPECT_NE(diags[0].message.find("dropped_field"), std::string::npos) << diags[0].message;
  EXPECT_NE(diags[0].message.find("to_json"), std::string::npos) << diags[0].message;
}

TEST(LintFixtures, CodecParityClean) {
  const auto diags = lint_fixture("codec_parity_clean.cc");
  EXPECT_TRUE(diags.empty()) << dump(diags);
}

TEST(LintFixtures, PhaseSumBad) {
  const auto diags = lint_fixture("phase_sum_bad.h");
  ASSERT_EQ(diags.size(), 1u) << dump(diags);
  EXPECT_EQ(diags[0].rule, "phase-sum");
  EXPECT_NE(diags[0].message.find("new_phase"), std::string::npos) << diags[0].message;
}

TEST(LintFixtures, PhaseSumMissingEntirely) {
  const auto diags = lint_fixture("phase_sum_missing.h");
  ASSERT_EQ(diags.size(), 1u) << dump(diags);
  EXPECT_EQ(diags[0].rule, "phase-sum");
  EXPECT_NE(diags[0].message.find("QueryTiming"), std::string::npos) << diags[0].message;
}

TEST(LintFixtures, PragmaOnceBad) {
  const auto diags = lint_fixture("pragma_once_bad.h");
  EXPECT_EQ(rule_ids(diags), (std::multiset<std::string>{"hygiene-pragma-once"})) << dump(diags);
}

TEST(LintFixtures, UsingNamespaceBad) {
  const auto diags = lint_fixture("using_namespace_bad.h");
  EXPECT_EQ(rule_ids(diags), (std::multiset<std::string>{"hygiene-using-namespace"}))
      << dump(diags);
}

TEST(LintFixtures, NodiscardResultBad) {
  const auto diags = lint_fixture("nodiscard_bad.h");
  EXPECT_EQ(rule_ids(diags),
            (std::multiset<std::string>{"hygiene-nodiscard-result", "hygiene-nodiscard-result"}))
      << dump(diags);
  for (const Diagnostic& d : diags) {
    EXPECT_TRUE(d.message.find("parse_widget") != std::string::npos ||
                d.message.find("decode") != std::string::npos)
        << d.message;
  }
}

TEST(LintFixtures, ObsSpanBalanceBad) {
  const auto diags = lint_fixture("obs_span_balance_bad.cc");
  EXPECT_EQ(rule_ids(diags), (std::multiset<std::string>{"obs-span-balance", "obs-span-balance"}))
      << dump(diags);
  for (const Diagnostic& d : diags) {
    EXPECT_TRUE(d.message.find("begin_span") != std::string::npos ||
                d.message.find("end_span") != std::string::npos)
        << d.message;
  }
}

TEST(LintFixtures, ObsSpanBalanceSuppressed) {
  const auto diags = lint_fixture("obs_span_balance_allowed.cc");
  EXPECT_TRUE(diags.empty()) << dump(diags);
}

// The rule only polices code outside src/obs — the tracer's own
// implementation (and SpanGuard, which pairs the calls) is exempt by path.
TEST(LintFixtures, ObsSpanBalanceExemptInsideObs) {
  const std::string path = std::string(EDNSM_LINT_FIXTURE_DIR) + "/obs_span_balance_bad.cc";
  const auto diags =
      ednsm::lint::run_lint({SourceFile{"src/obs/fake_tracer.cc", read_file(path)}});
  EXPECT_TRUE(diags.empty()) << dump(diags);
}

TEST(LintFixtures, RawThreadBad) {
  const auto diags = lint_fixture("raw_thread_bad.cc");
  EXPECT_EQ(rule_ids(diags),
            (std::multiset<std::string>{"concurrency-raw-thread", "concurrency-raw-thread",
                                        "concurrency-raw-thread"}))
      << dump(diags);
  for (const Diagnostic& d : diags) {
    EXPECT_NE(d.message.find("run_pipeline"), std::string::npos) << d.message;
  }
}

TEST(LintFixtures, RawThreadSuppressed) {
  const auto diags = lint_fixture("raw_thread_allowed.cc");
  EXPECT_TRUE(diags.empty()) << dump(diags);
}

// The rule exempts the pipeline engine itself and the src/util primitives it
// is built from — the same violating code is clean under those paths.
TEST(LintFixtures, RawThreadExemptInsideEngineAndUtil) {
  const std::string content =
      read_file(std::string(EDNSM_LINT_FIXTURE_DIR) + "/raw_thread_bad.cc");
  for (const char* path : {"src/core/parallel_campaign.cc", "src/util/thread_pool.cc"}) {
    const auto diags = ednsm::lint::run_lint({SourceFile{path, content}});
    EXPECT_TRUE(diags.empty()) << path << "\n" << dump(diags);
  }
}

// obs-domain-separation needs both halves linted together under synthetic
// paths: the source's path must contain "obs/runtime" and the sink must live
// outside it. The diagnostic lands at the sink's definition.
std::vector<Diagnostic> lint_obs_domain_pair(const std::string& sink_fixture) {
  return ednsm::lint::run_lint(
      {SourceFile{"src/obs/runtime_probe.cc",
                  read_file(std::string(EDNSM_LINT_FIXTURE_DIR) + "/obs_domain_runtime.cc")},
       SourceFile{"src/core/debug_dump.cc",
                  read_file(std::string(EDNSM_LINT_FIXTURE_DIR) + "/" + sink_fixture)}});
}

TEST(LintFixtures, ObsDomainSeparationBad) {
  const auto diags = lint_obs_domain_pair("obs_domain_bad.cc");
  EXPECT_EQ(rule_ids(diags), (std::multiset<std::string>{"obs-domain-separation"}))
      << dump(diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].path, "src/core/debug_dump.cc");
  EXPECT_NE(diags[0].message.find("runtime_probe_elapsed_ns"), std::string::npos)
      << diags[0].message;
  EXPECT_NE(diags[0].message.find("write_jsonl"), std::string::npos) << diags[0].message;
}

TEST(LintFixtures, ObsDomainSeparationSuppressed) {
  const auto diags = lint_obs_domain_pair("obs_domain_allowed.cc");
  EXPECT_TRUE(diags.empty()) << dump(diags);
}

// The runtime domain serializing *itself* (heartbeat/manifest codecs) is not
// a violation — the boundary only polices flow into deterministic sinks.
TEST(LintFixtures, ObsDomainSinkInsideDomainIsClean) {
  const auto diags = ednsm::lint::run_lint(
      {SourceFile{"src/obs/runtime_probe.cc",
                  read_file(std::string(EDNSM_LINT_FIXTURE_DIR) + "/obs_domain_runtime.cc")},
       SourceFile{"src/obs/runtime_dump.cc",
                  read_file(std::string(EDNSM_LINT_FIXTURE_DIR) + "/obs_domain_bad.cc")}});
  EXPECT_TRUE(diags.empty()) << dump(diags);
}

// Every advertised rule ID is exercised by at least one bad fixture. Most
// fixtures lint standalone; the architectural rules need a little staging —
// layering wants a src/<module>/ path plus a layers config, and the include
// cycle only exists when both halves are linted together.
TEST(LintFixtures, EveryRuleCovered) {
  const std::vector<std::string> bad_fixtures = {
      "unordered_iter_bad.cc", "wallclock_bad.cc",     "pointer_key_bad.h",
      "codec_parity_bad.cc",   "phase_sum_bad.h",      "phase_sum_missing.h",
      "pragma_once_bad.h",     "using_namespace_bad.h", "nodiscard_bad.h",
      "obs_span_balance_bad.cc", "raw_thread_bad.cc",   "taint_direct_bad.cc",
      "taint_one_hop_bad.cc",
  };
  std::set<std::string> triggered;
  for (const std::string& name : bad_fixtures) {
    for (const Diagnostic& d : lint_fixture(name)) triggered.insert(d.rule);
  }

  // arch-layering: the fixture inverts a layer edge once placed in src/util/.
  ednsm::lint::Options layer_options;
  layer_options.layers_text = "util:\nweb: util\n";
  const std::string layering = std::string(EDNSM_LINT_FIXTURE_DIR) + "/arch_layering_bad.cc";
  for (const Diagnostic& d : ednsm::lint::run_lint(
           {SourceFile{"src/util/arch_layering_bad.cc", read_file(layering)}}, layer_options)) {
    triggered.insert(d.rule);
  }

  // arch-include-cycle: both headers together close the loop.
  std::vector<SourceFile> cycle;
  for (const char* name : {"cycle_a.h", "cycle_b.h"}) {
    cycle.push_back(SourceFile{name, read_file(std::string(EDNSM_LINT_FIXTURE_DIR) + "/" + name)});
  }
  for (const Diagnostic& d : ednsm::lint::run_lint(cycle)) triggered.insert(d.rule);

  // obs-domain-separation: needs the runtime-domain source and the
  // out-of-domain sink linted together under synthetic paths.
  for (const Diagnostic& d : lint_obs_domain_pair("obs_domain_bad.cc")) {
    triggered.insert(d.rule);
  }

  for (const ednsm::lint::RuleInfo& r : ednsm::lint::rules()) {
    EXPECT_EQ(triggered.count(std::string(r.id)), 1u)
        << "rule has no triggering fixture: " << r.id;
  }
}

// Diagnostics are sorted and stable, so CI output diffs cleanly.
TEST(LintFixtures, DiagnosticsSorted) {
  std::vector<SourceFile> files;
  for (const char* name : {"wallclock_bad.cc", "pragma_once_bad.h", "unordered_iter_bad.cc"}) {
    files.push_back(SourceFile{name, read_file(std::string(EDNSM_LINT_FIXTURE_DIR) + "/" + name)});
  }
  const auto diags = ednsm::lint::run_lint(files);
  ASSERT_GE(diags.size(), 3u);
  const bool sorted = std::is_sorted(
      diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
        return std::tie(a.path, a.line) <= std::tie(b.path, b.line);
      });
  EXPECT_TRUE(sorted) << dump(diags);
}

// ---------------------------------------------------------------------------
// Tree-level guarantees over the real sources.
// ---------------------------------------------------------------------------

std::vector<SourceFile> load_repo_tree() {
  return ednsm::lint::load_tree({std::string(EDNSM_SOURCE_DIR) + "/src",
                                 std::string(EDNSM_SOURCE_DIR) + "/tools",
                                 std::string(EDNSM_SOURCE_DIR) + "/bench"});
}

TEST(LintTree, CleanTree) {
  const auto files = load_repo_tree();
  ASSERT_GT(files.size(), 100u) << "tree scan found suspiciously few files";
  const auto diags = ednsm::lint::run_lint(files);
  EXPECT_TRUE(diags.empty()) << dump(diags);
}

// Removing a field from the ResultRecord JSON writer must trip codec-parity:
// this is what makes "add a field without round-trip support" fail CI.
TEST(LintTree, RemovingCodecWriterFieldFails) {
  auto files = load_repo_tree();
  bool mutated = false;
  for (SourceFile& f : files) {
    if (!f.path.ends_with("core/spec.cc")) continue;
    const std::size_t pos = f.content.find("o[\"connect_ms\"] = connect_ms;");
    ASSERT_NE(pos, std::string::npos) << "writer line not found in core/spec.cc";
    f.content.erase(pos, std::string("o[\"connect_ms\"] = connect_ms;").size());
    mutated = true;
  }
  ASSERT_TRUE(mutated);
  const auto diags = ednsm::lint::run_lint(files);
  const bool found = std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.rule == "codec-parity" && d.message.find("connect_ms") != std::string::npos;
  });
  EXPECT_TRUE(found) << dump(diags);
}

// Dropping a reader clause must trip codec-parity the same way.
TEST(LintTree, RemovingCodecReaderFieldFails) {
  auto files = load_repo_tree();
  bool mutated = false;
  for (SourceFile& f : files) {
    if (!f.path.ends_with("core/spec.cc")) continue;
    const std::string line = "if (j.at(\"rtt_ms\").is_number()) p.rtt_ms = j.at(\"rtt_ms\").as_number();";
    const std::size_t pos = f.content.find(line);
    ASSERT_NE(pos, std::string::npos) << "reader line not found in core/spec.cc";
    f.content.erase(pos, line.size());
    mutated = true;
  }
  ASSERT_TRUE(mutated);
  const auto diags = ednsm::lint::run_lint(files);
  const bool found = std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.rule == "codec-parity" && d.message.find("rtt_ms") != std::string::npos;
  });
  EXPECT_TRUE(found) << dump(diags);
}

// Adding an unsorted unordered_map emission loop must trip the determinism
// rule.
TEST(LintTree, UnsortedUnorderedEmissionFails) {
  auto files = load_repo_tree();
  bool mutated = false;
  for (SourceFile& f : files) {
    if (!f.path.ends_with("core/availability.cc")) continue;
    f.content +=
        "\nnamespace ednsm::core {\n"
        "std::vector<std::string> AvailabilityLedger::debug_resolvers() const {\n"
        "  std::vector<std::string> out;\n"
        "  for (const auto& [sym, counts] : by_resolver_) out.push_back(hostnames_.name(sym));\n"
        "  return out;\n"
        "}\n"
        "}  // namespace ednsm::core\n";
    mutated = true;
  }
  ASSERT_TRUE(mutated);
  const auto diags = ednsm::lint::run_lint(files);
  const bool found = std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.rule == "determinism-unordered-iter" &&
           d.message.find("by_resolver_") != std::string::npos;
  });
  EXPECT_TRUE(found) << dump(diags);
}

// Adding a new SimDuration phase member without extending phase_sum() must
// trip the phase-timing rule.
TEST(LintTree, NewPhaseMemberOutsidePhaseSumFails) {
  auto files = load_repo_tree();
  bool mutated = false;
  for (SourceFile& f : files) {
    if (!f.path.ends_with("client/query.h")) continue;
    const std::string anchor = "netsim::SimDuration exchange{0};";
    const std::size_t pos = f.content.find(anchor);
    ASSERT_NE(pos, std::string::npos);
    f.content.insert(pos, "netsim::SimDuration retry_backoff{0};\n  ");
    mutated = true;
  }
  ASSERT_TRUE(mutated);
  const auto diags = ednsm::lint::run_lint(files);
  const bool found = std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.rule == "phase-sum" && d.message.find("retry_backoff") != std::string::npos;
  });
  EXPECT_TRUE(found) << dump(diags);
}

// Spawning a raw std::thread in campaign code (instead of going through
// run_pipeline) must trip concurrency-raw-thread. The engine itself
// (core/parallel_campaign.cc) constructs threads and must stay clean.
TEST(LintTree, RawThreadOutsideEngineFails) {
  auto files = load_repo_tree();
  bool mutated = false;
  for (SourceFile& f : files) {
    if (!f.path.ends_with("core/campaign.cc")) continue;
    f.content +=
        "\nnamespace ednsm::core {\n"
        "void debug_background_round() {\n"
        "  std::thread worker([] {});\n"
        "  worker.join();\n"
        "}\n"
        "}  // namespace ednsm::core\n";
    mutated = true;
  }
  ASSERT_TRUE(mutated);
  const auto diags = ednsm::lint::run_lint(files);
  const bool found = std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.rule == "concurrency-raw-thread" && d.path.ends_with("core/campaign.cc");
  });
  EXPECT_TRUE(found) << dump(diags);
}

// Leaking runtime telemetry into the deterministic output contract — a
// to_json in core that calls a runtime-domain codec — must trip
// obs-domain-separation. This is the acceptance mutation for the clock-domain
// boundary staying machine-enforced.
TEST(LintTree, RuntimeTelemetryIntoDeterministicSinkFails) {
  auto files = load_repo_tree();
  bool mutated = false;
  for (SourceFile& f : files) {
    if (!f.path.ends_with("core/pipeline.cc")) continue;
    f.content +=
        "\nnamespace ednsm::core {\n"
        "util::Json to_json(const obs::RuntimeHeartbeat& hb) {\n"
        "  return hb.heartbeat_json();\n"
        "}\n"
        "}  // namespace ednsm::core\n";
    mutated = true;
  }
  ASSERT_TRUE(mutated);
  const auto diags = ednsm::lint::run_lint(files);
  const bool found = std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.rule == "obs-domain-separation" && d.path.ends_with("core/pipeline.cc") &&
           d.message.find("heartbeat_json") != std::string::npos;
  });
  EXPECT_TRUE(found) << dump(diags);
}

// Hand-pairing Tracer::begin_span/end_span in simulation code (instead of the
// OBS_SPAN RAII macro) must trip obs-span-balance.
TEST(LintTree, ManualSpanPairingFails) {
  auto files = load_repo_tree();
  bool mutated = false;
  for (SourceFile& f : files) {
    if (!f.path.ends_with("core/campaign.cc")) continue;
    f.content +=
        "\nnamespace ednsm::core {\n"
        "void debug_trace_round(SimWorld& world) {\n"
        "  const auto id = world.tracer().begin_span(\"core\", \"round\", world.queue().now());\n"
        "  world.tracer().end_span(id, world.queue().now());\n"
        "}\n"
        "}  // namespace ednsm::core\n";
    mutated = true;
  }
  ASSERT_TRUE(mutated);
  const auto diags = ednsm::lint::run_lint(files);
  const auto count = std::count_if(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.rule == "obs-span-balance";
  });
  EXPECT_EQ(count, 2) << dump(diags);
}

}  // namespace
